// Prescreening example: the two-tier near-duplicate query. A corpus with
// a few clusters of near-duplicates buried in mostly-isolated samples —
// most pairs far below the similarity threshold — is the workload the
// MinHash prescreening tier targets: cheap bottom-k sketches estimate
// every pairwise Jaccard first, and only the pairs whose estimate reaches
// threshold − slack run through the exact tiled popcount kernel. Samples
// with no surviving partner at all skip the packing stage entirely, which
// is where most of the speedup comes from on sparse corpora.
//
// The program runs the same thresholded query twice, exact and
// prescreened, and compares: the surviving pairs are byte-identical, the
// recall against the exact answer is printed (1.0 here — the clusters sit
// far above the gate), and the sketch statistics show how many pairs never
// touched the exact kernel.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	genomeatscale "genomeatscale"
)

func main() {
	// 10 clusters of 4 near-duplicate samples plus 104 isolated background
	// samples: each cluster shares a core attribute set and every member
	// adds its own extras (within-cluster Jaccard ≈ 0.85), while the
	// background samples are random draws with no near-duplicate anywhere —
	// 144 samples, 10440 pairs, only ~60 of them interesting.
	rng := rand.New(rand.NewSource(11))
	const clusters, perCluster, isolated, baseSize = 10, 4, 104, 2000
	const extra = baseSize / 11 // ≈ J = 1/(1+2/11) ≈ 0.85 within a cluster
	const universe = uint64(1) << 40
	n := clusters*perCluster + isolated
	names := make([]string, 0, n)
	samples := make([][]uint64, 0, n)
	for c := 0; c < clusters; c++ {
		base := make([]uint64, baseSize)
		for i := range base {
			base[i] = uint64(rng.Int63()) % universe
		}
		for s := 0; s < perCluster; s++ {
			sample := append([]uint64(nil), base...)
			for k := 0; k < extra; k++ {
				sample = append(sample, uint64(rng.Int63())%universe)
			}
			names = append(names, fmt.Sprintf("c%02d-s%d", c, s))
			samples = append(samples, sample)
		}
	}
	for s := 0; s < isolated; s++ {
		sample := make([]uint64, baseSize+extra)
		for i := range sample {
			sample[i] = uint64(rng.Int63()) % universe
		}
		names = append(names, fmt.Sprintf("bg-%03d", s))
		samples = append(samples, sample)
	}
	ds, err := genomeatscale.NewDataset(names, samples, universe)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	const tau = 0.8

	// Tier 2 only: the exact thresholded query.
	exactEngine, err := genomeatscale.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	exactSink := genomeatscale.Threshold(tau)
	t0 := time.Now()
	if _, err := exactEngine.Stream(ctx, ds, exactSink); err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(t0)
	exactPairs := exactSink.Pairs()

	// Tier 1 + 2: sketches gate the exact kernel. Size 0 derives the
	// sketch size from the threshold and the default slack.
	twoTier, err := genomeatscale.NewEngine(
		genomeatscale.WithSketchPrescreen(0, tau, 0),
	)
	if err != nil {
		log.Fatal(err)
	}
	screenedSink := genomeatscale.Threshold(tau)
	t0 = time.Now()
	res, err := twoTier.Stream(ctx, ds, screenedSink)
	if err != nil {
		log.Fatal(err)
	}
	screenedTime := time.Since(t0)
	screenedPairs := screenedSink.Pairs()

	// Score the prescreened answer against the exact one. Surviving pairs
	// are byte-identical, so recall is the only quantity that can move.
	exactSet := make(map[[2]int]float64, len(exactPairs))
	for _, p := range exactPairs {
		exactSet[[2]int{p.I, p.J}] = p.Similarity
	}
	hits, identical := 0, true
	for _, p := range screenedPairs {
		if s, ok := exactSet[[2]int{p.I, p.J}]; ok {
			hits++
			if s != p.Similarity {
				identical = false
			}
		}
	}
	st := res.Stats.Sketch

	fmt.Printf("corpus: %d samples, %d pairs, threshold %.2f\n", len(samples), st.PairsScreened, tau)
	fmt.Printf("exact query:      %4d pairs in %v\n", len(exactPairs), exactTime.Round(time.Millisecond))
	fmt.Printf("prescreened:      %4d pairs in %v\n", len(screenedPairs), screenedTime.Round(time.Millisecond))
	fmt.Printf("sketch tier:      k=%d, %d of %d pairs survived (%.1f%% pruned), %.3fs sketching\n",
		st.Size, st.PairsSurvived, st.PairsScreened,
		100*float64(st.PairsScreened-st.PairsSurvived)/float64(st.PairsScreened), st.SketchSeconds)
	fmt.Printf("recall:           %.4f (modelled worst case at the threshold: %.4f)\n",
		float64(hits)/float64(len(exactPairs)), st.EstimatedRecall)
	fmt.Printf("surviving pairs byte-identical to exact run: %v\n", identical)
}
