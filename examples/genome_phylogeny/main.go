// Genome phylogeny example: the end-to-end GenomeAtScale workflow of
// Figure 1 — generate a family of related genomes, represent each sample by
// its canonical k-mer set, compute the exact Jaccard distance matrix with
// the distributed SimilarityAtScale pipeline, and build a neighbour-joining
// guide tree from the distances. The example also contrasts the exact
// similarities with MinHash estimates to illustrate why the paper insists
// on exact computation for highly similar samples.
package main

import (
	"context"
	"fmt"
	"log"

	genomeatscale "genomeatscale"

	"genomeatscale/internal/cluster"
	"genomeatscale/internal/genome"
	"genomeatscale/internal/minhash"
)

func main() {
	// 1. Generate a synthetic family: an ancestor and five descendants with
	//    increasing divergence (stand-in for real sequencing samples).
	family, err := genome.GenerateSampleFamily(
		genome.FamilyConfig{
			AncestorLength: 40_000,
			Descendants:    5,
			Model:          genome.MutationModel{SubstitutionRate: 0.01, InsertionRate: 0.001, DeletionRate: 0.001},
			Seed:           2024,
		},
		genome.SampleOptions{
			ExtractorOptions: genome.ExtractorOptions{K: 19, Canonical: true},
			MinCount:         1,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range family {
		fmt.Printf("sample %-14s %8d distinct 19-mers\n", s.Name, s.Cardinality())
	}

	// 2. Compute the exact all-pairs Jaccard distance matrix with the
	//    distributed pipeline (8 virtual ranks, 4 batches, replication 2).
	ds, err := genome.BuildDataset(family)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := genomeatscale.NewEngine(
		genomeatscale.WithProcs(8),
		genomeatscale.WithBatches(4),
		genomeatscale.WithReplication(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Similarity(context.Background(), ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistance matrix (%d batches, %d supersteps, %.2f MiB communicated):\n",
		res.Stats.Batches, res.Stats.Comm.Supersteps, float64(res.Stats.Comm.TotalBytes)/(1<<20))
	for i := 0; i < res.N; i++ {
		fmt.Printf("  %-14s", res.Names[i])
		for j := 0; j < res.N; j++ {
			fmt.Printf(" %6.3f", res.Distance(i, j))
		}
		fmt.Println()
	}

	// 3. Build a neighbour-joining guide tree from the distances (the
	//    downstream use in Figure 1, parts 7 and 9).
	tree, err := cluster.NeighborJoining(res.D, res.Names)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nneighbour-joining guide tree:\n  %s\n", tree.Newick())

	// 4. Contrast exact similarities with small-sketch MinHash estimates for
	//    the most similar pair (ancestor vs first descendant).
	exact := res.Similarity(0, 1)
	for _, sketchSize := range []int{64, 1024, 16384} {
		a := minhash.MustNew(family[0].Kmers, sketchSize)
		b := minhash.MustNew(family[1].Kmers, sketchSize)
		est, err := minhash.EstimateJaccard(a, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("J(ancestor, descendant-0): exact %.4f, MinHash(s=%5d) %.4f (error %+.4f)\n",
			exact, sketchSize, est, est-exact)
	}
}
