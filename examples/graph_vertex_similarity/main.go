// Graph analytics example (Section II-F of the paper): compute the Jaccard
// similarity of vertex neighbourhoods with SimilarityAtScale, cluster the
// vertices with the Jarvis–Patrick rule, and predict missing links.
package main

import (
	"fmt"
	"log"

	"genomeatscale/internal/core"
	"genomeatscale/internal/graphsim"
)

func main() {
	// Build a graph with two dense communities joined by a single bridge.
	g := graphsim.NewGraph(10)
	communityA := []int{0, 1, 2, 3, 4}
	communityB := []int{5, 6, 7, 8, 9}
	for i := 0; i < len(communityA); i++ {
		for j := i + 1; j < len(communityA); j++ {
			g.AddEdge(communityA[i], communityA[j])
			g.AddEdge(communityB[i], communityB[j])
		}
	}
	// Remove one edge from each community so link prediction has something
	// to find, and bridge the communities.
	g2 := graphsim.NewGraph(10)
	for u := 0; u < 10; u++ {
		for _, v := range g.Neighbors(u) {
			if v > u && !(u == 0 && v == 1) && !(u == 5 && v == 6) {
				g2.AddEdge(u, v)
			}
		}
	}
	g2.AddEdge(4, 5)
	fmt.Printf("graph: %d vertices, %d edges\n", g2.N, g2.NumEdges())

	// All-pairs neighbourhood similarity with the distributed pipeline.
	opts := core.DefaultOptions()
	opts.Procs = 4
	res, err := graphsim.VertexSimilarity(g2, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nneighbourhood Jaccard similarity (first community rows):")
	for _, u := range communityA {
		fmt.Printf("  v%-2d", u)
		for v := 0; v < g2.N; v++ {
			fmt.Printf(" %5.2f", res.Similarity(u, v))
		}
		fmt.Println()
	}

	// Jarvis–Patrick clustering recovers the two communities.
	labels := graphsim.JarvisPatrick(res.S, 0.4)
	fmt.Printf("\nJarvis–Patrick clusters (threshold 0.4): %v\n", labels)

	// Similarity-based link prediction proposes the removed edges.
	links := graphsim.PredictLinks(g2, res.S, 3)
	fmt.Println("top predicted missing links:")
	for _, l := range links {
		fmt.Printf("  %d — %d (similarity %.2f)\n", l[0], l[1], res.Similarity(l[0], l[1]))
	}
}
