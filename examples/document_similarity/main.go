// Information-retrieval example (Section II-G of the paper): model
// documents as sets of word shingles and use SimilarityAtScale to find
// near-duplicates, the plagiarism-detection use case.
package main

import (
	"fmt"
	"log"

	"genomeatscale/internal/core"
	"genomeatscale/internal/docsim"
)

func main() {
	names := []string{"report-v1", "report-v2", "unrelated-memo", "plagiarised-copy"}
	texts := []string{
		"The distributed algorithm computes the Jaccard similarity of all pairs of samples " +
			"by encoding the problem as a sparse matrix product and batching the hypersparse input.",
		"The distributed algorithm computes the Jaccard similarity of every pair of samples " +
			"by encoding the problem as a sparse matrix product and batching the hypersparse input matrix.",
		"Quarterly budget projections indicate that travel expenses will remain flat while " +
			"equipment spending grows moderately across both departments.",
		"The distributed algorithm computes the Jaccard similarity of all pairs of samples " +
			"by encoding the problem as a sparse matrix product and batching the hypersparse input.",
	}

	corpus, err := docsim.NewCorpus(names, texts, docsim.Options{ShingleSize: 3})
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Procs = 2
	res, err := corpus.Similarity(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("document similarity (3-word shingles):")
	for i := 0; i < res.N; i++ {
		fmt.Printf("  %-18s", res.Names[i])
		for j := 0; j < res.N; j++ {
			fmt.Printf(" %6.3f", res.Similarity(i, j))
		}
		fmt.Println()
	}

	fmt.Println("\nnearest neighbour of each document:")
	for i := 0; i < res.N; i++ {
		j, s := docsim.MostSimilar(res, i)
		verdict := ""
		if s > 0.9 {
			verdict = "  <-- likely duplicate/plagiarism"
		}
		fmt.Printf("  %-18s -> %-18s (J = %.3f)%s\n", res.Names[i], res.Names[j], s, verdict)
	}
}
