// Quickstart: build a tiny categorical dataset, compute the all-pairs
// Jaccard similarity and distance matrices with SimilarityAtScale, and
// verify the values against the exact set definition.
package main

import (
	"context"
	"fmt"
	"log"

	genomeatscale "genomeatscale"
)

func main() {
	// Three samples over an attribute universe of size 100. In GenomeAtScale
	// the attributes would be k-mer codes; here they are plain integers.
	names := []string{"alpha", "beta", "gamma"}
	samples := [][]uint64{
		{1, 2, 3, 4, 5},
		{4, 5, 6, 7},
		{50, 51},
	}
	ds, err := genomeatscale.NewDataset(names, samples, 100)
	if err != nil {
		log.Fatal(err)
	}

	// Build a reusable engine for the distributed pipeline: 4 virtual BSP
	// ranks, 2 row batches. The engine validates once and can be called
	// repeatedly (and cancelled via the context).
	engine, err := genomeatscale.NewEngine(
		genomeatscale.WithProcs(4),
		genomeatscale.WithBatches(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Similarity(context.Background(), ds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Jaccard similarity matrix:")
	for i := 0; i < res.N; i++ {
		fmt.Printf("  %-6s", res.Names[i])
		for j := 0; j < res.N; j++ {
			fmt.Printf(" %6.3f", res.Similarity(i, j))
		}
		fmt.Println()
	}

	fmt.Println("\nJaccard distance matrix (1 − S):")
	for i := 0; i < res.N; i++ {
		fmt.Printf("  %-6s", res.Names[i])
		for j := 0; j < res.N; j++ {
			fmt.Printf(" %6.3f", res.Distance(i, j))
		}
		fmt.Println()
	}

	// Cross-check one pair against the exact set definition.
	exact := genomeatscale.ExactJaccard(samples[0], samples[1])
	fmt.Printf("\nexact J(alpha, beta) = %.3f, pipeline value = %.3f\n", exact, res.Similarity(0, 1))

	// The distributed run also reports its exact communication volume.
	if res.Stats.Comm != nil {
		fmt.Printf("communication: %d supersteps, %d bytes across %d ranks\n",
			res.Stats.Comm.Supersteps, res.Stats.Comm.TotalBytes, res.Stats.Comm.Procs)
	}

	// The same engine can stream instead of gathering: here only the single
	// most similar pair is retained, in O(1) memory.
	top := genomeatscale.TopK(1)
	if _, err := engine.Stream(context.Background(), ds, top); err != nil {
		log.Fatal(err)
	}
	best := top.Pairs()[0]
	fmt.Printf("\nmost similar pair (streamed): %s ~ %s, J = %.3f\n",
		res.Names[best.I], res.Names[best.J], best.Similarity)
}
