// Query service example: the persistent-index lifecycle behind
// cmd/similarityd, in-process. A batch run packs its samples once into an
// on-disk index; from then on sample-vs-corpus queries reuse the packed
// columns — the one-row-band version of the paper's B = ÂᵀÂ product — with
// no repacking and no O(n²) recompute. New samples append as their own
// segments (LSM-style), so the corpus grows incrementally while answers
// stay byte-identical to a from-scratch rebuild.
//
// The program builds a small clustered corpus, persists it, reopens it
// memory-mapped (open-without-load: slabs page in on first touch), runs a
// top-k query and a sketch-gated thresholded query, appends a new
// near-duplicate sample durably, queries again — the appended sample wins
// — and reopens the file to show the append survived.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"genomeatscale/internal/core"
	"genomeatscale/internal/index"
)

func main() {
	// 3 clusters of 5 near-duplicate samples over a 2^30 attribute
	// universe: each cluster shares a 1200-value core, each member adds
	// ~150 private values (within-cluster Jaccard ≈ 0.8).
	rng := rand.New(rand.NewSource(7))
	const clusters, perCluster, coreSize, extra = 3, 5, 1200, 150
	const universe = uint64(1) << 30
	var names []string
	var samples [][]uint64
	cores := make([][]uint64, clusters)
	for c := range cores {
		core := make([]uint64, coreSize)
		for i := range core {
			core[i] = uint64(rng.Int63()) % universe
		}
		cores[c] = core
		for s := 0; s < perCluster; s++ {
			sample := append([]uint64(nil), core...)
			for k := 0; k < extra; k++ {
				sample = append(sample, uint64(rng.Int63())%universe)
			}
			names = append(names, fmt.Sprintf("c%d-s%d", c, s))
			samples = append(samples, sample)
		}
	}
	ds, err := core.NewInMemoryDataset(names, samples, universe)
	if err != nil {
		log.Fatal(err)
	}

	// Batch-build the index with MinHash sketches (the CLIs do the same
	// with -index-out / -index-sketch-k) and persist it.
	dir, err := os.MkdirTemp("", "query_service")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "corpus.idx")
	built, err := index.Build(ds, index.Options{SketchK: 16})
	if err != nil {
		log.Fatal(err)
	}
	if err := built.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("index: %d samples packed into %s (%d bytes, sketch k=%d)\n",
		built.Samples(), filepath.Base(path), st.Size(), built.SketchK())

	// Reopen memory-mapped — what similarityd does at startup. Metadata is
	// validated eagerly; the packed slabs stay on disk until touched.
	corpus, err := index.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer corpus.Close()
	ctx := context.Background()

	// Top-k query: cluster 1's core with fresh private values. All of
	// cluster 1 ranks first.
	query := append([]uint64(nil), cores[1]...)
	for k := 0; k < extra; k++ {
		query = append(query, uint64(rng.Int63())%universe)
	}
	neighbors, err := corpus.Query(ctx, query, index.QueryOptions{TopK: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-3 neighbours of a fresh cluster-1 sample:")
	for _, n := range neighbors {
		fmt.Printf("  %-8s J=%.4f (|intersection|=%d)\n", n.Name, n.Similarity, n.Intersection)
	}

	// Thresholded query with the sketch gate: samples whose MinHash
	// estimate falls below threshold − slack never reach the exact
	// popcount kernel; survivors are computed exactly.
	gated, err := corpus.Query(ctx, query, index.QueryOptions{Threshold: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	cts := corpus.Counters()
	fmt.Printf("\nthreshold 0.5 with sketch gate: %d neighbours, %d of %d corpus samples skipped the exact kernel\n",
		len(gated), cts.SketchSkips, cts.QuerySamples)

	// Append the query itself as a new sample: one new segment on disk
	// (durable — segment bytes are synced before the header's segment
	// count is bumped), no recompute of the existing columns.
	id, err := corpus.Append("c1-new", query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nappended %q as sample %d (%d segments now)\n", "c1-new", id, corpus.Segments())
	neighbors, err = corpus.Query(ctx, query, index.QueryOptions{TopK: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-query after append: best neighbour %s at J=%.4f\n",
		neighbors[0].Name, neighbors[0].Similarity)

	// The append survives a reopen — a restarted similarityd serves it.
	reopened, err := index.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	fmt.Printf("reopened from disk: %d samples in %d segments\n",
		reopened.Samples(), reopened.Segments())
}
