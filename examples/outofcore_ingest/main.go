// Out-of-core ingestion example: the paper's Section IV setting, where each
// processor "reads in a subset of these files, scanning through one batch
// at a time" — too many sample files to hold in memory at once, and no
// guarantee every file is intact.
//
// The program writes a directory of sample files (mixing the text and the
// compact binary encoding), opens it as an out-of-core dataset with a
// small prefetch window, and runs a streamed top-k query: files load in
// parallel ahead of the scan and are evicted behind it, so the peak
// resident set stays around two prefetch windows no matter how many
// samples the directory holds. It then corrupts one file and shows the
// run failing with a descriptive error — not a panic — naming the file.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	genomeatscale "genomeatscale"

	"genomeatscale/internal/samplefile"
)

func main() {
	dir, err := os.MkdirTemp("", "outofcore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 60 synthetic samples over a universe of 20000 attributes, written one
	// file per sample: even indices as text, odd as the binary encoding
	// (the reader auto-detects both).
	rng := rand.New(rand.NewSource(11))
	const n, m = 60, 20000
	for i := 0; i < n; i++ {
		var vals []uint64
		for a := uint64(0); a < m; a++ {
			if rng.Float64() < 0.01+0.0005*float64(i%7) {
				vals = append(vals, a)
			}
		}
		path := filepath.Join(dir, fmt.Sprintf("sample-%03d.txt", i))
		write := samplefile.WriteText
		if i%2 == 1 {
			path = filepath.Join(dir, fmt.Sprintf("sample-%03d.smp", i))
			write = samplefile.WriteBinary
		}
		if err := write(path, vals); err != nil {
			log.Fatal(err)
		}
	}

	// Open out-of-core: prefetch 6 samples ahead of the scan, hold at most
	// 2×6 resident. Loads overlap with the similarity computation.
	ds, err := genomeatscale.OpenSampleDir(dir, m, genomeatscale.SampleDirOptions{
		Prefetch: 6,
	})
	if err != nil {
		log.Fatal(err)
	}

	engine, err := genomeatscale.NewEngine(
		genomeatscale.WithBatches(3),
		genomeatscale.WithProcs(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	top := genomeatscale.TopK(5)
	res, err := engine.Stream(context.Background(), ds, top)
	if err != nil {
		log.Fatal(err)
	}
	ing := res.Stats.Ingest
	fmt.Printf("scanned %d samples out-of-core in %d batches\n", res.N, res.Stats.Batches)
	fmt.Printf("ingestion: %d loads, %d evictions, peak %d resident (bound 2x prefetch = 12, collection %d)\n",
		ing.Loads, ing.Evictions, ing.PeakResident, n)
	fmt.Println("\ntop-5 most similar pairs:")
	for _, p := range top.Pairs() {
		fmt.Printf("  %s ~ %s  J = %.3f\n", res.Names[p.I], res.Names[p.J], p.Similarity)
	}

	// Fault tolerance: truncate one binary file mid-stream. The run reports
	// which sample failed and why, instead of panicking the process.
	bad := filepath.Join(dir, "sample-031.smp")
	if err := os.Truncate(bad, 10); err != nil {
		log.Fatal(err)
	}
	ds2, err := genomeatscale.OpenSampleDir(dir, m, genomeatscale.SampleDirOptions{Prefetch: 6})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := engine.Stream(context.Background(), ds2, genomeatscale.Discard); err != nil {
		fmt.Printf("\ncorrupt file surfaced as a run error (no panic):\n  %v\n", err)
	} else {
		log.Fatal("run over a corrupt file unexpectedly succeeded")
	}
}
