// Streaming example: the Engine API at the scale regime the paper targets,
// where gathering the full n×n similarity output is the bottleneck. One
// reusable engine runs three consumers over the same synthetic dataset
// without ever assembling the matrices:
//
//  1. a TopK sink retaining the 5 most similar pairs in O(k) memory,
//  2. a Threshold sink retaining the near-duplicate pairs (J ≥ 0.5),
//  3. a PHYLIP tile writer that serialises the distance matrix row by row
//     as tiles arrive.
//
// The run statistics show the memory story: the peak resident tile is a
// small fraction of the 3n² words a full gather would hold.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	genomeatscale "genomeatscale"

	"genomeatscale/internal/output"
)

func main() {
	// Synthetic categorical dataset: 48 samples in three groups, each group
	// sharing a core attribute set (so within-group Jaccard is high) plus
	// per-sample background noise, over a universe of 4000 attributes.
	rng := rand.New(rand.NewSource(7))
	const n, m = 48, 4000
	cores := make([][]bool, 3)
	for g := range cores {
		cores[g] = make([]bool, m)
		for a := 0; a < m; a++ {
			cores[g][a] = rng.Float64() < 0.08
		}
	}
	names := make([]string, n)
	samples := make([][]uint64, n)
	for i := range samples {
		group := i % 3
		names[i] = fmt.Sprintf("g%d-s%02d", group, i)
		var vals []uint64
		for a := uint64(0); a < m; a++ {
			p := 0.005
			if cores[group][a] {
				p = 0.9 // members carry most of their group's core set
			}
			if rng.Float64() < p {
				vals = append(vals, a)
			}
		}
		samples[i] = vals
	}
	ds, err := genomeatscale.NewDataset(names, samples, m)
	if err != nil {
		log.Fatal(err)
	}

	engine, err := genomeatscale.NewEngine(
		genomeatscale.WithProcs(4),
		genomeatscale.WithBatches(2),
		genomeatscale.WithTileRows(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 1. Top-5 most similar pairs, streamed.
	top := genomeatscale.TopK(5)
	res, err := engine.Stream(ctx, ds, top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d tiles, peak tile %d words (full gather would hold %d words)\n",
		res.Stats.TilesEmitted, res.Stats.PeakTileWords, 3*n*n)
	fmt.Println("\ntop-5 most similar pairs:")
	for _, p := range top.Pairs() {
		fmt.Printf("  %s ~ %s  J = %.3f\n", names[p.I], names[p.J], p.Similarity)
	}

	// 2. Near-duplicate query: every pair at or above J = 0.5.
	near := genomeatscale.Threshold(0.5)
	if _, err := engine.Stream(ctx, ds, near); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d pairs with J >= 0.5\n", len(near.Pairs()))

	// 3. Write the distance matrix as PHYLIP, row by row, while streaming.
	f, err := os.CreateTemp("", "streamed-*.phy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if _, err := engine.Stream(ctx, ds, output.NewTileWriter(f, output.FormatPHYLIP, output.MatrixDistance)); err != nil {
		log.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	head := make([]byte, 16)
	if _, err := f.ReadAt(head, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPHYLIP distance matrix streamed to disk: %d bytes, header %q\n",
		info.Size(), strings.TrimSpace(strings.Split(string(head), "\n")[0]))
}
