// Scaling-projection example: use the paper's BSP cost model to answer the
// capacity-planning question "how long would my dataset take on N nodes of
// a Stampede2-class machine?", reproducing the methodology behind Figures
// 2a and 2b without access to a supercomputer.
package main

import (
	"flag"
	"fmt"
	"log"

	"genomeatscale/internal/costmodel"
)

func main() {
	samples := flag.Int("samples", 2580, "number of data samples n")
	kmersPerSample := flag.Float64("kmers-per-sample", 4.1e7, "average distinct k-mers per sample")
	k := flag.Int("k", 19, "k-mer length (defines the attribute universe 4^k)")
	flag.Parse()

	shape := costmodel.DatasetShape{
		Name:          "user dataset",
		Samples:       *samples,
		Attributes:    pow4(*k),
		TotalNonzeros: float64(*samples) * *kmersPerSample,
	}
	machine := costmodel.Stampede2KNL()
	nodes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	points, err := costmodel.StrongScaling(machine, shape, nodes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("projection for %d samples, %.3g total k-mer occurrences, k=%d on %s\n\n",
		*samples, shape.TotalNonzeros, *k, machine.Name)
	fmt.Printf("%8s %8s %6s %10s %14s %16s %12s\n",
		"nodes", "ranks", "c", "batches", "time/batch", "projected total", "efficiency")
	for _, p := range points {
		fmt.Printf("%8d %8d %6d %10d %13.2fs %15.2fh %11.2f\n",
			p.Nodes, p.Ranks, p.Replication, p.Batches, p.BatchSeconds, p.TotalSeconds/3600, p.Efficiency)
	}

	// Highlight the sweet spot, as the paper does for the Kingsford runs.
	best := points[0]
	for _, p := range points {
		if p.TotalSeconds < best.TotalSeconds {
			best = p
		}
	}
	fmt.Printf("\nbest projected configuration: %d nodes (%.2fh total, %.1f× vs 1 node)\n",
		best.Nodes, best.TotalSeconds/3600, points[0].TotalSeconds/best.TotalSeconds)
}

func pow4(k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= 4
	}
	return out
}
