package genomeatscale

import (
	"genomeatscale/internal/core"
	"genomeatscale/internal/samplefile"
)

// DatasetV2 is the error-propagating dataset access path: SampleErr
// surfaces load failures (unreadable or corrupt backing files, values
// outside the declared universe) as errors the engine returns like any
// other run failure, and LoadRange lets out-of-core implementations
// overlap loads with compute. Every Dataset handed to an engine is adapted
// to this path (see AsDatasetV2), so a panicking legacy Sample can no
// longer take down a run.
type DatasetV2 = core.DatasetV2

// AsDatasetV2 adapts any Dataset to the error-returning DatasetV2 access
// path; datasets that already implement it are returned unchanged, and
// legacy datasets get a wrapper that converts a panicking Sample into an
// ordinary error.
func AsDatasetV2(ds Dataset) DatasetV2 { return core.AsV2(ds) }

// IngestStats reports how an out-of-core dataset behaved during a run —
// loads (including reloads after eviction), evictions, and the peak number
// of simultaneously resident samples. Runs over such datasets carry a
// snapshot in Result.Stats.Ingest.
type IngestStats = core.IngestStats

// SampleDirOptions configures OpenSampleDir: the file glob, the read-ahead
// window (Prefetch), the background-load parallelism, and the resident-set
// bound (MaxResident, default 2×Prefetch when prefetching).
type SampleDirOptions = samplefile.DirOptions

// SampleDir is a DatasetV2 backed by a directory of sample files, one file
// per sample (text or the compact binary encoding, auto-detected), loaded
// lazily and in parallel with single-flight deduplication. With a prefetch
// window it reads the next block of files while the current block
// computes and evicts least-recently-used samples, so arbitrarily large
// collections run in bounded memory.
type SampleDir = samplefile.DirDataset

// OpenSampleDir opens a directory of sample files (see samplefile's
// WriteText/WriteBinary for the formats) as an out-of-core dataset over
// the attribute universe [0, numAttributes).
func OpenSampleDir(dir string, numAttributes uint64, opts SampleDirOptions) (*SampleDir, error) {
	return samplefile.OpenDirOptions(dir, numAttributes, opts)
}
