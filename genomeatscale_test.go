package genomeatscale

import (
	"math"
	"testing"
)

func TestFacadeSequentialAndDistributedAgree(t *testing.T) {
	ds, err := NewDataset(
		[]string{"x", "y", "z"},
		[][]uint64{{1, 2, 3, 4}, {3, 4, 5, 6}, {100, 101}},
		200,
	)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Similarity(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Procs = 4
	opts.BatchCount = 2
	dist, err := Similarity(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(seq.Similarity(i, j)-dist.Similarity(i, j)) > 1e-12 {
				t.Fatalf("paths disagree at (%d,%d)", i, j)
			}
		}
	}
	if math.Abs(seq.Similarity(0, 1)-1.0/3.0) > 1e-12 {
		t.Errorf("S(x,y) = %v, want 1/3", seq.Similarity(0, 1))
	}
	if dist.Stats.Comm == nil {
		t.Error("distributed run should expose communication stats")
	}
}

func TestFacadeExactHelpers(t *testing.T) {
	x := []uint64{1, 2, 3}
	y := []uint64{2, 3, 4}
	if ExactJaccard(x, y) != 0.5 {
		t.Error("ExactJaccard wrong")
	}
	if JaccardDistance(x, y) != 0.5 {
		t.Error("JaccardDistance wrong")
	}
}

func TestFacadeDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil, [][]uint64{{10}}, 5); err == nil {
		t.Error("out-of-range attribute should error")
	}
}
