package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the JSON configuration file the go command passes to a
// `go vet -vettool=` tool, one invocation per package. Fields the tool
// does not consume are retained so the file round-trips losslessly.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point shared by cmd/gaslint's two modes:
//
//   - invoked by the go command (`go vet -vettool=gaslint ./...`): a
//     single *.cfg argument, plus the -V=full and -flags handshakes the
//     vet driver performs first;
//   - invoked standalone (`gaslint ./...`): package patterns, loaded with
//     the build-cache loader.
//
// Both modes exit 0 when the tree is clean and non-zero with findings on
// stderr otherwise, so either one can gate CI.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	if len(os.Args) == 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V="):
			// The go command fingerprints the tool for its action
			// cache; the output format follows x/tools unitchecker.
			if os.Args[1] == "-V=full" {
				fmt.Printf("%s version devel buildID=%x\n", progname, selfDigest())
			} else {
				fmt.Printf("%s version devel\n", progname)
			}
			return
		case os.Args[1] == "-flags":
			// The go command asks which -<analyzer>.<flag> options the
			// tool accepts before forwarding any.
			printFlagDefs(analyzers)
			return
		}
	}

	registerFlags(analyzers)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] packages...\n", progname)
		fmt.Fprintf(os.Stderr, "       %s file.cfg  (go vet -vettool mode)\n\n", progname)
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, doc)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := runVetCfg(args[0], analyzers)
		exitWith(progname, diags, err)
	}
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	pkgs, err := Load(args...)
	if err != nil {
		exitWith(progname, nil, err)
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(pkg, analyzers)
		if err != nil {
			exitWith(progname, nil, err)
		}
		diags = append(diags, ds...)
	}
	SortDiagnostics(diags)
	exitWith(progname, diags, nil)
}

// runVetCfg analyzes the single package described by a go vet config file.
func runVetCfg(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgPath, err)
	}
	// The go command requires an output file regardless of findings; the
	// tool exports no facts, so the file is an empty placeholder.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	fset := token.NewFileSet()
	imp := newCacheImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := checkPackage(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	return RunPackage(pkg, analyzers)
}

func exitWith(progname string, diags []Diagnostic, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// registerFlags exposes each analyzer's flags as -<analyzer>.<flag>.
func registerFlags(analyzers []*Analyzer) {
	for _, a := range analyzers {
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
}

// printFlagDefs answers the go command's -flags query with the JSON shape
// it expects: a list of {Name, Bool, Usage} objects.
func printFlagDefs(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlag
	for _, a := range analyzers {
		a.Flags.VisitAll(func(f *flag.Flag) {
			b, ok := f.Value.(interface{ IsBoolFlag() bool })
			defs = append(defs, jsonFlag{
				Name:  a.Name + "." + f.Name,
				Bool:  ok && b.IsBoolFlag(),
				Usage: f.Usage,
			})
		})
	}
	data, err := json.Marshal(defs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// selfDigest hashes the executable so the go command's cache key changes
// whenever the tool is rebuilt.
func selfDigest() []byte {
	exe, err := os.Executable()
	if err != nil {
		return []byte("unknown")
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return []byte("unknown")
	}
	sum := sha256.Sum256(data)
	return sum[:]
}
