package errclose_test

import (
	"testing"

	"genomeatscale/internal/analysis/analysistest"
	"genomeatscale/internal/analysis/errclose"
)

func TestErrclose(t *testing.T) {
	// Place the "closes" testdata package inside the serialization
	// scope so the Write/WriteString rule applies there; "readerly"
	// stays outside it.
	flag := errclose.Analyzer.Flags.Lookup("pkgs")
	old := flag.Value.String()
	if err := flag.Value.Set(old + ",closes"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := flag.Value.Set(old); err != nil {
			t.Fatal(err)
		}
	}()
	analysistest.Run(t, analysistest.TestData(), errclose.Analyzer, "closes", "readerly")
}
