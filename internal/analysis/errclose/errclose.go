// Package errclose defines the gaslint analyzer that surfaces write-back
// errors.
//
// On a full disk the failure often arrives only at Close/Sync/Flush time,
// after every Write succeeded against the page cache; discarding those
// errors silently truncates results. The analyzer enforces the
// samplefile/indexfile write-back discipline:
//
//   - the error of Close or Sync on a file opened writable in the same
//     function (os.Create, or os.OpenFile with a write flag) must not be
//     discarded, deferred or not — use the named-return defer-closure
//     idiom (see samplefile.WriteText) or check inline;
//   - a discarded Sync or Flush error is a finding everywhere: both
//     methods exist only to push buffered writes down;
//   - in the serialization layers (configurable package scope), a
//     discarded (io.Writer).Write / WriteString error is a finding.
//
// Read-path `defer f.Close()` on os.Open'd files is conventional and not
// flagged. Test files are exempt.
package errclose

import (
	"go/ast"
	"go/types"
	"strings"

	"genomeatscale/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errclose",
	Doc: `Close/Sync/Flush and serialization-layer Write errors must be checked

A discarded error from Close/Sync on a file opened writable in the same
function, from any Sync/Flush, or from Write/WriteString in the
configured serialization packages, is a finding.`,
	Run: run,
}

// writePkgs scopes the Write/WriteString rule: comma-separated package
// path fragments. The default covers the repo's output serialization
// layers, where every byte lost is result data.
var writePkgs string

func init() {
	Analyzer.Flags.StringVar(&writePkgs,
		"pkgs", "internal/output,internal/samplefile,internal/index/indexfile",
		"comma-separated package path fragments where discarded Write errors are findings")
}

var writeFlagNames = map[string]bool{
	"O_WRONLY": true, "O_RDWR": true, "O_APPEND": true,
	"O_CREATE": true, "O_TRUNC": true,
}

func run(pass *analysis.Pass) error {
	checkWrites := false
	for _, frag := range strings.Split(writePkgs, ",") {
		if frag != "" && strings.Contains(pass.Pkg.Path(), strings.TrimSpace(frag)) {
			checkWrites = true
		}
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Package) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body, checkWrites)
				}
				return false
			case *ast.FuncLit:
				checkFunc(pass, fn.Body, checkWrites)
				return false
			}
			return true
		})
	}
	return nil
}

// checkFunc analyzes one function body. Nested function literals are
// visited by the caller's walk, but writable-file tracking is per
// function: a closure closing over an outer writable file is checked
// against the outer function's tracked set only when the discard happens
// syntactically inside the outer body walk, which Inspect guarantees —
// the nested literal's statements are part of the outer body's tree.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, checkWrites bool) {
	writable := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			trackWritable(pass, stmt, writable)
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				checkDiscard(pass, call, writable, checkWrites, false)
			}
		case *ast.DeferStmt:
			checkDiscard(pass, stmt.Call, writable, checkWrites, true)
		case *ast.GoStmt:
			checkDiscard(pass, stmt.Call, writable, checkWrites, true)
		}
		return true
	})
}

// trackWritable records variables bound to a writable *os.File:
// `f, err := os.Create(...)` or `f, err := os.OpenFile(path, flags, perm)`
// whose flags expression mentions a write flag.
func trackWritable(pass *analysis.Pass, stmt *ast.AssignStmt, writable map[types.Object]bool) {
	if len(stmt.Rhs) != 1 || len(stmt.Lhs) == 0 {
		return
	}
	call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	isWritableOpen := analysis.PkgFunc(pass.TypesInfo, call, "os", "Create") ||
		analysis.PkgFunc(pass.TypesInfo, call, "os", "OpenFile") && hasWriteFlag(call)
	if !isWritableOpen {
		return
	}
	id, ok := stmt.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		writable[obj] = true
	} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
		writable[obj] = true
	}
}

func hasWriteFlag(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	found := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && writeFlagNames[id.Name] {
			found = true
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && writeFlagNames[sel.Sel.Name] {
			found = true
		}
		return !found
	})
	return found
}

// checkDiscard reports a call used as a bare statement (or defer/go call)
// that throws away a write-back error.
func checkDiscard(pass *analysis.Pass, call *ast.CallExpr, writable map[types.Object]bool, checkWrites, deferred bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !returnsError(sig) {
		return
	}
	name := fn.Name()
	switch name {
	case "Sync", "Flush":
		pass.Reportf(call.Pos(), "%s error discarded: %s exists to push buffered writes down, a full disk fails here", name, name)
	case "Close":
		if recvObj(pass, sel.X) != nil && writable[recvObj(pass, sel.X)] {
			how := "checked"
			if deferred {
				how = "checked via the named-return defer-closure idiom (see samplefile.WriteText)"
			}
			pass.Reportf(call.Pos(), "Close error discarded on a file opened writable in this function: write-back failures surface at close time and must be %s", how)
		}
	case "Write", "WriteString":
		if checkWrites && isWriterLike(sig, name) {
			pass.Reportf(call.Pos(), "%s error discarded in a serialization layer: lost bytes here are lost result data", name)
		}
	}
}

func recvObj(pass *analysis.Pass, recv ast.Expr) types.Object {
	id, ok := ast.Unparen(recv).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

// isWriterLike matches the io.Writer / io.StringWriter method shapes.
func isWriterLike(sig *types.Signature, name string) bool {
	params := sig.Params()
	res := sig.Results()
	if params.Len() != 1 || res.Len() != 2 {
		return false
	}
	switch name {
	case "Write":
		sl, ok := params.At(0).Type().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().(*types.Basic)
		return ok && b.Kind() == types.Byte
	case "WriteString":
		b, ok := params.At(0).Type().(*types.Basic)
		return ok && b.Kind() == types.String
	}
	return false
}
