// Package readerly exercises the errclose analyzer outside the
// serialization scope: Write discards are not findings here, writable
// close discards still are.
package readerly

import (
	"bufio"
	"os"
)

// LogLine: Write discards outside the scoped layers are tolerated.
func LogLine(w *bufio.Writer) {
	w.WriteString("progress\n")
}

// StillChecked: the writable-close rule is scope-independent.
func StillChecked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `Close error discarded on a file opened writable`
	return nil
}
