// Package closes exercises the errclose analyzer: discarded write-back
// errors on writable files, Sync/Flush discards, and serialization-layer
// Write discards (this package is placed in scope by the test).
package closes

import (
	"bufio"
	"os"
)

// DeferUnchecked loses the close error of a created file.
func DeferUnchecked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `Close error discarded on a file opened writable`
	_, err = f.WriteString("data")
	return err
}

// InlineUnchecked loses it without a defer.
func InlineUnchecked(path string) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return
	}
	f.Close() // want `Close error discarded on a file opened writable`
}

// ReadPathOK: deferred close on a read-only file is conventional.
func ReadPathOK(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return err
}

// Idiom is the blessed write-back shape: the named return surfaces the
// close error when nothing earlier failed.
func Idiom(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	_, err = f.WriteString("data")
	return err
}

// FlushDiscard: Flush exists only to push buffered writes down.
func FlushDiscard(w *bufio.Writer) {
	w.Flush() // want `Flush error discarded`
}

// SyncDiscard: likewise for fsync.
func SyncDiscard(f *os.File) {
	f.Sync() // want `Sync error discarded`
}

// WriteDiscard is a finding only in serialization-layer packages.
func WriteDiscard(w *bufio.Writer) {
	w.Write([]byte("x"))      // want `Write error discarded in a serialization layer`
	w.WriteString("y")        // want `WriteString error discarded in a serialization layer`
	_, _ = w.Write([]byte{1}) // explicit discard is visible in review and allowed
}
