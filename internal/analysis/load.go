package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns with
// `go list -deps -export -json`, then parses and type-checks each
// non-dependency package from source, resolving imports through the build
// cache's export data. It needs no network and no dependencies beyond the
// Go toolchain: `go list -export` compiles (or reuses) every package's
// export file locally.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && lp.Module != nil {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := newCacheImporter(fset, exports, nil)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, absFiles(t.Dir, t.GoFiles))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}

// CheckFiles parses and type-checks one package from explicit source
// files, resolving imports through an export-data map (import path →
// export file, as produced by `go list -export`). The analysistest
// harness uses it to load testdata packages that are invisible to the
// normal build.
func CheckFiles(pkgPath, dir string, files []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	imp := newCacheImporter(fset, exports, nil)
	return checkPackage(fset, imp, pkgPath, dir, files)
}

// ListExports resolves the export-data files for the given import paths
// with one `go list -export` invocation. "unsafe" needs no export data
// and is skipped.
func ListExports(importPaths []string) (map[string]string, error) {
	paths := make([]string, 0, len(importPaths))
	for _, p := range importPaths {
		if p != "unsafe" {
			paths = append(paths, p)
		}
	}
	exports := make(map[string]string)
	if len(paths) == 0 {
		return exports, nil
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -export output: %w", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// cacheImporter resolves imports through compiler export data files (from
// the build cache via `go list -export`, or from a vet config's
// PackageFile map), with an optional vendor/ImportMap indirection.
type cacheImporter struct {
	gc        types.ImporterFrom
	importMap map[string]string
}

func newCacheImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &cacheImporter{
		gc:        importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
		importMap: importMap,
	}
}

func (ci *cacheImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := ci.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ci.gc.ImportFrom(path, "", 0)
}
