package analysis

import (
	"go/ast"
	"go/types"
)

// WalkStack traverses every node under root, invoking fn with the node and
// the stack of its ancestors (outermost first, not including n itself).
// Returning false skips the node's children.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// CalleeFunc resolves the *types.Func a call expression invokes, or nil
// for builtins, function-typed variables, conversions, and the like.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// HasContextParam reports whether any parameter of sig is a
// context.Context.
func HasContextParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if IsContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// PkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "context", "Background").
func PkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
