package caster

import "unsafe"

// AddrOf uses unsafe outside the allowlisted cast file.
func AddrOf(p *int) uintptr {
	return uintptr(unsafe.Pointer(p)) // want `unsafe\.Pointer outside an allowlisted cast file`
}

// SizeOK: Sizeof is pure and allowed anywhere.
func SizeOK() uintptr {
	return unsafe.Sizeof(int64(0))
}
