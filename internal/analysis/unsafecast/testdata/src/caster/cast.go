// Package caster exercises the unsafecast analyzer inside an
// allowlisted cast file: guard-dominated uses and the endianness probe
// itself are clean, unguarded uses need an annotation.
package caster

import "unsafe"

// hostLittleEndian probes the byte order once; the probe is part of the
// guard discipline and exempt.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// CastU64 reinterprets b as a uint64 slice when byte order and
// alignment allow it — the blessed guarded shape.
func CastU64(b []byte) []uint64 {
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	return nil
}

// Unguarded reinterprets without the endianness+alignment check.
func Unguarded(u []uint64) []int64 {
	return *(*[]int64)(unsafe.Pointer(&u)) // want `unsafe\.Pointer not dominated by an endianness\+alignment guard`
}

// Annotated documents an endianness-independent reinterpret.
func Annotated(u []uint64) []int64 {
	//gas:unsafe same-width reinterpret of an already-adopted slice; element bytes are untouched
	return *(*[]int64)(unsafe.Pointer(&u))
}

// SizeofOK: pure compile-time arithmetic is always allowed.
func SizeofOK() uintptr {
	return unsafe.Sizeof(uint64(0))
}
