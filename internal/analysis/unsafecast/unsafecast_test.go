package unsafecast_test

import (
	"testing"

	"genomeatscale/internal/analysis/analysistest"
	"genomeatscale/internal/analysis/unsafecast"
)

func TestUnsafecast(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), unsafecast.Analyzer, "caster")
}
