// Package unsafecast defines the gaslint analyzer that fences zero-copy
// unsafe adoption.
//
// The index file format serves mmap'd payloads straight from the page
// cache by reinterpreting byte slices as word slices — legal only on a
// host whose byte order matches the file's and only at the file's
// alignment guarantees. The analyzer confines the dangerous unsafe
// surface (Pointer, Slice, SliceData, String, StringData, Add) to
// allowlisted cast files (cast.go by default), and inside those requires
// each use to be dominated by an endianness+alignment guard:
//
//	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
//	        return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
//	}
//
// Uses inside the guard's own condition (the alignment probe) and inside
// the declaration of the endianness guard variable itself are part of the
// discipline and exempt. An endianness-independent use in a cast file
// (e.g. a same-width reinterpret of an already-adopted slice) must be
// annotated //gas:unsafe <reason>. unsafe.Sizeof/Alignof/Offsetof are
// pure and always allowed. Test files are exempt.
package unsafecast

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"genomeatscale/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "unsafecast",
	Doc: `unsafe zero-copy casts only in allowlisted files, behind endianness+alignment guards

unsafe.Pointer/Slice/SliceData/String/StringData/Add outside an
allowlisted cast file, or inside one but not dominated by an
endianness+alignment guard (and not annotated //gas:unsafe <reason>), is
a finding.`,
	Run: run,
}

// allowFiles lists base filenames where unsafe adoption is permitted.
var allowFiles string

func init() {
	Analyzer.Flags.StringVar(&allowFiles,
		"files", "cast.go",
		"comma-separated base filenames allowed to contain unsafe casts")
}

var dangerous = map[string]bool{
	"Pointer": true, "Slice": true, "SliceData": true,
	"String": true, "StringData": true, "Add": true,
}

func run(pass *analysis.Pass) error {
	allowed := make(map[string]bool)
	for _, name := range strings.Split(allowFiles, ",") {
		if name = strings.TrimSpace(name); name != "" {
			allowed[name] = true
		}
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Package) {
			continue
		}
		fileAllowed := allowed[pass.Filename(f.Package)]
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isUnsafeSel(pass, sel) || !dangerous[sel.Sel.Name] {
				return true
			}
			if !fileAllowed {
				pass.Reportf(sel.Pos(), "unsafe.%s outside an allowlisted cast file: move zero-copy adoption into %s alongside its guards", sel.Sel.Name, allowFiles)
				return true
			}
			if dominatedByGuard(stack, n) || inGuardVarDecl(stack) {
				return true
			}
			if _, ok := pass.Annotation(sel.Pos(), "unsafe"); ok {
				return true
			}
			pass.Reportf(sel.Pos(), "unsafe.%s not dominated by an endianness+alignment guard: wrap it in `if <endianness> && <addr>%%<align> == 0` or annotate //gas:unsafe <reason>", sel.Sel.Name)
			return true
		})
	}
	return nil
}

func isUnsafeSel(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "unsafe"
}

// endiannessIdent matches identifiers that carry the byte-order guard:
// hostLittleEndian, isBigEndian, byteOrderMatches, ...
func endiannessIdent(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			lower := strings.ToLower(id.Name)
			if strings.Contains(lower, "littleendian") ||
				strings.Contains(lower, "bigendian") ||
				strings.Contains(lower, "byteorder") {
				found = true
			}
		}
		return !found
	})
	return found
}

func alignmentCheck(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.REM {
			found = true
		}
		return !found
	})
	return found
}

// dominatedByGuard reports whether some enclosing if statement's condition
// names the endianness guard and performs an alignment check; uses inside
// that condition itself (the alignment probe takes the address it tests)
// count as guarded.
func dominatedByGuard(stack []ast.Node, n ast.Node) bool {
	for _, anc := range stack {
		ifStmt, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		if endiannessIdent(ifStmt.Cond) && alignmentCheck(ifStmt.Cond) {
			return true
		}
	}
	return false
}

// inGuardVarDecl reports whether the use sits in the initializer of the
// endianness guard variable itself — the probe that makes every other
// guard meaningful, e.g.
//
//	var hostLittleEndian = func() bool {
//	        x := uint16(1)
//	        return *(*byte)(unsafe.Pointer(&x)) == 1
//	}()
func inGuardVarDecl(stack []ast.Node) bool {
	for _, anc := range stack {
		spec, ok := anc.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range spec.Names {
			if endiannessIdent(name) {
				return true
			}
		}
	}
	return false
}
