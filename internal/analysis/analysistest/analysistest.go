// Package analysistest runs a gaslint analyzer over a testdata package
// and compares its findings against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib-only
// framework in internal/analysis.
//
// Testdata layout follows the x/tools convention:
//
//	<analyzer>/testdata/src/<pkg>/*.go
//
// A line expecting findings carries one `// want` comment with one quoted
// or backquoted regular expression per expected diagnostic:
//
//	f.Close() // want `Close error discarded`
//
// Every diagnostic must match an expectation on its line and every
// expectation must be matched, so both false positives and false
// negatives fail the test — including the annotation escape hatches
// (//gas:invariant and friends), which are exercised as negative cases.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"genomeatscale/internal/analysis"
)

// Run analyzes each testdata package with a and reports mismatches
// between findings and // want expectations as test failures.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPkg(t, testdata, a, pkg)
	}
}

// TestData returns the canonical testdata directory of the calling
// test's package.
func TestData() string {
	abs, err := filepath.Abs("testdata")
	if err != nil {
		panic(err) //gas:invariant test-only harness; no testdata directory means the test cannot run at all
	}
	return abs
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

func runPkg(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no testdata sources in %s: %v", dir, err)
	}
	sort.Strings(matches)

	imports, err := collectImports(matches)
	if err != nil {
		t.Fatal(err)
	}
	exports, err := analysis.ListExports(imports)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := analysis.CheckFiles(pkg, dir, matches, exports)
	if err != nil {
		t.Fatalf("loading %s: %v", pkg, err)
	}
	diags, err := analysis.RunPackage(loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
	}

	want, err := parseExpectations(matches)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !claim(want, d) {
			t.Errorf("%s: unexpected finding: %s", pkg, d)
		}
	}
	for _, w := range want {
		if !w.hit {
			t.Errorf("%s: %s:%d: expected finding matching %q, got none", pkg, filepath.Base(w.file), w.line, w.text)
		}
	}
}

func claim(want []*expectation, d analysis.Diagnostic) bool {
	for _, w := range want {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

func collectImports(files []string) ([]string, error) {
	seen := make(map[string]bool)
	fset := token.NewFileSet()
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			seen[path] = true
		}
	}
	out := make([]string, 0, len(seen))
	for path := range seen {
		out = append(out, path)
	}
	sort.Strings(out)
	return out, nil
}

// wantArg matches one backquoted or double-quoted expectation.
var wantArg = regexp.MustCompile("^\\s*(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

func parseExpectations(files []string) ([]*expectation, error) {
	var out []*expectation
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for {
				m := wantArg.FindStringSubmatch(rest)
				if m == nil {
					break
				}
				rest = rest[len(m[0]):]
				var text string
				if m[1][0] == '`' {
					text = m[1][1 : len(m[1])-1]
				} else if text, err = strconv.Unquote(m[1]); err != nil {
					return nil, fmt.Errorf("%s:%d: bad want string %s: %w", name, i+1, m[1], err)
				}
				re, err := regexp.Compile(text)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %w", name, i+1, err)
				}
				out = append(out, &expectation{file: name, line: i + 1, re: re, text: text})
			}
		}
	}
	return out, nil
}
