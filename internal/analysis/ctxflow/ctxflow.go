// Package ctxflow defines the gaslint analyzer that keeps cancellation
// flowing through call chains.
//
// A function that receives a context.Context has accepted responsibility
// for honoring it. Minting a fresh context.Background()/context.TODO()
// inside such a function severs the caller's cancellation (the engine
// threads ctx through BSP barriers and worker pools precisely so a
// cancelled run unwinds everywhere), as does calling a callee's ctx-less
// variant when a ...Ctx sibling exists (par.ForEach vs par.ForEachCtx,
// bitmat's GramAccumulate vs GramAccumulateCtx, bsp.Run vs bsp.RunCtx).
//
// One idiom is allowed: the nil-guard `if ctx == nil { ctx = context.
// Background() }` at a public API boundary, which only runs when no
// context was supplied. A deliberately detached call can be annotated
// //gas:detached <reason>. Test files are exempt.
package ctxflow

import (
	"go/ast"
	"go/types"

	"genomeatscale/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: `functions receiving a context must propagate it

Inside a function with a context.Context parameter, calling
context.Background()/context.TODO() (outside the nil-guard idiom) or a
callee's ctx-less variant when a ...Ctx sibling exists is a finding.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Package) {
			continue
		}
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ctxParams := visibleCtxParams(pass, stack)
			if len(ctxParams) == 0 {
				return true
			}
			checkCall(pass, call, stack, ctxParams)
			return true
		})
	}
	return nil
}

// visibleCtxParams collects the context.Context parameters of every
// function literal/declaration enclosing the current node. A closure that
// captures an outer ctx is held to the same rule as its parent.
func visibleCtxParams(pass *analysis.Pass, stack []ast.Node) map[types.Object]bool {
	var params map[types.Object]bool
	add := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj != nil && analysis.IsContextType(obj.Type()) {
					if params == nil {
						params = make(map[types.Object]bool)
					}
					params[obj] = true
				}
			}
		}
	}
	for _, anc := range stack {
		switch fn := anc.(type) {
		case *ast.FuncDecl:
			add(fn.Type)
		case *ast.FuncLit:
			add(fn.Type)
		}
	}
	return params
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, ctxParams map[types.Object]bool) {
	if analysis.PkgFunc(pass.TypesInfo, call, "context", "Background") ||
		analysis.PkgFunc(pass.TypesInfo, call, "context", "TODO") {
		if isNilGuard(pass, call, stack, ctxParams) {
			return
		}
		if _, ok := pass.Annotation(call.Pos(), "detached"); ok {
			return
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		pass.Reportf(call.Pos(), "context.%s() inside a function that receives a context: thread the caller's ctx (or annotate //gas:detached <reason>)", fn.Name())
		return
	}

	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || analysis.HasContextParam(sig) {
		return
	}
	name := fn.Name()
	if len(name) >= 3 && name[len(name)-3:] == "Ctx" {
		return
	}
	sibling := lookupSibling(fn, sig, name+"Ctx")
	if sibling == nil {
		return
	}
	if _, ok := pass.Annotation(call.Pos(), "detached"); ok {
		return
	}
	pass.Reportf(call.Pos(), "calling %s while holding a context: use the %s sibling so cancellation propagates (or annotate //gas:detached <reason>)", name, sibling.Name())
}

// lookupSibling finds a ctx-accepting variant of fn named siblingName:
// in the method set of fn's receiver for methods, in fn's package scope
// for package-level functions.
func lookupSibling(fn *types.Func, sig *types.Signature, siblingName string) *types.Func {
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), siblingName)
	} else {
		obj = fn.Pkg().Scope().Lookup(siblingName)
	}
	sibling, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	ssig, ok := sibling.Type().(*types.Signature)
	if !ok || !analysis.HasContextParam(ssig) {
		return nil
	}
	return sibling
}

// isNilGuard recognizes `if ctx == nil { ctx = context.Background() }`:
// the call must be the sole RHS of an assignment to a visible ctx
// parameter, directly inside an if whose condition is `ctx == nil`.
func isNilGuard(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, ctxParams map[types.Object]bool) bool {
	if len(stack) < 3 {
		return false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || ast.Unparen(assign.Rhs[0]) != call {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[lhs]
	if obj == nil || !ctxParams[obj] {
		return false
	}
	// stack[-2] is the if body *ast.BlockStmt, stack[-3] the *ast.IfStmt.
	ifStmt, ok := stack[len(stack)-3].(*ast.IfStmt)
	if !ok {
		return false
	}
	cond, ok := ast.Unparen(ifStmt.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op.String() != "==" {
		return false
	}
	x, y := ast.Unparen(cond.X), ast.Unparen(cond.Y)
	return isIdentFor(pass, x, obj) && isNil(pass, y) ||
		isIdentFor(pass, y, obj) && isNil(pass, x)
}

func isIdentFor(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNilObj
}
