package ctxflow_test

import (
	"testing"

	"genomeatscale/internal/analysis/analysistest"
	"genomeatscale/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "ctx")
}
