// Package ctx exercises the ctxflow analyzer: context re-minting and
// ctx-less sibling calls inside context-receiving functions.
package ctx

import "context"

// Leaf consumes a context properly.
func Leaf(ctx context.Context) error { return ctx.Err() }

// Work / WorkCtx form a ctx-less/ctx-ful sibling pair.
func Work(n int) int { return n }

// WorkCtx is the cancellable variant of Work.
func WorkCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// Good threads the caller's context.
func Good(ctx context.Context) int {
	return WorkCtx(ctx, 1)
}

// MintsBackground severs the caller's cancellation.
func MintsBackground(ctx context.Context) context.Context {
	return context.Background() // want `context.Background\(\) inside a function that receives a context`
}

// MintsTODO severs it with TODO.
func MintsTODO(ctx context.Context) error {
	return Leaf(context.TODO()) // want `context.TODO\(\) inside a function that receives a context`
}

// NilGuard is the allowed public-API-boundary idiom.
func NilGuard(ctx context.Context) int {
	if ctx == nil {
		ctx = context.Background()
	}
	return WorkCtx(ctx, 1)
}

// CallsSibling drops cancellation on the floor: WorkCtx exists.
func CallsSibling(ctx context.Context) int {
	return Work(1) // want `calling Work while holding a context: use the WorkCtx sibling`
}

// Detached documents an intentional escape.
func Detached(ctx context.Context) int {
	//gas:detached fire-and-forget cleanup must outlive the request
	return Work(1)
}

// NoCtx has no context parameter, so neither rule applies.
func NoCtx() int {
	_ = context.Background()
	return Work(1)
}

// T has a Run/RunCtx method sibling pair.
type T struct{}

// Run is the ctx-less variant.
func (T) Run() {}

// RunCtx is the cancellable variant.
func (T) RunCtx(ctx context.Context) { _ = ctx.Err() }

// MethodSibling must call RunCtx.
func MethodSibling(ctx context.Context, t T) {
	t.Run() // want `calling Run while holding a context: use the RunCtx sibling`
}

// Closure inherits the obligation from the enclosing function's ctx.
func Closure(ctx context.Context) func() int {
	return func() int {
		return Work(2) // want `calling Work while holding a context`
	}
}
