package panicfree_test

import (
	"testing"

	"genomeatscale/internal/analysis/analysistest"
	"genomeatscale/internal/analysis/panicfree"
)

func TestPanicfree(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), panicfree.Analyzer, "panics")
}
