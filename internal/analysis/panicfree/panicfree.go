// Package panicfree defines the gaslint analyzer that confines panic to
// annotated internal invariants.
//
// The repo's error discipline (established in the ingestion and index
// PRs) is: anything reachable from untrusted input — readers, parsers,
// public API validation — returns an error; panic is reserved for
// programmer-error invariants whose violation means the code itself is
// wrong. Each surviving panic must say why it is one, with a
// //gas:invariant <reason> directive on its line or the line above.
// Test files are exempt.
package panicfree

import (
	"go/ast"
	"go/types"

	"genomeatscale/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "panicfree",
	Doc: `panic in non-test code must be an annotated internal invariant

Untrusted-input failure paths return errors; a bare panic(...) is a
finding unless //gas:invariant <reason> is attached to it.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Package) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			if _, ok := pass.Annotation(call.Pos(), "invariant"); ok {
				return true
			}
			pass.Reportf(call.Pos(), "panic in library code: return an error on untrusted-input paths, or annotate a true invariant with //gas:invariant <reason>")
			return true
		})
	}
	return nil
}
