package panics

// Test files may panic freely: assertion helpers and harness code are
// exempt from the panicfree discipline.
func helperForTests() {
	panic("test-only panic, not a finding")
}
