// Package panics exercises the panicfree analyzer: bare panics are
// findings, error returns and annotated invariants are not.
package panics

import "fmt"

// Validate is the blessed shape: untrusted input returns an error.
func Validate(n int) error {
	if n < 0 {
		return fmt.Errorf("panics: negative %d", n)
	}
	return nil
}

// BadIndex panics without an annotation.
func BadIndex(i int) {
	panic(fmt.Sprintf("index %d", i)) // want `panic in library code`
}

// Invariant carries its justification on the line above.
func Invariant(i int) {
	if i < 0 {
		//gas:invariant caller validated i at the API boundary
		panic("negative index")
	}
}

// Trailing carries its justification on the same line.
func Trailing() {
	panic("unreachable") //gas:invariant documented Must-style helper, panics only on programmer error
}

// EmptyReason shows that a reason-less annotation does not suppress.
func EmptyReason() {
	//gas:invariant
	panic("x") // want `panic in library code`
}
