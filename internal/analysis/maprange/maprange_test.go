package maprange_test

import (
	"testing"

	"genomeatscale/internal/analysis/analysistest"
	"genomeatscale/internal/analysis/maprange"
)

func TestMaprange(t *testing.T) {
	// Put the "mapscope" testdata package inside the serialization
	// scope; "freefold" stays outside it.
	flag := maprange.Analyzer.Flags.Lookup("pkgs")
	old := flag.Value.String()
	if err := flag.Value.Set(old + ",mapscope"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := flag.Value.Set(old); err != nil {
			t.Fatal(err)
		}
	}()
	analysistest.Run(t, analysistest.TestData(), maprange.Analyzer, "mapscope", "freefold")
}
