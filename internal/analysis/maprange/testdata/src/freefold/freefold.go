// Package freefold sits outside the maprange serialization scope, so
// unordered folds are not findings here.
package freefold

// Sum folds in arbitrary order.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
