// Package mapscope exercises the maprange analyzer inside the
// serialization scope (the test adds this package to the scope flag).
package mapscope

import (
	"fmt"
	"io"
	"sort"
)

// WriteMap streams entries in map order — nondeterministic bytes.
func WriteMap(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration order reaches serialized output`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// CollectThenSort is the blessed idiom: collect keys, sort, then emit.
func CollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortSlice: sort.Slice on the collected keys also counts.
func SortSlice(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Annotated documents a genuinely order-insensitive fold.
func Annotated(m map[string]int) int {
	total := 0
	//gas:unordered summation is commutative; the total is order-independent
	for _, v := range m {
		total += v
	}
	return total
}

// CollectNoSort collects but never sorts — still nondeterministic.
func CollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order reaches serialized output`
		keys = append(keys, k)
	}
	return keys
}
