// Package maprange defines the gaslint analyzer that keeps serialization
// deterministic.
//
// Go randomizes map iteration order. In most code that is harmless, but
// at the wire/index/output boundary it turns byte-identical equivalence
// guarantees (distributed = sequential, TCP = in-process, served top-k =
// batch top-k) into flaky ones. In the configured serialization packages,
// every `range` over a map is a finding unless it follows the
// collect-then-sort idiom —
//
//	for k := range m {
//	        keys = append(keys, k)
//	}
//	sort.Strings(keys)
//
// — or is annotated //gas:unordered <reason> (for genuinely
// order-insensitive folds such as building a set union that is sorted
// downstream). Test files are exempt.
package maprange

import (
	"go/ast"
	"go/types"
	"strings"

	"genomeatscale/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: `map iteration feeding serialization must be sorted or annotated

In the configured packages (the wire codec, output writers, index file
and stats layers), ranging over a map is a finding unless the loop only
collects keys that are subsequently sorted, or carries
//gas:unordered <reason>.`,
	Run: run,
}

// scopePkgs lists package path fragments where iteration order reaches
// serialized bytes: the dist wire codec, the output writers, the index
// file format, the stats/CLI JSON emitters, and every cmd/ tool.
var scopePkgs string

func init() {
	Analyzer.Flags.StringVar(&scopePkgs,
		"pkgs", "internal/dist,internal/output,internal/index,internal/cliutil,internal/stats,genomeatscale/cmd/",
		"comma-separated package path fragments whose map ranges must be deterministic")
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, frag := range strings.Split(scopePkgs, ",") {
		if frag = strings.TrimSpace(frag); frag != "" && strings.Contains(pass.Pkg.Path(), frag) {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Package) {
			continue
		}
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if _, ok := pass.Annotation(rng.Pos(), "unordered"); ok {
				return true
			}
			if collectThenSort(pass, rng, stack) {
				return true
			}
			pass.Reportf(rng.Pos(), "map iteration order reaches serialized output: collect keys and sort (see docs/static_analysis.md), or annotate //gas:unordered <reason>")
			return true
		})
	}
	return nil
}

// collectThenSort recognizes the sorted-iteration idiom: the loop body is
// exactly one `s = append(s, ...)` statement, and the enclosing function
// later sorts s with sort.* or slices.Sort*.
func collectThenSort(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) bool {
	var stmts []ast.Stmt
	for _, s := range rng.Body.List {
		if _, ok := s.(*ast.EmptyStmt); !ok {
			stmts = append(stmts, s)
		}
	}
	if len(stmts) != 1 {
		return false
	}
	assign, ok := stmts[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	collected := pass.TypesInfo.Uses[lhs]
	if collected == nil {
		collected = pass.TypesInfo.Defs[lhs]
	}
	if collected == nil {
		return false
	}

	// Find the innermost enclosing function and look for a later sort of
	// the collected slice.
	var enclosing ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			enclosing = stack[i]
		}
		if enclosing != nil {
			break
		}
	}
	if enclosing == nil {
		return false
	}
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if ok && pass.TypesInfo.Uses[arg] == collected {
			sorted = true
		}
		return !sorted
	})
	return sorted
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}
