// Package analysis is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's needs.
//
// The repo's correctness rests on conventions the compiler cannot see:
// unsafe zero-copy casts only behind endianness+alignment guards, panics
// confined to annotated internal invariants, contexts threaded rather than
// re-minted, Close/Sync errors surfaced on write-back, and deterministic
// iteration at every serialization boundary. The five analyzers under
// internal/analysis/... machine-check those invariants on every change.
//
// The module must build offline with the Go toolchain alone, so instead of
// depending on x/tools this package provides the same Analyzer/Pass/
// Diagnostic contract plus two drivers: a standalone multichecker loader
// (Load + Run, used by `gaslint ./...`) and the `go vet -vettool=`
// unitchecker protocol (Main, used by `make lint`). Analyzers written
// against this API use only the stdlib go/ast and go/types surface, so
// they could be lifted onto the real x/tools multichecker unchanged in
// everything but the import path.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer describes one repo-invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flag names.
	Name string

	// Doc is the one-paragraph help text; its first line is the summary.
	Doc string

	// Flags holds analyzer-specific flags, registered as
	// -<name>.<flag> by the drivers.
	Flags flag.FlagSet

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one package to an analyzer and collects its findings.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives each finding.
	report func(Diagnostic)

	// annotations caches the package's //gas: comment directives,
	// built lazily on first lookup.
	annotations map[annotationKey]string
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file. The repo's
// invariants are library-and-binary discipline; tests may panic, mint
// contexts, and discard errors freely.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// FileOf returns the *ast.File containing pos, or nil.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Filename returns the base name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

type annotationKey struct {
	file string // filename
	line int
	kind string // e.g. "invariant"
}

// annotationRE matches a //gas:<kind> <reason> directive. The reason is
// mandatory: a suppression without a recorded why is itself a finding.
const annotationPrefix = "//gas:"

// Annotation reports whether a //gas:<kind> <reason> directive is attached
// to the statement at pos: on the same line (trailing comment) or on the
// line immediately above (leading comment). The reason string is returned;
// a directive with an empty reason does not count (the analyzers flag the
// site anyway, forcing every exemption to carry its justification).
func (p *Pass) Annotation(pos token.Pos, kind string) (reason string, ok bool) {
	if p.annotations == nil {
		p.annotations = make(map[annotationKey]string)
		for _, f := range p.Files {
			fname := p.Fset.Position(f.Package).Filename
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, annotationPrefix) {
						continue
					}
					rest := strings.TrimPrefix(text, annotationPrefix)
					k, r, _ := strings.Cut(rest, " ")
					r = strings.TrimSpace(r)
					if k == "" || r == "" {
						continue
					}
					line := p.Fset.Position(c.Pos()).Line
					p.annotations[annotationKey{fname, line, k}] = r
				}
			}
		}
	}
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		if r, ok := p.annotations[annotationKey{position.Filename, line, kind}]; ok {
			return r, true
		}
	}
	return "", false
}

// RunPackage applies analyzers to one loaded package and returns the
// findings sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by file, line, column, then analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
