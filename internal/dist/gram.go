package dist

import (
	"fmt"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/bsp"
	"genomeatscale/internal/grid"
	"genomeatscale/internal/par"
	"genomeatscale/internal/sparse"
	"genomeatscale/internal/tile"
)

// Tags for the engine's point-to-point traffic. Collectives use negative
// tags, so any non-negative constants are safe; distinct values keep the A
// and B panels of one superstep separable in the shared inbox.
const (
	tagAPanel       = 101
	tagBPanel       = 102
	tagLayerPartial = 103
	tagTileEmit     = 104
)

// entrySlice is the wire form of a batch of packed-word coordinates. Each
// entry carries a word row, a column and a 64-bit mask word: 24 bytes.
type entrySlice []bitmat.PackedEntry

// ByteSize implements bsp.ByteSizer so the BSP accounting charges the exact
// coordinate volume (8 bytes each for word row, column and mask word).
func (e entrySlice) ByteSize() int { return 24 * len(e) }

// packedWire moves a packed block between ranks: the coordinate entries
// plus the dimensions and dense-threshold spec needed to rebuild it with
// bitmat.FromEntriesThreshold, so a replicated panel re-adopts the hybrid
// dense/sparse layout of its origin at the receiving rank.
type packedWire struct {
	Entries        entrySlice
	WordRows       int
	Cols           int
	B              int
	ActiveRows     int
	DenseThreshold int
}

// ByteSize implements bsp.ByteSizer: the entries plus five dimension words.
func (w packedWire) ByteSize() int { return w.Entries.ByteSize() + 40 }

func toWire(p *bitmat.Packed) packedWire {
	return packedWire{
		Entries:        p.Entries(),
		WordRows:       p.WordRows,
		Cols:           p.Cols,
		B:              p.B,
		ActiveRows:     p.ActiveRows,
		DenseThreshold: p.DenseThresholdSpec(),
	}
}

func fromWire(w packedWire) *bitmat.Packed {
	return bitmat.FromEntriesThreshold(w.Entries, w.WordRows, w.Cols, w.B, w.ActiveRows, w.DenseThreshold)
}

// GramEngine accumulates the distributed Gram product B = Σ_l Â(l)ᵀÂ(l)
// (Eq. 4, 7) on the processor grid. Rank (s, t, q) owns the (s, t) block of
// B under the contiguous block distribution of the n samples over the
// per-layer 2D grid, and layer q contributes the word-row slice
// LayerWordRows of every batch's contraction dimension; Finalize sums the
// per-layer partial blocks (the 3D algorithm's inter-layer reduction).
type GramEngine struct {
	ctx            *Context
	n              int
	workers        int // shared-memory workers for the local popcount kernel
	denseThreshold int // bitmat dense-threshold spec for panel assembly

	rowLo, rowHi int // B rows owned by this rank's grid row
	colLo, colHi int // B cols owned by this rank's grid column

	acc *sparse.Dense[int64] // this layer's partial block of B
}

// NewGramEngine prepares a per-rank engine for an n-sample run. workers is
// the shared-memory worker count for this rank's local Gram kernel
// (par.Resolve semantics: 0 = one per CPU, 1 = serial); since every rank of
// an in-process run spawns its own pool, runs with many virtual ranks
// typically pass 1. denseThreshold is the bitmat dense-threshold spec
// (bitmat.DenseAuto, bitmat.DenseNever or an explicit stored-word count)
// applied when batch panels are assembled from their coordinate entries;
// it selects the storage layout — and thereby the popcount kernel — of the
// local SUMMA multiply.
func NewGramEngine(ctx *Context, n, workers, denseThreshold int) *GramEngine {
	e := &GramEngine{ctx: ctx, n: n, workers: par.Resolve(workers), denseThreshold: denseThreshold}
	e.rowLo, e.rowHi = ctx.RowBlock(n)
	e.colLo, e.colHi = ctx.ColBlock(n)
	e.acc = sparse.MustDense[int64](e.rowHi-e.rowLo, e.colHi-e.colLo)
	return e
}

// AddBatch folds one batch's compressed matrix Â(l) into the accumulator.
// Every rank passes the packed-word coordinates of its owned samples
// (columns); the engine routes each word to the layer owning its slice of
// the contraction dimension, assembles the per-grid-row A panel and
// per-grid-column B panel there, replicates the panels along grid.RowPeers
// and grid.ColPeers (the SUMMA broadcast pattern), and multiplies the local
// panels with the popcount-AND kernel. AddBatch is a collective: all ranks
// must call it once per batch with the same wordRows/maskBits/activeRows.
//
// Three supersteps per batch: A-panel routing, B-panel routing, panel
// broadcast.
func (e *GramEngine) AddBatch(entries []bitmat.PackedEntry, wordRows, maskBits, activeRows int) {
	g := e.ctx.Grid
	p := e.ctx.P
	np := p.NProcs()

	// Route every packed word to the home ranks of its panel blocks within
	// the layer that owns its word row: column j of Â contributes to grid
	// row BlockOwner(n, Rows, j) as part of the Aᵀ operand (home (s, 0, q))
	// and to grid column BlockOwner(n, Cols, j) as part of the A operand
	// (home (0, t, q)).
	aOut := make([]entrySlice, np)
	bOut := make([]entrySlice, np)
	for _, ent := range entries {
		if ent.WordRow < 0 || ent.WordRow >= wordRows {
			//gas:invariant entries come from Packed.Entries() of a matrix built over this same word-row space
			panic(fmt.Sprintf("dist: word row %d out of range [0,%d)", ent.WordRow, wordRows))
		}
		layer := grid.BlockOwner(wordRows, g.Layers, ent.WordRow)
		s := grid.BlockOwner(e.n, g.Rows, ent.Col)
		t := grid.BlockOwner(e.n, g.Cols, ent.Col)
		aHome := g.Rank(s, 0, layer)
		bHome := g.Rank(0, t, layer)
		aOut[aHome] = append(aOut[aHome], ent)
		bOut[bHome] = append(bOut[bHome], ent)
	}
	aIn := bsp.AllToAll(p, aOut)
	bIn := bsp.AllToAll(p, bOut)

	layerLo, layerHi := e.ctx.LayerWordRows(wordRows)

	// Assemble the panels at their home ranks. The received coordinates are
	// in the batch's global (word row, column) space; WordRowRange slices
	// out this layer's share of the contraction dimension and ColRange
	// extracts the block's columns, both rebased to local indices.
	var aPanel, bPanel *bitmat.Packed
	if e.ctx.Col == 0 {
		var got entrySlice
		for _, part := range aIn {
			got = append(got, part...)
		}
		full := bitmat.FromEntriesThreshold(got, wordRows, e.n, maskBits, activeRows, e.denseThreshold)
		aPanel = full.WordRowRange(layerLo, layerHi).ColRange(e.rowLo, e.rowHi)
	}
	if e.ctx.Row == 0 {
		var got entrySlice
		for _, part := range bIn {
			got = append(got, part...)
		}
		full := bitmat.FromEntriesThreshold(got, wordRows, e.n, maskBits, activeRows, e.denseThreshold)
		bPanel = full.WordRowRange(layerLo, layerHi).ColRange(e.colLo, e.colHi)
	}

	// SUMMA-style panel replication: the A panel of grid row s travels along
	// RowPeers(s, q), the B panel of grid column t along ColPeers(t, q).
	if e.ctx.Col == 0 {
		for _, peer := range g.RowPeers(e.ctx.Row, e.ctx.Layer) {
			if peer != p.Rank() {
				p.Send(peer, tagAPanel, toWire(aPanel))
			}
		}
	}
	if e.ctx.Row == 0 {
		for _, peer := range g.ColPeers(e.ctx.Col, e.ctx.Layer) {
			if peer != p.Rank() {
				p.Send(peer, tagBPanel, toWire(bPanel))
			}
		}
	}
	p.Sync()
	if e.ctx.Col != 0 {
		msgs := p.RecvAll(tagAPanel)
		if len(msgs) != 1 {
			//gas:invariant superstep protocol invariant: exactly the column-0 home rank sends one A panel on this tag
			panic(fmt.Sprintf("dist: rank %d expected 1 A panel, got %d", p.Rank(), len(msgs)))
		}
		aPanel = fromWire(msgs[0].Payload.(packedWire))
	}
	if e.ctx.Row != 0 {
		msgs := p.RecvAll(tagBPanel)
		if len(msgs) != 1 {
			//gas:invariant superstep protocol invariant: exactly the row-0 home rank sends one B panel on this tag
			panic(fmt.Sprintf("dist: rank %d expected 1 B panel, got %d", p.Rank(), len(msgs)))
		}
		bPanel = fromWire(msgs[0].Payload.(packedWire))
	}

	// Local kernel: this rank's block of Â(l)ᵀÂ(l) restricted to the
	// layer's word rows, computed on this rank's worker pool and
	// accumulated into the per-layer partial of B. partial and acc share
	// the (rowHi-rowLo)×(colHi-colLo) block shape, so the accumulation is a
	// flat indexed sum.
	partial := bitmat.GramBlockWorkers(aPanel, bPanel, e.workers)
	for idx, v := range partial.Data {
		e.acc.Data[idx] += v
	}
	p.AddFlops(int64(aPanel.NNZWords()) * int64(bPanel.Cols))
	p.NoteMemory(int64(aPanel.MemoryWords()+bPanel.MemoryWords()) + int64(len(e.acc.Data)))
}

// Finalize reduces the per-layer partial blocks onto layer 0 (the 3D
// algorithm's inter-layer sum) and returns this rank's view of the result.
// counts must be the globally combined per-sample cardinalities â (Eq. 4),
// identical on every rank. Finalize is a collective; one superstep.
func (e *GramEngine) Finalize(counts []int64) *Blocks {
	if len(counts) != e.n {
		//gas:invariant counts is the AllReduce result over this run's n samples, identical on every rank by the collective's semantics
		panic(fmt.Sprintf("dist: %d cardinalities for %d samples", len(counts), e.n))
	}
	g := e.ctx.Grid
	p := e.ctx.P
	if e.ctx.Layer != 0 {
		p.Send(g.Rank(e.ctx.Row, e.ctx.Col, 0), tagLayerPartial, e.acc.Data)
	}
	p.Sync()
	bl := &Blocks{
		ctx: e.ctx, n: e.n, counts: counts, workers: e.workers,
		rowLo: e.rowLo, rowHi: e.rowHi, colLo: e.colLo, colHi: e.colHi,
	}
	if e.ctx.Layer != 0 {
		return bl
	}
	for _, m := range p.RecvAll(tagLayerPartial) {
		part := m.Payload.([]int64)
		if len(part) != len(e.acc.Data) {
			//gas:invariant layer partials are accumulator snapshots of identically shaped blocks from this same run
			panic(fmt.Sprintf("dist: layer partial size %d, want %d", len(part), len(e.acc.Data)))
		}
		for i, v := range part {
			e.acc.Data[i] += v
		}
	}
	bl.b = e.acc
	return bl
}

// Blocks is the block-distributed result of a run: layer-0 rank (s, t)
// holds the (s, t) block of the intersection matrix B together with the
// replicated cardinalities, from which it can derive its blocks of S and D
// without further communication (Eq. 2).
type Blocks struct {
	ctx     *Context
	n       int
	counts  []int64
	workers int // shared-memory workers for the blockwise Eq. 2 derivation

	rowLo, rowHi, colLo, colHi int

	b *sparse.Dense[int64] // nil on layers > 0
}

// BBlock returns this rank's block of B (nil on layers > 0) and its row and
// column offsets in the global matrix.
func (bl *Blocks) BBlock() (block *sparse.Dense[int64], rowLo, colLo int) {
	return bl.b, bl.rowLo, bl.colLo
}

// SBlock derives this rank's block of the similarity matrix S from its B
// block via the shared Eq. 2 scalar (nil on layers > 0). The derivation is
// row-parallel on the rank's worker pool: each output row is owned by one
// index, so the writes are disjoint.
func (bl *Blocks) SBlock() *sparse.Dense[float64] {
	if bl.b == nil {
		return nil
	}
	out := sparse.MustDense[float64](bl.rowHi-bl.rowLo, bl.colHi-bl.colLo)
	par.ForEach(bl.workers, bl.rowHi-bl.rowLo, func(i int) {
		brow := bl.b.Row(i)
		srow := out.Row(i)
		for j := bl.colLo; j < bl.colHi; j++ {
			srow[j-bl.colLo] = Jaccard(brow[j-bl.colLo], bl.counts[bl.rowLo+i], bl.counts[j])
		}
	})
	return out
}

// DBlock derives this rank's block of the distance matrix D = 1 − S (nil on
// layers > 0).
func (bl *Blocks) DBlock() *sparse.Dense[float64] {
	s := bl.SBlock()
	if s == nil {
		return nil
	}
	return sparse.Map(s, func(v float64) float64 { return 1 - v })
}

// blockWire carries one positioned dense block to the gathering root.
type blockWire[T int64 | float64] struct {
	RowLo, ColLo, Rows, Cols int
	Data                     []T
}

// ByteSize implements bsp.ByteSizer: the payload plus four position words.
func (w blockWire[T]) ByteSize() int { return 8*len(w.Data) + 32 }

// gatherBlocks assembles positioned blocks into the full n×n matrix at
// root; every rank must call it (it is a collective), non-root ranks and
// non-zero layers contribute empty blocks and receive nil.
func gatherBlocks[T int64 | float64](ctx *Context, n int, root int, block *sparse.Dense[T], rowLo, colLo int) *sparse.Dense[T] {
	var w blockWire[T]
	if block != nil {
		w = blockWire[T]{RowLo: rowLo, ColLo: colLo, Rows: block.Rows, Cols: block.Cols, Data: block.Data}
	}
	parts := bsp.Gather(ctx.P, root, w)
	if ctx.P.Rank() != root {
		return nil
	}
	out := sparse.MustDense[T](n, n)
	for _, part := range parts {
		for i := 0; i < part.Rows; i++ {
			copy(out.Row(part.RowLo + i)[part.ColLo:part.ColLo+part.Cols], part.Data[i*part.Cols:(i+1)*part.Cols])
		}
	}
	return out
}

// EmitTiles is the streaming counterpart of the full gathers: every
// layer-0 rank finalizes its block of the result — deriving S and D from B
// via Eq. 2 — and ships it to root as one positioned tile carrying all
// three matrices; root invokes emit once per non-empty tile without ever
// assembling the n×n matrices. The legacy full gather is this collective
// driving a tile-collecting sink, and SkipGather is this collective never
// invoked.
//
// Emission is staggered one grid block per superstep, in (RowLo, ColLo)
// order: a block's S and D are derived lazily on its owner just before its
// turn and dropped right after, so at any instant the run holds at most
// one in-flight derived tile plus root's copy — the property that makes
// streaming memory-bounded — at the cost of Grid.Rows × Grid.Cols
// supersteps instead of one.
//
// EmitTiles is a collective (every rank must call it). Root's emit errors
// abort the emission and are returned at root — the BSP abort machinery
// unwinds the other ranks when root's rank function returns the error;
// other ranks return nil. The *tile.Tile passed to emit is only valid for
// the duration of the call.
func (bl *Blocks) EmitTiles(root int, emit func(*tile.Tile) error) error {
	g := bl.ctx.Grid
	p := bl.ctx.P
	for s := 0; s < g.Rows; s++ {
		for t := 0; t < g.Cols; t++ {
			owner := g.Rank(s, t, 0)
			var local *tile.Tile
			if p.Rank() == owner && bl.b != nil && bl.rowHi > bl.rowLo && bl.colHi > bl.colLo {
				sb := bl.SBlock()
				db := sparse.Map(sb, func(v float64) float64 { return 1 - v })
				local = &tile.Tile{
					RowLo: bl.rowLo, ColLo: bl.colLo,
					Rows: bl.rowHi - bl.rowLo, Cols: bl.colHi - bl.colLo,
					B: bl.b.Data, S: sb.Data, D: db.Data,
				}
				if p.Rank() != root {
					p.Send(root, tagTileEmit, local)
					local = nil
				}
			}
			p.Sync()
			if p.Rank() != root {
				continue
			}
			if msgs := p.RecvAll(tagTileEmit); len(msgs) > 0 {
				if len(msgs) != 1 {
					//gas:invariant superstep protocol invariant: exactly one rank owns block (s,t) and sends one tile on this tag
					panic(fmt.Sprintf("dist: root expected 1 tile for block (%d,%d), got %d", s, t, len(msgs)))
				}
				local = msgs[0].Payload.(*tile.Tile)
			}
			if local != nil {
				if err := emit(local); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// GatherB assembles the full intersection matrix B at root (nil elsewhere).
// Like all gathers, it must be called by every rank.
func (bl *Blocks) GatherB(root int) *sparse.Dense[int64] {
	return gatherBlocks(bl.ctx, bl.n, root, bl.b, bl.rowLo, bl.colLo)
}

// GatherS assembles the full similarity matrix S at root (nil elsewhere).
func (bl *Blocks) GatherS(root int) *sparse.Dense[float64] {
	return gatherBlocks(bl.ctx, bl.n, root, bl.SBlock(), bl.rowLo, bl.colLo)
}

// GatherD assembles the full distance matrix D at root (nil elsewhere).
func (bl *Blocks) GatherD(root int) *sparse.Dense[float64] {
	return gatherBlocks(bl.ctx, bl.n, root, bl.DBlock(), bl.rowLo, bl.colLo)
}
