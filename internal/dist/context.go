// Package dist implements the distributed execution layer of
// SimilarityAtScale (Section III-C of the paper): the √(p/c) × √(p/c) × c
// processor grid with cyclic sample ownership, the distributed filter
// vector f(l) with its replicated prefix-sum row compaction (Eq. 5, 6), and
// the processor-grid Gram engine that accumulates B = ÂᵀÂ batch by batch
// over the BSP runtime (Eq. 4, 7) before deriving S and D blockwise
// (Eq. 2).
//
// The package is consumed by internal/core: both the distributed Compute
// path and the single-process ComputeSequential path share the compaction
// primitive (Compact) and the Eq. 2 scalar (Jaccard), so the
// two execution modes are algebraically the same pipeline and differ only
// in where the data lives.
package dist

import (
	"genomeatscale/internal/bsp"
	"genomeatscale/internal/grid"
)

// Context binds one BSP rank to its position in the processor grid. All
// dist operations of a run are performed through the same Context, which
// guarantees every rank agrees on the grid layout (the grid is a pure
// function of NProcs and the replication factor).
type Context struct {
	// P is this rank's BSP handle.
	P *bsp.Proc
	// Grid is the √(p/c) × √(p/c) × c processor grid chosen for the run.
	Grid grid.Grid
	// Row, Col, Layer are this rank's grid coordinates.
	Row, Col, Layer int
}

// NewContext arranges the run's ranks as a processor grid with the
// requested replication factor (clamped by grid.Choose so every rank is
// used) and locates this rank in it. NProcs of a live BSP world is
// positive, so MustChoose cannot fail here.
func NewContext(p *bsp.Proc, replication int) *Context {
	return NewContextWithGrid(p, grid.MustChoose(p.NProcs(), replication))
}

// NewContextWithGrid binds a rank to a pre-chosen grid. The reusable engine
// in internal/core chooses the grid once at construction (it is a pure
// function of Procs and Replication) and shares it across calls; g must
// equal grid.Choose(p.NProcs(), c) for the run's configuration.
func NewContextWithGrid(p *bsp.Proc, g grid.Grid) *Context {
	row, col, layer := g.Coords(p.Rank())
	return &Context{P: p, Grid: g, Row: row, Col: col, Layer: layer}
}

// OwnedSamples returns the samples this rank reads, under the cyclic
// distribution the paper uses for input files (Listing 2): rank r owns
// samples r, r+p, r+2p, …
func (c *Context) OwnedSamples(n int) []int {
	return grid.CyclicItems(n, c.P.NProcs(), c.P.Rank())
}

// RowBlock returns the half-open range of B rows (equivalently, of Âᵀ
// columns) owned by this rank's grid row when n samples are split into
// Grid.Rows contiguous blocks.
func (c *Context) RowBlock(n int) (lo, hi int) {
	return grid.BlockRange(n, c.Grid.Rows, c.Row)
}

// ColBlock returns the half-open range of B columns owned by this rank's
// grid column.
func (c *Context) ColBlock(n int) (lo, hi int) {
	return grid.BlockRange(n, c.Grid.Cols, c.Col)
}

// LayerWordRows returns the half-open word-row range of the contraction
// dimension assigned to this rank's replication layer: each of the c
// layers multiplies 1/c of the packed word rows of Â(l).
func (c *Context) LayerWordRows(wordRows int) (lo, hi int) {
	return grid.BlockRange(wordRows, c.Grid.Layers, c.Layer)
}

// Jaccard derives one similarity entry from an intersection cardinality and
// the two sample cardinalities (Eq. 2): J = b_ij / (â_i + â_j − b_ij), with
// the J(∅, ∅) = 0 convention when the union is empty — an empty sample
// shares nothing with anything, so it must not pair as a perfect match in
// thresholded runs (the same convention minhash.EstimateJaccard uses, so
// the sketch prescreen and the exact tier agree on degenerate pairs). It
// is the single Eq. 2 implementation shared by the sequential
// finalization in internal/core and the blockwise derivation in Blocks.
func Jaccard(bij, ci, cj int64) float64 {
	union := ci + cj - bij
	if union == 0 {
		return 0
	}
	return float64(bij) / float64(union)
}
