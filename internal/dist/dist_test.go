package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/bsp"
	"genomeatscale/internal/semiring"
	"genomeatscale/internal/sparse"
)

func TestContextGridAndOwnership(t *testing.T) {
	const n = 17
	for _, cfg := range []struct{ procs, repl int }{
		{1, 1}, {2, 1}, {4, 2}, {6, 3}, {8, 2}, {9, 1}, {12, 3},
	} {
		owned := make([][]int, cfg.procs)
		_, err := bsp.Run(cfg.procs, func(p *bsp.Proc) error {
			ctx := NewContext(p, cfg.repl)
			if got := ctx.Grid.Size(); got != cfg.procs {
				return fmt.Errorf("grid %s uses %d ranks, want %d", ctx.Grid, got, cfg.procs)
			}
			if r, c, l := ctx.Grid.Coords(p.Rank()); r != ctx.Row || c != ctx.Col || l != ctx.Layer {
				return fmt.Errorf("rank %d coords mismatch", p.Rank())
			}
			owned[p.Rank()] = ctx.OwnedSamples(n)
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d c=%d: %v", cfg.procs, cfg.repl, err)
		}
		seen := make([]int, n)
		for rank, items := range owned {
			for _, i := range items {
				if i%cfg.procs != rank {
					t.Fatalf("p=%d: rank %d owns sample %d, not cyclic", cfg.procs, rank, i)
				}
				seen[i]++
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("p=%d: sample %d owned %d times", cfg.procs, i, c)
			}
		}
	}
}

func TestFilterVectorReplicate(t *testing.T) {
	const procs = 5
	const length = 100
	// Every rank writes an overlapping, unsorted, duplicated set of rows;
	// Replicate must return the global sorted distinct union on all ranks.
	want := map[int64]bool{}
	writes := make([][]int64, procs)
	rng := rand.New(rand.NewSource(11))
	for r := 0; r < procs; r++ {
		for k := 0; k < 30; k++ {
			v := int64(rng.Intn(length))
			writes[r] = append(writes[r], v, v) // duplicates on purpose
			want[v] = true
		}
	}
	var wantSorted []int64
	for v := range want {
		wantSorted = append(wantSorted, v)
	}
	sort.Slice(wantSorted, func(i, j int) bool { return wantSorted[i] < wantSorted[j] })

	_, err := bsp.Run(procs, func(p *bsp.Proc) error {
		ctx := NewContext(p, 1)
		f := NewFilterVector(ctx, length)
		f.Write(writes[p.Rank()])
		got := f.Replicate()
		if len(got) != len(wantSorted) {
			return fmt.Errorf("rank %d: %d nonzero rows, want %d", p.Rank(), len(got), len(wantSorted))
		}
		for i := range got {
			if got[i] != wantSorted[i] {
				return fmt.Errorf("rank %d: row %d = %d, want %d", p.Rank(), i, got[i], wantSorted[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFilterVectorWriteOutOfRange(t *testing.T) {
	_, err := bsp.Run(1, func(p *bsp.Proc) error {
		ctx := NewContext(p, 1)
		f := NewFilterVector(ctx, 10)
		defer func() { recover() }()
		f.Write([]int64{10})
		return fmt.Errorf("out-of-range write must panic")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompact(t *testing.T) {
	got := Compact([]int64{5, 1, 5, 3, 1, 9})
	want := []int64{1, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("Compact = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Compact = %v, want %v", got, want)
		}
	}
	if Compact(nil) != nil {
		t.Error("Compact(nil) should be nil")
	}
}

func TestJaccardEq2(t *testing.T) {
	cases := []struct {
		b, ci, cj int64
		want      float64
	}{
		{0, 0, 0, 0},      // J(∅, ∅) = 0: empty samples match nothing
		{3, 3, 3, 1},      // identical sets
		{2, 4, 6, 0.25},   // |∩|=2, |∪|=8
		{0, 3, 5, 0},      // disjoint
		{1, 1, 100, 0.01}, // skewed cardinalities
	}
	for _, c := range cases {
		if got := Jaccard(c.b, c.ci, c.cj); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%d,%d,%d) = %v, want %v", c.b, c.ci, c.cj, got, c.want)
		}
	}
}

// randomPacked builds a random packed batch matrix plus its entry list.
func randomPacked(rng *rand.Rand, activeRows, cols, maskBits int) *bitmat.Packed {
	rowsPerCol := make([][]int, cols)
	for j := 0; j < cols; j++ {
		seen := map[int]bool{}
		count := 1 + rng.Intn(activeRows)
		for len(rowsPerCol[j]) < count {
			r := rng.Intn(activeRows)
			if !seen[r] {
				seen[r] = true
				rowsPerCol[j] = append(rowsPerCol[j], r)
			}
		}
		sort.Ints(rowsPerCol[j])
	}
	return bitmat.PackColumns(rowsPerCol, activeRows, maskBits)
}

// TestGramEngineMatchesLocalGram feeds the engine a random batch (entries
// distributed by cyclic column ownership, as core does) and checks the
// gathered B against the single-process Gram of the same packed matrix,
// across grid shapes including ragged column counts and multiple layers.
func TestGramEngineMatchesLocalGram(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, cfg := range []struct{ procs, repl, cols, maskBits int }{
		{1, 1, 7, 64},
		{2, 1, 9, 32},
		{2, 2, 9, 32},
		{4, 1, 13, 64},
		{4, 2, 13, 8},
		{6, 1, 10, 64},
		{8, 2, 13, 64},
		{9, 1, 13, 32},
		{12, 3, 13, 64},
	} {
		t.Run(fmt.Sprintf("p%d_c%d_n%d_b%d", cfg.procs, cfg.repl, cfg.cols, cfg.maskBits), func(t *testing.T) {
			activeRows := 50 + rng.Intn(150)
			packed := randomPacked(rng, activeRows, cfg.cols, cfg.maskBits)
			want := packed.Gram()
			counts := packed.ColPopcounts()
			all := packed.Entries()

			var got *sparse.Dense[int64]
			var gotS *sparse.Dense[float64]
			stats, err := bsp.Run(cfg.procs, func(p *bsp.Proc) error {
				ctx := NewContext(p, cfg.repl)
				// workers: 2 exercises the tiled parallel local kernel under
				// every grid shape; results must be identical to serial.
				engine := NewGramEngine(ctx, cfg.cols, 2, bitmat.DenseAuto)
				var mine []bitmat.PackedEntry
				for _, e := range all {
					if e.Col%cfg.procs == p.Rank() {
						mine = append(mine, e)
					}
				}
				engine.AddBatch(mine, packed.WordRows, cfg.maskBits, activeRows)
				blocks := engine.Finalize(counts)
				b := blocks.GatherB(0)
				s := blocks.GatherS(0)
				if p.Rank() == 0 {
					got, gotS = b, s
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !sparse.Equal(want, got, func(a, b int64) bool { return a == b }) {
				t.Fatal("gathered B differs from local Gram")
			}
			for i := 0; i < cfg.cols; i++ {
				for j := 0; j < cfg.cols; j++ {
					wantS := Jaccard(want.At(i, j), counts[i], counts[j])
					if math.Abs(gotS.At(i, j)-wantS) > 1e-12 {
						t.Fatalf("S[%d][%d] = %v, want %v", i, j, gotS.At(i, j), wantS)
					}
				}
			}
			if cfg.procs > 1 {
				if stats.TotalBytes == 0 {
					t.Error("multi-rank engine run must move bytes")
				}
				if stats.SumHRelations() == 0 {
					t.Error("per-superstep h-relations must be nonzero")
				}
			}
		})
	}
}

// TestGramEngineAccumulatesBatches splits one matrix's word rows into two
// AddBatch calls with different active row spaces and checks the engine
// sums them (Eq. 4).
func TestGramEngineAccumulatesBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const cols = 8
	const maskBits = 16
	a := randomPacked(rng, 64, cols, maskBits)
	b := randomPacked(rng, 48, cols, maskBits)
	want := a.Gram()
	want.AddInto(b.Gram(), semiring.PlusInt64())
	counts := a.ColPopcounts()
	for j, v := range b.ColPopcounts() {
		counts[j] += v
	}

	var got *sparse.Dense[int64]
	_, err := bsp.Run(4, func(p *bsp.Proc) error {
		ctx := NewContext(p, 2)
		engine := NewGramEngine(ctx, cols, 0, bitmat.DenseAuto) // 0 = all CPUs

		for _, batch := range []*bitmat.Packed{a, b} {
			var mine []bitmat.PackedEntry
			for _, e := range batch.Entries() {
				if e.Col%4 == p.Rank() {
					mine = append(mine, e)
				}
			}
			engine.AddBatch(mine, batch.WordRows, maskBits, batch.ActiveRows)
		}
		blocks := engine.Finalize(counts)
		res := blocks.GatherB(0)
		if p.Rank() == 0 {
			got = res
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, got, func(x, y int64) bool { return x == y }) {
		t.Fatal("two-batch accumulation differs from sum of local Grams")
	}
}

// TestGramEngineEmptyBatch: an all-empty batch must be a safe no-op on
// every grid shape (the collective sequence still has to line up).
func TestGramEngineEmptyBatch(t *testing.T) {
	for _, procs := range []int{1, 4, 6} {
		var got *sparse.Dense[int64]
		_, err := bsp.Run(procs, func(p *bsp.Proc) error {
			ctx := NewContext(p, 2)
			engine := NewGramEngine(ctx, 5, 1, bitmat.DenseAuto)
			engine.AddBatch(nil, 0, 64, 0)
			blocks := engine.Finalize(make([]int64, 5))
			res := blocks.GatherB(0)
			if p.Rank() == 0 {
				got = res
			}
			return nil
		})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		for _, v := range got.Data {
			if v != 0 {
				t.Fatalf("procs=%d: empty batch produced nonzero B", procs)
			}
		}
	}
}
