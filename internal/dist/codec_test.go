package dist

import (
	"reflect"
	"testing"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/tile"
)

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	c := NewWireCodec()
	data, err := c.Encode(v)
	if err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	got, err := c.Decode(data)
	if err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return got
}

func TestWireCodecRoundTrips(t *testing.T) {
	entries := entrySlice{
		{WordRow: 0, Col: 3, Word: 0xdeadbeef},
		{WordRow: 7, Col: 1, Word: ^uint64(0)},
	}
	cases := []any{
		entries,
		entrySlice{},
		packedWire{Entries: entries, WordRows: 8, Cols: 4, B: 512, ActiveRows: 100, DenseThreshold: -1},
		blockWire[int64]{RowLo: 2, ColLo: 5, Rows: 2, Cols: 3, Data: []int64{1, -2, 3, 4, 5, 6}},
		blockWire[float64]{RowLo: 0, ColLo: 0, Rows: 1, Cols: 2, Data: []float64{0.25, -1.5}},
		&tile.Tile{RowLo: 4, ColLo: 8, Rows: 2, Cols: 2,
			B: []int64{1, 2, 3, 4}, S: []float64{0.1, 0.2, 0.3, 0.4}, D: []float64{0.9, 0.8, 0.7, 0.6}},
		// Primitive payloads fall through to PlainCodec.
		[]int64{10, 20},
		[]uint64{1, 2, 3},
		[]int{-1, 0, 1},
		[]float64{3.14},
		42,
		"hello",
		nil,
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		want := v
		// Empty slices may decode as non-nil empty; normalise.
		if e, ok := want.(entrySlice); ok && len(e) == 0 {
			if ge, ok := got.(entrySlice); !ok || len(ge) != 0 {
				t.Errorf("empty entrySlice round-trip = %#v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round-trip %T: got %#v, want %#v", v, got, want)
		}
	}
}

// TestWireCodecDeterministic: equal values must encode identically — the
// byte-identical-over-TCP guarantee rests on it.
func TestWireCodecDeterministic(t *testing.T) {
	c := NewWireCodec()
	v := packedWire{
		Entries:  entrySlice{{WordRow: 1, Col: 2, Word: 3}},
		WordRows: 4, Cols: 5, B: 6, ActiveRows: 7, DenseThreshold: 8,
	}
	a, _ := c.Encode(v)
	b, _ := c.Encode(v)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal values encoded differently")
	}
}

func TestWireCodecRejectsCorruptPayloads(t *testing.T) {
	c := NewWireCodec()
	bad := [][]byte{
		{},
		{kindEntrySlice, 1, 2, 3}, // not a multiple of 24
		{kindPackedWire, 0},       // truncated header
		{kindBlockInt64, 9},       // truncated header
		{kindTile},                // truncated header
		append([]byte{kindPackedWire}, make([]byte, 48)...)[:40], // short
	}
	for i, data := range bad {
		if _, err := c.Decode(data); err == nil {
			t.Errorf("case %d: corrupt payload decoded without error", i)
		}
	}
	// A packed panel whose announced entry count disagrees with its body.
	v := packedWire{Entries: entrySlice{{WordRow: 1, Col: 1, Word: 1}}, WordRows: 1, Cols: 1, B: 64}
	data, err := c.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	data = data[:len(data)-24] // drop the entry, keep the count
	if _, err := c.Decode(data); err == nil {
		t.Error("panel with missing entries decoded without error")
	}
}

// TestWireCodecEncodesRealPacked: a panel built by bitmat survives the
// toWire → encode → decode → fromWire cycle with identical column data.
func TestWireCodecEncodesRealPacked(t *testing.T) {
	rowsPerCol := [][]int{{1, 5, 9}, {2, 5}, {0, 9, 63, 64}}
	p := bitmat.PackColumns(rowsPerCol, 65, 64)
	w := toWire(p)
	got := roundTrip(t, w).(packedWire)
	q := fromWire(got)
	if q.Cols != p.Cols || q.WordRows != p.WordRows {
		t.Fatalf("dims changed: %d×%d vs %d×%d", q.WordRows, q.Cols, p.WordRows, p.Cols)
	}
	if !reflect.DeepEqual(p.Entries(), q.Entries()) {
		t.Fatal("entries changed across the wire")
	}
}
