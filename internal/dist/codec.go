package dist

import (
	"encoding/binary"
	"fmt"
	"math"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/bsp"
	"genomeatscale/internal/tile"
)

// NewWireCodec returns the bsp.Codec for the distributed engine's traffic:
// it serializes the SUMMA wire types this package exchanges between ranks —
// coordinate entry slices, packed panels, positioned matrix blocks, and
// result tiles — and delegates everything else (the collectives' primitive
// payloads) to bsp.PlainCodec. The encoding is the PR 3 SUMMA wire form on
// the wire byte for byte: a PackedEntry is the same 24-byte
// (word row, column, mask word) triple the BSP accounting already charges.
//
// Kind bytes at and above bsp.PlainCodecKindLimit identify the dist types;
// the layout is fixed little-endian with explicit lengths, so equal values
// encode identically on every host — the property that keeps TCP runs
// byte-identical to in-process runs.
func NewWireCodec() bsp.Codec { return wireCodec{} }

const (
	kindEntrySlice = bsp.PlainCodecKindLimit + iota
	kindPackedWire
	kindBlockInt64
	kindBlockFloat64
	kindTile
)

type wireCodec struct {
	plain bsp.PlainCodec
}

func (c wireCodec) Encode(v any) ([]byte, error) {
	switch x := v.(type) {
	case entrySlice:
		out := make([]byte, 1, 1+24*len(x))
		out[0] = kindEntrySlice
		return appendEntries(out, x), nil
	case packedWire:
		out := make([]byte, 1, 1+48+24*len(x.Entries))
		out[0] = kindPackedWire
		for _, d := range []int{x.WordRows, x.Cols, x.B, x.ActiveRows, x.DenseThreshold, len(x.Entries)} {
			out = binary.LittleEndian.AppendUint64(out, uint64(d))
		}
		return appendEntries(out, x.Entries), nil
	case blockWire[int64]:
		out := make([]byte, 1, 1+32+8*len(x.Data))
		out[0] = kindBlockInt64
		out = appendBlockHeader(out, x.RowLo, x.ColLo, x.Rows, x.Cols)
		for _, d := range x.Data {
			out = binary.LittleEndian.AppendUint64(out, uint64(d))
		}
		return out, nil
	case blockWire[float64]:
		out := make([]byte, 1, 1+32+8*len(x.Data))
		out[0] = kindBlockFloat64
		out = appendBlockHeader(out, x.RowLo, x.ColLo, x.Rows, x.Cols)
		for _, d := range x.Data {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(d))
		}
		return out, nil
	case *tile.Tile:
		out := make([]byte, 1, 1+56+8*(len(x.B)+len(x.S)+len(x.D)))
		out[0] = kindTile
		for _, d := range []int{x.RowLo, x.ColLo, x.Rows, x.Cols, len(x.B), len(x.S), len(x.D)} {
			out = binary.LittleEndian.AppendUint64(out, uint64(d))
		}
		for _, b := range x.B {
			out = binary.LittleEndian.AppendUint64(out, uint64(b))
		}
		for _, s := range x.S {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s))
		}
		for _, d := range x.D {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(d))
		}
		return out, nil
	default:
		return c.plain.Encode(v)
	}
}

func (c wireCodec) Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("dist: wire codec: empty payload")
	}
	kind, body := data[0], data[1:]
	switch kind {
	case kindEntrySlice:
		return parseEntries(body)
	case kindPackedWire:
		if len(body) < 48 {
			return nil, fmt.Errorf("dist: wire codec: packed panel header %d bytes, want >= 48", len(body))
		}
		var dims [6]int
		for i := range dims {
			dims[i] = int(binary.LittleEndian.Uint64(body[8*i:]))
		}
		entries, err := parseEntries(body[48:])
		if err != nil {
			return nil, err
		}
		if len(entries) != dims[5] {
			return nil, fmt.Errorf("dist: wire codec: packed panel announces %d entries, carries %d", dims[5], len(entries))
		}
		return packedWire{
			Entries:        entries,
			WordRows:       dims[0],
			Cols:           dims[1],
			B:              dims[2],
			ActiveRows:     dims[3],
			DenseThreshold: dims[4],
		}, nil
	case kindBlockInt64:
		hdr, words, err := parseBlockBody(body)
		if err != nil {
			return nil, err
		}
		w := blockWire[int64]{RowLo: hdr[0], ColLo: hdr[1], Rows: hdr[2], Cols: hdr[3], Data: make([]int64, len(words))}
		for i, u := range words {
			w.Data[i] = int64(u)
		}
		return w, nil
	case kindBlockFloat64:
		hdr, words, err := parseBlockBody(body)
		if err != nil {
			return nil, err
		}
		w := blockWire[float64]{RowLo: hdr[0], ColLo: hdr[1], Rows: hdr[2], Cols: hdr[3], Data: make([]float64, len(words))}
		for i, u := range words {
			w.Data[i] = math.Float64frombits(u)
		}
		return w, nil
	case kindTile:
		if len(body) < 56 {
			return nil, fmt.Errorf("dist: wire codec: tile header %d bytes, want >= 56", len(body))
		}
		var hdr [7]int
		for i := range hdr {
			hdr[i] = int(binary.LittleEndian.Uint64(body[8*i:]))
		}
		nb, ns, nd := hdr[4], hdr[5], hdr[6]
		rest := body[56:]
		if nb < 0 || ns < 0 || nd < 0 || len(rest) != 8*(nb+ns+nd) {
			return nil, fmt.Errorf("dist: wire codec: tile payload %d bytes, want %d", len(rest), 8*(nb+ns+nd))
		}
		tl := &tile.Tile{
			RowLo: hdr[0], ColLo: hdr[1], Rows: hdr[2], Cols: hdr[3],
			B: make([]int64, nb), S: make([]float64, ns), D: make([]float64, nd),
		}
		for i := range tl.B {
			tl.B[i] = int64(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		rest = rest[8*nb:]
		for i := range tl.S {
			tl.S[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		rest = rest[8*ns:]
		for i := range tl.D {
			tl.D[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		return tl, nil
	default:
		return c.plain.Decode(data)
	}
}

func appendEntries(out []byte, entries entrySlice) []byte {
	for _, e := range entries {
		out = binary.LittleEndian.AppendUint64(out, uint64(e.WordRow))
		out = binary.LittleEndian.AppendUint64(out, uint64(e.Col))
		out = binary.LittleEndian.AppendUint64(out, e.Word)
	}
	return out
}

func parseEntries(body []byte) (entrySlice, error) {
	if len(body)%24 != 0 {
		return nil, fmt.Errorf("dist: wire codec: entry payload %d bytes not a multiple of 24", len(body))
	}
	out := make(entrySlice, len(body)/24)
	for i := range out {
		out[i] = bitmat.PackedEntry{
			WordRow: int(binary.LittleEndian.Uint64(body[24*i:])),
			Col:     int(binary.LittleEndian.Uint64(body[24*i+8:])),
			Word:    binary.LittleEndian.Uint64(body[24*i+16:]),
		}
	}
	return out, nil
}

func appendBlockHeader(out []byte, rowLo, colLo, rows, cols int) []byte {
	for _, d := range []int{rowLo, colLo, rows, cols} {
		out = binary.LittleEndian.AppendUint64(out, uint64(d))
	}
	return out
}

func parseBlockBody(body []byte) ([4]int, []uint64, error) {
	var hdr [4]int
	if len(body) < 32 {
		return hdr, nil, fmt.Errorf("dist: wire codec: block header %d bytes, want >= 32", len(body))
	}
	for i := range hdr {
		hdr[i] = int(binary.LittleEndian.Uint64(body[8*i:]))
	}
	rest := body[32:]
	if len(rest)%8 != 0 {
		return hdr, nil, fmt.Errorf("dist: wire codec: block payload %d bytes not a multiple of 8", len(rest))
	}
	words := make([]uint64, len(rest)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(rest[8*i:])
	}
	return hdr, words, nil
}
