package dist

import (
	"fmt"
	"math"
	"slices"

	"genomeatscale/internal/bsp"
)

// FilterVector is the distributed filter f(l) of Eq. 5: a boolean vector
// over the rows of one batch in which entry r is set iff some sample has
// attribute r. Ranks write the rows they observe in their owned samples;
// Replicate then agrees on the global nonzero set, whose sorted order is
// exactly the replicated prefix sum of Eq. 6 (row r compacts to its
// position in the sorted nonzero list).
type FilterVector struct {
	ctx    *Context
	length int64
	local  []int64
}

// NewFilterVector creates an empty filter over a batch with `length` rows.
func NewFilterVector(ctx *Context, length int64) *FilterVector {
	if length <= 0 {
		//gas:invariant batch lengths come from RowSlice ranges over a validated dataset and are positive by construction
		panic(fmt.Sprintf("dist: non-positive filter length %d", length))
	}
	return &FilterVector{ctx: ctx, length: length}
}

// Write marks the given batch-relative rows as nonzero. Rows may repeat and
// may arrive in any order; they must lie in [0, length).
func (f *FilterVector) Write(rows []int64) {
	for _, r := range rows {
		if r < 0 || r >= f.length {
			//gas:invariant rows are produced by the batch hasher within this same filter's [0, length) space
			panic(fmt.Sprintf("dist: filter row %d out of range [0,%d)", r, f.length))
		}
	}
	f.local = append(f.local, rows...)
}

// Replicate combines the per-rank writes into the global sorted nonzero row
// list and returns it on every rank (the "replicated" part of the paper's
// replicated prefix sum). The exchange rides on bsp.SortedAllGatherKeys, so
// its communication volume is visible in the run's Stats; batches whose row
// range exceeds the platform int (only possible on 32-bit builds, given the
// 2^62 universe bound) take an int64 gather instead. Both branches key on
// the filter length, which is identical on every rank, so the collective
// sequence stays aligned.
func (f *FilterVector) Replicate() []int64 {
	local := Compact(f.local)
	if f.length-1 > math.MaxInt {
		all := Compact(bsp.AllGatherVariable(f.ctx.P, local))
		return all
	}
	keys := make([]int, len(local))
	for i, r := range local {
		keys[i] = int(r)
	}
	all := bsp.SortedAllGatherKeys(f.ctx.P, keys)
	out := make([]int64, 0, len(all))
	for _, k := range all {
		if len(out) == 0 || int64(k) != out[len(out)-1] {
			out = append(out, int64(k))
		}
	}
	return out
}

// Compact sorts a copy of rows and removes duplicates. It is the local
// (communication-free) form of the filter construction, used by Replicate
// on each rank's writes and by the sequential path in internal/core, which
// sees every sample and therefore needs no exchange.
func Compact(rows []int64) []int64 {
	if len(rows) == 0 {
		return nil
	}
	out := append([]int64(nil), rows...)
	slices.Sort(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}
