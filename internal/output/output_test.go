package output

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"genomeatscale/internal/core"
	"genomeatscale/internal/sparse"
)

func sampleResult(t *testing.T) ([]string, *sparse.Dense[float64], *sparse.Dense[float64]) {
	t.Helper()
	ds := core.MustInMemoryDataset(
		[]string{"alpha", "beta with space", "a-very-long-sample-name"},
		[][]uint64{{1, 2, 3}, {2, 3, 4}, {50}},
		100,
	)
	res, err := core.ComputeSequential(ds, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res.Names, res.S, res.D
}

func TestWritePHYLIP(t *testing.T) {
	names, _, d := sampleResult(t)
	var buf bytes.Buffer
	if err := WritePHYLIP(&buf, names, d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if strings.TrimSpace(lines[0]) != "3" {
		t.Errorf("header line = %q", lines[0])
	}
	// Names are truncated to 10 chars and whitespace replaced.
	if !strings.HasPrefix(lines[2], "beta_with_") {
		t.Errorf("name field = %q", lines[2][:12])
	}
	if !strings.HasPrefix(lines[3], "a-very-lon") {
		t.Errorf("long name not truncated: %q", lines[3][:12])
	}
	// Diagonal distances are zero.
	if !strings.Contains(lines[1], "0.000000") {
		t.Errorf("diagonal missing in %q", lines[1])
	}
	// File variant.
	path := filepath.Join(t.TempDir(), "d.phy")
	if err := WritePHYLIPFile(path, names, d); err != nil {
		t.Fatal(err)
	}
}

func TestWritePHYLIPErrors(t *testing.T) {
	if err := WritePHYLIP(&bytes.Buffer{}, []string{"a"}, nil); err == nil {
		t.Error("nil matrix should error")
	}
	if err := WritePHYLIP(&bytes.Buffer{}, []string{"a"}, sparse.MustDense[float64](2, 2)); err == nil {
		t.Error("name count mismatch should error")
	}
	if err := WritePHYLIP(&bytes.Buffer{}, []string{"a"}, sparse.MustDense[float64](1, 2)); err == nil {
		t.Error("non-square matrix should error")
	}
	if err := WritePHYLIPFile(filepath.Join(t.TempDir(), "missing", "x.phy"), []string{"a"}, sparse.MustDense[float64](1, 1)); err == nil {
		t.Error("unwritable path should error")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	names, s, _ := sampleResult(t)
	var buf bytes.Buffer
	if err := WriteTSV(&buf, names, s); err != nil {
		t.Fatal(err)
	}
	gotNames, m, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNames) != len(names) {
		t.Fatalf("names = %v", gotNames)
	}
	for i := range names {
		if gotNames[i] != names[i] {
			t.Errorf("name %d = %q", i, gotNames[i])
		}
		for j := range names {
			if math.Abs(m.At(i, j)-s.At(i, j)) > 1e-6 {
				t.Errorf("(%d,%d) = %v, want %v", i, j, m.At(i, j), s.At(i, j))
			}
		}
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong\theader\n",
		"sample\ta\tb\na\t0.5\n", // short row
		"sample\ta\tb\nwrong\t1.0\t0.5\nb\t0.5\t1.0\n", // bad row label
		"sample\ta\tb\na\t1.0\tx\nb\t0.5\t1.0\n",       // bad number
		"sample\ta\nb\t1.0\n",                          // label mismatch
		"sample\ta\na\t1.0\nextra\t0.5\n",              // too many rows
		"sample\ta\tb\na\t1.0\t0.5\n",                  // too few rows
	}
	for i, in := range cases {
		if _, _, err := ReadTSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestTopPairsAndWritePairs(t *testing.T) {
	names, s, _ := sampleResult(t)
	pairs, err := TopPairs(names, s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Only (alpha, beta) exceeds 0.1 (J = 0.5); the third sample is disjoint.
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v", pairs)
	}
	if pairs[0].NameI != "alpha" || math.Abs(pairs[0].Similarity-0.5) > 1e-12 {
		t.Errorf("pair = %+v", pairs[0])
	}
	all, err := TopPairs(names, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("all pairs = %d", len(all))
	}
	// Sorted by decreasing similarity.
	for i := 1; i < len(all); i++ {
		if all[i].Similarity > all[i-1].Similarity {
			t.Error("pairs not sorted")
		}
	}
	var buf bytes.Buffer
	if err := WritePairs(&buf, all); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[0], "sample_a") {
		t.Errorf("pairs output:\n%s", buf.String())
	}
	if _, err := TopPairs([]string{"a"}, s, 0); err == nil {
		t.Error("mismatched names should error")
	}
}
