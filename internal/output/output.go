// Package output writes the matrices produced by SimilarityAtScale in the
// interchange formats downstream bioinformatics tooling expects, fulfilling
// the paper's goal of "maintaining compatibility with standard
// bioinformatics data formats" so GenomeAtScale results can be "seamlessly
// integrated into existing analysis pipelines":
//
//   - PHYLIP square distance-matrix format, the input of neighbour-joining
//     and other phylogenetics tools,
//   - tab-separated matrices with a header row, convenient for spreadsheets
//     and R/pandas,
//   - a sparse "edge list" of sample pairs above a similarity threshold,
//     useful when only near-duplicate pairs are of interest.
package output

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"genomeatscale/internal/sparse"
)

// WritePHYLIP writes a square distance matrix in the classic PHYLIP format:
// the sample count on the first line, then one line per sample with the
// (possibly truncated to 10 characters, space-padded) name followed by the
// distances.
func WritePHYLIP(w io.Writer, names []string, d *sparse.Dense[float64]) error {
	if err := checkMatrix(names, d); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%5d\n", len(names))
	for i, name := range names {
		fmt.Fprintf(bw, "%-10s", phylipName(name))
		for j := 0; j < d.Cols; j++ {
			fmt.Fprintf(bw, " %9.6f", d.At(i, j))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// WritePHYLIPFile writes a PHYLIP distance matrix to a file.
func WritePHYLIPFile(path string, names []string, d *sparse.Dense[float64]) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("output: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("output: %w", cerr)
		}
	}()
	return WritePHYLIP(f, names, d)
}

// phylipName shortens a name to the 10-character PHYLIP field and strips
// whitespace that would corrupt the column structure.
func phylipName(name string) string {
	cleaned := strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, name)
	if len(cleaned) > 10 {
		return cleaned[:10]
	}
	return cleaned
}

// WriteTSV writes a matrix with a header row and one row label per line.
func WriteTSV(w io.Writer, names []string, m *sparse.Dense[float64]) error {
	if err := checkMatrix(names, m); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "sample\t%s\n", strings.Join(names, "\t"))
	for i, name := range names {
		cells := make([]string, m.Cols)
		for j := 0; j < m.Cols; j++ {
			cells[j] = strconv.FormatFloat(m.At(i, j), 'f', 6, 64)
		}
		fmt.Fprintf(bw, "%s\t%s\n", name, strings.Join(cells, "\t"))
	}
	return bw.Flush()
}

// ReadTSV reads a matrix written by WriteTSV, returning the names and the
// dense matrix.
func ReadTSV(r io.Reader) ([]string, *sparse.Dense[float64], error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 256*1024*1024)
	if !scanner.Scan() {
		return nil, nil, fmt.Errorf("output: empty TSV input")
	}
	header := strings.Split(scanner.Text(), "\t")
	if len(header) < 2 || header[0] != "sample" {
		return nil, nil, fmt.Errorf("output: malformed TSV header")
	}
	names := header[1:]
	n := len(names)
	m := sparse.MustDense[float64](n, n)
	row := 0
	for scanner.Scan() {
		line := strings.TrimRight(scanner.Text(), "\r\n")
		if line == "" {
			continue
		}
		cells := strings.Split(line, "\t")
		if len(cells) != n+1 {
			return nil, nil, fmt.Errorf("output: row %d has %d cells, want %d", row+1, len(cells), n+1)
		}
		if row >= n {
			return nil, nil, fmt.Errorf("output: more rows than header columns")
		}
		if cells[0] != names[row] {
			return nil, nil, fmt.Errorf("output: row %d labelled %q, want %q", row+1, cells[0], names[row])
		}
		for j := 0; j < n; j++ {
			v, err := strconv.ParseFloat(cells[j+1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("output: row %d col %d: %w", row+1, j+1, err)
			}
			m.Set(row, j, v)
		}
		row++
	}
	if err := scanner.Err(); err != nil {
		return nil, nil, fmt.Errorf("output: %w", err)
	}
	if row != n {
		return nil, nil, fmt.Errorf("output: got %d data rows, want %d", row, n)
	}
	return names, m, nil
}

// Pair is one above-threshold sample pair.
type Pair struct {
	I, J       int
	NameI      string
	NameJ      string
	Similarity float64
}

// TopPairs extracts the sample pairs (i < j) whose similarity is at least
// the threshold, sorted by decreasing similarity.
func TopPairs(names []string, s *sparse.Dense[float64], threshold float64) ([]Pair, error) {
	if err := checkMatrix(names, s); err != nil {
		return nil, err
	}
	var out []Pair
	for i := 0; i < s.Rows; i++ {
		for j := i + 1; j < s.Cols; j++ {
			if v := s.At(i, j); v >= threshold {
				out = append(out, Pair{I: i, J: j, NameI: names[i], NameJ: names[j], Similarity: v})
			}
		}
	}
	// Insertion sort by decreasing similarity (pair lists are short in the
	// intended near-duplicate use case).
	for i := 1; i < len(out); i++ {
		p := out[i]
		j := i - 1
		for j >= 0 && out[j].Similarity < p.Similarity {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = p
	}
	return out, nil
}

// WritePairs writes above-threshold pairs as a three-column TSV
// (sampleA, sampleB, similarity).
func WritePairs(w io.Writer, pairs []Pair) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "sample_a\tsample_b\tjaccard")
	for _, p := range pairs {
		fmt.Fprintf(bw, "%s\t%s\t%.6f\n", p.NameI, p.NameJ, p.Similarity)
	}
	return bw.Flush()
}

func checkMatrix(names []string, m *sparse.Dense[float64]) error {
	if m == nil {
		return fmt.Errorf("output: nil matrix")
	}
	if m.Rows != m.Cols {
		return fmt.Errorf("output: matrix must be square, got %dx%d", m.Rows, m.Cols)
	}
	if len(names) != m.Rows {
		return fmt.Errorf("output: %d names for a %dx%d matrix", len(names), m.Rows, m.Cols)
	}
	return nil
}
