package output

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"genomeatscale/internal/sparse"
	"genomeatscale/internal/tile"
)

// blockTiles cuts the matrices into a 2D block tiling (the distributed
// emission shape) sorted by (RowLo, ColLo), as the engine delivers them.
func blockTiles(s, d *sparse.Dense[float64], tileRows, tileCols int) []*tile.Tile {
	n := s.Rows
	var tiles []*tile.Tile
	for rlo := 0; rlo < n; rlo += tileRows {
		rhi := min(rlo+tileRows, n)
		for clo := 0; clo < n; clo += tileCols {
			chi := min(clo+tileCols, n)
			t := &tile.Tile{RowLo: rlo, ColLo: clo, Rows: rhi - rlo, Cols: chi - clo}
			for i := rlo; i < rhi; i++ {
				for j := clo; j < chi; j++ {
					t.B = append(t.B, int64(i+j))
					t.S = append(t.S, s.At(i, j))
					t.D = append(t.D, d.At(i, j))
				}
			}
			tiles = append(tiles, t)
		}
	}
	sort.Slice(tiles, func(i, j int) bool {
		if tiles[i].RowLo != tiles[j].RowLo {
			return tiles[i].RowLo < tiles[j].RowLo
		}
		return tiles[i].ColLo < tiles[j].ColLo
	})
	return tiles
}

func randomMatrices(rng *rand.Rand, n int) (names []string, s, d *sparse.Dense[float64]) {
	s = sparse.MustDense[float64](n, n)
	d = sparse.MustDense[float64](n, n)
	for i := 0; i < n; i++ {
		names = append(names, strings.Repeat("ab", i%4)+"sample"+string(rune('a'+i%26)))
		s.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			s.Set(i, j, v)
			s.Set(j, i, v)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.Set(i, j, 1-s.At(i, j))
		}
	}
	return names, s, d
}

func runSink(t *testing.T, sink tile.Sink, n int, names []string, tiles []*tile.Tile) {
	t.Helper()
	if err := tile.Start(sink, n, names); err != nil {
		t.Fatal(err)
	}
	for _, tl := range tiles {
		if err := sink.Emit(tl); err != nil {
			t.Fatal(err)
		}
	}
	if err := tile.Flush(sink); err != nil {
		t.Fatal(err)
	}
}

func TestTileWriterMatchesBatchWriters(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 13
	names, s, d := randomMatrices(rng, n)
	for _, tiling := range [][2]int{{3, n}, {4, 5}, {1, 1}} {
		tiles := blockTiles(s, d, tiling[0], tiling[1])

		var streamed bytes.Buffer
		runSink(t, NewTileWriter(&streamed, FormatTSV, MatrixSimilarity), n, names, tiles)
		var batch bytes.Buffer
		if err := WriteTSV(&batch, names, s); err != nil {
			t.Fatal(err)
		}
		if streamed.String() != batch.String() {
			t.Fatalf("tiling %v: TSV stream differs from WriteTSV", tiling)
		}

		streamed.Reset()
		runSink(t, NewTileWriter(&streamed, FormatPHYLIP, MatrixDistance), n, names, tiles)
		batch.Reset()
		if err := WritePHYLIP(&batch, names, d); err != nil {
			t.Fatal(err)
		}
		if streamed.String() != batch.String() {
			t.Fatalf("tiling %v: PHYLIP stream differs from WritePHYLIP", tiling)
		}
	}
}

func TestTileWriterCSVRoundTripHeader(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 5
	names, s, d := randomMatrices(rng, n)
	var buf bytes.Buffer
	runSink(t, NewTileWriter(&buf, FormatCSV, MatrixSimilarity), n, names, blockTiles(s, d, 2, 3))
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != n+1 {
		t.Fatalf("got %d lines, want %d", len(lines), n+1)
	}
	if lines[0] != "sample,"+strings.Join(names, ",") {
		t.Fatalf("bad CSV header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], names[0]+",1.000000,") {
		t.Fatalf("bad first CSV row: %q", lines[1])
	}
}

func TestTileWriterIncompleteRunErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 6
	names, s, d := randomMatrices(rng, n)
	tiles := blockTiles(s, d, 2, n)
	tw := NewTileWriter(&bytes.Buffer{}, FormatTSV, MatrixSimilarity)
	if err := tw.Start(n, names); err != nil {
		t.Fatal(err)
	}
	for _, tl := range tiles[:len(tiles)-1] {
		if err := tw.Emit(tl); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err == nil {
		t.Error("Flush with missing rows must error")
	}
}

func TestPairWriterMatchesTopPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := 9
	names, s, d := randomMatrices(rng, n)
	tau := 0.4

	var streamed bytes.Buffer
	runSink(t, NewPairWriter(&streamed, tau), n, names, blockTiles(s, d, 3, 4))

	pairs, err := TopPairs(names, s, tau)
	if err != nil {
		t.Fatal(err)
	}
	// PairWriter emits in (i, j) order; TopPairs sorts by similarity. The
	// line sets must match.
	gotLines := strings.Split(strings.TrimRight(streamed.String(), "\n"), "\n")
	var batch bytes.Buffer
	if err := WritePairs(&batch, pairs); err != nil {
		t.Fatal(err)
	}
	wantLines := strings.Split(strings.TrimRight(batch.String(), "\n"), "\n")
	if gotLines[0] != wantLines[0] {
		t.Fatalf("header mismatch: %q vs %q", gotLines[0], wantLines[0])
	}
	sort.Strings(gotLines)
	sort.Strings(wantLines)
	if len(gotLines) != len(wantLines) {
		t.Fatalf("got %d lines, want %d", len(gotLines), len(wantLines))
	}
	for i := range gotLines {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("line %d: %q vs %q", i, gotLines[i], wantLines[i])
		}
	}
}
