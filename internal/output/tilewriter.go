package output

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"genomeatscale/internal/tile"
)

// MatrixFormat selects the file format a TileWriter produces.
type MatrixFormat int

const (
	// FormatTSV is the tab-separated matrix with a header row, identical to
	// WriteTSV output.
	FormatTSV MatrixFormat = iota
	// FormatCSV is the comma-separated variant of FormatTSV.
	FormatCSV
	// FormatPHYLIP is the classic PHYLIP square matrix, identical to
	// WritePHYLIP output; it is conventionally used with MatrixDistance.
	FormatPHYLIP
)

// MatrixField selects which matrix of the streamed result a TileWriter
// serialises.
type MatrixField int

const (
	// MatrixSimilarity writes the Jaccard similarity values S.
	MatrixSimilarity MatrixField = iota
	// MatrixDistance writes the Jaccard distance values D = 1 − S.
	MatrixDistance
)

// TileWriter is a tile sink that serialises one matrix of a streaming run
// as CSV, TSV or PHYLIP, writing each output row as soon as it is
// complete. Rows arrive in order on both execution paths (the sequential
// path emits full-width row bands, the distributed path emits grid blocks
// sorted by position), so the writer holds only the rows of the current
// row band — never the full n×n matrix. The byte output is identical to
// running WriteTSV / WritePHYLIP on the gathered matrix.
type TileWriter struct {
	w      io.Writer
	format MatrixFormat
	field  MatrixField

	bw      *bufio.Writer
	names   []string
	n       int
	next    int // first row not yet written
	pending map[int]*pendingRow
}

type pendingRow struct {
	vals   []float64
	filled int
}

// NewTileWriter returns a tile sink writing the selected matrix to w in
// the given format. The caller keeps ownership of w; the writer's buffer
// is flushed by Flush, which the engine invokes at the end of a successful
// run.
func NewTileWriter(w io.Writer, format MatrixFormat, field MatrixField) *TileWriter {
	return &TileWriter{w: w, format: format, field: field}
}

// Start writes the header once the run's dimensions are known.
func (tw *TileWriter) Start(n int, names []string) error {
	tw.bw = bufio.NewWriter(tw.w)
	tw.n = n
	tw.names = append([]string(nil), names...)
	tw.next = 0
	tw.pending = make(map[int]*pendingRow)
	switch tw.format {
	case FormatTSV:
		_, err := fmt.Fprintf(tw.bw, "sample\t%s\n", strings.Join(tw.names, "\t"))
		return err
	case FormatCSV:
		_, err := fmt.Fprintf(tw.bw, "sample,%s\n", strings.Join(tw.names, ","))
		return err
	case FormatPHYLIP:
		_, err := fmt.Fprintf(tw.bw, "%5d\n", n)
		return err
	}
	return fmt.Errorf("output: unknown tile-writer format %d", tw.format)
}

// Emit folds a tile into the pending rows and writes every row that became
// complete, in order.
func (tw *TileWriter) Emit(t *tile.Tile) error {
	if tw.bw == nil {
		return fmt.Errorf("output: TileWriter.Emit before Start")
	}
	vals := t.S
	if tw.field == MatrixDistance {
		vals = t.D
	}
	for i := 0; i < t.Rows; i++ {
		row := t.RowLo + i
		if row < tw.next {
			return fmt.Errorf("output: tile revisits already-written row %d", row)
		}
		pr := tw.pending[row]
		if pr == nil {
			pr = &pendingRow{vals: make([]float64, tw.n)}
			tw.pending[row] = pr
		}
		copy(pr.vals[t.ColLo:t.ColLo+t.Cols], vals[i*t.Cols:(i+1)*t.Cols])
		pr.filled += t.Cols
		if pr.filled > tw.n {
			return fmt.Errorf("output: row %d received overlapping tiles", row)
		}
	}
	for {
		pr := tw.pending[tw.next]
		if pr == nil || pr.filled != tw.n {
			return nil
		}
		if err := tw.writeRow(tw.next, pr.vals); err != nil {
			return err
		}
		delete(tw.pending, tw.next)
		tw.next++
	}
}

func (tw *TileWriter) writeRow(row int, vals []float64) error {
	switch tw.format {
	case FormatTSV, FormatCSV:
		sep := "\t"
		if tw.format == FormatCSV {
			sep = ","
		}
		cells := make([]string, len(vals))
		for j, v := range vals {
			cells[j] = strconv.FormatFloat(v, 'f', 6, 64)
		}
		_, err := fmt.Fprintf(tw.bw, "%s%s%s\n", tw.names[row], sep, strings.Join(cells, sep))
		return err
	case FormatPHYLIP:
		if _, err := fmt.Fprintf(tw.bw, "%-10s", phylipName(tw.names[row])); err != nil {
			return err
		}
		for _, v := range vals {
			if _, err := fmt.Fprintf(tw.bw, " %9.6f", v); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(tw.bw)
		return err
	}
	return fmt.Errorf("output: unknown tile-writer format %d", tw.format)
}

// Flush verifies every row was written and flushes the buffer.
func (tw *TileWriter) Flush() error {
	if tw.bw == nil {
		return fmt.Errorf("output: TileWriter.Flush before Start")
	}
	if tw.next != tw.n {
		return fmt.Errorf("output: run ended with %d of %d rows written", tw.next, tw.n)
	}
	return tw.bw.Flush()
}

// PairWriter is a tile sink that streams the upper-triangle sample pairs
// (i < j) with similarity at or above a threshold as a three-column TSV —
// the fully incremental near-duplicate output: nothing is buffered beyond
// the io buffer, regardless of n.
type PairWriter struct {
	w     io.Writer
	tau   float64
	bw    *bufio.Writer
	names []string
}

// NewPairWriter returns a pair-streaming sink; tau filters pairs the same
// way TopPairs does (similarity ≥ tau; use 0 to keep every pair).
func NewPairWriter(w io.Writer, tau float64) *PairWriter {
	return &PairWriter{w: w, tau: tau}
}

// Start writes the header.
func (pw *PairWriter) Start(n int, names []string) error {
	pw.bw = bufio.NewWriter(pw.w)
	pw.names = append([]string(nil), names...)
	_, err := fmt.Fprintln(pw.bw, "sample_a\tsample_b\tjaccard")
	return err
}

// Emit writes the tile's qualifying pairs in row-major order.
func (pw *PairWriter) Emit(t *tile.Tile) error {
	if pw.bw == nil {
		return fmt.Errorf("output: PairWriter.Emit before Start")
	}
	var err error
	tile.ForEachUpperPair(t, func(i, j int, sim float64) {
		if err != nil || sim < pw.tau {
			return
		}
		_, err = fmt.Fprintf(pw.bw, "%s\t%s\t%.6f\n", pw.names[i], pw.names[j], sim)
	})
	return err
}

// Flush flushes the buffer.
func (pw *PairWriter) Flush() error {
	if pw.bw == nil {
		return fmt.Errorf("output: PairWriter.Flush before Start")
	}
	return pw.bw.Flush()
}
