package semiring

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// checkMonoidLaws verifies identity and associativity for a monoid over a
// sample of values.
func checkMonoidLaws[T comparable](t *testing.T, name string, m Monoid[T], samples []T) {
	t.Helper()
	for _, x := range samples {
		if m.Op(m.Identity, x) != x {
			t.Errorf("%s: left identity violated for %v", name, x)
		}
		if m.Op(x, m.Identity) != x {
			t.Errorf("%s: right identity violated for %v", name, x)
		}
	}
	for _, a := range samples {
		for _, b := range samples {
			for _, c := range samples {
				if m.Op(m.Op(a, b), c) != m.Op(a, m.Op(b, c)) {
					t.Errorf("%s: associativity violated for %v %v %v", name, a, b, c)
				}
			}
		}
	}
}

func TestPlusInt64Laws(t *testing.T) {
	checkMonoidLaws(t, "PlusInt64", PlusInt64(), []int64{-7, -1, 0, 1, 3, 100})
}

func TestPlusFloat64Laws(t *testing.T) {
	checkMonoidLaws(t, "PlusFloat64", PlusFloat64(), []float64{0, 1, 2, 4, 8})
}

func TestMaxUint8Laws(t *testing.T) {
	checkMonoidLaws(t, "MaxUint8", MaxUint8(), []uint8{0, 1, 2, 200, 255})
}

func TestMaxInt64Laws(t *testing.T) {
	checkMonoidLaws(t, "MaxInt64", MaxInt64(), []int64{0, 1, 5, 1 << 40})
}

func TestMinFloat64Laws(t *testing.T) {
	checkMonoidLaws(t, "MinFloat64", MinFloat64(), []float64{0, 0.5, 1, 7, 1e10})
}

func TestOrBoolLaws(t *testing.T) {
	checkMonoidLaws(t, "OrBool", OrBool(), []bool{false, true})
}

func TestOrUint64Laws(t *testing.T) {
	checkMonoidLaws(t, "OrUint64", OrUint64(), []uint64{0, 1, 0xFF00, ^uint64(0)})
}

func TestFold(t *testing.T) {
	m := PlusInt64()
	if got := m.Fold(nil); got != 0 {
		t.Errorf("Fold(nil) = %d, want 0", got)
	}
	if got := m.Fold([]int64{1, 2, 3, 4}); got != 10 {
		t.Errorf("Fold = %d, want 10", got)
	}
	mx := MaxUint8()
	if got := mx.Fold([]uint8{3, 9, 1}); got != 9 {
		t.Errorf("max Fold = %d, want 9", got)
	}
}

func TestPopcountAndSemiring(t *testing.T) {
	sr := PopcountAnd()
	if sr.Mul(0xF0F0, 0xFF00) != int64(bits.OnesCount64(0xF0F0&0xFF00)) {
		t.Error("PopcountAnd.Mul incorrect")
	}
	if sr.Add.Identity != 0 {
		t.Error("PopcountAnd.Add identity must be 0")
	}
	// distributive-flavoured sanity: popcount((a|b) & c) <= popcount(a&c)+popcount(b&c)
	f := func(a, b, c uint64) bool {
		return sr.Mul(a|b, c) <= sr.Mul(a, c)+sr.Mul(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlusTimesInt64(t *testing.T) {
	sr := PlusTimesInt64()
	if sr.Mul(3, 4) != 12 {
		t.Error("mul wrong")
	}
	if sr.Add.Op(5, 7) != 12 {
		t.Error("add wrong")
	}
}

func TestPlusTimesFloat64(t *testing.T) {
	sr := PlusTimesFloat64()
	if sr.Mul(0.5, 4) != 2 {
		t.Error("mul wrong")
	}
}

func TestMaxTimesUint8FilterSemantics(t *testing.T) {
	// The filter vector combines concurrent writes of 1 into 1.
	sr := MaxTimesUint8()
	if got := sr.Add.Op(1, 1); got != 1 {
		t.Errorf("max(1,1) = %d, want 1", got)
	}
	if got := sr.Add.Op(0, 1); got != 1 {
		t.Errorf("max(0,1) = %d, want 1", got)
	}
	if got := sr.Mul(1, 1); got != 1 {
		t.Errorf("1*1 = %d, want 1", got)
	}
}

func TestBoolAndToInt64MatchesPopcountOnSingleBits(t *testing.T) {
	boolSR := BoolAndToInt64()
	packSR := PopcountAnd()
	f := func(a, b bool) bool {
		var wa, wb uint64
		if a {
			wa = 1
		}
		if b {
			wb = 1
		}
		return boolSR.Mul(a, b) == packSR.Mul(wa, wb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrAndBool(t *testing.T) {
	sr := OrAndBool()
	if sr.Mul(true, false) {
		t.Error("true∧false must be false")
	}
	if !sr.Add.Op(false, true) {
		t.Error("false∨true must be true")
	}
	if sr.Add.Identity {
		t.Error("identity of ∨ must be false")
	}
}

// The Gram product over {0,1} values with PlusTimesInt64 must agree with the
// popcount formulation when values are packed bit-by-bit — the core
// equivalence that justifies the paper's compression step (Eq. 7).
func TestPackedVsUnpackedDotProduct(t *testing.T) {
	f := func(xs, ys [64]bool) bool {
		var wx, wy uint64
		var dot int64
		pt := PlusTimesInt64()
		for i := 0; i < 64; i++ {
			var xi, yi int64
			if xs[i] {
				xi = 1
				wx |= 1 << uint(i)
			}
			if ys[i] {
				yi = 1
				wy |= 1 << uint(i)
			}
			dot = pt.Add.Op(dot, pt.Mul(xi, yi))
		}
		return dot == PopcountAnd().Mul(wx, wy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
