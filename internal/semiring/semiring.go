// Package semiring defines the algebraic structures that parameterise the
// sparse linear-algebra kernels of SimilarityAtScale. The paper (Section IV)
// relies on Cyclops' ability to run matrix contractions over user-defined
// monoids and semirings: the filter vector uses a (max, ×) semiring, the
// Jaccard Gram product B = AᵀA uses integer addition over a popcount-AND
// multiplication, and the final similarity derivation uses ordinary
// arithmetic. This package provides equivalent generic structures.
package semiring

import "genomeatscale/internal/bitutil"

// Monoid is an associative binary operation with an identity element.
// Implementations must satisfy Op(Identity, x) == Op(x, Identity) == x and
// associativity; property tests in this package verify the predefined ones.
type Monoid[T any] struct {
	// Identity is the neutral element of Op.
	Identity T
	// Op combines two values. It must be associative.
	Op func(T, T) T
}

// Fold reduces a slice with the monoid, returning Identity for empty input.
func (m Monoid[T]) Fold(xs []T) T {
	acc := m.Identity
	for _, x := range xs {
		acc = m.Op(acc, x)
	}
	return acc
}

// Semiring couples an additive monoid over C with a multiplication mapping
// an A-value and a B-value to a C-value. This is the shape required by the
// generalized matrix product C[i,j] = ⊕_k Mul(A[k,i], B[k,j]) used in the
// Jaccard kernel.
type Semiring[A, B, C any] struct {
	Add Monoid[C]
	Mul func(A, B) C
}

// --- Predefined monoids -----------------------------------------------------

// PlusInt64 is the (+, 0) monoid over int64, used to accumulate
// intersection cardinalities.
func PlusInt64() Monoid[int64] {
	return Monoid[int64]{Identity: 0, Op: func(a, b int64) int64 { return a + b }}
}

// PlusFloat64 is the (+, 0) monoid over float64.
func PlusFloat64() Monoid[float64] {
	return Monoid[float64]{Identity: 0, Op: func(a, b float64) float64 { return a + b }}
}

// MaxUint8 is the (max, 0) monoid over uint8. The paper uses a (max, ×)
// semiring when assembling the filter vector f so that concurrent writes of
// "1" from multiple processes combine into a single 1.
func MaxUint8() Monoid[uint8] {
	return Monoid[uint8]{Identity: 0, Op: func(a, b uint8) uint8 {
		if a > b {
			return a
		}
		return b
	}}
}

// MaxInt64 is the (max, MinInt64-free) monoid over int64 with identity 0,
// suitable for non-negative data such as counts.
func MaxInt64() Monoid[int64] {
	return Monoid[int64]{Identity: 0, Op: func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}}
}

// MinFloat64 is the (min, +Inf) monoid over float64 restricted to finite
// inputs; identity is positive infinity encoded as math.MaxFloat64 to keep
// the type closed under Op for practical data.
func MinFloat64() Monoid[float64] {
	const inf = 1.797693134862315708145274237317043567981e+308
	return Monoid[float64]{Identity: inf, Op: func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}}
}

// OrBool is the (∨, false) monoid over bool, the algebra of the indicator
// matrix itself.
func OrBool() Monoid[bool] {
	return Monoid[bool]{Identity: false, Op: func(a, b bool) bool { return a || b }}
}

// OrUint64 is the (|, 0) monoid over uint64, used when assembling packed
// bitmask words from multiple contributions.
func OrUint64() Monoid[uint64] {
	return Monoid[uint64]{Identity: 0, Op: func(a, b uint64) uint64 { return a | b }}
}

// --- Predefined semirings ---------------------------------------------------

// PlusTimesInt64 is the standard (+, ×) semiring over int64. Multiplying
// {0,1} indicator values under it yields intersection cardinalities, i.e.
// B = AᵀA of Section III-A.
func PlusTimesInt64() Semiring[int64, int64, int64] {
	return Semiring[int64, int64, int64]{
		Add: PlusInt64(),
		Mul: func(a, b int64) int64 { return a * b },
	}
}

// PlusTimesFloat64 is the standard (+, ×) semiring over float64.
func PlusTimesFloat64() Semiring[float64, float64, float64] {
	return Semiring[float64, float64, float64]{
		Add: PlusFloat64(),
		Mul: func(a, b float64) float64 { return a * b },
	}
}

// MaxTimesUint8 is the (max, ×) semiring over uint8 used for the filter
// vector f (Eq. 5): any process contributing a 1 makes the entry 1.
func MaxTimesUint8() Semiring[uint8, uint8, uint8] {
	return Semiring[uint8, uint8, uint8]{
		Add: MaxUint8(),
		Mul: func(a, b uint8) uint8 { return a * b },
	}
}

// PopcountAnd is the Jaccard kernel semiring of Eq. 7: values are b-bit
// packed row segments (uint64 words), multiplication is popcount(x ∧ y),
// and addition is integer addition. It is the algebra handed to the SUMMA
// Gram product, mirroring the paper's Cyclops Kernel construct
// Jaccard_Kernel(A["ki"], A["kj"], B["ij"]).
func PopcountAnd() Semiring[uint64, uint64, int64] {
	return Semiring[uint64, uint64, int64]{
		Add: PlusInt64(),
		Mul: func(a, b uint64) int64 { return int64(bitutil.PopcountAnd(a, b)) },
	}
}

// BoolAndToInt64 multiplies two booleans into an int64 {0,1} and adds them;
// it is the uncompressed counterpart of PopcountAnd used by reference
// implementations and ablation benchmarks.
func BoolAndToInt64() Semiring[bool, bool, int64] {
	return Semiring[bool, bool, int64]{
		Add: PlusInt64(),
		Mul: func(a, b bool) int64 {
			if a && b {
				return 1
			}
			return 0
		},
	}
}

// OrAndBool is the (∨, ∧) boolean semiring, useful for reachability-style
// products and for the graph-similarity application.
func OrAndBool() Semiring[bool, bool, bool] {
	return Semiring[bool, bool, bool]{
		Add: OrBool(),
		Mul: func(a, b bool) bool { return a && b },
	}
}
