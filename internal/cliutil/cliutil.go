// Package cliutil holds the command-line plumbing shared by the cmd/
// tools, so the engine-configuration flags are defined once — with one
// canonical help text — instead of being copy-pasted (and drifting)
// between commands, and so the matrix printing/writing helpers live in one
// place.
package cliutil

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	genomeatscale "genomeatscale"
	"genomeatscale/internal/core"
	"genomeatscale/internal/output"
	"genomeatscale/internal/samplefile"
	"genomeatscale/internal/sparse"
)

// NewFlagSet returns the flag set every CLI uses: ContinueOnError, so run
// functions surface parse failures as ordinary errors.
func NewFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ContinueOnError)
}

// ComputeFlags binds the engine-configuration flags shared by the compute
// CLIs (genomeatscale and similarityatscale): the execution layout, the
// compression parameters, and the streaming reductions.
type ComputeFlags struct {
	Procs          *int
	Batches        *int
	MaskBits       *int
	Replication    *int
	Workers        *int
	DenseThreshold *int
	TileRows       *int
	TopK           *int
	Threshold      *float64
	SketchK        *int
	SketchSlack    *float64
	Auto           *bool

	fs *flag.FlagSet
}

// BindCompute registers the shared flags on fs and returns their handles.
func BindCompute(fs *flag.FlagSet) *ComputeFlags {
	return &ComputeFlags{
		Procs:          fs.Int("procs", 1, "number of virtual BSP ranks"),
		Batches:        fs.Int("batches", 1, "number of row batches of the indicator matrix"),
		MaskBits:       fs.Int("mask-bits", 64, "bitmask compression width b (1..64)"),
		Replication:    fs.Int("replication", 1, "processor-grid replication factor c"),
		Workers:        fs.Int("workers", 0, "shared-memory worker goroutines per process for the Gram kernel, packing and finalization (0 = one per CPU, 1 = serial)"),
		DenseThreshold: fs.Int("dense-threshold", 0, "stored-word count at which a packed column is held as a dense slab (0 = auto ≈ ¼ of the word rows, negative = always sparse)"),
		TileRows:       fs.Int("tile-rows", 0, "row-band height of streamed output tiles on the sequential path (0 = default)"),
		TopK:           fs.Int("top-k", 0, "stream only the k most similar sample pairs instead of gathering the full matrix (0 = off)"),
		Threshold:      fs.Float64("threshold", -1, "stream only the sample pairs with similarity at or above this value instead of gathering the full matrix (negative = off)"),
		SketchK:        fs.Int("sketch-k", 0, "MinHash-prescreen -threshold runs with bottom-k sketches of this size: pairs estimated below threshold-slack skip the exact kernel (0 = off, negative = auto-sized from threshold and slack)"),
		SketchSlack:    fs.Float64("sketch-slack", core.DefaultSketchSlack, "recall margin subtracted from -threshold before the sketch prescreen gate"),
		Auto:           fs.Bool("auto", false, "autotune the run configuration from the dataset and host via the BSP cost model; engine flags given explicitly are pinned"),
		fs:             fs,
	}
}

// explicitField maps each engine-configuration flag name to the Options
// field it pins under -auto.
var explicitField = map[string]core.OptField{
	"procs":           core.FieldProcs,
	"batches":         core.FieldBatchCount,
	"mask-bits":       core.FieldMaskBits,
	"replication":     core.FieldReplication,
	"workers":         core.FieldWorkers,
	"dense-threshold": core.FieldDenseThreshold,
	"tile-rows":       core.FieldTileRows,
}

// Options assembles a core.Options from the bound flag values. Flags the
// user passed on the command line (as opposed to defaults) are marked
// explicit, so -auto plans around them instead of overriding them.
func (f *ComputeFlags) Options() core.Options {
	o := core.Options{
		BatchCount:     *f.Batches,
		MaskBits:       *f.MaskBits,
		Procs:          *f.Procs,
		Replication:    *f.Replication,
		Workers:        *f.Workers,
		DenseThreshold: *f.DenseThreshold,
		TileRows:       *f.TileRows,
		Autotune:       *f.Auto,
	}
	if *f.SketchK != 0 {
		// -sketch-k prescreens against the run's -threshold; without one
		// the negative default lands in Sketch.Threshold and surfaces as a
		// core.Validate error. A negative -sketch-k enables prescreening
		// with the auto-derived sketch size.
		o.Sketch = core.SketchOptions{Threshold: *f.Threshold, Slack: *f.SketchSlack}
		if *f.SketchK > 0 {
			o.Sketch.Size = *f.SketchK
			o.SetExplicit(core.FieldSketchSize)
		}
	}
	f.fs.Visit(func(fl *flag.Flag) {
		if field, ok := explicitField[fl.Name]; ok {
			o.SetExplicit(field)
		}
	})
	return o
}

// PrintTuning reports the decisions of an autotuned run; it prints nothing
// when the run carried no tuning report (autotuning off).
func PrintTuning(w io.Writer, t *core.TuningReport) {
	if t == nil {
		return
	}
	fmt.Fprintf(w, "autotune: %s; sampled %d columns (density %.3g); plan procs=%d replication=%d batches=%d tile-rows=%d dense-threshold=%d (predicted %.3gs, occupancy %.3g",
		t.Machine, t.SampledColumns, t.Stats.Density,
		t.Plan.Procs, t.Plan.Replication, t.Plan.Batches, t.Plan.TileRows, t.Plan.DenseThreshold,
		t.Plan.PredictedSeconds, t.Plan.PredictedOccupancy)
	if t.MeasuredOccupancy > 0 {
		fmt.Fprintf(w, ", measured %.3g", t.MeasuredOccupancy)
	}
	fmt.Fprint(w, ")")
	if len(t.Pinned) > 0 {
		fmt.Fprintf(w, "; pinned: %s", strings.Join(t.Pinned, ", "))
	}
	fmt.Fprintln(w)
}

// PrintSketch reports what the MinHash prescreening tier did; it prints
// nothing when the run carried no sketch stats (prescreening off).
func PrintSketch(w io.Writer, s *core.SketchStats) {
	if s == nil {
		return
	}
	pruned := float64(0)
	if s.PairsScreened > 0 {
		pruned = 100 * float64(s.PairsScreened-s.PairsSurvived) / float64(s.PairsScreened)
	}
	fmt.Fprintf(w, "prescreen: k=%d at threshold %.3g (slack %.3g); %d of %d pairs survived (%.1f%% pruned), estimated recall %.4f (%.3fs sketching)\n",
		s.Size, s.Threshold, s.Slack, s.PairsSurvived, s.PairsScreened, pruned, s.EstimatedRecall, s.SketchSeconds)
}

// Engine builds a reusable engine from the bound flag values.
func (f *ComputeFlags) Engine() (*genomeatscale.Engine, error) {
	return genomeatscale.NewEngineFromOptions(f.Options())
}

// Streaming reports whether -top-k or -threshold requested a streaming
// reduction instead of the gathered matrix.
func (f *ComputeFlags) Streaming() bool { return *f.TopK > 0 || *f.Threshold >= 0 }

// IngestFlags binds the out-of-core ingestion flags: instead of listing
// sample files on the command line (all loaded up front), -dir scans a
// directory lazily through samplefile.DirDataset with parallel prefetch
// and bounded resident memory.
type IngestFlags struct {
	Dir         *string
	Pattern     *string
	Prefetch    *int
	LoadWorkers *int
	MaxResident *int
}

// BindIngest registers the out-of-core ingestion flags on fs.
func BindIngest(fs *flag.FlagSet) *IngestFlags {
	return &IngestFlags{
		Dir:         fs.String("dir", "", "read sample files out-of-core from this directory instead of listing them as arguments"),
		Pattern:     fs.String("pattern", "*", "glob the sample files under -dir must match"),
		Prefetch:    fs.Int("prefetch", 64, "out-of-core read-ahead window in samples; the next window loads while the current one computes (0 = cache every loaded sample, no eviction)"),
		LoadWorkers: fs.Int("load-workers", 0, "concurrent background sample loads (0 = auto)"),
		MaxResident: fs.Int("max-resident", 0, "bound on simultaneously resident samples (0 = 2x the prefetch window when prefetching)"),
	}
}

// Active reports whether -dir selected out-of-core ingestion.
func (f *IngestFlags) Active() bool { return *f.Dir != "" }

// Open opens the configured directory as an out-of-core dataset over the
// attribute universe [0, numAttributes).
func (f *IngestFlags) Open(numAttributes uint64) (*samplefile.DirDataset, error) {
	return samplefile.OpenDirOptions(*f.Dir, numAttributes, samplefile.DirOptions{
		Pattern:     *f.Pattern,
		Prefetch:    *f.Prefetch,
		Parallelism: *f.LoadWorkers,
		MaxResident: *f.MaxResident,
	})
}

// PrintIngest reports the ingestion counters of an out-of-core run; it
// prints nothing when the run carried none (in-memory datasets).
func PrintIngest(w io.Writer, s *core.IngestStats) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "ingestion: %d sample loads (%.3fs I/O), %d evictions, peak %d samples resident\n",
		s.Loads, s.LoadSeconds, s.Evictions, s.PeakResident)
}

// StreamPairs runs the engine in streaming mode according to the -top-k /
// -threshold flags and returns the run result plus the retained pairs
// (named, sorted by descending similarity) ready for output.WritePairs.
// With both flags set, the top-k pairs are additionally filtered by the
// threshold.
func (f *ComputeFlags) StreamPairs(ctx context.Context, ds genomeatscale.Dataset) (*genomeatscale.Result, []output.Pair, error) {
	e, err := f.Engine()
	if err != nil {
		return nil, nil, err
	}
	var res *genomeatscale.Result
	var raw []genomeatscale.Pair
	switch {
	case *f.TopK > 0:
		sink := genomeatscale.TopK(*f.TopK)
		if res, err = e.Stream(ctx, ds, sink); err != nil {
			return nil, nil, err
		}
		raw = sink.Pairs()
		if tau := *f.Threshold; tau >= 0 {
			kept := raw[:0]
			for _, p := range raw {
				if p.Similarity >= tau {
					kept = append(kept, p)
				}
			}
			raw = kept
		}
	case *f.Threshold >= 0:
		sink := genomeatscale.Threshold(*f.Threshold)
		if res, err = e.Stream(ctx, ds, sink); err != nil {
			return nil, nil, err
		}
		raw = sink.Pairs()
	default:
		return nil, nil, fmt.Errorf("cliutil: StreamPairs without -top-k or -threshold")
	}
	pairs := make([]output.Pair, len(raw))
	for i, p := range raw {
		pairs[i] = output.Pair{
			I: p.I, J: p.J,
			NameI: res.Names[p.I], NameJ: res.Names[p.J],
			Similarity: p.Similarity,
		}
	}
	return res, pairs, nil
}

// WriteMatrixTSVFile writes a labelled square matrix as TSV to path.
func WriteMatrixTSVFile(path string, names []string, m *sparse.Dense[float64]) (err error) {
	fl, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := fl.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return output.WriteTSV(fl, names, m)
}

// PrintMatrix pretty-prints a labelled square matrix with truncated row
// and column headers.
func PrintMatrix(w io.Writer, names []string, m *sparse.Dense[float64]) {
	fmt.Fprintf(w, "\n%-20s", "")
	for _, n := range names {
		fmt.Fprintf(w, " %10s", Truncate(n, 10))
	}
	fmt.Fprintln(w)
	for i, n := range names {
		fmt.Fprintf(w, "%-20s", Truncate(n, 20))
		for j := range names {
			fmt.Fprintf(w, " %10.4f", m.At(i, j))
		}
		fmt.Fprintln(w)
	}
}

// Truncate shortens s to at most n bytes.
func Truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// WriteStatsJSON encodes a run's statistics as indented, machine-readable
// JSON — the single RunStats encoder shared by the batch CLIs' -stats-json
// flag and by similarityd, whose /metrics and /v1/corpus endpoints re-emit
// the figures a build recorded. A trailing newline terminates the object
// so the output concatenates cleanly into log streams.
func WriteStatsJSON(w io.Writer, stats *core.RunStats) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(stats)
}

// ReadStatsJSON decodes RunStats previously written by WriteStatsJSON.
func ReadStatsJSON(r io.Reader) (*core.RunStats, error) {
	var stats core.RunStats
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&stats); err != nil {
		return nil, fmt.Errorf("cliutil: decoding run stats: %w", err)
	}
	return &stats, nil
}
