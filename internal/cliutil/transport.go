package cliutil

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"genomeatscale/internal/bsp"
	"genomeatscale/internal/bsp/tcptransport"
	"genomeatscale/internal/core"
	"genomeatscale/internal/dist"
)

// TransportFlags binds the multi-process transport flags: -transport
// selects the BSP message layer (the default in-process runtime, or one
// TCP rank of a multi-process job), and -rank/-peers/-step-timeout
// configure the TCP endpoint.
type TransportFlags struct {
	Transport   *string
	Rank        *int
	Peers       *string
	StepTimeout *time.Duration
}

// BindTransport registers the transport flags on fs.
func BindTransport(fs *flag.FlagSet) *TransportFlags {
	return &TransportFlags{
		Transport:   fs.String("transport", "mem", "BSP transport: mem (in-process virtual ranks) or tcp (this process is one rank of a multi-process job; see -rank and -peers)"),
		Rank:        fs.Int("rank", 0, "with -transport tcp: this process's rank in [0, len(peers))"),
		Peers:       fs.String("peers", "", "with -transport tcp: comma-separated host:port listen addresses of ALL ranks, rank order; entry -rank is this process's own listen address"),
		StepTimeout: fs.Duration("step-timeout", 30*time.Second, "with -transport tcp: per-superstep exchange deadline; a rank silent past it is declared failed"),
	}
}

// TCP reports whether -transport selected the TCP backend.
func (f *TransportFlags) TCP() bool { return *f.Transport == "tcp" }

// Root reports whether this process assembles the result matrices: always
// true in-process, rank 0 only over TCP.
func (f *TransportFlags) Root() bool { return !f.TCP() || *f.Rank == 0 }

// Setup resolves the transport flags into opts: for -transport tcp it
// builds the endpoint — deriving Procs from the peer list, which must
// agree across every process of the job — and returns a closer the caller
// must invoke once the run is over. For -transport mem it validates that
// no TCP-only flag was passed and returns a no-op closer.
func (f *TransportFlags) Setup(opts *core.Options) (func() error, error) {
	noop := func() error { return nil }
	switch *f.Transport {
	case "mem":
		if *f.Peers != "" {
			return nil, fmt.Errorf("-peers needs -transport tcp")
		}
		if *f.Rank != 0 {
			return nil, fmt.Errorf("-rank needs -transport tcp")
		}
		return noop, nil
	case "tcp":
		peers := strings.Split(*f.Peers, ",")
		for i, p := range peers {
			peers[i] = strings.TrimSpace(p)
			if peers[i] == "" {
				return nil, fmt.Errorf("-peers entry %d is empty", i)
			}
		}
		if len(peers) < 2 {
			return nil, fmt.Errorf("-transport tcp needs at least two -peers addresses, got %d", len(peers))
		}
		rank := *f.Rank
		if rank < 0 || rank >= len(peers) {
			return nil, fmt.Errorf("-rank %d outside the peer list [0, %d)", rank, len(peers))
		}
		t, err := tcptransport.New(rank, peers, dist.NewWireCodec(),
			tcptransport.Options{StepTimeout: *f.StepTimeout})
		if err != nil {
			return nil, err
		}
		opts.Transport = t
		opts.Procs = len(peers)
		opts.SetExplicit(core.FieldProcs)
		return t.Close, nil
	default:
		return nil, fmt.Errorf("unknown -transport %q (want mem or tcp)", *f.Transport)
	}
}

// PrintComm reports a run's BSP communication accounting and — for runs
// over a remote transport — the wire-level counters beneath it. It prints
// nothing for sequential runs.
func PrintComm(w io.Writer, s *core.RunStats) {
	if s.Comm != nil {
		fmt.Fprintf(w, "communication: %d supersteps, %.2f MiB total\n",
			s.Comm.Supersteps, float64(s.Comm.TotalBytes)/(1<<20))
	}
	printTransport(w, s.Transport)
}

func printTransport(w io.Writer, t *bsp.TransportStats) {
	if t == nil {
		return
	}
	fmt.Fprintf(w, "transport: %d dials (%d retries), %.2f MiB sent / %.2f MiB received on the wire, max superstep exchange %.3fs\n",
		t.Dials, t.Retries, float64(t.BytesSent)/(1<<20), float64(t.BytesRecv)/(1<<20), t.MaxStepSeconds)
}
