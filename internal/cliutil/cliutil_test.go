package cliutil

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	genomeatscale "genomeatscale"
	"genomeatscale/internal/core"
	"genomeatscale/internal/sparse"
)

func TestBindComputeDefaultsMatchPaper(t *testing.T) {
	fs := NewFlagSet("test")
	f := BindCompute(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	opts := f.Options()
	def := genomeatscale.DefaultOptions()
	def.Workers = 0
	if opts.BatchCount != def.BatchCount || opts.MaskBits != def.MaskBits ||
		opts.Procs != def.Procs || opts.Replication != def.Replication {
		t.Errorf("flag defaults %+v diverge from DefaultOptions %+v", opts, def)
	}
	if f.Streaming() {
		t.Error("defaults must not select streaming mode")
	}
	if _, err := f.Engine(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamPairsTopKAndThreshold(t *testing.T) {
	fs := NewFlagSet("test")
	f := BindCompute(fs)
	if err := fs.Parse([]string{"-top-k", "2", "-procs", "2"}); err != nil {
		t.Fatal(err)
	}
	ds, err := genomeatscale.NewDataset(
		[]string{"a", "b", "c"},
		[][]uint64{{1, 2, 3, 4}, {1, 2, 3, 5}, {50, 51}},
		100,
	)
	if err != nil {
		t.Fatal(err)
	}
	res, pairs, err := f.StreamPairs(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.S != nil {
		t.Error("streaming run must not gather S")
	}
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs, want 2", len(pairs))
	}
	if pairs[0].NameI != "a" || pairs[0].NameJ != "b" {
		t.Errorf("best pair should be (a, b), got (%s, %s)", pairs[0].NameI, pairs[0].NameJ)
	}
	if pairs[0].Similarity < pairs[1].Similarity {
		t.Error("pairs must be sorted by descending similarity")
	}

	// Adding a threshold on top of -top-k filters the retained pairs.
	fs2 := NewFlagSet("test")
	f2 := BindCompute(fs2)
	if err := fs2.Parse([]string{"-top-k", "3", "-threshold", "0.5"}); err != nil {
		t.Fatal(err)
	}
	_, pairs2, err := f2.StreamPairs(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs2 {
		if p.Similarity < 0.5 {
			t.Errorf("pair %+v below threshold", p)
		}
	}

	// StreamPairs without a streaming flag is a usage error.
	fs3 := NewFlagSet("test")
	f3 := BindCompute(fs3)
	if err := fs3.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f3.StreamPairs(context.Background(), ds); err == nil {
		t.Error("StreamPairs without -top-k/-threshold must error")
	}
}

func TestAutoFlagPinsExplicitFlags(t *testing.T) {
	fs := NewFlagSet("test")
	f := BindCompute(fs)
	if err := fs.Parse([]string{"-auto", "-batches", "3", "-mask-bits", "32"}); err != nil {
		t.Fatal(err)
	}
	opts := f.Options()
	if !opts.Autotune {
		t.Fatal("-auto did not enable autotuning")
	}
	if !opts.IsExplicit(core.FieldBatchCount) || !opts.IsExplicit(core.FieldMaskBits) {
		t.Error("flags passed on the command line must be marked explicit")
	}
	if opts.IsExplicit(core.FieldProcs) || opts.IsExplicit(core.FieldDenseThreshold) {
		t.Error("flags left at their defaults must not be marked explicit")
	}

	// Without -auto no tuning, but explicit marks are still recorded (they
	// are inert).
	fs2 := NewFlagSet("test")
	f2 := BindCompute(fs2)
	if err := fs2.Parse([]string{"-procs", "4"}); err != nil {
		t.Fatal(err)
	}
	opts2 := f2.Options()
	if opts2.Autotune {
		t.Error("autotuning on without -auto")
	}
	if !opts2.IsExplicit(core.FieldProcs) {
		t.Error("-procs not marked explicit")
	}
}

func TestPrintTuning(t *testing.T) {
	var buf bytes.Buffer
	PrintTuning(&buf, nil)
	if buf.Len() != 0 {
		t.Error("nil report must print nothing")
	}
	rep := &core.TuningReport{
		Machine:        "test-host",
		SampledColumns: 8,
		Pinned:         []string{"batches"},
	}
	rep.Plan.Procs = 1
	rep.Plan.Batches = 3
	PrintTuning(&buf, rep)
	s := buf.String()
	for _, want := range []string{"test-host", "procs=1", "batches=3", "pinned: batches"} {
		if !strings.Contains(s, want) {
			t.Errorf("tuning report output missing %q:\n%s", want, s)
		}
	}
}

func TestTruncate(t *testing.T) {
	if Truncate("abcdef", 3) != "abc" {
		t.Error("Truncate wrong")
	}
	if Truncate("ab", 3) != "ab" {
		t.Error("Truncate of short string wrong")
	}
}

func TestWriteMatrixTSVFileError(t *testing.T) {
	err := WriteMatrixTSVFile(filepath.Join(t.TempDir(), "missing-dir", "x.tsv"), nil, nil)
	if err == nil {
		t.Error("unwritable path should error")
	}
}

func TestPrintMatrix(t *testing.T) {
	m := sparse.MustDense[float64](2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 0.5)
	m.Set(1, 0, 0.5)
	m.Set(1, 1, 1)
	var buf bytes.Buffer
	PrintMatrix(&buf, []string{"alpha", "beta"}, m)
	if !strings.Contains(buf.String(), "0.5000") {
		t.Errorf("printed matrix missing values:\n%s", buf.String())
	}
}
