package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"genomeatscale/internal/core"
	"genomeatscale/internal/index"
)

// IndexFlags binds the persistent-index emission flags shared by the batch
// CLIs: after a run, the dataset can be packed into an on-disk index that
// cmd/similarityd serves without recomputation.
type IndexFlags struct {
	Out     *string
	SketchK *int
}

// BindIndex registers -index-out and -index-sketch-k on fs.
func BindIndex(fs *flag.FlagSet) *IndexFlags {
	return &IndexFlags{
		Out:     fs.String("index-out", "", "write a persistent similarity index (served by similarityd) to this file"),
		SketchK: fs.Int("index-sketch-k", 0, "store a bottom-k MinHash sketch of each sample in the index (0 = none); lets thresholded queries gate popcounts"),
	}
}

// Active reports whether an index was requested.
func (f *IndexFlags) Active() bool { return *f.Out != "" }

// Write builds the index from ds — reusing the run's packing parameters
// (mask bits, dense-threshold spec) so served queries hit the same kernels
// the batch run used — and persists it. A no-op when -index-out is unset.
func (f *IndexFlags) Write(out io.Writer, ds core.Dataset, opts core.Options) error {
	if !f.Active() {
		return nil
	}
	c, err := index.Build(ds, index.Options{
		B:              opts.MaskBits,
		DenseThreshold: opts.DenseThreshold,
		SketchK:        *f.SketchK,
	})
	if err != nil {
		return err
	}
	if err := c.WriteFile(*f.Out); err != nil {
		return err
	}
	fmt.Fprintf(out, "index written to %s (%d samples, %d words packed, sketch k=%d)\n",
		*f.Out, c.Samples(), c.MemoryWords(), *f.SketchK)
	return nil
}

// BindStatsJSON registers the -stats-json flag: a machine-readable RunStats
// dump ("-" = stdout) alongside the human-readable report.
func BindStatsJSON(fs *flag.FlagSet) *string {
	return fs.String("stats-json", "", `write the run's statistics (RunStats incl. tuning/sketch/transport/ingest) as JSON to this file ("-" = stdout)`)
}

// WriteStatsJSONFlag honours a -stats-json value: a no-op when empty,
// stdout when "-", a file otherwise. The encoding is WriteStatsJSON — the
// same one similarityd re-reads (-build-stats) and re-exposes through
// /metrics and /v1/corpus.
func WriteStatsJSONFlag(out io.Writer, path string, stats *core.RunStats) error {
	switch path {
	case "":
		return nil
	case "-":
		return WriteStatsJSON(out, stats)
	}
	fl, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteStatsJSON(fl, stats); err != nil {
		return errors.Join(err, fl.Close())
	}
	if err := fl.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "run statistics written to %s\n", path)
	return nil
}
