// Package dataset provides proxies for the real datasets of the paper's
// evaluation (Section V-A2) and the static data behind Table II.
//
// The Kingsford dataset (2,580 human RNASeq experiments, k = 19, indicator
// density ≈1.5·10⁻⁴) and the BIGSI dataset (446,506 bacterial/viral WGS
// experiments, k = 31, density ≈4·10⁻¹²) total hundreds of terabytes of raw
// sequencing data and cannot be shipped or downloaded offline. The
// algorithm, however, only ever observes (k-mer, sample) presence pairs, so
// a density- and variability-matched synthetic proxy exercises exactly the
// same code paths: hypersparse batches, filter construction, compression
// and the popcount Gram product. The proxies below are deterministic and
// scalable, so tests use small instances and benchmarks can grow them.
package dataset

import (
	"fmt"

	"genomeatscale/internal/core"
	"genomeatscale/internal/synth"
)

// Proxy describes a synthetic stand-in for one of the paper's datasets.
type Proxy struct {
	// Name of the original dataset.
	Name string
	// Samples is the full n of the original dataset.
	Samples int
	// Attributes is the full m of the original dataset (4^k).
	Attributes uint64
	// Density is the indicator density reported in the paper.
	Density float64
	// ColumnVariability reflects how uneven per-sample k-mer counts are
	// (the paper notes "high-variability of density across different
	// columns in the BIGSI dataset").
	ColumnVariability float64
	// KmerLength is the k used by the paper for this dataset.
	KmerLength int
}

// Kingsford returns the proxy description of the low-variability dataset.
func Kingsford() Proxy {
	return Proxy{
		Name:              "Kingsford/BBB (human RNASeq)",
		Samples:           2580,
		Attributes:        uint64(1) << (2 * 19),
		Density:           1.5e-4,
		ColumnVariability: 0.2,
		KmerLength:        19,
	}
}

// BIGSI returns the proxy description of the high-variability dataset.
func BIGSI() Proxy {
	return Proxy{
		Name:              "BIGSI (bacterial/viral WGS)",
		Samples:           446506,
		Attributes:        uint64(1) << (2 * 31),
		Density:           4e-12,
		ColumnVariability: 1.0,
		KmerLength:        31,
	}
}

// ScaledConfig describes how to shrink a proxy for in-process execution.
type ScaledConfig struct {
	// Samples overrides the sample count (0 keeps the original).
	Samples int
	// Attributes overrides the attribute count (0 keeps the original).
	Attributes uint64
	// DensityScale multiplies the density (1 keeps the original). Scaled
	// runs usually increase density so the scaled-down matrix still has
	// enough nonzeros to exercise the kernels.
	DensityScale float64
	// Seed drives the deterministic generator.
	Seed uint64
}

// Generate materialises a (scaled) instance of the proxy as an in-memory
// dataset. The per-column cardinality distribution keeps the proxy's
// variability so load-balance behaviour matches the original.
func (p Proxy) Generate(cfg ScaledConfig) (*core.InMemoryDataset, error) {
	samples := p.Samples
	if cfg.Samples > 0 {
		samples = cfg.Samples
	}
	attrs := p.Attributes
	if cfg.Attributes > 0 {
		attrs = cfg.Attributes
	}
	density := p.Density
	if cfg.DensityScale > 0 {
		density *= cfg.DensityScale
	}
	if density > 1 {
		density = 1
	}
	if density <= 0 {
		return nil, fmt.Errorf("dataset: scaled density %v is not positive", density)
	}
	return synth.Generate(synth.Config{
		Samples:           samples,
		Attributes:        attrs,
		Density:           density,
		ColumnVariability: p.ColumnVariability,
		Seed:              cfg.Seed ^ 0xD47A5E7,
	})
}

// TotalNonzeros estimates Z = m·n·density of the full (unscaled) dataset.
func (p Proxy) TotalNonzeros() float64 {
	return float64(p.Attributes) * float64(p.Samples) * p.Density
}

// ToolComparison is one row of Table II: the scale reached by an
// alignment-free genetic-distance tool.
type ToolComparison struct {
	Tool            string
	ComputeNodes    int
	Samples         int
	RawInputTB      float64 // 0 when the paper reports N/A
	PreprocessedGB  float64 // 0 when the paper reports N/A
	SimilarityKind  string
	ExactJaccard    bool
	DistributedRun  bool
	SourceStatement string
}

// TableII returns the published comparison rows of Table II plus the
// GenomeAtScale row. The benchmark harness prints these alongside the
// configuration of the current reproduction run.
func TableII() []ToolComparison {
	return []ToolComparison{
		{
			Tool: "DSM", ComputeNodes: 1, Samples: 435, RawInputTB: 3.3,
			SimilarityKind: "Jaccard", ExactJaccard: true, DistributedRun: false,
			SourceStatement: "DSM directly queries raw sequencing data with no assembly step",
		},
		{
			Tool: "Mash", ComputeNodes: 1, Samples: 54118, PreprocessedGB: 674,
			SimilarityKind: "Jaccard (MinHash)", ExactJaccard: false, DistributedRun: false,
			SourceStatement: "Mash is constructed from assembled and curated reference genomes",
		},
		{
			Tool: "Libra", ComputeNodes: 10, Samples: 40, RawInputTB: 0.372,
			SimilarityKind: "Cosine", ExactJaccard: false, DistributedRun: true,
			SourceStatement: "Libra directly queries raw sequencing data with no assembly step",
		},
		{
			Tool: "GenomeAtScale", ComputeNodes: 1024, Samples: 446506, RawInputTB: 170, PreprocessedGB: 1800,
			SimilarityKind: "Jaccard", ExactJaccard: true, DistributedRun: true,
			SourceStatement: "computed from cleaned and assembled sequences (Section V-A2)",
		},
	}
}

// LargestScale returns the row with the most samples; Table II's point is
// that GenomeAtScale reaches the largest problem size and parallelism.
func LargestScale(rows []ToolComparison) ToolComparison {
	var best ToolComparison
	for _, r := range rows {
		if r.Samples > best.Samples {
			best = r
		}
	}
	return best
}
