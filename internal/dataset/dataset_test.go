package dataset

import (
	"math"
	"testing"

	"genomeatscale/internal/core"
)

func TestProxyDescriptionsMatchPaper(t *testing.T) {
	k := Kingsford()
	if k.Samples != 2580 || k.KmerLength != 19 {
		t.Errorf("Kingsford proxy = %+v", k)
	}
	if k.Attributes != uint64(1)<<38 {
		t.Errorf("Kingsford attribute space should be 4^19")
	}
	b := BIGSI()
	if b.Samples != 446506 || b.KmerLength != 31 {
		t.Errorf("BIGSI proxy = %+v", b)
	}
	if b.Density >= k.Density {
		t.Error("BIGSI must be far sparser than Kingsford")
	}
	if b.ColumnVariability <= k.ColumnVariability {
		t.Error("BIGSI must have higher column variability")
	}
}

func TestTotalNonzeros(t *testing.T) {
	k := Kingsford()
	z := k.TotalNonzeros()
	perSample := z / float64(k.Samples)
	// ≈41M distinct 19-mers per RNASeq sample is the order of magnitude the
	// density in the paper implies.
	if perSample < 1e6 || perSample > 1e9 {
		t.Errorf("Kingsford per-sample nonzeros = %v", perSample)
	}
}

func TestGenerateScaledKingsford(t *testing.T) {
	ds, err := Kingsford().Generate(ScaledConfig{
		Samples:      100,
		Attributes:   200000,
		DensityScale: 10, // keep enough nonzeros at the reduced size
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 100 || ds.NumAttributes() != 200000 {
		t.Fatalf("scaled shape %d x %d", ds.NumSamples(), ds.NumAttributes())
	}
	got := core.Density(ds)
	want := 1.5e-4 * 10
	if math.Abs(got-want)/want > 0.3 {
		t.Errorf("scaled density = %v, want ≈%v", got, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := ScaledConfig{Samples: 30, Attributes: 10000, DensityScale: 20, Seed: 7}
	a, err := BIGSI().Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BIGSI().Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < a.NumSamples(); j++ {
		sa, sb := a.Sample(j), b.Sample(j)
		if len(sa) != len(sb) {
			t.Fatalf("sample %d differs", j)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("sample %d differs at %d", j, i)
			}
		}
	}
}

func TestGenerateRejectsZeroDensity(t *testing.T) {
	p := Kingsford()
	p.Density = 0
	if _, err := p.Generate(ScaledConfig{Samples: 10, Attributes: 100}); err == nil {
		t.Error("zero density should error")
	}
}

func TestGenerateClampsDensity(t *testing.T) {
	p := Kingsford()
	ds, err := p.Generate(ScaledConfig{Samples: 5, Attributes: 50, DensityScale: 1e9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Clamped to density 1: every sample is (nearly) the full universe.
	if core.Density(ds) < 0.5 {
		t.Errorf("density should be clamped near 1, got %v", core.Density(ds))
	}
}

func TestTableII(t *testing.T) {
	rows := TableII()
	if len(rows) != 4 {
		t.Fatalf("Table II should have 4 rows, got %d", len(rows))
	}
	byTool := map[string]ToolComparison{}
	for _, r := range rows {
		byTool[r.Tool] = r
	}
	gas, ok := byTool["GenomeAtScale"]
	if !ok {
		t.Fatal("GenomeAtScale row missing")
	}
	if gas.ComputeNodes != 1024 || gas.Samples != 446506 || !gas.ExactJaccard {
		t.Errorf("GenomeAtScale row = %+v", gas)
	}
	mash := byTool["Mash"]
	if mash.ExactJaccard {
		t.Error("Mash uses MinHash, not exact Jaccard")
	}
	if byTool["Libra"].SimilarityKind != "Cosine" {
		t.Error("Libra similarity kind wrong")
	}
	// The headline claim of Table II: GenomeAtScale reaches the largest
	// sample count and node count.
	best := LargestScale(rows)
	if best.Tool != "GenomeAtScale" {
		t.Errorf("largest scale should be GenomeAtScale, got %s", best.Tool)
	}
	for _, r := range rows {
		if r.Tool != "GenomeAtScale" && r.ComputeNodes >= gas.ComputeNodes {
			t.Errorf("%s node count should be below GenomeAtScale", r.Tool)
		}
	}
}
