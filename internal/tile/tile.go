// Package tile defines the streaming output unit of SimilarityAtScale and
// the sinks that consume it. The paper's headline setting is one where the
// full n×n similarity output no longer fits on a single node; instead of
// gathering dense S and D matrices at rank 0, the execution engine emits
// the result as a sequence of finalized tiles — positioned rectangular
// blocks carrying the intersection counts B together with the derived
// similarity S and distance D values (Eq. 2) — as each batch/SUMMA block
// completes. Consumers that only need a reduction of the output (the top-k
// most similar pairs, the pairs above a threshold, a file written row by
// row) never hold more than one tile plus their own state.
//
// The package sits below internal/core and internal/dist (which produce
// tiles) and internal/output (which writes them), so every layer shares one
// Tile/Sink vocabulary.
package tile

import (
	"fmt"
	"sort"

	"genomeatscale/internal/sparse"
)

// Tile is one finalized rectangular block of the result matrices: rows
// [RowLo, RowLo+Rows) × columns [ColLo, ColLo+Cols) of B, S and D, each in
// row-major order. A tile's slices are only valid for the duration of the
// Emit call that delivers it — the engine reuses the backing buffers for
// subsequent tiles — so sinks that outlive the call must copy what they
// keep.
type Tile struct {
	RowLo, ColLo int
	Rows, Cols   int
	B            []int64   // intersection cardinalities b_ij (Eq. 4)
	S            []float64 // Jaccard similarities (Eq. 2)
	D            []float64 // Jaccard distances, D = 1 − S
}

// ByteSize implements the bsp.ByteSizer convention so a tile travelling
// between virtual ranks is accounted at its exact wire volume: the three
// payload blocks plus four position words.
func (t *Tile) ByteSize() int { return 8*(len(t.B)+len(t.S)+len(t.D)) + 32 }

// Words returns the tile's resident size in 64-bit words; the engine
// reports the per-run maximum as RunStats.PeakTileWords.
func (t *Tile) Words() int64 { return int64(len(t.B) + len(t.S) + len(t.D)) }

// Sink consumes finalized tiles. Emit is called from a single goroutine in
// a deterministic order (tiles sorted by (RowLo, ColLo)); returning an
// error aborts the run and surfaces the error from Engine.Stream.
type Sink interface {
	Emit(*Tile) error
}

// Starter is an optional Sink extension: Start is called once before the
// first tile with the sample count and names, letting matrix-assembling
// sinks allocate and file writers emit headers.
type Starter interface {
	Start(n int, names []string) error
}

// Flusher is an optional Sink extension: Flush is called once after the
// last tile of a successful run (it is not called when the run fails or is
// cancelled).
type Flusher interface {
	Flush() error
}

// Start invokes s.Start if the sink implements Starter.
func Start(s Sink, n int, names []string) error {
	if st, ok := s.(Starter); ok {
		return st.Start(n, names)
	}
	return nil
}

// Flush invokes s.Flush if the sink implements Flusher.
func Flush(s Sink) error {
	if f, ok := s.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// --- Collect -----------------------------------------------------------------

// Collect reassembles the emitted tiles into full dense B, S and D
// matrices. It is the streaming equivalent of the legacy rank-0 gather:
// running Engine.Stream with a Collect sink produces matrices
// byte-identical to the ones Engine.Similarity returns, and the legacy
// full-gather path is implemented as exactly this sink.
type Collect struct {
	n     int
	names []string
	b     *sparse.Dense[int64]
	s     *sparse.Dense[float64]
	d     *sparse.Dense[float64]
}

// NewCollect returns an empty full-matrix collector.
func NewCollect() *Collect { return &Collect{} }

// Start allocates the n×n output matrices.
func (c *Collect) Start(n int, names []string) error {
	c.n = n
	c.names = append([]string(nil), names...)
	c.b = sparse.MustDense[int64](n, n)
	c.s = sparse.MustDense[float64](n, n)
	c.d = sparse.MustDense[float64](n, n)
	return nil
}

// Emit copies the tile into the assembled matrices.
func (c *Collect) Emit(t *Tile) error {
	if c.b == nil {
		return fmt.Errorf("tile: Collect.Emit before Start")
	}
	if t.RowLo < 0 || t.ColLo < 0 || t.RowLo+t.Rows > c.n || t.ColLo+t.Cols > c.n {
		return fmt.Errorf("tile: tile [%d+%d)×[%d+%d) outside %d×%d output",
			t.RowLo, t.Rows, t.ColLo, t.Cols, c.n, c.n)
	}
	for i := 0; i < t.Rows; i++ {
		row := t.RowLo + i
		copy(c.b.Row(row)[t.ColLo:t.ColLo+t.Cols], t.B[i*t.Cols:(i+1)*t.Cols])
		copy(c.s.Row(row)[t.ColLo:t.ColLo+t.Cols], t.S[i*t.Cols:(i+1)*t.Cols])
		copy(c.d.Row(row)[t.ColLo:t.ColLo+t.Cols], t.D[i*t.Cols:(i+1)*t.Cols])
	}
	return nil
}

// N returns the sample count announced by Start.
func (c *Collect) N() int { return c.n }

// Names returns the sample names announced by Start.
func (c *Collect) Names() []string { return c.names }

// B returns the assembled intersection-cardinality matrix (nil before Start).
func (c *Collect) B() *sparse.Dense[int64] { return c.b }

// S returns the assembled similarity matrix (nil before Start).
func (c *Collect) S() *sparse.Dense[float64] { return c.s }

// D returns the assembled distance matrix (nil before Start).
func (c *Collect) D() *sparse.Dense[float64] { return c.d }

// --- Pair reductions ---------------------------------------------------------

// Pair is one upper-triangle sample pair (I < J) retained by a reducing
// sink, with its similarity (the distance is 1 − Similarity).
type Pair struct {
	I, J       int
	Similarity float64
}

// ForEachUpperPair invokes fn for every strict upper-triangle entry
// (i < j, global indices) of the tile with its similarity, in row-major
// order. The engine tiles the full symmetric matrix with disjoint tiles,
// so iterating the strict upper triangle visits every sample pair exactly
// once across a run — the shared iteration of every pair-reducing sink.
func ForEachUpperPair(t *Tile, fn func(i, j int, s float64)) {
	for i := 0; i < t.Rows; i++ {
		gi := t.RowLo + i
		srow := t.S[i*t.Cols : (i+1)*t.Cols]
		for j := 0; j < t.Cols; j++ {
			if gj := t.ColLo + j; gj > gi {
				fn(gi, gj, srow[j])
			}
		}
	}
}

// pairLess is the deterministic total order shared by the reducing sinks
// and their post-hoc equivalents: higher similarity first, ties broken by
// ascending (I, J). A strict total order keeps TopK's retained set
// independent of tile arrival order.
func pairLess(a, b Pair) bool {
	if a.Similarity != b.Similarity {
		return a.Similarity > b.Similarity
	}
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// SortPairs orders pairs by descending similarity, ties by ascending
// (I, J) — the order Pairs() results are returned in and the order a
// post-hoc full-matrix scan must apply to agree with the streaming sinks.
func SortPairs(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool { return pairLess(pairs[i], pairs[j]) })
}

// TopKSink retains the k most similar upper-triangle pairs seen across all
// tiles, in O(k) memory, using a min-heap under the deterministic pair
// order. The diagonal (i == j) and the lower triangle are ignored, so every
// pair is considered exactly once regardless of how the engine tiles the
// symmetric output.
type TopKSink struct {
	k    int
	heap []Pair // min-heap: heap[0] is the weakest retained pair
}

// NewTopK returns a sink retaining the k best pairs; k must be positive.
func NewTopK(k int) *TopKSink {
	if k <= 0 {
		//gas:invariant k is validated positive by the options layer before a sink is built; this guards direct API misuse
		panic(fmt.Sprintf("tile: TopK requires a positive k, got %d", k))
	}
	return &TopKSink{k: k}
}

// Emit folds the tile's upper-triangle pairs into the heap.
func (s *TopKSink) Emit(t *Tile) error {
	ForEachUpperPair(t, func(i, j int, sim float64) {
		s.push(Pair{I: i, J: j, Similarity: sim})
	})
	return nil
}

func (s *TopKSink) push(p Pair) {
	if len(s.heap) == s.k {
		if !pairLess(p, s.heap[0]) {
			return
		}
		s.heap[0] = p
		s.siftDown(0)
		return
	}
	s.heap = append(s.heap, p)
	i := len(s.heap) - 1
	for i > 0 {
		// The weakest retained pair lives at the root, so a new pair bubbles
		// up past every ancestor that is better (pairLess) than it.
		parent := (i - 1) / 2
		if !pairLess(s.heap[parent], s.heap[i]) {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *TopKSink) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		weakest := i
		if l < len(s.heap) && pairLess(s.heap[weakest], s.heap[l]) {
			weakest = l
		}
		if r < len(s.heap) && pairLess(s.heap[weakest], s.heap[r]) {
			weakest = r
		}
		if weakest == i {
			return
		}
		s.heap[i], s.heap[weakest] = s.heap[weakest], s.heap[i]
		i = weakest
	}
}

// Pairs returns the retained pairs sorted by descending similarity (ties by
// ascending (I, J)). The sink remains usable; the returned slice is a copy.
func (s *TopKSink) Pairs() []Pair {
	out := append([]Pair(nil), s.heap...)
	SortPairs(out)
	return out
}

// ThresholdSink retains every upper-triangle pair whose similarity is at
// least Tau. Memory is proportional to the number of qualifying pairs — the
// near-duplicate use case where the interesting output is far smaller than
// the n² matrix.
type ThresholdSink struct {
	tau   float64
	pairs []Pair
}

// NewThreshold returns a sink retaining pairs with similarity ≥ tau.
func NewThreshold(tau float64) *ThresholdSink { return &ThresholdSink{tau: tau} }

// Emit appends the tile's qualifying upper-triangle pairs.
func (s *ThresholdSink) Emit(t *Tile) error {
	ForEachUpperPair(t, func(i, j int, sim float64) {
		if sim >= s.tau {
			s.pairs = append(s.pairs, Pair{I: i, J: j, Similarity: sim})
		}
	})
	return nil
}

// Pairs returns the retained pairs sorted by descending similarity (ties by
// ascending (I, J)). The returned slice is a copy.
func (s *ThresholdSink) Pairs() []Pair {
	out := append([]Pair(nil), s.pairs...)
	SortPairs(out)
	return out
}

// DiscardSink drops every tile. Streaming into it computes the run (and its
// statistics) without materialising any output — the degenerate sink the
// legacy SkipGather option reduces to.
type DiscardSink struct{}

// Emit drops the tile.
func (DiscardSink) Emit(*Tile) error { return nil }

// Discard is the shared DiscardSink instance.
var Discard Sink = DiscardSink{}
