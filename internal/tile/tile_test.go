package tile

import (
	"math/rand"
	"testing"
)

// buildTiles cuts a symmetric n×n S (with D = 1−S and a fake B) into a
// ragged tiling and returns the tiles in shuffled order.
func buildTiles(rng *rand.Rand, n int, s []float64, tileRows, tileCols int) []*Tile {
	var tiles []*Tile
	for rlo := 0; rlo < n; rlo += tileRows {
		rhi := rlo + tileRows
		if rhi > n {
			rhi = n
		}
		for clo := 0; clo < n; clo += tileCols {
			chi := clo + tileCols
			if chi > n {
				chi = n
			}
			t := &Tile{RowLo: rlo, ColLo: clo, Rows: rhi - rlo, Cols: chi - clo}
			for i := rlo; i < rhi; i++ {
				for j := clo; j < chi; j++ {
					v := s[i*n+j]
					t.B = append(t.B, int64(v*100))
					t.S = append(t.S, v)
					t.D = append(t.D, 1-v)
				}
			}
			tiles = append(tiles, t)
		}
	}
	rng.Shuffle(len(tiles), func(i, j int) { tiles[i], tiles[j] = tiles[j], tiles[i] })
	return tiles
}

func randomSymmetric(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n*n)
	for i := 0; i < n; i++ {
		s[i*n+i] = 1
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			s[i*n+j] = v
			s[j*n+i] = v
		}
	}
	return s
}

func TestCollectReassembles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 17
	s := randomSymmetric(rng, n)
	c := NewCollect()
	if err := c.Start(n, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	for _, tl := range buildTiles(rng, n, s, 5, 3) {
		if err := c.Emit(tl); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if c.S().At(i, j) != s[i*n+j] {
				t.Fatalf("S(%d,%d) = %v, want %v", i, j, c.S().At(i, j), s[i*n+j])
			}
			if c.D().At(i, j) != 1-s[i*n+j] {
				t.Fatalf("D(%d,%d) mismatch", i, j)
			}
			if c.B().At(i, j) != int64(s[i*n+j]*100) {
				t.Fatalf("B(%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestCollectRejectsOutOfBounds(t *testing.T) {
	c := NewCollect()
	if err := c.Emit(&Tile{Rows: 1, Cols: 1}); err == nil {
		t.Error("Emit before Start must error")
	}
	if err := c.Start(3, nil); err != nil {
		t.Fatal(err)
	}
	bad := &Tile{RowLo: 2, ColLo: 0, Rows: 2, Cols: 1,
		B: make([]int64, 2), S: make([]float64, 2), D: make([]float64, 2)}
	if err := c.Emit(bad); err == nil {
		t.Error("out-of-bounds tile must error")
	}
}

// postHocTopK is the reference the streaming sink must agree with: scan the
// full matrix, sort under the shared deterministic order, take k.
func postHocTopK(s []float64, n, k int) []Pair {
	var all []Pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			all = append(all, Pair{I: i, J: j, Similarity: s[i*n+j]})
		}
	}
	SortPairs(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestTopKMatchesPostHoc(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 23
	s := randomSymmetric(rng, n)
	for _, k := range []int{1, 5, 40, 1000} {
		sink := NewTopK(k)
		for _, tl := range buildTiles(rng, n, s, 4, 7) {
			if err := sink.Emit(tl); err != nil {
				t.Fatal(err)
			}
		}
		got := sink.Pairs()
		want := postHocTopK(s, n, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d pairs, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d pair %d: got %+v, want %+v", k, i, got[i], want[i])
			}
		}
	}
}

func TestTopKTiesAreDeterministic(t *testing.T) {
	// All similarities equal: the retained set must be the k smallest (i, j).
	n := 8
	s := make([]float64, n*n)
	for i := range s {
		s[i] = 0.5
	}
	rng := rand.New(rand.NewSource(3))
	sink := NewTopK(3)
	for _, tl := range buildTiles(rng, n, s, 3, 3) {
		if err := sink.Emit(tl); err != nil {
			t.Fatal(err)
		}
	}
	got := sink.Pairs()
	want := []Pair{{0, 1, 0.5}, {0, 2, 0.5}, {0, 3, 0.5}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestThresholdMatchesPostHoc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 19
	s := randomSymmetric(rng, n)
	for _, tau := range []float64{0, 0.25, 0.9, 1.1} {
		sink := NewThreshold(tau)
		for _, tl := range buildTiles(rng, n, s, 6, 2) {
			if err := sink.Emit(tl); err != nil {
				t.Fatal(err)
			}
		}
		var want []Pair
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if s[i*n+j] >= tau {
					want = append(want, Pair{I: i, J: j, Similarity: s[i*n+j]})
				}
			}
		}
		SortPairs(want)
		got := sink.Pairs()
		if len(got) != len(want) {
			t.Fatalf("tau=%v: got %d pairs, want %d", tau, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("tau=%v pair %d: got %+v, want %+v", tau, i, got[i], want[i])
			}
		}
	}
}

func TestTopKRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTopK(0) must panic")
		}
	}()
	NewTopK(0)
}

func TestStartFlushOptional(t *testing.T) {
	// Discard implements neither Starter nor Flusher; the helpers must no-op.
	if err := Start(Discard, 4, nil); err != nil {
		t.Fatal(err)
	}
	if err := Flush(Discard); err != nil {
		t.Fatal(err)
	}
	if err := Discard.Emit(&Tile{}); err != nil {
		t.Fatal(err)
	}
}
