// Package bsp provides a Bulk Synchronous Parallel runtime that stands in
// for MPI in this Go reproduction of SimilarityAtScale.
//
// The paper analyses the algorithm in the BSP model (Section III-C): p
// processors, a per-superstep synchronisation cost α, a per-byte bandwidth
// cost β, and a per-operation compute cost γ. This package executes SPMD
// rank programs with true superstep semantics — messages sent during a
// superstep are delivered only after the global synchronisation — and
// records, per superstep, exactly how many bytes each rank injected and
// received (the h-relation). Those measurements feed the cost model in
// internal/costmodel, which converts them into projected wall-clock times
// on a Stampede2-like machine, reproducing the paper's scaling figures.
//
// The superstep exchange itself is pluggable (see Transport): Run and
// RunCtx execute every rank as a goroutine of one process over the
// in-process memory transport — the default, and the implementation the
// equivalence grid pins — while RunRank executes a single rank of a
// multi-process run over any Transport (internal/bsp/tcptransport provides
// the TCP implementation).
//
// Programs are SPMD: every rank runs the same function and must execute the
// same sequence of Sync and collective calls. A rank may finish early; the
// remaining ranks continue to synchronise among themselves.
package bsp

import (
	"context"
	"fmt"
	"sync"
)

// Message is a point-to-point message delivered at the next superstep
// boundary.
type Message struct {
	From, To int
	Tag      int
	// Seq is the per-sender send sequence number, assigned in Send order
	// over the whole run. Together with From it gives every delivered
	// message batch a deterministic order (see RecvAll), identical across
	// transports.
	Seq     int
	Payload any
	Bytes   int
}

// Stats aggregates communication and computation accounting for one Run.
//
// For in-process runs (Run, RunCtx) the statistics are global: every rank
// of the run contributes to the same Stats. For a RunRank over a remote
// transport each process observes only its own rank's traffic, so the
// per-rank slices are filled at the local rank's index only and HRelations
// holds the local rank's per-superstep max(sent, received) — a lower bound
// on the global h-relation.
type Stats struct {
	// Procs is the number of ranks.
	Procs int
	// Supersteps is the number of global synchronisations performed.
	Supersteps int
	// TotalBytes is the total volume of point-to-point traffic injected by
	// the ranks this Stats observed.
	TotalBytes int64
	// TotalMessages counts messages injected by the observed ranks.
	TotalMessages int64
	// HRelations[s] is the h-relation of superstep s: the maximum over
	// observed ranks of bytes sent or received in that superstep. The BSP
	// communication cost of the run is Σ_s (α + β·HRelations[s]).
	HRelations []int64
	// BytesSentPerRank[r] is the total bytes rank r injected.
	BytesSentPerRank []int64
	// BytesRecvPerRank[r] is the total bytes rank r received.
	BytesRecvPerRank []int64
	// FlopsPerRank[r] is the work rank r reported via AddFlops.
	FlopsPerRank []int64
	// MemWordsPerRank[r] is the peak memory (64-bit words) rank r reported
	// via NoteMemory.
	MemWordsPerRank []int64

	// Transport holds the wire-level counters of the run's transport
	// (dials, retries, bytes on the wire, max superstep exchange latency);
	// nil for the in-process memory transport, which has no wire.
	Transport *TransportStats
}

func newStats(p int) *Stats {
	return &Stats{
		Procs:            p,
		BytesSentPerRank: make([]int64, p),
		BytesRecvPerRank: make([]int64, p),
		FlopsPerRank:     make([]int64, p),
		MemWordsPerRank:  make([]int64, p),
	}
}

// MaxFlops returns the largest per-rank reported work (the critical path of
// the computation term F/p·γ in the cost model).
func (s *Stats) MaxFlops() int64 {
	var m int64
	for _, f := range s.FlopsPerRank {
		if f > m {
			m = f
		}
	}
	return m
}

// MaxBytesSent returns the largest per-rank injected volume.
func (s *Stats) MaxBytesSent() int64 {
	var m int64
	for _, b := range s.BytesSentPerRank {
		if b > m {
			m = b
		}
	}
	return m
}

// SumHRelations returns Σ_s HRelations[s], the total bandwidth-critical
// volume of the run.
func (s *Stats) SumHRelations() int64 {
	var t int64
	for _, h := range s.HRelations {
		t += h
	}
	return t
}

// MaxMemWords returns the largest per-rank reported memory footprint.
func (s *Stats) MaxMemWords() int64 {
	var m int64
	for _, w := range s.MemWordsPerRank {
		if w > m {
			m = w
		}
	}
	return m
}

// memHub is the shared state behind one in-process run: the barrier, the
// staged messages of the current superstep, and the abort latch. It is pure
// message routing — statistics are accounted rank-side in Proc, identically
// for every transport.
type memHub struct {
	p int

	mu        sync.Mutex
	cond      *sync.Cond
	arrived   int
	finished  int
	gen       int
	aborted   bool
	abortErr  error
	staged    []Message // messages staged during the current superstep
	nextInbox [][]Message
}

func newMemHub(p int) *memHub {
	h := &memHub{p: p, nextInbox: make([][]Message, p)}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// MemTransport is one rank's endpoint of the in-process memory transport:
// all ranks live in one process and the superstep exchange is a shared
// staging buffer behind a condition-variable barrier. It is the default
// transport of Run and RunCtx; MemCluster hands out wired endpoints for
// code that drives ranks through RunRank or RunCluster (tests, fault
// injection).
type MemTransport struct {
	hub  *memHub
	rank int
}

// MemCluster returns p connected in-process transport endpoints, one per
// rank. Ranks driven over them (RunRank, RunCluster) behave exactly like a
// RunCtx run, except that statistics are per-rank rather than aggregated.
func MemCluster(p int) []Transport {
	hub := newMemHub(p)
	ts := make([]Transport, p)
	for r := 0; r < p; r++ {
		ts[r] = &MemTransport{hub: hub, rank: r}
	}
	return ts
}

// Rank returns this endpoint's rank.
func (t *MemTransport) Rank() int { return t.rank }

// NProcs returns the number of ranks in the run.
func (t *MemTransport) NProcs() int { return t.hub.p }

// Exchange ends one superstep: it stages this rank's outgoing messages,
// blocks until every still-running rank has done the same, and returns the
// messages addressed to this rank sorted by (From, Seq).
func (t *MemTransport) Exchange(step int, outgoing []Message) ([]Message, error) {
	h := t.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.aborted {
		return nil, h.abortErr
	}
	h.staged = append(h.staged, outgoing...)
	gen := h.gen
	h.arrived++
	if h.arrived+h.finished == h.p {
		h.completeSuperstepLocked()
	} else {
		for gen == h.gen && !h.aborted {
			h.cond.Wait()
		}
		// An abort only fails this exchange if the barrier did not
		// complete; when both raced, the superstep finished for everyone
		// and the abort is observed at the next Exchange.
		if gen == h.gen && h.aborted {
			return nil, h.abortErr
		}
	}
	in := h.nextInbox[t.rank]
	h.nextInbox[t.rank] = nil
	SortMessages(in)
	return in, nil
}

// completeSuperstepLocked delivers staged messages and wakes all waiting
// ranks. Caller holds h.mu.
func (h *memHub) completeSuperstepLocked() {
	for _, m := range h.staged {
		h.nextInbox[m.To] = append(h.nextInbox[m.To], m)
	}
	h.staged = h.staged[:0]
	h.arrived = 0
	h.gen++
	h.cond.Broadcast()
}

// Finish marks the rank as done so remaining ranks can still complete
// supersteps among themselves.
func (t *MemTransport) Finish(step int) {
	h := t.hub
	h.mu.Lock()
	h.finished++
	if h.arrived+h.finished == h.p && h.arrived > 0 {
		h.completeSuperstepLocked()
	}
	h.mu.Unlock()
}

// Abort poisons the barrier: every rank blocked in Exchange unwinds with
// err, and subsequent Exchange calls fail immediately.
func (t *MemTransport) Abort(err error) {
	h := t.hub
	h.mu.Lock()
	if !h.aborted {
		h.aborted = true
		h.abortErr = err
	}
	h.cond.Broadcast()
	h.mu.Unlock()
}

// Close is a no-op: the memory transport holds no external resources.
func (t *MemTransport) Close() error { return nil }

// Proc is the handle a rank uses to communicate. It is only valid inside
// the function passed to Run/RunCtx/RunRank and must not be shared across
// ranks.
type Proc struct {
	rank int
	np   int
	t    Transport
	ctx  context.Context

	stats   *Stats
	statsMu *sync.Mutex

	pending []Message // messages queued for the next Sync
	inbox   []Message // messages delivered at previous Syncs
	collSeq int       // per-rank collective sequence number (tags < 0)
	sendSeq int       // per-rank send sequence number (Message.Seq)
	step    int       // supersteps this rank has completed
}

// Rank returns this rank's id in [0, NProcs).
func (p *Proc) Rank() int { return p.rank }

// Ctx returns the context the run was started with (context.Background for
// plain Run). Rank functions poll it between local compute phases; ranks
// blocked at a superstep barrier are unwound by the runtime itself when the
// context is cancelled.
func (p *Proc) Ctx() context.Context { return p.ctx }

// NProcs returns the number of ranks in the run.
func (p *Proc) NProcs() int { return p.np }

// Step returns the number of supersteps this rank has completed.
func (p *Proc) Step() int { return p.step }

// abortError unwinds a rank when another rank failed or the transport
// poisoned the barrier.
type abortError struct{ err error }

func (a abortError) Error() string { return fmt.Sprintf("bsp: aborted: %v", a.err) }
func (a abortError) Unwrap() error { return a.err }

// Send queues a message for delivery to rank `to` after the next Sync. The
// byte size used for accounting is computed by PayloadBytes; user tags must
// be non-negative (negative tags are reserved for collectives).
func (p *Proc) Send(to, tag int, payload any) {
	if tag < 0 {
		//gas:invariant user tags are package-level constants in every caller; negative tags are reserved and this guards collective-protocol integrity
		panic("bsp: negative tags are reserved for collectives")
	}
	p.send(to, tag, payload)
}

func (p *Proc) send(to, tag int, payload any) {
	if to < 0 || to >= p.np {
		//gas:invariant destination ranks come from grid peers of this same world and are in [0, NProcs) by construction
		panic(fmt.Sprintf("bsp: destination rank %d out of range [0,%d)", to, p.np))
	}
	p.sendSeq++
	p.pending = append(p.pending, Message{
		From: p.rank, To: to, Tag: tag, Seq: p.sendSeq,
		Payload: payload, Bytes: PayloadBytes(payload),
	})
}

// AddFlops reports local computational work (arithmetic operations) for the
// cost model's γ term.
func (p *Proc) AddFlops(n int64) {
	if n <= 0 {
		return
	}
	p.statsMu.Lock()
	p.stats.FlopsPerRank[p.rank] += n
	p.statsMu.Unlock()
}

// NoteMemory reports a memory footprint (in 64-bit words); the per-rank
// maximum is retained. The batch planner uses this to check the M ≥ cn²/p
// requirement of the replication scheme.
func (p *Proc) NoteMemory(words int64) {
	p.statsMu.Lock()
	if words > p.stats.MemWordsPerRank[p.rank] {
		p.stats.MemWordsPerRank[p.rank] = words
	}
	p.statsMu.Unlock()
}

// Sync ends the current superstep: it hands this rank's outgoing messages
// to the transport, blocks until every still-running rank reaches Sync (the
// barrier), and makes the delivered messages available through RecvAll. A
// transport failure — a peer rank died, timed out or aborted — unwinds the
// rank; the run entry point returns the failure (for remote transports
// typically a *RankFailedError naming the failed rank).
func (p *Proc) Sync() {
	out := p.pending
	var sent int64
	for i := range out {
		sent += int64(out[i].Bytes)
	}
	nmsgs := int64(len(out))
	in, err := p.t.Exchange(p.step, out)
	p.pending = out[:0]
	if err != nil {
		//gas:invariant deliberate abort mechanism: a transport failure raises a typed abortError that the runner recovers and converts into a run error
		panic(abortError{err})
	}
	step := p.step
	p.step++
	var recv int64
	for i := range in {
		recv += int64(in[i].Bytes)
	}
	p.accountStep(step, sent, recv, nmsgs)
	p.inbox = append(p.inbox, in...)
}

// accountStep folds one completed superstep into the run statistics. The
// same rank-side accounting runs on every transport; in-process runs share
// one Stats across ranks (so HRelations is the global max), remote ranks
// keep a local view.
func (p *Proc) accountStep(step int, sent, recv, nmsgs int64) {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	s := p.stats
	for len(s.HRelations) <= step {
		s.HRelations = append(s.HRelations, 0)
	}
	h := sent
	if recv > h {
		h = recv
	}
	if h > s.HRelations[step] {
		s.HRelations[step] = h
	}
	if step+1 > s.Supersteps {
		s.Supersteps = step + 1
	}
	s.BytesSentPerRank[p.rank] += sent
	s.BytesRecvPerRank[p.rank] += recv
	s.TotalBytes += sent
	s.TotalMessages += nmsgs
}

// RecvAll removes and returns all delivered messages carrying the given
// tag. Message order within a tag is deterministic across transports:
// messages are delivered sorted by (From, Seq) — sender rank first, then
// the sender's send order — so protocols that fold over a RecvAll batch
// produce byte-identical results over the in-process and TCP transports.
func (p *Proc) RecvAll(tag int) []Message {
	var out, keep []Message
	for _, m := range p.inbox {
		if m.Tag == tag {
			out = append(out, m)
		} else {
			keep = append(keep, m)
		}
	}
	p.inbox = keep
	return out
}

// PendingMessages returns the number of delivered-but-unclaimed messages;
// useful for tests asserting that protocols drain their traffic.
func (p *Proc) PendingMessages() int { return len(p.inbox) }

// nextCollectiveTag returns the reserved tag for the next collective call.
// SPMD programs call collectives in the same order on every rank, so the
// per-rank sequence numbers agree.
func (p *Proc) nextCollectiveTag() int {
	p.collSeq++
	return -p.collSeq
}

// Run executes fn on p ranks (goroutines of this process) and returns the
// aggregated statistics. If any rank returns an error or panics, the run is
// aborted and the first error is returned alongside the (partial)
// statistics.
func Run(p int, fn func(*Proc) error) (*Stats, error) {
	return RunCtx(context.Background(), p, fn)
}

// RunCtx is Run with cancellation: when ctx is cancelled the runtime aborts
// the run — every rank blocked at a superstep barrier is woken immediately
// and unwound, ranks in local compute phases observe the abort at their
// next Sync (or sooner, via Proc.Ctx polling in the rank function) — all
// rank goroutines are joined, and RunCtx returns ctx.Err() alongside the
// partial statistics. No goroutines outlive the call.
func RunCtx(ctx context.Context, p int, fn func(*Proc) error) (*Stats, error) {
	if p <= 0 {
		return nil, fmt.Errorf("bsp: number of ranks must be positive, got %d", p)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	hub := newMemHub(p)
	stats := newStats(p)
	var statsMu sync.Mutex

	// The watcher turns context cancellation into a transport abort, waking
	// every rank parked at a barrier; it exits as soon as the ranks join.
	watcherDone := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				(&MemTransport{hub: hub}).Abort(ctx.Err())
			case <-watcherDone:
			}
		}()
	}

	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr := &MemTransport{hub: hub, rank: rank}
			proc := &Proc{rank: rank, np: p, t: tr, ctx: ctx, stats: stats, statsMu: &statsMu}
			errs[rank] = runOne(tr, proc, fn)
		}(r)
	}
	wg.Wait()
	close(watcherDone)
	// A primary rank error (anything a rank function returned or panicked
	// itself, as opposed to the secondary abortError unwinding it triggered
	// on its peers) always wins: it is the root cause, even when the
	// context was also cancelled while the run unwound.
	failed := false
	for _, err := range errs {
		if err != nil {
			failed = true
			if _, isAbort := err.(abortError); !isAbort {
				return stats, err
			}
		}
	}
	if err := ctx.Err(); err != nil && failed {
		// Only secondary abort errors remain: the cancellation itself tore
		// the run down, so callers observe ctx.Err(). A cancellation that
		// landed after every rank already completed did not abort any work
		// and the finished run is returned as a success.
		return stats, err
	}
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// PayloadBytes estimates the wire size of a payload for accounting. Common
// slice types are sized exactly; other values fall back to a single word.
// Types can override the estimate by implementing ByteSizer.
func PayloadBytes(v any) int {
	switch x := v.(type) {
	case nil:
		return 0
	case ByteSizer:
		return x.ByteSize()
	case []byte:
		return len(x)
	case []uint64:
		return 8 * len(x)
	case []int64:
		return 8 * len(x)
	case []int:
		return 8 * len(x)
	case []float64:
		return 8 * len(x)
	case []int32:
		return 4 * len(x)
	case []uint32:
		return 4 * len(x)
	case []bool:
		return len(x)
	case string:
		return len(x)
	case bool, int8, uint8:
		return 1
	case int32, uint32, float32:
		return 4
	default:
		return 8
	}
}

// ByteSizer lets payload types report their exact wire size.
type ByteSizer interface {
	ByteSize() int
}
