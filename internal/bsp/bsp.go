// Package bsp provides an in-process Bulk Synchronous Parallel runtime that
// stands in for MPI in this Go reproduction of SimilarityAtScale.
//
// The paper analyses the algorithm in the BSP model (Section III-C): p
// processors, a per-superstep synchronisation cost α, a per-byte bandwidth
// cost β, and a per-operation compute cost γ. This package executes one
// goroutine per virtual rank with true superstep semantics — messages sent
// during a superstep are delivered only after the global synchronisation —
// and records, per superstep, exactly how many bytes each rank injected and
// received (the h-relation). Those measurements feed the cost model in
// internal/costmodel, which converts them into projected wall-clock times
// on a Stampede2-like machine, reproducing the paper's scaling figures.
//
// Programs are SPMD: every rank runs the same function and must execute the
// same sequence of Sync and collective calls. A rank may finish early; the
// remaining ranks continue to synchronise among themselves.
package bsp

import (
	"context"
	"fmt"
	"sync"
)

// Message is a point-to-point message delivered at the next superstep
// boundary.
type Message struct {
	From, To int
	Tag      int
	Payload  any
	Bytes    int
}

// Stats aggregates communication and computation accounting for one Run.
type Stats struct {
	// Procs is the number of virtual ranks.
	Procs int
	// Supersteps is the number of global synchronisations performed.
	Supersteps int
	// TotalBytes is the total volume of point-to-point traffic.
	TotalBytes int64
	// TotalMessages counts delivered messages.
	TotalMessages int64
	// HRelations[s] is the h-relation of superstep s: the maximum over ranks
	// of bytes sent or received in that superstep. The BSP communication
	// cost of the run is Σ_s (α + β·HRelations[s]).
	HRelations []int64
	// BytesSentPerRank[r] is the total bytes rank r injected.
	BytesSentPerRank []int64
	// BytesRecvPerRank[r] is the total bytes rank r received.
	BytesRecvPerRank []int64
	// FlopsPerRank[r] is the work rank r reported via AddFlops.
	FlopsPerRank []int64
	// MemWordsPerRank[r] is the peak memory (64-bit words) rank r reported
	// via NoteMemory.
	MemWordsPerRank []int64
}

// MaxFlops returns the largest per-rank reported work (the critical path of
// the computation term F/p·γ in the cost model).
func (s *Stats) MaxFlops() int64 {
	var m int64
	for _, f := range s.FlopsPerRank {
		if f > m {
			m = f
		}
	}
	return m
}

// MaxBytesSent returns the largest per-rank injected volume.
func (s *Stats) MaxBytesSent() int64 {
	var m int64
	for _, b := range s.BytesSentPerRank {
		if b > m {
			m = b
		}
	}
	return m
}

// SumHRelations returns Σ_s HRelations[s], the total bandwidth-critical
// volume of the run.
func (s *Stats) SumHRelations() int64 {
	var t int64
	for _, h := range s.HRelations {
		t += h
	}
	return t
}

// MaxMemWords returns the largest per-rank reported memory footprint.
func (s *Stats) MaxMemWords() int64 {
	var m int64
	for _, w := range s.MemWordsPerRank {
		if w > m {
			m = w
		}
	}
	return m
}

// runtime is the shared state behind one Run call.
type runtime struct {
	p int

	mu        sync.Mutex
	cond      *sync.Cond
	arrived   int
	finished  int
	gen       int
	aborted   bool
	abortErr  error
	staged    []Message // messages staged during the current superstep
	nextInbox [][]Message

	// per-superstep accounting (reset each superstep)
	sentThisStep []int64
	recvThisStep []int64

	stats Stats
}

// Proc is the handle a rank uses to communicate. It is only valid inside
// the function passed to Run and must not be shared across ranks.
type Proc struct {
	rank int
	rt   *runtime
	ctx  context.Context

	pending []Message // messages queued for the next Sync
	inbox   []Message // messages delivered at the previous Sync
	collSeq int       // per-rank collective sequence number (tags < 0)
}

// Rank returns this rank's id in [0, NProcs).
func (p *Proc) Rank() int { return p.rank }

// Ctx returns the context the run was started with (context.Background for
// plain Run). Rank functions poll it between local compute phases; ranks
// blocked at a superstep barrier are unwound by the runtime itself when the
// context is cancelled.
func (p *Proc) Ctx() context.Context { return p.ctx }

// NProcs returns the number of virtual ranks in the run.
func (p *Proc) NProcs() int { return p.rt.p }

// abortError unwinds a rank when another rank failed.
type abortError struct{ err error }

func (a abortError) Error() string { return fmt.Sprintf("bsp: aborted: %v", a.err) }

// Send queues a message for delivery to rank `to` after the next Sync. The
// byte size used for accounting is computed by PayloadBytes; user tags must
// be non-negative (negative tags are reserved for collectives).
func (p *Proc) Send(to, tag int, payload any) {
	if tag < 0 {
		panic("bsp: negative tags are reserved for collectives")
	}
	p.send(to, tag, payload)
}

func (p *Proc) send(to, tag int, payload any) {
	if to < 0 || to >= p.rt.p {
		panic(fmt.Sprintf("bsp: destination rank %d out of range [0,%d)", to, p.rt.p))
	}
	p.pending = append(p.pending, Message{
		From: p.rank, To: to, Tag: tag, Payload: payload, Bytes: PayloadBytes(payload),
	})
}

// AddFlops reports local computational work (arithmetic operations) for the
// cost model's γ term.
func (p *Proc) AddFlops(n int64) {
	if n <= 0 {
		return
	}
	p.rt.mu.Lock()
	p.rt.stats.FlopsPerRank[p.rank] += n
	p.rt.mu.Unlock()
}

// NoteMemory reports a memory footprint (in 64-bit words); the per-rank
// maximum is retained. The batch planner uses this to check the M ≥ cn²/p
// requirement of the replication scheme.
func (p *Proc) NoteMemory(words int64) {
	p.rt.mu.Lock()
	if words > p.rt.stats.MemWordsPerRank[p.rank] {
		p.rt.stats.MemWordsPerRank[p.rank] = words
	}
	p.rt.mu.Unlock()
}

// Sync ends the current superstep: it blocks until every still-running rank
// reaches Sync, delivers all messages sent during the superstep, and makes
// them available through Recv/RecvAll.
func (p *Proc) Sync() {
	rt := p.rt
	rt.mu.Lock()
	if rt.aborted {
		rt.mu.Unlock()
		panic(abortError{rt.abortErr})
	}
	// Stage this rank's outgoing messages.
	for _, m := range p.pending {
		rt.staged = append(rt.staged, m)
		rt.sentThisStep[m.From] += int64(m.Bytes)
		rt.recvThisStep[m.To] += int64(m.Bytes)
	}
	p.pending = p.pending[:0]
	gen := rt.gen
	rt.arrived++
	if rt.arrived+rt.finished == rt.p {
		rt.completeSuperstepLocked()
	} else {
		for gen == rt.gen && !rt.aborted {
			rt.cond.Wait()
		}
		if rt.aborted {
			rt.mu.Unlock()
			panic(abortError{rt.abortErr})
		}
	}
	inbox := rt.nextInbox[p.rank]
	rt.nextInbox[p.rank] = nil
	rt.mu.Unlock()
	p.inbox = append(p.inbox, inbox...)
}

// completeSuperstepLocked delivers staged messages and wakes all waiting
// ranks. Caller holds rt.mu.
func (rt *runtime) completeSuperstepLocked() {
	var h int64
	for r := 0; r < rt.p; r++ {
		if rt.sentThisStep[r] > h {
			h = rt.sentThisStep[r]
		}
		if rt.recvThisStep[r] > h {
			h = rt.recvThisStep[r]
		}
		rt.stats.BytesSentPerRank[r] += rt.sentThisStep[r]
		rt.stats.BytesRecvPerRank[r] += rt.recvThisStep[r]
		rt.sentThisStep[r] = 0
		rt.recvThisStep[r] = 0
	}
	rt.stats.HRelations = append(rt.stats.HRelations, h)
	rt.stats.Supersteps++
	for _, m := range rt.staged {
		rt.stats.TotalBytes += int64(m.Bytes)
		rt.stats.TotalMessages++
		rt.nextInbox[m.To] = append(rt.nextInbox[m.To], m)
	}
	rt.staged = rt.staged[:0]
	rt.arrived = 0
	rt.gen++
	rt.cond.Broadcast()
}

// finish marks a rank as done so remaining ranks can still complete
// supersteps among themselves.
func (rt *runtime) finish() {
	rt.mu.Lock()
	rt.finished++
	if rt.arrived+rt.finished == rt.p && rt.arrived > 0 {
		rt.completeSuperstepLocked()
	}
	rt.mu.Unlock()
}

// abort wakes every rank with an error.
func (rt *runtime) abort(err error) {
	rt.mu.Lock()
	if !rt.aborted {
		rt.aborted = true
		rt.abortErr = err
	}
	rt.cond.Broadcast()
	rt.mu.Unlock()
}

// RecvAll removes and returns all delivered messages carrying the given
// tag, in arbitrary sender order.
func (p *Proc) RecvAll(tag int) []Message {
	var out, keep []Message
	for _, m := range p.inbox {
		if m.Tag == tag {
			out = append(out, m)
		} else {
			keep = append(keep, m)
		}
	}
	p.inbox = keep
	return out
}

// PendingMessages returns the number of delivered-but-unclaimed messages;
// useful for tests asserting that protocols drain their traffic.
func (p *Proc) PendingMessages() int { return len(p.inbox) }

// nextCollectiveTag returns the reserved tag for the next collective call.
// SPMD programs call collectives in the same order on every rank, so the
// per-rank sequence numbers agree.
func (p *Proc) nextCollectiveTag() int {
	p.collSeq++
	return -p.collSeq
}

// Run executes fn on p virtual ranks and returns the aggregated statistics.
// If any rank returns an error or panics, the run is aborted and the first
// error is returned alongside the (partial) statistics.
func Run(p int, fn func(*Proc) error) (*Stats, error) {
	return RunCtx(context.Background(), p, fn)
}

// RunCtx is Run with cancellation: when ctx is cancelled the runtime aborts
// the run — every rank blocked at a superstep barrier is woken immediately
// and unwound, ranks in local compute phases observe the abort at their
// next Sync (or sooner, via Proc.Ctx polling in the rank function) — all
// rank goroutines are joined, and RunCtx returns ctx.Err() alongside the
// partial statistics. No goroutines outlive the call.
func RunCtx(ctx context.Context, p int, fn func(*Proc) error) (*Stats, error) {
	if p <= 0 {
		return nil, fmt.Errorf("bsp: number of ranks must be positive, got %d", p)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rt := &runtime{
		p:            p,
		nextInbox:    make([][]Message, p),
		sentThisStep: make([]int64, p),
		recvThisStep: make([]int64, p),
	}
	rt.cond = sync.NewCond(&rt.mu)
	rt.stats = Stats{
		Procs:            p,
		BytesSentPerRank: make([]int64, p),
		BytesRecvPerRank: make([]int64, p),
		FlopsPerRank:     make([]int64, p),
		MemWordsPerRank:  make([]int64, p),
	}

	// The watcher turns context cancellation into a runtime abort, waking
	// every rank parked at a barrier; it exits as soon as the ranks join.
	watcherDone := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				rt.abort(ctx.Err())
			case <-watcherDone:
			}
		}()
	}

	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			proc := &Proc{rank: rank, rt: rt, ctx: ctx}
			defer rt.finish()
			defer func() {
				if rec := recover(); rec != nil {
					if ab, ok := rec.(abortError); ok {
						errs[rank] = ab
						return
					}
					err := fmt.Errorf("bsp: rank %d panicked: %v", rank, rec)
					errs[rank] = err
					rt.abort(err)
				}
			}()
			if err := fn(proc); err != nil {
				errs[rank] = err
				rt.abort(fmt.Errorf("bsp: rank %d failed: %w", rank, err))
			}
		}(r)
	}
	wg.Wait()
	close(watcherDone)
	// A primary rank error (anything a rank function returned or panicked
	// itself, as opposed to the secondary abortError unwinding it triggered
	// on its peers) always wins: it is the root cause, even when the
	// context was also cancelled while the run unwound.
	failed := false
	for _, err := range errs {
		if err != nil {
			failed = true
			if _, isAbort := err.(abortError); !isAbort {
				return &rt.stats, err
			}
		}
	}
	if err := ctx.Err(); err != nil && failed {
		// Only secondary abort errors remain: the cancellation itself tore
		// the run down, so callers observe ctx.Err(). A cancellation that
		// landed after every rank already completed did not abort any work
		// and the finished run is returned as a success.
		return &rt.stats, err
	}
	for _, err := range errs {
		if err != nil {
			return &rt.stats, err
		}
	}
	return &rt.stats, nil
}

// PayloadBytes estimates the wire size of a payload for accounting. Common
// slice types are sized exactly; other values fall back to a single word.
// Types can override the estimate by implementing ByteSizer.
func PayloadBytes(v any) int {
	switch x := v.(type) {
	case nil:
		return 0
	case ByteSizer:
		return x.ByteSize()
	case []byte:
		return len(x)
	case []uint64:
		return 8 * len(x)
	case []int64:
		return 8 * len(x)
	case []int:
		return 8 * len(x)
	case []float64:
		return 8 * len(x)
	case []int32:
		return 4 * len(x)
	case []uint32:
		return 4 * len(x)
	case []bool:
		return len(x)
	case string:
		return len(x)
	case bool, int8, uint8:
		return 1
	case int32, uint32, float32:
		return 4
	default:
		return 8
	}
}

// ByteSizer lets payload types report their exact wire size.
type ByteSizer interface {
	ByteSize() int
}
