package bsp

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestBarrierCountsSupersteps(t *testing.T) {
	stats, err := Run(5, func(p *Proc) error {
		for i := 0; i < 3; i++ {
			Barrier(p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 3 {
		t.Errorf("Supersteps = %d, want 3", stats.Supersteps)
	}
	if stats.TotalBytes != 0 {
		t.Errorf("Barrier should not move data, moved %d bytes", stats.TotalBytes)
	}
}

func TestBcast(t *testing.T) {
	const procs = 6
	_, err := Run(procs, func(p *Proc) error {
		var val []int64
		if p.Rank() == 2 {
			val = []int64{10, 20, 30}
		}
		got := Bcast(p, 2, val)
		if len(got) != 3 || got[0] != 10 || got[2] != 30 {
			return fmt.Errorf("rank %d: Bcast got %v", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	const procs = 5
	_, err := Run(procs, func(p *Proc) error {
		got := Gather(p, 0, int64(p.Rank()*p.Rank()))
		if p.Rank() != 0 {
			if got != nil {
				return fmt.Errorf("non-root rank %d received %v", p.Rank(), got)
			}
			return nil
		}
		for r := 0; r < procs; r++ {
			if got[r] != int64(r*r) {
				return fmt.Errorf("Gather[%d] = %d, want %d", r, got[r], r*r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	const procs = 4
	_, err := Run(procs, func(p *Proc) error {
		got := AllGather(p, int64(p.Rank()+1))
		for r := 0; r < procs; r++ {
			if got[r] != int64(r+1) {
				return fmt.Errorf("rank %d: AllGather[%d] = %d", p.Rank(), r, got[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAndAllReduce(t *testing.T) {
	const procs = 7
	_, err := Run(procs, func(p *Proc) error {
		x := int64(p.Rank() + 1)
		sum, ok := Reduce(p, 3, x, func(a, b int64) int64 { return a + b })
		if p.Rank() == 3 {
			if !ok || sum != procs*(procs+1)/2 {
				return fmt.Errorf("Reduce = %d,%v", sum, ok)
			}
		} else if ok {
			return fmt.Errorf("rank %d: ok should be false off-root", p.Rank())
		}
		all := AllReduce(p, x, func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
		if all != procs {
			return fmt.Errorf("AllReduce max = %d, want %d", all, procs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSlice(t *testing.T) {
	const procs = 4
	_, err := Run(procs, func(p *Proc) error {
		xs := []int64{int64(p.Rank()), 1, int64(2 * p.Rank())}
		got := AllReduceSlice(p, xs, func(a, b int64) int64 { return a + b })
		want := []int64{0 + 1 + 2 + 3, procs, 2 * (0 + 1 + 2 + 3)}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("rank %d: AllReduceSlice[%d] = %d, want %d", p.Rank(), i, got[i], want[i])
			}
		}
		// Input must not be mutated.
		if xs[0] != int64(p.Rank()) {
			return fmt.Errorf("rank %d: input slice mutated", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSlice(t *testing.T) {
	const procs = 3
	_, err := Run(procs, func(p *Proc) error {
		xs := []int64{1, int64(p.Rank())}
		got, ok := ReduceSlice(p, 0, xs, func(a, b int64) int64 { return a + b })
		if p.Rank() == 0 {
			if !ok || got[0] != procs || got[1] != 3 {
				return fmt.Errorf("ReduceSlice = %v,%v", got, ok)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExScanMatchesSequentialPrefix(t *testing.T) {
	const procs = 8
	_, err := Run(procs, func(p *Proc) error {
		x := int64(p.Rank() * 10)
		got := ExScan(p, x, func(a, b int64) int64 { return a + b }, 0)
		var want int64
		for r := 0; r < p.Rank(); r++ {
			want += int64(r * 10)
		}
		if got != want {
			return fmt.Errorf("rank %d: ExScan = %d, want %d", p.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAll(t *testing.T) {
	const procs = 5
	_, err := Run(procs, func(p *Proc) error {
		out := make([][]int64, procs)
		for r := 0; r < procs; r++ {
			out[r] = []int64{int64(p.Rank()*100 + r)}
		}
		in := AllToAll(p, out)
		for r := 0; r < procs; r++ {
			want := int64(r*100 + p.Rank())
			if len(in[r]) != 1 || in[r][0] != want {
				return fmt.Errorf("rank %d: in[%d] = %v, want [%d]", p.Rank(), r, in[r], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllLengthPanics(t *testing.T) {
	_, err := Run(3, func(p *Proc) error {
		AllToAll(p, [][]int64{{1}})
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestGatherVariableAndAllGatherVariable(t *testing.T) {
	const procs = 4
	_, err := Run(procs, func(p *Proc) error {
		xs := make([]int64, p.Rank()) // rank r contributes r elements, each = r
		for i := range xs {
			xs[i] = int64(p.Rank())
		}
		all := AllGatherVariable(p, xs)
		if len(all) != 0+1+2+3 {
			return fmt.Errorf("rank %d: AllGatherVariable len = %d", p.Rank(), len(all))
		}
		rooted := GatherVariable(p, 1, xs)
		if p.Rank() == 1 && len(rooted) != 6 {
			return fmt.Errorf("GatherVariable len = %d, want 6", len(rooted))
		}
		if p.Rank() != 1 && rooted != nil {
			return fmt.Errorf("rank %d: non-root received data", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortedAllGatherKeys(t *testing.T) {
	_, err := Run(3, func(p *Proc) error {
		keys := []int{p.Rank() * 2, p.Rank()*2 + 1}
		all := SortedAllGatherKeys(p, keys)
		for i := 0; i < 6; i++ {
			if all[i] != i {
				return fmt.Errorf("rank %d: sorted keys %v", p.Rank(), all)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: AllReduce with addition equals the sequential sum for any rank
// count in [1,9] and any per-rank values.
func TestAllReduceMatchesSequentialProperty(t *testing.T) {
	f := func(vals []int32, pRaw uint8) bool {
		procs := int(pRaw%9) + 1
		perRank := make([]int64, procs)
		for i, v := range vals {
			perRank[i%procs] += int64(v)
		}
		var want int64
		for _, v := range perRank {
			want += v
		}
		ok := true
		_, err := Run(procs, func(p *Proc) error {
			got := AllReduce(p, perRank[p.Rank()], func(a, b int64) int64 { return a + b })
			if got != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Collectives must not leave undrained messages behind, otherwise later
// collectives could consume stale traffic.
func TestCollectivesDrainInbox(t *testing.T) {
	_, err := Run(4, func(p *Proc) error {
		Bcast(p, 0, []int64{1, 2})
		AllGather(p, int64(p.Rank()))
		AllReduce(p, int64(1), func(a, b int64) int64 { return a + b })
		AllToAll(p, [][]int64{{1}, {2}, {3}, {4}})
		ExScan(p, int64(p.Rank()), func(a, b int64) int64 { return a + b }, 0)
		if p.PendingMessages() != 0 {
			return fmt.Errorf("rank %d: %d stale messages", p.Rank(), p.PendingMessages())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
