package bsp

import (
	"context"
	"errors"
	"testing"
)

// TestRecvAllDeterministicOrder pins the RecvAll ordering contract:
// messages within a tag arrive sorted by (From, Seq) — sender rank first,
// then the sender's send order — regardless of the order ranks happened to
// stage them in.
func TestRecvAllDeterministicOrder(t *testing.T) {
	const p = 4
	const tag = 7
	for trial := 0; trial < 20; trial++ {
		_, err := Run(p, func(proc *Proc) error {
			if proc.Rank() != 0 {
				// Each sender emits three messages to rank 0; their Seq
				// order must be preserved at delivery.
				for i := 0; i < 3; i++ {
					proc.Send(0, tag, []int{proc.Rank(), i})
				}
			}
			proc.Sync()
			if proc.Rank() == 0 {
				msgs := proc.RecvAll(tag)
				if len(msgs) != 3*(p-1) {
					t.Errorf("trial %d: got %d messages, want %d", trial, len(msgs), 3*(p-1))
				}
				for i, m := range msgs {
					wantFrom := 1 + i/3
					wantIdx := i % 3
					got := m.Payload.([]int)
					if m.From != wantFrom || got[0] != wantFrom || got[1] != wantIdx {
						t.Errorf("trial %d: message %d = from %d payload %v, want from %d idx %d",
							trial, i, m.From, got, wantFrom, wantIdx)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunClusterMatchesRun checks that driving MemCluster endpoints through
// RunCluster behaves like a plain Run: same delivery, per-rank stats.
func TestRunClusterMatchesRun(t *testing.T) {
	const p = 3
	fn := func(proc *Proc) error {
		next := (proc.Rank() + 1) % proc.NProcs()
		proc.Send(next, 1, []uint64{uint64(proc.Rank())})
		proc.Sync()
		msgs := proc.RecvAll(1)
		if len(msgs) != 1 {
			return errors.New("expected exactly one message")
		}
		want := (proc.Rank() + proc.NProcs() - 1) % proc.NProcs()
		if got := msgs[0].Payload.([]uint64)[0]; got != uint64(want) {
			return errors.New("wrong neighbour payload")
		}
		return nil
	}
	stats, errs := RunCluster(context.Background(), MemCluster(p), fn)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, s := range stats {
		if s.Supersteps != 1 {
			t.Errorf("rank %d: Supersteps = %d, want 1", r, s.Supersteps)
		}
		if s.BytesSentPerRank[r] != 8 {
			t.Errorf("rank %d: sent %d bytes, want 8", r, s.BytesSentPerRank[r])
		}
	}
}

// TestRunClusterRankErrorPoisonsPeers: a rank function returning an error
// must unwind every other rank via the abort path, and the failing rank
// must report its own error.
func TestRunClusterRankErrorPoisonsPeers(t *testing.T) {
	sentinel := errors.New("rank 1 exploded")
	_, errs := RunCluster(context.Background(), MemCluster(3), func(proc *Proc) error {
		if proc.Rank() == 1 {
			return sentinel
		}
		proc.Sync() // never completes: rank 1 aborted
		proc.Sync()
		return nil
	})
	if !errors.Is(errs[1], sentinel) {
		t.Fatalf("rank 1 error = %v, want sentinel", errs[1])
	}
	for _, r := range []int{0, 2} {
		if errs[r] == nil || !errors.Is(errs[r], sentinel) {
			t.Errorf("rank %d error = %v, want wrapped sentinel", r, errs[r])
		}
	}
}

// TestRunRankCancel: cancelling the context of a RunRank unwinds the rank
// from its barrier and returns ctx.Err().
func TestRunRankCancel(t *testing.T) {
	ts := MemCluster(2)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunRank(ctx, ts[0], func(proc *Proc) error {
			proc.Sync() // blocks: rank 1 never arrives
			return nil
		})
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
