package bsp

import (
	"reflect"
	"testing"
)

func TestPlainCodecRoundTrips(t *testing.T) {
	c := PlainCodec{}
	cases := []any{
		nil,
		[]byte{1, 2, 3},
		"superstep",
		true,
		false,
		42,
		-7,
		int64(-1 << 40),
		uint64(1) << 63,
		3.25,
		[]int{1, -2, 3},
		[]int64{-9, 9},
		[]uint64{0, ^uint64(0)},
		[]float64{0.5, -0.25},
		[]int32{-1, 2},
		[]uint32{7, 8},
		[]bool{true, false, true},
	}
	for _, v := range cases {
		data, err := c.Encode(v)
		if err != nil {
			t.Fatalf("encode %T %v: %v", v, v, err)
		}
		got, err := c.Decode(data)
		if err != nil {
			t.Fatalf("decode %T %v: %v", v, v, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round-trip %T: got %#v, want %#v", v, got, v)
		}
	}
}

func TestPlainCodecRejectsUnknownTypes(t *testing.T) {
	c := PlainCodec{}
	if _, err := c.Encode(struct{ X int }{1}); err == nil {
		t.Fatal("struct encoded without error")
	}
	if _, err := c.Decode(nil); err == nil {
		t.Fatal("empty payload decoded without error")
	}
	if _, err := c.Decode([]byte{0xff}); err == nil {
		t.Fatal("unknown kind decoded without error")
	}
	if _, err := c.Decode([]byte{plainKindInt, 1, 2}); err == nil {
		t.Fatal("truncated scalar decoded without error")
	}
}
