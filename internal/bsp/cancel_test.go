package bsp

import (
	"context"
	"errors"
	gort "runtime"
	"testing"
	"time"
)

// TestRunCtxCancelUnblocksBarrier parks all but one rank at a Sync barrier
// while the last rank waits for cancellation; the cancel must wake the
// parked ranks, join every goroutine and surface ctx.Err().
func TestRunCtxCancelUnblocksBarrier(t *testing.T) {
	before := gort.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := RunCtx(ctx, 4, func(p *Proc) error {
		if p.Rank() == 3 {
			// Stand-in for a long local compute phase: this rank never
			// reaches the barrier the other three are parked at.
			<-p.Ctx().Done()
			return p.Ctx().Err()
		}
		p.Sync() // parks: rank 3 never arrives
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	waitForGoroutines(t, before)
}

// TestRunCtxCancelBetweenSupersteps cancels while ranks are in a local
// compute phase; the abort is observed at the next Sync.
func TestRunCtxCancelBetweenSupersteps(t *testing.T) {
	before := gort.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	_, err := RunCtx(ctx, 3, func(p *Proc) error {
		p.Sync()
		if p.Rank() == 0 {
			cancel()
		}
		for {
			if p.Ctx().Err() != nil {
				return p.Ctx().Err()
			}
			p.Sync()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitForGoroutines(t, before)
}

func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	stats, err := RunCtx(context.Background(), 4, func(p *Proc) error {
		v := Bcast(p, 0, p.Rank()*0+42)
		if v != 42 {
			t.Errorf("rank %d: got %d", p.Rank(), v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps == 0 {
		t.Error("no supersteps recorded")
	}
}

// waitForGoroutines polls until the goroutine count returns to (near) its
// pre-run level, failing the test if worker goroutines leaked.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if gort.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, gort.NumGoroutine())
		}
		gort.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}
