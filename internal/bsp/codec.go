package bsp

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codec converts message payloads to and from bytes at a remote transport's
// boundary. The Proc API keeps `Payload any` — ranks exchange typed values
// exactly as they do in process — and a remote transport runs every payload
// through its Codec when it crosses the wire.
//
// Encodings must be self-describing and deterministic: Decode(Encode(v))
// returns a value that compares equal to v, and equal values always encode
// to identical bytes (no map iteration, no reflection-driven field order).
// That determinism is what makes TCP runs byte-identical to in-process
// runs.
type Codec interface {
	Encode(v any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// Kind bytes of PlainCodec's encoding. The first encoded byte identifies
// the payload type; kinds >= 0x40 are reserved for application codecs
// (internal/dist wraps PlainCodec and adds its SUMMA wire types there).
const (
	plainKindNil = iota
	plainKindBytes
	plainKindString
	plainKindBool
	plainKindInt
	plainKindInt64
	plainKindUint64
	plainKindFloat64
	plainKindIntSlice
	plainKindInt64Slice
	plainKindUint64Slice
	plainKindFloat64Slice
	plainKindInt32Slice
	plainKindUint32Slice
	plainKindBoolSlice
)

// PlainCodecKindLimit is the first kind byte available to codecs layered on
// top of PlainCodec.
const PlainCodecKindLimit = 0x40

// PlainCodec encodes the primitive payload types the collectives and tests
// use: nil, []byte, string, bool, int, int64, uint64, float64, and slices
// of int, int64, uint64, float64, int32, uint32, and bool. All integers are
// little-endian; int values travel as 64-bit. Payload types outside this
// set are an Encode error — application packages layer their own types on
// top (see internal/dist).
type PlainCodec struct{}

// Encode serializes v with a leading kind byte.
func (PlainCodec) Encode(v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return []byte{plainKindNil}, nil
	case []byte:
		out := make([]byte, 1+len(x))
		out[0] = plainKindBytes
		copy(out[1:], x)
		return out, nil
	case string:
		out := make([]byte, 1+len(x))
		out[0] = plainKindString
		copy(out[1:], x)
		return out, nil
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return []byte{plainKindBool, b}, nil
	case int:
		return appendU64(plainKindInt, uint64(x)), nil
	case int64:
		return appendU64(plainKindInt64, uint64(x)), nil
	case uint64:
		return appendU64(plainKindUint64, x), nil
	case float64:
		return appendU64(plainKindFloat64, math.Float64bits(x)), nil
	case []int:
		out := make([]byte, 1, 1+8*len(x))
		out[0] = plainKindIntSlice
		for _, e := range x {
			out = binary.LittleEndian.AppendUint64(out, uint64(e))
		}
		return out, nil
	case []int64:
		out := make([]byte, 1, 1+8*len(x))
		out[0] = plainKindInt64Slice
		for _, e := range x {
			out = binary.LittleEndian.AppendUint64(out, uint64(e))
		}
		return out, nil
	case []uint64:
		out := make([]byte, 1, 1+8*len(x))
		out[0] = plainKindUint64Slice
		for _, e := range x {
			out = binary.LittleEndian.AppendUint64(out, e)
		}
		return out, nil
	case []float64:
		out := make([]byte, 1, 1+8*len(x))
		out[0] = plainKindFloat64Slice
		for _, e := range x {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(e))
		}
		return out, nil
	case []int32:
		out := make([]byte, 1, 1+4*len(x))
		out[0] = plainKindInt32Slice
		for _, e := range x {
			out = binary.LittleEndian.AppendUint32(out, uint32(e))
		}
		return out, nil
	case []uint32:
		out := make([]byte, 1, 1+4*len(x))
		out[0] = plainKindUint32Slice
		for _, e := range x {
			out = binary.LittleEndian.AppendUint32(out, e)
		}
		return out, nil
	case []bool:
		out := make([]byte, 1+len(x))
		out[0] = plainKindBoolSlice
		for i, e := range x {
			if e {
				out[1+i] = 1
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("bsp: PlainCodec cannot encode payload of type %T", v)
	}
}

// Decode reverses Encode.
func (PlainCodec) Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("bsp: PlainCodec: empty payload")
	}
	kind, body := data[0], data[1:]
	switch kind {
	case plainKindNil:
		return nil, nil
	case plainKindBytes:
		out := make([]byte, len(body))
		copy(out, body)
		return out, nil
	case plainKindString:
		return string(body), nil
	case plainKindBool:
		if len(body) != 1 {
			return nil, fmt.Errorf("bsp: PlainCodec: bad bool payload length %d", len(body))
		}
		return body[0] != 0, nil
	case plainKindInt:
		u, err := fixedU64(body)
		return int(u), err
	case plainKindInt64:
		u, err := fixedU64(body)
		return int64(u), err
	case plainKindUint64:
		return fixedU64(body)
	case plainKindFloat64:
		u, err := fixedU64(body)
		return math.Float64frombits(u), err
	case plainKindIntSlice:
		if len(body)%8 != 0 {
			return nil, fmt.Errorf("bsp: PlainCodec: []int payload length %d not a multiple of 8", len(body))
		}
		out := make([]int, len(body)/8)
		for i := range out {
			out[i] = int(binary.LittleEndian.Uint64(body[8*i:]))
		}
		return out, nil
	case plainKindInt64Slice:
		if len(body)%8 != 0 {
			return nil, fmt.Errorf("bsp: PlainCodec: []int64 payload length %d not a multiple of 8", len(body))
		}
		out := make([]int64, len(body)/8)
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(body[8*i:]))
		}
		return out, nil
	case plainKindUint64Slice:
		if len(body)%8 != 0 {
			return nil, fmt.Errorf("bsp: PlainCodec: []uint64 payload length %d not a multiple of 8", len(body))
		}
		out := make([]uint64, len(body)/8)
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(body[8*i:])
		}
		return out, nil
	case plainKindFloat64Slice:
		if len(body)%8 != 0 {
			return nil, fmt.Errorf("bsp: PlainCodec: []float64 payload length %d not a multiple of 8", len(body))
		}
		out := make([]float64, len(body)/8)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
		}
		return out, nil
	case plainKindInt32Slice:
		if len(body)%4 != 0 {
			return nil, fmt.Errorf("bsp: PlainCodec: []int32 payload length %d not a multiple of 4", len(body))
		}
		out := make([]int32, len(body)/4)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
		}
		return out, nil
	case plainKindUint32Slice:
		if len(body)%4 != 0 {
			return nil, fmt.Errorf("bsp: PlainCodec: []uint32 payload length %d not a multiple of 4", len(body))
		}
		out := make([]uint32, len(body)/4)
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(body[4*i:])
		}
		return out, nil
	case plainKindBoolSlice:
		out := make([]bool, len(body))
		for i, b := range body {
			out[i] = b != 0
		}
		return out, nil
	default:
		return nil, fmt.Errorf("bsp: PlainCodec: unknown payload kind 0x%02x", kind)
	}
}

func appendU64(kind byte, u uint64) []byte {
	out := make([]byte, 9)
	out[0] = kind
	binary.LittleEndian.PutUint64(out[1:], u)
	return out
}

func fixedU64(body []byte) (uint64, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("bsp: PlainCodec: bad scalar payload length %d", len(body))
	}
	return binary.LittleEndian.Uint64(body), nil
}
