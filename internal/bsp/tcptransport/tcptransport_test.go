package tcptransport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"genomeatscale/internal/bsp"
)

// newLoopbackCluster builds p connected TCP transport endpoints over
// pre-bound loopback listeners (port 0, so tests never race on addresses).
func newLoopbackCluster(t *testing.T, p int, opts Options) []bsp.Transport {
	t.Helper()
	listeners := make([]net.Listener, p)
	peers := make([]string, p)
	for r := 0; r < p; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[r] = ln
		peers[r] = ln.Addr().String()
	}
	ts := make([]bsp.Transport, p)
	for r := 0; r < p; r++ {
		o := opts
		o.Listener = listeners[r]
		tr, err := New(r, peers, nil, o)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		ts[r] = tr
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			tr.Close()
		}
	})
	return ts
}

// waitForGoroutines polls until the goroutine count returns to the
// baseline, failing the test on leak.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d running, want <= %d", runtime.NumGoroutine(), before)
}

func TestTCPRingExchange(t *testing.T) {
	const p = 4
	ts := newLoopbackCluster(t, p, Options{StepTimeout: 10 * time.Second})
	_, errs := bsp.RunCluster(context.Background(), ts, func(proc *bsp.Proc) error {
		for step := 0; step < 3; step++ {
			next := (proc.Rank() + 1) % proc.NProcs()
			proc.Send(next, 5, []int64{int64(proc.Rank()), int64(step)})
			proc.Sync()
			msgs := proc.RecvAll(5)
			if len(msgs) != 1 {
				return fmt.Errorf("step %d: got %d messages, want 1", step, len(msgs))
			}
			prev := (proc.Rank() + proc.NProcs() - 1) % proc.NProcs()
			got := msgs[0].Payload.([]int64)
			if msgs[0].From != prev || got[0] != int64(prev) || got[1] != int64(step) {
				return fmt.Errorf("step %d: wrong message %v from %d", step, got, msgs[0].From)
			}
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestTCPCollectives(t *testing.T) {
	const p = 4
	ts := newLoopbackCluster(t, p, Options{StepTimeout: 10 * time.Second})
	stats, errs := bsp.RunCluster(context.Background(), ts, func(proc *bsp.Proc) error {
		// AllReduce of ranks: everyone must see the sum.
		total := bsp.AllReduce(proc, proc.Rank(), func(a, b int) int { return a + b })
		want := p * (p - 1) / 2
		if total != want {
			return fmt.Errorf("AllReduce = %d, want %d", total, want)
		}
		// Bcast from rank 2.
		val := proc.Rank() * 100
		got := bsp.Bcast(proc, 2, val)
		if got != 200 {
			return fmt.Errorf("Bcast = %d, want 200", got)
		}
		// GatherVariable to rank 0 concatenates in rank order.
		rows := bsp.GatherVariable(proc, 0, []uint64{uint64(proc.Rank()), uint64(proc.Rank())})
		if proc.Rank() == 0 {
			if len(rows) != 2*p {
				return fmt.Errorf("GatherVariable: %d values, want %d", len(rows), 2*p)
			}
			for i, v := range rows {
				if v != uint64(i/2) {
					return fmt.Errorf("GatherVariable[%d] = %d, want %d", i, v, i/2)
				}
			}
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	// The transport counters must show real wire traffic.
	ws := stats[0].Transport
	if ws == nil {
		t.Fatal("rank 0 has no transport stats")
	}
	if ws.Dials == 0 || ws.FramesSent == 0 || ws.BytesSent == 0 || ws.BytesRecv == 0 {
		t.Errorf("transport stats not populated: %+v", ws)
	}
	if ws.MaxStepSeconds <= 0 {
		t.Errorf("MaxStepSeconds = %v, want > 0", ws.MaxStepSeconds)
	}
}

// TestTCPMatchesMemTransport runs the same nontrivial SPMD program over the
// memory and TCP transports and requires identical delivered traffic and
// per-rank accounting.
func TestTCPMatchesMemTransport(t *testing.T) {
	const p = 3
	program := func(results [][]string) func(*bsp.Proc) error {
		return func(proc *bsp.Proc) error {
			var trace []string
			for step := 0; step < 2; step++ {
				for q := 0; q < proc.NProcs(); q++ {
					proc.Send(q, 9, []int{proc.Rank(), q, step})
					proc.Send(q, 9, []int{proc.Rank(), q, step + 100})
				}
				proc.Sync()
				for _, m := range proc.RecvAll(9) {
					trace = append(trace, fmt.Sprintf("%d:%d:%v", m.From, m.Seq, m.Payload))
				}
			}
			results[proc.Rank()] = trace
			return nil
		}
	}
	memRes := make([][]string, p)
	if _, errs := bsp.RunCluster(context.Background(), bsp.MemCluster(p), program(memRes)); errs[0] != nil || errs[1] != nil || errs[2] != nil {
		t.Fatalf("mem run failed: %v", errs)
	}
	tcpRes := make([][]string, p)
	ts := newLoopbackCluster(t, p, Options{StepTimeout: 10 * time.Second})
	if _, errs := bsp.RunCluster(context.Background(), ts, program(tcpRes)); errs[0] != nil || errs[1] != nil || errs[2] != nil {
		t.Fatalf("tcp run failed: %v", errs)
	}
	for r := 0; r < p; r++ {
		if len(memRes[r]) != len(tcpRes[r]) {
			t.Fatalf("rank %d: mem %d msgs, tcp %d msgs", r, len(memRes[r]), len(tcpRes[r]))
		}
		for i := range memRes[r] {
			if memRes[r][i] != tcpRes[r][i] {
				t.Errorf("rank %d msg %d: mem %q, tcp %q", r, i, memRes[r][i], tcpRes[r][i])
			}
		}
	}
}

// TestTCPEarlyFinish mirrors the in-process early-finish semantics: a rank
// that completes after zero supersteps must not block the others.
func TestTCPEarlyFinish(t *testing.T) {
	const p = 3
	ts := newLoopbackCluster(t, p, Options{StepTimeout: 10 * time.Second})
	stats, errs := bsp.RunCluster(context.Background(), ts, func(proc *bsp.Proc) error {
		if proc.Rank() == 0 {
			return nil // finishes before any superstep
		}
		for step := 0; step < 4; step++ {
			other := 3 - proc.Rank() // 1 <-> 2
			proc.Send(other, 1, []int{step})
			proc.Sync()
			if got := len(proc.RecvAll(1)); got != 1 {
				return fmt.Errorf("step %d: %d messages, want 1", step, got)
			}
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if stats[1].Supersteps != 4 {
		t.Errorf("rank 1 Supersteps = %d, want 4", stats[1].Supersteps)
	}
}

// TestTCPSendToFinishedRankDropped: messages addressed to a finished rank
// are dropped rather than erroring, matching the in-process runtime.
func TestTCPSendToFinishedRankDropped(t *testing.T) {
	const p = 3
	ts := newLoopbackCluster(t, p, Options{StepTimeout: 10 * time.Second})
	_, errs := bsp.RunCluster(context.Background(), ts, func(proc *bsp.Proc) error {
		if proc.Rank() == 0 {
			return nil
		}
		// Give rank 0's FIN time to reach everyone, then keep addressing it.
		time.Sleep(200 * time.Millisecond)
		for step := 0; step < 2; step++ {
			proc.Send(0, 1, []int{step})
			other := 3 - proc.Rank()
			proc.Send(other, 2, []int{step})
			proc.Sync()
			if got := len(proc.RecvAll(2)); got != 1 {
				return fmt.Errorf("step %d: %d messages, want 1", step, got)
			}
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestTCPStallTimesOutWithRankFailedError: a rank that stops synchronising
// (sleeps through the step deadline) is blamed by every survivor.
func TestTCPStallTimesOutWithRankFailedError(t *testing.T) {
	const p = 3
	const victim = 1
	before := runtime.NumGoroutine()
	ts := newLoopbackCluster(t, p, Options{StepTimeout: 400 * time.Millisecond})
	start := time.Now()
	_, errs := bsp.RunCluster(context.Background(), ts, func(proc *bsp.Proc) error {
		if proc.Rank() == victim {
			time.Sleep(1500 * time.Millisecond) // stall far past the deadline
			proc.Sync()                         // poisoned by then
			return nil
		}
		proc.Sync()
		proc.Sync()
		return nil
	})
	elapsed := time.Since(start)
	for _, r := range []int{0, 2} {
		var rfe *bsp.RankFailedError
		if !errors.As(errs[r], &rfe) {
			t.Fatalf("rank %d error = %v, want RankFailedError", r, errs[r])
		}
		if rfe.Rank != victim {
			t.Errorf("rank %d blames rank %d, want %d", r, rfe.Rank, victim)
		}
	}
	if elapsed > 5*time.Second {
		t.Errorf("survivors took %v to unwind, want well under 5s", elapsed)
	}
	for _, tr := range ts {
		tr.Close()
	}
	waitForGoroutines(t, before)
}

// TestTCPCancelMidSuperstep: context cancellation while ranks are blocked
// at the barrier must close everything down, return ctx.Err() on the
// cancelled rank, and leak no goroutines.
func TestTCPCancelMidSuperstep(t *testing.T) {
	const p = 3
	before := runtime.NumGoroutine()
	ts := newLoopbackCluster(t, p, Options{StepTimeout: 30 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{}, p)
	go func() {
		for i := 0; i < p; i++ {
			<-entered
		}
		cancel()
	}()
	_, errs := bsp.RunCluster(ctx, ts, func(proc *bsp.Proc) error {
		if proc.Rank() == 0 {
			entered <- struct{}{}
			<-ctx.Done() // never reaches the barrier: peers block there
			return ctx.Err()
		}
		entered <- struct{}{}
		proc.Sync()
		return nil
	})
	for r, err := range errs {
		if err == nil {
			t.Errorf("rank %d: nil error after cancel", r)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			var rfe *bsp.RankFailedError
			if !errors.As(err, &rfe) {
				t.Errorf("rank %d error = %v, want context.Canceled or RankFailedError", r, err)
			}
		}
	}
	for _, tr := range ts {
		tr.Close()
	}
	waitForGoroutines(t, before)
}

// TestTCPDialRetry: a transport whose peer listener appears late must
// retry and succeed, counting the retries.
func TestTCPDialRetry(t *testing.T) {
	// Reserve an address for rank 1 but don't listen yet.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := probe.Addr().String()
	probe.Close()

	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{ln0.Addr().String(), addr1}
	opts := Options{StepTimeout: 10 * time.Second, DialBackoff: 20 * time.Millisecond, DialAttempts: 50}
	t0, err := New(0, peers, nil, Options{Listener: ln0, StepTimeout: opts.StepTimeout,
		DialBackoff: opts.DialBackoff, DialAttempts: opts.DialAttempts})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()

	// Rank 1 starts 300ms late.
	done := make(chan error, 2)
	go func() {
		_, err := bsp.RunRank(context.Background(), t0, func(proc *bsp.Proc) error {
			proc.Send(1, 1, []int{42})
			proc.Sync()
			return nil
		})
		done <- err
	}()
	time.Sleep(300 * time.Millisecond)
	t1, err := New(1, peers, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	go func() {
		_, err := bsp.RunRank(context.Background(), t1, func(proc *bsp.Proc) error {
			proc.Sync()
			if got := len(proc.RecvAll(1)); got != 1 {
				return fmt.Errorf("%d messages, want 1", got)
			}
			return nil
		})
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s := t0.TransportStats(); s.Retries == 0 {
		t.Errorf("expected dial retries, stats = %+v", s)
	}
}

// TestTCPSeverConnection: abruptly closing one rank's transport mid-run
// (the "sever" fault) must unwind survivors with a RankFailedError blaming
// that rank.
func TestTCPSeverConnection(t *testing.T) {
	const p = 3
	const victim = 2
	ts := newLoopbackCluster(t, p, Options{StepTimeout: 2 * time.Second})
	_, errs := bsp.RunCluster(context.Background(), ts, func(proc *bsp.Proc) error {
		if proc.Rank() == victim {
			// One clean superstep, then die without FIN or ABORT.
			proc.Sync()
			ts[victim].Close()
			return errors.New("severed")
		}
		proc.Sync()
		proc.Sync()
		proc.Sync()
		return nil
	})
	for _, r := range []int{0, 1} {
		var rfe *bsp.RankFailedError
		if !errors.As(errs[r], &rfe) {
			t.Fatalf("rank %d error = %v, want RankFailedError", r, errs[r])
		}
		if rfe.Rank != victim {
			t.Errorf("rank %d blames rank %d, want %d", r, rfe.Rank, victim)
		}
	}
}

// TestTCPExchangeAfterCloseFails pins the single-run contract.
func TestTCPExchangeAfterCloseFails(t *testing.T) {
	ts := newLoopbackCluster(t, 2, Options{StepTimeout: time.Second})
	ts[0].Close()
	if _, err := ts[0].Exchange(0, nil); err == nil {
		t.Fatal("Exchange after Close succeeded, want error")
	}
}
