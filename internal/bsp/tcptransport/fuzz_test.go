package tcptransport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame hardens the length-prefixed frame reader against hostile
// input: truncated frames, zero-length frames, and oversized length headers
// must all fail cleanly — bounded allocation, no panic — and whatever
// parses must round-trip.
func FuzzReadFrame(f *testing.F) {
	f.Add(appendFrame(nil, frameHello, appendU32Body(nil, 3)))
	f.Add(appendFrame(nil, frameMsg, appendMsgBody(nil, 1, 2, -7, 4, []byte("payload"))))
	f.Add(appendFrame(nil, frameDone, appendU32Body(nil, 0, 5, 12)))
	f.Add(appendFrame(nil, frameFin, appendU32Body(nil, 2, 9)))
	f.Add(appendFrame(nil, frameAbort, append(appendU32Body(nil, 1, 3, 2), "boom"...)))
	f.Add([]byte{0, 0, 0, 0})                         // zero-length frame
	f.Add([]byte{255, 255, 255, 255, 1})              // 4 GiB header bomb
	f.Add(binary.LittleEndian.AppendUint32(nil, 100)) // truncated body
	f.Add([]byte{5, 0, 0})                            // truncated header

	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		typ, body, err := readFrame(r, maxFrame)
		if err != nil {
			return
		}
		if len(body)+1 > maxFrame {
			t.Fatalf("frame body %d bytes escaped the %d cap", len(body)+1, maxFrame)
		}
		// A parsed frame must re-encode to the bytes consumed.
		consumed := len(data) - r.Len()
		if got := appendFrame(nil, typ, body); !bytes.Equal(got, data[:consumed]) {
			t.Fatalf("re-encode mismatch: %x vs %x", got, data[:consumed])
		}
		// Type-specific parsers must not panic on arbitrary bodies.
		switch typ {
		case frameMsg:
			if m, err := parseMsg(body); err == nil {
				re := appendMsgBody(nil, m.From, m.Step, m.Tag, m.Seq, m.Payload)
				if !bytes.Equal(re, body) {
					t.Fatalf("MSG round-trip mismatch")
				}
			}
		case frameHello:
			parseU32s(body, 1)
		case frameDone, frameAbort:
			parseU32s(body, 3)
		case frameFin:
			parseU32s(body, 2)
		}
	})
}

// TestReadFrameRejectsOversized pins the header-bomb guard: a length
// header past MaxFrame errors before allocating.
func TestReadFrameRejectsOversized(t *testing.T) {
	data := binary.LittleEndian.AppendUint32(nil, 1<<30)
	data = append(data, 1)
	if _, _, err := readFrame(bytes.NewReader(data), 1<<20); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestReadFrameRejectsTruncated: a frame cut mid-body is an error, not a
// short read.
func TestReadFrameRejectsTruncated(t *testing.T) {
	full := appendFrame(nil, frameMsg, appendMsgBody(nil, 0, 1, 2, 3, []byte("abcdef")))
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := readFrame(bytes.NewReader(full[:cut]), 1<<20); err == nil {
			t.Fatalf("truncated frame (cut at %d) accepted", cut)
		}
	}
}
