// Package tcptransport implements bsp.Transport over TCP, letting the
// ranks of a BSP run live in separate processes (and machines): one
// listener per rank, a lazily-dialed full mesh of persistent connections,
// and length-prefixed frames carrying codec-encoded payloads.
//
// Superstep protocol: during Exchange a rank streams MSG frames to each
// peer followed by one DONE frame carrying the count of frames it sent, so
// receivers know when a peer's contribution to the step is complete without
// a separate barrier round-trip. A rank whose program completes broadcasts
// FIN with its superstep count; remaining ranks keep synchronising among
// themselves, exactly like the in-process runtime's early-finish semantics.
//
// Failure semantics are poison-the-barrier: a rank that times out (no
// superstep traffic within Options.StepTimeout), disconnects, or aborts
// causes every surviving rank to unwind with a *bsp.RankFailedError
// identifying the failed rank — ABORT frames carry the culprit's rank, so
// the blame is consistent across survivors regardless of who detected the
// failure first. No hangs: every wait is bounded by the step deadline.
//
// Endpoints are single-run: after the run's ranks Finish or fail, build new
// transports for the next run.
package tcptransport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"genomeatscale/internal/bsp"
)

// Options configures a transport endpoint. The zero value is usable.
type Options struct {
	// StepTimeout bounds one superstep exchange: a peer that produces no
	// traffic for the current step within this window is declared failed.
	// It is also the write deadline for outgoing frames. Default 30s.
	StepTimeout time.Duration
	// DialTimeout bounds a single connection attempt. Default 5s.
	DialTimeout time.Duration
	// DialAttempts is the number of connection attempts per peer before
	// giving up (peers start at slightly different times, so first dials
	// routinely fail). Default 10.
	DialAttempts int
	// DialBackoff is the initial retry backoff; it doubles per attempt
	// with jitter, capped at 2s. Default 50ms.
	DialBackoff time.Duration
	// MaxFrame caps a frame's length prefix; larger headers are a
	// protocol error before any allocation. Default DefaultMaxFrame.
	MaxFrame int
	// Listener, when non-nil, is used instead of binding peers[rank] —
	// tests pre-bind port 0 listeners to avoid address races.
	Listener net.Listener
}

func (o Options) withDefaults() Options {
	if o.StepTimeout <= 0 {
		o.StepTimeout = 30 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.DialAttempts <= 0 {
		o.DialAttempts = 10
	}
	if o.DialBackoff <= 0 {
		o.DialBackoff = 50 * time.Millisecond
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	return o
}

// outConn is the lazily-dialed persistent connection this rank writes to
// one peer on. Reads happen on accepted connections only, so each mesh edge
// is two sockets, each with one writer and one reader.
type outConn struct {
	mu sync.Mutex
	c  net.Conn
}

// stepState accumulates one superstep's incoming traffic.
type stepState struct {
	msgs []msgFrame
	done []int // done[q] = frame count peer q announced for this step; -1 until its DONE arrives
	got  []int // got[q] = MSG frames received from peer q for this step
}

// Transport is a TCP bsp.Transport endpoint for one rank.
type Transport struct {
	rank  int
	np    int
	peers []string
	codec bsp.Codec
	opts  Options

	ln  net.Listener
	out []*outConn

	mu       sync.Mutex
	cond     *sync.Cond
	steps    map[int]*stepState
	fins     []int // fins[q] = supersteps peer q completed before finishing; -1 while running
	failed   error
	closed   bool
	curStep  int
	localFin int

	accepted []net.Conn
	readers  sync.WaitGroup

	statsMu sync.Mutex
	stats   bsp.TransportStats
}

// New builds the endpoint for `rank` of the run whose rank addresses are
// `peers` (peers[rank] is this rank's own listen address). The codec
// encodes payloads at the wire boundary; nil means bsp.PlainCodec. The
// listener is bound (or adopted from opts.Listener) before New returns, so
// peers can dial as soon as every rank has constructed its endpoint.
func New(rank int, peers []string, codec bsp.Codec, opts Options) (*Transport, error) {
	if rank < 0 || rank >= len(peers) {
		return nil, fmt.Errorf("tcptransport: rank %d out of range for %d peers", rank, len(peers))
	}
	if codec == nil {
		codec = bsp.PlainCodec{}
	}
	opts = opts.withDefaults()
	ln := opts.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", peers[rank])
		if err != nil {
			return nil, fmt.Errorf("tcptransport: rank %d cannot listen on %s: %w", rank, peers[rank], err)
		}
	}
	t := &Transport{
		rank:     rank,
		np:       len(peers),
		peers:    peers,
		codec:    codec,
		opts:     opts,
		ln:       ln,
		out:      make([]*outConn, len(peers)),
		steps:    make(map[int]*stepState),
		fins:     make([]int, len(peers)),
		localFin: -1,
	}
	t.cond = sync.NewCond(&t.mu)
	for q := range t.out {
		t.out[q] = &outConn{}
		t.fins[q] = -1
	}
	t.readers.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Rank returns this endpoint's rank.
func (t *Transport) Rank() int { return t.rank }

// NProcs returns the number of ranks in the run.
func (t *Transport) NProcs() int { return t.np }

// Addr returns the bound listen address — the real port when the
// configured address used port 0.
func (t *Transport) Addr() net.Addr { return t.ln.Addr() }

// TransportStats returns a snapshot of the wire counters.
func (t *Transport) TransportStats() bsp.TransportStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stats
}

func (t *Transport) acceptLoop() {
	defer t.readers.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.accepted = append(t.accepted, c)
		t.readers.Add(1)
		t.mu.Unlock()
		go t.handleConn(c)
	}
}

// handleConn reads frames from one accepted connection. The first frame
// must be HELLO identifying the peer; a read failure afterwards is benign
// when the run is already over (closed, failed, or the peer finished) and a
// lost-connection failure otherwise.
func (t *Transport) handleConn(c net.Conn) {
	defer t.readers.Done()
	defer c.Close()
	peer := -1
	for {
		typ, body, err := readFrame(c, t.opts.MaxFrame)
		if err != nil {
			t.readerExit(peer, err)
			return
		}
		t.statsMu.Lock()
		t.stats.FramesRecv++
		t.stats.BytesRecv += int64(4 + 1 + len(body))
		t.statsMu.Unlock()
		if peer == -1 {
			if typ != frameHello {
				t.readerExit(peer, fmt.Errorf("tcptransport: first frame type %d, want HELLO", typ))
				return
			}
			vals, err := parseU32s(body, 1)
			if err != nil || vals[0] < 0 || vals[0] >= t.np || vals[0] == t.rank {
				t.readerExit(peer, fmt.Errorf("tcptransport: bad HELLO from %v", c.RemoteAddr()))
				return
			}
			peer = vals[0]
			continue
		}
		switch typ {
		case frameMsg:
			m, err := parseMsg(body)
			if err != nil {
				t.readerExit(peer, err)
				return
			}
			t.mu.Lock()
			if t.localFin < 0 || m.Step < t.localFin {
				st := t.ensureStep(m.Step)
				st.msgs = append(st.msgs, m)
				st.got[m.From]++
			}
			t.cond.Broadcast()
			t.mu.Unlock()
		case frameDone:
			vals, err := parseU32s(body, 3)
			if err != nil {
				t.readerExit(peer, err)
				return
			}
			from, step, n := vals[0], vals[1], vals[2]
			t.mu.Lock()
			if t.localFin < 0 || step < t.localFin {
				t.ensureStep(step).done[from] = n
			}
			t.cond.Broadcast()
			t.mu.Unlock()
		case frameFin:
			vals, err := parseU32s(body, 2)
			if err != nil {
				t.readerExit(peer, err)
				return
			}
			t.mu.Lock()
			t.fins[vals[0]] = vals[1]
			t.cond.Broadcast()
			t.mu.Unlock()
		case frameAbort:
			vals, err := parseU32s(body, 3)
			if err != nil {
				t.readerExit(peer, err)
				return
			}
			step, culprit := vals[1], vals[2]
			t.mu.Lock()
			if t.failed == nil && !t.closed {
				t.failed = &bsp.RankFailedError{Rank: culprit, Step: step, Cause: errors.New(string(body[12:]))}
			}
			t.cond.Broadcast()
			t.mu.Unlock()
		default:
			t.readerExit(peer, fmt.Errorf("tcptransport: unknown frame type %d", typ))
			return
		}
	}
}

// readerExit handles a reader goroutine's terminal error. EOF and friends
// are benign when the run is already over; an unexpected loss of a live
// peer's connection poisons the barrier, blaming that peer.
func (t *Transport) readerExit(peer int, err error) {
	t.mu.Lock()
	benign := t.closed || t.failed != nil || t.localFin >= 0 ||
		peer < 0 || t.fins[peer] >= 0
	if benign {
		t.mu.Unlock()
		return
	}
	step := t.curStep
	rfe := &bsp.RankFailedError{Rank: peer, Step: step, Cause: fmt.Errorf("connection lost: %w", err)}
	t.failed = rfe
	t.cond.Broadcast()
	t.mu.Unlock()
	t.broadcastAbort(peer, step, rfe.Cause.Error())
}

// ensureStep returns the state for a superstep, creating it on first
// touch (traffic for a step can arrive before the local rank enters it).
// Caller holds t.mu.
func (t *Transport) ensureStep(step int) *stepState {
	st := t.steps[step]
	if st == nil {
		st = &stepState{done: make([]int, t.np), got: make([]int, t.np)}
		for q := range st.done {
			st.done[q] = -1
		}
		t.steps[step] = st
	}
	return st
}

// finishedBy reports whether peer q completed its program before
// participating in superstep `step`. Caller holds t.mu.
func (t *Transport) finishedBy(q, step int) bool {
	return t.fins[q] >= 0 && t.fins[q] <= step
}

// getConn returns the persistent connection to peer q, dialing with
// bounded retry + exponential backoff (peers start at different times) on
// first use. Caller must NOT hold t.mu.
func (t *Transport) getConn(q int, retry bool) (net.Conn, error) {
	oc := t.out[q]
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if oc.c != nil {
		return oc.c, nil
	}
	attempts := t.opts.DialAttempts
	if !retry {
		attempts = 1
	}
	backoff := t.opts.DialBackoff
	// Retries exist for startup staggering; a peer that stays unreachable
	// must surface as a failure within the step deadline, not after the
	// full backoff schedule.
	deadline := time.Now().Add(t.opts.StepTimeout)
	var lastErr error
	for i := 0; i < attempts; i++ {
		t.mu.Lock()
		closed, failed := t.closed, t.failed
		t.mu.Unlock()
		if closed {
			return nil, errors.New("tcptransport: transport closed")
		}
		if failed != nil && retry {
			return nil, failed
		}
		if i > 0 && time.Now().After(deadline) {
			return nil, fmt.Errorf("tcptransport: rank %d cannot reach rank %d at %s within %v: %w",
				t.rank, q, t.peers[q], t.opts.StepTimeout, lastErr)
		}
		t.statsMu.Lock()
		t.stats.Dials++
		if i > 0 {
			t.stats.Retries++
		}
		t.statsMu.Unlock()
		c, err := net.DialTimeout("tcp", t.peers[q], t.opts.DialTimeout)
		if err == nil {
			hello := appendFrame(nil, frameHello, appendU32Body(nil, t.rank))
			if werr := t.writeConn(c, hello); werr != nil {
				c.Close()
				lastErr = werr
			} else {
				oc.c = c
				return c, nil
			}
		} else {
			lastErr = err
		}
		sleep := backoff
		if sleep > 0 {
			sleep += time.Duration(rand.Int63n(int64(sleep)/2 + 1))
		}
		time.Sleep(sleep)
		backoff *= 2
		if backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
	return nil, fmt.Errorf("tcptransport: rank %d cannot reach rank %d at %s after %d attempts: %w",
		t.rank, q, t.peers[q], attempts, lastErr)
}

// writeConn writes one pre-framed buffer under the step write deadline and
// counts it.
func (t *Transport) writeConn(c net.Conn, frame []byte) error {
	c.SetWriteDeadline(time.Now().Add(t.opts.StepTimeout))
	_, err := c.Write(frame)
	if err == nil {
		t.statsMu.Lock()
		t.stats.FramesSent++
		t.stats.BytesSent += int64(len(frame))
		t.statsMu.Unlock()
	}
	return err
}

// sendTo frames and writes to peer q, dialing first if needed.
func (t *Transport) sendTo(q int, frame []byte, retry bool) error {
	if _, err := t.getConn(q, retry); err != nil {
		return err
	}
	oc := t.out[q]
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if oc.c == nil {
		return errors.New("tcptransport: connection closed")
	}
	return t.writeConn(oc.c, frame)
}

// Exchange implements bsp.Transport: stream this step's messages to each
// peer, announce completion with DONE, then wait — bounded by StepTimeout —
// until every still-running peer's DONE and all its announced frames have
// arrived. Messages addressed to peers that already finished are dropped,
// mirroring the in-process runtime where a finished rank simply never
// reads them.
func (t *Transport) Exchange(step int, outgoing []bsp.Message) ([]bsp.Message, error) {
	start := time.Now()
	t.mu.Lock()
	if t.failed != nil {
		err := t.failed
		t.mu.Unlock()
		return nil, err
	}
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("tcptransport: transport closed")
	}
	t.curStep = step
	t.mu.Unlock()

	// Send phase: encode and stream MSG frames per peer, self-messages
	// loop back without touching the codec.
	var selfMsgs []bsp.Message
	counts := make([]int, t.np)
	for _, m := range outgoing {
		if m.To == t.rank {
			selfMsgs = append(selfMsgs, m)
			continue
		}
		t.mu.Lock()
		skip := t.finishedBy(m.To, step)
		t.mu.Unlock()
		if skip {
			continue
		}
		payload, err := t.codec.Encode(m.Payload)
		if err != nil {
			rerr := fmt.Errorf("tcptransport: rank %d cannot encode payload for rank %d (tag %d): %w",
				t.rank, m.To, m.Tag, err)
			t.failLocal(rerr, step)
			return nil, rerr
		}
		body := appendMsgBody(make([]byte, 0, msgHeaderLen+len(payload)), t.rank, step, m.Tag, m.Seq, payload)
		if err := t.sendTo(m.To, appendFrame(nil, frameMsg, body), true); err != nil {
			if ferr := t.failWrite(m.To, step, err); ferr != nil {
				return nil, ferr
			}
			continue // peer finished mid-send; drop like the skip above
		}
		counts[m.To]++
	}
	// DONE to every still-running peer, even with zero messages: the DONE
	// counts are the barrier.
	for q := 0; q < t.np; q++ {
		if q == t.rank {
			continue
		}
		t.mu.Lock()
		skip := t.finishedBy(q, step)
		t.mu.Unlock()
		if skip {
			continue
		}
		frame := appendFrame(nil, frameDone, appendU32Body(nil, t.rank, step, counts[q]))
		if err := t.sendTo(q, frame, true); err != nil {
			if ferr := t.failWrite(q, step, err); ferr != nil {
				return nil, ferr
			}
		}
	}

	// Wait phase: block until every running peer's step is complete, the
	// run is poisoned, or the deadline fires.
	timedOut := false
	timer := time.AfterFunc(t.opts.StepTimeout, func() {
		t.mu.Lock()
		timedOut = true
		t.cond.Broadcast()
		t.mu.Unlock()
	})
	defer timer.Stop()

	t.mu.Lock()
	st := t.ensureStep(step)
	for {
		if t.failed != nil {
			err := t.failed
			t.mu.Unlock()
			return nil, err
		}
		if t.closed {
			t.mu.Unlock()
			return nil, errors.New("tcptransport: transport closed")
		}
		missing := -1
		for q := 0; q < t.np; q++ {
			if q == t.rank || t.finishedBy(q, step) {
				continue
			}
			if st.done[q] < 0 || st.got[q] < st.done[q] {
				missing = q
				break
			}
		}
		if missing == -1 {
			break
		}
		if timedOut {
			rfe := &bsp.RankFailedError{
				Rank: missing,
				Step: step,
				Cause: fmt.Errorf("no superstep traffic within %v (reported by rank %d)",
					t.opts.StepTimeout, t.rank),
			}
			t.failed = rfe
			t.cond.Broadcast()
			t.mu.Unlock()
			t.broadcastAbort(missing, step, rfe.Cause.Error())
			return nil, rfe
		}
		t.cond.Wait()
	}
	wire := st.msgs
	delete(t.steps, step)
	t.mu.Unlock()

	// Decode outside the lock; frames already arrived in full.
	in := make([]bsp.Message, 0, len(wire)+len(selfMsgs))
	for _, m := range wire {
		v, err := t.codec.Decode(m.Payload)
		if err != nil {
			rerr := fmt.Errorf("tcptransport: rank %d cannot decode payload from rank %d (tag %d): %w",
				t.rank, m.From, m.Tag, err)
			t.failLocal(rerr, step)
			return nil, rerr
		}
		in = append(in, bsp.Message{
			From: m.From, To: t.rank, Tag: m.Tag, Seq: m.Seq,
			Payload: v, Bytes: bsp.PayloadBytes(v),
		})
	}
	in = append(in, selfMsgs...)
	bsp.SortMessages(in)

	dt := time.Since(start).Seconds()
	t.statsMu.Lock()
	if dt > t.stats.MaxStepSeconds {
		t.stats.MaxStepSeconds = dt
	}
	t.statsMu.Unlock()
	return in, nil
}

// failLocal poisons the run with a local failure (encode/decode error),
// blaming this rank.
func (t *Transport) failLocal(err error, step int) {
	t.mu.Lock()
	if t.failed == nil {
		t.failed = err
	}
	t.cond.Broadcast()
	t.mu.Unlock()
	t.broadcastAbort(t.rank, step, err.Error())
}

// failWrite handles a failed write to peer q: benign if q finished in the
// meantime (its endpoint may be gone), otherwise poison the run blaming q
// and return the error the exchange should unwind with.
func (t *Transport) failWrite(q, step int, cause error) error {
	t.mu.Lock()
	if t.fins[q] >= 0 {
		t.mu.Unlock()
		return nil
	}
	if t.failed != nil {
		err := t.failed
		t.mu.Unlock()
		return err
	}
	rfe := &bsp.RankFailedError{Rank: q, Step: step, Cause: fmt.Errorf("send failed: %w", cause)}
	t.failed = rfe
	t.cond.Broadcast()
	t.mu.Unlock()
	t.broadcastAbort(q, step, rfe.Cause.Error())
	return rfe
}

// broadcastAbort best-effort notifies every peer that the run is poisoned,
// naming the culprit rank so all survivors report the same failure. Uses
// existing connections plus a single dial attempt; peers that cannot be
// reached will hit their own step deadline. Caller must NOT hold t.mu.
func (t *Transport) broadcastAbort(culprit, step int, msg string) {
	body := appendU32Body(nil, t.rank, step, culprit)
	body = append(body, msg...)
	frame := appendFrame(nil, frameAbort, body)
	for q := 0; q < t.np; q++ {
		if q == t.rank {
			continue
		}
		_ = t.sendTo(q, frame, false)
	}
}

// Finish implements bsp.Transport: record the local program's completion
// and tell every peer (dialing if the mesh edge was never used) so their
// barriers stop waiting for this rank.
func (t *Transport) Finish(steps int) {
	t.mu.Lock()
	t.localFin = steps
	t.fins[t.rank] = steps
	// Traffic for steps this rank never reaches is garbage now.
	for s := range t.steps {
		if s >= steps {
			delete(t.steps, s)
		}
	}
	t.cond.Broadcast()
	t.mu.Unlock()
	frame := appendFrame(nil, frameFin, appendU32Body(nil, t.rank, steps))
	for q := 0; q < t.np; q++ {
		if q == t.rank {
			continue
		}
		_ = t.sendTo(q, frame, true)
	}
}

// Abort implements bsp.Transport: poison the local barrier and broadcast
// the failure. When err already names a failed rank (*bsp.RankFailedError)
// the blame is forwarded as-is; otherwise this rank is the culprit (its
// program returned an error, panicked, or its context was cancelled).
func (t *Transport) Abort(err error) {
	culprit := t.rank
	step := 0
	var rfe *bsp.RankFailedError
	if errors.As(err, &rfe) {
		culprit = rfe.Rank
		step = rfe.Step
	} else {
		t.mu.Lock()
		step = t.curStep
		t.mu.Unlock()
	}
	t.mu.Lock()
	if t.failed == nil {
		t.failed = err
	}
	t.cond.Broadcast()
	t.mu.Unlock()
	t.broadcastAbort(culprit, step, err.Error())
}

// Close implements bsp.Transport: stop the listener, close every
// connection, wake any blocked exchange, and join all reader goroutines.
// Idempotent.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	accepted := t.accepted
	t.accepted = nil
	t.cond.Broadcast()
	t.mu.Unlock()

	t.ln.Close()
	for _, c := range accepted {
		c.Close()
	}
	for _, oc := range t.out {
		oc.mu.Lock()
		if oc.c != nil {
			oc.c.Close()
			oc.c = nil
		}
		oc.mu.Unlock()
	}
	t.readers.Wait()
	return nil
}
