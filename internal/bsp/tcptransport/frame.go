package tcptransport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol: every frame is
//
//	u32 little-endian length (of everything after these 4 bytes)
//	u8  frame type
//	... type-specific body
//
// Frame types:
//
//	HELLO  u32 rank                      — first frame on every dialed conn
//	MSG    u32 from | u32 step | i64 tag | u32 seq | payload bytes
//	DONE   u32 from | u32 step | u32 n   — sender finished staging step; n = frames it sent us
//	FIN    u32 from | u32 steps          — sender's program completed after `steps` supersteps
//	ABORT  u32 from | u32 step | u32 culprit | utf8 message
//
// The length prefix is capped (Options.MaxFrame) before any allocation, the
// same header-bomb discipline as samplefile.ReadBinary: a corrupt or
// malicious length header is an error, not an OOM.
const (
	frameHello = byte(iota + 1)
	frameMsg
	frameDone
	frameFin
	frameAbort
)

// DefaultMaxFrame caps a frame's length prefix (256 MiB). Payloads are
// per-message, so this bounds a single superstep message, not the whole
// exchange.
const DefaultMaxFrame = 1 << 28

// minFrameBody is the smallest legal frame: a type byte alone.
const minFrameBody = 1

// appendFrame appends a length-prefixed frame of the given type and body to
// buf and returns the extended slice.
func appendFrame(buf []byte, typ byte, body []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(1+len(body)))
	buf = append(buf, typ)
	return append(buf, body...)
}

// readFrame reads one frame from r, enforcing the length cap before
// allocating. Returns the frame type and body.
func readFrame(r io.Reader, maxFrame int) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < minFrameBody {
		return 0, nil, fmt.Errorf("tcptransport: frame length %d below minimum %d", n, minFrameBody)
	}
	if int64(n) > int64(maxFrame) {
		return 0, nil, fmt.Errorf("tcptransport: frame length %d exceeds cap %d", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("tcptransport: truncated frame (want %d bytes): %w", n, err)
	}
	return buf[0], buf[1:], nil
}

// msgFrame is a decoded MSG body.
type msgFrame struct {
	From    int
	Step    int
	Tag     int
	Seq     int
	Payload []byte
}

const msgHeaderLen = 4 + 4 + 8 + 4

func appendMsgBody(buf []byte, from, step, tag, seq int, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(from))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(step))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(tag)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(seq))
	return append(buf, payload...)
}

func parseMsg(body []byte) (msgFrame, error) {
	if len(body) < msgHeaderLen {
		return msgFrame{}, fmt.Errorf("tcptransport: MSG body %d bytes, want >= %d", len(body), msgHeaderLen)
	}
	return msgFrame{
		From:    int(binary.LittleEndian.Uint32(body[0:])),
		Step:    int(binary.LittleEndian.Uint32(body[4:])),
		Tag:     int(int64(binary.LittleEndian.Uint64(body[8:]))),
		Seq:     int(binary.LittleEndian.Uint32(body[16:])),
		Payload: body[msgHeaderLen:],
	}, nil
}

func appendU32Body(buf []byte, vals ...int) []byte {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

func parseU32s(body []byte, n int) ([]int, error) {
	if len(body) < 4*n {
		return nil, fmt.Errorf("tcptransport: frame body %d bytes, want >= %d", len(body), 4*n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint32(body[4*i:]))
	}
	return out, nil
}
