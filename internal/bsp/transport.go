package bsp

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Transport is one rank's endpoint of a superstep message exchange. The
// in-process MemTransport is the default; internal/bsp/tcptransport
// implements the same contract over one TCP listener per rank so ranks can
// live in separate processes (and on separate machines).
//
// A Transport endpoint belongs to exactly one rank of one run and is driven
// by that rank's goroutine only; implementations need not support
// concurrent calls into the same endpoint (Abort and Close, which other
// goroutines use to tear a run down, are the exception and must be safe to
// call concurrently with everything else).
type Transport interface {
	// Rank returns this endpoint's rank in [0, NProcs).
	Rank() int
	// NProcs returns the number of ranks in the run.
	NProcs() int
	// Exchange ends superstep `step` (0-based): it hands the rank's
	// outgoing messages to the exchange, participates in the global
	// barrier, and returns the messages addressed to this rank, sorted by
	// (From, Seq). An error means the run is poisoned — a peer failed,
	// timed out, or aborted — and the rank must unwind; for remote
	// transports the error is typically a *RankFailedError naming the
	// failed rank.
	Exchange(step int, outgoing []Message) ([]Message, error)
	// Finish reports that the rank's program completed after `steps`
	// supersteps. Remaining ranks keep synchronising among themselves; the
	// finished rank takes no further part in barriers.
	Finish(steps int)
	// Abort poisons the run: every rank blocked in Exchange (local or, for
	// remote transports, on any peer) unwinds with an error, and further
	// Exchange calls fail immediately. Safe to call from any goroutine and
	// more than once; the first error wins.
	Abort(err error)
	// Close releases the endpoint's resources (sockets, goroutines).
	// Idempotent. After Close, Exchange fails immediately.
	Close() error
}

// RankFailedError reports that a rank of a distributed run failed — it
// returned an error, timed out, or its connection was lost — identifying
// the failed rank and the superstep at which the failure was observed.
// Every surviving rank of the run unwinds with a *RankFailedError naming
// the same culprit.
type RankFailedError struct {
	// Rank is the rank that failed.
	Rank int
	// Step is the superstep at which the failure was observed.
	Step int
	// Cause describes the failure.
	Cause error
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("bsp: rank %d failed at superstep %d: %v", e.Rank, e.Step, e.Cause)
}

// Unwrap returns the underlying cause.
func (e *RankFailedError) Unwrap() error { return e.Cause }

// TransportStats holds wire-level counters for one rank's transport
// endpoint. The in-process memory transport has no wire and reports none.
type TransportStats struct {
	// Dials is the number of connection attempts made (including retries).
	Dials int64
	// Retries is the number of dial attempts beyond the first per peer.
	Retries int64
	// FramesSent and FramesRecv count protocol frames on the wire.
	FramesSent int64
	FramesRecv int64
	// BytesSent and BytesRecv count bytes on the wire, framing included.
	BytesSent int64
	BytesRecv int64
	// MaxStepSeconds is the longest single superstep exchange (barrier
	// wait included) observed by this rank.
	MaxStepSeconds float64
}

// TransportStatser is implemented by transports that keep wire-level
// counters; RunRank copies them into Stats.Transport.
type TransportStatser interface {
	TransportStats() TransportStats
}

// SortMessages orders a delivered message batch deterministically: by
// sender rank, then by the sender's send order (Seq). Every Transport
// returns Exchange batches in this order, which is what keeps distributed
// results byte-identical across transports.
func SortMessages(msgs []Message) {
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].From != msgs[j].From {
			return msgs[i].From < msgs[j].From
		}
		return msgs[i].Seq < msgs[j].Seq
	})
}

// runOne drives one rank function over its transport, translating panics
// and errors into the abort protocol. It returns the rank's error: nil on
// success, the rank's own failure (primary), or an abortError when the rank
// was unwound by a failure elsewhere (secondary).
func runOne(t Transport, proc *Proc, fn func(*Proc) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if abort, ok := r.(abortError); ok {
				// The rank was unwound because the run is already
				// poisoned; keep the secondary error as-is.
				err = abort
				return
			}
			err = fmt.Errorf("bsp: rank %d panicked: %v", proc.rank, r)
			t.Abort(err)
		}
	}()
	if err := fn(proc); err != nil {
		t.Abort(fmt.Errorf("bsp: rank %d failed: %w", proc.rank, err))
		return err
	}
	t.Finish(proc.step)
	return nil
}

// RunRank executes fn as rank t.Rank() of an NProcs()-rank run over the
// given transport — one process of a multi-process BSP job. It returns this
// rank's local statistics (per-rank slices filled at the local index only;
// Stats.Transport populated when the transport keeps wire counters).
//
// Cancellation mirrors RunCtx: when ctx is cancelled the transport is
// aborted, the rank unwinds from whatever barrier it is blocked at, and
// RunRank returns ctx.Err(). A peer failure surfaces as the transport's
// error — for TCP, a *RankFailedError identifying the failed rank.
//
// RunRank does not close the transport; callers own its lifecycle.
func RunRank(ctx context.Context, t Transport, fn func(*Proc) error) (*Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	np := t.NProcs()
	rank := t.Rank()
	if rank < 0 || rank >= np {
		return nil, fmt.Errorf("bsp: transport rank %d out of range [0,%d)", rank, np)
	}
	stats := newStats(np)
	statsMu := new(sync.Mutex)

	watcherDone := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				t.Abort(ctx.Err())
			case <-watcherDone:
			}
		}()
	}

	proc := &Proc{rank: rank, np: np, t: t, ctx: ctx, stats: stats, statsMu: statsMu}
	err := runOne(t, proc, fn)
	close(watcherDone)

	if ts, ok := t.(TransportStatser); ok {
		tstats := ts.TransportStats()
		stats.Transport = &tstats
	}
	if err != nil {
		if abort, ok := err.(abortError); ok {
			cause := abort.err
			if ctxErr := ctx.Err(); ctxErr != nil {
				// The local cancellation tore the run down.
				return stats, ctxErr
			}
			return stats, cause
		}
		return stats, err
	}
	return stats, nil
}

// RunCluster drives every endpoint of a connected transport set (such as
// MemCluster's) through RunRank concurrently — a single-process stand-in
// for a multi-process run, used by tests and fault-injection harnesses. It
// returns each rank's local statistics and error, indexed by rank.
func RunCluster(ctx context.Context, ts []Transport, fn func(*Proc) error) ([]*Stats, []error) {
	stats := make([]*Stats, len(ts))
	errs := make([]error, len(ts))
	var wg sync.WaitGroup
	for r := range ts {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			stats[r], errs[r] = RunRank(ctx, ts[r], fn)
		}(r)
	}
	wg.Wait()
	return stats, errs
}
