package bsp

import (
	"fmt"
	"sort"
)

// The collectives below mirror the MPI operations the paper's Cyclops
// backend relies on (broadcast, reduction, all-to-all redistribution,
// prefix sums). Each collective is implemented directly on top of the BSP
// point-to-point layer so its communication volume and superstep count are
// visible to the accounting in Stats. Programs must call collectives in the
// same order on every rank (SPMD), which is how the reserved tags stay
// aligned.

// Barrier synchronises all ranks without exchanging data.
func Barrier(p *Proc) {
	p.nextCollectiveTag()
	p.Sync()
}

// Bcast distributes root's value to every rank and returns it. One
// superstep; root injects (p-1)·|x| bytes, matching the allreduce-versus-
// pointwise trade-off the paper discusses for MapReduce-style solutions.
func Bcast[T any](p *Proc, root int, x T) T {
	tag := p.nextCollectiveTag()
	if p.Rank() == root {
		for r := 0; r < p.NProcs(); r++ {
			if r != root {
				p.send(r, tag, x)
			}
		}
	}
	p.Sync()
	if p.Rank() == root {
		return x
	}
	msgs := p.RecvAll(tag)
	if len(msgs) != 1 {
		//gas:invariant superstep protocol invariant: exactly the root sends on this tag in this superstep, so one message arrives
		panic(fmt.Sprintf("bsp: Bcast expected 1 message, got %d", len(msgs)))
	}
	return msgs[0].Payload.(T)
}

// Gather collects each rank's value at root. Root receives values indexed
// by sender rank; other ranks receive nil.
func Gather[T any](p *Proc, root int, x T) []T {
	tag := p.nextCollectiveTag()
	if p.Rank() != root {
		p.send(root, tag, x)
	}
	p.Sync()
	if p.Rank() != root {
		return nil
	}
	out := make([]T, p.NProcs())
	out[root] = x
	for _, m := range p.RecvAll(tag) {
		out[m.From] = m.Payload.(T)
	}
	return out
}

// AllGather collects each rank's value on every rank, indexed by rank.
func AllGather[T any](p *Proc, x T) []T {
	tag := p.nextCollectiveTag()
	for r := 0; r < p.NProcs(); r++ {
		if r != p.Rank() {
			p.send(r, tag, x)
		}
	}
	p.Sync()
	out := make([]T, p.NProcs())
	out[p.Rank()] = x
	for _, m := range p.RecvAll(tag) {
		out[m.From] = m.Payload.(T)
	}
	return out
}

// Reduce folds every rank's value at root with op (associative and
// commutative); only root receives the result (ok=true at root).
func Reduce[T any](p *Proc, root int, x T, op func(T, T) T) (T, bool) {
	vals := Gather(p, root, x)
	if p.Rank() != root {
		var zero T
		return zero, false
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = op(acc, v)
	}
	return acc, true
}

// AllReduce folds every rank's value with op and returns the result on all
// ranks. Two supersteps (gather at rank 0, broadcast back).
func AllReduce[T any](p *Proc, x T, op func(T, T) T) T {
	acc, _ := Reduce(p, 0, x, op)
	return Bcast(p, 0, acc)
}

// AllReduceSlice elementwise-folds equal-length slices across ranks; it is
// the reduction used to sum per-layer Gram contributions and per-batch
// column counts (Eq. 4).
func AllReduceSlice[T any](p *Proc, xs []T, op func(T, T) T) []T {
	return AllReduce(p, append([]T(nil), xs...), func(a, b []T) []T {
		if len(a) != len(b) {
			//gas:invariant all ranks fold equal-length slices by the collective's contract; a mismatch is a protocol bug, not input
			panic(fmt.Sprintf("bsp: AllReduceSlice length mismatch %d vs %d", len(a), len(b)))
		}
		out := make([]T, len(a))
		for i := range a {
			out[i] = op(a[i], b[i])
		}
		return out
	})
}

// ReduceSlice elementwise-folds equal-length slices at root only.
func ReduceSlice[T any](p *Proc, root int, xs []T, op func(T, T) T) ([]T, bool) {
	return Reduce(p, root, append([]T(nil), xs...), func(a, b []T) []T {
		if len(a) != len(b) {
			//gas:invariant all ranks fold equal-length slices by the collective's contract; a mismatch is a protocol bug, not input
			panic(fmt.Sprintf("bsp: ReduceSlice length mismatch %d vs %d", len(a), len(b)))
		}
		out := make([]T, len(a))
		for i := range a {
			out[i] = op(a[i], b[i])
		}
		return out
	})
}

// ExScan returns the exclusive prefix fold of x across ranks:
// rank r receives op(x_0, ..., x_{r-1}), and rank 0 receives identity.
// This is the distributed prefix sum used to place nonzero filter entries
// (Section III-C, "a prefix sum of the nonzero entries of f(l)").
func ExScan[T any](p *Proc, x T, op func(T, T) T, identity T) T {
	vals := AllGather(p, x)
	acc := identity
	for r := 0; r < p.Rank(); r++ {
		acc = op(acc, vals[r])
	}
	return acc
}

// AllToAll delivers out[r] to rank r and returns the slice of values this
// rank received, indexed by sender. out must have length NProcs. One
// superstep; this is the transposition/redistribution primitive used by the
// filter construction and by distributed matrix Write.
func AllToAll[T any](p *Proc, out []T) []T {
	if len(out) != p.NProcs() {
		//gas:invariant callers build the bucket slice with make(..., NProcs) from this same world; a mismatch is a caller bug
		panic(fmt.Sprintf("bsp: AllToAll requires %d output buckets, got %d", p.NProcs(), len(out)))
	}
	tag := p.nextCollectiveTag()
	for r := 0; r < p.NProcs(); r++ {
		if r != p.Rank() {
			p.send(r, tag, out[r])
		}
	}
	p.Sync()
	in := make([]T, p.NProcs())
	in[p.Rank()] = out[p.Rank()]
	for _, m := range p.RecvAll(tag) {
		in[m.From] = m.Payload.(T)
	}
	return in
}

// GatherVariable collects variable-size slices from all ranks at root and
// concatenates them in rank order.
func GatherVariable[T any](p *Proc, root int, xs []T) []T {
	parts := Gather(p, root, xs)
	if p.Rank() != root {
		return nil
	}
	var out []T
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// AllGatherVariable collects variable-size slices from all ranks on every
// rank, concatenated in rank order.
func AllGatherVariable[T any](p *Proc, xs []T) []T {
	parts := AllGather(p, xs)
	var out []T
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// SortedAllGatherKeys is a convenience for tests and protocols that need a
// deterministic global ordering of per-rank integer keys.
func SortedAllGatherKeys(p *Proc, keys []int) []int {
	all := AllGatherVariable(p, keys)
	sort.Ints(all)
	return all
}
