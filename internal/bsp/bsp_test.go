package bsp

import (
	"errors"
	"fmt"
	"testing"
)

func TestRunRejectsNonPositiveProcs(t *testing.T) {
	if _, err := Run(0, func(p *Proc) error { return nil }); err == nil {
		t.Error("Run(0) must fail")
	}
	if _, err := Run(-3, func(p *Proc) error { return nil }); err == nil {
		t.Error("Run(-3) must fail")
	}
}

func TestPointToPointDelivery(t *testing.T) {
	const procs = 4
	stats, err := Run(procs, func(p *Proc) error {
		// Ring: each rank sends its rank to the next rank.
		next := (p.Rank() + 1) % p.NProcs()
		p.Send(next, 7, []int64{int64(p.Rank())})
		p.Sync()
		msgs := p.RecvAll(7)
		if len(msgs) != 1 {
			return fmt.Errorf("rank %d: got %d messages, want 1", p.Rank(), len(msgs))
		}
		want := int64((p.Rank() + procs - 1) % procs)
		got := msgs[0].Payload.([]int64)[0]
		if got != want {
			return fmt.Errorf("rank %d: got %d, want %d", p.Rank(), got, want)
		}
		if msgs[0].From != int(want) {
			return fmt.Errorf("rank %d: wrong sender %d", p.Rank(), msgs[0].From)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 1 {
		t.Errorf("Supersteps = %d, want 1", stats.Supersteps)
	}
	if stats.TotalMessages != procs {
		t.Errorf("TotalMessages = %d, want %d", stats.TotalMessages, procs)
	}
	if stats.TotalBytes != procs*8 {
		t.Errorf("TotalBytes = %d, want %d", stats.TotalBytes, procs*8)
	}
	if len(stats.HRelations) != 1 || stats.HRelations[0] != 8 {
		t.Errorf("HRelations = %v, want [8]", stats.HRelations)
	}
}

func TestMessagesNotVisibleBeforeSync(t *testing.T) {
	_, err := Run(2, func(p *Proc) error {
		p.Send(1-p.Rank(), 1, []byte{1, 2, 3})
		if p.PendingMessages() != 0 {
			return errors.New("message visible before superstep boundary")
		}
		p.Sync()
		if got := len(p.RecvAll(1)); got != 1 {
			return fmt.Errorf("got %d messages after sync, want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidDestinationPanicsAndAborts(t *testing.T) {
	_, err := Run(2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(5, 0, []byte{1})
		}
		p.Sync()
		return nil
	})
	if err == nil {
		t.Fatal("expected error from invalid destination")
	}
}

func TestNegativeUserTagPanics(t *testing.T) {
	_, err := Run(1, func(p *Proc) error {
		p.Send(0, -1, nil)
		return nil
	})
	if err == nil {
		t.Fatal("expected error from negative user tag")
	}
}

func TestErrorPropagationAborts(t *testing.T) {
	sentinel := errors.New("rank failure")
	_, err := Run(4, func(p *Proc) error {
		if p.Rank() == 2 {
			return sentinel
		}
		// Other ranks wait at a barrier that rank 2 never reaches; the abort
		// must unblock them.
		Barrier(p)
		Barrier(p)
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the sentinel", err)
	}
}

func TestPanicPropagation(t *testing.T) {
	_, err := Run(3, func(p *Proc) error {
		if p.Rank() == 0 {
			panic("boom")
		}
		Barrier(p)
		return nil
	})
	if err == nil {
		t.Fatal("expected error from panic")
	}
}

func TestEarlyFinishDoesNotDeadlock(t *testing.T) {
	// Rank 0 finishes immediately; the other ranks keep synchronising.
	stats, err := Run(3, func(p *Proc) error {
		if p.Rank() == 0 {
			return nil
		}
		for i := 0; i < 5; i++ {
			Barrier(p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 5 {
		t.Errorf("Supersteps = %d, want 5", stats.Supersteps)
	}
}

func TestFlopsAndMemoryAccounting(t *testing.T) {
	stats, err := Run(4, func(p *Proc) error {
		p.AddFlops(int64(100 * (p.Rank() + 1)))
		p.AddFlops(-5) // ignored
		p.NoteMemory(int64(50 * (p.Rank() + 1)))
		p.NoteMemory(10) // lower than peak, ignored
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxFlops() != 400 {
		t.Errorf("MaxFlops = %d, want 400", stats.MaxFlops())
	}
	if stats.FlopsPerRank[0] != 100 {
		t.Errorf("FlopsPerRank[0] = %d, want 100", stats.FlopsPerRank[0])
	}
	if stats.MaxMemWords() != 200 {
		t.Errorf("MaxMemWords = %d, want 200", stats.MaxMemWords())
	}
}

func TestHRelationIsMaxPerRank(t *testing.T) {
	// Rank 0 sends 8 bytes to each of the 3 other ranks: h = 24 (sender
	// bound), receivers only see 8 each.
	stats, err := Run(4, func(p *Proc) error {
		if p.Rank() == 0 {
			for r := 1; r < 4; r++ {
				p.Send(r, 3, []int64{42})
			}
		}
		p.Sync()
		p.RecvAll(3)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.HRelations) != 1 || stats.HRelations[0] != 24 {
		t.Errorf("HRelations = %v, want [24]", stats.HRelations)
	}
	if stats.BytesSentPerRank[0] != 24 || stats.BytesRecvPerRank[1] != 8 {
		t.Errorf("per-rank accounting wrong: %v / %v", stats.BytesSentPerRank, stats.BytesRecvPerRank)
	}
	if stats.MaxBytesSent() != 24 {
		t.Errorf("MaxBytesSent = %d, want 24", stats.MaxBytesSent())
	}
	if stats.SumHRelations() != 24 {
		t.Errorf("SumHRelations = %d, want 24", stats.SumHRelations())
	}
}

func TestPayloadBytes(t *testing.T) {
	cases := []struct {
		v    any
		want int
	}{
		{nil, 0},
		{[]byte{1, 2, 3}, 3},
		{[]uint64{1, 2}, 16},
		{[]int64{1, 2, 3}, 24},
		{[]int{1}, 8},
		{[]float64{1, 2, 3, 4}, 32},
		{[]int32{1, 2}, 8},
		{[]uint32{1}, 4},
		{[]bool{true, false}, 2},
		{"hello", 5},
		{true, 1},
		{int8(1), 1},
		{uint8(1), 1},
		{int32(1), 4},
		{float32(1), 4},
		{int(7), 8},
		{3.14, 8},
		{sizedPayload{n: 123}, 123},
	}
	for _, c := range cases {
		if got := PayloadBytes(c.v); got != c.want {
			t.Errorf("PayloadBytes(%T) = %d, want %d", c.v, got, c.want)
		}
	}
}

type sizedPayload struct{ n int }

func (s sizedPayload) ByteSize() int { return s.n }

func TestManyProcsStress(t *testing.T) {
	const procs = 64
	stats, err := Run(procs, func(p *Proc) error {
		sum := AllReduce(p, int64(p.Rank()), func(a, b int64) int64 { return a + b })
		want := int64(procs * (procs - 1) / 2)
		if sum != want {
			return fmt.Errorf("rank %d: allreduce sum %d, want %d", p.Rank(), sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Procs != procs {
		t.Errorf("Procs = %d, want %d", stats.Procs, procs)
	}
}
