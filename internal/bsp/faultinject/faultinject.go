// Package faultinject wraps a bsp.Transport with deterministic,
// per-superstep fault injection — dropped, duplicated, and delayed
// messages, plus abrupt connection severing — so the runtime's failure
// semantics can be exercised in tests without real network failures.
//
// Faults are declared as Rules matched by superstep and destination rank.
// The wrapper sits between the rank's Proc and any inner transport (memory
// or TCP); it perturbs only the local rank's view of the exchange, exactly
// like a misbehaving NIC or peer would.
package faultinject

import (
	"fmt"
	"math/rand"
	"time"

	"genomeatscale/internal/bsp"
)

// Mode is the kind of fault a Rule injects.
type Mode int

const (
	// Drop removes matching outgoing messages before they reach the inner
	// transport — the peer never sees them.
	Drop Mode = iota
	// Duplicate sends matching outgoing messages twice (same Seq), the
	// classic at-least-once network pathology.
	Duplicate
	// Delay sleeps Rule.Delay before the matching superstep's exchange,
	// simulating a slow peer; a delay past the transport's step deadline
	// turns this rank into the timeout victim.
	Delay
	// Sever closes the inner transport at the matching superstep, before
	// the exchange — an abrupt process death. The local Exchange returns
	// an error; over TCP, peers observe the closed connections.
	Sever
)

func (m Mode) String() string {
	switch m {
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Delay:
		return "delay"
	case Sever:
		return "sever"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Rule matches faults by superstep and destination rank. Step -1 matches
// every superstep; Peer -1 matches messages to every destination (and is
// the only sensible value for Delay and Sever, which are not per-message).
type Rule struct {
	Mode  Mode
	Step  int           // superstep to fire at; -1 = every superstep
	Peer  int           // destination rank to match; -1 = all
	Delay time.Duration // Delay mode only
}

func (r Rule) matchesStep(step int) bool { return r.Step == -1 || r.Step == step }
func (r Rule) matchesPeer(peer int) bool { return r.Peer == -1 || r.Peer == peer }

// Transport wraps an inner bsp.Transport with fault rules.
type Transport struct {
	inner     bsp.Transport
	rules     []Rule
	rng       *rand.Rand
	maxJitter time.Duration
}

// Wrap returns a transport that applies the given rules on top of inner.
func Wrap(inner bsp.Transport, rules ...Rule) *Transport {
	return &Transport{inner: inner, rules: rules}
}

// WrapSeeded is Wrap plus a seeded pseudo-random extra delay in
// [0, maxJitter) before every superstep exchange — reproducible timing
// perturbation for stress tests. The same seed yields the same schedule.
func WrapSeeded(inner bsp.Transport, seed int64, maxJitter time.Duration, rules ...Rule) *Transport {
	return &Transport{
		inner:     inner,
		rules:     rules,
		rng:       rand.New(rand.NewSource(seed)),
		maxJitter: maxJitter,
	}
}

// Rank returns the inner transport's rank.
func (t *Transport) Rank() int { return t.inner.Rank() }

// NProcs returns the inner transport's rank count.
func (t *Transport) NProcs() int { return t.inner.NProcs() }

// Exchange applies the matching rules — delays and severs first, then
// per-message drops and duplicates — and forwards the perturbed batch to
// the inner transport.
func (t *Transport) Exchange(step int, outgoing []bsp.Message) ([]bsp.Message, error) {
	if t.rng != nil && t.maxJitter > 0 {
		time.Sleep(time.Duration(t.rng.Int63n(int64(t.maxJitter))))
	}
	for _, r := range t.rules {
		if !r.matchesStep(step) {
			continue
		}
		switch r.Mode {
		case Delay:
			time.Sleep(r.Delay)
		case Sever:
			t.inner.Close()
			return nil, fmt.Errorf("faultinject: rank %d severed at superstep %d", t.Rank(), step)
		}
	}
	out := make([]bsp.Message, 0, len(outgoing))
	for _, m := range outgoing {
		dropped := false
		dups := 0
		for _, r := range t.rules {
			if !r.matchesStep(step) || !r.matchesPeer(m.To) {
				continue
			}
			switch r.Mode {
			case Drop:
				dropped = true
			case Duplicate:
				dups++
			}
		}
		if dropped {
			continue
		}
		out = append(out, m)
		for i := 0; i < dups; i++ {
			out = append(out, m)
		}
	}
	return t.inner.Exchange(step, out)
}

// Finish forwards to the inner transport.
func (t *Transport) Finish(steps int) { t.inner.Finish(steps) }

// Abort forwards to the inner transport.
func (t *Transport) Abort(err error) { t.inner.Abort(err) }

// Close forwards to the inner transport.
func (t *Transport) Close() error { return t.inner.Close() }

// TransportStats forwards the inner transport's wire counters when it
// keeps any.
func (t *Transport) TransportStats() bsp.TransportStats {
	if ts, ok := t.inner.(bsp.TransportStatser); ok {
		return ts.TransportStats()
	}
	return bsp.TransportStats{}
}
