package faultinject

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"genomeatscale/internal/bsp"
	"genomeatscale/internal/bsp/tcptransport"
)

// newTCPCluster builds p connected TCP endpoints over loopback with
// pre-bound port-0 listeners.
func newTCPCluster(t *testing.T, p int, opts tcptransport.Options) []bsp.Transport {
	t.Helper()
	listeners := make([]net.Listener, p)
	peers := make([]string, p)
	for r := 0; r < p; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[r] = ln
		peers[r] = ln.Addr().String()
	}
	ts := make([]bsp.Transport, p)
	for r := 0; r < p; r++ {
		o := opts
		o.Listener = listeners[r]
		tr, err := tcptransport.New(r, peers, nil, o)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		ts[r] = tr
	}
	return ts
}

func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d running, want <= %d", runtime.NumGoroutine(), before)
}

// TestKillARankMatrix is the acceptance matrix: for every fault mode ×
// injection superstep, every surviving rank must return a RankFailedError
// identifying the failed rank, within the deadline, with no hangs and no
// goroutine leaks.
//
// Modes:
//
//	sever      — the victim's transport dies abruptly (no FIN, no ABORT)
//	timeout    — the victim's program stalls past the step deadline
//	rankerror  — the victim's program returns an error
//	delay      — a faultinject Delay rule holds the victim's exchange
//	             past the step deadline (slow peer turned fatal)
func TestKillARankMatrix(t *testing.T) {
	const p = 4
	const victim = 2
	const stepTimeout = 400 * time.Millisecond
	const stall = 1500 * time.Millisecond
	modes := []string{"sever", "timeout", "rankerror", "delay"}
	rankErr := errors.New("injected rank failure")

	for _, mode := range modes {
		for _, failStep := range []int{0, 1, 2} {
			t.Run(fmt.Sprintf("%s/step%d", mode, failStep), func(t *testing.T) {
				before := runtime.NumGoroutine()
				ts := newTCPCluster(t, p, tcptransport.Options{StepTimeout: stepTimeout})
				// The victim's transport carries the mode's fault rule;
				// program-level modes (timeout, rankerror) fire in fn.
				switch mode {
				case "sever":
					ts[victim] = Wrap(ts[victim], Rule{Mode: Sever, Step: failStep})
				case "delay":
					ts[victim] = Wrap(ts[victim], Rule{Mode: Delay, Step: failStep, Delay: stall})
				}

				start := time.Now()
				_, errs := bsp.RunCluster(context.Background(), ts, func(proc *bsp.Proc) error {
					for step := 0; step < 4; step++ {
						if proc.Rank() == victim && step == failStep {
							switch mode {
							case "timeout":
								time.Sleep(stall)
							case "rankerror":
								return rankErr
							}
						}
						next := (proc.Rank() + 1) % proc.NProcs()
						proc.Send(next, 1, []int64{int64(step)})
						proc.Sync()
						proc.RecvAll(1)
					}
					return nil
				})
				elapsed := time.Since(start)

				for r := 0; r < p; r++ {
					if r == victim {
						if errs[r] == nil {
							t.Errorf("victim rank %d returned nil error", r)
						}
						continue
					}
					var rfe *bsp.RankFailedError
					if !errors.As(errs[r], &rfe) {
						t.Errorf("rank %d error = %v, want RankFailedError", r, errs[r])
						continue
					}
					if rfe.Rank != victim {
						t.Errorf("rank %d blames rank %d, want %d", r, rfe.Rank, victim)
					}
				}
				if limit := stall + 4*stepTimeout + 5*time.Second; elapsed > limit {
					t.Errorf("run took %v, want < %v", elapsed, limit)
				}
				for _, tr := range ts {
					tr.Close()
				}
				waitForGoroutines(t, before)
			})
		}
	}
}

// TestSlowPeerWithinDeadlineSurvives: a delay smaller than the step
// deadline must not fail the run — slow is not dead.
func TestSlowPeerWithinDeadlineSurvives(t *testing.T) {
	const p = 3
	ts := newTCPCluster(t, p, tcptransport.Options{StepTimeout: 5 * time.Second})
	defer func() {
		for _, tr := range ts {
			tr.Close()
		}
	}()
	ts[1] = Wrap(ts[1], Rule{Mode: Delay, Step: -1, Delay: 100 * time.Millisecond})
	_, errs := bsp.RunCluster(context.Background(), ts, func(proc *bsp.Proc) error {
		for step := 0; step < 2; step++ {
			proc.Send((proc.Rank()+1)%p, 1, []int{step})
			proc.Sync()
			if len(proc.RecvAll(1)) != 1 {
				return errors.New("missing message")
			}
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestDuplicateDelivery: a Duplicate rule delivers the message twice with
// the same Seq — receivers see the at-least-once pathology.
func TestDuplicateDelivery(t *testing.T) {
	ts := bsp.MemCluster(2)
	ts[0] = Wrap(ts[0], Rule{Mode: Duplicate, Step: 0, Peer: 1})
	_, errs := bsp.RunCluster(context.Background(), ts, func(proc *bsp.Proc) error {
		if proc.Rank() == 0 {
			proc.Send(1, 3, []int{7})
		}
		proc.Sync()
		if proc.Rank() == 1 {
			msgs := proc.RecvAll(3)
			if len(msgs) != 2 {
				return fmt.Errorf("got %d copies, want 2", len(msgs))
			}
			if msgs[0].Seq != msgs[1].Seq {
				return fmt.Errorf("duplicate changed Seq: %d vs %d", msgs[0].Seq, msgs[1].Seq)
			}
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestSeededJitterIsDeterministic: the same seed yields the same delay
// schedule.
func TestSeededJitterIsDeterministic(t *testing.T) {
	sample := func(seed int64) []time.Duration {
		tr := WrapSeeded(bsp.MemCluster(1)[0], seed, 50*time.Millisecond)
		var out []time.Duration
		for i := 0; i < 5; i++ {
			t0 := time.Now()
			tr.Exchange(i, nil)
			out = append(out, time.Since(t0).Round(5*time.Millisecond))
		}
		return out
	}
	a, b := sample(42), sample(42)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("step %d: %v vs %v for the same seed", i, a[i], b[i])
		}
	}
}
