package faultinject_test

import (
	"context"
	"fmt"

	"genomeatscale/internal/bsp"
	"genomeatscale/internal/bsp/faultinject"
)

// ExampleWrap drops the broadcast message from rank 0 to rank 2 at
// superstep 0: rank 2 observes a protocol violation (a Bcast with no
// message) and fails, while the other ranks complete — the same
// degraded-network behaviour the TCP transport's failure semantics are
// tested against.
func ExampleWrap() {
	transports := bsp.MemCluster(3)
	// Rank 0's outgoing messages to rank 2 vanish at superstep 0.
	transports[0] = faultinject.Wrap(transports[0],
		faultinject.Rule{Mode: faultinject.Drop, Step: 0, Peer: 2})

	_, errs := bsp.RunCluster(context.Background(), transports, func(p *bsp.Proc) error {
		v := bsp.Bcast(p, 0, p.Rank()*10)
		_ = v
		return nil
	})
	for rank, err := range errs {
		fmt.Printf("rank %d error: %v\n", rank, err)
	}
	// Output:
	// rank 0 error: <nil>
	// rank 1 error: <nil>
	// rank 2 error: bsp: rank 2 panicked: bsp: Bcast expected 1 message, got 0
}
