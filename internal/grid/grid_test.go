package grid

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestChooseSquareGrids(t *testing.T) {
	cases := []struct {
		p, c                     int
		rows, cols, layers, size int
	}{
		{1, 1, 1, 1, 1, 1},
		{4, 1, 2, 2, 1, 4},
		{16, 1, 4, 4, 1, 16},
		{16, 4, 2, 2, 4, 16},
		{64, 4, 4, 4, 4, 64},
		{12, 1, 3, 4, 1, 12},
		{12, 3, 2, 2, 3, 12},
		{7, 1, 1, 7, 1, 7},
		{32, 2, 4, 4, 2, 32},
		{1024, 16, 8, 8, 16, 1024},
	}
	for _, c := range cases {
		g, err := Choose(c.p, c.c)
		if err != nil {
			t.Fatalf("Choose(%d,%d): %v", c.p, c.c, err)
		}
		if g.Rows != c.rows || g.Cols != c.cols || g.Layers != c.layers {
			t.Errorf("Choose(%d,%d) = %s, want %dx%dx%d", c.p, c.c, g, c.rows, c.cols, c.layers)
		}
		if g.Size() != c.size {
			t.Errorf("Choose(%d,%d).Size() = %d, want %d", c.p, c.c, g.Size(), c.size)
		}
	}
}

func TestChooseClampsReplication(t *testing.T) {
	// c > p clamps to p; c not dividing p is reduced.
	g := MustChoose(8, 100)
	if g.Size() != 8 {
		t.Errorf("Size = %d, want 8", g.Size())
	}
	g = MustChoose(10, 4) // 4 does not divide 10 → falls back to 2
	if g.Layers != 2 || g.Size() != 10 {
		t.Errorf("Choose(10,4) = %s", g)
	}
	g = MustChoose(5, 0)
	if g.Layers != 1 || g.Size() != 5 {
		t.Errorf("Choose(5,0) = %s", g)
	}
}

func TestChooseErrorsOnNonPositive(t *testing.T) {
	for _, p := range []int{0, -3} {
		_, err := Choose(p, 1)
		if err == nil {
			t.Fatalf("Choose(%d,1): expected error", p)
		}
		want := fmt.Sprintf("grid: non-positive processor count %d", p)
		if err.Error() != want {
			t.Errorf("Choose(%d,1) error = %q, want %q", p, err, want)
		}
	}
}

func TestMustChoosePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustChoose(0, 1)
}

func TestChooseUsesAllRanksProperty(t *testing.T) {
	f := func(pRaw, cRaw uint16) bool {
		p := int(pRaw%2048) + 1
		c := int(cRaw%64) + 1
		g, err := Choose(p, c)
		return err == nil && g.Size() == p && g.Rows <= g.Cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoordsRankRoundTrip(t *testing.T) {
	g := Grid{Rows: 3, Cols: 4, Layers: 2}
	seen := map[int]bool{}
	for r := 0; r < g.Size(); r++ {
		row, col, layer := g.Coords(r)
		if back := g.Rank(row, col, layer); back != r {
			t.Errorf("rank %d → (%d,%d,%d) → %d", r, row, col, layer, back)
		}
		seen[r] = true
	}
	if len(seen) != 24 {
		t.Errorf("expected 24 distinct ranks, got %d", len(seen))
	}
}

func TestCoordsPanics(t *testing.T) {
	g := Grid{Rows: 2, Cols: 2, Layers: 1}
	for _, bad := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Coords(%d) should panic", bad)
				}
			}()
			g.Coords(bad)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("Rank out of range should panic")
		}
	}()
	g.Rank(2, 0, 0)
}

func TestPeers(t *testing.T) {
	g := Grid{Rows: 2, Cols: 3, Layers: 2}
	lp := g.LayerPeers(1, 2)
	if len(lp) != 2 || lp[0] != g.Rank(1, 2, 0) || lp[1] != g.Rank(1, 2, 1) {
		t.Errorf("LayerPeers = %v", lp)
	}
	rp := g.RowPeers(1, 1)
	if len(rp) != 3 {
		t.Fatalf("RowPeers len = %d", len(rp))
	}
	for c, r := range rp {
		row, col, layer := g.Coords(r)
		if row != 1 || col != c || layer != 1 {
			t.Errorf("RowPeers[%d] = rank %d with coords (%d,%d,%d)", c, r, row, col, layer)
		}
	}
	cp := g.ColPeers(2, 0)
	if len(cp) != 2 {
		t.Fatalf("ColPeers len = %d", len(cp))
	}
	for r, rank := range cp {
		row, col, layer := g.Coords(rank)
		if row != r || col != 2 || layer != 0 {
			t.Errorf("ColPeers[%d] wrong coords (%d,%d,%d)", r, row, col, layer)
		}
	}
}

func TestBlockRangePartitionsExactly(t *testing.T) {
	f := func(nRaw, partsRaw uint16) bool {
		n := int(nRaw % 10000)
		parts := int(partsRaw%50) + 1
		prevHi := 0
		for idx := 0; idx < parts; idx++ {
			lo, hi := BlockRange(n, parts, idx)
			if lo != prevHi || hi < lo {
				return false
			}
			if hi-lo > n/parts+1 || (n >= parts && hi-lo < n/parts) {
				return false
			}
			prevHi = hi
		}
		return prevHi == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBlockRangeKnown(t *testing.T) {
	// 10 items, 3 parts → sizes 4,3,3.
	wants := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	for idx, w := range wants {
		lo, hi := BlockRange(10, 3, idx)
		if lo != w[0] || hi != w[1] {
			t.Errorf("BlockRange(10,3,%d) = [%d,%d), want [%d,%d)", idx, lo, hi, w[0], w[1])
		}
	}
}

func TestBlockRangePanics(t *testing.T) {
	cases := []func(){
		func() { BlockRange(10, 0, 0) },
		func() { BlockRange(10, 3, 3) },
		func() { BlockRange(-1, 3, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestBlockOwnerConsistentWithBlockRange(t *testing.T) {
	f := func(nRaw, partsRaw uint16) bool {
		n := int(nRaw%500) + 1
		parts := int(partsRaw%40) + 1
		for i := 0; i < n; i++ {
			owner := BlockOwner(n, parts, i)
			lo, hi := BlockRange(n, parts, owner)
			if i < lo || i >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBlockOwnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BlockOwner(5, 2, 5)
}

func TestCyclicOwnerAndItems(t *testing.T) {
	if CyclicOwner(4, 7) != 3 {
		t.Error("CyclicOwner wrong")
	}
	items := CyclicItems(10, 4, 1)
	want := []int{1, 5, 9}
	if len(items) != len(want) {
		t.Fatalf("CyclicItems = %v", items)
	}
	for i := range want {
		if items[i] != want[i] {
			t.Errorf("CyclicItems[%d] = %d, want %d", i, items[i], want[i])
		}
	}
	// All items covered exactly once across ranks.
	covered := map[int]int{}
	for r := 0; r < 4; r++ {
		for _, i := range CyclicItems(10, 4, r) {
			covered[i]++
		}
	}
	if len(covered) != 10 {
		t.Errorf("cyclic distribution covered %d items, want 10", len(covered))
	}
	for i, c := range covered {
		if c != 1 {
			t.Errorf("item %d covered %d times", i, c)
		}
	}
}

func TestCyclicPanics(t *testing.T) {
	cases := []func(){
		func() { CyclicOwner(0, 1) },
		func() { CyclicOwner(2, -1) },
		func() { CyclicItems(5, 2, 2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestGridString(t *testing.T) {
	g := Grid{Rows: 4, Cols: 4, Layers: 2}
	if g.String() != "4x4x2" {
		t.Errorf("String = %q", g.String())
	}
}
