// Package grid provides processor-grid layouts and block-distribution
// helpers for the distributed Gram product of SimilarityAtScale.
//
// Section III-C of the paper arranges the p processors as a
// √(p/c) × √(p/c) × c grid: each of the c layers computes 1/c of the
// contributions to B on a 2D √(p/c) × √(p/c) subgrid, and a reduction over
// layers sums them. This package computes such factorisations (including
// non-square fallbacks when p/c is not a perfect square), maps ranks to
// grid coordinates, and splits index ranges into contiguous blocks.
package grid

import "fmt"

// Grid describes a 3D processor grid with Rows × Cols processors per layer
// and Layers replication layers; Rows*Cols*Layers ranks are used in total.
type Grid struct {
	Rows, Cols, Layers int
}

// Size returns the total number of ranks the grid uses.
func (g Grid) Size() int { return g.Rows * g.Cols * g.Layers }

// String implements fmt.Stringer.
func (g Grid) String() string {
	return fmt.Sprintf("%dx%dx%d", g.Rows, g.Cols, g.Layers)
}

// Coords maps a rank in [0, Size) to (row, col, layer) coordinates. Ranks
// are laid out layer-major, then row-major within a layer.
func (g Grid) Coords(rank int) (row, col, layer int) {
	if rank < 0 || rank >= g.Size() {
		//gas:invariant ranks come from the BSP runtime, which only mints ranks in [0, NProcs); an out-of-range rank is runtime corruption, not user input
		panic(fmt.Sprintf("grid: rank %d out of range for grid %s", rank, g))
	}
	layer = rank / (g.Rows * g.Cols)
	rem := rank % (g.Rows * g.Cols)
	return rem / g.Cols, rem % g.Cols, layer
}

// Rank maps (row, col, layer) coordinates to a rank.
func (g Grid) Rank(row, col, layer int) int {
	if row < 0 || row >= g.Rows || col < 0 || col >= g.Cols || layer < 0 || layer >= g.Layers {
		//gas:invariant coordinates are produced by Coords/peer iteration over this same grid; out-of-range coords indicate a caller bug, never external input
		panic(fmt.Sprintf("grid: coords (%d,%d,%d) out of range for grid %s", row, col, layer, g))
	}
	return layer*g.Rows*g.Cols + row*g.Cols + col
}

// LayerPeers returns the ranks with the same (row, col) across all layers;
// these are the ranks that participate in the inter-layer reduction of the
// 3D algorithm.
func (g Grid) LayerPeers(row, col int) []int {
	out := make([]int, g.Layers)
	for l := 0; l < g.Layers; l++ {
		out[l] = g.Rank(row, col, l)
	}
	return out
}

// RowPeers returns the ranks sharing grid row `row` within layer `layer`.
func (g Grid) RowPeers(row, layer int) []int {
	out := make([]int, g.Cols)
	for c := 0; c < g.Cols; c++ {
		out[c] = g.Rank(row, c, layer)
	}
	return out
}

// ColPeers returns the ranks sharing grid column `col` within layer `layer`.
func (g Grid) ColPeers(col, layer int) []int {
	out := make([]int, g.Rows)
	for r := 0; r < g.Rows; r++ {
		out[r] = g.Rank(r, col, layer)
	}
	return out
}

// Choose picks a processor grid for p ranks and requested replication
// factor c, following the paper's √(p/c) × √(p/c) × c prescription. The
// replication factor is clamped to [1, p] and reduced until it divides p;
// the per-layer grid is the most-square factorisation of p/c. Every rank is
// used: Rows*Cols*Layers == p whenever p ≥ 1. The processor count is the
// one user-derived shape here (a -procs flag or a launcher's world size),
// so a non-positive p is reported as an error rather than a panic.
func Choose(p, c int) (Grid, error) {
	if p <= 0 {
		return Grid{}, fmt.Errorf("grid: non-positive processor count %d", p)
	}
	if c < 1 {
		c = 1
	}
	if c > p {
		c = p
	}
	for p%c != 0 {
		c--
	}
	perLayer := p / c
	rows, cols := mostSquareFactors(perLayer)
	return Grid{Rows: rows, Cols: cols, Layers: c}, nil
}

// MustChoose is Choose for callers whose processor count is structurally
// positive (a validated Options, a live BSP world). It panics on the error
// Choose would return.
func MustChoose(p, c int) Grid {
	g, err := Choose(p, c)
	if err != nil {
		//gas:invariant callers pass a validated or runtime-provided positive processor count; see Choose for the error-returning form
		panic(err)
	}
	return g
}

// mostSquareFactors returns the factor pair (r, c) of n with r ≤ c and r as
// close to √n as possible.
func mostSquareFactors(n int) (int, int) {
	if n <= 0 {
		//gas:invariant only reachable from Choose after it validates p >= 1 and clamps c to a divisor of p, so n = p/c >= 1 always holds
		panic(fmt.Sprintf("grid: non-positive factorisation target %d", n))
	}
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best, n / best
}

// BlockRange splits n items into `parts` contiguous blocks and returns the
// half-open range [lo, hi) owned by block idx. Blocks differ in size by at
// most one item (the first n%parts blocks get the extra item).
func BlockRange(n, parts, idx int) (lo, hi int) {
	if parts <= 0 {
		//gas:invariant parts is a grid dimension from Choose, which only builds grids with positive Rows/Cols/Layers
		panic(fmt.Sprintf("grid: non-positive part count %d", parts))
	}
	if idx < 0 || idx >= parts {
		//gas:invariant idx is a grid coordinate from Coords over the same grid; a mismatch is a caller bug in index math, not input
		panic(fmt.Sprintf("grid: block index %d out of range [0,%d)", idx, parts))
	}
	if n < 0 {
		//gas:invariant item counts are slice lengths or validated sample counts, never negative on any input-reachable path
		panic(fmt.Sprintf("grid: negative item count %d", n))
	}
	base := n / parts
	extra := n % parts
	lo = idx*base + min(idx, extra)
	size := base
	if idx < extra {
		size++
	}
	return lo, lo + size
}

// BlockOwner returns the block index owning item i when n items are split
// into `parts` blocks by BlockRange.
func BlockOwner(n, parts, i int) int {
	if i < 0 || i >= n {
		//gas:invariant i is an in-range item index produced by iteration over the same n items; out-of-range means broken index math upstream
		panic(fmt.Sprintf("grid: item %d out of range [0,%d)", i, n))
	}
	base := n / parts
	extra := n % parts
	// First `extra` blocks have size base+1.
	cutoff := extra * (base + 1)
	if i < cutoff {
		return i / (base + 1)
	}
	if base == 0 {
		// All remaining blocks are empty; owner is the last non-empty block.
		return extra - 1
	}
	return extra + (i-cutoff)/base
}

// CyclicOwner returns the owner of item i under a cyclic (round-robin)
// distribution over `parts` owners, the distribution used for reading input
// files ("for(i = my_rank; i < n; i += num_procs)" in Listing 2).
func CyclicOwner(parts, i int) int {
	if parts <= 0 {
		//gas:invariant parts is NProcs of a live BSP world, which is positive by construction
		panic(fmt.Sprintf("grid: non-positive part count %d", parts))
	}
	if i < 0 {
		//gas:invariant item indices come from loops over [0, n); a negative index is a caller bug
		panic(fmt.Sprintf("grid: negative item %d", i))
	}
	return i % parts
}

// CyclicItems returns the items in [0, n) owned by `rank` under a cyclic
// distribution over `parts` owners.
func CyclicItems(n, parts, rank int) []int {
	if rank < 0 || rank >= parts {
		//gas:invariant ranks come from the BSP runtime and are always in [0, NProcs)
		panic(fmt.Sprintf("grid: rank %d out of range [0,%d)", rank, parts))
	}
	var out []int
	for i := rank; i < n; i += parts {
		out = append(out, i)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
