package bitutil

// This file is the slab popcount kernel rung of the dense×dense Gram path:
// portable unrolled kernels plus a runtime-dispatched assembly
// implementation (AVX-512 VPOPCNTQ on capable amd64 hosts, see
// popcnt_amd64.s). The portable 8-way kernel is the mandatory fallback and
// the semantic reference: the dispatched kernel must be byte-identical to
// it on every input (pinned by the differential tests and the fuzz target
// in popcount_test.go).
//
// Selection order:
//
//  1. builds with `-tags noasm` (or non-amd64 targets) never register an
//     assembly kernel — the portable 8-way kernel is the only choice;
//  2. on amd64 the init in popcnt_amd64.go probes CPUID for
//     AVX-512F + AVX-512VPOPCNTDQ and OS zmm-state support and, when all
//     are present, installs the assembly kernel;
//  3. setting GENOMEATSCALE_NOASM (to any non-empty value) or calling
//     ForcePortable() keeps/restores the portable kernel at runtime, which
//     is how benchmarks measure the asm-vs-portable delta on one binary.

import (
	"math/bits"
	"sync/atomic"
)

// kernelImpl is one installed slab-kernel implementation.
type kernelImpl struct {
	name     string
	andSlice func(a, b []uint64) int
	slice    func(xs []uint64) int
}

var portableImpl = &kernelImpl{
	name:     "portable-8way",
	andSlice: PopcountAndSlice8,
	slice:    PopcountSlice8,
}

// activeImpl is the kernel the dispatched entry points use. It is set at
// package init (after CPU feature detection) and by ForcePortable; reads
// go through an atomic pointer so tests and benchmarks may switch kernels
// while other goroutines compute. Package init functions run in file-name
// order, so the amd64 detection init (popcnt_amd64.go) may have installed
// the assembly kernel before this init runs — hence the nil guard.
var activeImpl atomic.Pointer[kernelImpl]

func init() {
	if activeImpl.Load() == nil {
		activeImpl.Store(portableImpl)
	}
}

// Kernel reports the name of the slab popcount kernel the dispatched entry
// points currently use: "portable-8way" or "avx512-vpopcntq".
func Kernel() string { return activeImpl.Load().name }

// ForcePortable switches the dispatched entry points to the portable 8-way
// kernel, regardless of CPU capabilities. Benchmarks use it to measure the
// portable baseline on hosts where the assembly kernel was auto-installed;
// EnableBestKernel restores the auto-detected choice.
func ForcePortable() { activeImpl.Store(portableImpl) }

// PopcountAndSlice4 is the previous-generation 4-way unrolled
// AND+popcount kernel, retained as the benchmark baseline the dispatched
// kernels are compared against (cmd/benchkernels records the speedup).
// Slices of unequal length are handled by treating missing words as zero.
func PopcountAndSlice4(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var a0, a1, a2, a3 int
	i := 0
	for ; i+4 <= n; i += 4 {
		a0 += bits.OnesCount64(a[i] & b[i])
		a1 += bits.OnesCount64(a[i+1] & b[i+1])
		a2 += bits.OnesCount64(a[i+2] & b[i+2])
		a3 += bits.OnesCount64(a[i+3] & b[i+3])
	}
	for ; i < n; i++ {
		a0 += bits.OnesCount64(a[i] & b[i])
	}
	return a0 + a1 + a2 + a3
}

// PopcountAndSlice8 is the portable 8-way unrolled AND+popcount kernel:
// eight independent accumulator chains keep eight POPCNT results in flight
// per iteration, hiding the instruction latency that serialises narrower
// unrollings. It is the mandatory fallback and the semantic reference of
// the dispatched kernel. Slices of unequal length are handled by treating
// missing words as zero.
func PopcountAndSlice8(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var a0, a1, a2, a3, a4, a5, a6, a7 int
	i := 0
	for ; i+8 <= n; i += 8 {
		a0 += bits.OnesCount64(a[i] & b[i])
		a1 += bits.OnesCount64(a[i+1] & b[i+1])
		a2 += bits.OnesCount64(a[i+2] & b[i+2])
		a3 += bits.OnesCount64(a[i+3] & b[i+3])
		a4 += bits.OnesCount64(a[i+4] & b[i+4])
		a5 += bits.OnesCount64(a[i+5] & b[i+5])
		a6 += bits.OnesCount64(a[i+6] & b[i+6])
		a7 += bits.OnesCount64(a[i+7] & b[i+7])
	}
	for ; i < n; i++ {
		a0 += bits.OnesCount64(a[i] & b[i])
	}
	return a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7
}

// PopcountSlice8 is the 8-way unrolled single-slab popcount, the portable
// form of the dense-column cardinality kernel (bitmat.ColPopcounts).
func PopcountSlice8(xs []uint64) int {
	var a0, a1, a2, a3, a4, a5, a6, a7 int
	i := 0
	for ; i+8 <= len(xs); i += 8 {
		a0 += bits.OnesCount64(xs[i])
		a1 += bits.OnesCount64(xs[i+1])
		a2 += bits.OnesCount64(xs[i+2])
		a3 += bits.OnesCount64(xs[i+3])
		a4 += bits.OnesCount64(xs[i+4])
		a5 += bits.OnesCount64(xs[i+5])
		a6 += bits.OnesCount64(xs[i+6])
		a7 += bits.OnesCount64(xs[i+7])
	}
	for ; i < len(xs); i++ {
		a0 += bits.OnesCount64(xs[i])
	}
	return a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7
}
