package bitutil

import (
	"encoding/binary"
	"math/bits"
	"math/rand"
	"testing"
)

// refPopcountAnd is the trivially-correct scalar reference every kernel is
// pinned against.
func refPopcountAnd(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += bits.OnesCount64(a[i] & b[i])
	}
	return total
}

func refPopcount(xs []uint64) int {
	total := 0
	for _, x := range xs {
		total += bits.OnesCount64(x)
	}
	return total
}

// kernelsUnderTest enumerates every AND+popcount implementation reachable
// in this build: the 4-way reference baseline, the portable 8-way kernel,
// the dispatched entry point, and (on capable amd64 hosts) the assembly
// kernel directly.
func kernelsUnderTest() map[string]func(a, b []uint64) int {
	ks := map[string]func(a, b []uint64) int{
		"portable-4way": PopcountAndSlice4,
		"portable-8way": PopcountAndSlice8,
		"dispatched":    PopcountAndSlice,
	}
	for name, fn := range asmKernels() {
		ks[name] = fn
	}
	return ks
}

func randSlabs(rng *rand.Rand, n int, density float64) (a, b []uint64) {
	a = make([]uint64, n)
	b = make([]uint64, n)
	for i := range a {
		switch {
		case rng.Float64() < density:
			a[i] = rng.Uint64()
			b[i] = rng.Uint64()
		case rng.Intn(2) == 0:
			a[i] = rng.Uint64()
		default:
			b[i] = rng.Uint64()
		}
	}
	return a, b
}

// TestPopcountKernelsDifferential pins every kernel byte-identical to the
// scalar reference across aligned and misaligned-length slabs, equal and
// unequal operand lengths, and all-zero / all-ones extremes. The length
// sweep deliberately straddles every unrolling boundary (4, 8, 16) and the
// scalar tail.
func TestPopcountKernelsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kernels := kernelsUnderTest()
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 23, 24, 31, 32, 33, 63, 64, 65, 127, 128, 129, 1000, 1024}
	for _, n := range lengths {
		for _, density := range []float64{0, 0.5, 1} {
			a, b := randSlabs(rng, n, density)
			if density == 1 {
				for i := range a {
					a[i] = ^uint64(0)
					b[i] = ^uint64(0)
				}
			}
			want := refPopcountAnd(a, b)
			for name, fn := range kernels {
				if got := fn(a, b); got != want {
					t.Fatalf("kernel %s: n=%d density=%g: got %d, want %d", name, n, density, got, want)
				}
			}
			// Unequal lengths: the shorter operand governs.
			if n > 0 {
				short := a[:rng.Intn(n)]
				want := refPopcountAnd(short, b)
				for name, fn := range kernels {
					if got := fn(short, b); got != want {
						t.Fatalf("kernel %s: unequal lengths %d/%d: got %d, want %d", name, len(short), n, got, want)
					}
					if got := fn(b, short); got != want {
						t.Fatalf("kernel %s: unequal lengths %d/%d (swapped): got %d, want %d", name, n, len(short), got, want)
					}
				}
			}
		}
	}
}

// TestPopcountKernelsMisalignedBase verifies the kernels on slabs whose
// base address is offset from the original allocation — the assembly path
// must not assume 64-byte (or even 8-word) alignment.
func TestPopcountKernelsMisalignedBase(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	kernels := kernelsUnderTest()
	backing := make([]uint64, 1024)
	for i := range backing {
		backing[i] = rng.Uint64()
	}
	for off := 0; off < 9; off++ {
		for _, n := range []int{0, 1, 8, 16, 33, 100, 256} {
			a := backing[off : off+n]
			b := backing[off+n : off+2*n]
			want := refPopcountAnd(a, b)
			for name, fn := range kernels {
				if got := fn(a, b); got != want {
					t.Fatalf("kernel %s: off=%d n=%d: got %d, want %d", name, off, n, got, want)
				}
			}
		}
	}
}

// TestPopcountSliceKernels pins the single-slab kernels (PopcountSlice8,
// the dispatched PopcountSlice, and the asm path where present).
func TestPopcountSliceKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	kernels := map[string]func([]uint64) int{
		"portable-8way": PopcountSlice8,
		"dispatched":    PopcountSlice,
	}
	for name, fn := range asmSliceKernels() {
		kernels[name] = fn
	}
	for _, n := range []int{0, 1, 7, 8, 9, 16, 17, 64, 65, 1000} {
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = rng.Uint64()
		}
		want := refPopcount(xs)
		for name, fn := range kernels {
			if got := fn(xs); got != want {
				t.Fatalf("kernel %s: n=%d: got %d, want %d", name, n, got, want)
			}
		}
	}
}

// TestForcePortable exercises the runtime kernel switch: after
// ForcePortable the dispatched entry points must report and use the
// portable kernel; EnableBestKernel restores the auto-detected choice.
func TestForcePortable(t *testing.T) {
	orig := Kernel()
	defer EnableBestKernel()
	ForcePortable()
	if Kernel() != "portable-8way" {
		t.Fatalf("after ForcePortable: kernel %q", Kernel())
	}
	a := []uint64{0xdeadbeef, ^uint64(0), 0}
	b := []uint64{0xffffffff, 0x0f0f0f0f, 42}
	if got, want := PopcountAndSlice(a, b), refPopcountAnd(a, b); got != want {
		t.Fatalf("portable dispatch: got %d, want %d", got, want)
	}
	if restored := EnableBestKernel(); restored != orig {
		t.Fatalf("EnableBestKernel restored %q, initial kernel was %q", restored, orig)
	}
}

// FuzzPopcountAndSlice feeds arbitrary byte strings (split into two
// arbitrarily-sized word slabs) through every kernel and requires exact
// agreement with the scalar reference — the differential fuzz pinning of
// the asm kernel against the portable one.
func FuzzPopcountAndSlice(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xff}, uint8(1))
	f.Add(binary.LittleEndian.AppendUint64(nil, ^uint64(0)), uint8(4))
	seed := make([]byte, 8*35)
	for i := range seed {
		seed[i] = byte(i * 17)
	}
	f.Add(seed, uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, split uint8) {
		words := make([]uint64, len(data)/8)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(data[i*8:])
		}
		cut := 0
		if len(words) > 0 {
			cut = int(split) % (len(words) + 1)
		}
		a, b := words[:cut], words[cut:]
		want := refPopcountAnd(a, b)
		for name, fn := range kernelsUnderTest() {
			if got := fn(a, b); got != want {
				t.Fatalf("kernel %s: got %d, want %d (lens %d/%d)", name, got, want, len(a), len(b))
			}
		}
		wantSlice := refPopcount(words)
		if got := PopcountSlice(words); got != wantSlice {
			t.Fatalf("PopcountSlice: got %d, want %d", got, wantSlice)
		}
	})
}
