// Package bitutil provides low-level bit manipulation helpers used by the
// bitmask-compression stage of SimilarityAtScale (Section III-B of the
// paper): population counts, word packing, and a growable bitset.
package bitutil

import (
	"fmt"
	"math/bits"
)

// WordBits is the number of bits in a packing word. The paper considers
// b = 32 or b = 64; we pack into 64-bit words and expose narrower logical
// widths through the mask helpers below.
const WordBits = 64

// Popcount returns the number of set bits in x.
func Popcount(x uint64) int {
	return bits.OnesCount64(x)
}

// PopcountAnd returns popcount(x & y), the core scalar operation of the
// Jaccard semiring kernel (Eq. 7 in the paper).
func PopcountAnd(x, y uint64) int {
	return bits.OnesCount64(x & y)
}

// PopcountSlice returns the total number of set bits across the slice. It
// dispatches to the best installed slab kernel (see Kernel): AVX-512
// VPOPCNTQ where available, the portable 8-way unrolling otherwise.
func PopcountSlice(xs []uint64) int {
	return activeImpl.Load().slice(xs)
}

// PopcountAndSlice returns sum_i popcount(a[i] & b[i]) for the common
// prefix of a and b — the dense×dense Gram kernel of the popcount-AND
// semiring. Slices of unequal length are handled by treating the missing
// words as zero. It dispatches to the best installed slab kernel (see
// Kernel): AVX-512 VPOPCNTQ where available, the portable 8-way unrolling
// otherwise; every kernel returns bit-identical results.
func PopcountAndSlice(a, b []uint64) int {
	return activeImpl.Load().andSlice(a, b)
}

// WordsFor returns the number of b-bit words needed to hold n bits.
func WordsFor(n int, b int) int {
	if b <= 0 {
		//gas:invariant word widths are the package's own WordBits or a validated packing width; this guards direct misuse
		panic(fmt.Sprintf("bitutil: non-positive word width %d", b))
	}
	return (n + b - 1) / b
}

// MaskWidth returns a mask with the low b bits set. b must be in [1,64].
func MaskWidth(b int) uint64 {
	if b <= 0 || b > 64 {
		//gas:invariant mask widths are validated packing widths in [1,64] wherever derived from configuration
		panic(fmt.Sprintf("bitutil: invalid mask width %d", b))
	}
	if b == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(b)) - 1
}

// Bitset is a simple growable bitset. The zero value is an empty set.
type Bitset struct {
	words []uint64
	n     int // logical length in bits
}

// NewBitset returns a bitset able to hold n bits, all initially zero.
func NewBitset(n int) *Bitset {
	if n < 0 {
		//gas:invariant bitset lengths are derived from attribute counts and slice lengths, never negative on input-reachable paths
		panic("bitutil: negative bitset length")
	}
	return &Bitset{words: make([]uint64, WordsFor(n, WordBits)), n: n}
}

// Len returns the logical length of the bitset in bits.
func (s *Bitset) Len() int { return s.n }

// grow ensures the bitset can address bit i.
func (s *Bitset) grow(i int) {
	if i < s.n {
		return
	}
	s.n = i + 1
	need := WordsFor(s.n, WordBits)
	for len(s.words) < need {
		s.words = append(s.words, 0)
	}
}

// Set sets bit i, growing the bitset if needed.
func (s *Bitset) Set(i int) {
	if i < 0 {
		//gas:invariant bit indices come from loops over [0, n); a negative index is a caller bug
		panic("bitutil: negative bit index")
	}
	s.grow(i)
	s.words[i/WordBits] |= 1 << uint(i%WordBits)
}

// Clear clears bit i. Clearing beyond the current length is a no-op.
func (s *Bitset) Clear(i int) {
	if i < 0 {
		//gas:invariant bit indices come from loops over [0, n); a negative index is a caller bug
		panic("bitutil: negative bit index")
	}
	if i >= s.n {
		return
	}
	s.words[i/WordBits] &^= 1 << uint(i%WordBits)
}

// Get reports whether bit i is set. Bits beyond the length read as false.
func (s *Bitset) Get(i int) bool {
	if i < 0 {
		//gas:invariant bit indices come from loops over [0, n); a negative index is a caller bug
		panic("bitutil: negative bit index")
	}
	if i >= s.n {
		return false
	}
	return s.words[i/WordBits]&(1<<uint(i%WordBits)) != 0
}

// Count returns the number of set bits.
func (s *Bitset) Count() int {
	return PopcountSlice(s.words)
}

// Words exposes the underlying packed words (read-only use expected).
func (s *Bitset) Words() []uint64 { return s.words }

// Union sets s to the union of s and t.
func (s *Bitset) Union(t *Bitset) {
	if t.n > s.n {
		s.grow(t.n - 1)
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectCount returns |s ∩ t| without materialising the intersection.
func (s *Bitset) IntersectCount(t *Bitset) int {
	return PopcountAndSlice(s.words, t.words)
}

// NextSet returns the index of the first set bit at or after i, and true,
// or (0, false) if there is none.
func (s *Bitset) NextSet(i int) (int, bool) {
	if i < 0 {
		i = 0
	}
	for i < s.n {
		w := s.words[i/WordBits] >> uint(i%WordBits)
		if w != 0 {
			j := i + bits.TrailingZeros64(w)
			if j >= s.n {
				return 0, false
			}
			return j, true
		}
		i = (i/WordBits + 1) * WordBits
	}
	return 0, false
}

// Indices returns all set bit positions in increasing order.
func (s *Bitset) Indices() []int {
	out := make([]int, 0, s.Count())
	for i, ok := s.NextSet(0); ok; i, ok = s.NextSet(i + 1) {
		out = append(out, i)
	}
	return out
}

// PackBits packs a slice of booleans into 64-bit words (LSB-first).
func PackBits(bitsIn []bool) []uint64 {
	out := make([]uint64, WordsFor(len(bitsIn), WordBits))
	for i, b := range bitsIn {
		if b {
			out[i/WordBits] |= 1 << uint(i%WordBits)
		}
	}
	return out
}

// UnpackBits expands packed words into n booleans.
func UnpackBits(words []uint64, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		w := i / WordBits
		if w < len(words) && words[w]&(1<<uint(i%WordBits)) != 0 {
			out[i] = true
		}
	}
	return out
}

// PackIndices packs a sorted (or unsorted) list of set-bit indices drawn
// from [0, n) into 64-bit words.
func PackIndices(indices []int, n int) []uint64 {
	out := make([]uint64, WordsFor(n, WordBits))
	for _, i := range indices {
		if i < 0 || i >= n {
			//gas:invariant indices are set-bit positions produced against the same n by the caller; out-of-range is a caller bug
			panic(fmt.Sprintf("bitutil: index %d out of range [0,%d)", i, n))
		}
		out[i/WordBits] |= 1 << uint(i%WordBits)
	}
	return out
}

// ReverseBits64 reverses the bit order of x. Used by hashing helpers.
func ReverseBits64(x uint64) uint64 {
	return bits.Reverse64(x)
}

// Log2Ceil returns ceil(log2(x)) for x >= 1.
func Log2Ceil(x uint64) int {
	if x == 0 {
		//gas:invariant documented contract: x >= 1; callers pass counts that were already checked positive
		panic("bitutil: Log2Ceil(0)")
	}
	if x == 1 {
		return 0
	}
	return 64 - bits.LeadingZeros64(x-1)
}

// NextPow2 returns the smallest power of two >= x (x >= 1).
func NextPow2(x uint64) uint64 {
	if x == 0 {
		return 1
	}
	return uint64(1) << uint(Log2Ceil(x))
}
