package bitutil

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPopcount(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{0xFFFFFFFFFFFFFFFF, 64},
		{0x8000000000000000, 1},
		{0xAAAAAAAAAAAAAAAA, 32},
		{0x0123456789ABCDEF, 32},
	}
	for _, c := range cases {
		if got := Popcount(c.x); got != c.want {
			t.Errorf("Popcount(%#x) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestPopcountAnd(t *testing.T) {
	if got := PopcountAnd(0xFF00, 0x0FF0); got != 4 {
		t.Errorf("PopcountAnd(0xFF00,0x0FF0) = %d, want 4", got)
	}
	if got := PopcountAnd(0, ^uint64(0)); got != 0 {
		t.Errorf("PopcountAnd(0,~0) = %d, want 0", got)
	}
}

func TestPopcountAndProperty(t *testing.T) {
	f := func(x, y uint64) bool {
		return PopcountAnd(x, y) == bits.OnesCount64(x&y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPopcountSlices(t *testing.T) {
	a := []uint64{0xF, 0xF0, 0}
	b := []uint64{0x3, 0xFF}
	if got := PopcountSlice(a); got != 8 {
		t.Errorf("PopcountSlice = %d, want 8", got)
	}
	if got := PopcountAndSlice(a, b); got != 2+4 {
		t.Errorf("PopcountAndSlice = %d, want 6", got)
	}
	// Unequal lengths treat missing words as zero: symmetric.
	if PopcountAndSlice(a, b) != PopcountAndSlice(b, a) {
		t.Error("PopcountAndSlice not symmetric for unequal lengths")
	}
}

func TestWordsFor(t *testing.T) {
	cases := []struct{ n, b, want int }{
		{0, 64, 0}, {1, 64, 1}, {64, 64, 1}, {65, 64, 2}, {128, 64, 2},
		{129, 64, 3}, {31, 32, 1}, {32, 32, 1}, {33, 32, 2},
	}
	for _, c := range cases {
		if got := WordsFor(c.n, c.b); got != c.want {
			t.Errorf("WordsFor(%d,%d) = %d, want %d", c.n, c.b, got, c.want)
		}
	}
}

func TestWordsForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WordsFor(1,0) did not panic")
		}
	}()
	WordsFor(1, 0)
}

func TestMaskWidth(t *testing.T) {
	if MaskWidth(64) != ^uint64(0) {
		t.Error("MaskWidth(64) wrong")
	}
	if MaskWidth(1) != 1 {
		t.Error("MaskWidth(1) wrong")
	}
	if MaskWidth(8) != 0xFF {
		t.Error("MaskWidth(8) wrong")
	}
}

func TestMaskWidthPanics(t *testing.T) {
	for _, b := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MaskWidth(%d) did not panic", b)
				}
			}()
			MaskWidth(b)
		}()
	}
}

func TestBitsetBasic(t *testing.T) {
	s := NewBitset(100)
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(99)
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
	for _, i := range []int{0, 63, 64, 99} {
		if !s.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if s.Get(1) || s.Get(65) {
		t.Error("unexpected set bit")
	}
	s.Clear(63)
	if s.Get(63) {
		t.Error("bit 63 should be cleared")
	}
	if s.Count() != 3 {
		t.Errorf("Count after clear = %d, want 3", s.Count())
	}
}

func TestBitsetGrow(t *testing.T) {
	var s Bitset // zero value usable
	s.Set(500)
	if !s.Get(500) {
		t.Error("bit 500 should be set after growth")
	}
	if s.Len() != 501 {
		t.Errorf("Len = %d, want 501", s.Len())
	}
	if s.Get(1000) {
		t.Error("out-of-range Get should be false")
	}
	s.Clear(2000) // no-op beyond length
	if s.Len() != 501 {
		t.Error("Clear beyond length must not grow")
	}
}

func TestBitsetUnionIntersect(t *testing.T) {
	a := NewBitset(200)
	b := NewBitset(200)
	for i := 0; i < 200; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 200; i += 3 {
		b.Set(i)
	}
	want := 0
	for i := 0; i < 200; i++ {
		if i%2 == 0 && i%3 == 0 {
			want++
		}
	}
	if got := a.IntersectCount(b); got != want {
		t.Errorf("IntersectCount = %d, want %d", got, want)
	}
	a.Union(b)
	wantU := 0
	for i := 0; i < 200; i++ {
		if i%2 == 0 || i%3 == 0 {
			wantU++
		}
	}
	if got := a.Count(); got != wantU {
		t.Errorf("union count = %d, want %d", got, wantU)
	}
}

func TestBitsetNextSetAndIndices(t *testing.T) {
	s := NewBitset(300)
	idx := []int{3, 64, 65, 190, 299}
	for _, i := range idx {
		s.Set(i)
	}
	got := s.Indices()
	if len(got) != len(idx) {
		t.Fatalf("Indices len = %d, want %d", len(got), len(idx))
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Errorf("Indices[%d] = %d, want %d", i, got[i], idx[i])
		}
	}
	if _, ok := s.NextSet(300); ok {
		t.Error("NextSet past end should report false")
	}
	if j, ok := s.NextSet(-5); !ok || j != 3 {
		t.Errorf("NextSet(-5) = %d,%v want 3,true", j, ok)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(300)
		in := make([]bool, n)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		words := PackBits(in)
		out := UnpackBits(words, n)
		for i := range in {
			if in[i] != out[i] {
				t.Fatalf("trial %d: bit %d mismatch", trial, i)
			}
		}
	}
}

func TestPackIndices(t *testing.T) {
	words := PackIndices([]int{0, 5, 64, 127}, 128)
	if PopcountSlice(words) != 4 {
		t.Error("PackIndices wrong popcount")
	}
	if words[0]&1 == 0 || words[0]&(1<<5) == 0 {
		t.Error("low word wrong")
	}
	if words[1]&1 == 0 || words[1]&(1<<63) == 0 {
		t.Error("high word wrong")
	}
}

func TestPackIndicesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range index")
		}
	}()
	PackIndices([]int{128}, 128)
}

func TestLog2CeilNextPow2(t *testing.T) {
	cases := []struct {
		x    uint64
		log  int
		pow2 uint64
	}{
		{1, 0, 1}, {2, 1, 2}, {3, 2, 4}, {4, 2, 4}, {5, 3, 8},
		{1023, 10, 1024}, {1024, 10, 1024}, {1025, 11, 2048},
	}
	for _, c := range cases {
		if got := Log2Ceil(c.x); got != c.log {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.x, got, c.log)
		}
		if got := NextPow2(c.x); got != c.pow2 {
			t.Errorf("NextPow2(%d) = %d, want %d", c.x, got, c.pow2)
		}
	}
	if NextPow2(0) != 1 {
		t.Error("NextPow2(0) should be 1")
	}
}

func TestBitsetIntersectCountMatchesBruteForce(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := NewBitset(1 << 16)
		b := NewBitset(1 << 16)
		inA := map[int]bool{}
		inB := map[int]bool{}
		for _, x := range xs {
			a.Set(int(x))
			inA[int(x)] = true
		}
		for _, y := range ys {
			b.Set(int(y))
			inB[int(y)] = true
		}
		want := 0
		for k := range inA {
			if inB[k] {
				want++
			}
		}
		return a.IntersectCount(b) == want
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
