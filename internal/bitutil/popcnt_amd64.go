//go:build amd64 && !noasm

package bitutil

import "os"

// Declarations for the assembly routines in popcnt_amd64.s.
func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)
func popcntAndSliceAsm(a, b *uint64, n int) int64
func popcntSliceAsm(a *uint64, n int) int64

// avx512Impl is the assembly kernel, registered when the host supports it.
var avx512Impl = &kernelImpl{
	name:     "avx512-vpopcntq",
	andSlice: popcountAndSliceAVX512,
	slice:    popcountSliceAVX512,
}

func popcountAndSliceAVX512(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	return int(popcntAndSliceAsm(&a[0], &b[0], n))
}

func popcountSliceAVX512(xs []uint64) int {
	if len(xs) == 0 {
		return 0
	}
	return int(popcntSliceAsm(&xs[0], len(xs)))
}

// asmKernelSupported reports whether the host can run the VPOPCNTQ kernel:
// AVX-512F and AVX-512VPOPCNTDQ in CPUID leaf 7, with the OS saving
// xmm/ymm/zmm state (OSXSAVE plus the XCR0 bits 1, 2 and 5–7).
func asmKernelSupported() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return false
	}
	const xcr0AVX512 = 0xe6 // SSE | AVX | opmask | zmm_hi256 | hi16_zmm
	if eax, _ := xgetbv0(); eax&xcr0AVX512 != xcr0AVX512 {
		return false
	}
	_, b7, c7, _ := cpuid(7, 0)
	const avx512f = 1 << 16
	const avx512vpopcntdq = 1 << 14
	return b7&avx512f != 0 && c7&avx512vpopcntdq != 0
}

func init() {
	if os.Getenv("GENOMEATSCALE_NOASM") == "" && asmKernelSupported() {
		activeImpl.Store(avx512Impl)
	}
}

// EnableBestKernel re-installs the best kernel the host supports (undoing
// ForcePortable). It reports the name of the kernel now active.
func EnableBestKernel() string {
	if os.Getenv("GENOMEATSCALE_NOASM") == "" && asmKernelSupported() {
		activeImpl.Store(avx512Impl)
	} else {
		activeImpl.Store(portableImpl)
	}
	return Kernel()
}
