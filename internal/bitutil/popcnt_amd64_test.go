//go:build amd64 && !noasm

package bitutil

// asmKernels exposes the assembly AND+popcount kernel to the differential
// tests when the host supports it; on incapable hosts the map is empty and
// the tests cover the portable kernels only.
func asmKernels() map[string]func(a, b []uint64) int {
	if !asmKernelSupported() {
		return nil
	}
	return map[string]func(a, b []uint64) int{
		"avx512-vpopcntq": popcountAndSliceAVX512,
	}
}

func asmSliceKernels() map[string]func([]uint64) int {
	if !asmKernelSupported() {
		return nil
	}
	return map[string]func([]uint64) int{
		"avx512-vpopcntq": popcountSliceAVX512,
	}
}
