//go:build !amd64 || noasm

package bitutil

// No assembly kernels in this build; the differential tests cover the
// portable kernels only.
func asmKernels() map[string]func(a, b []uint64) int { return nil }

func asmSliceKernels() map[string]func([]uint64) int { return nil }
