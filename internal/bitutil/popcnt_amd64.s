//go:build amd64 && !noasm

#include "textflag.h"

// func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func popcntAndSliceAsm(a, b *uint64, n int) int64
//
// Sum of popcount(a[i] & b[i]) over i in [0, n) with AVX-512 VPOPCNTQ:
// 16 words per iteration on two independent zmm accumulator chains, an
// 8-word cleanup loop, and a scalar POPCNTQ tail for misaligned lengths.
// Loads are unaligned (VMOVDQU64), so callers need no slab alignment.
// Callers must have verified AVX-512F + AVX-512VPOPCNTDQ support.
TEXT ·popcntAndSliceAsm(SB), NOSPLIT, $64-32
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), DI
	MOVQ   n+16(FP), CX
	XORQ   AX, AX
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4

loop16:
	CMPQ      CX, $16
	JL        loop8
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VPANDQ    (DI), Z0, Z0
	VPANDQ    64(DI), Z1, Z1
	VPOPCNTQ  Z0, Z0
	VPOPCNTQ  Z1, Z1
	VPADDQ    Z0, Z3, Z3
	VPADDQ    Z1, Z4, Z4
	ADDQ      $128, SI
	ADDQ      $128, DI
	SUBQ      $16, CX
	JMP       loop16

loop8:
	CMPQ      CX, $8
	JL        reduce
	VMOVDQU64 (SI), Z0
	VPANDQ    (DI), Z0, Z0
	VPOPCNTQ  Z0, Z0
	VPADDQ    Z0, Z3, Z3
	ADDQ      $64, SI
	ADDQ      $64, DI
	SUBQ      $8, CX

reduce:
	VPADDQ    Z4, Z3, Z3
	VMOVDQU64 Z3, (SP)
	VZEROUPPER
	ADDQ      0(SP), AX
	ADDQ      8(SP), AX
	ADDQ      16(SP), AX
	ADDQ      24(SP), AX
	ADDQ      32(SP), AX
	ADDQ      40(SP), AX
	ADDQ      48(SP), AX
	ADDQ      56(SP), AX

tail:
	TESTQ   CX, CX
	JZ      done
	MOVQ    (SI), DX
	ANDQ    (DI), DX
	POPCNTQ DX, DX
	ADDQ    DX, AX
	ADDQ    $8, SI
	ADDQ    $8, DI
	DECQ    CX
	JMP     tail

done:
	MOVQ AX, ret+24(FP)
	RET

// func popcntSliceAsm(a *uint64, n int) int64
//
// Sum of popcount(a[i]) over i in [0, n); same structure as
// popcntAndSliceAsm without the AND operand.
TEXT ·popcntSliceAsm(SB), NOSPLIT, $64-24
	MOVQ   a+0(FP), SI
	MOVQ   n+8(FP), CX
	XORQ   AX, AX
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4

loop16:
	CMPQ     CX, $16
	JL       loop8
	VPOPCNTQ (SI), Z0
	VPOPCNTQ 64(SI), Z1
	VPADDQ   Z0, Z3, Z3
	VPADDQ   Z1, Z4, Z4
	ADDQ     $128, SI
	SUBQ     $16, CX
	JMP      loop16

loop8:
	CMPQ     CX, $8
	JL       reduce
	VPOPCNTQ (SI), Z0
	VPADDQ   Z0, Z3, Z3
	ADDQ     $64, SI
	SUBQ     $8, CX

reduce:
	VPADDQ    Z4, Z3, Z3
	VMOVDQU64 Z3, (SP)
	VZEROUPPER
	ADDQ      0(SP), AX
	ADDQ      8(SP), AX
	ADDQ      16(SP), AX
	ADDQ      24(SP), AX
	ADDQ      32(SP), AX
	ADDQ      40(SP), AX
	ADDQ      48(SP), AX
	ADDQ      56(SP), AX

tail:
	TESTQ   CX, CX
	JZ      done
	POPCNTQ (SI), DX
	ADDQ    DX, AX
	ADDQ    $8, SI
	DECQ    CX
	JMP     tail

done:
	MOVQ AX, ret+16(FP)
	RET
