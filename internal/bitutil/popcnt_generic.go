//go:build !amd64 || noasm

package bitutil

// No assembly kernel on this target (non-amd64 architecture or a `-tags
// noasm` build): the portable 8-way kernel installed at init stays active.

// EnableBestKernel re-installs the best kernel the build supports — on
// this target, the portable 8-way kernel. It reports the name of the
// kernel now active.
func EnableBestKernel() string {
	activeImpl.Store(portableImpl)
	return Kernel()
}
