package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.CI95 != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Count != 1 || s.Mean != 42 || s.StdDev != 0 || s.CI95 != 0 || s.Min != 42 || s.Max != 42 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	wantCI := 1.959963984540054 * want / math.Sqrt(8)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", s.CI95, wantCI)
	}
	if s.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean of empty should be 0")
	}
}

func TestDiscardWarmup(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := DiscardWarmup(xs, 2); len(got) != 2 || got[0] != 30 {
		t.Errorf("DiscardWarmup = %v", got)
	}
	if got := DiscardWarmup(xs, 10); got != nil {
		t.Errorf("over-discard = %v", got)
	}
	if got := DiscardWarmup(xs, -1); len(got) != 4 {
		t.Errorf("negative warmup = %v", got)
	}
}

func TestBatchSummaryMatchesPaperMethodology(t *testing.T) {
	// First three batches are start-up noise, the rest are steady.
	batches := []float64{100, 90, 80, 10, 10, 10, 10, 10, 10, 10, 10}
	s := BatchSummary(batches, 3)
	if s.Count != 8 {
		t.Errorf("Count = %d, want 8", s.Count)
	}
	if s.Mean != 10 {
		t.Errorf("Mean = %v, want 10", s.Mean)
	}
}

func TestProjectTotal(t *testing.T) {
	if ProjectTotal(2.5, 100) != 250 {
		t.Error("ProjectTotal wrong")
	}
	if ProjectTotal(2.5, -1) != 0 {
		t.Error("negative batches should be 0")
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	if Speedup(100, 25) != 4 {
		t.Error("Speedup wrong")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Error("Speedup by zero should be +Inf")
	}
	if ParallelEfficiency(100, 25, 1, 4) != 1 {
		t.Error("perfect efficiency should be 1")
	}
	if ParallelEfficiency(100, 50, 1, 4) != 0.5 {
		t.Error("half efficiency should be 0.5")
	}
	if ParallelEfficiency(1, 1, 0, 4) != 0 {
		t.Error("invalid p0 should be 0")
	}
}

func TestWeakScalingEfficiency(t *testing.T) {
	// The paper's Fig. 2f arithmetic: 64× more work, 35.3× more time → 1.81×.
	got := WeakScalingEfficiency(64, 35.3)
	if math.Abs(got-1.813) > 0.01 {
		t.Errorf("WeakScalingEfficiency = %v, want ≈1.81", got)
	}
	if !math.IsInf(WeakScalingEfficiency(1, 0), 1) {
		t.Error("zero time ratio should be +Inf")
	}
}

func TestGeometricMean(t *testing.T) {
	if math.Abs(GeometricMean([]float64{1, 4, 16})-4) > 1e-12 {
		t.Error("GeometricMean wrong")
	}
	if GeometricMean([]float64{0, -1}) != 0 {
		t.Error("non-positive only should be 0")
	}
	if math.Abs(GeometricMean([]float64{0, 4, 4})-4) > 1e-12 {
		t.Error("zeros must be skipped")
	}
}

// Property: the mean lies within [Min, Max] and the CI is non-negative.
func TestSummarizeInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.Count == 0
		}
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.CI95 >= 0 && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
