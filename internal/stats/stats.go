// Package stats provides the small statistical toolkit used by the
// benchmark harness: means, standard deviations and 95% confidence
// intervals computed the way the paper reports them ("we calculate 95%
// confidence intervals for the reported mean values by assuming the batch
// times are normally distributed samples", Fig. 2 caption), plus a timing
// helper that discards warm-up batches as the paper discards the first
// three batches of each run.
package stats

import (
	"fmt"
	"math"
)

// Summary describes a sample of measurements.
type Summary struct {
	// Count is the number of observations.
	Count int
	// Mean is the arithmetic mean.
	Mean float64
	// StdDev is the sample standard deviation (n−1 denominator).
	StdDev float64
	// CI95 is the half-width of the 95% confidence interval of the mean
	// under a normal approximation (1.96·σ/√n).
	CI95 float64
	// Min and Max are the extreme observations.
	Min, Max float64
}

// z95 is the 97.5th percentile of the standard normal distribution.
const z95 = 1.959963984540054

// Summarize computes summary statistics of xs. An empty input yields a
// zero-valued summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
		s.CI95 = z95 * s.StdDev / math.Sqrt(float64(len(xs)))
	}
	return s
}

// String formats the summary as "mean ± ci95 (n=count)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95, s.Count)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// DiscardWarmup returns xs without its first `warmup` elements; if fewer
// elements exist, an empty slice is returned. The paper discards the first
// three batches of each run to exclude start-up costs.
func DiscardWarmup(xs []float64, warmup int) []float64 {
	if warmup < 0 {
		warmup = 0
	}
	if warmup >= len(xs) {
		return nil
	}
	return xs[warmup:]
}

// BatchSummary summarises per-batch times after discarding warm-up batches,
// matching the methodology of Fig. 2b ("averaged across eight batches, not
// considering the first three batches").
func BatchSummary(batchSeconds []float64, warmup int) Summary {
	return Summarize(DiscardWarmup(batchSeconds, warmup))
}

// ProjectTotal extrapolates the total runtime of a full dataset from the
// mean per-batch time and the total number of batches needed, the way the
// paper reports "projected total time" for the Kingsford and BIGSI runs.
func ProjectTotal(meanBatchSeconds float64, totalBatches int) float64 {
	if totalBatches < 0 {
		return 0
	}
	return meanBatchSeconds * float64(totalBatches)
}

// Speedup returns base/current; it is the strong-scaling speed-up used in
// the Fig. 2a discussion (e.g. "42.2× relative to single node").
func Speedup(baseSeconds, currentSeconds float64) float64 {
	if currentSeconds == 0 {
		return math.Inf(1)
	}
	return baseSeconds / currentSeconds
}

// ParallelEfficiency returns Speedup / (p/p0), the strong-scaling
// efficiency relative to a baseline processor count p0.
func ParallelEfficiency(baseSeconds, currentSeconds float64, p0, p int) float64 {
	if p <= 0 || p0 <= 0 {
		return 0
	}
	return Speedup(baseSeconds, currentSeconds) / (float64(p) / float64(p0))
}

// WeakScalingEfficiency returns (workRatio / timeRatio): with work per
// processor held constant an ideal system yields 1. The paper reports a
// 64× work increase with a 35.3× time increase as a 1.81× "efficiency
// improvement" (Fig. 2f); this helper reproduces that arithmetic.
func WeakScalingEfficiency(workRatio, timeRatio float64) float64 {
	if timeRatio == 0 {
		return math.Inf(1)
	}
	return workRatio / timeRatio
}

// GeometricMean returns the geometric mean of positive observations; zero
// or negative entries are skipped.
func GeometricMean(xs []float64) float64 {
	var logSum float64
	count := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return math.Exp(logSum / float64(count))
}
