package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := []struct{ in, want int }{
		{0, max},
		{-3, max},
		{1, 1},
		{2, 2},
		{17, 17},
	}
	for _, c := range cases {
		if got := Resolve(c.in); got != c.want {
			t.Errorf("Resolve(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForEachSerialPreservesOrder(t *testing.T) {
	var got []int
	ForEach(1, 5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial ForEach visited %v, want ascending order", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("serial ForEach visited %d indices, want 5", len(got))
	}
}

func TestForEachPanicPropagatesToCaller(t *testing.T) {
	// A panic in fn — serial or pooled — must surface on the calling
	// goroutine where deferred recovers (like bsp.Run's per-rank recover)
	// can convert it into an error, instead of crashing the process.
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForEach(workers, 100, func(i int) {
				if i == 37 {
					panic("boom")
				}
			})
			t.Errorf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

func TestForEachDisjointWrites(t *testing.T) {
	// The documented contract: each index owns its output slot, so a
	// parallel fill must equal the serial fill. Run under -race in CI.
	const n = 512
	serial := make([]int, n)
	ForEach(1, n, func(i int) { serial[i] = i * i })
	parallel := make([]int, n)
	ForEach(4, n, func(i int) { parallel[i] = i * i })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel fill differs at %d", i)
		}
	}
}
