package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCtxNilAndUncancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var sum atomic.Int64
		if err := ForEachCtx(nil, workers, 100, func(i int) { sum.Add(int64(i)) }); err != nil {
			t.Fatal(err)
		}
		if sum.Load() != 4950 {
			t.Fatalf("workers=%d: nil ctx must visit every index, sum %d", workers, sum.Load())
		}
		sum.Store(0)
		if err := ForEachCtx(context.Background(), workers, 100, func(i int) { sum.Add(int64(i)) }); err != nil {
			t.Fatal(err)
		}
		if sum.Load() != 4950 {
			t.Fatalf("workers=%d: background ctx must visit every index", workers)
		}
	}
}

func TestForEachCtxCancelStopsEarly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		err := ForEachCtx(ctx, workers, 1_000_000, func(i int) {
			if calls.Add(1) == 10 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		// Each worker may finish the call it was in, but no worker claims a
		// new index after the cancel.
		if c := calls.Load(); c > int64(10+workers) {
			t.Fatalf("workers=%d: %d calls after cancellation at call 10", workers, c)
		}
		cancel()
	}
}

func TestForEachCtxPanicStillPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic in fn must propagate through ForEachCtx")
		}
	}()
	_ = ForEachCtx(context.Background(), 4, 100, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}
