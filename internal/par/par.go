// Package par is the shared-memory parallelism substrate of the pipeline:
// a tiny deterministic worker pool used by the tiled Gram kernels in
// internal/bitmat and the per-column packing and Eq. 2 finalization in
// internal/core. It deliberately has no dependencies so every layer of the
// system (bitmat, core, dist, the CLIs) can share one Workers convention:
// 0 means "one worker per available CPU" (runtime.GOMAXPROCS(0)), 1 means
// the exact serial path, n > 1 means n concurrent workers.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Workers option value to a concrete worker count: values
// below 1 (the Options zero value and the documented "use all cores"
// setting) resolve to runtime.GOMAXPROCS(0); anything else is returned
// unchanged.
func Resolve(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) across at most `workers`
// concurrent goroutines. With workers <= 1 it degenerates to the plain
// serial loop in index order — callers rely on this to keep Workers: 1
// bit-for-bit identical to the historical single-threaded code. With
// workers > 1 indices are handed out dynamically (an atomic counter), so
// unevenly sized work items balance across the pool; fn must therefore be
// safe to call concurrently and must write only to locations owned by its
// index. ForEach returns once every index has been processed.
//
// A panic in fn is recovered on the worker that hit it, the pool drains
// (remaining indices are skipped), and the first panic value is re-raised
// on the calling goroutine — so a panicking parallel kernel is observable
// exactly like a panicking serial one and stays recoverable by callers'
// deferred recovers (e.g. the per-rank recover in internal/bsp that turns
// kernel panics into Compute errors).
func ForEach(workers, n int, fn func(i int)) {
	forEach(nil, workers, n, func(_, i int) { fn(i) })
}

// ForEachCtx is ForEach with cooperative cancellation: every worker checks
// ctx before claiming its next index and stops claiming once the context is
// done, so a cancelled loop returns ctx.Err() within one fn call per worker
// (remaining indices are skipped). A nil or never-cancelled context makes
// ForEachCtx behave exactly like ForEach and return nil. The serial
// workers <= 1 path checks between iterations, preserving the bit-for-bit
// index order of the uncancelled loop.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	forEach(ctx, workers, n, func(_, i int) { fn(i) })
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ForEachWorkerCtx is ForEachCtx with the claiming worker's pool index
// passed to fn (0 ≤ worker < min(workers, n), and 0 on the serial path).
// Each worker index is held by exactly one goroutine for the duration of
// the loop, so fn may reuse per-worker scratch buffers — arena slabs, tile
// accumulators — across the items that worker claims without any
// synchronisation. Scheduling (dynamic index handout, cancellation, panic
// propagation) is identical to ForEachCtx.
func ForEachWorkerCtx(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	forEach(ctx, workers, n, fn)
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func forEach(ctx context.Context, workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var aborted atomic.Bool
	var panicOnce sync.Once
	var panicVal any
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	body := func(worker int) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicVal = r })
				aborted.Store(true)
			}
		}()
		for !aborted.Load() {
			if ctx != nil && ctx.Err() != nil {
				aborted.Store(true)
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(worker, i)
		}
	}
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			body(w)
		}()
	}
	body(0) // the calling goroutine is the pool's first worker
	wg.Wait()
	if panicVal != nil {
		//gas:invariant re-raise, not origination: a worker goroutine's panic value is propagated to the caller so it is not silently swallowed
		panic(panicVal)
	}
}
