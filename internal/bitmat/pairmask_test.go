package bitmat

import (
	"context"
	"testing"

	"genomeatscale/internal/sparse"
)

func maskTestMatrix(cols int) *Packed {
	var entries []PackedEntry
	state := uint64(0x1234abcd)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	const wordRows = 9
	for j := 0; j < cols; j++ {
		for k := 0; k < wordRows; k++ {
			if next()%3 == 0 {
				entries = append(entries, PackedEntry{WordRow: k, Col: j, Word: next()})
			}
		}
	}
	return FromEntries(entries, wordRows, cols, 64, wordRows*64)
}

// TestGramMasked pins the prescreening contract of the masked kernel:
// surviving pairs accumulate bit-identically to the unmasked kernel and
// pruned pairs stay exactly 0, for both the serial and the tiled path.
func TestGramMasked(t *testing.T) {
	const cols = 97
	p := maskTestMatrix(cols)
	full := sparse.MustDense[int64](cols, cols)
	p.GramAccumulate(full)

	mask := NewPairMask(cols)
	kept := 0
	for i := 0; i < cols; i++ {
		for j := i; j < cols; j++ {
			if (i*31+j*17)%5 == 0 {
				mask.Set(i, j)
				kept++
			}
		}
	}
	if got := mask.CountUpper(); got != int64(kept) {
		t.Fatalf("CountUpper = %d, want %d", got, kept)
	}

	for _, workers := range []int{1, 4} {
		got := sparse.MustDense[int64](cols, cols)
		if err := p.GramAccumulateMaskedCtxArena(context.Background(), got, workers, nil, mask); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				want := int64(0)
				if mask.Pair(i, j) {
					want = full.At(i, j)
				}
				if got.At(i, j) != want {
					t.Fatalf("workers=%d: masked B[%d][%d] = %d, want %d", workers, i, j, got.At(i, j), want)
				}
			}
		}
	}
}

func TestPairMaskRanges(t *testing.T) {
	m := NewPairMask(130)
	m.Set(3, 127)
	if !m.Pair(127, 3) || !m.Pair(3, 127) {
		t.Fatal("Set must be symmetric")
	}
	if !m.AnyInRange(3, 120, 130) || m.AnyInRange(3, 0, 127) || m.AnyInRange(3, 128, 130) {
		t.Fatal("AnyInRange word-boundary handling is wrong")
	}
	if !m.AnyPartner(127) || m.AnyPartner(64) {
		t.Fatal("AnyPartner is wrong")
	}
	m.Set(64, 64)
	if !m.AnyPartner(64) || !m.Pair(64, 64) {
		t.Fatal("diagonal set must count as a partner")
	}
}
