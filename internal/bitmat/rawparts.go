package bitmat

import (
	"fmt"

	"genomeatscale/internal/bitutil"
)

// RawParts is the internal storage of a Packed matrix laid bare for
// serialization: the column pointers, the sparse (wordRow, word) streams
// and the dense slab exactly as the matrix holds them. It is the contract
// between bitmat and the persistent index format in internal/index — the
// writer walks these slices straight to disk, and the mmap-opening reader
// hands file-backed slices to FromRaw without copying the payload.
//
// The slices of a RawParts returned by Raw are views into the matrix and
// must not be modified; a RawParts passed to FromRaw is adopted, so the
// caller must not modify the slices afterwards either.
type RawParts struct {
	// WordRows, Cols, B and ActiveRows mirror the Packed fields.
	WordRows   int
	Cols       int
	B          int
	ActiveRows int
	// ThresholdSpec is the dense-threshold spec the matrix was built with
	// (DenseAuto, DenseNever or an explicit stored-word count).
	ThresholdSpec int
	// ColPtr has length Cols+1 and delimits each column's slice of the
	// sparse streams; dense columns contribute empty ranges.
	ColPtr []int
	// WordRow and Words are the sparse streams, parallel slices sorted by
	// (column, word row) with strictly increasing word rows per column.
	WordRow []int
	Words   []uint64
	// DenseOff is each column's offset into Slab (-1 for sparse columns);
	// nil when no column is dense. Slab holds the dense columns' full
	// WordRows-length word rows back to back, and SlabNNZ counts its
	// nonzero words (storage accounting only).
	DenseOff []int
	Slab     []uint64
	SlabNNZ  int
}

// Raw exposes the matrix's storage for serialization. The returned slices
// are views — valid only while the matrix is alive and unreleased, and not
// to be modified.
func (p *Packed) Raw() RawParts {
	return RawParts{
		WordRows:      p.WordRows,
		Cols:          p.Cols,
		B:             p.B,
		ActiveRows:    p.ActiveRows,
		ThresholdSpec: p.threshold,
		ColPtr:        p.colPtr,
		WordRow:       p.wordRow,
		Words:         p.words,
		DenseOff:      p.denseOff,
		Slab:          p.slab,
		SlabNNZ:       p.slabNNZ,
	}
}

// FromRaw reassembles a Packed matrix around the given storage without
// copying it — the slices are adopted as the matrix's backing buffers, so
// mmap-opened indexes serve queries straight from the page cache. Because
// the parts typically come from an untrusted file, every invariant the
// kernels rely on is checked: shape consistency, monotone column pointers,
// per-column sorted in-range word rows, and dense offsets that tile the
// slab. The dense slab itself needs no validation (any bit pattern is a
// valid word), so adoption never faults its pages in. A violated invariant
// is an error, never a panic — a corrupt index file must not take down a
// serving process.
func FromRaw(r RawParts) (*Packed, error) {
	if r.B <= 0 || r.B > 64 {
		return nil, fmt.Errorf("bitmat: invalid bitmask width %d", r.B)
	}
	if r.Cols < 0 || r.ActiveRows < 0 {
		return nil, fmt.Errorf("bitmat: negative shape %d cols, %d active rows", r.Cols, r.ActiveRows)
	}
	if want := bitutil.WordsFor(r.ActiveRows, r.B); r.WordRows != want {
		return nil, fmt.Errorf("bitmat: %d word rows for %d active rows at width %d, want %d",
			r.WordRows, r.ActiveRows, r.B, want)
	}
	if len(r.ColPtr) != r.Cols+1 {
		return nil, fmt.Errorf("bitmat: %d column pointers for %d columns", len(r.ColPtr), r.Cols)
	}
	if len(r.WordRow) != len(r.Words) {
		return nil, fmt.Errorf("bitmat: %d word rows for %d words", len(r.WordRow), len(r.Words))
	}
	if r.Cols > 0 {
		if r.ColPtr[0] != 0 || r.ColPtr[r.Cols] != len(r.Words) {
			return nil, fmt.Errorf("bitmat: column pointers span [%d,%d], want [0,%d]",
				r.ColPtr[0], r.ColPtr[r.Cols], len(r.Words))
		}
	} else if len(r.Words) != 0 {
		return nil, fmt.Errorf("bitmat: %d words with no columns", len(r.Words))
	}
	for j := 0; j < r.Cols; j++ {
		lo, hi := r.ColPtr[j], r.ColPtr[j+1]
		if lo > hi || lo < 0 || hi > len(r.Words) {
			return nil, fmt.Errorf("bitmat: column %d pointers [%d,%d] outside [0,%d]",
				j, lo, hi, len(r.Words))
		}
		prev := -1
		for k := lo; k < hi; k++ {
			w := r.WordRow[k]
			if w <= prev || w >= r.WordRows {
				return nil, fmt.Errorf("bitmat: column %d word row %d out of order or range [0,%d)",
					j, w, r.WordRows)
			}
			prev = w
		}
	}
	numDense := 0
	if r.DenseOff != nil {
		if len(r.DenseOff) != r.Cols {
			return nil, fmt.Errorf("bitmat: %d dense offsets for %d columns", len(r.DenseOff), r.Cols)
		}
		if r.WordRows == 0 {
			return nil, fmt.Errorf("bitmat: dense columns with zero word rows")
		}
		seen := make(map[int]bool, len(r.Slab)/max(1, r.WordRows))
		for j, off := range r.DenseOff {
			if off < 0 {
				continue
			}
			if off%r.WordRows != 0 || off+r.WordRows > len(r.Slab) {
				return nil, fmt.Errorf("bitmat: column %d dense offset %d does not tile a %d-word slab of %d words",
					j, off, r.WordRows, len(r.Slab))
			}
			if seen[off] {
				return nil, fmt.Errorf("bitmat: dense offset %d used by two columns", off)
			}
			seen[off] = true
			numDense++
		}
	}
	if len(r.Slab) != numDense*r.WordRows {
		return nil, fmt.Errorf("bitmat: slab of %d words for %d dense columns of %d word rows",
			len(r.Slab), numDense, r.WordRows)
	}
	if r.SlabNNZ < 0 || r.SlabNNZ > len(r.Slab) {
		return nil, fmt.Errorf("bitmat: slab nonzero count %d outside [0,%d]", r.SlabNNZ, len(r.Slab))
	}
	denseOff := r.DenseOff
	if numDense == 0 {
		denseOff = nil
	}
	return &Packed{
		WordRows:   r.WordRows,
		Cols:       r.Cols,
		B:          r.B,
		ActiveRows: r.ActiveRows,
		threshold:  r.ThresholdSpec,
		colPtr:     r.ColPtr,
		wordRow:    r.WordRow,
		words:      r.Words,
		denseOff:   denseOff,
		slab:       r.Slab,
		slabNNZ:    r.SlabNNZ,
	}, nil
}

// PairPopcountBetween returns Σ_w popcount(a[w][i] ∧ b[w][j]) for one
// column of each of two packed matrices sharing a row space — the
// query-vs-corpus kernel of the persistent index, dispatched by the two
// columns' storage layouts exactly like a Gram cell. The matrices must
// agree on WordRows and B (callers construct the query column against the
// corpus segment's row space, so the check only guards misuse).
func PairPopcountBetween(a *Packed, i int, b *Packed, j int) int {
	if a.WordRows != b.WordRows || a.B != b.B {
		//gas:invariant the query column is constructed against the corpus segment's row space by the index layer; a mismatch is API misuse of an internal kernel
		panic(fmt.Sprintf("bitmat: PairPopcountBetween row-space mismatch (%d,%d) vs (%d,%d)",
			a.WordRows, a.B, b.WordRows, b.B))
	}
	return pairPopcount(a.view(i), b.view(j))
}
