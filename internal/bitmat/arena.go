package bitmat

import "sync"

// Arena recycles the hot-path buffers of the per-batch pipeline so the
// steady state of a multi-batch run allocates ~nothing: the backing slices
// of each batch's packed matrix (column pointers, sparse streams, dense
// slabs) and the per-tile Gram accumulators. It deliberately is not a
// sync.Pool — pooled buffers must survive GC cycles between batches, and
// the owner (the engine) wants deterministic reuse, not best-effort
// caching — just mutex-guarded free lists plus per-worker tile slots.
//
// Ownership protocol: FromEntriesThresholdArena draws a matrix's buffers
// from the arena; Packed.Release returns them once the batch's Gram
// accumulation is done. The per-worker tile accumulators never leave the
// arena — each pool worker borrows its slot for the duration of one
// GramAccumulate call (worker indices are unique within a call, see
// par.ForEachWorkerCtx), and consecutive calls reuse the slots.
//
// One arena must not be shared by two concurrent runs: the per-worker tile
// slots are indexed by pool-worker position, which only distinct calls of
// the same (serial) batch loop may reuse. The engine keeps a free list of
// whole arenas and checks one out per run.
type Arena struct {
	mu      sync.Mutex
	ints    [][]int
	words   [][]uint64
	specs   []tileSpec
	packeds []*Packed

	// tiles[w] is worker w's tile accumulator; sized by ensureWorkers
	// before a pool starts, then accessed without locking (one worker per
	// slot).
	tiles [][]int64
}

// NewArena returns an empty arena. A nil *Arena is valid everywhere an
// arena is accepted and means "allocate fresh" (the historical behaviour).
func NewArena() *Arena { return &Arena{} }

// getInts returns a zeroed []int of length n from the free list (or fresh).
func (a *Arena) getInts(n int) []int {
	s := a.getIntsCap(n)[:n]
	clear(s)
	return s
}

// getIntsCap returns an empty []int with capacity at least n.
func (a *Arena) getIntsCap(n int) []int {
	if a == nil {
		return make([]int, 0, n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := len(a.ints) - 1; i >= 0; i-- {
		if cap(a.ints[i]) >= n {
			s := a.ints[i]
			a.ints[i] = a.ints[len(a.ints)-1]
			a.ints = a.ints[:len(a.ints)-1]
			return s[:0]
		}
	}
	return make([]int, 0, n)
}

// getWords returns a zeroed []uint64 of length n from the free list.
func (a *Arena) getWords(n int) []uint64 {
	s := a.getWordsCap(n)[:n]
	clear(s)
	return s
}

// getWordsCap returns an empty []uint64 with capacity at least n.
func (a *Arena) getWordsCap(n int) []uint64 {
	if a == nil {
		return make([]uint64, 0, n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := len(a.words) - 1; i >= 0; i-- {
		if cap(a.words[i]) >= n {
			s := a.words[i]
			a.words[i] = a.words[len(a.words)-1]
			a.words = a.words[:len(a.words)-1]
			return s[:0]
		}
	}
	return make([]uint64, 0, n)
}

func (a *Arena) putInts(ss ...[]int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range ss {
		if cap(s) > 0 {
			a.ints = append(a.ints, s[:0])
		}
	}
}

func (a *Arena) putWords(ss ...[]uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range ss {
		if cap(s) > 0 {
			a.words = append(a.words, s[:0])
		}
	}
}

// getPacked returns a zeroed *Packed from the free list (or fresh), so the
// header struct itself is recycled along with its buffers.
func (a *Arena) getPacked() *Packed {
	if a == nil {
		return &Packed{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.packeds); n > 0 {
		p := a.packeds[n-1]
		a.packeds = a.packeds[:n-1]
		*p = Packed{}
		return p
	}
	return &Packed{}
}

func (a *Arena) putPacked(p *Packed) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.packeds = append(a.packeds, p)
}

// getSpecs returns the reusable tile-spec buffer (callers store the grown
// slice back with putSpecs once the tile list is no longer referenced).
func (a *Arena) getSpecs() []tileSpec {
	if a == nil {
		return nil
	}
	return a.specs[:0]
}

func (a *Arena) putSpecs(s []tileSpec) {
	if a != nil {
		a.specs = s
	}
}

// ensureWorkers sizes the per-worker tile-slot table for a pool of k
// workers. Must be called before the pool starts (it is not safe
// concurrently with workerTile).
func (a *Arena) ensureWorkers(k int) {
	if a == nil {
		return
	}
	for len(a.tiles) < k {
		a.tiles = append(a.tiles, nil)
	}
}

// workerTile returns worker w's zeroed tile accumulator of length n,
// growing the slot if this tile is larger than any the worker has seen.
// Callers must have sized the table with ensureWorkers(k>w); distinct
// workers touch distinct slots, so no locking is needed.
func (a *Arena) workerTile(w, n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	if cap(a.tiles[w]) < n {
		a.tiles[w] = make([]int64, n)
		return a.tiles[w]
	}
	s := a.tiles[w][:n]
	clear(s)
	return s
}
