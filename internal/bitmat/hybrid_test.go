package bitmat

import (
	"fmt"
	"math/rand"
	"testing"

	"genomeatscale/internal/sparse"
)

// hybrid_test.go pins down the tentpole property of the adaptive storage
// layout: the dense-threshold spec selects storage and kernels only — every
// observable result (Gram, GramBlock, ColPopcounts, Unpack, Entries,
// NNZWords, PopcountTotal, the ColRange/WordRowRange splits) is identical
// to the sparse-only layout for every threshold.

// thresholdSweep is the spec set every property below is checked over:
// sparse-only, the auto default, everything-dense, and a threshold larger
// than any column (equivalent to sparse-only through a different code
// path).
var thresholdSweep = []int{DenseNever, DenseAuto, 1, 1 << 30}

// randomRowsPerCol draws per-column sorted row sets at a given occupancy
// (fraction of active rows present per column).
func randomRowsPerCol(rng *rand.Rand, rows, cols int, occupancy float64) [][]int {
	out := make([][]int, cols)
	for j := range out {
		for r := 0; r < rows; r++ {
			if rng.Float64() < occupancy {
				out[j] = append(out[j], r)
			}
		}
	}
	return out
}

func int64Eq(a, b int64) bool { return a == b }

// assertPackedEquivalent checks every observable of q against the
// sparse-only reference p.
func assertPackedEquivalent(t *testing.T, p, q *Packed, label string) {
	t.Helper()
	if q.NNZWords() != p.NNZWords() {
		t.Fatalf("%s: NNZWords %d, want %d", label, q.NNZWords(), p.NNZWords())
	}
	if q.PopcountTotal() != p.PopcountTotal() {
		t.Fatalf("%s: PopcountTotal %d, want %d", label, q.PopcountTotal(), p.PopcountTotal())
	}
	if !sparse.Equal(p.Gram(), q.Gram(), int64Eq) {
		t.Fatalf("%s: Gram differs from sparse-only layout", label)
	}
	wantPC, gotPC := p.ColPopcounts(), q.ColPopcounts()
	for j := range wantPC {
		if wantPC[j] != gotPC[j] {
			t.Fatalf("%s: ColPopcounts[%d] = %d, want %d", label, j, gotPC[j], wantPC[j])
		}
	}
	wantU, gotU := p.Unpack(), q.Unpack()
	if wantU.NNZ() != gotU.NNZ() {
		t.Fatalf("%s: Unpack nnz %d, want %d", label, gotU.NNZ(), wantU.NNZ())
	}
	for j := 0; j < p.Cols; j++ {
		wr, _ := wantU.Col(j)
		gr, _ := gotU.Col(j)
		if len(wr) != len(gr) {
			t.Fatalf("%s: Unpack col %d row count %d, want %d", label, j, len(gr), len(wr))
		}
		for k := range wr {
			if wr[k] != gr[k] {
				t.Fatalf("%s: Unpack col %d row %d, want %d", label, j, gr[k], wr[k])
			}
		}
	}
	wantE, gotE := p.Entries(), q.Entries()
	if len(wantE) != len(gotE) {
		t.Fatalf("%s: Entries length %d, want %d", label, len(gotE), len(wantE))
	}
	for k := range wantE {
		if wantE[k] != gotE[k] {
			t.Fatalf("%s: Entries[%d] = %+v, want %+v", label, k, gotE[k], wantE[k])
		}
	}
}

// TestHybridLayoutEquivalenceSweep sweeps column occupancy from hypersparse
// to near-full and asserts dense-stored and sparse-stored matrices are
// observationally identical at every threshold spec, including the
// Entries→FromEntries round trip and the distributed splitting operations.
func TestHybridLayoutEquivalenceSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, b := range []int{8, 32, 64} {
		for _, occupancy := range []float64{0.005, 0.05, 0.2, 0.5, 0.95} {
			rows := 200 + rng.Intn(400)
			cols := 3 + rng.Intn(10)
			rowsPerCol := randomRowsPerCol(rng, rows, cols, occupancy)
			ref := PackColumnsThreshold(rowsPerCol, rows, b, DenseNever)
			for _, spec := range thresholdSweep {
				label := fmt.Sprintf("b=%d occ=%.3f spec=%d", b, occupancy, spec)
				q := PackColumnsThreshold(rowsPerCol, rows, b, spec)
				if q.DenseThresholdSpec() != spec {
					t.Fatalf("%s: spec not recorded", label)
				}
				assertPackedEquivalent(t, ref, q, label)

				// Entries → FromEntries round trip keeps the layout spec and
				// the observables.
				rt := FromEntriesThreshold(q.Entries(), q.WordRows, q.Cols, q.B, q.ActiveRows, spec)
				assertPackedEquivalent(t, ref, rt, label+" roundtrip")

				// Column and word-row splits (the distributed lifecycle)
				// agree with the same splits of the sparse-only layout.
				mid := cols / 2
				assertPackedEquivalent(t, ref.ColRange(0, mid), q.ColRange(0, mid), label+" colrange-lo")
				assertPackedEquivalent(t, ref.ColRange(mid, cols), q.ColRange(mid, cols), label+" colrange-hi")
				wmid := q.WordRows / 2
				assertPackedEquivalent(t, ref.WordRowRange(0, wmid), q.WordRowRange(0, wmid), label+" wrr-lo")
				assertPackedEquivalent(t, ref.WordRowRange(wmid, q.WordRows), q.WordRowRange(wmid, q.WordRows), label+" wrr-hi")
			}
		}
	}
}

// TestHybridKernelCrossLayoutGramBlock multiplies blocks stored in
// different layouts against each other, exercising all three dispatch
// kernels (dense×dense, dense×sparse, sparse×sparse) in one product, and
// checks every combination against the sparse×sparse reference.
func TestHybridKernelCrossLayoutGramBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	rows, cols := 4096, 8
	// Mixed occupancies so the auto threshold genuinely splits the columns:
	// even columns fill ~all 64 word rows, odd columns ~2 of them.
	rowsPerCol := make([][]int, cols)
	for j := range rowsPerCol {
		occ := 0.0005
		if j%2 == 0 {
			occ = 0.8
		}
		rowsPerCol[j] = randomRowsPerCol(rng, rows, 1, occ)[0]
	}
	variants := map[string]*Packed{
		"sparse": PackColumnsThreshold(rowsPerCol, rows, 64, DenseNever),
		"auto":   PackColumnsThreshold(rowsPerCol, rows, 64, DenseAuto),
		"dense":  PackColumnsThreshold(rowsPerCol, rows, 64, 1),
	}
	if variants["auto"].DenseCols() == 0 || variants["auto"].DenseCols() == cols {
		t.Fatalf("auto layout must mix storage kinds, got %d/%d dense", variants["auto"].DenseCols(), cols)
	}
	want := GramBlock(variants["sparse"], variants["sparse"])
	for an, a := range variants {
		for bn, b := range variants {
			for _, workers := range []int{1, 3} {
				got := GramBlockWorkers(a, b, workers)
				if !sparse.Equal(want, got, int64Eq) {
					t.Fatalf("GramBlock(%s, %s, workers=%d) differs from sparse reference", an, bn, workers)
				}
			}
		}
	}
	// The full accumulate kernel on the mixed matrix agrees too, across
	// worker counts.
	ref := variants["sparse"].Gram()
	for name, v := range variants {
		for _, workers := range []int{1, 2, 5} {
			acc := sparse.MustDense[int64](cols, cols)
			v.GramAccumulateWorkers(acc, workers)
			if !sparse.Equal(ref, acc, int64Eq) {
				t.Fatalf("GramAccumulateWorkers(%s, workers=%d) differs from sparse serial", name, workers)
			}
		}
	}
}

// TestHybridMemoryWordsTradeoff pins the documented memory accounting: at
// high occupancy the dense layout must not be larger than the sparse
// stream (it drops the per-word metadata), and at low occupancy forcing
// density must cost more (full-height slabs for nearly empty columns).
func TestHybridMemoryWordsTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	rows, cols := 4096, 6
	densePC := randomRowsPerCol(rng, rows, cols, 0.95)
	// Word-level sparsity needs row occupancy well under 1/B: 0.0005 leaves
	// ~2 of the 64 word rows stored per column.
	sparsePC := randomRowsPerCol(rng, rows, cols, 0.0005)

	highSparse := PackColumnsThreshold(densePC, rows, 64, DenseNever)
	highDense := PackColumnsThreshold(densePC, rows, 64, 1)
	if highDense.MemoryWords() > highSparse.MemoryWords() {
		t.Errorf("≥90%% occupancy: dense layout %d words must not exceed sparse %d",
			highDense.MemoryWords(), highSparse.MemoryWords())
	}

	lowSparse := PackColumnsThreshold(sparsePC, rows, 64, DenseNever)
	lowForced := PackColumnsThreshold(sparsePC, rows, 64, 1)
	if lowForced.MemoryWords() <= lowSparse.MemoryWords() {
		t.Errorf("1%% occupancy: forced dense layout %d words must exceed sparse %d",
			lowForced.MemoryWords(), lowSparse.MemoryWords())
	}

	// The auto threshold picks the cheaper side of the trade on both ends.
	if auto := PackColumnsThreshold(densePC, rows, 64, DenseAuto); auto.DenseCols() != cols {
		t.Errorf("auto threshold left %d/%d high-occupancy columns sparse", cols-auto.DenseCols(), cols)
	}
	if auto := PackColumnsThreshold(sparsePC, rows, 64, DenseAuto); auto.DenseCols() != 0 {
		t.Errorf("auto threshold densified %d low-occupancy columns", auto.DenseCols())
	}
}

// FuzzHybridThresholdEquivalence fuzzes the layout decision: arbitrary row
// sets, mask widths and thresholds must leave Gram, ColPopcounts and the
// Entries round trip independent of the storage layout.
func FuzzHybridThresholdEquivalence(f *testing.F) {
	f.Add(int64(1), 64, 0, 0.3)
	f.Add(int64(2), 8, 1, 0.9)
	f.Add(int64(3), 32, -1, 0.05)
	f.Add(int64(4), 64, 7, 0.5)
	f.Fuzz(func(t *testing.T, seed int64, maskBits, spec int, occupancy float64) {
		if maskBits < 1 || maskBits > 64 {
			t.Skip()
		}
		if occupancy < 0 || occupancy > 1 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(300)
		cols := 1 + rng.Intn(8)
		rowsPerCol := randomRowsPerCol(rng, rows, cols, occupancy)
		ref := PackColumnsThreshold(rowsPerCol, rows, maskBits, DenseNever)
		q := PackColumnsThreshold(rowsPerCol, rows, maskBits, spec)
		if !sparse.Equal(ref.Gram(), q.Gram(), int64Eq) {
			t.Fatal("Gram depends on storage layout")
		}
		refPC, qPC := ref.ColPopcounts(), q.ColPopcounts()
		for j := range refPC {
			if refPC[j] != qPC[j] {
				t.Fatalf("ColPopcounts[%d] depends on storage layout", j)
			}
		}
		rt := FromEntriesThreshold(q.Entries(), q.WordRows, q.Cols, q.B, q.ActiveRows, spec)
		if !sparse.Equal(ref.Gram(), rt.Gram(), int64Eq) {
			t.Fatal("Entries round trip depends on storage layout")
		}
		if rt.NNZWords() != ref.NNZWords() {
			t.Fatalf("round-trip NNZWords %d, want %d", rt.NNZWords(), ref.NNZWords())
		}
	})
}
