package bitmat

// PairMask is a symmetric n×n bitset over column pairs, used by the
// MinHash prescreening tier to tell the Gram kernel which pairs survived
// the estimate gate: masked-out pairs are skipped — whole output tiles at
// a time when no pair of the tile survived — so their intersection
// cardinalities are never computed and stay 0 in the accumulator.
type PairMask struct {
	n     int
	rowW  int // words per row: ceil(n/64)
	words []uint64
}

// NewPairMask returns an empty mask over n columns.
func NewPairMask(n int) *PairMask {
	if n < 0 {
		n = 0
	}
	rowW := (n + 63) / 64
	return &PairMask{n: n, rowW: rowW, words: make([]uint64, n*rowW)}
}

// N returns the number of columns the mask spans.
func (m *PairMask) N() int { return m.n }

// Set marks the pair (i, j) — and symmetrically (j, i) — as surviving.
func (m *PairMask) Set(i, j int) {
	m.words[i*m.rowW+j/64] |= 1 << uint(j%64)
	m.words[j*m.rowW+i/64] |= 1 << uint(i%64)
}

// SetHalf marks (i, j) without the symmetric mirror. It only writes row i,
// so parallel fills where each goroutine owns one row stay race-free;
// callers must MirrorUpper once the fill is done.
func (m *PairMask) SetHalf(i, j int) {
	m.words[i*m.rowW+j/64] |= 1 << uint(j%64)
}

// MirrorUpper copies every upper-triangle bit (i ≤ j) onto its transpose,
// completing a SetHalf fill into a symmetric mask.
func (m *PairMask) MirrorUpper() {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if m.Pair(i, j) {
				m.SetHalf(j, i)
			}
		}
	}
}

// Pair reports whether the pair (i, j) survives.
func (m *PairMask) Pair(i, j int) bool {
	return m.words[i*m.rowW+j/64]&(1<<uint(j%64)) != 0
}

// AnyInRange reports whether column i survives with any partner in
// [j0, j1), scanning whole mask words.
func (m *PairMask) AnyInRange(i, j0, j1 int) bool {
	if j0 < 0 {
		j0 = 0
	}
	if j1 > m.n {
		j1 = m.n
	}
	if j0 >= j1 {
		return false
	}
	row := m.words[i*m.rowW : (i+1)*m.rowW]
	w0, w1 := j0/64, (j1-1)/64
	for w := w0; w <= w1; w++ {
		word := row[w]
		if w == w0 {
			word &= ^uint64(0) << uint(j0%64)
		}
		if w == w1 && (j1%64) != 0 {
			word &= ^uint64(0) >> uint(64-j1%64)
		}
		if word != 0 {
			return true
		}
	}
	return false
}

// AnyPartner reports whether column i survives with any partner at all,
// itself included.
func (m *PairMask) AnyPartner(i int) bool { return m.AnyInRange(i, 0, m.n) }

// AnyPartnerOffDiag reports whether column i survives with any partner
// other than itself — the candidate-column test the batch stage uses to
// drop columns from packing altogether. The diagonal does not count: a
// sample's self-intersection is its cardinality by definition, so a
// column whose only surviving pair is (i, i) needs no packed
// representation at all.
func (m *PairMask) AnyPartnerOffDiag(i int) bool {
	return m.AnyInRange(i, 0, i) || m.AnyInRange(i, i+1, m.n)
}

// anyInTile reports whether any upper-triangular cell (i ≤ j) of the
// output tile rows [i0, i1) × cols [j0, j1) survives.
func (m *PairMask) anyInTile(i0, i1, j0, j1 int) bool {
	for i := i0; i < i1; i++ {
		if m.AnyInRange(i, max(j0, i), j1) {
			return true
		}
	}
	return false
}

// CountUpper returns the number of surviving unordered pairs, diagonal
// included.
func (m *PairMask) CountUpper() int64 {
	var count int64
	for i := 0; i < m.n; i++ {
		for j := i; j < m.n; j++ {
			if m.Pair(i, j) {
				count++
			}
		}
	}
	return count
}
