package bitmat

import (
	"fmt"
	"sort"

	"genomeatscale/internal/bitutil"
	"genomeatscale/internal/par"
	"genomeatscale/internal/sparse"
)

// Gram computes B = ÂᵀÂ over the popcount-AND semiring (Eq. 7):
// B[i][j] = Σ_k popcount(Â[k][i] ∧ Â[k][j]). With indicator data this equals
// the intersection cardinality |X_i ∩ X_j| restricted to the rows covered by
// this batch. The result is a dense Cols×Cols matrix.
func (p *Packed) Gram() *sparse.Dense[int64] {
	out := sparse.NewDense[int64](p.Cols, p.Cols)
	p.GramAccumulate(out)
	return out
}

// GramAccumulate adds this batch's Gram contribution into an existing dense
// accumulator, implementing the per-batch accumulation of Eq. 4, on the
// serial path.
func (p *Packed) GramAccumulate(into *sparse.Dense[int64]) {
	p.GramAccumulateWorkers(into, 1)
}

// GramAccumulateWorkers is GramAccumulate evaluated on a shared-memory
// worker pool. workers follows the par convention: 0 resolves to
// runtime.GOMAXPROCS(0), 1 runs the exact serial loop, n > 1 tiles the
// upper-triangular column-pair space into square output blocks and hands
// the tiles to n goroutines. Each tile accumulates into a private dense
// slab and then flushes it into `into` with direct indexed writes; because
// only tiles on or above the diagonal exist and each mirrors its own block,
// the flushed regions are pairwise disjoint, so the writes are race-free
// and the result is bit-identical to the serial path for every workers
// value (int64 addition is associative and each cell is computed once).
func (p *Packed) GramAccumulateWorkers(into *sparse.Dense[int64], workers int) {
	if into.Rows != p.Cols || into.Cols != p.Cols {
		panic(fmt.Sprintf("bitmat: Gram accumulator shape %dx%d, want %dx%d", into.Rows, into.Cols, p.Cols, p.Cols))
	}
	workers = par.Resolve(workers)
	if workers <= 1 || p.Cols < 2 {
		p.gramAccumulateSerial(into)
		return
	}
	edge := tileEdge(workers, func(e int) int {
		nt := (p.Cols + e - 1) / e
		return nt * (nt + 1) / 2
	})
	var tiles []tileSpec
	for i0 := 0; i0 < p.Cols; i0 += edge {
		i1 := min(i0+edge, p.Cols)
		for j0 := i0; j0 < p.Cols; j0 += edge {
			tiles = append(tiles, tileSpec{i0, i1, j0, min(j0+edge, p.Cols)})
		}
	}
	stride := into.Cols
	par.ForEach(workers, len(tiles), func(k int) {
		t := tiles[k]
		tw := t.j1 - t.j0
		slab := make([]int64, (t.i1-t.i0)*tw)
		for i := t.i0; i < t.i1; i++ {
			wi, vi := p.Col(i)
			if len(wi) == 0 {
				continue
			}
			row := slab[(i-t.i0)*tw:]
			for j := max(t.j0, i); j < t.j1; j++ {
				wj, vj := p.Col(j)
				if len(wj) == 0 {
					continue
				}
				row[j-t.j0] = int64(mergePopcount(wi, vi, wj, vj))
			}
		}
		for i := t.i0; i < t.i1; i++ {
			row := slab[(i-t.i0)*tw:]
			for j := t.j0; j < t.j1; j++ {
				c := row[j-t.j0]
				if c == 0 {
					continue
				}
				into.Data[i*stride+j] += c
				if i != j {
					into.Data[j*stride+i] += c
				}
			}
		}
	})
}

// gramAccumulateSerial is the historical single-threaded kernel, with the
// per-cell closure accumulation replaced by direct slice indexing.
func (p *Packed) gramAccumulateSerial(into *sparse.Dense[int64]) {
	stride := into.Cols
	for i := 0; i < p.Cols; i++ {
		wi, vi := p.Col(i)
		if len(wi) == 0 {
			continue
		}
		for j := i; j < p.Cols; j++ {
			wj, vj := p.Col(j)
			if len(wj) == 0 {
				continue
			}
			c := int64(mergePopcount(wi, vi, wj, vj))
			if c == 0 {
				continue
			}
			into.Data[i*stride+j] += c
			if i != j {
				into.Data[j*stride+i] += c
			}
		}
	}
}

// tileSpec is one output tile: rows [i0, i1) × cols [j0, j1).
type tileSpec struct {
	i0, i1, j0, j1 int
}

// tileEdge picks the edge length of the square output tiles: start from a
// cache-friendly 64×64 block and halve until the pool has at least four
// tiles per worker to balance (or the edge reaches its floor). count maps
// a candidate edge to the number of tiles it induces.
func tileEdge(workers int, count func(edge int) int) int {
	edge := 64
	for edge > 8 && count(edge) < 4*workers {
		edge /= 2
	}
	return edge
}

// GramBlock computes the Cols(a)×Cols(b) block of the Gram product between
// two packed column blocks a and b that share the same row space:
// out[i][j] = Σ_k popcount(a[k][i] ∧ b[k][j]). It is the local kernel of the
// distributed SUMMA product in internal/dist, where processor (s, t) of a 2D
// grid multiplies its row-panel copies of column blocks s and t.
func GramBlock(a, b *Packed) *sparse.Dense[int64] {
	return GramBlockWorkers(a, b, 1)
}

// GramBlockWorkers is GramBlock evaluated on a shared-memory worker pool
// (same workers convention as GramAccumulateWorkers). The rectangular
// output is tiled into square blocks; tiles write disjoint regions of the
// fresh result matrix, so no synchronisation beyond the pool join is
// needed and the result is identical for every workers value.
func GramBlockWorkers(a, b *Packed, workers int) *sparse.Dense[int64] {
	if a.WordRows != b.WordRows || a.B != b.B {
		panic(fmt.Sprintf("bitmat: GramBlock row-space mismatch (%d,%d) vs (%d,%d)", a.WordRows, a.B, b.WordRows, b.B))
	}
	out := sparse.NewDense[int64](a.Cols, b.Cols)
	workers = par.Resolve(workers)
	if workers <= 1 || a.Cols == 0 || b.Cols == 0 {
		gramBlockInto(a, b, out, tileSpec{0, a.Cols, 0, b.Cols})
		return out
	}
	edge := tileEdge(workers, func(e int) int {
		return ((a.Cols + e - 1) / e) * ((b.Cols + e - 1) / e)
	})
	var tiles []tileSpec
	for i0 := 0; i0 < a.Cols; i0 += edge {
		i1 := min(i0+edge, a.Cols)
		for j0 := 0; j0 < b.Cols; j0 += edge {
			tiles = append(tiles, tileSpec{i0, i1, j0, min(j0+edge, b.Cols)})
		}
	}
	par.ForEach(workers, len(tiles), func(k int) {
		gramBlockInto(a, b, out, tiles[k])
	})
	return out
}

// gramBlockInto fills one output tile of the a×b Gram block with direct
// indexed writes.
func gramBlockInto(a, b *Packed, out *sparse.Dense[int64], t tileSpec) {
	stride := out.Cols
	for i := t.i0; i < t.i1; i++ {
		wi, vi := a.Col(i)
		if len(wi) == 0 {
			continue
		}
		row := out.Data[i*stride : (i+1)*stride]
		for j := t.j0; j < t.j1; j++ {
			wj, vj := b.Col(j)
			if len(wj) == 0 {
				continue
			}
			row[j] = int64(mergePopcount(wi, vi, wj, vj))
		}
	}
}

// mergePopcount merges two sorted (wordRow, word) streams and accumulates
// popcount(wi & wj) on matching word rows.
func mergePopcount(wi []int, vi []uint64, wj []int, vj []uint64) int {
	acc, a, b := 0, 0, 0
	for a < len(wi) && b < len(wj) {
		switch {
		case wi[a] < wj[b]:
			a++
		case wi[a] > wj[b]:
			b++
		default:
			acc += bitutil.PopcountAnd(vi[a], vj[b])
			a++
			b++
		}
	}
	return acc
}

// ColPopcounts returns the per-column set-bit counts, i.e. this batch's
// contribution to the per-sample cardinalities â of Eq. 4.
func (p *Packed) ColPopcounts() []int64 {
	out := make([]int64, p.Cols)
	for j := 0; j < p.Cols; j++ {
		_, words := p.Col(j)
		out[j] = int64(bitutil.PopcountSlice(words))
	}
	return out
}

// ColRange extracts the packed sub-matrix of columns [lo, hi), sharing the
// same row space. Used to build per-processor column blocks for the
// distributed Gram product.
func (p *Packed) ColRange(lo, hi int) *Packed {
	if lo < 0 || hi > p.Cols || lo > hi {
		panic(fmt.Sprintf("bitmat: ColRange [%d,%d) out of range for %d columns", lo, hi, p.Cols))
	}
	out := &Packed{
		WordRows:   p.WordRows,
		Cols:       hi - lo,
		B:          p.B,
		ActiveRows: p.ActiveRows,
		colPtr:     make([]int, hi-lo+1),
	}
	for j := lo; j < hi; j++ {
		wr, ws := p.Col(j)
		out.wordRow = append(out.wordRow, wr...)
		out.words = append(out.words, ws...)
		out.colPtr[j-lo+1] = len(out.words)
	}
	return out
}

// WordRowRange extracts the packed sub-matrix restricted to word rows
// [lo, hi), with word-row indices shifted to start at zero. Used to split
// the contraction (row) dimension across the c replication layers of the
// 3D processor grid.
func (p *Packed) WordRowRange(lo, hi int) *Packed {
	if lo < 0 || hi > p.WordRows || lo > hi {
		panic(fmt.Sprintf("bitmat: WordRowRange [%d,%d) out of range for %d word rows", lo, hi, p.WordRows))
	}
	active := (hi - lo) * p.B
	if rem := p.ActiveRows - lo*p.B; hi == p.WordRows && rem < active {
		active = rem
	}
	if active < 0 {
		active = 0
	}
	out := &Packed{
		WordRows:   hi - lo,
		Cols:       p.Cols,
		B:          p.B,
		ActiveRows: active,
		colPtr:     make([]int, p.Cols+1),
	}
	for j := 0; j < p.Cols; j++ {
		wr, ws := p.Col(j)
		for k, w := range wr {
			if w >= lo && w < hi {
				out.wordRow = append(out.wordRow, w-lo)
				out.words = append(out.words, ws[k])
			}
		}
		out.colPtr[j+1] = len(out.words)
	}
	return out
}

// Entries returns the packed matrix as coordinate triples
// (wordRow, col, word); used to move packed blocks through the BSP runtime.
func (p *Packed) Entries() []PackedEntry {
	out := make([]PackedEntry, 0, len(p.words))
	for j := 0; j < p.Cols; j++ {
		wr, ws := p.Col(j)
		for k := range wr {
			out = append(out, PackedEntry{WordRow: wr[k], Col: j, Word: ws[k]})
		}
	}
	return out
}

// PackedEntry is one nonzero packed word in coordinate form.
type PackedEntry struct {
	WordRow int
	Col     int
	Word    uint64
}

// FromEntries rebuilds a Packed matrix from coordinate packed entries.
// Entries for the same (wordRow, col) are OR-combined. Entries already
// sorted by (col, wordRow) — the order Packed.Entries and the batch packing
// in internal/core emit — are assembled in a single linear pass.
func FromEntries(entries []PackedEntry, wordRows, cols, b, activeRows int) *Packed {
	sorted := true
	for i, e := range entries {
		if e.Col < 0 || e.Col >= cols || e.WordRow < 0 || e.WordRow >= wordRows {
			panic(fmt.Sprintf("bitmat: entry (%d,%d) out of range %dx%d", e.WordRow, e.Col, wordRows, cols))
		}
		if i > 0 && (e.Col < entries[i-1].Col ||
			(e.Col == entries[i-1].Col && e.WordRow < entries[i-1].WordRow)) {
			sorted = false
		}
	}
	out := &Packed{
		WordRows:   wordRows,
		Cols:       cols,
		B:          b,
		ActiveRows: activeRows,
		colPtr:     make([]int, cols+1),
	}
	if sorted {
		for i := 0; i < len(entries); {
			e := entries[i]
			word := e.Word
			for i++; i < len(entries) && entries[i].Col == e.Col && entries[i].WordRow == e.WordRow; i++ {
				word |= entries[i].Word
			}
			out.wordRow = append(out.wordRow, e.WordRow)
			out.words = append(out.words, word)
			out.colPtr[e.Col+1] = len(out.words)
		}
		for j := 1; j <= cols; j++ {
			if out.colPtr[j] < out.colPtr[j-1] {
				out.colPtr[j] = out.colPtr[j-1]
			}
		}
		return out
	}
	perCol := make([]map[int]uint64, cols)
	for _, e := range entries {
		if perCol[e.Col] == nil {
			perCol[e.Col] = make(map[int]uint64)
		}
		perCol[e.Col][e.WordRow] |= e.Word
	}
	for j := 0; j < cols; j++ {
		m := perCol[j]
		keys := make([]int, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			out.wordRow = append(out.wordRow, k)
			out.words = append(out.words, m[k])
		}
		out.colPtr[j+1] = len(out.words)
	}
	return out
}
