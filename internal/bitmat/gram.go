package bitmat

import (
	"context"
	"fmt"
	"sort"

	"genomeatscale/internal/bitutil"
	"genomeatscale/internal/par"
	"genomeatscale/internal/sparse"
)

// colView is the layout-aware handle the Gram kernels use to read one
// column without per-cell layout checks on the slices themselves: dense
// columns expose their full WordRows-length slab slice, sparse columns the
// (wordRow, word) stream views.
type colView struct {
	dense []uint64 // non-nil => dense column
	wr    []int
	ws    []uint64
}

func (v colView) empty() bool { return v.dense == nil && len(v.ws) == 0 }

// view returns the kernel view of column j.
func (p *Packed) view(j int) colView {
	if p.denseOff != nil {
		if off := p.denseOff[j]; off >= 0 {
			return colView{dense: p.slab[off : off+p.WordRows]}
		}
	}
	lo, hi := p.colPtr[j], p.colPtr[j+1]
	return colView{wr: p.wordRow[lo:hi], ws: p.words[lo:hi]}
}

// pairPopcount dispatches one Gram cell to the kernel matching the two
// columns' layouts: dense×dense runs the dispatched slab AND+popcount
// kernel (portable 8-way or AVX-512 VPOPCNTQ, see bitutil.Kernel),
// dense×sparse gathers by the sparse side's word-row indices, and
// sparse×sparse keeps the historical index merge. All three compute the
// same Σ popcount(vi ∧ vj), so the result is independent of the layout.
func pairPopcount(a, b colView) int {
	switch {
	case a.dense != nil && b.dense != nil:
		return bitutil.PopcountAndSlice(a.dense, b.dense)
	case a.dense != nil:
		return gatherPopcountAnd(a.dense, b.wr, b.ws)
	case b.dense != nil:
		return gatherPopcountAnd(b.dense, a.wr, a.ws)
	default:
		return mergePopcount(a.wr, a.ws, b.wr, b.ws)
	}
}

// gatherPopcountAnd accumulates popcount(dense[wr[k]] & ws[k]): the sparse
// side drives, each of its stored words gathers its partner by direct
// indexing into the dense slab — no merge.
func gatherPopcountAnd(dense []uint64, wr []int, ws []uint64) int {
	acc := 0
	for k, w := range wr {
		acc += bitutil.PopcountAnd(dense[w], ws[k])
	}
	return acc
}

// mergePopcount merges two sorted (wordRow, word) streams and accumulates
// popcount(wi & wj) on matching word rows.
func mergePopcount(wi []int, vi []uint64, wj []int, vj []uint64) int {
	acc, a, b := 0, 0, 0
	for a < len(wi) && b < len(wj) {
		switch {
		case wi[a] < wj[b]:
			a++
		case wi[a] > wj[b]:
			b++
		default:
			acc += bitutil.PopcountAnd(vi[a], vj[b])
			a++
			b++
		}
	}
	return acc
}

// Gram computes B = ÂᵀÂ over the popcount-AND semiring (Eq. 7):
// B[i][j] = Σ_k popcount(Â[k][i] ∧ Â[k][j]). With indicator data this equals
// the intersection cardinality |X_i ∩ X_j| restricted to the rows covered by
// this batch. The result is a dense Cols×Cols matrix.
func (p *Packed) Gram() *sparse.Dense[int64] {
	out := sparse.MustDense[int64](p.Cols, p.Cols)
	p.GramAccumulate(out)
	return out
}

// GramAccumulate adds this batch's Gram contribution into an existing dense
// accumulator, implementing the per-batch accumulation of Eq. 4, on the
// serial path.
func (p *Packed) GramAccumulate(into *sparse.Dense[int64]) {
	p.GramAccumulateWorkers(into, 1)
}

// GramAccumulateWorkers is GramAccumulate evaluated on a shared-memory
// worker pool. workers follows the par convention: 0 resolves to
// runtime.GOMAXPROCS(0), 1 runs the exact serial loop, n > 1 tiles the
// upper-triangular column-pair space into square output blocks and hands
// the tiles to n goroutines. Each tile accumulates into a private dense
// slab and then flushes it into `into` with direct indexed writes; because
// only tiles on or above the diagonal exist and each mirrors its own block,
// the flushed regions are pairwise disjoint, so the writes are race-free
// and the result is bit-identical to the serial path for every workers
// value (int64 addition is associative and each cell is computed once).
// Every cell dispatches through pairPopcount, so the kernel choice follows
// the two columns' storage layouts.
func (p *Packed) GramAccumulateWorkers(into *sparse.Dense[int64], workers int) {
	p.gramAccumulate(nil, into, workers, nil, nil)
}

// GramAccumulateCtx is GramAccumulateWorkers with cooperative cancellation:
// the tiled accumulation polls ctx between tiles and returns ctx.Err() once
// cancelled, leaving `into` partially accumulated (callers abandon the run).
// A cancellable context also routes the workers <= 1 case through the tile
// loop — executed serially, in tile order — so even single-worker kernels
// have interruption points; B is an int64 sum, so the accumulation order
// does not change the result. A nil or never-cancellable context is exactly
// GramAccumulateWorkers.
func (p *Packed) GramAccumulateCtx(ctx context.Context, into *sparse.Dense[int64], workers int) error {
	return p.gramAccumulate(ctx, into, workers, nil, nil)
}

// GramAccumulateCtxArena is GramAccumulateCtx drawing its transient buffers
// — the tile list and the per-worker tile accumulators — from an Arena, so
// a batch loop that calls it repeatedly allocates nothing in steady state.
// The result is bit-identical to the arena-free paths; a nil arena is
// exactly GramAccumulateCtx. The arena must not be shared with a concurrent
// Gram call (see Arena).
func (p *Packed) GramAccumulateCtxArena(ctx context.Context, into *sparse.Dense[int64], workers int, arena *Arena) error {
	return p.gramAccumulate(ctx, into, workers, arena, nil)
}

// GramAccumulateMaskedCtxArena is GramAccumulateCtxArena restricted to the
// column pairs set in mask — the exact tier of the MinHash prescreening
// pipeline. Output tiles containing no surviving pair are skipped whole
// (they are never scheduled), and within surviving tiles only surviving
// cells dispatch a popcount, so pruned pairs' accumulator cells are never
// touched and stay exactly 0. A nil mask computes every pair; the result
// for surviving pairs is bit-identical to the unmasked kernel.
func (p *Packed) GramAccumulateMaskedCtxArena(ctx context.Context, into *sparse.Dense[int64], workers int, arena *Arena, mask *PairMask) error {
	return p.gramAccumulate(ctx, into, workers, arena, mask)
}

func (p *Packed) gramAccumulate(ctx context.Context, into *sparse.Dense[int64], workers int, arena *Arena, mask *PairMask) error {
	if into.Rows != p.Cols || into.Cols != p.Cols {
		//gas:invariant the accumulator is allocated from this matrix's own Cols by every caller; a mismatch is an engine bug
		panic(fmt.Sprintf("bitmat: Gram accumulator shape %dx%d, want %dx%d", into.Rows, into.Cols, p.Cols, p.Cols))
	}
	workers = par.Resolve(workers)
	cancellable := ctx != nil && ctx.Done() != nil
	if (workers <= 1 && !cancellable) || p.Cols < 2 {
		p.gramAccumulateSerial(into, mask)
		return nil
	}
	edge := tileEdge(workers, func(e int) int {
		nt := (p.Cols + e - 1) / e
		return nt * (nt + 1) / 2
	})
	tiles := arena.getSpecs()
	for i0 := 0; i0 < p.Cols; i0 += edge {
		i1 := min(i0+edge, p.Cols)
		for j0 := i0; j0 < p.Cols; j0 += edge {
			t := tileSpec{i0, i1, j0, min(j0+edge, p.Cols)}
			// Tile-level prescreen skip: a tile none of whose pairs
			// survived the sketch gate is never scheduled.
			if mask != nil && !mask.anyInTile(t.i0, t.i1, t.j0, t.j1) {
				continue
			}
			tiles = append(tiles, t)
		}
	}
	arena.ensureWorkers(min(workers, len(tiles)))
	stride := into.Cols
	err := par.ForEachWorkerCtx(ctx, workers, len(tiles), func(w, k int) {
		t := tiles[k]
		tw := t.j1 - t.j0
		slab := arena.workerTile(w, (t.i1-t.i0)*tw)
		for i := t.i0; i < t.i1; i++ {
			vi := p.view(i)
			if vi.empty() {
				continue
			}
			row := slab[(i-t.i0)*tw:]
			for j := max(t.j0, i); j < t.j1; j++ {
				if mask != nil && !mask.Pair(i, j) {
					continue
				}
				vj := p.view(j)
				if vj.empty() {
					continue
				}
				row[j-t.j0] = int64(pairPopcount(vi, vj))
			}
		}
		for i := t.i0; i < t.i1; i++ {
			row := slab[(i-t.i0)*tw:]
			for j := t.j0; j < t.j1; j++ {
				c := row[j-t.j0]
				if c == 0 {
					continue
				}
				into.Data[i*stride+j] += c
				if i != j {
					into.Data[j*stride+i] += c
				}
			}
		}
	})
	arena.putSpecs(tiles)
	return err
}

// gramAccumulateSerial is the historical single-threaded kernel, with the
// per-cell closure accumulation replaced by direct slice indexing and the
// popcount dispatched by column layout.
func (p *Packed) gramAccumulateSerial(into *sparse.Dense[int64], mask *PairMask) {
	stride := into.Cols
	for i := 0; i < p.Cols; i++ {
		vi := p.view(i)
		if vi.empty() {
			continue
		}
		if mask != nil && !mask.AnyInRange(i, i, p.Cols) {
			continue
		}
		for j := i; j < p.Cols; j++ {
			if mask != nil && !mask.Pair(i, j) {
				continue
			}
			vj := p.view(j)
			if vj.empty() {
				continue
			}
			c := int64(pairPopcount(vi, vj))
			if c == 0 {
				continue
			}
			into.Data[i*stride+j] += c
			if i != j {
				into.Data[j*stride+i] += c
			}
		}
	}
}

// tileSpec is one output tile: rows [i0, i1) × cols [j0, j1).
type tileSpec struct {
	i0, i1, j0, j1 int
}

// tileEdge picks the edge length of the square output tiles: start from a
// cache-friendly 64×64 block and halve until the pool has at least four
// tiles per worker to balance (or the edge reaches its floor). count maps
// a candidate edge to the number of tiles it induces.
func tileEdge(workers int, count func(edge int) int) int {
	edge := 64
	for edge > 8 && count(edge) < 4*workers {
		edge /= 2
	}
	return edge
}

// GramBlock computes the Cols(a)×Cols(b) block of the Gram product between
// two packed column blocks a and b that share the same row space:
// out[i][j] = Σ_k popcount(a[k][i] ∧ b[k][j]). It is the local kernel of the
// distributed SUMMA product in internal/dist, where processor (s, t) of a 2D
// grid multiplies its row-panel copies of column blocks s and t.
func GramBlock(a, b *Packed) *sparse.Dense[int64] {
	return GramBlockWorkers(a, b, 1)
}

// GramBlockWorkers is GramBlock evaluated on a shared-memory worker pool
// (same workers convention as GramAccumulateWorkers). The rectangular
// output is tiled into square blocks; tiles write disjoint regions of the
// fresh result matrix, so no synchronisation beyond the pool join is
// needed and the result is identical for every workers value. The two
// operands may use different storage layouts; every cell dispatches
// through pairPopcount.
func GramBlockWorkers(a, b *Packed, workers int) *sparse.Dense[int64] {
	if a.WordRows != b.WordRows || a.B != b.B {
		//gas:invariant both operands are column blocks of one corpus packing and share its row space by construction
		panic(fmt.Sprintf("bitmat: GramBlock row-space mismatch (%d,%d) vs (%d,%d)", a.WordRows, a.B, b.WordRows, b.B))
	}
	out := sparse.MustDense[int64](a.Cols, b.Cols)
	workers = par.Resolve(workers)
	if workers <= 1 || a.Cols == 0 || b.Cols == 0 {
		gramBlockInto(a, b, out, tileSpec{0, a.Cols, 0, b.Cols})
		return out
	}
	edge := tileEdge(workers, func(e int) int {
		return ((a.Cols + e - 1) / e) * ((b.Cols + e - 1) / e)
	})
	var tiles []tileSpec
	for i0 := 0; i0 < a.Cols; i0 += edge {
		i1 := min(i0+edge, a.Cols)
		for j0 := 0; j0 < b.Cols; j0 += edge {
			tiles = append(tiles, tileSpec{i0, i1, j0, min(j0+edge, b.Cols)})
		}
	}
	par.ForEach(workers, len(tiles), func(k int) {
		gramBlockInto(a, b, out, tiles[k])
	})
	return out
}

// gramBlockInto fills one output tile of the a×b Gram block with direct
// indexed writes, dispatching each cell by the operand columns' layouts.
func gramBlockInto(a, b *Packed, out *sparse.Dense[int64], t tileSpec) {
	stride := out.Cols
	for i := t.i0; i < t.i1; i++ {
		vi := a.view(i)
		if vi.empty() {
			continue
		}
		row := out.Data[i*stride : (i+1)*stride]
		for j := t.j0; j < t.j1; j++ {
			vj := b.view(j)
			if vj.empty() {
				continue
			}
			row[j] = int64(pairPopcount(vi, vj))
		}
	}
}

// ColPopcounts returns the per-column set-bit counts, i.e. this batch's
// contribution to the per-sample cardinalities â of Eq. 4.
func (p *Packed) ColPopcounts() []int64 {
	out := make([]int64, p.Cols)
	for j := 0; j < p.Cols; j++ {
		if p.IsDense(j) {
			out[j] = int64(bitutil.PopcountSlice(p.denseColWords(j)))
			continue
		}
		lo, hi := p.colPtr[j], p.colPtr[j+1]
		out[j] = int64(bitutil.PopcountSlice(p.words[lo:hi]))
	}
	return out
}

// ColRange extracts the packed sub-matrix of columns [lo, hi), sharing the
// same row space and the dense-threshold spec. Used to build per-processor
// column blocks for the distributed Gram product. Because neither WordRows
// nor any column's stored-word count changes, each column keeps its layout
// and is copied directly — dense slabs as slabs, sparse streams into
// exactly presized streams.
func (p *Packed) ColRange(lo, hi int) *Packed {
	if lo < 0 || hi > p.Cols || lo > hi {
		//gas:invariant column ranges come from grid.BlockRange over this matrix's own Cols
		panic(fmt.Sprintf("bitmat: ColRange [%d,%d) out of range for %d columns", lo, hi, p.Cols))
	}
	out := &Packed{
		WordRows:   p.WordRows,
		Cols:       hi - lo,
		B:          p.B,
		ActiveRows: p.ActiveRows,
		threshold:  p.threshold,
		colPtr:     make([]int, hi-lo+1),
	}
	sparseWords, numDense := 0, 0
	for j := lo; j < hi; j++ {
		if p.IsDense(j) {
			numDense++
		} else {
			sparseWords += p.colPtr[j+1] - p.colPtr[j]
		}
	}
	out.wordRow = make([]int, 0, sparseWords)
	out.words = make([]uint64, 0, sparseWords)
	if numDense > 0 {
		out.denseOff = make([]int, hi-lo)
		out.slab = make([]uint64, 0, numDense*p.WordRows)
	}
	for j := lo; j < hi; j++ {
		if p.IsDense(j) {
			out.denseOff[j-lo] = len(out.slab)
			out.slab = append(out.slab, p.denseColWords(j)...)
		} else {
			if out.denseOff != nil {
				out.denseOff[j-lo] = -1
			}
			clo, chi := p.colPtr[j], p.colPtr[j+1]
			out.wordRow = append(out.wordRow, p.wordRow[clo:chi]...)
			out.words = append(out.words, p.words[clo:chi]...)
		}
		out.colPtr[j-lo+1] = len(out.words)
	}
	for _, w := range out.slab {
		if w != 0 {
			out.slabNNZ++
		}
	}
	return out
}

// WordRowRange extracts the packed sub-matrix restricted to word rows
// [lo, hi), with word-row indices shifted to start at zero. Used to split
// the contraction (row) dimension across the c replication layers of the
// 3D processor grid. A count pass sizes the output exactly, and each
// column's layout is re-decided against the threshold resolved at the new
// (smaller) word-row height, so a column dense over the full batch may
// return to the sparse stream in a thin layer slice and vice versa never
// (slicing cannot increase a column's stored-word count beyond the height).
func (p *Packed) WordRowRange(lo, hi int) *Packed {
	if lo < 0 || hi > p.WordRows || lo > hi {
		//gas:invariant word-row ranges come from grid.BlockRange over this matrix's own WordRows
		panic(fmt.Sprintf("bitmat: WordRowRange [%d,%d) out of range for %d word rows", lo, hi, p.WordRows))
	}
	active := (hi - lo) * p.B
	if rem := p.ActiveRows - lo*p.B; hi == p.WordRows && rem < active {
		active = rem
	}
	if active < 0 {
		active = 0
	}
	out := &Packed{
		WordRows:   hi - lo,
		Cols:       p.Cols,
		B:          p.B,
		ActiveRows: active,
		threshold:  p.threshold,
		colPtr:     make([]int, p.Cols+1),
	}
	t := resolveDenseThreshold(p.threshold, out.WordRows)

	// Count pass: stored words of each column inside [lo, hi). Sparse
	// streams are sorted by word row, so the range is two binary searches;
	// dense slabs count their nonzero words in the slice.
	counts := make([]int, p.Cols)
	starts := make([]int, p.Cols) // sparse columns: stream index of first word in range
	sparseWords, numDense := 0, 0
	for j := 0; j < p.Cols; j++ {
		var cnt int
		if p.IsDense(j) {
			for _, w := range p.denseColWords(j)[lo:hi] {
				if w != 0 {
					cnt++
				}
			}
		} else {
			clo, chi := p.colPtr[j], p.colPtr[j+1]
			wr := p.wordRow[clo:chi]
			s := sort.SearchInts(wr, lo)
			e := sort.SearchInts(wr, hi)
			starts[j] = clo + s
			cnt = e - s
		}
		counts[j] = cnt
		if t >= 0 && cnt >= t {
			numDense++
		} else {
			sparseWords += cnt
		}
	}

	out.wordRow = make([]int, 0, sparseWords)
	out.words = make([]uint64, 0, sparseWords)
	if numDense > 0 {
		out.denseOff = make([]int, p.Cols)
		out.slab = make([]uint64, numDense*out.WordRows)
	}
	off := 0
	for j := 0; j < p.Cols; j++ {
		dense := t >= 0 && counts[j] >= t
		if out.denseOff != nil && !dense {
			out.denseOff[j] = -1
		}
		switch {
		case dense && p.IsDense(j):
			out.denseOff[j] = off
			copy(out.slab[off:off+out.WordRows], p.denseColWords(j)[lo:hi])
			off += out.WordRows
		case dense:
			out.denseOff[j] = off
			row := out.slab[off : off+out.WordRows]
			for k := starts[j]; k < starts[j]+counts[j]; k++ {
				row[p.wordRow[k]-lo] = p.words[k]
			}
			off += out.WordRows
		case p.IsDense(j):
			for k, w := range p.denseColWords(j)[lo:hi] {
				if w != 0 {
					out.wordRow = append(out.wordRow, k)
					out.words = append(out.words, w)
				}
			}
		default:
			for k := starts[j]; k < starts[j]+counts[j]; k++ {
				out.wordRow = append(out.wordRow, p.wordRow[k]-lo)
				out.words = append(out.words, p.words[k])
			}
		}
		out.colPtr[j+1] = len(out.words)
	}
	for _, w := range out.slab {
		if w != 0 {
			out.slabNNZ++
		}
	}
	return out
}

// Entries returns the packed matrix as coordinate triples
// (wordRow, col, word), sorted by (col, wordRow) regardless of the storage
// layout; used to move packed blocks through the BSP runtime. The output
// is sized exactly from the stored-word counts.
func (p *Packed) Entries() []PackedEntry {
	out := make([]PackedEntry, 0, p.NNZWords())
	for j := 0; j < p.Cols; j++ {
		if p.IsDense(j) {
			for k, w := range p.denseColWords(j) {
				if w != 0 {
					out = append(out, PackedEntry{WordRow: k, Col: j, Word: w})
				}
			}
			continue
		}
		for k := p.colPtr[j]; k < p.colPtr[j+1]; k++ {
			out = append(out, PackedEntry{WordRow: p.wordRow[k], Col: j, Word: p.words[k]})
		}
	}
	return out
}

// PackedEntry is one nonzero packed word in coordinate form.
type PackedEntry struct {
	WordRow int
	Col     int
	Word    uint64
}

// FromEntries rebuilds a Packed matrix from coordinate packed entries with
// the DenseAuto layout. Entries for the same (wordRow, col) are
// OR-combined. Entries already sorted by (col, wordRow) — the order
// Packed.Entries and the batch packing in internal/core emit — are
// assembled in a single linear pass.
func FromEntries(entries []PackedEntry, wordRows, cols, b, activeRows int) *Packed {
	return FromEntriesThreshold(entries, wordRows, cols, b, activeRows, DenseAuto)
}

// FromEntriesThreshold is FromEntries with an explicit dense-threshold spec.
func FromEntriesThreshold(entries []PackedEntry, wordRows, cols, b, activeRows, denseThreshold int) *Packed {
	return FromEntriesThresholdArena(entries, wordRows, cols, b, activeRows, denseThreshold, nil)
}

// FromEntriesThresholdArena is FromEntriesThreshold drawing the matrix's
// backing buffers (column pointers, sparse streams, dense slabs) from an
// Arena so a per-batch rebuild loop reuses one generation's buffers for the
// next. The caller must call Release on the returned matrix once it is done
// with it; a nil arena is exactly FromEntriesThreshold. The layout and
// contents are identical to the arena-free construction.
func FromEntriesThresholdArena(entries []PackedEntry, wordRows, cols, b, activeRows, denseThreshold int, arena *Arena) *Packed {
	sorted := true
	for i, e := range entries {
		if e.Col < 0 || e.Col >= cols || e.WordRow < 0 || e.WordRow >= wordRows {
			//gas:invariant entries are re-packed from an existing Packed's Entries() against the same dimensions
			panic(fmt.Sprintf("bitmat: entry (%d,%d) out of range %dx%d", e.WordRow, e.Col, wordRows, cols))
		}
		if i > 0 && (e.Col < entries[i-1].Col ||
			(e.Col == entries[i-1].Col && e.WordRow < entries[i-1].WordRow)) {
			sorted = false
		}
	}
	out := arena.getPacked()
	out.WordRows = wordRows
	out.Cols = cols
	out.B = b
	out.ActiveRows = activeRows
	out.threshold = denseThreshold
	out.colPtr = arena.getInts(cols + 1)
	out.arena = arena
	if sorted {
		out.wordRow = arena.getIntsCap(len(entries))
		out.words = arena.getWordsCap(len(entries))
		for i := 0; i < len(entries); {
			e := entries[i]
			word := e.Word
			for i++; i < len(entries) && entries[i].Col == e.Col && entries[i].WordRow == e.WordRow; i++ {
				word |= entries[i].Word
			}
			out.wordRow = append(out.wordRow, e.WordRow)
			out.words = append(out.words, word)
			out.colPtr[e.Col+1] = len(out.words)
		}
		for j := 1; j <= cols; j++ {
			if out.colPtr[j] < out.colPtr[j-1] {
				out.colPtr[j] = out.colPtr[j-1]
			}
		}
		out.densify()
		return out
	}
	out.wordRow = arena.getIntsCap(len(entries))
	out.words = arena.getWordsCap(len(entries))
	perCol := make([]map[int]uint64, cols)
	for _, e := range entries {
		if perCol[e.Col] == nil {
			perCol[e.Col] = make(map[int]uint64)
		}
		perCol[e.Col][e.WordRow] |= e.Word
	}
	for j := 0; j < cols; j++ {
		m := perCol[j]
		keys := make([]int, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			out.wordRow = append(out.wordRow, k)
			out.words = append(out.words, m[k])
		}
		out.colPtr[j+1] = len(out.words)
	}
	out.densify()
	return out
}
