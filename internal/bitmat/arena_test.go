package bitmat

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"genomeatscale/internal/sparse"
)

// randomPackedEntries draws a random sorted (col, wordRow) entry stream at
// the given word-level density — the input shape the engine's batch loop
// feeds FromEntriesThresholdArena.
func randomPackedEntries(rng *rand.Rand, wordRows, cols int, density float64) []PackedEntry {
	var out []PackedEntry
	for j := 0; j < cols; j++ {
		for w := 0; w < wordRows; w++ {
			if rng.Float64() < density {
				out = append(out, PackedEntry{WordRow: w, Col: j, Word: rng.Uint64() | 1})
			}
		}
	}
	return out
}

// assertSamePacked pins every observable of an arena-built matrix against
// its arena-free twin.
func assertSamePacked(t *testing.T, want, got *Packed) {
	t.Helper()
	if want.WordRows != got.WordRows || want.Cols != got.Cols || want.B != got.B ||
		want.ActiveRows != got.ActiveRows {
		t.Fatalf("shape mismatch: want %+v, got %+v", want, got)
	}
	if w, g := want.NNZWords(), got.NNZWords(); w != g {
		t.Fatalf("NNZWords: want %d, got %d", w, g)
	}
	if w, g := want.DenseCols(), got.DenseCols(); w != g {
		t.Fatalf("DenseCols: want %d, got %d", w, g)
	}
	if w, g := want.WordOccupancy(), got.WordOccupancy(); w != g {
		t.Fatalf("WordOccupancy: want %g, got %g", w, g)
	}
	wantEnt, gotEnt := want.Entries(), got.Entries()
	if len(wantEnt) != len(gotEnt) {
		t.Fatalf("Entries length: want %d, got %d", len(wantEnt), len(gotEnt))
	}
	for i := range wantEnt {
		if wantEnt[i] != gotEnt[i] {
			t.Fatalf("entry %d: want %+v, got %+v", i, wantEnt[i], gotEnt[i])
		}
	}
	wg, gg := want.Gram(), got.Gram()
	if !sparse.Equal(wg, gg, int64Eq) {
		t.Fatal("Gram differs between arena and arena-free builds")
	}
}

// TestFromEntriesArenaMatchesPlain: matrices built through an arena must be
// observably identical to plain ones across thresholds and repeated
// build→use→Release cycles that recycle the same buffers.
func TestFromEntriesArenaMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	arena := NewArena()
	for _, threshold := range thresholdSweep {
		for cycle := 0; cycle < 6; cycle++ {
			wordRows := 1 + rng.Intn(40)
			cols := 1 + rng.Intn(50)
			entries := randomPackedEntries(rng, wordRows, cols, 0.3)
			want := FromEntriesThreshold(entries, wordRows, cols, 64, wordRows*64, threshold)
			got := FromEntriesThresholdArena(entries, wordRows, cols, 64, wordRows*64, threshold, arena)
			assertSamePacked(t, want, got)
			got.Release()
		}
	}
}

// TestFromEntriesArenaUnsorted covers the map-based unsorted construction
// path with arena buffers.
func TestFromEntriesArenaUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	arena := NewArena()
	for cycle := 0; cycle < 4; cycle++ {
		entries := randomPackedEntries(rng, 20, 30, 0.25)
		shuffled := append([]PackedEntry(nil), entries...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		want := FromEntriesThreshold(entries, 20, 30, 64, 20*64, DenseAuto)
		got := FromEntriesThresholdArena(shuffled, 20, 30, 64, 20*64, DenseAuto, arena)
		assertSamePacked(t, want, got)
		got.Release()
	}
}

// TestGramAccumulateArenaMatches: the arena-recycled tiled accumulation is
// bit-identical to the arena-free paths for every worker count, including
// across consecutive calls reusing the same per-worker tile slots.
func TestGramAccumulateArenaMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	arena := NewArena()
	ctx := context.Background()
	for trial := 0; trial < 5; trial++ {
		wordRows := 1 + rng.Intn(60)
		cols := 2 + rng.Intn(120)
		entries := randomPackedEntries(rng, wordRows, cols, 0.2)
		p := FromEntriesThreshold(entries, wordRows, cols, 64, wordRows*64, DenseAuto)
		want, seed := seededAccumulator(rng, cols)
		p.GramAccumulate(want)
		for _, workers := range []int{1, 2, 4, 7} {
			got := seed.Clone()
			if err := p.GramAccumulateCtxArena(ctx, got, workers, arena); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !sparse.Equal(want, got, int64Eq) {
				t.Fatalf("trial=%d workers=%d: arena Gram differs from serial", trial, workers)
			}
		}
	}
}

// TestArenaSteadyStateAllocations: after a warm-up batch, a
// pack→accumulate→release cycle through the arena must allocate (almost)
// nothing — the property the engine's batch loop relies on. The unsorted
// fallback and accumulator setup are excluded; this is the sorted
// steady-state path.
func TestArenaSteadyStateAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	const wordRows, cols = 32, 64
	entries := randomPackedEntries(rng, wordRows, cols, 0.4)
	arena := NewArena()
	acc := sparse.MustDense[int64](cols, cols)
	cycle := func() {
		p := FromEntriesThresholdArena(entries, wordRows, cols, 64, wordRows*64, DenseAuto, arena)
		if err := p.GramAccumulateCtxArena(context.Background(), acc, 1, arena); err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	for i := 0; i < 3; i++ {
		cycle() // warm the free lists (first cycles may grow buffers)
	}
	if allocs := testing.AllocsPerRun(10, cycle); allocs > 2 {
		t.Fatalf("steady-state arena cycle allocates %.1f objects/op, want ~0", allocs)
	}
}

// TestArenaReleaseIdempotent: Release on an arena-free matrix is a no-op,
// and double Release does not corrupt the arena.
func TestArenaReleaseIdempotent(t *testing.T) {
	entries := []PackedEntry{{WordRow: 0, Col: 0, Word: 3}}
	plain := FromEntriesThreshold(entries, 2, 2, 64, 128, DenseAuto)
	plain.Release()
	if plain.NNZWords() != 1 {
		t.Fatal("Release on arena-free matrix must not drop buffers")
	}
	arena := NewArena()
	p := FromEntriesThresholdArena(entries, 2, 2, 64, 128, DenseAuto, arena)
	p.Release()
	p.Release() // second call must be a no-op (arena pointer cleared)
	q := FromEntriesThresholdArena(entries, 2, 2, 64, 128, DenseAuto, arena)
	if got := q.NNZWords(); got != 1 {
		t.Fatalf("rebuild after double release: NNZWords=%d, want 1", got)
	}
}

// TestWordOccupancy pins the occupancy figure against a direct count.
func TestWordOccupancy(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	entries := randomPackedEntries(rng, 16, 10, 0.5)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Col != entries[j].Col {
			return entries[i].Col < entries[j].Col
		}
		return entries[i].WordRow < entries[j].WordRow
	})
	p := FromEntriesThreshold(entries, 16, 10, 64, 16*64, DenseAuto)
	want := float64(len(entries)) / float64(16*10)
	if got := p.WordOccupancy(); got != want {
		t.Fatalf("WordOccupancy=%g, want %g", got, want)
	}
	var empty Packed
	if got := empty.WordOccupancy(); got != 0 {
		t.Fatalf("empty WordOccupancy=%g, want 0", got)
	}
}
