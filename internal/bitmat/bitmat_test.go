package bitmat

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"genomeatscale/internal/semiring"
	"genomeatscale/internal/sparse"
)

// randomIndicator builds a random boolean indicator matrix in CSC form.
func randomIndicator(rng *rand.Rand, rows, cols int, density float64) *sparse.CSC[bool] {
	coo := sparse.MustCOO[bool](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				coo.Append(i, j, true)
			}
		}
	}
	return sparse.CSCFromCOO(coo, semiring.OrBool())
}

func TestPackColumnsBasic(t *testing.T) {
	// Column 0 has rows {0, 1, 64}; column 1 has row {63}.
	p := PackColumns([][]int{{0, 1, 64}, {63}}, 70, 64)
	if p.WordRows != 2 {
		t.Fatalf("WordRows = %d, want 2", p.WordRows)
	}
	if p.NNZWords() != 3 {
		t.Fatalf("NNZWords = %d, want 3", p.NNZWords())
	}
	if p.PopcountTotal() != 4 {
		t.Fatalf("PopcountTotal = %d, want 4", p.PopcountTotal())
	}
	wr, ws := p.Col(0)
	if len(wr) != 2 || wr[0] != 0 || wr[1] != 1 {
		t.Fatalf("col 0 word rows = %v", wr)
	}
	if ws[0] != 0b11 || ws[1] != 1 {
		t.Fatalf("col 0 words = %v", ws)
	}
	wr1, ws1 := p.Col(1)
	if len(wr1) != 1 || wr1[0] != 0 || ws1[0] != 1<<63 {
		t.Fatalf("col 1 = %v %v", wr1, ws1)
	}
}

func TestPackColumnsNarrowWidth(t *testing.T) {
	// With b = 8, row 9 lands in word row 1, bit 1.
	p := PackColumns([][]int{{9}}, 16, 8)
	if p.WordRows != 2 {
		t.Fatalf("WordRows = %d, want 2", p.WordRows)
	}
	wr, ws := p.Col(0)
	if wr[0] != 1 || ws[0] != 2 {
		t.Fatalf("got %v %v, want word row 1 value 2", wr, ws)
	}
}

func TestPackColumnsPanics(t *testing.T) {
	cases := []func(){
		func() { PackColumns(nil, 10, 0) },
		func() { PackColumns(nil, 10, 65) },
		func() { PackColumns(nil, -1, 64) },
		func() { PackColumns([][]int{{10}}, 10, 64) },
		func() { PackColumns([][]int{{5, 3}}, 10, 64) }, // unsorted
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, b := range []int{8, 32, 64} {
		for trial := 0; trial < 8; trial++ {
			rows := 1 + rng.Intn(200)
			cols := 1 + rng.Intn(10)
			csc := randomIndicator(rng, rows, cols, 0.15)
			p := PackCSC(csc, b)
			back := p.Unpack()
			if back.NNZ() != csc.NNZ() {
				t.Fatalf("b=%d: nnz %d after round trip, want %d", b, back.NNZ(), csc.NNZ())
			}
			for j := 0; j < cols; j++ {
				wantRows, _ := csc.Col(j)
				gotRows, _ := back.Col(j)
				if len(wantRows) != len(gotRows) {
					t.Fatalf("b=%d col %d: row count mismatch", b, j)
				}
				for k := range wantRows {
					if wantRows[k] != gotRows[k] {
						t.Fatalf("b=%d col %d: row %d vs %d", b, j, gotRows[k], wantRows[k])
					}
				}
			}
		}
	}
}

// The packed Gram product must agree with the uncompressed reference GramT
// over the (+,×) semiring — the equivalence that justifies Eq. 7.
func TestGramMatchesUncompressedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, b := range []int{16, 32, 64} {
		for trial := 0; trial < 10; trial++ {
			rows := 1 + rng.Intn(150)
			cols := 1 + rng.Intn(12)
			coo := sparse.MustCOO[int64](rows, cols)
			booCoo := sparse.MustCOO[bool](rows, cols)
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					if rng.Float64() < 0.2 {
						coo.Append(i, j, 1)
						booCoo.Append(i, j, true)
					}
				}
			}
			want := sparse.GramT(sparse.CSCFromCOO(coo, semiring.PlusInt64()), semiring.PlusTimesInt64())
			p := PackCSC(sparse.CSCFromCOO(booCoo, semiring.OrBool()), b)
			got := p.Gram()
			if !sparse.Equal(want, got, func(a, c int64) bool { return a == c }) {
				t.Fatalf("b=%d trial %d: packed Gram differs from reference", b, trial)
			}
		}
	}
}

func TestGramAccumulateShapePanics(t *testing.T) {
	p := PackColumns([][]int{{0}}, 1, 64)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.GramAccumulate(sparse.MustDense[int64](2, 2))
}

func TestColPopcounts(t *testing.T) {
	p := PackColumns([][]int{{0, 1, 2}, {}, {63, 64}}, 100, 64)
	pc := p.ColPopcounts()
	if pc[0] != 3 || pc[1] != 0 || pc[2] != 2 {
		t.Errorf("ColPopcounts = %v", pc)
	}
}

func TestGramBlockMatchesFullGram(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows, cols := 120, 9
	csc := randomIndicator(rng, rows, cols, 0.2)
	p := PackCSC(csc, 64)
	full := p.Gram()
	// Split columns into two blocks and recompose the Gram matrix from
	// GramBlock calls.
	split := 4
	a := p.ColRange(0, split)
	b := p.ColRange(split, cols)
	blocks := [][2]*Packed{{a, a}, {a, b}, {b, a}, {b, b}}
	offsets := [][2]int{{0, 0}, {0, split}, {split, 0}, {split, split}}
	for k, pair := range blocks {
		blk := GramBlock(pair[0], pair[1])
		ro, co := offsets[k][0], offsets[k][1]
		for i := 0; i < blk.Rows; i++ {
			for j := 0; j < blk.Cols; j++ {
				if blk.At(i, j) != full.At(ro+i, co+j) {
					t.Fatalf("block %d: (%d,%d) = %d, want %d", k, i, j, blk.At(i, j), full.At(ro+i, co+j))
				}
			}
		}
	}
}

func TestGramBlockMismatchPanics(t *testing.T) {
	a := PackColumns([][]int{{0}}, 64, 64)
	b := PackColumns([][]int{{0}}, 200, 64)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	GramBlock(a, b)
}

func TestWordRowRangeSplitsGram(t *testing.T) {
	// Splitting the contraction dimension across "layers" and summing the
	// partial Gram products must reproduce the full Gram product (the 3D
	// algorithm's reduction step).
	rng := rand.New(rand.NewSource(17))
	rows, cols := 300, 7
	csc := randomIndicator(rng, rows, cols, 0.1)
	p := PackCSC(csc, 64)
	full := p.Gram()
	acc := sparse.MustDense[int64](cols, cols)
	layers := 3
	per := (p.WordRows + layers - 1) / layers
	for l := 0; l < layers; l++ {
		lo := l * per
		hi := lo + per
		if hi > p.WordRows {
			hi = p.WordRows
		}
		if lo >= hi {
			continue
		}
		part := p.WordRowRange(lo, hi)
		part.GramAccumulate(acc)
	}
	if !sparse.Equal(full, acc, func(a, b int64) bool { return a == b }) {
		t.Error("sum of per-layer Gram products must equal the full Gram product")
	}
}

func TestColRangePanics(t *testing.T) {
	p := PackColumns([][]int{{0}, {1}}, 2, 64)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.ColRange(1, 3)
}

func TestWordRowRangePanics(t *testing.T) {
	p := PackColumns([][]int{{0}}, 64, 64)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.WordRowRange(0, 2)
}

func TestEntriesFromEntriesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	csc := randomIndicator(rng, 150, 6, 0.15)
	p := PackCSC(csc, 64)
	entries := p.Entries()
	q := FromEntries(entries, p.WordRows, p.Cols, p.B, p.ActiveRows)
	if !sparse.Equal(p.Gram(), q.Gram(), func(a, b int64) bool { return a == b }) {
		t.Error("round trip through Entries/FromEntries changed the matrix")
	}
	if q.NNZWords() != p.NNZWords() {
		t.Errorf("NNZWords = %d, want %d", q.NNZWords(), p.NNZWords())
	}
}

func TestFromEntriesUnsortedMatchesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	csc := randomIndicator(rng, 150, 6, 0.15)
	p := PackCSC(csc, 32)
	entries := p.Entries()
	shuffled := append([]PackedEntry(nil), entries...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	a := FromEntries(entries, p.WordRows, p.Cols, p.B, p.ActiveRows)
	b := FromEntries(shuffled, p.WordRows, p.Cols, p.B, p.ActiveRows)
	if !sparse.Equal(a.Gram(), b.Gram(), func(x, y int64) bool { return x == y }) {
		t.Error("unsorted entries assemble a different matrix than sorted entries")
	}
	if a.NNZWords() != b.NNZWords() {
		t.Errorf("NNZWords = %d vs %d", a.NNZWords(), b.NNZWords())
	}
}

func TestFromEntriesCombinesDuplicates(t *testing.T) {
	entries := []PackedEntry{
		{WordRow: 0, Col: 0, Word: 0b01},
		{WordRow: 0, Col: 0, Word: 0b10},
	}
	p := FromEntries(entries, 1, 1, 64, 2)
	if p.NNZWords() != 1 {
		t.Fatalf("NNZWords = %d, want 1", p.NNZWords())
	}
	_, ws := p.Col(0)
	if ws[0] != 0b11 {
		t.Errorf("combined word = %b, want 11", ws[0])
	}
}

func TestFromEntriesOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FromEntries([]PackedEntry{{WordRow: 5, Col: 0, Word: 1}}, 2, 1, 64, 100)
}

func TestMemoryWordsMonotone(t *testing.T) {
	small := PackColumns([][]int{{0}}, 64, 64)
	big := PackColumns([][]int{{0, 64, 128}, {1, 65}}, 200, 64)
	if big.MemoryWords() <= small.MemoryWords() {
		t.Error("more nonzero words must consume more memory")
	}
}

// Property: for any set of row indices, the packed column popcount equals
// the number of distinct indices (packing is lossless on cardinalities).
func TestColPopcountsEqualCardinalityProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		seen := map[int]bool{}
		rows := make([]int, 0, len(raw))
		for _, r := range raw {
			v := int(r % 1000)
			if !seen[v] {
				seen[v] = true
				rows = append(rows, v)
			}
		}
		sort.Ints(rows)
		p := PackColumns([][]int{rows}, 1000, 64)
		return p.ColPopcounts()[0] == int64(len(rows))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
