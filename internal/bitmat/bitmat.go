// Package bitmat implements the bitmask-compressed batch matrix Â(l) of
// SimilarityAtScale (Section III-B). After zero rows of a batch have been
// filtered out and the surviving rows renumbered by the prefix sum of the
// filter vector, segments of b consecutive rows of each column are packed
// into b-bit words. The Gram product B = ÂᵀÂ is then evaluated with the
// popcount-AND semiring (Eq. 7), which both shrinks the per-nonzero
// metadata and lets a single machine instruction process b row positions.
//
// Storage is hybrid per column. The filter/compact stage guarantees that
// every surviving row is non-empty, so packed columns of a filtered batch
// are often dense in the word-row dimension; storing such a column as a
// sorted (wordRow, word) stream makes every Gram cell pay a branchy index
// merge. Columns whose stored-word count reaches a density threshold are
// therefore stored as a full contiguous []uint64 slab of length WordRows
// (word row w at slab index w, absent words zero), which the Gram kernels
// process with straight AND+popcount loops; the remaining columns keep the
// compact sparse stream. See DenseAuto/DenseNever for the threshold
// convention.
package bitmat

import (
	"fmt"

	"genomeatscale/internal/bitutil"
	"genomeatscale/internal/semiring"
	"genomeatscale/internal/sparse"
)

// Dense-threshold specs. The spec is a per-matrix setting, inherited by
// every derived matrix (ColRange, WordRowRange, Entries→FromEntries), and
// resolved against the matrix's WordRows at construction time:
//
//	DenseAuto  (0): threshold = max(1, WordRows/4) — a column occupying at
//	               least a quarter of the word rows is stored dense.
//	DenseNever (<0): every column keeps the sparse stream (the historical
//	               sparse-only layout).
//	spec > 0:      explicit stored-word count; columns with at least that
//	               many stored words are stored dense (1 = every non-empty
//	               column dense).
const (
	DenseAuto  = 0
	DenseNever = -1
)

// resolveDenseThreshold maps a threshold spec to a concrete stored-word
// count for a matrix with the given word-row height, or -1 when dense
// storage is disabled.
func resolveDenseThreshold(spec, wordRows int) int {
	switch {
	case spec < 0:
		return -1
	case spec == DenseAuto:
		return max(1, wordRows/4)
	default:
		return spec
	}
}

// Packed is a column-compressed matrix whose values are b-bit masks of row
// segments. Rows of Packed are "word rows": word row w of column j covers
// original (filtered) rows [w*B, (w+1)*B).
type Packed struct {
	// WordRows is the number of packed word rows, ceil(activeRows / B).
	WordRows int
	// Cols is the number of data samples (columns of the indicator matrix).
	Cols int
	// B is the number of row positions packed per word (1..64).
	B int
	// ActiveRows is the number of (filtered) rows represented.
	ActiveRows int

	// threshold is the dense-threshold spec (DenseAuto, DenseNever or an
	// explicit word count) the matrix was built with; derived matrices
	// inherit it.
	threshold int

	// Sparse columns: compressed (wordRow, word) streams. Dense columns
	// contribute empty colPtr ranges.
	colPtr  []int    // length Cols+1
	wordRow []int    // length of the sparse part of NNZWords
	words   []uint64 // parallel to wordRow

	// Dense columns: denseOff[j] is the column's offset into slab (its words
	// occupy slab[denseOff[j] : denseOff[j]+WordRows]), or -1 for sparse
	// columns. denseOff is nil when no column is dense.
	denseOff []int
	slab     []uint64
	slabNNZ  int // number of nonzero words stored in slab

	// arena, when non-nil, is the Arena this matrix's backing buffers were
	// drawn from (FromEntriesThresholdArena); Release returns them to it.
	arena *Arena
}

// DenseThresholdSpec returns the dense-threshold spec (DenseAuto, DenseNever
// or an explicit stored-word count) this matrix was built with.
func (p *Packed) DenseThresholdSpec() int { return p.threshold }

// IsDense reports whether column j is stored as a contiguous dense slab.
func (p *Packed) IsDense(j int) bool {
	return p.denseOff != nil && p.denseOff[j] >= 0
}

// DenseCols returns the number of columns stored dense.
func (p *Packed) DenseCols() int {
	if p.denseOff == nil {
		return 0
	}
	return len(p.slab) / max(1, p.WordRows)
}

// NNZWords returns the number of stored nonzero packed words across both
// layouts. (Zero words never survive densification, and the packing paths
// never emit them.)
func (p *Packed) NNZWords() int { return len(p.words) + p.slabNNZ }

// WordOccupancy returns the fraction of the WordRows×Cols packed word grid
// holding a nonzero stored word. This is the measured counterpart of the
// occupancy the autotuner predicts from the dataset's nonzero density when
// choosing the storage layout (costmodel); the engine's tuning report
// records both so mispredictions are visible.
func (p *Packed) WordOccupancy() float64 {
	cells := float64(p.WordRows) * float64(p.Cols)
	if cells == 0 {
		return 0
	}
	return float64(p.NNZWords()) / cells
}

// Release returns the matrix's backing buffers to the Arena it was built
// from (FromEntriesThresholdArena) and leaves the matrix empty. The caller
// must not use the matrix, or any view of it, afterwards. Matrices built
// without an arena ignore the call.
func (p *Packed) Release() {
	if p.arena == nil {
		return
	}
	p.arena.putInts(p.colPtr, p.wordRow, p.denseOff)
	p.arena.putWords(p.words, p.slab)
	p.colPtr, p.wordRow, p.denseOff = nil, nil, nil
	p.words, p.slab = nil, nil
	p.slabNNZ = 0
	arena := p.arena
	p.arena = nil
	arena.putPacked(p)
}

// PopcountTotal returns the total number of set bits, i.e. the number of
// indicator nonzeros represented by the packed matrix.
func (p *Packed) PopcountTotal() int {
	return bitutil.PopcountSlice(p.words) + bitutil.PopcountSlice(p.slab)
}

// Col returns the word-row indices and packed words of column j. For sparse
// columns the returned slices are views into the internal streams; for
// dense columns they are freshly allocated from the column's nonzero slab
// words. Hot paths (the Gram kernels) use the layout-aware views instead.
func (p *Packed) Col(j int) ([]int, []uint64) {
	if p.IsDense(j) {
		row := p.denseColWords(j)
		n := 0
		for _, w := range row {
			if w != 0 {
				n++
			}
		}
		wr := make([]int, 0, n)
		ws := make([]uint64, 0, n)
		for k, w := range row {
			if w != 0 {
				wr = append(wr, k)
				ws = append(ws, w)
			}
		}
		return wr, ws
	}
	lo, hi := p.colPtr[j], p.colPtr[j+1]
	return p.wordRow[lo:hi], p.words[lo:hi]
}

// denseColWords returns the full WordRows-length slab slice of a dense
// column (callers must have checked IsDense).
func (p *Packed) denseColWords(j int) []uint64 {
	off := p.denseOff[j]
	return p.slab[off : off+p.WordRows]
}

// MemoryWords estimates the storage in 64-bit words: sparse columns pay one
// payload and one metadata word per stored nonzero word; dense columns pay
// WordRows payload words (zero or not) and a single offset word, with no
// per-word metadata; plus the column pointers. The dense layout therefore
// trades up to WordRows−2·nnzWords extra payload words per column for the
// removal of all merge metadata — break-even at 50% occupancy, strictly
// smaller above it. This feeds the cost model's memory accounting.
func (p *Packed) MemoryWords() int {
	total := 2*len(p.words) + len(p.colPtr) + len(p.slab)
	if p.denseOff != nil {
		total += len(p.denseOff)
	}
	return total
}

// densify converts columns whose stored-word count reaches the resolved
// dense threshold from the sparse stream to the contiguous slab layout. It
// is the shared post-pass of every construction path, so the layout
// decision is identical no matter how a matrix was built.
func (p *Packed) densify() {
	t := resolveDenseThreshold(p.threshold, p.WordRows)
	if t < 0 || p.WordRows == 0 {
		return
	}
	numDense := 0
	for j := 0; j < p.Cols; j++ {
		if p.colPtr[j+1]-p.colPtr[j] >= t {
			numDense++
		}
	}
	if numDense == 0 {
		return
	}
	p.denseOff = p.arena.getInts(p.Cols)
	p.slab = p.arena.getWords(numDense * p.WordRows)
	off, w := 0, 0
	lo := p.colPtr[0]
	for j := 0; j < p.Cols; j++ {
		hi := p.colPtr[j+1]
		if hi-lo >= t {
			p.denseOff[j] = off
			row := p.slab[off : off+p.WordRows]
			for k := lo; k < hi; k++ {
				if word := p.words[k]; word != 0 {
					row[p.wordRow[k]] = word
					p.slabNNZ++
				}
			}
			off += p.WordRows
		} else {
			p.denseOff[j] = -1
			copy(p.wordRow[w:], p.wordRow[lo:hi])
			copy(p.words[w:], p.words[lo:hi])
			w += hi - lo
		}
		lo = hi
		p.colPtr[j+1] = w
	}
	p.wordRow = p.wordRow[:w]
	p.words = p.words[:w]
}

// PackColumns builds a Packed matrix from per-column sorted row-index lists
// (the filtered rows of a batch) with the DenseAuto layout. rowsPerCol[j]
// lists the active-row indices present in column j, each in [0, activeRows).
// b must be in [1, 64].
func PackColumns(rowsPerCol [][]int, activeRows, b int) *Packed {
	return PackColumnsThreshold(rowsPerCol, activeRows, b, DenseAuto)
}

// PackColumnsThreshold is PackColumns with an explicit dense-threshold spec
// (DenseAuto, DenseNever or a stored-word count).
func PackColumnsThreshold(rowsPerCol [][]int, activeRows, b, denseThreshold int) *Packed {
	if b <= 0 || b > 64 {
		//gas:invariant the packing width is bounded to [1,64] by the options layer before packing; this guards direct API misuse
		panic(fmt.Sprintf("bitmat: invalid bitmask width %d", b))
	}
	if activeRows < 0 {
		//gas:invariant activeRows is a row-map length (len of a built slice), structurally non-negative
		panic("bitmat: negative active row count")
	}
	cols := len(rowsPerCol)
	p := &Packed{
		WordRows:   bitutil.WordsFor(activeRows, b),
		Cols:       cols,
		B:          b,
		ActiveRows: activeRows,
		threshold:  denseThreshold,
		colPtr:     make([]int, cols+1),
	}
	for j, rows := range rowsPerCol {
		prevWord := -1
		var cur uint64
		emit := func() {
			if prevWord >= 0 && cur != 0 {
				p.wordRow = append(p.wordRow, prevWord)
				p.words = append(p.words, cur)
			}
		}
		for k, r := range rows {
			if r < 0 || r >= activeRows {
				//gas:invariant per-column rows are produced by the dataset builders against this same row space; out-of-range means a builder bug, not input
				panic(fmt.Sprintf("bitmat: row %d out of range [0,%d)", r, activeRows))
			}
			if k > 0 && rows[k-1] > r {
				//gas:invariant builders emit per-column rows sorted; unsorted input is a builder bug
				panic("bitmat: per-column rows must be sorted")
			}
			w := r / b
			bit := uint(r % b)
			if w != prevWord {
				emit()
				prevWord = w
				cur = 0
			}
			cur |= 1 << bit
		}
		emit()
		p.colPtr[j+1] = len(p.words)
	}
	p.densify()
	return p
}

// PackCSC packs a boolean CSC matrix (a filtered batch Ā(l)) into a Packed
// matrix with word width b. Stored entries are treated as 1-bits regardless
// of value type.
func PackCSC[T any](a *sparse.CSC[T], b int) *Packed {
	rowsPerCol := make([][]int, a.NumCols)
	for j := 0; j < a.NumCols; j++ {
		rows, _ := a.Col(j)
		rowsPerCol[j] = rows
	}
	return PackColumns(rowsPerCol, a.NumRows, b)
}

// Unpack expands the packed matrix back to a boolean CSC matrix with
// ActiveRows rows; used by tests to verify the packing is lossless.
func (p *Packed) Unpack() *sparse.CSC[bool] {
	coo := sparse.MustCOO[bool](p.ActiveRows, p.Cols)
	for j := 0; j < p.Cols; j++ {
		wordRows, words := p.Col(j)
		for k, w := range wordRows {
			word := words[k]
			for bit := 0; bit < p.B; bit++ {
				if word&(1<<uint(bit)) != 0 {
					r := w*p.B + bit
					if r < p.ActiveRows {
						coo.Append(r, j, true)
					}
				}
			}
		}
	}
	return sparse.CSCFromCOO(coo, semiring.OrBool())
}
