// Package bitmat implements the bitmask-compressed batch matrix Â(l) of
// SimilarityAtScale (Section III-B). After zero rows of a batch have been
// filtered out and the surviving rows renumbered by the prefix sum of the
// filter vector, segments of b consecutive rows of each column are packed
// into b-bit words. The Gram product B = ÂᵀÂ is then evaluated with the
// popcount-AND semiring (Eq. 7), which both shrinks the per-nonzero
// metadata and lets a single machine instruction process b row positions.
package bitmat

import (
	"fmt"

	"genomeatscale/internal/bitutil"
	"genomeatscale/internal/semiring"
	"genomeatscale/internal/sparse"
)

// Packed is a column-compressed matrix whose values are b-bit masks of row
// segments. Rows of Packed are "word rows": word row w of column j covers
// original (filtered) rows [w*B, (w+1)*B).
type Packed struct {
	// WordRows is the number of packed word rows, ceil(activeRows / B).
	WordRows int
	// Cols is the number of data samples (columns of the indicator matrix).
	Cols int
	// B is the number of row positions packed per word (1..64).
	B int
	// ActiveRows is the number of (filtered) rows represented.
	ActiveRows int

	colPtr  []int    // length Cols+1
	wordRow []int    // length NNZWords
	words   []uint64 // length NNZWords
}

// NNZWords returns the number of stored packed words.
func (p *Packed) NNZWords() int { return len(p.words) }

// PopcountTotal returns the total number of set bits, i.e. the number of
// indicator nonzeros represented by the packed matrix.
func (p *Packed) PopcountTotal() int { return bitutil.PopcountSlice(p.words) }

// Col returns the word-row indices and packed words of column j (views).
func (p *Packed) Col(j int) ([]int, []uint64) {
	lo, hi := p.colPtr[j], p.colPtr[j+1]
	return p.wordRow[lo:hi], p.words[lo:hi]
}

// MemoryWords estimates the storage in 64-bit words: one word of payload and
// one of metadata per stored nonzero word, plus the column pointers. This
// feeds the cost model's memory accounting.
func (p *Packed) MemoryWords() int {
	return 2*len(p.words) + len(p.colPtr)
}

// PackColumns builds a Packed matrix from per-column sorted row-index lists
// (the filtered rows of a batch). rowsPerCol[j] lists the active-row indices
// present in column j, each in [0, activeRows). b must be in [1, 64].
func PackColumns(rowsPerCol [][]int, activeRows, b int) *Packed {
	if b <= 0 || b > 64 {
		panic(fmt.Sprintf("bitmat: invalid bitmask width %d", b))
	}
	if activeRows < 0 {
		panic("bitmat: negative active row count")
	}
	cols := len(rowsPerCol)
	p := &Packed{
		WordRows:   bitutil.WordsFor(activeRows, b),
		Cols:       cols,
		B:          b,
		ActiveRows: activeRows,
		colPtr:     make([]int, cols+1),
	}
	for j, rows := range rowsPerCol {
		prevWord := -1
		var cur uint64
		emit := func() {
			if prevWord >= 0 && cur != 0 {
				p.wordRow = append(p.wordRow, prevWord)
				p.words = append(p.words, cur)
			}
		}
		for k, r := range rows {
			if r < 0 || r >= activeRows {
				panic(fmt.Sprintf("bitmat: row %d out of range [0,%d)", r, activeRows))
			}
			if k > 0 && rows[k-1] > r {
				panic("bitmat: per-column rows must be sorted")
			}
			w := r / b
			bit := uint(r % b)
			if w != prevWord {
				emit()
				prevWord = w
				cur = 0
			}
			cur |= 1 << bit
		}
		emit()
		p.colPtr[j+1] = len(p.words)
	}
	return p
}

// PackCSC packs a boolean CSC matrix (a filtered batch Ā(l)) into a Packed
// matrix with word width b. Stored entries are treated as 1-bits regardless
// of value type.
func PackCSC[T any](a *sparse.CSC[T], b int) *Packed {
	rowsPerCol := make([][]int, a.NumCols)
	for j := 0; j < a.NumCols; j++ {
		rows, _ := a.Col(j)
		rowsPerCol[j] = rows
	}
	return PackColumns(rowsPerCol, a.NumRows, b)
}

// Unpack expands the packed matrix back to a boolean CSC matrix with
// ActiveRows rows; used by tests to verify the packing is lossless.
func (p *Packed) Unpack() *sparse.CSC[bool] {
	coo := sparse.NewCOO[bool](p.ActiveRows, p.Cols)
	for j := 0; j < p.Cols; j++ {
		wordRows, words := p.Col(j)
		for k, w := range wordRows {
			word := words[k]
			for bit := 0; bit < p.B; bit++ {
				if word&(1<<uint(bit)) != 0 {
					r := w*p.B + bit
					if r < p.ActiveRows {
						coo.Append(r, j, true)
					}
				}
			}
		}
	}
	return sparse.CSCFromCOO(coo, semiring.OrBool())
}
