package bitmat

import (
	"math/rand"
	"testing"
)

// randomColumns builds n columns of random sorted distinct rows in
// [0, activeRows), with column density rising so a hybrid layout emerges
// under DenseAuto.
func randomColumns(rng *rand.Rand, n, activeRows int) [][]int {
	cols := make([][]int, n)
	for j := range cols {
		density := float64(j+1) / float64(n)
		for r := 0; r < activeRows; r++ {
			if rng.Float64() < density {
				cols[j] = append(cols[j], r)
			}
		}
	}
	return cols
}

func TestRawRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cols := randomColumns(rng, 12, 300)
	for _, spec := range []int{DenseNever, DenseAuto, 1} {
		orig := PackColumnsThreshold(cols, 300, 64, spec)
		got, err := FromRaw(orig.Raw())
		if err != nil {
			t.Fatalf("spec %d: FromRaw: %v", spec, err)
		}
		if got.WordRows != orig.WordRows || got.Cols != orig.Cols ||
			got.B != orig.B || got.ActiveRows != orig.ActiveRows ||
			got.DenseThresholdSpec() != orig.DenseThresholdSpec() {
			t.Fatalf("spec %d: shape mismatch after round trip", spec)
		}
		for j := 0; j < orig.Cols; j++ {
			if got.IsDense(j) != orig.IsDense(j) {
				t.Fatalf("spec %d: column %d layout changed", spec, j)
			}
		}
		want := GramBlock(orig, orig)
		have := GramBlock(got, got)
		for i := range want.Data {
			if want.Data[i] != have.Data[i] {
				t.Fatalf("spec %d: gram cell %d = %d, want %d", spec, i, have.Data[i], want.Data[i])
			}
		}
	}
}

func TestRawRoundTripEmpty(t *testing.T) {
	orig := PackColumns(nil, 0, 64)
	got, err := FromRaw(orig.Raw())
	if err != nil {
		t.Fatalf("FromRaw on empty matrix: %v", err)
	}
	if got.Cols != 0 || got.WordRows != 0 {
		t.Fatalf("empty round trip gave %d cols, %d word rows", got.Cols, got.WordRows)
	}
}

func TestFromRawRejectsCorruption(t *testing.T) {
	// Two columns with a couple of scattered words stay sparse under an
	// explicit threshold of 3 stored words; two nearly-full columns go dense.
	cols := [][]int{
		{0, 1, 130},
		{5, 70, 199},
		seqRows(0, 180),
		seqRows(10, 190),
	}
	base := PackColumnsThreshold(cols, 200, 64, 3).Raw()
	if len(base.WordRow) == 0 || base.DenseOff == nil {
		t.Fatal("test fixture should be hybrid (both sparse and dense columns)")
	}
	clone := func() RawParts {
		r := base
		r.ColPtr = append([]int(nil), base.ColPtr...)
		r.WordRow = append([]int(nil), base.WordRow...)
		r.Words = append([]uint64(nil), base.Words...)
		r.DenseOff = append([]int(nil), base.DenseOff...)
		r.Slab = append([]uint64(nil), base.Slab...)
		return r
	}
	cases := []struct {
		name   string
		mutate func(*RawParts)
	}{
		{"zero bitmask width", func(r *RawParts) { r.B = 0 }},
		{"oversized bitmask width", func(r *RawParts) { r.B = 65 }},
		{"negative cols", func(r *RawParts) { r.Cols = -1; r.ColPtr = nil }},
		{"word rows off by one", func(r *RawParts) { r.WordRows++ }},
		{"short col ptr", func(r *RawParts) { r.ColPtr = r.ColPtr[:len(r.ColPtr)-1] }},
		{"col ptr not ending at words", func(r *RawParts) { r.ColPtr[len(r.ColPtr)-1]++ }},
		{"decreasing col ptr", func(r *RawParts) { r.ColPtr[1] = r.ColPtr[len(r.ColPtr)-1] + 1 }},
		{"word row stream length mismatch", func(r *RawParts) { r.WordRow = r.WordRow[:len(r.WordRow)-1] }},
		{"word row out of range", func(r *RawParts) { r.WordRow[0] = r.WordRows }},
		{"negative word row", func(r *RawParts) { r.WordRow[0] = -1 }},
		{"unsorted word rows", func(r *RawParts) {
			for j := 0; j+1 < len(r.ColPtr); j++ {
				if r.ColPtr[j+1]-r.ColPtr[j] >= 2 {
					k := r.ColPtr[j]
					r.WordRow[k], r.WordRow[k+1] = r.WordRow[k+1], r.WordRow[k]
					return
				}
			}
			panic("no column with two sparse words")
		}},
		{"dense off length mismatch", func(r *RawParts) { r.DenseOff = r.DenseOff[:len(r.DenseOff)-1] }},
		{"misaligned dense offset", func(r *RawParts) { setFirstDense(r, 1) }},
		{"dense offset past slab", func(r *RawParts) { setFirstDense(r, len(r.Slab)) }},
		{"duplicate dense offset", func(r *RawParts) {
			first := -1
			for j, off := range r.DenseOff {
				if off < 0 {
					continue
				}
				if first < 0 {
					first = off
					continue
				}
				r.DenseOff[j] = first
				return
			}
			panic("fewer than two dense columns")
		}},
		{"slab length mismatch", func(r *RawParts) { r.Slab = append(r.Slab, 0) }},
		{"negative slab nnz", func(r *RawParts) { r.SlabNNZ = -1 }},
		{"slab nnz past slab", func(r *RawParts) { r.SlabNNZ = len(r.Slab) + 1 }},
	}
	for _, c := range cases {
		r := clone()
		c.mutate(&r)
		if _, err := FromRaw(r); err == nil {
			t.Errorf("%s: FromRaw accepted corrupt parts", c.name)
		}
	}
}

func seqRows(lo, hi int) []int {
	rows := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		rows = append(rows, r)
	}
	return rows
}

func setFirstDense(r *RawParts, off int) {
	for j, o := range r.DenseOff {
		if o >= 0 {
			r.DenseOff[j] = off
			return
		}
	}
	panic("no dense column")
}

// TestFromRawDenseOffAllSparse covers a DenseOff slice present but holding
// only -1 entries (a writer may emit it unconditionally): the matrix must
// normalize back to the nil-denseOff sparse representation.
func TestFromRawDenseOffAllSparse(t *testing.T) {
	cols := [][]int{{0, 3}, {1}}
	r := PackColumnsThreshold(cols, 5, 64, DenseNever).Raw()
	if r.DenseOff != nil {
		t.Fatal("DenseNever matrix should have nil DenseOff")
	}
	r.DenseOff = []int{-1, -1}
	got, err := FromRaw(r)
	if err != nil {
		t.Fatalf("FromRaw: %v", err)
	}
	if got.IsDense(0) || got.IsDense(1) {
		t.Fatal("all-sparse matrix reported a dense column")
	}
}

func TestPairPopcountBetween(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	colsA := randomColumns(rng, 5, 150)
	colsB := randomColumns(rng, 7, 150)
	// Different threshold specs force mixed layout pairings: dense×dense,
	// dense×sparse, sparse×sparse.
	a := PackColumnsThreshold(colsA, 150, 64, 1)
	b := PackColumnsThreshold(colsB, 150, 64, DenseNever)
	want := GramBlock(a, b)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			got := PairPopcountBetween(a, i, b, j)
			if int64(got) != want.At(i, j) {
				t.Fatalf("pair (%d,%d) = %d, want %d", i, j, got, want.At(i, j))
			}
		}
	}
}

func TestPairPopcountBetweenMismatchPanics(t *testing.T) {
	a := PackColumns([][]int{{0}}, 10, 64)
	b := PackColumns([][]int{{0}}, 200, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("row-space mismatch did not panic")
		}
	}()
	PairPopcountBetween(a, 0, b, 0)
}
