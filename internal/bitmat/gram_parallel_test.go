package bitmat

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"genomeatscale/internal/sparse"
)

// seededAccumulator returns two identical accumulators pre-filled with
// deterministic junk, so the tests verify the kernels accumulate into (not
// overwrite) existing contents.
func seededAccumulator(rng *rand.Rand, n int) (*sparse.Dense[int64], *sparse.Dense[int64]) {
	a := sparse.MustDense[int64](n, n)
	for i := range a.Data {
		a.Data[i] = rng.Int63n(50)
	}
	return a, a.Clone()
}

// TestGramAccumulateWorkersMatchesSerial: the tiled parallel kernel must be
// bit-identical to the serial kernel for every worker count, mask width and
// shape, including shapes smaller than one tile and much wider than the
// tile grid.
func TestGramAccumulateWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, maskBits := range []int{8, 32, 64} {
		for trial := 0; trial < 6; trial++ {
			rows := 1 + rng.Intn(400)
			cols := 1 + rng.Intn(90)
			p := PackCSC(randomIndicator(rng, rows, cols, 0.1), maskBits)
			want, seed := seededAccumulator(rng, cols)
			p.GramAccumulate(want)
			for _, workers := range []int{0, 2, 3, 4, 7} {
				got := seed.Clone()
				p.GramAccumulateWorkers(got, workers)
				if !sparse.Equal(want, got, func(a, b int64) bool { return a == b }) {
					t.Fatalf("b=%d trial=%d workers=%d: parallel Gram differs from serial (%dx%d)",
						maskBits, trial, workers, rows, cols)
				}
			}
		}
	}
}

// TestGramBlockWorkersMatchesSerial checks the rectangular SUMMA kernel
// against its serial form across ragged block shapes.
func TestGramBlockWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		rows := 1 + rng.Intn(300)
		cols := 2 + rng.Intn(80)
		p := PackCSC(randomIndicator(rng, rows, cols, 0.12), 64)
		split := 1 + rng.Intn(cols-1)
		a, b := p.ColRange(0, split), p.ColRange(split, cols)
		want := GramBlock(a, b)
		for _, workers := range []int{0, 2, 5} {
			got := GramBlockWorkers(a, b, workers)
			if !sparse.Equal(want, got, func(x, y int64) bool { return x == y }) {
				t.Fatalf("trial=%d workers=%d: parallel GramBlock differs from serial", trial, workers)
			}
		}
	}
}

// TestConcurrentGramAccumulateDisjointAccumulators drives several
// concurrent GramAccumulateWorkers calls that share one read-only Packed
// matrix but own disjoint accumulators — the access pattern of independent
// batch pipelines sharing packed inputs. Run under -race in CI, it proves
// the kernel takes no hidden shared state through the Packed views.
func TestConcurrentGramAccumulateDisjointAccumulators(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	const cols = 60
	p := PackCSC(randomIndicator(rng, 500, cols, 0.1), 64)
	want := p.Gram()

	const callers = 6
	accs := make([]*sparse.Dense[int64], callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for g := 0; g < callers; g++ {
		accs[g] = sparse.MustDense[int64](cols, cols)
		go func(acc *sparse.Dense[int64], workers int) {
			defer wg.Done()
			p.GramAccumulateWorkers(acc, workers)
		}(accs[g], 1+g%3)
	}
	wg.Wait()
	for g, acc := range accs {
		if !sparse.Equal(want, acc, func(a, b int64) bool { return a == b }) {
			t.Fatalf("concurrent caller %d produced a different Gram matrix", g)
		}
	}
}

// TestMergePopcountDenseOracleProperty checks the sorted-stream merge
// kernel against a naive dense-bitset intersection: for arbitrary bit sets,
// mergePopcount of their packed forms must equal the count of positions set
// in both.
func TestMergePopcountDenseOracleProperty(t *testing.T) {
	const space = 1024 // 16 word rows of 64 bits
	build := func(raw []uint16) ([]int, []uint64, []bool) {
		dense := make([]bool, space)
		for _, r := range raw {
			dense[int(r)%space] = true
		}
		var wr []int
		var ws []uint64
		for w := 0; w < space/64; w++ {
			var word uint64
			for bit := 0; bit < 64; bit++ {
				if dense[w*64+bit] {
					word |= 1 << uint(bit)
				}
			}
			if word != 0 {
				wr = append(wr, w)
				ws = append(ws, word)
			}
		}
		return wr, ws, dense
	}
	f := func(a, b []uint16) bool {
		wi, vi, da := build(a)
		wj, vj, db := build(b)
		want := 0
		for i := range da {
			if da[i] && db[i] {
				want++
			}
		}
		return mergePopcount(wi, vi, wj, vj) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// FuzzFromEntries: assembling the same coordinate multiset through the
// sorted linear-pass fast path and through the map fallback must yield
// byte-identical packed matrices, for arbitrary permutations and
// duplicates. The fuzzer derives an entry list from raw bytes, feeds the
// raw order to FromEntries (the fallback, unless the order happens to be
// sorted) and a (col, wordRow)-sorted copy (the fast path), and compares
// the canonical coordinate forms.
func FuzzFromEntries(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1})
	f.Add([]byte{3, 2, 255, 3, 2, 1, 0, 0, 7})                 // duplicate (wordRow, col)
	f.Add([]byte{7, 4, 9, 0, 0, 1, 5, 1, 2, 5, 1, 2, 1, 3, 8}) // reverse-ish order
	f.Fuzz(func(t *testing.T, data []byte) {
		const wordRows, cols = 8, 5
		var entries []PackedEntry
		for i := 0; i+2 < len(data); i += 3 {
			entries = append(entries, PackedEntry{
				WordRow: int(data[i]) % wordRows,
				Col:     int(data[i+1]) % cols,
				Word:    uint64(data[i+2])<<8 | uint64(data[i+1]) | 1,
			})
		}
		sortedCopy := append([]PackedEntry(nil), entries...)
		sort.SliceStable(sortedCopy, func(i, j int) bool {
			if sortedCopy[i].Col != sortedCopy[j].Col {
				return sortedCopy[i].Col < sortedCopy[j].Col
			}
			return sortedCopy[i].WordRow < sortedCopy[j].WordRow
		})
		fast := FromEntries(sortedCopy, wordRows, cols, 64, wordRows*64)
		raw := FromEntries(entries, wordRows, cols, 64, wordRows*64)

		fe, re := fast.Entries(), raw.Entries()
		if len(fe) != len(re) {
			t.Fatalf("fast path stores %d words, fallback %d", len(fe), len(re))
		}
		for k := range fe {
			if fe[k] != re[k] {
				t.Fatalf("entry %d: fast path %+v, fallback %+v", k, fe[k], re[k])
			}
		}
		if fast.NNZWords() != raw.NNZWords() {
			t.Fatalf("NNZWords %d vs %d", fast.NNZWords(), raw.NNZWords())
		}
		// The canonical form must round-trip through the fast path.
		again := FromEntries(fe, wordRows, cols, 64, wordRows*64)
		ae := again.Entries()
		for k := range fe {
			if fe[k] != ae[k] {
				t.Fatalf("round trip changed entry %d: %+v vs %+v", k, fe[k], ae[k])
			}
		}
	})
}

// TestGramAccumulateCtx: an uncancelled context is exactly the plain
// kernel (bit-identical for every workers value, including the serial
// fast path); a cancelled one stops the accumulation and returns
// ctx.Err() on both the serial and the tiled route.
func TestGramAccumulateCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p := PackCSC(randomIndicator(rng, 300, 60, 0.1), 64)
	want, seed := seededAccumulator(rng, 60)
	p.GramAccumulate(want)

	for _, workers := range []int{1, 4} {
		got := seed.Clone()
		if err := p.GramAccumulateCtx(context.Background(), got, workers); err != nil {
			t.Fatal(err)
		}
		if !sparse.Equal(want, got, func(a, b int64) bool { return a == b }) {
			t.Fatalf("workers=%d: ctx kernel differs from plain kernel", workers)
		}
		got = seed.Clone()
		if err := p.GramAccumulateCtx(nil, got, workers); err != nil {
			t.Fatal(err)
		}
		if !sparse.Equal(want, got, func(a, b int64) bool { return a == b }) {
			t.Fatalf("workers=%d: nil-ctx kernel differs from plain kernel", workers)
		}

		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		if err := p.GramAccumulateCtx(cancelled, seed.Clone(), workers); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
	}
}
