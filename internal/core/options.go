package core

import (
	"fmt"

	"genomeatscale/internal/bsp"
	"genomeatscale/internal/costmodel"
	"genomeatscale/internal/sparse"
)

// Options configures a SimilarityAtScale run. The zero value is not usable;
// call DefaultOptions or fill every relevant field and call Validate.
type Options struct {
	// BatchCount is the number of row batches the indicator matrix is split
	// into (r in Eq. 3). Larger values reduce the peak memory of a batch at
	// the cost of more synchronisation; the paper's batch-size sensitivity
	// experiments (Fig. 2c, 2d) vary exactly this parameter.
	BatchCount int

	// MaskBits is the bitmask width b used to compress row segments
	// (Section III-B). The paper uses 32 or 64; 64 is the default.
	MaskBits int

	// Procs is the number of virtual BSP ranks used by the distributed path.
	// The paper runs 32 MPI processes per node; our benchmarks express node
	// counts as Procs = 32 × nodes scaled down for in-process execution.
	Procs int

	// Replication is the processor-grid replication factor c of the
	// √(p/c) × √(p/c) × c layout (Section III-C).
	Replication int

	// Workers is the number of shared-memory worker goroutines used inside
	// one process by the tiled Gram kernel, the per-column batch packing and
	// the Eq. 2 finalization (sequential finalize and the blockwise SBlock/
	// DBlock derivation alike). 1 selects the exact serial kernel; n > 1
	// uses n workers; results are identical for every value. 0 (the
	// default) sizes the pool automatically: the sequential path uses
	// runtime.GOMAXPROCS(0) — one worker per available CPU — while the
	// distributed path gives each of the Procs in-process virtual ranks a
	// fair share, max(1, GOMAXPROCS/Procs), so the default never
	// oversubscribes the machine. An explicit value is taken as given on
	// both paths.
	Workers int

	// DenseThreshold controls the hybrid dense/sparse column storage of the
	// packed batch matrices Â(l) in internal/bitmat. Columns whose
	// stored-word count reaches the threshold are held as a contiguous
	// dense word slab and processed by the contiguous AND+popcount kernels;
	// the rest keep the compact sorted (wordRow, word) stream and the merge
	// kernel. 0 (the default) resolves to ~¼ of the batch's word rows
	// (bitmat.DenseAuto); a negative value disables dense storage entirely
	// (bitmat.DenseNever, the historical sparse-only layout); a positive
	// value is an explicit stored-word count (1 = every non-empty column
	// dense). The choice only affects storage and kernel selection — B, S
	// and D are byte-identical for every value.
	DenseThreshold int

	// SkipGather, when true, leaves the similarity matrix distributed and
	// does not assemble a full copy at rank 0. Use for large n where only
	// timing/communication statistics are of interest. Under the Engine API
	// this is the degenerate streaming case: Engine.Stream with a discarding
	// sink computes the same run without materialising output, and the full
	// gather is Engine.Stream with a collecting sink.
	SkipGather bool

	// TileRows is the row-band height of the tiles the sequential path emits
	// when streaming through Engine.Stream: the n-column output is derived
	// and handed to the sink TileRows rows at a time, so the peak resident
	// S/D footprint is TileRows·n values instead of n². 0 (the default)
	// resolves to DefaultTileRows. The distributed path ignores TileRows —
	// its tiles are the processor grid's result blocks.
	TileRows int

	// Sketch configures the MinHash prescreening tier: when enabled, cheap
	// bottom-k sketches estimate every pairwise Jaccard first and only
	// pairs whose estimate reaches Threshold − Slack run through the exact
	// tiled Gram kernel; everything below is pruned, reported as B = 0,
	// S = 0, D = 1. Surviving pairs are byte-identical to a non-prescreened
	// run. Prescreening runs on the sequential path only (Procs must be 1).
	Sketch SketchOptions

	// Transport, when non-nil, runs the distributed path as ONE rank of a
	// multi-process BSP job over the given transport endpoint (e.g.
	// internal/bsp/tcptransport) instead of spawning Procs in-process
	// ranks: this process executes rank Transport.Rank() of
	// Transport.NProcs() == Procs, and every process of the job must be
	// started with identical options so the ranks agree on the grid and
	// batch protocol. Result matrices are assembled at rank 0 only; other
	// ranks return empty B/S/D. Autotune and Sketch are incompatible with
	// Transport (their run-time decisions would diverge across hosts).
	// Transport endpoints are single-run: build a new one per run. The
	// engine does not close the transport; the caller owns its lifecycle.
	Transport bsp.Transport

	// Autotune derives the run configuration — Procs, Replication,
	// BatchCount, TileRows, DenseThreshold — from the dataset's dimensions
	// and a sampled density estimate at run time, by minimising the BSP cost
	// model on a probed host profile (internal/costmodel.Tune). Fields the
	// caller set explicitly (SetExplicit, which the With* options and CLI
	// flags do automatically) are pinned; the tuner only fills the rest.
	// Each run's choices and the predictions behind them are reported in
	// RunStats.Tuning.
	Autotune bool

	// explicit records which fields were set deliberately rather than
	// inherited from DefaultOptions, so the autotuner knows what it may
	// change. A bit set here pins the corresponding field.
	explicit OptField
}

// SketchOptions configures the MinHash prescreening tier (Options.Sketch).
// The tier is enabled when Threshold > 0 or Size > 0; a positive Size
// without a positive Threshold is a validation error, because the gate
// needs a similarity threshold to prescreen against.
type SketchOptions struct {
	// Size is the bottom-k sketch size k. 0 resolves automatically: the
	// autotuner (or, without Autotune, costmodel.SketchSizeFor) sizes the
	// sketch from Threshold and Slack. An explicit positive value is
	// pinned, like any other explicitly set dimension.
	Size int
	// Threshold is the similarity threshold τ the run prescreens against:
	// the exact tier only sees pairs whose estimated Jaccard is at least
	// Threshold − Slack. It should match the threshold of the run's
	// Threshold sink (cliutil wires -threshold into both).
	Threshold float64
	// Slack is the recall margin s subtracted from Threshold before
	// gating, absorbing estimator noise so true ≥ τ pairs are not pruned
	// by an unlucky sketch. 0 resolves to DefaultSketchSlack; Slack and
	// Threshold together also drive the automatic sketch sizing.
	Slack float64
}

// Enabled reports whether the prescreening tier is configured for the
// run: any nonzero field counts, so a nonsensical combination (a size
// without a threshold, a negative threshold) surfaces as a Validate error
// instead of silently disabling the tier.
func (s SketchOptions) Enabled() bool { return s.Threshold != 0 || s.Size != 0 || s.Slack != 0 }

// DefaultSketchSlack is the recall margin used when SketchOptions.Slack
// is 0: generous enough that the default sketch sizing (3σ at the
// boundary) makes pruning a true ≥ τ pair a per-mille event.
const DefaultSketchSlack = 0.1

// OptField identifies tunable Options dimensions for explicit-override
// tracking; values combine as a bitset.
type OptField uint16

const (
	FieldProcs OptField = 1 << iota
	FieldReplication
	FieldBatchCount
	FieldTileRows
	FieldDenseThreshold
	FieldMaskBits
	FieldWorkers
	FieldSketchSize
)

// SetExplicit marks fields as deliberately chosen by the caller: the
// autotuner keeps their values and tunes around them. The With* options of
// the public package and the CLI flag binding call this for every field
// they set.
func (o *Options) SetExplicit(fields OptField) { o.explicit |= fields }

// IsExplicit reports whether every given field was marked explicit.
func (o Options) IsExplicit(fields OptField) bool { return o.explicit&fields == fields }

// DefaultTileRows is the sequential streaming tile height used when
// Options.TileRows is 0.
const DefaultTileRows = 256

// DefaultOptions returns options matching the paper's defaults: 64-bit
// masks, a single batch, one process, no replication, and shared-memory
// workers on every available CPU (Workers: 0).
func DefaultOptions() Options {
	return Options{BatchCount: 1, MaskBits: 64, Procs: 1, Replication: 1, Workers: 0}
}

// Validate checks option consistency.
func (o Options) Validate() error {
	if o.BatchCount <= 0 {
		return fmt.Errorf("core: BatchCount must be positive, got %d", o.BatchCount)
	}
	if o.MaskBits <= 0 || o.MaskBits > 64 {
		return fmt.Errorf("core: MaskBits must be in [1,64], got %d", o.MaskBits)
	}
	if o.Procs <= 0 {
		return fmt.Errorf("core: Procs must be positive, got %d", o.Procs)
	}
	if o.Replication <= 0 {
		return fmt.Errorf("core: Replication must be positive, got %d", o.Replication)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: Workers must be non-negative (0 = all CPUs), got %d", o.Workers)
	}
	if o.TileRows < 0 {
		return fmt.Errorf("core: TileRows must be non-negative (0 = default %d), got %d", DefaultTileRows, o.TileRows)
	}
	if o.Sketch.Size < 0 {
		return fmt.Errorf("core: Sketch.Size must be non-negative (0 = auto), got %d", o.Sketch.Size)
	}
	if o.Sketch.Enabled() {
		if o.Sketch.Threshold <= 0 || o.Sketch.Threshold > 1 {
			return fmt.Errorf("core: sketch prescreening needs a similarity threshold in (0,1], got Sketch.Threshold %v", o.Sketch.Threshold)
		}
		if o.Sketch.Slack < 0 || o.Sketch.Slack > 1 {
			return fmt.Errorf("core: Sketch.Slack must be in [0,1] (0 = default %v), got %v", DefaultSketchSlack, o.Sketch.Slack)
		}
		if o.Procs != 1 {
			return fmt.Errorf("core: sketch prescreening runs on the sequential path only; Procs must be 1, got %d", o.Procs)
		}
	}
	if o.Transport != nil {
		if np := o.Transport.NProcs(); np != o.Procs {
			return fmt.Errorf("core: Transport spans %d ranks but Procs is %d; they must match", np, o.Procs)
		}
		if o.Autotune {
			return fmt.Errorf("core: Autotune is incompatible with a multi-process Transport (each host would tune a different configuration); pin the options explicitly")
		}
		if o.Sketch.Enabled() {
			return fmt.Errorf("core: sketch prescreening is incompatible with a multi-process Transport")
		}
	}
	return nil
}

// RunStats reports per-run measurements used by the benchmark harness.
type RunStats struct {
	// Batches is the number of batches processed.
	Batches int
	// BatchSeconds holds the wall-clock duration of each batch as observed
	// by rank 0 (sequential path: the single process).
	BatchSeconds []float64
	// TotalSeconds is the end-to-end wall-clock duration.
	TotalSeconds float64
	// IndicatorNonzeros is nnz(A), summed over all batches.
	IndicatorNonzeros int64
	// ActiveRowsPerBatch is the number of nonzero rows each batch retained
	// after filtering (|f(l)| in Eq. 5).
	ActiveRowsPerBatch []int64
	// Comm holds the BSP communication statistics of the distributed path
	// (nil for the sequential path). Over a multi-process Transport the
	// statistics are this rank's local view.
	Comm *bsp.Stats

	// Transport holds the wire-level counters (dials, retries, bytes on
	// the wire, max superstep exchange latency) of a run over a remote
	// transport; nil for sequential and in-process runs.
	Transport *bsp.TransportStats

	// TilesEmitted counts the finalized tiles delivered to the run's sink:
	// streaming runs on both paths, and distributed legacy gathers (which
	// drive the same per-tile emission into a collecting sink). 0 when no
	// output was produced — including the sequential legacy path, whose
	// direct full-matrix finalize emits no tiles.
	TilesEmitted int
	// PeakTileWords is the largest single tile delivered to the sink, in
	// 64-bit words across its B, S and D blocks — the peak resident output
	// footprint of a memory-bounded streaming run.
	PeakTileWords int64
	// SinkSeconds is the wall-clock time spent inside the sink's Start,
	// Emit and Flush calls, so slow consumers are visible in the run stats.
	SinkSeconds float64

	// Ingest holds the ingestion-side counters of an out-of-core dataset
	// (loads, evictions, peak resident samples) captured at the end of the
	// run; nil when the dataset does not report them (e.g. fully in-memory
	// datasets).
	Ingest *IngestStats

	// Tuning records the autotuner's decisions and predictions for this run;
	// nil when Options.Autotune was off.
	Tuning *TuningReport

	// Sketch records what the MinHash prescreening tier did; nil when
	// Options.Sketch was off.
	Sketch *SketchStats
}

// SketchStats reports the MinHash prescreening tier of one run: how the
// gate was configured, how much exact work it skipped, and how likely it
// was to have pruned a true above-threshold pair.
type SketchStats struct {
	// Size is the resolved bottom-k sketch size.
	Size int
	// Threshold and Slack are the resolved gate parameters: pairs with
	// estimated Jaccard below Threshold − Slack were pruned.
	Threshold float64
	Slack     float64
	// PairsScreened is the number of distinct unordered pairs (diagonal
	// included) the estimator evaluated: n(n+1)/2.
	PairsScreened int64
	// PairsSurvived is how many of those reached the exact tier.
	PairsSurvived int64
	// EstimatedRecall is the modelled probability that a pair with exact
	// similarity exactly at Threshold survives the gate, from the normal
	// approximation of the bottom-k estimator (Φ(s·√(k/(τ(1−τ))))). Pairs
	// above τ survive with higher probability; this is the worst case.
	EstimatedRecall float64
	// SketchSeconds is the wall-clock time of the sketch pass plus the
	// pairwise estimation — the overhead the skipped exact work paid for.
	SketchSeconds float64
}

// TuningReport is the chosen-versus-predicted record of one autotuned run:
// which configuration the cost model picked, from which sampled dataset
// statistics and host profile, which dimensions the caller had pinned, and
// the measured packed-word occupancy the storage prediction can be checked
// against.
type TuningReport struct {
	// Machine names the host profile the model evaluated
	// (costmodel.Detect).
	Machine string
	// SampledColumns is how many sample columns the density estimate probed.
	SampledColumns int
	// Stats is the dataset description the tuner worked from; Stats.Density
	// is the probed estimate.
	Stats costmodel.DatasetStats
	// Plan holds the chosen configuration and the model predictions behind
	// it (per-batch seconds, row survival, packed word occupancy).
	Plan costmodel.Plan
	// Pinned lists the dimensions kept at caller-chosen values ("procs",
	// "replication", "batches", "tilerows", "densethreshold").
	Pinned []string
	// MeasuredOccupancy is the nonzero-word fraction of the first batch's
	// packed matrix (bitmat.Packed.WordOccupancy) — the measured counterpart
	// of Plan.PredictedOccupancy. Recorded on the sequential path; zero when
	// no batch was packed there (the distributed path packs inside its rank
	// engines).
	MeasuredOccupancy float64
}

// IngestStats reports how an out-of-core dataset behaved during a run: how
// much loading the scan actually triggered and how tightly the eviction
// policy bounded the resident set. samplefile.DirDataset maintains these
// counters; any Dataset can expose its own by implementing IngestStatser.
type IngestStats struct {
	// Loads is the number of sample loads performed, including reloads of
	// previously evicted samples (so Loads − NumSamples measures the
	// re-read cost of the memory bound).
	Loads int64
	// Evictions is the number of samples dropped from memory to stay
	// within the resident budget.
	Evictions int64
	// Resident is the number of samples held in memory when the snapshot
	// was taken.
	Resident int
	// PeakResident is the largest number of samples simultaneously held in
	// memory — the figure a memory-bounded run asserts stays O(2 × batch).
	PeakResident int
	// LoadSeconds is the cumulative wall-clock time spent reading and
	// decoding sample files (summed across parallel loaders, so it can
	// exceed the elapsed time when loads overlap).
	LoadSeconds float64
}

// IngestStatser is implemented by datasets that track IngestStats; the
// engine snapshots them into RunStats.Ingest at the end of a run.
type IngestStatser interface {
	IngestStats() IngestStats
}

// Result is the output of a SimilarityAtScale run.
type Result struct {
	// N is the number of samples.
	N int
	// Names are the sample names, in column order.
	Names []string
	// Cardinalities holds |X_i| for every sample (â in Eq. 4).
	Cardinalities []int64
	// B is the intersection-cardinality matrix (nil if SkipGather or when
	// the run streamed its output through a sink instead of gathering).
	B *sparse.Dense[int64]
	// S is the Jaccard similarity matrix (nil if SkipGather or streaming).
	S *sparse.Dense[float64]
	// D is the Jaccard distance matrix, D = 1 − S (nil if SkipGather or
	// streaming).
	D *sparse.Dense[float64]
	// Stats holds run measurements.
	Stats RunStats
}

// Similarity returns S[i][j]; it panics if the matrices were not gathered.
func (r *Result) Similarity(i, j int) float64 {
	if r.S == nil {
		//gas:invariant documented accessor contract: gathered matrices exist unless the caller itself set SkipGather or streamed; misuse, not input
		panic("core: similarity matrix was not gathered (SkipGather set or streaming run)")
	}
	return r.S.At(i, j)
}

// Distance returns D[i][j]; it panics if the matrices were not gathered.
func (r *Result) Distance(i, j int) float64 {
	if r.D == nil {
		//gas:invariant documented accessor contract: gathered matrices exist unless the caller itself set SkipGather or streamed; misuse, not input
		panic("core: distance matrix was not gathered (SkipGather set or streaming run)")
	}
	return r.D.At(i, j)
}
