package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"genomeatscale/internal/sparse"
	"genomeatscale/internal/tile"
)

// TestAutotuneMatchesManual: a zero-flags autotuned run must produce B, S
// and D byte-identical to the defaults (the configuration only moves
// storage/kernel/batching decisions, never results) and must record a
// tuning report with the sampled statistics and the chosen plan.
func TestAutotuneMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ds := randomDataset(rng, 23, 700, 0.05)

	manual, err := ComputeSequential(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Autotune = true
	auto, err := ComputeSequential(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	intEq := func(a, b int64) bool { return a == b }
	fEq := func(a, b float64) bool { return a == b }
	if !sparse.Equal(manual.B, auto.B, intEq) || !sparse.Equal(manual.S, auto.S, fEq) || !sparse.Equal(manual.D, auto.D, fEq) {
		t.Fatal("autotuned results differ from manual defaults")
	}

	rep := auto.Stats.Tuning
	if rep == nil {
		t.Fatal("no tuning report recorded")
	}
	if rep.Plan.Procs != 1 {
		t.Fatalf("single-host autotune chose Procs=%d, want 1", rep.Plan.Procs)
	}
	if rep.Stats.Samples != 23 || rep.Stats.Attributes != 700 {
		t.Fatalf("sampled stats wrong: %+v", rep.Stats)
	}
	if rep.SampledColumns != 23 {
		t.Fatalf("probed %d columns, want all 23", rep.SampledColumns)
	}
	if rep.Stats.Density <= 0 {
		t.Fatalf("no density estimate: %+v", rep.Stats)
	}
	if rep.Machine == "" || len(rep.Pinned) != 0 {
		t.Fatalf("unexpected report fields: machine=%q pinned=%v", rep.Machine, rep.Pinned)
	}
	if rep.MeasuredOccupancy <= 0 || rep.MeasuredOccupancy > 1 {
		t.Fatalf("measured occupancy out of range: %g", rep.MeasuredOccupancy)
	}
	if rep.Plan.PredictedOccupancy <= 0 {
		t.Fatalf("no occupancy prediction: %+v", rep.Plan)
	}
	// Manual run must not carry a report.
	if manual.Stats.Tuning != nil {
		t.Fatal("non-autotuned run recorded a tuning report")
	}
}

// TestAutotunePinnedProcs: an explicitly set Procs survives autotuning, is
// listed in the report, and the distributed autotuned run still matches
// the sequential baseline.
func TestAutotunePinnedProcs(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	ds := randomDataset(rng, 17, 500, 0.06)

	base, err := ComputeSequential(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Autotune = true
	opts.Procs = 4
	opts.SetExplicit(FieldProcs)
	res, err := Compute(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Stats.Tuning
	if rep == nil || rep.Plan.Procs != 4 {
		t.Fatalf("pinned Procs not honoured: %+v", rep)
	}
	found := false
	for _, p := range rep.Pinned {
		if p == "procs" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pinned dimensions not reported: %v", rep.Pinned)
	}
	if !sparse.Equal(base.S, res.S, approxEqual) {
		t.Fatal("autotuned distributed run differs from sequential baseline")
	}
}

// TestAutotuneStreamMatches: streaming with autotune reproduces the
// gathered matrices byte for byte even when the tuner picks its own
// TileRows.
func TestAutotuneStreamMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ds := randomDataset(rng, 19, 400, 0.08)

	e, err := NewEngine(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Similarity(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions()
	opts.Autotune = true
	ae, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	collect := tile.NewCollect()
	got, err := ae.Stream(context.Background(), ds, collect)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Tuning == nil {
		t.Fatal("streaming autotuned run recorded no tuning report")
	}
	fEq := func(a, b float64) bool { return a == b }
	if !sparse.Equal(want.S, collect.S(), fEq) {
		t.Fatal("autotuned streamed S differs from gathered S")
	}
}

// TestAutotuneEngineReuse: one autotuned engine run twice (and its arena
// pool exercised) must produce identical results both times.
func TestAutotuneEngineReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	ds := randomDataset(rng, 13, 300, 0.1)
	opts := DefaultOptions()
	opts.Autotune = true
	opts.BatchCount = 3
	opts.SetExplicit(FieldBatchCount)
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.Similarity(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Similarity(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	intEq := func(a, b int64) bool { return a == b }
	if !sparse.Equal(first.B, second.B, intEq) {
		t.Fatal("engine reuse changed the result")
	}
	if first.Stats.Tuning.Plan.Batches != 3 || second.Stats.Tuning.Plan.Batches != 3 {
		t.Fatal("pinned batch count not honoured across runs")
	}
}

// TestSampleDatasetStats: the probe must recover the dimensions and a
// density estimate close to the truth for a uniform dataset, and cap the
// probed columns.
func TestSampleDatasetStats(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	ds := randomDataset(rng, 100, 2000, 0.05)
	st, probed, err := sampleDatasetStats(ds)
	if err != nil {
		t.Fatal(err)
	}
	if probed != maxProbeColumns {
		t.Fatalf("probed %d columns, want cap %d", probed, maxProbeColumns)
	}
	if st.Samples != 100 || st.Attributes != 2000 {
		t.Fatalf("dimensions wrong: %+v", st)
	}
	truth := Density(ds)
	if math.Abs(st.Density-truth) > truth/2 {
		t.Fatalf("density estimate %g too far from truth %g", st.Density, truth)
	}
}

// TestAutotuneProbeErrorPropagates: a failing sample load during the
// density probe must abort the run with a descriptive error, not panic.
func TestAutotuneProbeErrorPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	base := randomDataset(rng, 8, 200, 0.1)
	ds := &errOnSampleDataset{InMemoryDataset: base, bad: 0}
	opts := DefaultOptions()
	opts.Autotune = true
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Similarity(context.Background(), ds)
	if err == nil || !strings.Contains(err.Error(), "autotune probe") {
		t.Fatalf("expected probe error, got %v", err)
	}
}

// TestExplicitTracking pins the bitset semantics of SetExplicit/IsExplicit.
func TestExplicitTracking(t *testing.T) {
	var o Options
	if o.IsExplicit(FieldProcs) {
		t.Fatal("zero options claim explicit fields")
	}
	o.SetExplicit(FieldProcs | FieldMaskBits)
	if !o.IsExplicit(FieldProcs) || !o.IsExplicit(FieldMaskBits) || !o.IsExplicit(FieldProcs|FieldMaskBits) {
		t.Fatal("set fields not reported explicit")
	}
	if o.IsExplicit(FieldBatchCount) || o.IsExplicit(FieldProcs|FieldBatchCount) {
		t.Fatal("unset field reported explicit")
	}
	// Copies carry the marks (value semantics).
	cp := o
	if !cp.IsExplicit(FieldProcs) {
		t.Fatal("explicit marks lost on copy")
	}
}
