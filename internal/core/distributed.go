package core

import "context"

// Compute runs the fully distributed SimilarityAtScale pipeline with the
// legacy one-shot semantics: a throwaway engine is built for opts, the run
// executes on opts.Procs virtual BSP ranks (even for Procs == 1), and the
// full matrices are assembled at rank 0 unless opts.SkipGather is set.
// Sample accesses go through the error-returning DatasetV2 path (see
// AsV2): a load failure on any rank aborts the whole BSP run and is
// returned as the run error instead of panicking the process. New code
// that runs more than once, needs cancellation or wants streaming output
// should hold an Engine.
func Compute(ds Dataset, opts Options) (*Result, error) {
	e, err := NewEngine(opts)
	if err != nil {
		return nil, err
	}
	cfg, err := e.configFor(ds)
	if err != nil {
		return nil, err
	}
	return e.computeDist(context.Background(), ds, nil, cfg)
}
