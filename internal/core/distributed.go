package core

import (
	"fmt"
	"runtime"
	"time"

	"genomeatscale/internal/bsp"
	"genomeatscale/internal/dist"
)

// Compute runs the fully distributed SimilarityAtScale pipeline on
// opts.Procs virtual BSP ranks arranged as a √(p/c) × √(p/c) × c processor
// grid with c = opts.Replication. The structure follows Listing 1 of the
// paper:
//
//	for each batch A(l):
//	    each rank reads its (cyclically owned) samples' values in the batch
//	    the distributed filter vector f(l) marks non-empty rows        (Eq. 5)
//	    the replicated prefix sum maps rows to compacted positions      (Eq. 6)
//	    row segments are packed into MaskBits-wide words                (Â(l))
//	    the processor grid computes and accumulates Â(l)ᵀÂ(l)           (Eq. 7)
//	â is accumulated per rank and combined once at the end              (Eq. 4)
//	S and D are derived blockwise and optionally gathered at rank 0     (Eq. 2)
//
// The per-batch stage (sliceBatch → filter → packBatch) is the same code
// the sequential path runs; only the filter exchange and the Gram
// accumulation differ. All communication flows through the BSP runtime, so
// Result.Stats.Comm reports the exact per-superstep byte volumes of the
// run.
func Compute(ds Dataset, opts Options) (*Result, error) {
	if err := validateRun(ds, opts); err != nil {
		return nil, err
	}
	start := time.Now()
	n := ds.NumSamples()
	if n == 0 {
		return nil, fmt.Errorf("core: dataset has no samples")
	}
	m := ds.NumAttributes()

	res := &Result{N: n, Names: sampleNames(ds)}
	res.Stats.IndicatorNonzeros = TotalNonzeros(ds)

	// All Procs virtual ranks share this machine, so the default Workers: 0
	// resolves to a fair share of the CPUs per rank rather than a full
	// GOMAXPROCS pool per rank (which would oversubscribe the machine
	// Procs-fold). An explicit Workers value is taken as given.
	workers := opts.Workers
	if workers == 0 {
		if workers = runtime.GOMAXPROCS(0) / opts.Procs; workers < 1 {
			workers = 1
		}
	}

	commStats, err := bsp.Run(opts.Procs, func(p *bsp.Proc) error {
		ctx := dist.NewContext(p, opts.Replication)
		engine := dist.NewGramEngine(ctx, n, workers, opts.DenseThreshold)

		owned := ctx.OwnedSamples(n)
		localCounts := make([]int64, n)
		for _, j := range owned {
			localCounts[j] = int64(len(ds.Sample(j)))
		}

		for l := 0; l < opts.BatchCount; l++ {
			batchStart := time.Now()
			lo, hi := batchBounds(m, opts.BatchCount, l)

			// Shared batch stage over the owned samples only; the filter
			// vector exchange replicates the global nonzero set (Eq. 5, 6).
			columns, localRows := sliceBatch(ds, owned, lo, hi)
			length := int64(hi) - int64(lo)
			if length <= 0 {
				length = 1
			}
			filter := dist.NewFilterVector(ctx, length)
			filter.Write(localRows)
			nonzero := filter.Replicate()
			active := len(nonzero)

			entries, err := packBatch(columns, nonzero, lo, opts.MaskBits, workers)
			if err != nil {
				return fmt.Errorf("batch %d: %w", l, err)
			}
			engine.AddBatch(entries, wordRowsFor(active, opts.MaskBits), opts.MaskBits, active)

			if p.Rank() == 0 {
				res.Stats.Batches++
				res.Stats.BatchSeconds = append(res.Stats.BatchSeconds, time.Since(batchStart).Seconds())
				res.Stats.ActiveRowsPerBatch = append(res.Stats.ActiveRowsPerBatch, int64(active))
			}
		}

		// Combine the per-sample cardinalities. Each sample is owned by
		// exactly one rank, so an elementwise sum assembles â.
		counts := bsp.AllReduceSlice(p, localCounts, func(a, b int64) int64 { return a + b })
		blocks := engine.Finalize(counts)

		if p.Rank() == 0 {
			res.Cardinalities = counts
		}
		if !opts.SkipGather {
			b := blocks.GatherB(0)
			s := blocks.GatherS(0)
			d := blocks.GatherD(0)
			if p.Rank() == 0 {
				res.B, res.S, res.D = b, s, d
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats.Comm = commStats
	res.Stats.TotalSeconds = time.Since(start).Seconds()
	return res, nil
}
