package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"genomeatscale/internal/sparse"
	"genomeatscale/internal/tile"
)

// TestStreamCollectMatchesLegacy drives Engine.Stream with a collecting
// sink across the Procs × BatchCount × Workers × DenseThreshold
// equivalence grid (sequential points included as Procs = 1, with a tile
// height forcing multiple row-band tiles) and requires the reassembled
// B, S and D to be byte-identical — exact int64/float64 equality, not
// tolerance — to the legacy gathered Result of Engine.Similarity at the
// same point. It also checks the streaming Result carries no matrices and
// records the streaming stats.
func TestStreamCollectMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(2027))
	intEq := func(a, b int64) bool { return a == b }
	floatEq := func(a, b float64) bool { return a == b }
	ctx := context.Background()

	for _, procs := range []int{1, 2, 4, 9, 12} {
		n := 13
		if procs == 4 {
			n = 11
		}
		ds := randomDataset(rng, n, uint64(300+rng.Intn(900)), 0.03+rng.Float64()*0.05)
		for _, batches := range []int{1, 3, 7} {
			for _, workers := range []int{1, 4} {
				for _, dt := range []int{-1, 0, 1} {
					name := fmt.Sprintf("p%d_l%d_w%d_dt%d", procs, batches, workers, dt)
					t.Run(name, func(t *testing.T) {
						opts := DefaultOptions()
						opts.Procs = procs
						opts.BatchCount = batches
						opts.Workers = workers
						opts.DenseThreshold = dt
						opts.TileRows = 3 // several tiles even at these small n
						if procs == 9 {
							opts.Replication = 3
							opts.MaskBits = 32
						}
						e, err := NewEngine(opts)
						if err != nil {
							t.Fatal(err)
						}
						legacy, err := e.Similarity(ctx, ds)
						if err != nil {
							t.Fatal(err)
						}
						collect := tile.NewCollect()
						streamed, err := e.Stream(ctx, ds, collect)
						if err != nil {
							t.Fatal(err)
						}
						if streamed.B != nil || streamed.S != nil || streamed.D != nil {
							t.Error("streaming Result must not carry assembled matrices")
						}
						if !sparse.Equal(legacy.B, collect.B(), intEq) {
							t.Error("streamed B differs from legacy gather")
						}
						if !sparse.Equal(legacy.S, collect.S(), floatEq) {
							t.Error("streamed S not byte-identical to legacy gather")
						}
						if !sparse.Equal(legacy.D, collect.D(), floatEq) {
							t.Error("streamed D not byte-identical to legacy gather")
						}
						if collect.N() != n || len(collect.Names()) != n {
							t.Errorf("sink saw n=%d with %d names, want %d", collect.N(), len(collect.Names()), n)
						}
						if streamed.Stats.TilesEmitted == 0 {
							t.Error("streaming run must count emitted tiles")
						}
						if procs == 1 && streamed.Stats.TilesEmitted != (n+2)/3 {
							t.Errorf("sequential TileRows=3 over n=%d emitted %d tiles, want %d",
								n, streamed.Stats.TilesEmitted, (n+2)/3)
						}
						if streamed.Stats.PeakTileWords <= 0 {
							t.Error("streaming run must record the peak tile footprint")
						}
						for i := 0; i < n; i++ {
							if streamed.Cardinalities[i] != legacy.Cardinalities[i] {
								t.Fatalf("cardinality mismatch for sample %d", i)
							}
						}
					})
				}
			}
		}
	}
}

// TestStreamReducersMatchPostHoc checks that the TopK and Threshold sinks
// agree exactly with post-hoc filtering of the full gathered matrix under
// the shared deterministic pair order, on both execution paths.
func TestStreamReducersMatchPostHoc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	ds := randomDataset(rng, 14, 500, 0.08)

	for _, procs := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Procs = procs
		opts.BatchCount = 2
		opts.TileRows = 4
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		full, err := e.Similarity(ctx, ds)
		if err != nil {
			t.Fatal(err)
		}
		var all []tile.Pair
		for i := 0; i < full.N; i++ {
			for j := i + 1; j < full.N; j++ {
				all = append(all, tile.Pair{I: i, J: j, Similarity: full.S.At(i, j)})
			}
		}
		tile.SortPairs(all)

		for _, k := range []int{1, 5, 1000} {
			sink := tile.NewTopK(k)
			if _, err := e.Stream(ctx, ds, sink); err != nil {
				t.Fatal(err)
			}
			want := all
			if len(want) > k {
				want = all[:k]
			}
			got := sink.Pairs()
			if len(got) != len(want) {
				t.Fatalf("procs=%d k=%d: got %d pairs, want %d", procs, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("procs=%d k=%d pair %d: got %+v, want %+v", procs, k, i, got[i], want[i])
				}
			}
		}

		for _, tau := range []float64{0, 0.05, 0.5} {
			sink := tile.NewThreshold(tau)
			if _, err := e.Stream(ctx, ds, sink); err != nil {
				t.Fatal(err)
			}
			var want []tile.Pair
			for _, p := range all {
				if p.Similarity >= tau {
					want = append(want, p)
				}
			}
			got := sink.Pairs()
			if len(got) != len(want) {
				t.Fatalf("procs=%d tau=%v: got %d pairs, want %d", procs, tau, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("procs=%d tau=%v pair %d: got %+v, want %+v", procs, tau, i, got[i], want[i])
				}
			}
		}
	}
}

// TestEngineReuse runs one engine several times (mixing Similarity and
// Stream) and checks results stay identical — the amortised setup must not
// leak state between calls.
func TestEngineReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := randomDataset(rng, 9, 400, 0.07)
	e, err := NewEngine(Options{BatchCount: 2, MaskBits: 64, Procs: 4, Replication: 2, Workers: 2, TileRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ref, err := e.Similarity(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		again, err := e.Similarity(ctx, ds)
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.Equal(ref.S, again.S, func(a, b float64) bool { return a == b }) {
			t.Fatalf("round %d: reused engine produced a different S", round)
		}
		collect := tile.NewCollect()
		if _, err := e.Stream(ctx, ds, collect); err != nil {
			t.Fatal(err)
		}
		if !sparse.Equal(ref.S, collect.S(), func(a, b float64) bool { return a == b }) {
			t.Fatalf("round %d: reused engine streamed a different S", round)
		}
	}
}

// failingSink errors on the second tile; the run must abort and surface
// the sink error on both paths.
type failingSink struct{ emits int }

func (f *failingSink) Emit(*tile.Tile) error {
	f.emits++
	if f.emits >= 2 {
		return fmt.Errorf("sink full")
	}
	return nil
}

func TestStreamSinkErrorAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := randomDataset(rng, 12, 400, 0.08)
	for _, procs := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Procs = procs
		opts.TileRows = 2
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		_, err = e.Stream(context.Background(), ds, &failingSink{})
		if err == nil || !strings.Contains(err.Error(), "sink full") {
			t.Fatalf("procs=%d: want sink error, got %v", procs, err)
		}
	}
}

func TestStreamRequiresSink(t *testing.T) {
	e, err := NewEngine(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ds := MustInMemoryDataset(nil, [][]uint64{{1}, {2}}, 10)
	if _, err := e.Stream(context.Background(), ds, nil); err == nil {
		t.Error("Stream(nil sink) must error")
	}
}
