// Package core implements SimilarityAtScale, the communication-efficient
// distributed algorithm for all-pairs Jaccard similarity described in
// Sections III and IV of the paper. Data samples are sets of attribute
// indices (for GenomeAtScale, the k-mers present in a sequencing sample);
// the algorithm encodes them as a hypersparse indicator matrix A ∈ {0,1}^(m×n),
// processes A in row batches, filters empty rows with a distributed filter
// vector, compresses row segments into b-bit masks, and accumulates
// B = AᵀA with a popcount-AND semiring before deriving the similarity
// matrix S and distance matrix D = 1 − S.
//
// Three computation paths are provided and cross-checked in tests:
//
//   - ExactJaccard: a brute-force set implementation (the semantic oracle).
//   - ComputeSequential: the single-process algebraic pipeline with
//     batching, filtering and bitmask compression.
//   - Compute: the fully distributed pipeline over the BSP runtime and the
//     processor-grid Gram engine in internal/dist.
package core

import (
	"fmt"
	"sort"
)

// Dataset is the abstract input of SimilarityAtScale: n data samples, each
// a set of attribute indices drawn from [0, NumAttributes). For genome
// comparisons a sample is the set of k-mer codes appearing in one
// sequencing experiment and NumAttributes is 4^k.
type Dataset interface {
	// NumSamples returns n, the number of data samples (columns of A).
	NumSamples() int
	// NumAttributes returns m, the size of the attribute universe (rows of A).
	NumAttributes() uint64
	// Sample returns the sorted, duplicate-free attribute indices of sample i.
	// The returned slice must not be modified.
	Sample(i int) []uint64
	// SampleName returns a human-readable identifier for sample i.
	SampleName(i int) string
}

// DatasetV2 is the error-propagating dataset access path used by the
// execution pipelines. Dataset.Sample has no way to report an I/O failure,
// so out-of-core implementations historically panicked on a corrupt file —
// killing a whole multi-million-sample run for one bad input. DatasetV2
// surfaces those failures as errors instead: the batch stage calls
// SampleErr, and Engine.Similarity / Engine.Stream return the error like
// any other run failure.
//
// Implementations that load lazily should also use LoadRange to overlap
// I/O with compute (see samplefile.DirDataset); in-memory implementations
// can treat it as a no-op.
//
// Implementations must support concurrent SampleErr calls: the distributed
// path reads samples from every virtual rank at once. A wrapper that embeds
// a DatasetV2 and overrides Sample must override SampleErr (and LoadRange)
// too, or method promotion will route the pipelines around the override.
type DatasetV2 interface {
	Dataset
	// SampleErr returns the sorted, duplicate-free attribute indices of
	// sample i, or an error when the sample cannot be provided (unreadable
	// or corrupt backing file, value outside [0, NumAttributes), ...).
	// The returned slice must not be modified.
	SampleErr(i int) ([]uint64, error)
	// LoadRange eagerly makes samples [lo, hi) available — a prefetch hint
	// that lets loads proceed in parallel with compute. It returns the
	// first load error encountered; implementations with nothing to load
	// return nil.
	LoadRange(lo, hi int) error
}

// EvictingDataset is an optional DatasetV2 extension marking datasets
// that may evict and reload sample storage during a run (out-of-core
// loaders). The batch stage copies the in-range values out of such
// datasets instead of keeping zero-copy subslices: a subslice pins the
// sample's whole backing array until the batch's pack stage completes,
// which would keep every sample reachable at once and defeat the
// eviction bound in actual bytes.
type EvictingDataset interface {
	// EvictsSamples reports whether sample slices may be dropped from
	// memory during a run.
	EvictsSamples() bool
}

// RangePrefetcher is an optional DatasetV2 extension: PrefetchRange
// schedules background loads of samples [lo, hi) and returns immediately,
// without waiting for them — the non-blocking form of LoadRange. The
// engine uses it to begin the next batch's leading loads while the
// current batch's Gram accumulation computes; load errors are not lost,
// they re-surface from SampleErr when the scan reaches the sample.
type RangePrefetcher interface {
	PrefetchRange(lo, hi int)
}

// AsV2 adapts any Dataset to the error-returning DatasetV2 access path.
// A dataset that already implements DatasetV2 is returned unchanged;
// otherwise a wrapper is returned whose SampleErr converts a panicking
// Sample (the only failure channel the legacy interface has) into an
// ordinary error, and whose LoadRange is a no-op. The pipelines route every
// sample access through this adapter, so no Dataset implementation can
// take down a run by panicking during a load.
func AsV2(ds Dataset) DatasetV2 {
	if v2, ok := ds.(DatasetV2); ok {
		return v2
	}
	return legacyV2{ds}
}

// legacyV2 adapts a panic-on-error Dataset to DatasetV2.
type legacyV2 struct {
	Dataset
}

func (a legacyV2) SampleErr(i int) (vals []uint64, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("core: sample %d: %v", i, rec)
		}
	}()
	return a.Dataset.Sample(i), nil
}

func (a legacyV2) LoadRange(lo, hi int) error { return nil }

// InMemoryDataset is the simplest Dataset: all samples held in memory.
type InMemoryDataset struct {
	names      []string
	samples    [][]uint64
	attributes uint64
}

// NewInMemoryDataset builds a dataset from raw (possibly unsorted,
// possibly duplicated) attribute lists. Attribute values must be smaller
// than numAttributes.
func NewInMemoryDataset(names []string, samples [][]uint64, numAttributes uint64) (*InMemoryDataset, error) {
	if len(names) != 0 && len(names) != len(samples) {
		return nil, fmt.Errorf("core: %d names for %d samples", len(names), len(samples))
	}
	ds := &InMemoryDataset{attributes: numAttributes}
	for i, s := range samples {
		cleaned := dedupSorted(s)
		if len(cleaned) > 0 && cleaned[len(cleaned)-1] >= numAttributes {
			return nil, fmt.Errorf("core: sample %d contains attribute %d ≥ m=%d", i, cleaned[len(cleaned)-1], numAttributes)
		}
		ds.samples = append(ds.samples, cleaned)
		if len(names) != 0 {
			ds.names = append(ds.names, names[i])
		} else {
			ds.names = append(ds.names, fmt.Sprintf("sample-%d", i))
		}
	}
	return ds, nil
}

// MustInMemoryDataset is NewInMemoryDataset that panics on error; intended
// for tests and examples with known-good inputs.
func MustInMemoryDataset(names []string, samples [][]uint64, numAttributes uint64) *InMemoryDataset {
	ds, err := NewInMemoryDataset(names, samples, numAttributes)
	if err != nil {
		//gas:invariant documented Must helper for tests and examples with known-good inputs; NewInMemoryDataset is the checked path
		panic(err)
	}
	return ds
}

// NumSamples implements Dataset.
func (d *InMemoryDataset) NumSamples() int { return len(d.samples) }

// NumAttributes implements Dataset.
func (d *InMemoryDataset) NumAttributes() uint64 { return d.attributes }

// Sample implements Dataset.
func (d *InMemoryDataset) Sample(i int) []uint64 { return d.samples[i] }

// SampleName implements Dataset.
func (d *InMemoryDataset) SampleName(i int) string { return d.names[i] }

// TotalNonzeros returns the total number of (attribute, sample) pairs, i.e.
// the number of nonzeros of the indicator matrix A.
func TotalNonzeros(ds Dataset) int64 {
	var total int64
	for i := 0; i < ds.NumSamples(); i++ {
		total += int64(len(ds.Sample(i)))
	}
	return total
}

// Density returns nnz(A) / (m·n).
func Density(ds Dataset) float64 {
	n := ds.NumSamples()
	m := ds.NumAttributes()
	if n == 0 || m == 0 {
		return 0
	}
	return float64(TotalNonzeros(ds)) / (float64(m) * float64(n))
}

// dedupSorted sorts a copy of xs and removes duplicates.
func dedupSorted(xs []uint64) []uint64 {
	if len(xs) == 0 {
		return nil
	}
	out := append([]uint64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// rangeSlice returns the sub-slice of a sorted sample whose values fall in
// [lo, hi); this is how a batch extracts its share of each sample without
// materialising the full indicator matrix.
func rangeSlice(sorted []uint64, lo, hi uint64) []uint64 {
	start := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= lo })
	end := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= hi })
	return sorted[start:end]
}

// batchBounds returns the attribute range [lo, hi) of batch l when the m
// attributes are split into batchCount equal ranges (Eq. 3). The last batch
// absorbs the remainder.
func batchBounds(m uint64, batchCount, l int) (lo, hi uint64) {
	per := m / uint64(batchCount)
	if per == 0 {
		per = 1
	}
	lo = uint64(l) * per
	if lo > m {
		lo = m
	}
	hi = lo + per
	if l == batchCount-1 || hi > m {
		hi = m
	}
	return lo, hi
}
