package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"genomeatscale/internal/tile"
)

// panicOnSampleDataset is a legacy Dataset whose Sample panics for one
// index — the only failure channel the pre-V2 interface had.
type panicOnSampleDataset struct {
	*InMemoryDataset
	bad int
}

func (d *panicOnSampleDataset) Sample(i int) []uint64 {
	if i == d.bad {
		panic(fmt.Sprintf("simulated I/O failure on sample %d", i))
	}
	return d.InMemoryDataset.Sample(i)
}

// errOnSampleDataset implements DatasetV2 directly with a failing sample.
type errOnSampleDataset struct {
	*InMemoryDataset
	bad int
}

func (d *errOnSampleDataset) SampleErr(i int) ([]uint64, error) {
	if i == d.bad {
		return nil, errors.New("disk on fire")
	}
	return d.InMemoryDataset.Sample(i), nil
}

func (d *errOnSampleDataset) LoadRange(lo, hi int) error { return nil }

// TestLegacyPanicBecomesError: the AsV2 adapter converts a panicking
// legacy Sample into a run error on both execution paths, for Similarity
// and Stream alike.
func TestLegacyPanicBecomesError(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	base := randomDataset(rng, 16, 500, 0.05)
	for _, procs := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Procs = procs
		opts.BatchCount = 2
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		ds := &panicOnSampleDataset{InMemoryDataset: base, bad: 9}
		res, err := e.Similarity(nil, ds)
		if err == nil || res != nil {
			t.Fatalf("procs=%d: want error from panicking dataset, got res=%v err=%v", procs, res, err)
		}
		if !strings.Contains(err.Error(), "sample 9") {
			t.Errorf("procs=%d: error should identify the sample, got: %v", procs, err)
		}
		if _, err := e.Stream(nil, ds, tile.Discard); err == nil {
			t.Errorf("procs=%d: Stream must surface the same failure", procs)
		}
	}
}

// TestDatasetV2ErrorPropagates: a native DatasetV2 error aborts the run
// with the sample identified, on both paths.
func TestDatasetV2ErrorPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	base := randomDataset(rng, 12, 400, 0.06)
	for _, procs := range []int{1, 3} {
		opts := DefaultOptions()
		opts.Procs = procs
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		ds := &errOnSampleDataset{InMemoryDataset: base, bad: 5}
		_, err = e.Similarity(nil, ds)
		if err == nil || !strings.Contains(err.Error(), "disk on fire") {
			t.Fatalf("procs=%d: want the dataset's error, got: %v", procs, err)
		}
	}
}

// TestAsV2Passthrough: a dataset already implementing DatasetV2 must not
// be re-wrapped, and a legacy dataset must get the adapter.
func TestAsV2Passthrough(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	base := randomDataset(rng, 4, 100, 0.1)
	v2 := &errOnSampleDataset{InMemoryDataset: base, bad: -1}
	if AsV2(v2) != DatasetV2(v2) {
		t.Error("AsV2 must return a DatasetV2 unchanged")
	}
	adapted := AsV2(base)
	if _, ok := adapted.(legacyV2); !ok {
		t.Errorf("AsV2 of a legacy dataset should wrap, got %T", adapted)
	}
	vals, err := adapted.SampleErr(0)
	if err != nil || len(vals) != len(base.Sample(0)) {
		t.Errorf("adapter SampleErr = %v, %v", vals, err)
	}
	if err := adapted.LoadRange(0, 4); err != nil {
		t.Errorf("adapter LoadRange = %v", err)
	}
	if _, err := adapted.SampleErr(99); err == nil {
		t.Error("adapter must convert the out-of-range panic into an error")
	}
}

// TestCardinalitiesAccumulatedPerBatch: the per-batch cardinality
// accumulation (which replaced the eager load-everything pass) must equal
// the full sample sizes for every batch count.
func TestCardinalitiesAccumulatedPerBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	ds := randomDataset(rng, 10, 333, 0.08)
	for _, batches := range []int{1, 2, 7, 333, 400} {
		opts := DefaultOptions()
		opts.BatchCount = batches
		res, err := ComputeSequential(ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		var nnz int64
		for i := 0; i < ds.NumSamples(); i++ {
			want := int64(len(ds.Sample(i)))
			nnz += want
			if res.Cardinalities[i] != want {
				t.Fatalf("batches=%d: cardinality[%d] = %d, want %d", batches, i, res.Cardinalities[i], want)
			}
		}
		if res.Stats.IndicatorNonzeros != nnz {
			t.Errorf("batches=%d: IndicatorNonzeros = %d, want %d", batches, res.Stats.IndicatorNonzeros, nnz)
		}
	}
}
