package core

import (
	"math/rand"
	"testing"

	"genomeatscale/internal/sparse"
)

// When the number of virtual ranks exceeds the number of samples, some grid
// blocks are empty; the paper observes load imbalance in this regime
// (Section V-B) but the results must stay correct.
func TestComputeMoreRanksThanSamples(t *testing.T) {
	ds := MustInMemoryDataset(
		[]string{"a", "b", "c"},
		[][]uint64{{1, 2, 3}, {2, 3, 4}, {10, 11}},
		64,
	)
	exact := ExactJaccard(ds)
	for _, procs := range []int{4, 8, 12} {
		opts := DefaultOptions()
		opts.Procs = procs
		opts.BatchCount = 2
		res, err := Compute(ds, opts)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if !sparse.Equal(exact, res.S, approxEqual) {
			t.Fatalf("procs=%d: result differs from exact", procs)
		}
	}
}

func TestComputeSingleSample(t *testing.T) {
	ds := MustInMemoryDataset([]string{"only"}, [][]uint64{{5, 7, 9}}, 20)
	for _, procs := range []int{1, 3} {
		opts := DefaultOptions()
		opts.Procs = procs
		res, err := Compute(ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.N != 1 || !approxEqual(res.Similarity(0, 0), 1) {
			t.Fatalf("procs=%d: self-similarity must be 1", procs)
		}
		if res.Cardinalities[0] != 3 {
			t.Fatalf("cardinality = %d", res.Cardinalities[0])
		}
	}
}

func TestComputeAllSamplesIdentical(t *testing.T) {
	vals := []uint64{3, 17, 99, 100}
	ds := MustInMemoryDataset(nil, [][]uint64{vals, vals, vals, vals}, 200)
	opts := DefaultOptions()
	opts.Procs = 4
	opts.BatchCount = 3
	res, err := Compute(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !approxEqual(res.Similarity(i, j), 1) {
				t.Fatalf("S[%d][%d] = %v, want 1", i, j, res.Similarity(i, j))
			}
		}
	}
}

func TestComputeBatchCountExceedsAttributes(t *testing.T) {
	// More batches than attribute values: later batches are empty ranges and
	// must be handled gracefully on both paths.
	ds := MustInMemoryDataset(nil, [][]uint64{{0, 1}, {1, 2}}, 3)
	exact := ExactJaccard(ds)
	seqOpts := DefaultOptions()
	seqOpts.BatchCount = 10
	seq, err := ComputeSequential(ds, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(exact, seq.S, approxEqual) {
		t.Fatal("sequential result differs from exact with excess batches")
	}
	distOpts := DefaultOptions()
	distOpts.BatchCount = 10
	distOpts.Procs = 3
	dist, err := Compute(ds, distOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(exact, dist.S, approxEqual) {
		t.Fatal("distributed result differs from exact with excess batches")
	}
}

func TestComputeMaskBitsOne(t *testing.T) {
	// b = 1 disables the packing benefit entirely (one row per word) but the
	// algorithm must still be correct on both paths.
	rng := rand.New(rand.NewSource(55))
	ds := randomDataset(rng, 6, 300, 0.05)
	exact := ExactJaccard(ds)
	for _, procs := range []int{1, 4} {
		opts := DefaultOptions()
		opts.MaskBits = 1
		opts.Procs = procs
		var res *Result
		var err error
		if procs == 1 {
			res, err = ComputeSequential(ds, opts)
		} else {
			res, err = Compute(ds, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.Equal(exact, res.S, approxEqual) {
			t.Fatalf("procs=%d: b=1 result differs from exact", procs)
		}
	}
}

func TestComputeRejectsHugeUniverse(t *testing.T) {
	ds := MustInMemoryDataset(nil, [][]uint64{{1}, {2}}, uint64(1)<<63)
	if _, err := Compute(ds, DefaultOptions()); err == nil {
		t.Error("universe beyond 2^62 should be rejected by the distributed path")
	}
	if _, err := ComputeSequential(ds, DefaultOptions()); err == nil {
		t.Error("universe beyond 2^62 should be rejected by the sequential path too")
	}
}

func TestDistributedReplicationExceedingRanks(t *testing.T) {
	// Replication factors larger than the rank count are clamped by the grid
	// chooser; the run must still be correct.
	rng := rand.New(rand.NewSource(77))
	ds := randomDataset(rng, 7, 500, 0.04)
	exact := ExactJaccard(ds)
	opts := DefaultOptions()
	opts.Procs = 4
	opts.Replication = 64
	res, err := Compute(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(exact, res.S, approxEqual) {
		t.Fatal("result differs from exact with clamped replication")
	}
}
