package core

import (
	"slices"
	"time"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/sparse"
)

// ComputeSequential runs the SimilarityAtScale pipeline on a single
// process: the indicator matrix is processed in BatchCount row batches;
// each batch filters out empty rows, compresses the surviving rows into
// MaskBits-wide masks, and accumulates its Gram contribution into B with
// the popcount kernel (Listing 1 of the paper, without the distribution).
// It serves both as the single-node execution mode of GenomeAtScale and as
// the reference the distributed path is verified against.
func ComputeSequential(ds Dataset, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	n := ds.NumSamples()
	m := ds.NumAttributes()

	res := &Result{
		N:             n,
		Names:         sampleNames(ds),
		Cardinalities: make([]int64, n),
	}
	b := sparse.NewDense[int64](n, n)

	for i := 0; i < n; i++ {
		res.Cardinalities[i] = int64(len(ds.Sample(i)))
		res.Stats.IndicatorNonzeros += int64(len(ds.Sample(i)))
	}

	for l := 0; l < opts.BatchCount; l++ {
		batchStart := time.Now()
		lo, hi := batchBounds(m, opts.BatchCount, l)
		if lo >= hi {
			res.Stats.Batches++
			res.Stats.BatchSeconds = append(res.Stats.BatchSeconds, time.Since(batchStart).Seconds())
			res.Stats.ActiveRowsPerBatch = append(res.Stats.ActiveRowsPerBatch, 0)
			continue
		}

		// Build the filter f(l): the sorted distinct attribute values present
		// in this batch across all samples (Eq. 5), then the per-sample
		// compacted row lists via the prefix-sum positions (Eq. 6).
		batchValues := make([][]uint64, n)
		filter := make(map[uint64]struct{})
		for j := 0; j < n; j++ {
			vals := rangeSlice(ds.Sample(j), lo, hi)
			batchValues[j] = vals
			for _, v := range vals {
				filter[v] = struct{}{}
			}
		}
		nonzeroRows := sortedKeys(filter)
		active := len(nonzeroRows)
		res.Stats.ActiveRowsPerBatch = append(res.Stats.ActiveRowsPerBatch, int64(active))

		// Compress: pack each sample's compacted rows into MaskBits-wide
		// words (Â(l), Section III-B) and accumulate the Gram contribution.
		rowsPerCol := make([][]int, n)
		for j := 0; j < n; j++ {
			vals := batchValues[j]
			if len(vals) == 0 {
				continue
			}
			rows := make([]int, len(vals))
			for k, v := range vals {
				rows[k] = searchSorted(nonzeroRows, v)
			}
			rowsPerCol[j] = rows
		}
		packed := bitmat.PackColumns(rowsPerCol, active, opts.MaskBits)
		packed.GramAccumulate(b)

		res.Stats.Batches++
		res.Stats.BatchSeconds = append(res.Stats.BatchSeconds, time.Since(batchStart).Seconds())
	}

	finalize(res, b, opts)
	res.Stats.TotalSeconds = time.Since(start).Seconds()
	return res, nil
}

// finalize derives S and D from B and the per-sample cardinalities (Eq. 2).
func finalize(res *Result, b *sparse.Dense[int64], opts Options) {
	if opts.SkipGather {
		return
	}
	n := res.N
	res.B = b
	res.S = sparse.NewDense[float64](n, n)
	res.D = sparse.NewDense[float64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			bij := b.At(i, j)
			cij := res.Cardinalities[i] + res.Cardinalities[j] - bij
			var s float64
			if cij == 0 {
				s = 1
			} else {
				s = float64(bij) / float64(cij)
			}
			res.S.Set(i, j, s)
			res.D.Set(i, j, 1-s)
		}
	}
}

func sampleNames(ds Dataset) []string {
	names := make([]string, ds.NumSamples())
	for i := range names {
		names[i] = ds.SampleName(i)
	}
	return names
}

func sortedKeys(set map[uint64]struct{}) []uint64 {
	out := make([]uint64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// searchSorted returns the index of v in the sorted slice xs; v must be
// present (guaranteed by construction of the filter).
func searchSorted(xs []uint64, v uint64) int {
	idx, _ := slices.BinarySearch(xs, v)
	return idx
}
