package core

import (
	"time"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/dist"
	"genomeatscale/internal/par"
	"genomeatscale/internal/sparse"
)

// ComputeSequential runs the SimilarityAtScale pipeline on a single
// process: the indicator matrix is processed in BatchCount row batches;
// each batch filters out empty rows, compresses the surviving rows into
// MaskBits-wide masks, and accumulates its Gram contribution into B with
// the popcount kernel (Listing 1 of the paper, without the distribution).
// It runs the same batch stage (sliceBatch → filter → packBatch) as the
// distributed path — every sample is visible, so the filter needs no
// exchange — and serves both as the single-node execution mode of
// GenomeAtScale and as the reference the distributed path is verified
// against.
func ComputeSequential(ds Dataset, opts Options) (*Result, error) {
	if err := validateRun(ds, opts); err != nil {
		return nil, err
	}
	start := time.Now()
	n := ds.NumSamples()
	m := ds.NumAttributes()
	workers := par.Resolve(opts.Workers)

	res := &Result{
		N:             n,
		Names:         sampleNames(ds),
		Cardinalities: make([]int64, n),
	}
	b := sparse.NewDense[int64](n, n)

	allCols := make([]int, n)
	for i := 0; i < n; i++ {
		allCols[i] = i
		res.Cardinalities[i] = int64(len(ds.Sample(i)))
		res.Stats.IndicatorNonzeros += int64(len(ds.Sample(i)))
	}

	for l := 0; l < opts.BatchCount; l++ {
		batchStart := time.Now()
		lo, hi := batchBounds(m, opts.BatchCount, l)

		// Shared batch stage: slice, filter (Eq. 5), compact and pack
		// (Eq. 6, Section III-B). A single process observes every write, so
		// dist.Compact of the local rows is the whole filter vector.
		columns, localRows := sliceBatch(ds, allCols, lo, hi)
		nonzero := dist.Compact(localRows)
		active := len(nonzero)
		entries, err := packBatch(columns, nonzero, lo, opts.MaskBits, workers)
		if err != nil {
			return nil, err
		}
		packed := bitmat.FromEntriesThreshold(entries, wordRowsFor(active, opts.MaskBits), n, opts.MaskBits, active, opts.DenseThreshold)
		packed.GramAccumulateWorkers(b, workers)

		res.Stats.Batches++
		res.Stats.BatchSeconds = append(res.Stats.BatchSeconds, time.Since(batchStart).Seconds())
		res.Stats.ActiveRowsPerBatch = append(res.Stats.ActiveRowsPerBatch, int64(active))
	}

	finalize(res, b, opts.SkipGather, workers)
	res.Stats.TotalSeconds = time.Since(start).Seconds()
	return res, nil
}

// finalize derives S and D from B and the per-sample cardinalities through
// the shared Eq. 2 scalar, matching the blockwise derivation the
// distributed path performs in dist.Blocks. B is exactly symmetric and
// dist.Jaccard is symmetric in (i, j), so only the upper triangle is
// derived and the lower triangle mirrored — halving the O(n²) Jaccard
// evaluations. Both passes are row-parallel on the worker pool with
// disjoint writes (each row of S and D is owned by exactly one index; the
// mirror pass only reads rows j < i, fully written before the pool joined),
// so the result is identical for every workers value.
func finalize(res *Result, b *sparse.Dense[int64], skipGather bool, workers int) {
	if skipGather {
		return
	}
	n := res.N
	res.B = b
	res.S = sparse.NewDense[float64](n, n)
	res.D = sparse.NewDense[float64](n, n)
	par.ForEach(workers, n, func(i int) {
		brow := b.Row(i)
		srow := res.S.Row(i)
		drow := res.D.Row(i)
		for j := i; j < n; j++ {
			s := dist.Jaccard(brow[j], res.Cardinalities[i], res.Cardinalities[j])
			srow[j] = s
			drow[j] = 1 - s
		}
	})
	par.ForEach(workers, n, func(i int) {
		srow := res.S.Row(i)
		drow := res.D.Row(i)
		for j := 0; j < i; j++ {
			srow[j] = res.S.Row(j)[i]
			drow[j] = res.D.Row(j)[i]
		}
	})
}

func sampleNames(ds Dataset) []string {
	names := make([]string, ds.NumSamples())
	for i := range names {
		names[i] = ds.SampleName(i)
	}
	return names
}
