package core

import (
	"context"

	"genomeatscale/internal/dist"
	"genomeatscale/internal/par"
	"genomeatscale/internal/sparse"
)

// ComputeSequential runs the SimilarityAtScale pipeline on a single
// process with the legacy one-shot semantics: a throwaway engine is built
// for opts and the full matrices are assembled. It serves both as the
// single-node execution mode of GenomeAtScale and as the reference the
// distributed path is verified against. Sample accesses go through the
// error-returning DatasetV2 path (see AsV2), so an unreadable or corrupt
// sample aborts the run with a descriptive error instead of panicking. New
// code that runs more than once, needs cancellation or wants streaming
// output should hold an Engine.
func ComputeSequential(ds Dataset, opts Options) (*Result, error) {
	e, err := NewEngine(opts)
	if err != nil {
		return nil, err
	}
	cfg, err := e.configFor(ds)
	if err != nil {
		return nil, err
	}
	return e.computeSeq(context.Background(), ds, nil, cfg)
}

// finalize derives S and D from B and the per-sample cardinalities through
// the shared Eq. 2 scalar, matching the blockwise derivation the
// distributed path performs in dist.Blocks. B is exactly symmetric and
// dist.Jaccard is symmetric in (i, j), so only the upper triangle is
// derived and the lower triangle mirrored — halving the O(n²) Jaccard
// evaluations. Both passes are row-parallel on the worker pool with
// disjoint writes (each row of S and D is owned by exactly one index; the
// mirror pass only reads rows j < i, fully written before the pool joined),
// so the result is identical for every workers value. Both passes poll ctx
// per row, so a cancelled run abandons the O(n²) derivation and returns
// ctx.Err() (the partially filled matrices are dropped by the caller).
func finalize(ctx context.Context, res *Result, b *sparse.Dense[int64], skipGather bool, workers int) error {
	if skipGather {
		return nil
	}
	n := res.N
	res.B = b
	res.S = sparse.MustDense[float64](n, n)
	res.D = sparse.MustDense[float64](n, n)
	if err := par.ForEachCtx(ctx, workers, n, func(i int) {
		brow := b.Row(i)
		srow := res.S.Row(i)
		drow := res.D.Row(i)
		for j := i; j < n; j++ {
			s := dist.Jaccard(brow[j], res.Cardinalities[i], res.Cardinalities[j])
			srow[j] = s
			drow[j] = 1 - s
		}
	}); err != nil {
		return err
	}
	return par.ForEachCtx(ctx, workers, n, func(i int) {
		srow := res.S.Row(i)
		drow := res.D.Row(i)
		for j := 0; j < i; j++ {
			srow[j] = res.S.Row(j)[i]
			drow[j] = res.D.Row(j)[i]
		}
	})
}

func sampleNames(ds Dataset) []string {
	names := make([]string, ds.NumSamples())
	for i := range names {
		names[i] = ds.SampleName(i)
	}
	return names
}
