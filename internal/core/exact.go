package core

import "genomeatscale/internal/sparse"

// JaccardPair computes the exact Jaccard similarity of two sorted,
// duplicate-free attribute lists. Two empty sets have similarity 0 (the
// J(∅, ∅) = 0 convention shared with dist.Jaccard and the MinHash
// estimator): an empty sample shares nothing with anything, so it must
// not rank as a perfect match in thresholded or top-k runs.
func JaccardPair(x, y []uint64) float64 {
	if len(x) == 0 && len(y) == 0 {
		return 0
	}
	inter := intersectionSize(x, y)
	union := len(x) + len(y) - inter
	return float64(inter) / float64(union)
}

// JaccardDistancePair returns 1 − JaccardPair(x, y).
func JaccardDistancePair(x, y []uint64) float64 { return 1 - JaccardPair(x, y) }

// intersectionSize merges two sorted lists and counts common elements.
func intersectionSize(x, y []uint64) int {
	i, j, count := 0, 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// ExactJaccard computes the full similarity matrix by direct set
// intersection, without the algebraic machinery. It is the semantic oracle
// the other paths are verified against, and is practical only for small n.
func ExactJaccard(ds Dataset) *sparse.Dense[float64] {
	n := ds.NumSamples()
	out := sparse.MustDense[float64](n, n)
	for i := 0; i < n; i++ {
		xi := ds.Sample(i)
		// The diagonal is computed, not assumed: an empty sample's
		// self-similarity is 0 under the shared J(∅, ∅) = 0 convention.
		out.Set(i, i, JaccardPair(xi, xi))
		for j := i + 1; j < n; j++ {
			s := JaccardPair(xi, ds.Sample(j))
			out.Set(i, j, s)
			out.Set(j, i, s)
		}
	}
	return out
}

// ExactDistance returns the exact Jaccard distance matrix 1 − ExactJaccard.
func ExactDistance(ds Dataset) *sparse.Dense[float64] {
	s := ExactJaccard(ds)
	return sparse.Map(s, func(v float64) float64 { return 1 - v })
}
