package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"genomeatscale/internal/sparse"
)

func approxEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func randomDataset(rng *rand.Rand, n int, m uint64, density float64) *InMemoryDataset {
	samples := make([][]uint64, n)
	for j := 0; j < n; j++ {
		expected := float64(m) * density
		count := int(expected)
		if count < 1 {
			count = 1 + rng.Intn(3)
		}
		for k := 0; k < count; k++ {
			samples[j] = append(samples[j], uint64(rng.Int63n(int64(m))))
		}
	}
	return MustInMemoryDataset(nil, samples, m)
}

func TestNewInMemoryDatasetValidation(t *testing.T) {
	if _, err := NewInMemoryDataset([]string{"a"}, [][]uint64{{1}, {2}}, 10); err == nil {
		t.Error("mismatched names should fail")
	}
	if _, err := NewInMemoryDataset(nil, [][]uint64{{10}}, 10); err == nil {
		t.Error("attribute ≥ m should fail")
	}
	ds, err := NewInMemoryDataset([]string{"x"}, [][]uint64{{3, 1, 3, 2}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := ds.Sample(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Sample(0) = %v, want sorted dedup [1 2 3]", got)
	}
	if ds.SampleName(0) != "x" {
		t.Errorf("SampleName = %q", ds.SampleName(0))
	}
	anon := MustInMemoryDataset(nil, [][]uint64{{1}}, 10)
	if anon.SampleName(0) != "sample-0" {
		t.Errorf("default name = %q", anon.SampleName(0))
	}
}

func TestMustInMemoryDatasetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustInMemoryDataset(nil, [][]uint64{{100}}, 10)
}

func TestTotalNonzerosAndDensity(t *testing.T) {
	ds := MustInMemoryDataset(nil, [][]uint64{{0, 1, 2}, {5}, {}}, 10)
	if TotalNonzeros(ds) != 4 {
		t.Errorf("TotalNonzeros = %d", TotalNonzeros(ds))
	}
	if !approxEqual(Density(ds), 4.0/30.0) {
		t.Errorf("Density = %v", Density(ds))
	}
	empty := MustInMemoryDataset(nil, nil, 10)
	if Density(empty) != 0 {
		t.Error("empty dataset density should be 0")
	}
}

func TestBatchBoundsCoverUniverse(t *testing.T) {
	f := func(mRaw uint32, bRaw uint8) bool {
		m := uint64(mRaw%100000) + 1
		batches := int(bRaw%50) + 1
		var covered uint64
		prevHi := uint64(0)
		for l := 0; l < batches; l++ {
			lo, hi := batchBounds(m, batches, l)
			if lo > hi || lo < prevHi {
				return false
			}
			// Ranges may leave gaps only if lo jumped; they must be contiguous.
			if l > 0 && lo != prevHi {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == m && prevHi == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJaccardPairKnown(t *testing.T) {
	cases := []struct {
		x, y []uint64
		want float64
	}{
		{nil, nil, 0}, // J(∅, ∅) = 0: empty samples match nothing
		{[]uint64{1, 2, 3}, nil, 0},
		{[]uint64{1, 2, 3}, []uint64{1, 2, 3}, 1},
		{[]uint64{1, 2, 3}, []uint64{2, 3, 4}, 0.5},
		{[]uint64{1}, []uint64{2}, 0},
		{[]uint64{1, 2, 3, 4}, []uint64{3, 4, 5, 6, 7, 8}, 2.0 / 8.0},
	}
	for _, c := range cases {
		if got := JaccardPair(c.x, c.y); !approxEqual(got, c.want) {
			t.Errorf("JaccardPair(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
		if got := JaccardDistancePair(c.x, c.y); !approxEqual(got, 1-c.want) {
			t.Errorf("JaccardDistancePair(%v,%v) = %v, want %v", c.x, c.y, got, 1-c.want)
		}
	}
}

func TestExactJaccardProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := randomDataset(rng, 12, 500, 0.05)
	s := ExactJaccard(ds)
	d := ExactDistance(ds)
	n := ds.NumSamples()
	for i := 0; i < n; i++ {
		if !approxEqual(s.At(i, i), 1) {
			t.Errorf("diagonal S[%d][%d] = %v", i, i, s.At(i, i))
		}
		for j := 0; j < n; j++ {
			v := s.At(i, j)
			if v < 0 || v > 1 {
				t.Errorf("S[%d][%d] = %v out of [0,1]", i, j, v)
			}
			if !approxEqual(v, s.At(j, i)) {
				t.Errorf("S not symmetric at (%d,%d)", i, j)
			}
			if !approxEqual(d.At(i, j), 1-v) {
				t.Errorf("D != 1-S at (%d,%d)", i, j)
			}
		}
	}
	// Triangle inequality of the Jaccard distance (it is a metric).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if d.At(i, k) > d.At(i, j)+d.At(j, k)+1e-9 {
					t.Fatalf("triangle inequality violated at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	good := DefaultOptions()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{BatchCount: 0, MaskBits: 64, Procs: 1, Replication: 1},
		{BatchCount: 1, MaskBits: 0, Procs: 1, Replication: 1},
		{BatchCount: 1, MaskBits: 65, Procs: 1, Replication: 1},
		{BatchCount: 1, MaskBits: 64, Procs: 0, Replication: 1},
		{BatchCount: 1, MaskBits: 64, Procs: 1, Replication: 0},
		{BatchCount: 1, MaskBits: 64, Procs: 1, Replication: 1, Workers: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestComputeSequentialMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(12)
		m := uint64(100 + rng.Intn(2000))
		ds := randomDataset(rng, n, m, 0.02+rng.Float64()*0.1)
		exact := ExactJaccard(ds)
		for _, batches := range []int{1, 3, 7} {
			for _, maskBits := range []int{16, 64} {
				opts := DefaultOptions()
				opts.BatchCount = batches
				opts.MaskBits = maskBits
				res, err := ComputeSequential(ds, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !sparse.Equal(exact, res.S, approxEqual) {
					t.Fatalf("trial %d batches=%d b=%d: sequential S differs from exact", trial, batches, maskBits)
				}
				for i := 0; i < n; i++ {
					if res.Cardinalities[i] != int64(len(ds.Sample(i))) {
						t.Fatalf("cardinality mismatch for sample %d", i)
					}
				}
				if res.Stats.Batches != batches {
					t.Fatalf("Stats.Batches = %d, want %d", res.Stats.Batches, batches)
				}
			}
		}
	}
}

func TestComputeSequentialEmptySamples(t *testing.T) {
	ds := MustInMemoryDataset(nil, [][]uint64{{}, {}, {1, 2}}, 10)
	res, err := ComputeSequential(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(res.Similarity(0, 1), 0) {
		t.Errorf("empty vs empty similarity = %v, want 0 (J(∅, ∅) = 0)", res.Similarity(0, 1))
	}
	if !approxEqual(res.Similarity(0, 0), 0) {
		t.Errorf("empty self-similarity = %v, want 0 (J(∅, ∅) = 0)", res.Similarity(0, 0))
	}
	if !approxEqual(res.Similarity(0, 2), 0) {
		t.Errorf("empty vs non-empty similarity = %v, want 0", res.Similarity(0, 2))
	}
	if !approxEqual(res.Distance(0, 2), 1) {
		t.Errorf("Distance = %v, want 1", res.Distance(0, 2))
	}
}

func TestComputeSequentialInvalidOptions(t *testing.T) {
	ds := MustInMemoryDataset(nil, [][]uint64{{1}}, 10)
	if _, err := ComputeSequential(ds, Options{}); err == nil {
		t.Error("expected error for zero options")
	}
	if _, err := Compute(ds, Options{}); err == nil {
		t.Error("expected error for zero options (distributed)")
	}
}

func TestComputeDistributedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	configs := []struct {
		procs, replication, batches, maskBits int
	}{
		{1, 1, 1, 64},
		{2, 1, 2, 64},
		{4, 1, 3, 64},
		{4, 2, 2, 32},
		{8, 2, 4, 64},
		{6, 1, 1, 64},
		{16, 4, 2, 64},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("p%d_c%d", cfg.procs, cfg.replication), func(t *testing.T) {
			n := 4 + rng.Intn(10)
			m := uint64(200 + rng.Intn(3000))
			ds := randomDataset(rng, n, m, 0.03)
			exact := ExactJaccard(ds)
			opts := DefaultOptions()
			opts.Procs = cfg.procs
			opts.Replication = cfg.replication
			opts.BatchCount = cfg.batches
			opts.MaskBits = cfg.maskBits
			res, err := Compute(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !sparse.Equal(exact, res.S, approxEqual) {
				t.Fatal("distributed S differs from exact")
			}
			if res.Stats.Comm == nil {
				t.Fatal("distributed run must record communication stats")
			}
			if res.Stats.Comm.Procs != cfg.procs {
				t.Errorf("Comm.Procs = %d", res.Stats.Comm.Procs)
			}
			if cfg.procs > 1 && res.Stats.Comm.TotalBytes == 0 {
				t.Error("multi-rank run should move bytes")
			}
			if res.Stats.Batches != cfg.batches {
				t.Errorf("Batches = %d, want %d", res.Stats.Batches, cfg.batches)
			}
			// D = 1 - S everywhere.
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if !approxEqual(res.D.At(i, j), 1-res.S.At(i, j)) {
						t.Fatalf("D != 1-S at (%d,%d)", i, j)
					}
				}
			}
		})
	}
}

func TestComputeEmptyDataset(t *testing.T) {
	ds := MustInMemoryDataset(nil, nil, 10)
	if _, err := Compute(ds, DefaultOptions()); err == nil {
		t.Error("expected error for empty dataset")
	}
}

func TestComputeSkipGather(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := randomDataset(rng, 6, 300, 0.05)
	opts := DefaultOptions()
	opts.Procs = 4
	opts.SkipGather = true
	res, err := Compute(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.S != nil || res.D != nil || res.B != nil {
		t.Error("SkipGather must not assemble the full matrices")
	}
	defer func() {
		if recover() == nil {
			t.Error("Similarity() should panic when not gathered")
		}
	}()
	res.Similarity(0, 1)
}

// Batching invariance: the result must be identical for any batch count
// (Eq. 4 accumulation property), checked end-to-end via the public API.
func TestBatchingInvarianceProperty(t *testing.T) {
	f := func(seed int64, batchesRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 5+rng.Intn(5), uint64(100+rng.Intn(900)), 0.05)
		base := DefaultOptions()
		ref, err := ComputeSequential(ds, base)
		if err != nil {
			return false
		}
		batched := base
		batched.BatchCount = int(batchesRaw%16) + 1
		got, err := ComputeSequential(ds, batched)
		if err != nil {
			return false
		}
		return sparse.Equal(ref.S, got.S, approxEqual)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Mask-width invariance: the result is independent of the bitmask width b.
func TestMaskWidthInvarianceProperty(t *testing.T) {
	f := func(seed int64, widthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 4+rng.Intn(5), uint64(100+rng.Intn(500)), 0.08)
		ref, err := ComputeSequential(ds, DefaultOptions())
		if err != nil {
			return false
		}
		opts := DefaultOptions()
		opts.MaskBits = int(widthRaw%64) + 1
		got, err := ComputeSequential(ds, opts)
		if err != nil {
			return false
		}
		return sparse.Equal(ref.S, got.S, approxEqual)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Permutation invariance: permuting samples permutes rows/columns of S.
func TestPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 8
	ds := randomDataset(rng, n, 400, 0.05)
	perm := rng.Perm(n)
	permSamples := make([][]uint64, n)
	for i, p := range perm {
		permSamples[i] = ds.Sample(p)
	}
	permDS := MustInMemoryDataset(nil, permSamples, 400)
	orig, err := ComputeSequential(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	permuted, err := ComputeSequential(permDS, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !approxEqual(permuted.S.At(i, j), orig.S.At(perm[i], perm[j])) {
				t.Fatalf("permutation invariance violated at (%d,%d)", i, j)
			}
		}
	}
}

func TestIntersectionSize(t *testing.T) {
	if intersectionSize([]uint64{1, 3, 5}, []uint64{2, 3, 4, 5, 6}) != 2 {
		t.Error("intersectionSize wrong")
	}
	if intersectionSize(nil, []uint64{1}) != 0 {
		t.Error("empty intersection wrong")
	}
}

func TestRangeSlice(t *testing.T) {
	xs := []uint64{1, 5, 9, 12, 40}
	got := rangeSlice(xs, 5, 13)
	if len(got) != 3 || got[0] != 5 || got[2] != 12 {
		t.Errorf("rangeSlice = %v", got)
	}
	if len(rangeSlice(xs, 100, 200)) != 0 {
		t.Error("out-of-range slice should be empty")
	}
	if len(rangeSlice(xs, 0, 100)) != 5 {
		t.Error("full-range slice should return everything")
	}
}
