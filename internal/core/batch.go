package core

import (
	"context"
	"fmt"
	"slices"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/bitutil"
	"genomeatscale/internal/par"
)

// This file is the batch stage shared by both execution modes. For every
// batch A(l), ComputeSequential and Compute run the same pipeline:
//
//	sliceBatch   — range-slice each visible sample's attributes (Eq. 3)
//	filter       — sorted distinct nonzero rows f(l) (Eq. 5); the sequential
//	               path sees every sample and uses dist.Compact directly,
//	               the distributed path exchanges writes through
//	               dist.FilterVector
//	packBatch    — compact rows against the sorted nonzero list with a
//	               two-pointer merge (Eq. 6) and pack them into
//	               MaskBits-wide words (Â(l), Section III-B)
//
// The modes differ only in which samples are visible to a process and in
// who accumulates the Gram contribution (a local dense accumulator versus
// the processor-grid engine in internal/dist).

// validateDataset is the shared input guard of both execution modes: the
// attribute-universe bound (row indices must fit the int64 arithmetic of
// the filter and prefix-sum machinery). Option consistency is checked once,
// in NewEngine.
func validateDataset(ds Dataset) error {
	if m := ds.NumAttributes(); m > uint64(1)<<62 {
		return fmt.Errorf("core: attribute universe %d exceeds 2^62; remap attributes to a smaller universe", m)
	}
	return nil
}

// batchColumn is one sample's share of a batch: the attribute values of
// column `col` that fall inside the batch range.
type batchColumn struct {
	col  int
	vals []uint64
}

// sliceBatch extracts the batch range [lo, hi) of the listed samples. It
// returns the non-empty columns and the flattened batch-rebased row list
// (the rows this process would write into the filter vector). Samples are
// accessed through the error-returning DatasetV2 path in ascending column
// order — the access pattern out-of-core datasets prefetch against — and a
// load failure aborts the batch with a descriptive error instead of
// panicking mid-run.
//
// For an EvictingDataset the in-range values are copied out: the columns
// live until the batch's pack stage completes, and a zero-copy subslice
// would pin each sample's whole backing array for that long — the resident
// bound would then hold only in the loader's accounting, not in bytes.
// Non-evicting datasets keep the historical zero-copy subslices.
func sliceBatch(ds DatasetV2, cols []int, lo, hi uint64) ([]batchColumn, []int64, error) {
	if lo >= hi {
		return nil, nil, nil
	}
	copyVals := false
	if ev, ok := ds.(EvictingDataset); ok {
		copyVals = ev.EvictsSamples()
	}
	var columns []batchColumn
	var rows []int64
	for _, j := range cols {
		sample, err := ds.SampleErr(j)
		if err != nil {
			return nil, nil, fmt.Errorf("core: loading sample %d (%s): %w", j, ds.SampleName(j), err)
		}
		vals := rangeSlice(sample, lo, hi)
		if len(vals) == 0 {
			continue
		}
		if copyVals {
			vals = slices.Clone(vals)
		}
		columns = append(columns, batchColumn{col: j, vals: vals})
		for _, v := range vals {
			rows = append(rows, int64(v-lo))
		}
	}
	return columns, rows, nil
}

// packBatch compacts each column's batch rows against the sorted nonzero
// row list (Eq. 6) and packs them into MaskBits-wide words, emitting the
// packed matrix Â(l) in coordinate form. nonzero must contain every row
// present in columns (guaranteed when it came from the same writes).
// Columns are independent, so with workers > 1 they are packed on the
// shared worker pool and the per-column slices concatenated in column
// order — the emitted coordinate sequence is identical for every workers
// value; with one worker the columns append into a single slice with no
// intermediate allocation, exactly the historical serial path. Both paths
// poll ctx between columns, so a cancelled run abandons the pack mid-batch
// and returns ctx.Err().
//
// reuse, when non-nil, is an empty slice whose backing array the emitted
// entries may grow into — the engine's batch loop passes the previous
// batch's (consumed) entry slice so steady state re-packs in place.
func packBatch(ctx context.Context, columns []batchColumn, nonzero []int64, lo uint64, maskBits, workers int, reuse []bitmat.PackedEntry) ([]bitmat.PackedEntry, error) {
	if par.Resolve(workers) <= 1 || len(columns) <= 1 {
		entries := reuse[:0]
		var err error
		for _, cr := range columns {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if entries, err = packColumnInto(entries, cr, nonzero, lo, maskBits); err != nil {
				return nil, err
			}
		}
		return entries, nil
	}
	perCol := make([][]bitmat.PackedEntry, len(columns))
	errs := make([]error, len(columns))
	if err := par.ForEachCtx(ctx, workers, len(columns), func(k int) {
		perCol[k], errs[k] = packColumnInto(nil, columns[k], nonzero, lo, maskBits)
	}); err != nil {
		return nil, err
	}
	total := 0
	for k := range columns {
		if errs[k] != nil {
			return nil, errs[k]
		}
		total += len(perCol[k])
	}
	entries := reuse[:0]
	if cap(entries) < total {
		entries = make([]bitmat.PackedEntry, 0, total)
	}
	for _, part := range perCol {
		entries = append(entries, part...)
	}
	return entries, nil
}

// packColumnInto packs one column's batch rows into MaskBits-wide
// coordinate words appended to entries (the per-column unit of work of
// packBatch). The column's values and the nonzero row list are both sorted
// ascending (Dataset contract, dist.Compact), so the compacted position of
// each value is found by a two-pointer merge — O(nnz + r) per column
// instead of the O(nnz·log r) of a per-value binary search.
func packColumnInto(entries []bitmat.PackedEntry, cr batchColumn, nonzero []int64, lo uint64, maskBits int) ([]bitmat.PackedEntry, error) {
	prevWord := -1
	var cur uint64
	ci := 0
	for _, v := range cr.vals {
		row := int64(v - lo)
		for ci < len(nonzero) && nonzero[ci] < row {
			ci++
		}
		if ci >= len(nonzero) || nonzero[ci] != row {
			return nil, fmt.Errorf("core: row %d missing from filter", row)
		}
		w := ci / maskBits
		if w != prevWord {
			if prevWord >= 0 {
				entries = append(entries, bitmat.PackedEntry{WordRow: prevWord, Col: cr.col, Word: cur})
			}
			prevWord = w
			cur = 0
		}
		cur |= 1 << uint(ci%maskBits)
	}
	if prevWord >= 0 {
		entries = append(entries, bitmat.PackedEntry{WordRow: prevWord, Col: cr.col, Word: cur})
	}
	return entries, nil
}

// wordRowsFor returns ceil(active / maskBits), the packed height of a batch.
func wordRowsFor(active, maskBits int) int {
	return bitutil.WordsFor(active, maskBits)
}
