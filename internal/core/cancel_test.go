package core

import (
	"context"
	"errors"
	"math/rand"
	gort "runtime"
	"testing"
	"time"

	"genomeatscale/internal/tile"
)

// cancelOnSampleDataset wraps a dataset and fires cancel the moment sample
// `trigger` is read for the `hits`-th time, placing the cancellation right
// before the pack stage of the batch being sliced — the mid-pack scenario.
type cancelOnSampleDataset struct {
	*InMemoryDataset
	trigger int
	hits    int
	seen    int
	cancel  context.CancelFunc
}

func (d *cancelOnSampleDataset) Sample(i int) []uint64 {
	if i == d.trigger {
		d.seen++
		if d.seen == d.hits {
			d.cancel()
		}
	}
	return d.InMemoryDataset.Sample(i)
}

// blockOnSampleDataset blocks the rank reading sample `trigger` until the
// context is cancelled, while every other rank runs ahead to the next BSP
// barrier — the mid-superstep scenario: most ranks are parked in Sync when
// the cancellation lands.
type blockOnSampleDataset struct {
	*InMemoryDataset
	trigger int
	ctx     context.Context
}

func (d *blockOnSampleDataset) Sample(i int) []uint64 {
	if i == d.trigger {
		<-d.ctx.Done()
	}
	return d.InMemoryDataset.Sample(i)
}

// checkCancelled runs fn (which must return promptly once cancelled),
// asserts the error is exactly the context error, bounds the wall time,
// and polls that no goroutines leaked.
func checkCancelled(t *testing.T, fn func() error) {
	t.Helper()
	before := gort.NumGoroutine()
	start := time.Now()
	err := fn()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for gort.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, gort.NumGoroutine())
		}
		gort.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCancelMidPackSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := randomDataset(rng, 24, 2000, 0.05)
	for _, workers := range []int{1, 4} {
		opts := DefaultOptions()
		opts.BatchCount = 2
		opts.Workers = workers
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		// The last sample of the first batch slice trips the cancel, so the
		// pack stage of batch 0 starts with a dead context and must abandon
		// the run there.
		ds := &cancelOnSampleDataset{InMemoryDataset: base, trigger: 23, hits: 2, cancel: cancel}
		checkCancelled(t, func() error {
			res, err := e.Similarity(ctx, ds)
			if res != nil {
				t.Error("cancelled run must not return a result")
			}
			return err
		})
		cancel()
	}
}

func TestCancelMidPackDistributed(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	base := randomDataset(rng, 24, 2000, 0.05)
	opts := DefaultOptions()
	opts.Procs = 4
	opts.Workers = 1
	opts.BatchCount = 2
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ds := &cancelOnSampleDataset{InMemoryDataset: base, trigger: 23, hits: 2, cancel: cancel}
	checkCancelled(t, func() error {
		_, err := e.Similarity(ctx, ds)
		return err
	})
}

func TestCancelMidSuperstepDistributed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := randomDataset(rng, 16, 800, 0.06)
	for _, streaming := range []bool{false, true} {
		opts := DefaultOptions()
		opts.Procs = 4
		opts.Workers = 1
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		// Rank owning sample 1 blocks inside its batch read; the other ranks
		// race ahead to the filter exchange and park at the Sync barrier.
		// The timer then cancels mid-superstep: the parked ranks must be
		// woken and unwound, the blocked rank released, and ctx.Err()
		// surfaced without leaking any rank goroutine.
		ds := &blockOnSampleDataset{InMemoryDataset: base, trigger: 1, ctx: ctx}
		timer := time.AfterFunc(30*time.Millisecond, cancel)
		checkCancelled(t, func() error {
			var err error
			if streaming {
				_, err = e.Stream(ctx, ds, tile.Discard)
			} else {
				_, err = e.Similarity(ctx, ds)
			}
			return err
		})
		timer.Stop()
		cancel()
	}
}

func TestCancelBeforeRun(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ds := randomDataset(rng, 8, 300, 0.05)
	for _, procs := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Procs = procs
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := e.Similarity(ctx, ds); !errors.Is(err, context.Canceled) {
			t.Fatalf("procs=%d: want context.Canceled, got %v", procs, err)
		}
	}
}

func TestNilContextRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	ds := randomDataset(rng, 6, 300, 0.05)
	e, err := NewEngine(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1012 nil ctx is documented to mean context.Background
	res, err := e.Similarity(nil, ds) //nolint:staticcheck
	if err != nil {
		t.Fatal(err)
	}
	if res.S == nil {
		t.Error("nil ctx run must still gather")
	}
}
