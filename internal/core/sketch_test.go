package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"genomeatscale/internal/costmodel"
	"genomeatscale/internal/sparse"
	"genomeatscale/internal/tile"
)

// clusteredSamples builds a corpus of near-duplicate clusters over a 2^40
// attribute universe: every cluster shares a base attribute set and each
// member adds its own random extras, so within-cluster pairs have exact
// Jaccard ≈ base/(base + 2·extra) ≈ withinJ while cross-cluster pairs are
// (with overwhelming probability at this universe size) disjoint. This is
// the thresholded workload the prescreening tier targets: few pairs above
// the threshold, a large majority far below it.
func clusteredSamples(rng *rand.Rand, clusters, perCluster, baseSize int, withinJ float64) ([][]uint64, uint64) {
	const m = uint64(1) << 40
	extra := int(math.Round(float64(baseSize) * (1 - withinJ) / (2 * withinJ)))
	samples := make([][]uint64, 0, clusters*perCluster)
	for c := 0; c < clusters; c++ {
		base := make([]uint64, baseSize)
		for i := range base {
			base[i] = uint64(rng.Int63()) % m
		}
		for s := 0; s < perCluster; s++ {
			sample := append([]uint64(nil), base...)
			for k := 0; k < extra; k++ {
				sample = append(sample, uint64(rng.Int63())%m)
			}
			samples = append(samples, sample)
		}
	}
	return samples, m
}

// pairsAbove post-hoc filters a full similarity matrix: the upper-triangle
// pairs (i < j) with S ≥ tau — the reference the prescreened survivor set
// is scored against.
func pairsAbove(s *sparse.Dense[float64], tau float64) map[[2]int]float64 {
	out := make(map[[2]int]float64)
	n := s.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if v := s.At(i, j); v >= tau {
				out[[2]int{i, j}] = v
			}
		}
	}
	return out
}

// TestSketchRecallAndScreening is the acceptance property of the tier: on
// a clustered corpus thresholded at τ = 0.8 with the default slack, the
// prescreened run must recover at least 99% of the pairs a post-hoc filter
// of the full exact matrix finds (here: all of them), while screening out
// more than half of all pairs before the exact kernel.
func TestSketchRecallAndScreening(t *testing.T) {
	const tau = 0.8
	rng := rand.New(rand.NewSource(404))
	samples, m := clusteredSamples(rng, 8, 5, 400, 0.85)
	ds := MustInMemoryDataset(nil, samples, m)
	n := len(samples)
	ctx := context.Background()

	exactOpts := DefaultOptions()
	exact, err := ComputeSequential(ds, exactOpts)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := pairsAbove(exact.S, tau)
	if len(wantPairs) == 0 {
		t.Fatal("degenerate corpus: no pairs above the threshold")
	}

	skOpts := DefaultOptions()
	skOpts.Sketch = SketchOptions{Threshold: tau}
	res, err := ComputeSequential(ds, skOpts)
	if err != nil {
		t.Fatal(err)
	}
	gotPairs := pairsAbove(res.S, tau)
	hit := 0
	for p := range wantPairs {
		if _, ok := gotPairs[p]; ok {
			hit++
		}
	}
	recall := float64(hit) / float64(len(wantPairs))
	if recall < 0.99 {
		t.Errorf("prescreen recall %.4f (%d of %d pairs), want ≥ 0.99", recall, hit, len(wantPairs))
	}
	for p, v := range gotPairs {
		if want, ok := wantPairs[p]; !ok {
			t.Errorf("pair %v above τ only in the prescreened run (S=%v)", p, v)
		} else if v != want {
			t.Errorf("pair %v: prescreened S=%v, exact S=%v (must be byte-identical)", p, v, want)
		}
	}

	st := res.Stats.Sketch
	if st == nil {
		t.Fatal("prescreened run recorded no SketchStats")
	}
	if want := int64(n) * int64(n+1) / 2; st.PairsScreened != want {
		t.Errorf("PairsScreened = %d, want %d", st.PairsScreened, want)
	}
	if st.PairsSurvived*2 >= st.PairsScreened {
		t.Errorf("screened out %d of %d pairs, want more than half",
			st.PairsScreened-st.PairsSurvived, st.PairsScreened)
	}
	if want := costmodel.SketchSizeFor(tau, DefaultSketchSlack); st.Size != want {
		t.Errorf("auto-derived sketch size %d, want %d", st.Size, want)
	}
	if st.Threshold != tau || st.Slack != DefaultSketchSlack {
		t.Errorf("gate parameters not recorded: threshold %v slack %v", st.Threshold, st.Slack)
	}
	if st.EstimatedRecall < 0.99 || st.EstimatedRecall > 1 {
		t.Errorf("modelled recall %v out of range for k=%d", st.EstimatedRecall, st.Size)
	}
	if exact.Stats.Sketch != nil {
		t.Error("non-prescreened run must carry no SketchStats")
	}

	// The same run through a Threshold sink: the streamed reduction must
	// retain exactly the surviving pairs with identical similarities.
	e, err := NewEngine(skOpts)
	if err != nil {
		t.Fatal(err)
	}
	sink := tile.NewThreshold(tau)
	if _, err := e.Stream(ctx, ds, sink); err != nil {
		t.Fatal(err)
	}
	streamed := sink.Pairs()
	if len(streamed) != len(gotPairs) {
		t.Fatalf("Threshold sink retained %d pairs, gathered run has %d", len(streamed), len(gotPairs))
	}
	for _, p := range streamed {
		if v, ok := gotPairs[[2]int{p.I, p.J}]; !ok || v != p.Similarity {
			t.Errorf("streamed pair (%d,%d) S=%v disagrees with gathered run", p.I, p.J, p.Similarity)
		}
	}
}

// TestSketchEquivalenceGrid adds the Sketch ∈ {off, on} dimension to the
// equivalence grid: across batch counts, worker counts, storage layouts
// and explicit/auto sketch sizes, every pair that survives prescreening
// must be byte-identical (exact int64/float64 equality) to the
// non-prescreened serial baseline, and every pruned pair must read B = 0,
// S = 0, D = 1 with an exact similarity below the threshold (no lost
// pairs on this wide-margin corpus).
func TestSketchEquivalenceGrid(t *testing.T) {
	const tau = 0.8
	rng := rand.New(rand.NewSource(405))
	samples, m := clusteredSamples(rng, 5, 3, 200, 0.85)
	// Adversarial extras: empty samples (prunable via the J(∅,·) = 0
	// convention) and a singleton with no partner above the gate.
	samples = append(samples, nil, []uint64{1, 2, 3}, nil)
	ds := MustInMemoryDataset(nil, samples, m)
	n := len(samples)

	offOpts := DefaultOptions()
	offOpts.Workers = 1
	offOpts.DenseThreshold = -1
	off, err := ComputeSequential(ds, offOpts)
	if err != nil {
		t.Fatal(err)
	}

	for _, batches := range []int{1, 3, 7} {
		for _, workers := range []int{1, 4} {
			for _, dt := range []int{-1, 0, 1} {
				for _, size := range []int{0, 64} {
					opts := DefaultOptions()
					opts.BatchCount = batches
					opts.Workers = workers
					opts.DenseThreshold = dt
					opts.TileRows = 3 // several row bands even at this n
					opts.Sketch = SketchOptions{Size: size, Threshold: tau}
					if size > 0 {
						opts.SetExplicit(FieldSketchSize)
					}
					on, err := ComputeSequential(ds, opts)
					if err != nil {
						t.Fatal(err)
					}
					if got := on.Stats.Sketch.Size; size > 0 && got != size {
						t.Fatalf("explicit sketch size %d resolved to %d", size, got)
					}
					for i := 0; i < n; i++ {
						if on.Cardinalities[i] != off.Cardinalities[i] {
							t.Fatalf("l=%d w=%d dt=%d k=%d: cardinality of sample %d drifted under prescreening",
								batches, workers, dt, size, i)
						}
						for j := 0; j < n; j++ {
							sOn, sOff := on.S.At(i, j), off.S.At(i, j)
							if sOn != 0 {
								if sOn != sOff || on.B.At(i, j) != off.B.At(i, j) || on.D.At(i, j) != off.D.At(i, j) {
									t.Fatalf("l=%d w=%d dt=%d k=%d: surviving pair (%d,%d) not byte-identical: S %v vs %v",
										batches, workers, dt, size, i, j, sOn, sOff)
								}
								continue
							}
							// Pruned (or genuinely zero): the documented
							// B = 0, S = 0, D = 1 convention, and no pair at
							// or above τ may be lost.
							if on.B.At(i, j) != 0 || on.D.At(i, j) != 1 {
								t.Fatalf("l=%d w=%d dt=%d k=%d: pruned pair (%d,%d) has B=%d D=%v, want 0 and 1",
									batches, workers, dt, size, i, j, on.B.At(i, j), on.D.At(i, j))
							}
							if sOff >= tau {
								t.Fatalf("l=%d w=%d dt=%d k=%d: pair (%d,%d) with exact S=%v lost to prescreening",
									batches, workers, dt, size, i, j, sOff)
							}
						}
					}
				}
			}
		}
	}
}

// TestSketchEmptySamples: with prescreening on, empty samples are pruned
// everywhere — including their own diagonal — and the result is still
// byte-identical to the non-prescreened run, because the J(∅, ·) = 0
// convention makes both tiers agree that empty samples match nothing.
func TestSketchEmptySamples(t *testing.T) {
	ds := MustInMemoryDataset(nil, [][]uint64{{1, 2, 3}, {1, 2, 3}, nil, nil}, 10)
	opts := DefaultOptions()
	opts.Sketch = SketchOptions{Threshold: 0.5}
	on, err := ComputeSequential(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	off, err := ComputeSequential(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	intEq := func(a, b int64) bool { return a == b }
	floatEq := func(a, b float64) bool { return a == b }
	if !sparse.Equal(on.B, off.B, intEq) || !sparse.Equal(on.S, off.S, floatEq) || !sparse.Equal(on.D, off.D, floatEq) {
		t.Fatal("prescreened result differs from exact run on the empty-sample corpus")
	}
	if on.S.At(0, 1) != 1 {
		t.Errorf("identical samples: S = %v, want 1", on.S.At(0, 1))
	}
	for _, ij := range [][2]int{{2, 2}, {3, 3}, {2, 3}, {0, 2}} {
		if v := on.S.At(ij[0], ij[1]); v != 0 {
			t.Errorf("empty-sample pair %v: S = %v, want 0", ij, v)
		}
	}
}

// TestSketchValidation pins the configuration guards: prescreening is
// sequential-only and its gate parameters must be sane; the legacy
// distributed entry point refuses it outright.
func TestSketchValidation(t *testing.T) {
	ds := MustInMemoryDataset(nil, [][]uint64{{1}, {2}}, 10)
	cases := []struct {
		name string
		opts func(*Options)
	}{
		{"procs", func(o *Options) { o.Procs = 4; o.Sketch = SketchOptions{Threshold: 0.8} }},
		{"negative size", func(o *Options) { o.Sketch = SketchOptions{Size: -1, Threshold: 0.8} }},
		{"no threshold", func(o *Options) { o.Sketch = SketchOptions{Size: 64} }},
		{"threshold above one", func(o *Options) { o.Sketch = SketchOptions{Threshold: 1.5} }},
		{"negative threshold", func(o *Options) { o.Sketch = SketchOptions{Threshold: -1} }},
		{"slack above one", func(o *Options) { o.Sketch = SketchOptions{Threshold: 0.8, Slack: 2} }},
	}
	for _, tc := range cases {
		opts := DefaultOptions()
		tc.opts(&opts)
		if _, err := NewEngine(opts); err == nil {
			t.Errorf("%s: NewEngine accepted invalid sketch options %+v", tc.name, opts.Sketch)
		}
	}

	// The legacy Compute entry point always runs the BSP pipeline, which
	// has no prescreening tier — even at Procs = 1 it must refuse rather
	// than silently ignore the option.
	opts := DefaultOptions()
	opts.Sketch = SketchOptions{Threshold: 0.8}
	if _, err := Compute(ds, opts); err == nil || !strings.Contains(err.Error(), "sequential") {
		t.Errorf("legacy Compute with sketch options: err = %v, want sequential-path refusal", err)
	}
}

// TestSketchAutotune: under Autotune the planner sizes the sketch (pinning
// an explicit size), forces the sequential path, records both reports, and
// — the tuning invariant — never changes the result.
func TestSketchAutotune(t *testing.T) {
	const tau = 0.8
	rng := rand.New(rand.NewSource(406))
	samples, m := clusteredSamples(rng, 4, 3, 200, 0.85)
	ds := MustInMemoryDataset(nil, samples, m)

	base := DefaultOptions()
	base.Sketch = SketchOptions{Threshold: tau}
	want, err := ComputeSequential(ds, base)
	if err != nil {
		t.Fatal(err)
	}

	auto := base
	auto.Autotune = true
	res, err := ComputeSequential(ds, auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tuning == nil || res.Stats.Sketch == nil {
		t.Fatal("autotuned prescreened run must record both a TuningReport and SketchStats")
	}
	if res.Stats.Tuning.Plan.Procs != 1 {
		t.Errorf("tuner chose Procs=%d for a prescreened run, want 1", res.Stats.Tuning.Plan.Procs)
	}
	if want := costmodel.SketchSizeFor(tau, DefaultSketchSlack); res.Stats.Sketch.Size != want {
		t.Errorf("tuned sketch size %d, want derived %d", res.Stats.Sketch.Size, want)
	}
	intEq := func(a, b int64) bool { return a == b }
	floatEq := func(a, b float64) bool { return a == b }
	if !sparse.Equal(want.B, res.B, intEq) || !sparse.Equal(want.S, res.S, floatEq) {
		t.Error("autotuning changed the prescreened result")
	}

	pinned := auto
	pinned.Sketch.Size = 128
	pinned.SetExplicit(FieldSketchSize)
	res2, err := ComputeSequential(ds, pinned)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Sketch.Size != 128 {
		t.Errorf("pinned sketch size resolved to %d, want 128", res2.Stats.Sketch.Size)
	}
	found := false
	for _, p := range res2.Stats.Tuning.Pinned {
		if p == "sketchsize" {
			found = true
		}
	}
	if !found {
		t.Errorf("explicit sketch size not reported as pinned: %v", res2.Stats.Tuning.Pinned)
	}
}

// TestSketchTopKSink: the TopK reduction composes with prescreening — on a
// corpus whose top pairs all survive the gate, the retained pairs are
// byte-identical to a non-prescreened TopK run.
func TestSketchTopKSink(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	samples, m := clusteredSamples(rng, 4, 4, 200, 0.85)
	ds := MustInMemoryDataset(nil, samples, m)
	ctx := context.Background()
	const k = 10

	run := func(opts Options) []tile.Pair {
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		sink := tile.NewTopK(k)
		if _, err := e.Stream(ctx, ds, sink); err != nil {
			t.Fatal(err)
		}
		return sink.Pairs()
	}

	off := run(DefaultOptions())
	onOpts := DefaultOptions()
	onOpts.Sketch = SketchOptions{Threshold: 0.8}
	on := run(onOpts)
	if len(on) != len(off) {
		t.Fatalf("prescreened TopK retained %d pairs, want %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Errorf("TopK pair %d differs under prescreening: %+v vs %+v", i, on[i], off[i])
		}
	}
}
