package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/costmodel"
	"genomeatscale/internal/minhash"
	"genomeatscale/internal/par"
	"genomeatscale/internal/sparse"
)

// This file is the MinHash prescreening tier (Options.Sketch): before the
// exact pipeline runs, cheap bottom-k sketches of every sample estimate
// all pairwise Jaccard similarities, and only pairs whose estimate
// reaches Threshold − Slack are handed to the exact tiled Gram kernel.
// The tier reuses the batch stage's scanning discipline — the sketch pass
// walks the same batch ranges in the same ascending column order the
// exact tier will, with the same prefetch hints, and minhash.Builder
// folds each sample's in-range values incrementally (bottom-k sketches of
// disjoint ranges merge exactly), so out-of-core corpora sketch without
// materialising whole samples. Pruned pairs are skipped at the tile level
// inside the Gram kernel (bitmat.PairMask) and reported as B = 0, S = 0,
// D = 1; surviving pairs are byte-identical to a non-prescreened run
// because the same kernel computes the same intersection counts and the
// same Eq. 2 scalar derives them against the exact cardinalities, which
// are still accumulated for every sample.

// sketchConfig is the resolved prescreen configuration of one run.
type sketchConfig struct {
	enabled   bool
	size      int
	threshold float64
	slack     float64
}

// resolveSketch resolves Options.Sketch into concrete gate parameters:
// the default slack is filled in and an unset size is derived from the
// threshold/slack pair (costmodel.SketchSizeFor — the same formula the
// autotuner uses, so autotuned and static runs agree unless the tuner was
// given an explicitly pinned size).
func resolveSketch(o Options) sketchConfig {
	if !o.Sketch.Enabled() {
		return sketchConfig{}
	}
	sc := sketchConfig{
		enabled:   true,
		size:      o.Sketch.Size,
		threshold: o.Sketch.Threshold,
		slack:     o.Sketch.Slack,
	}
	if sc.slack == 0 {
		sc.slack = DefaultSketchSlack
	}
	if sc.size <= 0 {
		sc.size = costmodel.SketchSizeFor(sc.threshold, sc.slack)
	}
	return sc
}

// sketchRecall is the modelled worst-case recall of the gate: the normal
// approximation of the bottom-k estimator at the decision boundary gives
// a pair with exact similarity τ the survival probability
// Φ(s·√(k/(τ(1−τ)))).
func sketchRecall(sc sketchConfig) float64 {
	variance := sc.threshold * (1 - sc.threshold)
	if variance <= 0 {
		return 1
	}
	z := sc.slack * math.Sqrt(float64(sc.size)/variance)
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// prescreen runs the sketch tier: it builds the per-sample sketches batch
// range by batch range, evaluates the pairwise estimate gate on the
// shared worker pool, and returns the survivor mask together with the
// tier's statistics. Sample load failures propagate as run errors.
func prescreen(ctx context.Context, v2 DatasetV2, n int, m uint64, cfg runConfig) (*bitmat.PairMask, *SketchStats, error) {
	sc := cfg.sketch
	opts := cfg.opts
	start := time.Now()

	builders := make([]*minhash.Builder, n)
	for j := range builders {
		b, err := minhash.NewBuilder(sc.size)
		if err != nil {
			return nil, nil, fmt.Errorf("core: sketch prescreen: %w", err)
		}
		builders[j] = b
	}

	// Sketch pass: the same batch ranges, column order and prefetch hints
	// as the exact tier's scans, so memory-bounded loaders see one more
	// identical scan rather than a second ad-hoc access pattern. Builder j
	// is only touched by iteration j, so the per-batch column loop can run
	// on the worker pool.
	errs := make([]error, n)
	for l := 0; l < opts.BatchCount; l++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		lo, hi := batchBounds(m, opts.BatchCount, l)
		if lo >= hi {
			continue
		}
		err := par.ForEachCtx(ctx, cfg.seqWorkers, n, func(j int) {
			sample, err := v2.SampleErr(j)
			if err != nil {
				errs[j] = fmt.Errorf("core: sketch prescreen: loading sample %d (%s): %w", j, v2.SampleName(j), err)
				return
			}
			builders[j].Add(rangeSlice(sample, lo, hi))
		})
		if err != nil {
			return nil, nil, err
		}
		for _, e := range errs {
			if e != nil {
				return nil, nil, e
			}
		}
		if l+1 < opts.BatchCount {
			prefetchNextScan(v2, n)
		}
	}

	sketches := make([]minhash.Sketch, n)
	for j, b := range builders {
		sketches[j] = b.Sketch()
	}

	// Estimate gate: row i fills only its own mask row (SetHalf), so the
	// triangle parallelises race-free; one mirror pass completes the
	// symmetric mask. The diagonal goes through the estimator like any
	// pair — a non-empty sample estimates 1 against itself and survives,
	// an empty one estimates 0 and is pruned, matching the exact kernel's
	// J(∅, ∅) = 0 convention.
	mask := bitmat.NewPairMask(n)
	gate := sc.threshold - sc.slack
	err := par.ForEachCtx(ctx, cfg.seqWorkers, n, func(i int) {
		for j := i; j < n; j++ {
			// EstimateAtLeast decides EstimateJaccard ≥ gate with an
			// early-exit scan — identical decisions, but dissimilar pairs
			// (the bulk of a thresholded corpus) resolve after a short
			// prefix of the sketches.
			pass, err := minhash.EstimateAtLeast(sketches[i], sketches[j], gate)
			if err != nil {
				errs[i] = fmt.Errorf("core: sketch prescreen: %w", err)
				return
			}
			if pass {
				mask.SetHalf(i, j)
			}
		}
	})
	if err != nil {
		return nil, nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, nil, e
		}
	}
	mask.MirrorUpper()

	stats := &SketchStats{
		Size:            sc.size,
		Threshold:       sc.threshold,
		Slack:           sc.slack,
		PairsScreened:   int64(n) * int64(n+1) / 2,
		PairsSurvived:   mask.CountUpper(),
		EstimatedRecall: sketchRecall(sc),
		SketchSeconds:   time.Since(start).Seconds(),
	}
	return mask, stats, nil
}

// maskBatchColumns restricts one batch's columns to the prescreen
// candidates — samples with at least one surviving partner besides
// themselves — and rebuilds the filter-row list from the survivors, so
// the packed batch and its empty-row filter (Eq. 5) only carry rows the
// exact tier can still use. It runs after the cardinality accumulation,
// which always sees every column: â stays exact for pruned samples too.
//
// The diagonal does not keep a column alive: a sample whose only
// surviving pair is itself is dropped here and its B_jj restored from the
// exact cardinality afterwards (restoreIsolatedDiagonals), because the
// Gram kernel would compute exactly that value at much greater cost. On
// thresholded corpora where most samples have no near-duplicate this is
// where the prescreening tier's packing/compaction savings come from.
func maskBatchColumns(columns []batchColumn, mask *bitmat.PairMask, lo uint64) ([]batchColumn, []int64) {
	kept := columns[:0]
	var rows []int64
	for _, c := range columns {
		if !mask.AnyPartnerOffDiag(c.col) {
			continue
		}
		kept = append(kept, c)
		for _, v := range c.vals {
			rows = append(rows, int64(v-lo))
		}
	}
	return kept, rows
}

// restoreIsolatedDiagonals fills in B_jj for the samples maskBatchColumns
// dropped: their only surviving pair is their own diagonal, their columns
// were never packed, so the Gram accumulator holds 0 there. The true
// value is the sample's exact cardinality — a column's intersection with
// itself — which is byte-identical (the same int64) to what the kernel
// computes for packed columns, so downstream finalization (S_jj = 1 for
// non-empty samples) cannot tell the difference. Pruned empty samples
// keep B_jj = 0: their diagonal is not in the mask.
func restoreIsolatedDiagonals(b *sparse.Dense[int64], mask *bitmat.PairMask, cards []int64) {
	for j, c := range cards {
		if mask.Pair(j, j) && !mask.AnyPartnerOffDiag(j) {
			b.Set(j, j, c)
		}
	}
}
