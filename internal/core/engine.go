package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/bsp"
	"genomeatscale/internal/costmodel"
	"genomeatscale/internal/dist"
	"genomeatscale/internal/grid"
	"genomeatscale/internal/par"
	"genomeatscale/internal/sparse"
	"genomeatscale/internal/tile"
)

// Tile is one finalized block of the result matrices, the unit of
// streaming output (see internal/tile).
type Tile = tile.Tile

// TileSink consumes finalized tiles during an Engine.Stream run.
type TileSink = tile.Sink

// Engine is a reusable, validated SimilarityAtScale configuration. The
// per-run fixed decisions — option validation, the √(p/c) × √(p/c) × c
// processor-grid layout, and the shared-memory worker-pool sizing for both
// execution paths — are made once at construction and amortised across
// calls; Similarity and Stream are then safe to invoke repeatedly and
// concurrently from multiple goroutines. With Options.Autotune those
// decisions move to run time — they depend on the dataset — and each run
// resolves its own configuration (configFor) against the host profile
// probed once at construction; the engine stays safe for concurrent use.
//
// Both entry points honour context cancellation: the batch loop, the
// per-column pack stage and the BSP superstep barriers all observe ctx, so
// a cancelled run returns ctx.Err() promptly with every worker and rank
// goroutine joined.
type Engine struct {
	opts   Options
	static runConfig         // resolved per-run decisions when Autotune is off
	mach   costmodel.Machine // host profile driving run-time tuning (Autotune)

	// arenas is the free list of batch-buffer arenas: each run checks one
	// out (getArena) and returns it at the end, so concurrent runs never
	// share per-worker tile slots while steady-state batch loops still
	// reuse one run's buffers in the next.
	mu     sync.Mutex
	arenas []*bitmat.Arena
}

// runConfig is the resolved configuration of one run: the validated
// options plus the decisions derived from them once per run (grid layout,
// worker-pool sizes, streaming tile height) and, for autotuned runs, the
// report recording how the configuration was chosen.
type runConfig struct {
	opts        Options
	grid        grid.Grid
	seqWorkers  int // resolved pool size of the sequential path
	distWorkers int // resolved per-rank pool size of the distributed path
	tileRows    int // resolved sequential streaming tile height
	sketch      sketchConfig
	tuning      *TuningReport
}

// resolveConfig derives the per-run decisions from a validated Options.
func resolveConfig(opts Options) runConfig {
	cfg := runConfig{
		opts:       opts,
		grid:       grid.MustChoose(opts.Procs, opts.Replication),
		seqWorkers: par.Resolve(opts.Workers),
		tileRows:   opts.TileRows,
	}
	// All Procs virtual ranks share this machine, so the default Workers: 0
	// resolves to a fair share of the CPUs per rank rather than a full
	// GOMAXPROCS pool per rank (which would oversubscribe the machine
	// Procs-fold). Over a multi-process Transport this process runs a
	// single rank, so that rank gets the whole machine. An explicit
	// Workers value is taken as given.
	cfg.distWorkers = opts.Workers
	if cfg.distWorkers == 0 {
		if opts.Transport != nil {
			cfg.distWorkers = runtime.GOMAXPROCS(0)
		} else if cfg.distWorkers = runtime.GOMAXPROCS(0) / opts.Procs; cfg.distWorkers < 1 {
			cfg.distWorkers = 1
		}
	}
	if cfg.tileRows == 0 {
		cfg.tileRows = DefaultTileRows
	}
	cfg.sketch = resolveSketch(opts)
	return cfg
}

// NewEngine validates opts and builds a reusable engine for it. With
// Options.Autotune the host profile (CPU count, streaming-bandwidth probe,
// available memory — costmodel.Detect) is captured here, once, so repeated
// runs pay only the cheap per-dataset statistics sampling.
func NewEngine(opts Options) (*Engine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts, static: resolveConfig(opts)}
	if opts.Autotune {
		e.mach = costmodel.Detect()
	}
	return e, nil
}

// Options returns the configuration the engine was built with.
func (e *Engine) Options() Options { return e.opts }

// getArena checks a batch-buffer arena out of the engine's free list,
// growing the list on first use or under run concurrency.
func (e *Engine) getArena() *bitmat.Arena {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.arenas); n > 0 {
		a := e.arenas[n-1]
		e.arenas = e.arenas[:n-1]
		return a
	}
	return bitmat.NewArena()
}

func (e *Engine) putArena(a *bitmat.Arena) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.arenas = append(e.arenas, a)
}

// Similarity runs the pipeline with the legacy gathered-output semantics:
// the full B, S and D matrices are assembled (at rank 0 for the
// distributed path) unless Options.SkipGather is set. With Procs == 1 it
// uses the sequential algebraic pipeline; otherwise the fully distributed
// pipeline over the in-process BSP runtime.
func (e *Engine) Similarity(ctx context.Context, ds Dataset) (*Result, error) {
	cfg, err := e.configFor(ds)
	if err != nil {
		return nil, err
	}
	if cfg.opts.Procs > 1 || cfg.opts.Transport != nil {
		return e.computeDist(ctx, ds, nil, cfg)
	}
	return e.computeSeq(ctx, ds, nil, cfg)
}

// Stream runs the pipeline and delivers the result to sink as a sequence
// of finalized tiles instead of assembling the n×n matrices: the returned
// Result carries cardinalities and run statistics (including the streaming
// counters) but nil B, S and D. The sequential path emits row bands of
// Options.TileRows rows; the distributed path emits each processor-grid
// result block as soon as rank 0 receives it. Sink calls happen on a
// single goroutine in deterministic (RowLo, ColLo) order; a sink error
// aborts the run and is returned.
func (e *Engine) Stream(ctx context.Context, ds Dataset, sink TileSink) (*Result, error) {
	if sink == nil {
		return nil, fmt.Errorf("core: Stream requires a sink (use tile.Discard to drop the output)")
	}
	cfg, err := e.configFor(ds)
	if err != nil {
		return nil, err
	}
	if cfg.opts.Procs > 1 || cfg.opts.Transport != nil {
		return e.computeDist(ctx, ds, sink, cfg)
	}
	return e.computeSeq(ctx, ds, sink, cfg)
}

// prefetchNextScan begins re-loading the samples the next batch's scan
// will read, starting from sample 0, while the current batch's Gram
// accumulation computes — the batch-t+1-loads-under-batch-t-compute
// overlap of the out-of-core design. It uses the non-blocking
// RangePrefetcher hint, so the engine spawns no goroutine of its own and
// nothing outlives the run on its behalf; datasets without the hint (all
// in-memory ones) have nothing to overlap. Memory-bounded loaders clamp
// the hint to their resident budget, and a failed background load is
// cached by the dataset and re-surfaces from SampleErr when the next scan
// reaches the sample, so no failure is lost.
func prefetchNextScan(v2 DatasetV2, n int) {
	if rp, ok := v2.(RangePrefetcher); ok {
		rp.PrefetchRange(0, n)
	}
}

// captureIngest copies the dataset's ingestion counters (loads, evictions,
// peak resident samples) into the run statistics when the dataset exposes
// them.
func captureIngest(ds Dataset, stats *RunStats) {
	if is, ok := ds.(IngestStatser); ok {
		s := is.IngestStats()
		stats.Ingest = &s
	}
}

// sinkRunner funnels every sink interaction through one place so the run
// statistics (tiles emitted, peak tile words, time spent in the consumer)
// are recorded uniformly on both execution paths.
type sinkRunner struct {
	sink  TileSink
	stats *RunStats
}

func (sr *sinkRunner) start(n int, names []string) error {
	t0 := time.Now()
	err := tile.Start(sr.sink, n, names)
	sr.stats.SinkSeconds += time.Since(t0).Seconds()
	return err
}

func (sr *sinkRunner) emit(t *Tile) error {
	t0 := time.Now()
	err := sr.sink.Emit(t)
	sr.stats.SinkSeconds += time.Since(t0).Seconds()
	if err != nil {
		return err
	}
	sr.stats.TilesEmitted++
	if w := t.Words(); w > sr.stats.PeakTileWords {
		sr.stats.PeakTileWords = w
	}
	return nil
}

func (sr *sinkRunner) flush() error {
	t0 := time.Now()
	err := tile.Flush(sr.sink)
	sr.stats.SinkSeconds += time.Since(t0).Seconds()
	return err
}

// computeSeq is the single-process pipeline: the indicator matrix is
// processed in BatchCount row batches; each batch filters out empty rows,
// compresses the surviving rows into MaskBits-wide masks, and accumulates
// its Gram contribution into B with the popcount kernel (Listing 1 of the
// paper, without the distribution). It runs the same batch stage
// (sliceBatch → filter → packBatch) as the distributed path — every sample
// is visible, so the filter needs no exchange. With sink == nil the
// output is finalized into full matrices (legacy semantics); otherwise it
// is derived band by band and streamed.
func (e *Engine) computeSeq(ctx context.Context, ds Dataset, sink TileSink, cfg runConfig) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validateDataset(ds); err != nil {
		return nil, err
	}
	v2 := AsV2(ds)
	opts := cfg.opts
	start := time.Now()
	n := ds.NumSamples()
	m := ds.NumAttributes()
	workers := cfg.seqWorkers

	res := &Result{
		N:             n,
		Names:         sampleNames(ds),
		Cardinalities: make([]int64, n),
	}
	res.Stats.Tuning = cfg.tuning
	b := sparse.MustDense[int64](n, n)

	allCols := make([]int, n)
	for i := 0; i < n; i++ {
		allCols[i] = i
	}

	// MinHash prescreening tier: sketch every sample, estimate every pair,
	// and gate the exact tier on the survivor mask. The exact tier then
	// re-scans from sample 0, so hint the restart like any batch boundary.
	var mask *bitmat.PairMask
	if cfg.sketch.enabled {
		var sstats *SketchStats
		var err error
		mask, sstats, err = prescreen(ctx, v2, n, m, cfg)
		if err != nil {
			return nil, err
		}
		res.Stats.Sketch = sstats
		prefetchNextScan(v2, n)
	}

	// The batch loop's transient buffers — the packed matrix's streams and
	// slabs, the Gram tile list and per-worker tile accumulators, the
	// coordinate-entry scratch — cycle through one arena checked out for
	// this run, so the steady state of a multi-batch run allocates ~nothing.
	arena := e.getArena()
	defer e.putArena(arena)
	var entriesBuf []bitmat.PackedEntry

	for l := 0; l < opts.BatchCount; l++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		batchStart := time.Now()
		lo, hi := batchBounds(m, opts.BatchCount, l)

		// Shared batch stage: slice, filter (Eq. 5), compact and pack
		// (Eq. 6, Section III-B). A single process observes every write, so
		// dist.Compact of the local rows is the whole filter vector.
		columns, localRows, err := sliceBatch(v2, allCols, lo, hi)
		if err != nil {
			return nil, fmt.Errorf("batch %d: %w", l, err)
		}
		// The batch ranges partition [0, m), so summing each sample's
		// in-range value counts over all batches yields the exact
		// cardinalities (â, Eq. 4) without an up-front pass that would load
		// every sample before the first batch — out-of-core datasets stay
		// memory-bounded.
		for _, c := range columns {
			res.Cardinalities[c.col] += int64(len(c.vals))
		}
		if mask != nil {
			// Prescreen column masking: samples with no surviving partner
			// are dropped from the pack and from the empty-row filter —
			// after the cardinality accumulation above, so â stays exact
			// for every sample. Candidate pairs' intersection counts are
			// unchanged: rows present only in pruned columns contribute
			// nothing to surviving pairs.
			columns, localRows = maskBatchColumns(columns, mask, lo)
		}
		nonzero := dist.Compact(localRows)
		active := len(nonzero)
		entries, err := packBatch(ctx, columns, nonzero, lo, opts.MaskBits, workers, entriesBuf)
		if err != nil {
			return nil, err
		}
		entriesBuf = entries[:0]
		if l+1 < opts.BatchCount {
			prefetchNextScan(v2, n)
		}
		packed := bitmat.FromEntriesThresholdArena(entries, wordRowsFor(active, opts.MaskBits), n, opts.MaskBits, active, opts.DenseThreshold, arena)
		if l == 0 && cfg.tuning != nil {
			cfg.tuning.MeasuredOccupancy = packed.WordOccupancy()
		}
		err = packed.GramAccumulateMaskedCtxArena(ctx, b, workers, arena, mask)
		packed.Release()
		if err != nil {
			return nil, err
		}

		res.Stats.Batches++
		res.Stats.BatchSeconds = append(res.Stats.BatchSeconds, time.Since(batchStart).Seconds())
		res.Stats.ActiveRowsPerBatch = append(res.Stats.ActiveRowsPerBatch, int64(active))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, c := range res.Cardinalities {
		res.Stats.IndicatorNonzeros += c
	}
	if mask != nil {
		restoreIsolatedDiagonals(b, mask, res.Cardinalities)
	}

	if sink != nil {
		if err := streamSeq(ctx, res, b, sink, cfg); err != nil {
			return nil, err
		}
	} else if err := finalize(ctx, res, b, opts.SkipGather, workers); err != nil {
		return nil, err
	}
	captureIngest(ds, &res.Stats)
	res.Stats.TotalSeconds = time.Since(start).Seconds()
	return res, nil
}

// streamSeq derives S and D from the accumulated B band by band (Eq. 2)
// and emits each band as one full-width tile. The scratch buffers are
// reused across bands, so the resident derived output never exceeds one
// tile; B itself stays resident (the sequential path accumulates it
// densely). The per-row derivation matches the legacy finalize bit for bit:
// B is exactly symmetric and the Eq. 2 scalar is symmetric in (i, j), so
// deriving every (i, j) directly equals deriving the upper triangle and
// mirroring.
func streamSeq(ctx context.Context, res *Result, b *sparse.Dense[int64], sink TileSink, cfg runConfig) error {
	n := res.N
	sr := &sinkRunner{sink: sink, stats: &res.Stats}
	if err := sr.start(n, res.Names); err != nil {
		return err
	}
	tr := cfg.tileRows
	if tr > n {
		tr = n
	}
	sbuf := make([]float64, tr*n)
	dbuf := make([]float64, tr*n)
	for lo := 0; lo < n; lo += tr {
		hi := lo + tr
		if hi > n {
			hi = n
		}
		rows := hi - lo
		err := par.ForEachCtx(ctx, cfg.seqWorkers, rows, func(i int) {
			gi := lo + i
			brow := b.Row(gi)
			srow := sbuf[i*n : (i+1)*n]
			drow := dbuf[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				s := dist.Jaccard(brow[j], res.Cardinalities[gi], res.Cardinalities[j])
				srow[j] = s
				drow[j] = 1 - s
			}
		})
		if err != nil {
			return err
		}
		t := &Tile{
			RowLo: lo, ColLo: 0, Rows: rows, Cols: n,
			B: b.Data[lo*n : hi*n], S: sbuf[:rows*n], D: dbuf[:rows*n],
		}
		if err := sr.emit(t); err != nil {
			return err
		}
	}
	return sr.flush()
}

// computeDist runs the fully distributed pipeline on opts.Procs virtual
// BSP ranks arranged as the engine's processor grid. The structure follows
// Listing 1 of the paper:
//
//	for each batch A(l):
//	    each rank reads its (cyclically owned) samples' values in the batch
//	    the distributed filter vector f(l) marks non-empty rows        (Eq. 5)
//	    the replicated prefix sum maps rows to compacted positions      (Eq. 6)
//	    row segments are packed into MaskBits-wide words                (Â(l))
//	    the processor grid computes and accumulates Â(l)ᵀÂ(l)           (Eq. 7)
//	â is accumulated per rank and combined once at the end              (Eq. 4)
//	S and D are derived blockwise and emitted per tile at rank 0        (Eq. 2)
//
// The per-batch stage (sliceBatch → filter → packBatch) is the same code
// the sequential path runs; only the filter exchange and the Gram
// accumulation differ. All communication flows through the BSP runtime, so
// Result.Stats.Comm reports the exact per-superstep byte volumes of the
// run. The result blocks are never assembled into full matrices inside the
// run: with sink == nil (legacy gather) the per-tile emission drives a
// collecting sink whose matrices become Result.B/S/D, with SkipGather the
// emission is skipped entirely, and with a user sink the tiles go straight
// to it.
func (e *Engine) computeDist(ctx context.Context, ds Dataset, sink TileSink, cfg runConfig) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validateDataset(ds); err != nil {
		return nil, err
	}
	if cfg.sketch.enabled {
		// Compute (the legacy one-shot API) runs the BSP path even for
		// Procs == 1; refusing here beats silently ignoring the gate.
		return nil, fmt.Errorf("core: sketch prescreening runs on the sequential path only; use Engine.Similarity or Engine.Stream with Procs = 1")
	}
	v2 := AsV2(ds)
	opts := cfg.opts
	start := time.Now()
	n := ds.NumSamples()
	if n == 0 {
		return nil, fmt.Errorf("core: dataset has no samples")
	}
	m := ds.NumAttributes()

	res := &Result{N: n, Names: sampleNames(ds)}
	res.Stats.Tuning = cfg.tuning
	workers := cfg.distWorkers

	var collect *tile.Collect
	emitSink := sink
	if sink == nil && !opts.SkipGather {
		collect = tile.NewCollect()
		emitSink = collect
	}

	rankFn := func(p *bsp.Proc) error {
		dctx := dist.NewContextWithGrid(p, cfg.grid)
		engine := dist.NewGramEngine(dctx, n, workers, opts.DenseThreshold)

		owned := dctx.OwnedSamples(n)
		localCounts := make([]int64, n)

		for l := 0; l < opts.BatchCount; l++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			batchStart := time.Now()
			lo, hi := batchBounds(m, opts.BatchCount, l)

			// Shared batch stage over the owned samples only; the filter
			// vector exchange replicates the global nonzero set (Eq. 5, 6).
			// A load failure on any rank aborts the whole BSP run: the bsp
			// runtime wakes the peers parked at barriers and RunCtx returns
			// the rank's error as the run failure.
			columns, localRows, err := sliceBatch(v2, owned, lo, hi)
			if err != nil {
				return fmt.Errorf("batch %d: %w", l, err)
			}
			// Per-batch cardinality accumulation (the batch ranges
			// partition [0, m)); each sample is owned by exactly one rank,
			// so the final AllReduce sum assembles the exact â of Eq. 4.
			for _, c := range columns {
				localCounts[c.col] += int64(len(c.vals))
			}
			length := int64(hi) - int64(lo)
			if length <= 0 {
				length = 1
			}
			filter := dist.NewFilterVector(dctx, length)
			filter.Write(localRows)
			nonzero := filter.Replicate()
			active := len(nonzero)

			entries, err := packBatch(ctx, columns, nonzero, lo, opts.MaskBits, workers, nil)
			if err != nil {
				return fmt.Errorf("batch %d: %w", l, err)
			}
			if p.Rank() == 0 && l+1 < opts.BatchCount {
				// One rank hints the restart of the scan; single-flight
				// loading in the dataset dedups it against the peers' reads.
				prefetchNextScan(v2, n)
			}
			engine.AddBatch(entries, wordRowsFor(active, opts.MaskBits), opts.MaskBits, active)

			if p.Rank() == 0 {
				res.Stats.Batches++
				res.Stats.BatchSeconds = append(res.Stats.BatchSeconds, time.Since(batchStart).Seconds())
				res.Stats.ActiveRowsPerBatch = append(res.Stats.ActiveRowsPerBatch, int64(active))
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}

		// Combine the per-sample cardinalities. Each sample is owned by
		// exactly one rank, so an elementwise sum assembles â.
		counts := bsp.AllReduceSlice(p, localCounts, func(a, b int64) int64 { return a + b })
		blocks := engine.Finalize(counts)

		if p.Rank() == 0 {
			res.Cardinalities = counts
			for _, c := range counts {
				res.Stats.IndicatorNonzeros += c
			}
		}
		if emitSink != nil {
			sr := &sinkRunner{sink: emitSink, stats: &res.Stats}
			if p.Rank() == 0 {
				if err := sr.start(n, res.Names); err != nil {
					return err
				}
			}
			if err := blocks.EmitTiles(0, sr.emit); err != nil {
				return err
			}
			if p.Rank() == 0 {
				if err := sr.flush(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// With a Transport this process is ONE rank of a multi-process run;
	// otherwise all Procs ranks are goroutines of this process.
	var commStats *bsp.Stats
	var err error
	if t := opts.Transport; t != nil {
		commStats, err = bsp.RunRank(ctx, t, rankFn)
	} else {
		commStats, err = bsp.RunCtx(ctx, opts.Procs, rankFn)
	}
	if err != nil {
		return nil, err
	}
	res.Stats.Transport = commStats.Transport
	if collect != nil {
		res.B, res.S, res.D = collect.B(), collect.S(), collect.D()
	}
	captureIngest(ds, &res.Stats)
	res.Stats.Comm = commStats
	res.Stats.TotalSeconds = time.Since(start).Seconds()
	return res, nil
}
