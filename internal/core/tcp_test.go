package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"genomeatscale/internal/bsp"
	"genomeatscale/internal/bsp/tcptransport"
	"genomeatscale/internal/dist"
	"genomeatscale/internal/sparse"
)

// newTCPEndpoints builds p connected loopback transport endpoints carrying
// the dist wire codec — the same stack the CLIs assemble for -transport tcp.
func newTCPEndpoints(t *testing.T, p int, stepTimeout time.Duration) []*tcptransport.Transport {
	t.Helper()
	listeners := make([]net.Listener, p)
	peers := make([]string, p)
	for r := 0; r < p; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[r] = ln
		peers[r] = ln.Addr().String()
	}
	ts := make([]*tcptransport.Transport, p)
	for r := 0; r < p; r++ {
		tr, err := tcptransport.New(r, peers, dist.NewWireCodec(),
			tcptransport.Options{Listener: listeners[r], StepTimeout: stepTimeout})
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		ts[r] = tr
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			tr.Close()
		}
	})
	return ts
}

// TestTCPEquivalence runs the engine's distributed pipeline over the TCP
// transport — every rank an Engine of its own, exactly as separate
// processes would run it — and requires rank 0's gathered B, S and D to be
// byte-identical to the in-process transport's result on the same dataset.
func TestTCPEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	intEq := func(a, b int64) bool { return a == b }
	floatEq := func(a, b float64) bool { return a == b }

	for _, procs := range []int{2, 4} {
		for _, batches := range []int{1, 3} {
			t.Run(fmt.Sprintf("p%d_l%d", procs, batches), func(t *testing.T) {
				n := 11
				m := uint64(400)
				ds := randomDataset(rng, n, m, 0.05)

				opts := DefaultOptions()
				opts.Procs = procs
				opts.BatchCount = batches
				opts.Workers = 1

				inProc, err := Compute(ds, opts)
				if err != nil {
					t.Fatal(err)
				}

				ts := newTCPEndpoints(t, procs, 20*time.Second)
				results := make([]*Result, procs)
				errs := make([]error, procs)
				var wg sync.WaitGroup
				for r := 0; r < procs; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						rOpts := opts
						rOpts.Transport = ts[r]
						e, err := NewEngine(rOpts)
						if err != nil {
							errs[r] = err
							return
						}
						results[r], errs[r] = e.Similarity(context.Background(), ds)
					}(r)
				}
				wg.Wait()
				for r, err := range errs {
					if err != nil {
						t.Fatalf("rank %d: %v", r, err)
					}
				}

				root := results[0]
				if !sparse.Equal(inProc.B, root.B, intEq) {
					t.Error("TCP B not byte-identical to in-process")
				}
				if !sparse.Equal(inProc.S, root.S, floatEq) {
					t.Error("TCP S not byte-identical to in-process")
				}
				if !sparse.Equal(inProc.D, root.D, floatEq) {
					t.Error("TCP D not byte-identical to in-process")
				}
				for i := 0; i < n; i++ {
					if root.Cardinalities[i] != inProc.Cardinalities[i] {
						t.Fatalf("cardinality mismatch for sample %d", i)
					}
				}
				// Each rank reports its local wire counters.
				for r, res := range results {
					ws := res.Stats.Transport
					if ws == nil {
						t.Fatalf("rank %d: no transport stats", r)
					}
					if ws.BytesSent == 0 || ws.BytesRecv == 0 {
						t.Errorf("rank %d: empty wire counters %+v", r, ws)
					}
				}
			})
		}
	}
}

// TestTCPEngineCancel cancels a run mid-flight: every rank must unwind —
// the cancelled one with ctx.Err(), the others with either ctx.Err() (their
// own watcher fired) or a RankFailedError — with no goroutine leaks.
func TestTCPEngineCancel(t *testing.T) {
	const procs = 2
	before := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(99))
	ds := randomDataset(rng, 9, 500, 0.05)

	ts := newTCPEndpoints(t, procs, 30*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run starts: deterministic

	errs := make([]error, procs)
	var wg sync.WaitGroup
	for r := 0; r < procs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			opts := DefaultOptions()
			opts.Procs = procs
			opts.BatchCount = 2
			opts.Workers = 1
			opts.Transport = ts[r]
			e, err := NewEngine(opts)
			if err != nil {
				errs[r] = err
				return
			}
			_, errs[r] = e.Similarity(ctx, ds)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: nil error from cancelled run", r)
		}
		var rfe *bsp.RankFailedError
		if !errors.Is(err, context.Canceled) && !errors.As(err, &rfe) {
			t.Errorf("rank %d error = %v, want context.Canceled or RankFailedError", r, err)
		}
	}
	for _, tr := range ts {
		tr.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d running, want <= %d", runtime.NumGoroutine(), before)
}

// TestTransportOptionValidation pins the option incompatibilities.
func TestTransportOptionValidation(t *testing.T) {
	ts := bsp.MemCluster(3)
	defer func() {
		for _, tr := range ts {
			tr.Close()
		}
	}()

	opts := DefaultOptions()
	opts.Transport = ts[0]
	opts.Procs = 2 // mismatch: transport spans 3
	if err := opts.Validate(); err == nil {
		t.Error("Procs/NProcs mismatch validated")
	}

	opts.Procs = 3
	if err := opts.Validate(); err != nil {
		t.Errorf("matching Procs rejected: %v", err)
	}

	opts.Autotune = true
	if err := opts.Validate(); err == nil {
		t.Error("Autotune+Transport validated")
	}
	opts.Autotune = false

	opts.Procs = 1
	opts.Transport = nil
	opts.Sketch = SketchOptions{Threshold: 0.5}
	if err := opts.Validate(); err != nil {
		t.Errorf("sketch alone rejected: %v", err)
	}
	opts.Procs = 3
	opts.Transport = ts[0]
	opts.Sketch = SketchOptions{Threshold: 0.5}
	if err := opts.Validate(); err == nil {
		t.Error("Sketch+Transport validated")
	}
}
