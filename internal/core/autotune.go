package core

import (
	"fmt"
	"runtime"

	"genomeatscale/internal/costmodel"
)

// This file is the run-time half of Options.Autotune: Similarity and
// Stream resolve their configuration against the dataset at hand by
// sampling coarse statistics, handing them with the engine's host profile
// to costmodel.Tune, and overlaying the chosen values on the options —
// except for the dimensions the caller pinned explicitly, which the tuner
// works around. The decisions and their predictions land in
// RunStats.Tuning.

// maxProbeColumns bounds the density-sampling cost of one autotuned run:
// at most this many sample columns are loaded (evenly strided across the
// dataset) to estimate the indicator density. Out-of-core datasets cache
// the loads, so the probe also warms the first batch's scan.
const maxProbeColumns = 32

// sampleDatasetStats probes the dataset for the statistics the tuner needs:
// dimensions plus a density estimate from up to maxProbeColumns strided
// sample cardinalities. It returns the stats and how many columns were
// probed.
func sampleDatasetStats(ds Dataset) (costmodel.DatasetStats, int, error) {
	v2 := AsV2(ds)
	n := ds.NumSamples()
	m := ds.NumAttributes()
	st := costmodel.DatasetStats{Samples: n, Attributes: int(m)}
	if n == 0 || m == 0 {
		return st, 0, nil
	}
	probe := n
	if probe > maxProbeColumns {
		probe = maxProbeColumns
	}
	var total float64
	for k := 0; k < probe; k++ {
		j := k * n / probe
		vals, err := v2.SampleErr(j)
		if err != nil {
			return st, 0, fmt.Errorf("core: autotune probe of sample %d (%s): %w", j, ds.SampleName(j), err)
		}
		total += float64(len(vals))
	}
	st.Density = total / float64(probe) / float64(m)
	return st, probe, nil
}

// fixedFrom maps the explicitly set options to the tuner's pinned
// dimensions, returning also their names for the tuning report.
func fixedFrom(o Options) (costmodel.Fixed, []string) {
	var f costmodel.Fixed
	var pinned []string
	if o.IsExplicit(FieldProcs) {
		f.Procs = o.Procs
		pinned = append(pinned, "procs")
	}
	if o.IsExplicit(FieldReplication) {
		f.Replication = o.Replication
		pinned = append(pinned, "replication")
	}
	if o.IsExplicit(FieldBatchCount) {
		f.Batches = o.BatchCount
		pinned = append(pinned, "batches")
	}
	if o.IsExplicit(FieldTileRows) {
		f.TileRows = o.TileRows
		pinned = append(pinned, "tilerows")
	}
	if o.IsExplicit(FieldDenseThreshold) {
		f.HasDenseThreshold = true
		f.DenseThreshold = o.DenseThreshold
		pinned = append(pinned, "densethreshold")
	}
	if o.Sketch.Enabled() {
		f.Sketch = true
		f.SketchThreshold = o.Sketch.Threshold
		f.SketchSlack = o.Sketch.Slack
		if f.SketchSlack == 0 {
			f.SketchSlack = DefaultSketchSlack
		}
		if o.IsExplicit(FieldSketchSize) && o.Sketch.Size > 0 {
			f.SketchSize = o.Sketch.Size
			pinned = append(pinned, "sketchsize")
		}
		// Prescreening is sequential-only (Validate enforces Procs == 1 on
		// static runs); keep the tuner from planning a rank grid.
		if f.Procs == 0 {
			f.Procs = 1
		}
	}
	f.MaskBits = o.MaskBits
	return f, pinned
}

// configFor resolves the configuration of one run. Without Autotune it is
// the static configuration from NewEngine; with it, the tuner's plan is
// overlaid on the engine options (pinned dimensions unchanged — Tune
// already kept them) and the per-run decisions re-derived.
func (e *Engine) configFor(ds Dataset) (runConfig, error) {
	if !e.opts.Autotune {
		return e.static, nil
	}
	st, probed, err := sampleDatasetStats(ds)
	if err != nil {
		return runConfig{}, err
	}
	fixed, pinned := fixedFrom(e.opts)
	// GOMAXPROCS, not NumCPU: in cgroup-limited containers NumCPU reports
	// the physical host and the tuner would over-provision parallelism.
	plan := costmodel.Tune(e.mach, st, runtime.GOMAXPROCS(0), fixed)
	opts := e.opts
	opts.Procs = plan.Procs
	opts.Replication = plan.Replication
	opts.BatchCount = plan.Batches
	opts.TileRows = plan.TileRows
	opts.DenseThreshold = plan.DenseThreshold
	if plan.SketchSize > 0 {
		opts.Sketch.Size = plan.SketchSize
	}
	if err := opts.Validate(); err != nil {
		return runConfig{}, fmt.Errorf("core: autotuned configuration invalid: %w", err)
	}
	cfg := resolveConfig(opts)
	cfg.tuning = &TuningReport{
		Machine:        e.mach.Name,
		SampledColumns: probed,
		Stats:          st,
		Plan:           plan,
		Pinned:         pinned,
	}
	return cfg, nil
}
