package core

import (
	"fmt"
	"math/rand"
	"testing"

	"genomeatscale/internal/sparse"
)

// TestEquivalenceGrid cross-checks the three computation paths — Compute,
// ComputeSequential and ExactJaccard — over the full configuration grid of
// Procs ∈ {2, 4, 8, 9, 12}, Replication ∈ {1, 2, 3}, BatchCount ∈ {1, 3, 7},
// MaskBits ∈ {8, 32, 64}, Workers ∈ {1, 2, 4} and DenseThreshold ∈
// {-1 (never dense), 0 (auto ≈ ¼ word rows), 1 (every non-empty column
// dense)}, to 1e-12. Sample counts are deliberately ragged (prime or
// otherwise not divisible by the grid dimensions) so block boundaries,
// empty blocks and uneven cyclic ownership are all exercised. The Workers
// dimension pins down the shared-memory kernel and the DenseThreshold
// dimension the hybrid storage layout: every sequential run must produce a
// B matrix byte-identical (exact int64 equality) to the Workers: 1,
// sparse-only serial baseline, and every distributed run must agree
// regardless of its local worker count or storage layout.
func TestEquivalenceGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	intEq := func(a, b int64) bool { return a == b }
	intEqF := func(a, b float64) bool { return a == b }
	workerDim := []int{1, 2, 4}
	thresholdDim := []int{-1, 0, 1}

	for _, procs := range []int{2, 4, 8, 9, 12} {
		// Ragged n relative to every grid this procs count can form.
		n := 13
		if procs == 4 || procs == 8 {
			n = 11
		}
		m := uint64(300 + rng.Intn(900))
		ds := randomDataset(rng, n, m, 0.03+rng.Float64()*0.05)
		exact := ExactJaccard(ds)

		for _, batches := range []int{1, 3, 7} {
			for _, maskBits := range []int{8, 32, 64} {
				seqOpts := DefaultOptions()
				seqOpts.BatchCount = batches
				seqOpts.MaskBits = maskBits
				seqOpts.Workers = 1         // the serial baseline every other point must match
				seqOpts.DenseThreshold = -1 // ... with the historical sparse-only storage
				seq, err := ComputeSequential(ds, seqOpts)
				if err != nil {
					t.Fatal(err)
				}
				if !sparse.Equal(exact, seq.S, approxEqual) {
					t.Fatalf("batches=%d b=%d: sequential S differs from exact", batches, maskBits)
				}
				for _, workers := range workerDim {
					for _, dt := range thresholdDim {
						for _, autotune := range []bool{false, true} {
							if workers == 1 && dt == -1 && !autotune {
								continue // the baseline itself
							}
							wOpts := seqOpts
							wOpts.Workers = workers
							wOpts.DenseThreshold = dt
							if autotune {
								// The Autotune dimension: with the grid's own
								// dimensions pinned explicitly, the tuner may
								// only fill the remaining ones (Procs,
								// TileRows) — the results must stay
								// byte-identical either way.
								wOpts.Autotune = true
								wOpts.SetExplicit(FieldBatchCount | FieldMaskBits | FieldDenseThreshold | FieldWorkers)
							}
							seqW, err := ComputeSequential(ds, wOpts)
							if err != nil {
								t.Fatal(err)
							}
							if !sparse.Equal(seq.B, seqW.B, intEq) {
								t.Fatalf("batches=%d b=%d w=%d dt=%d auto=%v: sequential B not byte-identical to sparse serial",
									batches, maskBits, workers, dt, autotune)
							}
							if !sparse.Equal(seq.S, seqW.S, intEqF) || !sparse.Equal(seq.D, seqW.D, intEqF) {
								t.Fatalf("batches=%d b=%d w=%d dt=%d auto=%v: sequential S/D not byte-identical to sparse serial",
									batches, maskBits, workers, dt, autotune)
							}
							if autotune && seqW.Stats.Tuning == nil {
								t.Fatalf("autotuned run recorded no tuning report")
							}
						}
					}
				}

				for _, repl := range []int{1, 2, 3} {
					for _, workers := range workerDim {
						for _, dt := range thresholdDim {
							name := fmt.Sprintf("p%d_c%d_l%d_b%d_w%d_dt%d", procs, repl, batches, maskBits, workers, dt)
							t.Run(name, func(t *testing.T) {
								opts := seqOpts
								opts.Procs = procs
								opts.Replication = repl
								opts.Workers = workers
								opts.DenseThreshold = dt
								res, err := Compute(ds, opts)
								if err != nil {
									t.Fatal(err)
								}
								if !sparse.Equal(exact, res.S, approxEqual) {
									t.Error("distributed S differs from exact")
								}
								if !sparse.Equal(seq.S, res.S, approxEqual) {
									t.Error("distributed S differs from sequential")
								}
								if !sparse.Equal(seq.D, res.D, approxEqual) {
									t.Error("distributed D differs from sequential")
								}
								if !sparse.Equal(seq.B, res.B, intEq) {
									t.Error("distributed B differs from sequential")
								}
								for i := 0; i < n; i++ {
									if res.Cardinalities[i] != seq.Cardinalities[i] {
										t.Fatalf("cardinality mismatch for sample %d", i)
									}
								}
								comm := res.Stats.Comm
								if comm == nil {
									t.Fatal("distributed run must record communication stats")
								}
								if comm.Supersteps == 0 || len(comm.HRelations) != comm.Supersteps {
									t.Errorf("inconsistent superstep accounting: %d steps, %d h-relations",
										comm.Supersteps, len(comm.HRelations))
								}
								if comm.TotalBytes == 0 || comm.SumHRelations() == 0 {
									t.Error("multi-rank run must report nonzero per-superstep byte volumes")
								}
							})
						}
					}
				}
			}
		}
	}
}
