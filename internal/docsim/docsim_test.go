package docsim

import (
	"math"
	"strings"
	"testing"

	"genomeatscale/internal/core"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! 42 times hello-world")
	want := []string{"hello", "world", "times", "hello", "world"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("12345 !!!")) != 0 {
		t.Error("digits/punctuation only should yield no tokens")
	}
}

func TestShingles(t *testing.T) {
	tokens := []string{"a", "b", "c", "d"}
	got := Shingles(tokens, 2)
	want := []string{"a b", "b c", "c d"}
	if len(got) != len(want) {
		t.Fatalf("Shingles = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("shingle %d = %q", i, got[i])
		}
	}
	if Shingles([]string{"a"}, 2) != nil {
		t.Error("short input should yield nil")
	}
	one := Shingles(tokens, 1)
	if len(one) != 4 || one[0] != "a" {
		t.Errorf("1-shingles = %v", one)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Shingles(tokens, 0)
}

func TestHashTermStableAndBounded(t *testing.T) {
	if hashTerm("abc") != hashTerm("abc") {
		t.Error("hash must be deterministic")
	}
	if hashTerm("abc") == hashTerm("abd") {
		t.Error("different terms should (almost surely) hash differently")
	}
	for _, s := range []string{"", "a", "hello world", strings.Repeat("x", 100)} {
		if hashTerm(s) >= uint64(1)<<62 {
			t.Errorf("hash of %q exceeds 62 bits", s)
		}
	}
}

func TestNewCorpusValidation(t *testing.T) {
	if _, err := NewCorpus([]string{"a"}, nil, Options{}); err == nil {
		t.Error("length mismatch should error")
	}
	c, err := NewCorpus([]string{"a", "b"}, []string{"x y z", ""}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestSimilarityIdenticalAndDisjointDocs(t *testing.T) {
	names := []string{"original", "copy", "unrelated"}
	texts := []string{
		"the quick brown fox jumps over the lazy dog",
		"the quick brown fox jumps over the lazy dog",
		"completely different words appear here instead",
	}
	c, err := NewCorpus(names, texts, Options{ShingleSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Similarity(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Similarity(0, 1) != 1 {
		t.Errorf("identical docs similarity = %v", res.Similarity(0, 1))
	}
	if res.Similarity(0, 2) != 0 {
		t.Errorf("disjoint docs similarity = %v", res.Similarity(0, 2))
	}
	// Plagiarism-style lookup.
	j, s := MostSimilar(res, 0)
	if j != 1 || s != 1 {
		t.Errorf("MostSimilar(0) = %d, %v", j, s)
	}
}

func TestSimilarityPartialOverlapMatchesSetDefinition(t *testing.T) {
	// doc0: {a,b,c,d}; doc1: {c,d,e,f} → J = 2/6.
	c, err := NewCorpus(
		[]string{"d0", "d1"},
		[]string{"a b c d", "c d e f"},
		Options{ShingleSize: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Similarity(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Similarity(0, 1)-2.0/6.0) > 1e-12 {
		t.Errorf("similarity = %v, want 1/3", res.Similarity(0, 1))
	}
}

func TestShinglesChangeSimilarity(t *testing.T) {
	// Same word multiset, different order: bag-of-words similarity is 1 but
	// 2-shingle similarity is below 1.
	texts := []string{"alpha beta gamma delta", "delta gamma beta alpha"}
	names := []string{"fwd", "rev"}
	bag, err := NewCorpus(names, texts, Options{ShingleSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	bagRes, err := bag.Similarity(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if bagRes.Similarity(0, 1) != 1 {
		t.Errorf("bag-of-words similarity = %v, want 1", bagRes.Similarity(0, 1))
	}
	sh, err := NewCorpus(names, texts, Options{ShingleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	shRes, err := sh.Similarity(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if shRes.Similarity(0, 1) >= 1 {
		t.Errorf("shingle similarity should drop below 1, got %v", shRes.Similarity(0, 1))
	}
}

func TestSimilarityDistributedPathMatches(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	texts := []string{
		"shared words one two three",
		"shared words four five six",
		"totally different content here now",
		"shared words one two seven",
	}
	c, err := NewCorpus(names, texts, Options{ShingleSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := c.Similarity(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Procs = 4
	opts.BatchCount = 2
	dist, err := c.Similarity(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(seq.Similarity(i, j)-dist.Similarity(i, j)) > 1e-12 {
				t.Fatalf("distributed vs sequential mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMostSimilarSingleDoc(t *testing.T) {
	c, err := NewCorpus([]string{"only"}, []string{"just one document"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Similarity(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	j, s := MostSimilar(res, 0)
	if j != -1 || s != -1 {
		t.Errorf("MostSimilar on single doc = %d, %v", j, s)
	}
}
