// Package docsim applies SimilarityAtScale to information retrieval
// (Section II-G of the paper): documents are modelled as sets of words or
// word shingles, and J(X, Y) — the ratio of shared to total distinct terms
// — measures document similarity, as used for plagiarism detection and text
// analysis (the paper cites text2vec). Table III maps the framing: one row
// of A per word, one column per document.
package docsim

import (
	"fmt"
	"strings"
	"unicode"

	"genomeatscale/internal/core"
)

// Tokenize splits text into lower-cased word tokens; punctuation and digits
// act as separators.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r)
	})
}

// Shingles returns the k-word shingles (contiguous token windows joined by
// a space). For k = 1 it returns the tokens themselves. Texts shorter than
// k tokens yield nothing.
func Shingles(tokens []string, k int) []string {
	if k <= 0 {
		//gas:invariant documented contract: shingle size is app configuration validated at the flag layer; this guards direct API misuse
		panic(fmt.Sprintf("docsim: shingle size must be positive, got %d", k))
	}
	if len(tokens) < k {
		return nil
	}
	out := make([]string, 0, len(tokens)-k+1)
	for i := 0; i+k <= len(tokens); i++ {
		out = append(out, strings.Join(tokens[i:i+k], " "))
	}
	return out
}

// hashTerm maps a term to a 62-bit attribute index (FNV-1a, truncated) so
// documents become attribute sets over a fixed universe that stays well
// inside the batching arithmetic of the core pipeline.
func hashTerm(term string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(term); i++ {
		h ^= uint64(term[i])
		h *= prime
	}
	return h >> 2 // keep below 2^62
}

// Corpus is a collection of named documents prepared for similarity
// computation.
type Corpus struct {
	names []string
	terms [][]uint64
}

// Options configures corpus construction.
type Options struct {
	// ShingleSize is the number of consecutive words per term (1 = bag of
	// words).
	ShingleSize int
}

// NewCorpus tokenises and shingles the documents. Names and texts must have
// equal length.
func NewCorpus(names, texts []string, opts Options) (*Corpus, error) {
	if len(names) != len(texts) {
		return nil, fmt.Errorf("docsim: %d names for %d texts", len(names), len(texts))
	}
	k := opts.ShingleSize
	if k <= 0 {
		k = 1
	}
	c := &Corpus{}
	for i, text := range texts {
		shingles := Shingles(Tokenize(text), k)
		terms := make([]uint64, 0, len(shingles))
		for _, s := range shingles {
			terms = append(terms, hashTerm(s))
		}
		c.names = append(c.names, names[i])
		c.terms = append(c.terms, terms)
	}
	return c, nil
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.names) }

// Dataset converts the corpus into SimilarityAtScale input.
func (c *Corpus) Dataset() (*core.InMemoryDataset, error) {
	return core.NewInMemoryDataset(c.names, c.terms, uint64(1)<<62)
}

// Similarity computes the all-pairs document Jaccard similarity matrix.
func (c *Corpus) Similarity(opts core.Options) (*core.Result, error) {
	ds, err := c.Dataset()
	if err != nil {
		return nil, err
	}
	if opts.Procs > 1 {
		return core.Compute(ds, opts)
	}
	return core.ComputeSequential(ds, opts)
}

// MostSimilar returns, for document index i, the index of the most similar
// other document and its similarity (plagiarism-detection style lookup).
func MostSimilar(res *core.Result, i int) (int, float64) {
	best, bestSim := -1, -1.0
	for j := 0; j < res.N; j++ {
		if j == i {
			continue
		}
		if s := res.Similarity(i, j); s > bestSim {
			best, bestSim = j, s
		}
	}
	return best, bestSim
}
