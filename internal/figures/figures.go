// Package figures regenerates every table and figure of the paper's
// evaluation (Section V) from this reproduction. Each generator returns one
// or more printable tables combining:
//
//   - projections at the paper's full scale, obtained from the BSP cost
//     model (internal/costmodel) parameterised with a Stampede2-like
//     machine — this is how node counts up to 1024 are covered on a single
//     host, and
//   - measurements of the actual distributed pipeline (internal/core over
//     the in-process BSP runtime) on scaled-down dataset proxies, which
//     report real per-batch wall-clock times and exact communication
//     volumes.
//
// The shapes reported in EXPERIMENTS.md (who wins, scaling trends,
// crossovers) come from these generators; cmd/benchfigs prints them and the
// root bench_test.go wraps them in testing.B benchmarks.
package figures

import (
	"fmt"
	"strings"
)

// Table is a printable result table.
type Table struct {
	// Title names the table (e.g. "Figure 2a — projected, full scale").
	Title string
	// Header holds the column names.
	Header []string
	// Rows holds the formatted cell values.
	Rows [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Scale controls how large the measured (in-process) portion of each figure
// is. Tests use Small; cmd/benchfigs defaults to Medium.
type Scale int

const (
	// Small keeps every measured run under roughly a second.
	Small Scale = iota
	// Medium runs larger proxies for more stable measurements.
	Medium
)

// seconds formats a duration value.
func seconds(v float64) string { return fmt.Sprintf("%.4g s", v) }

// hours formats a duration in hours.
func hours(v float64) string { return fmt.Sprintf("%.3g h", v/3600) }

// days formats a duration in days.
func days(v float64) string { return fmt.Sprintf("%.3g d", v/86400) }

// mb formats a byte count in MiB.
func mb(v float64) string { return fmt.Sprintf("%.3g MiB", v/(1<<20)) }

func itoa(v int) string { return fmt.Sprintf("%d", v) }
