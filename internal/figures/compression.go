package figures

import (
	"fmt"
	"sort"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/dataset"
)

// CompressionStats quantifies the two data-reduction steps of Section III-B
// on a scaled Kingsford proxy: how many of a batch's rows survive the
// zero-row filter (Eq. 5–6), and how many packed words the bitmask
// compression needs compared to the raw nonzero count (Eq. 7). This is the
// ablation behind the paper's claim that the indicator matrix is
// hypersparse ("the overwhelming majority of its rows are entirely zero")
// and that packing b rows per word reduces per-nonzero metadata.
func CompressionStats(scale Scale) (Table, error) {
	proxy := dataset.Kingsford()
	cfg := dataset.ScaledConfig{Samples: 96, Attributes: 400_000, DensityScale: 2, Seed: 19}
	if scale == Medium {
		cfg = dataset.ScaledConfig{Samples: 256, Attributes: 1_500_000, DensityScale: 2, Seed: 19}
	}
	ds, err := proxy.Generate(cfg)
	if err != nil {
		return Table{}, err
	}
	const batches = 4
	const maskBits = 64
	t := Table{
		Title: "Ablation — zero-row filtering and bitmask compression (Section III-B, scaled Kingsford proxy)",
		Header: []string{"Batch", "Batch rows m̃", "Nonzero rows |f|", "Rows kept",
			"Indicator nnz", "Packed words", "Words/nnz", "Metadata reduction vs unfiltered"},
	}
	m := ds.NumAttributes()
	n := ds.NumSamples()
	for l := 0; l < batches; l++ {
		lo := m / batches * uint64(l)
		hi := lo + m/batches
		if l == batches-1 {
			hi = m
		}
		filter := make(map[uint64]struct{})
		perSample := make([][]uint64, n)
		nnz := 0
		for j := 0; j < n; j++ {
			s := ds.Sample(j)
			start := sort.Search(len(s), func(i int) bool { return s[i] >= lo })
			end := sort.Search(len(s), func(i int) bool { return s[i] >= hi })
			vals := s[start:end]
			perSample[j] = vals
			nnz += len(vals)
			for _, v := range vals {
				filter[v] = struct{}{}
			}
		}
		nonzero := make([]uint64, 0, len(filter))
		for v := range filter {
			nonzero = append(nonzero, v)
		}
		sort.Slice(nonzero, func(a, b int) bool { return nonzero[a] < nonzero[b] })
		rowsPerCol := make([][]int, n)
		for j := 0; j < n; j++ {
			rows := make([]int, len(perSample[j]))
			for k, v := range perSample[j] {
				rows[k] = sort.Search(len(nonzero), func(i int) bool { return nonzero[i] >= v })
			}
			rowsPerCol[j] = rows
		}
		packed := bitmat.PackColumns(rowsPerCol, len(nonzero), maskBits)
		batchRows := hi - lo
		keptFrac := float64(len(nonzero)) / float64(batchRows)
		wordsPerNNZ := float64(packed.NNZWords()) / float64(max(nnz, 1))
		// Without filtering, each row-start of the CSR layout over the full
		// batch row range would carry metadata; the reduction compares the
		// word-row count of the packed matrix against the unfiltered row
		// count divided by the mask width.
		unfilteredWordRows := (batchRows + maskBits - 1) / maskBits
		reduction := float64(unfilteredWordRows) / float64(max(packed.WordRows, 1))
		t.AddRow(
			itoa(l),
			fmt.Sprintf("%d", batchRows),
			fmt.Sprintf("%d", len(nonzero)),
			fmt.Sprintf("%.3f%%", 100*keptFrac),
			fmt.Sprintf("%d", nnz),
			fmt.Sprintf("%d", packed.NNZWords()),
			fmt.Sprintf("%.3f", wordsPerNNZ),
			fmt.Sprintf("%.1f×", reduction),
		)
	}
	return t, nil
}
