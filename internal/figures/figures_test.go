package figures

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tab := Table{Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "bb") || !strings.Contains(s, "1") {
		t.Errorf("rendered table missing content:\n%s", s)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if seconds(1.5) != "1.5 s" {
		t.Errorf("seconds = %q", seconds(1.5))
	}
	if hours(7200) != "2 h" {
		t.Errorf("hours = %q", hours(7200))
	}
	if days(86400*3) != "3 d" {
		t.Errorf("days = %q", days(86400*3))
	}
	if mb(1<<21) != "2 MiB" {
		t.Errorf("mb = %q", mb(1<<21))
	}
	if itoa(42) != "42" {
		t.Errorf("itoa = %q", itoa(42))
	}
}

func TestTable2HasGenomeAtScaleAtLargestScale(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) != 4 {
		t.Fatalf("Table II rows = %d", len(tab.Rows))
	}
	var gasSamples, maxOther int
	for _, row := range tab.Rows {
		n, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("bad sample count %q", row[2])
		}
		if row[0] == "GenomeAtScale" {
			gasSamples = n
		} else if n > maxOther {
			maxOther = n
		}
	}
	if gasSamples <= maxOther {
		t.Errorf("GenomeAtScale should have the largest sample count (%d vs %d)", gasSamples, maxOther)
	}
}

// parseLeadingFloat extracts the numeric prefix of a cell like "2.3 s".
func parseLeadingFloat(t *testing.T, cell string) float64 {
	t.Helper()
	fields := strings.Fields(cell)
	if len(fields) == 0 {
		t.Fatalf("empty cell")
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", cell, err)
	}
	return v
}

func TestFig2aShape(t *testing.T) {
	tables, err := Fig2aKingsfordStrongScaling(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("expected projection + measurement, got %d tables", len(tables))
	}
	proj := tables[0]
	if len(proj.Rows) != 9 {
		t.Fatalf("projection should cover 9 node counts, got %d", len(proj.Rows))
	}
	// Paper shape: an interior sweet spot — the best projected total is not
	// at 1 node and not at the largest node count.
	best := 0
	for i := range proj.Rows {
		if parseLeadingFloat(t, proj.Rows[i][5]) < parseLeadingFloat(t, proj.Rows[best][5]) {
			best = i
		}
	}
	if best == 0 || best == len(proj.Rows)-1 {
		t.Errorf("sweet spot at row %d, expected interior optimum", best)
	}
	meas := tables[1]
	if len(meas.Rows) != 4 {
		t.Fatalf("measured rows = %d", len(meas.Rows))
	}
	// Communication volume grows with rank count in the measured runs.
	first := parseLeadingFloat(t, meas.Rows[0][5])
	last := parseLeadingFloat(t, meas.Rows[len(meas.Rows)-1][5])
	if last < first {
		t.Errorf("multi-rank runs should communicate at least as much as single-rank (%v vs %v)", last, first)
	}
}

func TestFig2bShape(t *testing.T) {
	tables, err := Fig2bBIGSIStrongScaling(Small)
	if err != nil {
		t.Fatal(err)
	}
	proj := tables[0]
	// Projected total time decreases monotonically from 128 to 1024 nodes.
	for i := 1; i < len(proj.Rows); i++ {
		if parseLeadingFloat(t, proj.Rows[i][5]) >= parseLeadingFloat(t, proj.Rows[i-1][5]) {
			t.Errorf("BIGSI projected total should decrease with node count (row %d)", i)
		}
	}
}

func TestFig2cShape(t *testing.T) {
	tables, err := Fig2cBatchSensitivityKingsford(Small)
	if err != nil {
		t.Fatal(err)
	}
	proj := tables[0]
	// Larger batches (fewer batch counts, later rows) reduce the projected
	// total time.
	for i := 1; i < len(proj.Rows); i++ {
		if parseLeadingFloat(t, proj.Rows[i][5]) >= parseLeadingFloat(t, proj.Rows[i-1][5]) {
			t.Errorf("total should decrease with larger batches (row %d)", i)
		}
	}
	meas := tables[1]
	if len(meas.Rows) != 5 {
		t.Fatalf("measured rows = %d", len(meas.Rows))
	}
}

func TestFig3Shape(t *testing.T) {
	tables, err := Fig3SparsitySweep(Small)
	if err != nil {
		t.Fatal(err)
	}
	proj := tables[0]
	for i := 1; i < len(proj.Rows); i++ {
		if parseLeadingFloat(t, proj.Rows[i][2]) <= parseLeadingFloat(t, proj.Rows[i-1][2]) {
			t.Errorf("denser data should take longer (projection row %d)", i)
		}
	}
	meas := tables[1]
	// Measured communication volume must also grow with density.
	firstComm := parseLeadingFloat(t, meas.Rows[0][6])
	lastComm := parseLeadingFloat(t, meas.Rows[len(meas.Rows)-1][6])
	if lastComm <= firstComm {
		t.Errorf("denser data should move more bytes (%v vs %v)", lastComm, firstComm)
	}
}

func TestMCDRAMAblationSmallSlowdown(t *testing.T) {
	tab := MCDRAMAblation()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		slowdown := strings.TrimSuffix(row[3], "%")
		v, err := strconv.ParseFloat(slowdown, 64)
		if err != nil {
			t.Fatalf("bad slowdown %q", row[3])
		}
		if v <= 0 || v > 10 {
			t.Errorf("MCDRAM slowdown should be small and positive, got %v%%", v)
		}
	}
}

func TestAccuracyExactVsMinHash(t *testing.T) {
	tab, err := AccuracyExactVsMinHash(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		target, _ := strconv.ParseFloat(row[0], 64)
		exact, _ := strconv.ParseFloat(row[1], 64)
		if diff := exact - target; diff > 0.02 || diff < -0.02 {
			t.Errorf("pipeline exact value %v far from constructed target %v", exact, target)
		}
	}
}

func TestAblationBitmaskResultsIdentical(t *testing.T) {
	tab, err := AblationBitmask(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[4] != "true" {
			t.Errorf("mask width %s changed the result", row[0])
		}
	}
	// Wider masks must not communicate more than the b=1 (uncompressed)
	// configuration.
	uncompressed := parseLeadingFloat(t, tab.Rows[0][2])
	packed := parseLeadingFloat(t, tab.Rows[3][2])
	if packed > uncompressed {
		t.Errorf("b=64 should not move more data than b=1 (%v vs %v)", packed, uncompressed)
	}
}

func TestAblationReplication(t *testing.T) {
	tab, err := AblationReplication(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestCompressionStats(t *testing.T) {
	tab, err := CompressionStats(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// The hypersparsity claim: only a small fraction of batch rows are
		// non-empty (well under half for the Kingsford-like density).
		kept, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatalf("bad kept fraction %q", row[3])
		}
		if kept <= 0 || kept >= 50 {
			t.Errorf("kept fraction %v%% not in the hypersparse regime", kept)
		}
		// Packing never needs more than one word per nonzero.
		wordsPerNNZ := parseLeadingFloat(t, row[6])
		if wordsPerNNZ > 1 {
			t.Errorf("packing should not exceed one word per nonzero, got %v", wordsPerNNZ)
		}
		// And the word-row metadata shrinks versus the unfiltered layout.
		reduction, err := strconv.ParseFloat(strings.TrimSuffix(row[7], "×"), 64)
		if err != nil {
			t.Fatalf("bad reduction %q", row[7])
		}
		if reduction <= 1 {
			t.Errorf("filtering should reduce word-row metadata, got %v×", reduction)
		}
	}
}
