package figures

import (
	"fmt"

	"genomeatscale/internal/core"
	"genomeatscale/internal/costmodel"
	"genomeatscale/internal/dataset"
	"genomeatscale/internal/minhash"
	"genomeatscale/internal/stats"
	"genomeatscale/internal/synth"
)

// Table2 reproduces Table II: the scale comparison of alignment-free
// genetic-distance tools.
func Table2() Table {
	t := Table{
		Title:  "Table II — scales of alignment-free genetic-distance tools",
		Header: []string{"Tool", "Nodes", "Samples", "Raw input", "Preprocessed", "Similarity", "Exact Jaccard", "Distributed"},
	}
	for _, row := range dataset.TableII() {
		raw := "N/A"
		if row.RawInputTB > 0 {
			raw = fmt.Sprintf("%.3g TB", row.RawInputTB)
		}
		pre := "N/A"
		if row.PreprocessedGB > 0 {
			pre = fmt.Sprintf("%.3g GB", row.PreprocessedGB)
		}
		t.AddRow(row.Tool, itoa(row.ComputeNodes), itoa(row.Samples), raw, pre,
			row.SimilarityKind, fmt.Sprintf("%v", row.ExactJaccard), fmt.Sprintf("%v", row.DistributedRun))
	}
	return t
}

// projectionTable renders a cost-model strong-scaling series.
func projectionTable(title string, points []costmodel.ScalingPoint, longRun bool) Table {
	t := Table{
		Title:  title,
		Header: []string{"Nodes", "Ranks", "c", "Batches", "Time/batch", "Projected total", "Efficiency"},
	}
	for _, p := range points {
		total := hours(p.TotalSeconds)
		if longRun {
			total = days(p.TotalSeconds)
		}
		t.AddRow(itoa(p.Nodes), itoa(p.Ranks), itoa(p.Replication), itoa(p.Batches),
			seconds(p.BatchSeconds), total, fmt.Sprintf("%.2f", p.Efficiency))
	}
	return t
}

// measuredRun executes the distributed pipeline on ds with the given
// configuration and returns a formatted row plus the result.
func measuredRun(ds core.Dataset, ranks, batches, replication int) ([]string, *core.Result, error) {
	opts := core.DefaultOptions()
	opts.Procs = ranks
	opts.BatchCount = batches
	opts.Replication = replication
	opts.SkipGather = true
	res, err := core.Compute(ds, opts)
	if err != nil {
		return nil, nil, err
	}
	warmup := 0
	if batches > 2 {
		warmup = 1
	}
	batchSummary := stats.BatchSummary(res.Stats.BatchSeconds, warmup)
	projected := costmodel.TimeFromStats(costmodel.Stampede2KNL(), res.Stats.Comm)
	row := []string{
		itoa(ranks),
		itoa(replication),
		itoa(batches),
		seconds(batchSummary.Mean),
		seconds(res.Stats.TotalSeconds),
		mb(float64(res.Stats.Comm.TotalBytes)),
		itoa(res.Stats.Comm.Supersteps),
		seconds(projected),
	}
	return row, res, nil
}

var measuredHeader = []string{"Ranks", "c", "Batches", "Time/batch", "Total", "Comm volume", "Supersteps", "Projected (Stampede2)"}

// measuredScalingTable runs the pipeline for each rank count.
func measuredScalingTable(title string, ds core.Dataset, rankCounts []int, batches, replication int) (Table, error) {
	t := Table{Title: title, Header: measuredHeader}
	for _, r := range rankCounts {
		row, _, err := measuredRun(ds, r, batches, replication)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// kingsfordProxy materialises a scaled Kingsford proxy for measured runs.
func kingsfordProxy(scale Scale) (*core.InMemoryDataset, error) {
	cfg := dataset.ScaledConfig{Samples: 96, Attributes: 50_000, DensityScale: 20, Seed: 11}
	if scale == Medium {
		cfg = dataset.ScaledConfig{Samples: 256, Attributes: 200_000, DensityScale: 20, Seed: 11}
	}
	return dataset.Kingsford().Generate(cfg)
}

// bigsiProxy materialises a scaled BIGSI proxy (density raised so the
// scaled-down matrix still holds work, column variability preserved).
func bigsiProxy(scale Scale) (*core.InMemoryDataset, error) {
	cfg := dataset.ScaledConfig{Samples: 64, Attributes: 1_000_000, DensityScale: 5e7, Seed: 13}
	if scale == Medium {
		cfg = dataset.ScaledConfig{Samples: 192, Attributes: 4_000_000, DensityScale: 5e7, Seed: 13}
	}
	return dataset.BIGSI().Generate(cfg)
}

func ranksFor(scale Scale) []int {
	if scale == Medium {
		return []int{1, 2, 4, 8, 16, 32}
	}
	return []int{1, 2, 4, 8}
}

// Fig2aKingsfordStrongScaling reproduces Figure 2a: strong scaling on the
// Kingsford dataset.
func Fig2aKingsfordStrongScaling(scale Scale) ([]Table, error) {
	machine := costmodel.Stampede2KNL()
	points, err := costmodel.StrongScaling(machine, costmodel.KingsfordShape(), []int{1, 2, 4, 8, 16, 32, 64, 128, 256})
	if err != nil {
		return nil, err
	}
	proj := projectionTable("Figure 2a — Kingsford strong scaling (cost-model projection, full scale)", points, false)
	ds, err := kingsfordProxy(scale)
	if err != nil {
		return nil, err
	}
	meas, err := measuredScalingTable("Figure 2a — Kingsford strong scaling (measured, scaled proxy)", ds, ranksFor(scale), 4, 1)
	if err != nil {
		return nil, err
	}
	return []Table{proj, meas}, nil
}

// Fig2bBIGSIStrongScaling reproduces Figure 2b: strong scaling on the BIGSI
// dataset.
func Fig2bBIGSIStrongScaling(scale Scale) ([]Table, error) {
	machine := costmodel.Stampede2KNL()
	points, err := costmodel.StrongScaling(machine, costmodel.BIGSIShape(), []int{128, 256, 512, 1024})
	if err != nil {
		return nil, err
	}
	proj := projectionTable("Figure 2b — BIGSI strong scaling (cost-model projection, full scale)", points, true)
	ds, err := bigsiProxy(scale)
	if err != nil {
		return nil, err
	}
	meas, err := measuredScalingTable("Figure 2b — BIGSI strong scaling (measured, scaled proxy)", ds, ranksFor(scale), 4, 2)
	if err != nil {
		return nil, err
	}
	return []Table{proj, meas}, nil
}

// batchSensitivityTables builds the projection and measurement for a batch
// size sensitivity figure.
func batchSensitivityTables(name string, shape costmodel.DatasetShape, nodes int, projBatches []int,
	ds core.Dataset, ranks int, measuredBatches []int, longRun bool) ([]Table, error) {
	machine := costmodel.Stampede2KNL()
	points, err := costmodel.BatchSensitivity(machine, shape, nodes, projBatches)
	if err != nil {
		return nil, err
	}
	proj := projectionTable(fmt.Sprintf("%s (cost-model projection, full scale, %d nodes)", name, nodes), points, longRun)
	meas := Table{Title: fmt.Sprintf("%s (measured, scaled proxy, %d ranks)", name, ranks), Header: measuredHeader}
	for _, b := range measuredBatches {
		row, _, err := measuredRun(ds, ranks, b, 1)
		if err != nil {
			return nil, err
		}
		meas.Rows = append(meas.Rows, row)
	}
	return []Table{proj, meas}, nil
}

// Fig2cBatchSensitivityKingsford reproduces Figure 2c.
func Fig2cBatchSensitivityKingsford(scale Scale) ([]Table, error) {
	ds, err := kingsfordProxy(scale)
	if err != nil {
		return nil, err
	}
	measuredBatches := []int{16, 8, 4, 2, 1}
	return batchSensitivityTables("Figure 2c — Kingsford batch-size sensitivity",
		costmodel.KingsfordShape(), 8, []int{16384, 8192, 4096, 2048, 1024},
		ds, 4, measuredBatches, false)
}

// Fig2dBatchSensitivityBIGSI reproduces Figure 2d.
func Fig2dBatchSensitivityBIGSI(scale Scale) ([]Table, error) {
	ds, err := bigsiProxy(scale)
	if err != nil {
		return nil, err
	}
	measuredBatches := []int{16, 8, 4, 2, 1}
	return batchSensitivityTables("Figure 2d — BIGSI batch-size sensitivity",
		costmodel.BIGSIShape(), 128, []int{262144, 131072, 65536, 32768, 16384},
		ds, 4, measuredBatches, true)
}

// Fig2eSyntheticStrongScaling reproduces Figure 2e: strong scaling on the
// synthetic dataset (paper: m = 32M, n = 10k, p = 0.01, 1–64 nodes).
func Fig2eSyntheticStrongScaling(scale Scale) ([]Table, error) {
	machine := costmodel.Stampede2KNL()
	shape := costmodel.DatasetShape{
		Name:          "synthetic m=32M n=10k p=0.01",
		Samples:       10000,
		Attributes:    32e6,
		TotalNonzeros: 32e6 * 10000 * 0.01,
	}
	points, err := costmodel.StrongScaling(machine, shape, []int{1, 2, 4, 8, 16, 32, 64})
	if err != nil {
		return nil, err
	}
	proj := projectionTable("Figure 2e — synthetic strong scaling (cost-model projection, full scale)", points, false)

	samples, attrs := 128, uint64(20000)
	if scale == Medium {
		samples, attrs = 384, 60000
	}
	ds, err := synth.Generate(synth.Config{Samples: samples, Attributes: attrs, Density: 0.01, Seed: 5})
	if err != nil {
		return nil, err
	}
	meas, err := measuredScalingTable("Figure 2e — synthetic strong scaling (measured, scaled proxy)", ds, ranksFor(scale), 4, 1)
	if err != nil {
		return nil, err
	}
	return []Table{proj, meas}, nil
}

// Fig2fSyntheticWeakScaling reproduces Figure 2f: weak scaling where the
// matrix grows with the core count (paper: 50k×500 on 1 core up to
// 3.2M×32k on 4096 cores, p = 0.01).
func Fig2fSyntheticWeakScaling(scale Scale) ([]Table, error) {
	machine := costmodel.Stampede2KNL()
	points, err := costmodel.WeakScaling(machine, 50_000, 500, 0.01, []int{1, 4, 16, 64, 256, 1024, 4096})
	if err != nil {
		return nil, err
	}
	proj := Table{
		Title:  "Figure 2f — synthetic weak scaling (cost-model projection, full scale)",
		Header: []string{"Ranks", "#k-mers", "#samples", "Work/rank (ops)", "Projected time"},
	}
	base := points[0]
	for _, p := range points {
		proj.AddRow(itoa(p.Ranks), fmt.Sprintf("%.3g", p.Attributes), itoa(p.Samples),
			fmt.Sprintf("%.3g (×%.1f)", p.WorkPerRank, p.WorkPerRank/base.WorkPerRank),
			seconds(p.TotalSeconds))
	}

	meas := Table{Title: "Figure 2f — synthetic weak scaling (measured, scaled proxy)", Header: measuredHeader}
	baseSamples, baseAttrs := 48, 8000
	if scale == Medium {
		baseSamples, baseAttrs = 96, 20000
	}
	for _, r := range []int{1, 4, 16} {
		grow := 1
		for g := 1; g*g <= r; g++ {
			if g*g == r {
				grow = g
			}
		}
		ds, err := synth.Generate(synth.Config{
			Samples:    baseSamples * grow,
			Attributes: uint64(baseAttrs * grow),
			Density:    0.01,
			Seed:       6,
		})
		if err != nil {
			return nil, err
		}
		row, _, err := measuredRun(ds, r, 2, 1)
		if err != nil {
			return nil, err
		}
		meas.Rows = append(meas.Rows, row)
	}
	return []Table{proj, meas}, nil
}

// Fig3SparsitySweep reproduces Figure 3: runtime against data sparsity
// (paper: n = 10k, m = 32M, 16 nodes, 4 batches, p from 1e-4 to 1e-2).
func Fig3SparsitySweep(scale Scale) ([]Table, error) {
	machine := costmodel.Stampede2KNL()
	densities := []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2}
	points, err := costmodel.SparsitySweep(machine, 32e6, 10000, 16, 4, densities)
	if err != nil {
		return nil, err
	}
	proj := Table{
		Title:  "Figure 3 — sparsity sensitivity (cost-model projection, full scale, 16 nodes, 4 batches)",
		Header: []string{"Density p", "Time/batch", "Total"},
	}
	for _, p := range points {
		proj.AddRow(fmt.Sprintf("%.0e", p.Density), seconds(p.BatchSeconds), seconds(p.TotalSeconds))
	}

	meas := Table{
		Title:  "Figure 3 — sparsity sensitivity (measured, scaled proxy, 4 ranks, 2 batches)",
		Header: append([]string{"Density p"}, measuredHeader...),
	}
	samples, attrs := 96, uint64(50000)
	if scale == Medium {
		samples, attrs = 192, 150000
	}
	for _, d := range []float64{1e-3, 3e-3, 1e-2, 3e-2} {
		ds, err := synth.Generate(synth.Config{Samples: samples, Attributes: attrs, Density: d, Seed: 8})
		if err != nil {
			return nil, err
		}
		row, _, err := measuredRun(ds, 4, 2, 1)
		if err != nil {
			return nil, err
		}
		meas.Rows = append(meas.Rows, append([]string{fmt.Sprintf("%.0e", d)}, row...))
	}
	return []Table{proj, meas}, nil
}

// MCDRAMAblation reproduces the Section V-D comparison: per-batch time with
// MCDRAM as cache versus as addressable memory, on the Kingsford dataset at
// 4 and 32 nodes.
func MCDRAMAblation() Table {
	t := Table{
		Title:  "Section V-D — MCDRAM ablation (cost-model projection, Kingsford)",
		Header: []string{"Nodes", "Time/batch (MCDRAM as L3)", "Time/batch (no MCDRAM cache)", "Slowdown"},
	}
	for _, nodes := range []int{4, 32} {
		batches := costmodel.Batches(costmodel.Stampede2KNL(), costmodel.KingsfordShape().TotalNonzeros, nodes*32)
		with, without := costmodel.MCDRAMComparison(costmodel.KingsfordShape(), nodes, batches)
		t.AddRow(itoa(nodes), seconds(with), seconds(without), fmt.Sprintf("%.2f%%", 100*(without-with)/with))
	}
	return t
}

// AccuracyExactVsMinHash reproduces the accuracy motivation of Sections I
// and II: the exact Jaccard values computed by SimilarityAtScale against
// MinHash estimates at several sketch sizes, across a range of true
// similarities (MinHash degrades for highly similar and highly dissimilar
// pairs unless sketches are large).
func AccuracyExactVsMinHash(scale Scale) (Table, error) {
	setSize := 5000
	if scale == Medium {
		setSize = 20000
	}
	sketchSizes := []int{100, 1000, 10000}
	t := Table{
		Title:  "Accuracy — exact Jaccard (SimilarityAtScale) vs MinHash estimates",
		Header: []string{"True J", "Exact (pipeline)", "MinHash s=100", "MinHash s=1000", "MinHash s=10000", "Max |error| s=100"},
	}
	rng := synth.NewRNG(77)
	for _, target := range []float64{0.05, 0.5, 0.9, 0.99, 0.999} {
		x, y := synth.PairWithJaccard(rng, uint64(1)<<40, setSize, target)
		ds, err := core.NewInMemoryDataset([]string{"x", "y"}, [][]uint64{x, y}, uint64(1)<<40)
		if err != nil {
			return Table{}, err
		}
		res, err := core.ComputeSequential(ds, core.DefaultOptions())
		if err != nil {
			return Table{}, err
		}
		exact := res.Similarity(0, 1)
		row := []string{fmt.Sprintf("%.3f", target), fmt.Sprintf("%.5f", exact)}
		var worst float64
		for i, s := range sketchSizes {
			est, err := minhash.EstimateJaccard(minhash.MustNew(x, s), minhash.MustNew(y, s))
			if err != nil {
				return Table{}, err
			}
			row = append(row, fmt.Sprintf("%.5f", est))
			if i == 0 {
				worst = est - exact
				if worst < 0 {
					worst = -worst
				}
			}
		}
		row = append(row, fmt.Sprintf("%.5f", worst))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationBitmask compares the bitmask widths of Section III-B (b = 1, i.e.
// effectively uncompressed, against b = 32 and b = 64) on the same scaled
// Kingsford proxy: identical results, different packed-word counts and
// runtimes.
func AblationBitmask(scale Scale) (Table, error) {
	ds, err := kingsfordProxy(scale)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  "Ablation — bitmask compression width b (Section III-B design choice)",
		Header: []string{"Mask bits b", "Time total", "Comm volume", "Projected (Stampede2)", "Result identical to b=64"},
	}
	reference, err := runWithMask(ds, 64)
	if err != nil {
		return Table{}, err
	}
	for _, b := range []int{1, 8, 32, 64} {
		res, err := runWithMask(ds, b)
		if err != nil {
			return Table{}, err
		}
		identical := sameSimilarity(reference, res)
		t.AddRow(itoa(b), seconds(res.Stats.TotalSeconds), mb(float64(res.Stats.Comm.TotalBytes)),
			seconds(costmodel.TimeFromStats(costmodel.Stampede2KNL(), res.Stats.Comm)), fmt.Sprintf("%v", identical))
	}
	return t, nil
}

func runWithMask(ds core.Dataset, maskBits int) (*core.Result, error) {
	opts := core.DefaultOptions()
	opts.Procs = 4
	opts.BatchCount = 2
	opts.MaskBits = maskBits
	return core.Compute(ds, opts)
}

func sameSimilarity(a, b *core.Result) bool {
	if a.S == nil || b.S == nil || len(a.S.Data) != len(b.S.Data) {
		return false
	}
	for i := range a.S.Data {
		d := a.S.Data[i] - b.S.Data[i]
		if d > 1e-12 || d < -1e-12 {
			return false
		}
	}
	return true
}

// AblationReplication compares processor-grid replication factors c
// (Section III-C design choice) on the same dataset and rank count,
// reporting the communication volume trade-off.
func AblationReplication(scale Scale) (Table, error) {
	ds, err := kingsfordProxy(scale)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  "Ablation — replication factor c of the √(p/c)×√(p/c)×c grid (8 ranks)",
		Header: measuredHeader,
	}
	for _, c := range []int{1, 2, 4, 8} {
		row, _, err := measuredRun(ds, 8, 2, c)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// All returns every figure and table of the evaluation, in paper order.
func All(scale Scale) ([]Table, error) {
	var out []Table
	out = append(out, Table2())
	appendAll := func(tables []Table, err error) error {
		if err != nil {
			return err
		}
		out = append(out, tables...)
		return nil
	}
	if err := appendAll(Fig2aKingsfordStrongScaling(scale)); err != nil {
		return nil, err
	}
	if err := appendAll(Fig2bBIGSIStrongScaling(scale)); err != nil {
		return nil, err
	}
	if err := appendAll(Fig2cBatchSensitivityKingsford(scale)); err != nil {
		return nil, err
	}
	if err := appendAll(Fig2dBatchSensitivityBIGSI(scale)); err != nil {
		return nil, err
	}
	if err := appendAll(Fig2eSyntheticStrongScaling(scale)); err != nil {
		return nil, err
	}
	if err := appendAll(Fig2fSyntheticWeakScaling(scale)); err != nil {
		return nil, err
	}
	if err := appendAll(Fig3SparsitySweep(scale)); err != nil {
		return nil, err
	}
	out = append(out, MCDRAMAblation())
	acc, err := AccuracyExactVsMinHash(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, acc)
	bm, err := AblationBitmask(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, bm)
	rep, err := AblationReplication(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, rep)
	comp, err := CompressionStats(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, comp)
	return out, nil
}
