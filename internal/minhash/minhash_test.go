package minhash_test

import (
	"math"
	"testing"

	"genomeatscale/internal/core"
	"genomeatscale/internal/minhash"
	"genomeatscale/internal/synth"
)

func TestNewValidation(t *testing.T) {
	if _, err := minhash.New([]uint64{1, 2}, 0); err == nil {
		t.Error("size 0 should error")
	}
	s, err := minhash.New([]uint64{1, 2, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Hashes) != 3 {
		t.Errorf("sketch of small set should keep all hashes, got %d", len(s.Hashes))
	}
	for i := 1; i < len(s.Hashes); i++ {
		if s.Hashes[i-1] >= s.Hashes[i] {
			t.Error("hashes must be sorted and distinct")
		}
	}
	big := minhash.MustNew(manyValues(5000), 100)
	if len(big.Hashes) != 100 {
		t.Errorf("sketch size = %d, want 100", len(big.Hashes))
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	minhash.MustNew(nil, 0)
}

func manyValues(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i) * 2654435761
	}
	return out
}

func TestEstimateIdenticalAndDisjoint(t *testing.T) {
	vals := manyValues(3000)
	a := minhash.MustNew(vals, 200)
	b := minhash.MustNew(vals, 200)
	j, err := minhash.EstimateJaccard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if j != 1 {
		t.Errorf("identical sets estimate = %v, want 1", j)
	}
	other := make([]uint64, 3000)
	for i := range other {
		other[i] = uint64(i+1000000) * 40503
	}
	c := minhash.MustNew(other, 200)
	j, err = minhash.EstimateJaccard(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if j > 0.05 {
		t.Errorf("disjoint sets estimate = %v, want ≈0", j)
	}
}

// TestEstimateEmptySets pins the empty-set convention: two empty sketches
// estimate J = 0, exactly like the exact kernel (dist.Jaccard via
// core.JaccardPair). Anything else would let empty samples pair as perfect
// matches and flood thresholded runs once sketches gate the exact tier.
func TestEstimateEmptySets(t *testing.T) {
	a := minhash.MustNew(nil, 10)
	b := minhash.MustNew(nil, 10)
	j, err := minhash.EstimateJaccard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if j != 0 {
		t.Errorf("empty vs empty = %v, want 0", j)
	}
	if exact := core.JaccardPair(nil, nil); exact != j {
		t.Errorf("sketch estimate %v disagrees with exact kernel %v on empty sets", j, exact)
	}
	// One empty side: both tiers must agree on 0 as well.
	c := minhash.MustNew([]uint64{1, 2, 3}, 10)
	j, err = minhash.EstimateJaccard(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if exact := core.JaccardPair(nil, []uint64{1, 2, 3}); j != 0 || exact != 0 {
		t.Errorf("empty vs non-empty: sketch %v, exact %v, want 0 for both", j, exact)
	}
}

func TestEstimateSizeMismatch(t *testing.T) {
	a := minhash.MustNew([]uint64{1}, 10)
	b := minhash.MustNew([]uint64{1}, 20)
	if _, err := minhash.EstimateJaccard(a, b); err == nil {
		t.Error("size mismatch should error")
	}
	if _, err := minhash.EstimateAtLeast(a, b, 0.5); err == nil {
		t.Error("size mismatch should error in EstimateAtLeast too")
	}
}

// TestEstimateAtLeastMatchesEstimate pins the early-exit gate predicate to
// the full estimator: across similarity targets, sketch sizes, set sizes
// (including empty and sub-sketch-size sets) and thresholds — boundary
// values included — EstimateAtLeast(a, b, τ) must equal
// EstimateJaccard(a, b) ≥ τ in every single case.
func TestEstimateAtLeastMatchesEstimate(t *testing.T) {
	rng := synth.NewRNG(31)
	sizes := []int{1, 16, 256}
	var sketchPairs [][2]minhash.Sketch
	for _, size := range sizes {
		for _, target := range []float64{0, 0.1, 0.5, 0.8, 0.95, 1} {
			for _, n := range []int{0, 3, 100, 2000} {
				x, y := synth.PairWithJaccard(rng, 1<<40, n, target)
				sketchPairs = append(sketchPairs, [2]minhash.Sketch{
					minhash.MustNew(x, size), minhash.MustNew(y, size),
				})
			}
		}
	}
	for _, p := range sketchPairs {
		est, err := minhash.EstimateJaccard(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		// Boundary taus: exactly est, one count either side, and extremes.
		k := float64(p[0].Size)
		for _, tau := range []float64{-0.1, 0, est - 1/k, est, est + 1/k, 0.5, 0.7, 1, 1.1} {
			got, err := minhash.EstimateAtLeast(p[0], p[1], tau)
			if err != nil {
				t.Fatal(err)
			}
			if want := est >= tau; got != want {
				t.Fatalf("EstimateAtLeast(τ=%v) = %v, but EstimateJaccard = %v (k=%d, |a|=%d, |b|=%d)",
					tau, got, est, p[0].Size, len(p[0].Hashes), len(p[1].Hashes))
			}
		}
	}
}

func TestEstimateAccuracyAcrossSimilarities(t *testing.T) {
	rng := synth.NewRNG(5)
	for _, target := range []float64{0.1, 0.3, 0.5, 0.8, 0.95} {
		x, y := synth.PairWithJaccard(rng, 1<<40, 5000, target)
		exact := core.JaccardPair(sortedCopy(x), sortedCopy(y))
		a := minhash.MustNew(x, 1000)
		b := minhash.MustNew(y, 1000)
		est, err := minhash.EstimateJaccard(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-exact) > 0.06 {
			t.Errorf("target %v: estimate %v vs exact %v", target, est, exact)
		}
	}
}

// Smaller sketches must (statistically) give worse estimates for very
// similar pairs — the paper's motivation for exact computation. We check
// that the small-sketch error is at least as large as the big-sketch error
// on average over several trials.
func TestSmallSketchLosesAccuracy(t *testing.T) {
	rng := synth.NewRNG(17)
	var smallErr, bigErr float64
	const trials = 12
	for i := 0; i < trials; i++ {
		x, y := synth.PairWithJaccard(rng, 1<<40, 8000, 0.97)
		exact := core.JaccardPair(sortedCopy(x), sortedCopy(y))
		small, _ := minhash.EstimateJaccard(minhash.MustNew(x, 50), minhash.MustNew(y, 50))
		big, _ := minhash.EstimateJaccard(minhash.MustNew(x, 4000), minhash.MustNew(y, 4000))
		smallErr += math.Abs(small - exact)
		bigErr += math.Abs(big - exact)
	}
	if smallErr < bigErr {
		t.Errorf("small sketches should not beat large sketches on average: small=%v big=%v", smallErr, bigErr)
	}
}

func TestMashDistance(t *testing.T) {
	mash := func(j float64, k int) float64 {
		d, err := minhash.MashDistance(j, k)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if mash(1, 21) != 0 {
		t.Error("J=1 → distance 0")
	}
	if mash(0, 21) != 1 {
		t.Error("J=0 → distance 1")
	}
	d := mash(0.9, 21)
	if d <= 0 || d >= 0.01 {
		t.Errorf("minhash.MashDistance(0.9,21) = %v, expected small positive", d)
	}
	// Monotonicity: higher similarity → smaller distance.
	prev := 1.0
	for _, j := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		d := mash(j, 31)
		if d >= prev {
			t.Errorf("MashDistance not monotone at J=%v", j)
		}
		prev = d
	}
}

// A non-positive k is a propagated error, not a panic (the PR 5 "corrupt
// input is a run error" rule).
func TestMashDistanceError(t *testing.T) {
	for _, k := range []int{0, -3} {
		if _, err := minhash.MashDistance(0.5, k); err == nil {
			t.Errorf("k=%d should error", k)
		}
	}
}

func TestEstimateMatrix(t *testing.T) {
	rng := synth.NewRNG(9)
	x, y := synth.PairWithJaccard(rng, 1<<40, 2000, 0.5)
	sketches := []minhash.Sketch{minhash.MustNew(x, 500), minhash.MustNew(y, 500), minhash.MustNew(nil, 500)}
	m, err := minhash.EstimateMatrix(sketches)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatal("wrong matrix size")
	}
	for i := range m {
		want := 1.0
		if len(sketches[i].Hashes) == 0 {
			want = 0 // empty sample: J(∅, ∅) = 0, matching the exact kernel
		}
		if m[i][i] != want {
			t.Errorf("diagonal[%d] = %v, want %v", i, m[i][i], want)
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Error("matrix must be symmetric")
			}
		}
	}
	if math.Abs(m[0][1]-0.5) > 0.1 {
		t.Errorf("m[0][1] = %v, want ≈0.5", m[0][1])
	}
	bad := []minhash.Sketch{minhash.MustNew(x, 10), minhash.MustNew(y, 20)}
	if _, err := minhash.EstimateMatrix(bad); err == nil {
		t.Error("mismatched sketches should error")
	}
}

// TestBuilderMatchesNew pins the property the engine's batch-wise sketch
// pass relies on: feeding a sample's values to a Builder in arbitrary
// chunks yields exactly the sketch New builds from the full value list.
func TestBuilderMatchesNew(t *testing.T) {
	rng := synth.NewRNG(23)
	for _, n := range []int{0, 1, 50, 500, 5000} {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() >> 20 // force occasional duplicates
		}
		for _, size := range []int{1, 7, 64, 256} {
			want := minhash.MustNew(vals, size)
			b, err := minhash.NewBuilder(size)
			if err != nil {
				t.Fatal(err)
			}
			for lo := 0; lo < len(vals); {
				hi := lo + 1 + int(rng.Uint64()%97)
				if hi > len(vals) {
					hi = len(vals)
				}
				b.Add(vals[lo:hi])
				lo = hi
			}
			got := b.Sketch()
			if got.Size != want.Size || !equalU64(got.Hashes, want.Hashes) {
				t.Fatalf("n=%d size=%d: builder sketch differs from New", n, size)
			}
		}
	}
	if _, err := minhash.NewBuilder(0); err == nil {
		t.Error("minhash.NewBuilder(0) should error")
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedCopy(xs []uint64) []uint64 {
	out := append([]uint64(nil), xs...)
	for i := 1; i < len(out); i++ {
		v := out[i]
		j := i - 1
		for j >= 0 && out[j] > v {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = v
	}
	return out
}
