package minhash

import (
	"math"
	"testing"

	"genomeatscale/internal/core"
	"genomeatscale/internal/synth"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]uint64{1, 2}, 0); err == nil {
		t.Error("size 0 should error")
	}
	s, err := New([]uint64{1, 2, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Hashes) != 3 {
		t.Errorf("sketch of small set should keep all hashes, got %d", len(s.Hashes))
	}
	for i := 1; i < len(s.Hashes); i++ {
		if s.Hashes[i-1] >= s.Hashes[i] {
			t.Error("hashes must be sorted and distinct")
		}
	}
	big := MustNew(manyValues(5000), 100)
	if len(big.Hashes) != 100 {
		t.Errorf("sketch size = %d, want 100", len(big.Hashes))
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustNew(nil, 0)
}

func manyValues(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i) * 2654435761
	}
	return out
}

func TestEstimateIdenticalAndDisjoint(t *testing.T) {
	vals := manyValues(3000)
	a := MustNew(vals, 200)
	b := MustNew(vals, 200)
	j, err := EstimateJaccard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if j != 1 {
		t.Errorf("identical sets estimate = %v, want 1", j)
	}
	other := make([]uint64, 3000)
	for i := range other {
		other[i] = uint64(i+1000000) * 40503
	}
	c := MustNew(other, 200)
	j, err = EstimateJaccard(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if j > 0.05 {
		t.Errorf("disjoint sets estimate = %v, want ≈0", j)
	}
}

func TestEstimateEmptySets(t *testing.T) {
	a := MustNew(nil, 10)
	b := MustNew(nil, 10)
	j, err := EstimateJaccard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if j != 1 {
		t.Errorf("empty vs empty = %v, want 1", j)
	}
}

func TestEstimateSizeMismatch(t *testing.T) {
	a := MustNew([]uint64{1}, 10)
	b := MustNew([]uint64{1}, 20)
	if _, err := EstimateJaccard(a, b); err == nil {
		t.Error("size mismatch should error")
	}
}

func TestEstimateAccuracyAcrossSimilarities(t *testing.T) {
	rng := synth.NewRNG(5)
	for _, target := range []float64{0.1, 0.3, 0.5, 0.8, 0.95} {
		x, y := synth.PairWithJaccard(rng, 1<<40, 5000, target)
		exact := core.JaccardPair(sortedCopy(x), sortedCopy(y))
		a := MustNew(x, 1000)
		b := MustNew(y, 1000)
		est, err := EstimateJaccard(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-exact) > 0.06 {
			t.Errorf("target %v: estimate %v vs exact %v", target, est, exact)
		}
	}
}

// Smaller sketches must (statistically) give worse estimates for very
// similar pairs — the paper's motivation for exact computation. We check
// that the small-sketch error is at least as large as the big-sketch error
// on average over several trials.
func TestSmallSketchLosesAccuracy(t *testing.T) {
	rng := synth.NewRNG(17)
	var smallErr, bigErr float64
	const trials = 12
	for i := 0; i < trials; i++ {
		x, y := synth.PairWithJaccard(rng, 1<<40, 8000, 0.97)
		exact := core.JaccardPair(sortedCopy(x), sortedCopy(y))
		small, _ := EstimateJaccard(MustNew(x, 50), MustNew(y, 50))
		big, _ := EstimateJaccard(MustNew(x, 4000), MustNew(y, 4000))
		smallErr += math.Abs(small - exact)
		bigErr += math.Abs(big - exact)
	}
	if smallErr < bigErr {
		t.Errorf("small sketches should not beat large sketches on average: small=%v big=%v", smallErr, bigErr)
	}
}

func TestMashDistance(t *testing.T) {
	if MashDistance(1, 21) != 0 {
		t.Error("J=1 → distance 0")
	}
	if MashDistance(0, 21) != 1 {
		t.Error("J=0 → distance 1")
	}
	d := MashDistance(0.9, 21)
	if d <= 0 || d >= 0.01 {
		t.Errorf("MashDistance(0.9,21) = %v, expected small positive", d)
	}
	// Monotonicity: higher similarity → smaller distance.
	prev := 1.0
	for _, j := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		d := MashDistance(j, 31)
		if d >= prev {
			t.Errorf("MashDistance not monotone at J=%v", j)
		}
		prev = d
	}
}

func TestMashDistancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MashDistance(0.5, 0)
}

func TestEstimateMatrix(t *testing.T) {
	rng := synth.NewRNG(9)
	x, y := synth.PairWithJaccard(rng, 1<<40, 2000, 0.5)
	sketches := []Sketch{MustNew(x, 500), MustNew(y, 500), MustNew(nil, 500)}
	m, err := EstimateMatrix(sketches)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatal("wrong matrix size")
	}
	for i := range m {
		if m[i][i] != 1 {
			t.Error("diagonal must be 1")
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Error("matrix must be symmetric")
			}
		}
	}
	if math.Abs(m[0][1]-0.5) > 0.1 {
		t.Errorf("m[0][1] = %v, want ≈0.5", m[0][1])
	}
	bad := []Sketch{MustNew(x, 10), MustNew(y, 20)}
	if _, err := EstimateMatrix(bad); err == nil {
		t.Error("mismatched sketches should error")
	}
}

func sortedCopy(xs []uint64) []uint64 {
	out := append([]uint64(nil), xs...)
	for i := 1; i < len(out); i++ {
		v := out[i]
		j := i - 1
		for j >= 0 && out[j] > v {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = v
	}
	return out
}
