// Package minhash implements a bottom-k MinHash sketch and the Mash
// distance, the locality-sensitive-hashing baseline the paper positions
// itself against (Section I: MinHash "often lead[s] to inaccurate
// approximations of d_J for highly similar pairs ... and tend[s] to be
// ineffective for computation of a distance between highly dissimilar sets
// unless very large sketch sizes are used"). The accuracy benchmarks use
// this package to reproduce that comparison against the exact Jaccard
// values computed by SimilarityAtScale.
package minhash

import (
	"fmt"
	"math"
	"slices"
)

// Sketch is a bottom-k MinHash sketch: the k smallest hash values of a set.
type Sketch struct {
	// Size is the requested sketch size (number of retained hashes).
	Size int
	// Hashes holds the smallest Size hash values, sorted ascending. Sets
	// with fewer than Size elements yield shorter sketches.
	Hashes []uint64
}

// hash64 is a fixed 64-bit mixer (splitmix64 finaliser) applied to each
// element; using a deterministic hash keeps sketches comparable across
// runs, as Mash does with a fixed seed.
func hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// New builds a bottom-k sketch of the given attribute set.
func New(values []uint64, size int) (Sketch, error) {
	if size <= 0 {
		return Sketch{}, fmt.Errorf("minhash: sketch size must be positive, got %d", size)
	}
	hashes := make([]uint64, 0, len(values))
	seen := make(map[uint64]struct{}, len(values))
	for _, v := range values {
		h := hash64(v)
		if _, dup := seen[h]; dup {
			continue
		}
		seen[h] = struct{}{}
		hashes = append(hashes, h)
	}
	slices.Sort(hashes)
	if len(hashes) > size {
		hashes = hashes[:size]
	}
	return Sketch{Size: size, Hashes: slices.Clip(hashes)}, nil
}

// MustNew is New that panics on error.
func MustNew(values []uint64, size int) Sketch {
	s, err := New(values, size)
	if err != nil {
		panic(err)
	}
	return s
}

// EstimateJaccard estimates J(A, B) from two bottom-k sketches using the
// standard merged-bottom-k estimator: among the k smallest hashes of the
// union, the fraction present in both sketches.
func EstimateJaccard(a, b Sketch) (float64, error) {
	if a.Size != b.Size {
		return 0, fmt.Errorf("minhash: sketch sizes differ (%d vs %d)", a.Size, b.Size)
	}
	if len(a.Hashes) == 0 && len(b.Hashes) == 0 {
		return 1, nil // both sets empty
	}
	// Merge the two sorted hash lists, keeping the k smallest distinct
	// values of the union and counting how many appear in both.
	k := a.Size
	i, j, taken, shared := 0, 0, 0, 0
	for taken < k && (i < len(a.Hashes) || j < len(b.Hashes)) {
		switch {
		case j >= len(b.Hashes) || (i < len(a.Hashes) && a.Hashes[i] < b.Hashes[j]):
			i++
		case i >= len(a.Hashes) || b.Hashes[j] < a.Hashes[i]:
			j++
		default: // equal → in both
			shared++
			i++
			j++
		}
		taken++
	}
	if taken == 0 {
		return 1, nil
	}
	return float64(shared) / float64(taken), nil
}

// MashDistance converts a Jaccard estimate into the Mash distance for
// k-mers of length k (Ondov et al. 2016, Eq. 4):
// D = -(1/k) · ln(2j / (1 + j)), clamped to [0, 1].
func MashDistance(jaccard float64, k int) float64 {
	if k <= 0 {
		panic(fmt.Sprintf("minhash: non-positive k %d", k))
	}
	if jaccard <= 0 {
		return 1
	}
	if jaccard >= 1 {
		return 0
	}
	d := -math.Log(2*jaccard/(1+jaccard)) / float64(k)
	if d > 1 {
		return 1
	}
	if d < 0 {
		return 0
	}
	return d
}

// EstimateMatrix estimates the full pairwise Jaccard similarity matrix from
// per-sample sketches; it is the sketch-based counterpart of
// core.ExactJaccard used by the accuracy benchmarks.
func EstimateMatrix(sketches []Sketch) ([][]float64, error) {
	n := len(sketches)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		out[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			est, err := EstimateJaccard(sketches[i], sketches[j])
			if err != nil {
				return nil, err
			}
			out[i][j] = est
			out[j][i] = est
		}
	}
	return out, nil
}
