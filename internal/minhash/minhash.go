// Package minhash implements a bottom-k MinHash sketch and the Mash
// distance, the locality-sensitive-hashing baseline the paper positions
// itself against (Section I: MinHash "often lead[s] to inaccurate
// approximations of d_J for highly similar pairs ... and tend[s] to be
// ineffective for computation of a distance between highly dissimilar sets
// unless very large sketch sizes are used"). The accuracy benchmarks use
// this package to reproduce that comparison against the exact Jaccard
// values computed by SimilarityAtScale.
package minhash

import (
	"fmt"
	"math"
	"slices"
)

// Sketch is a bottom-k MinHash sketch: the k smallest hash values of a set.
type Sketch struct {
	// Size is the requested sketch size (number of retained hashes).
	Size int
	// Hashes holds the smallest Size hash values, sorted ascending. Sets
	// with fewer than Size elements yield shorter sketches.
	Hashes []uint64
}

// hash64 is a fixed 64-bit mixer (splitmix64 finaliser) applied to each
// element; using a deterministic hash keeps sketches comparable across
// runs, as Mash does with a fixed seed.
func hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// New builds a bottom-k sketch of the given attribute set.
func New(values []uint64, size int) (Sketch, error) {
	if size <= 0 {
		return Sketch{}, fmt.Errorf("minhash: sketch size must be positive, got %d", size)
	}
	hashes := make([]uint64, 0, len(values))
	seen := make(map[uint64]struct{}, len(values))
	for _, v := range values {
		h := hash64(v)
		if _, dup := seen[h]; dup {
			continue
		}
		seen[h] = struct{}{}
		hashes = append(hashes, h)
	}
	slices.Sort(hashes)
	if len(hashes) > size {
		hashes = hashes[:size]
	}
	return Sketch{Size: size, Hashes: slices.Clip(hashes)}, nil
}

// MustNew is New that panics on error.
func MustNew(values []uint64, size int) Sketch {
	s, err := New(values, size)
	if err != nil {
		//gas:invariant documented Must helper for static configurations; New is the checked path for untrusted sizes
		panic(err)
	}
	return s
}

// EstimateJaccard estimates J(A, B) from two bottom-k sketches using the
// standard merged-bottom-k estimator: among the k smallest hashes of the
// union, the fraction present in both sketches.
//
// Two empty sketches estimate 0, matching the exact kernel's
// J(∅, ∅) = 0 convention (dist.Jaccard): an empty sample shares nothing
// with anything, so it must not pair as a perfect match in thresholded
// runs.
func EstimateJaccard(a, b Sketch) (float64, error) {
	if a.Size != b.Size {
		return 0, fmt.Errorf("minhash: sketch sizes differ (%d vs %d)", a.Size, b.Size)
	}
	if len(a.Hashes) == 0 && len(b.Hashes) == 0 {
		return 0, nil // both sets empty: J(∅, ∅) = 0, as in dist.Jaccard
	}
	// Merge the two sorted hash lists, keeping the k smallest distinct
	// values of the union and counting how many appear in both.
	k := a.Size
	i, j, taken, shared := 0, 0, 0, 0
	for taken < k && (i < len(a.Hashes) || j < len(b.Hashes)) {
		switch {
		case j >= len(b.Hashes) || (i < len(a.Hashes) && a.Hashes[i] < b.Hashes[j]):
			i++
		case i >= len(a.Hashes) || b.Hashes[j] < a.Hashes[i]:
			j++
		default: // equal → in both
			shared++
			i++
			j++
		}
		taken++
	}
	if taken == 0 {
		return 0, nil
	}
	return float64(shared) / float64(taken), nil
}

// EstimateAtLeast reports whether EstimateJaccard(a, b) ≥ tau, with the
// same result but usually far less work: the merged bottom-k scan stops
// as soon as the running shared/taken counters bound the final estimate
// on one side of tau. For the prescreening gate's typical workload —
// mostly dissimilar pairs scanned against a high threshold — the scan
// ends after a small prefix of the sketches instead of all k positions.
//
// The early bounds keep a one-count margin, so any pair within one count
// of the boundary falls through to the exact final division; the decision
// is therefore always identical to computing EstimateJaccard and
// comparing, never off by floating-point rounding.
func EstimateAtLeast(a, b Sketch, tau float64) (bool, error) {
	if a.Size != b.Size {
		return false, fmt.Errorf("minhash: sketch sizes differ (%d vs %d)", a.Size, b.Size)
	}
	if len(a.Hashes) == 0 && len(b.Hashes) == 0 {
		return 0 >= tau, nil // est = 0, as in EstimateJaccard
	}
	k := a.Size
	target := tau * float64(k)
	i, j, taken, shared := 0, 0, 0, 0
	for taken < k && (i < len(a.Hashes) || j < len(b.Hashes)) {
		// est_final ≤ (shared + k − taken)/k: every further position adds at
		// most one shared count, and the bound is largest when the scan runs
		// the full k. est_final ≥ shared/k: shared never shrinks and the
		// denominator never exceeds k.
		if float64(shared+k-taken)+1 < target {
			return false, nil
		}
		if float64(shared)-1 >= target {
			return true, nil
		}
		switch {
		case j >= len(b.Hashes) || (i < len(a.Hashes) && a.Hashes[i] < b.Hashes[j]):
			i++
		case i >= len(a.Hashes) || b.Hashes[j] < a.Hashes[i]:
			j++
		default: // equal → in both
			shared++
			i++
			j++
		}
		taken++
	}
	if taken == 0 {
		return 0 >= tau, nil
	}
	return float64(shared)/float64(taken) >= tau, nil
}

// MashDistance converts a Jaccard estimate into the Mash distance for
// k-mers of length k (Ondov et al. 2016, Eq. 4):
// D = -(1/k) · ln(2j / (1 + j)), clamped to [0, 1]. A non-positive k is a
// propagated error, not a panic, so corrupt parameters surface as run
// errors on the engine path.
func MashDistance(jaccard float64, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("minhash: k-mer length must be positive, got %d", k)
	}
	if jaccard <= 0 {
		return 1, nil
	}
	if jaccard >= 1 {
		return 0, nil
	}
	d := -math.Log(2*jaccard/(1+jaccard)) / float64(k)
	if d > 1 {
		d = 1
	}
	if d < 0 {
		d = 0
	}
	return d, nil
}

// Builder accumulates a bottom-k sketch incrementally. Because
// bottom-k(A ∪ B) = bottom-k(bottom-k(A) ∪ bottom-k(B)), feeding a
// sample's attribute values batch range by batch range yields exactly the
// sketch New would build from the full set — this is what lets the
// engine's batch stage sketch out-of-core corpora without materialising
// whole samples.
//
// The hot path is one hash and one compare per value: hashes at or above
// the current k-th smallest are dropped immediately, and the surviving
// candidates are buffered and folded in by an occasional sort-and-merge
// compaction (amortised O(log k) per candidate) instead of per-value heap
// and hash-map maintenance, which would otherwise dominate on samples not
// much larger than the sketch.
type Builder struct {
	size    int
	sorted  []uint64 // bottom-k so far: sorted, distinct, len ≤ size
	pending []uint64 // unmerged candidates below the current threshold
}

// NewBuilder returns a Builder for sketches of the given size.
func NewBuilder(size int) (*Builder, error) {
	if size <= 0 {
		return nil, fmt.Errorf("minhash: sketch size must be positive, got %d", size)
	}
	return &Builder{size: size, pending: make([]uint64, 0, size)}, nil
}

// Add folds more attribute values into the sketch under construction.
func (b *Builder) Add(values []uint64) {
	// max is the rejection threshold: once the bottom-k is full, any hash
	// at or above its maximum is either outside the bottom-k or a
	// duplicate of that maximum — both ignorable.
	max := uint64(math.MaxUint64)
	full := len(b.sorted) == b.size
	if full {
		max = b.sorted[b.size-1]
	}
	for _, v := range values {
		h := hash64(v)
		if full && h >= max {
			continue
		}
		b.pending = append(b.pending, h)
		if len(b.pending) == cap(b.pending) {
			b.compact()
			if full = len(b.sorted) == b.size; full {
				max = b.sorted[b.size-1]
			}
		}
	}
}

// compact folds the pending candidates into the sorted bottom-k:
// sort, merge, de-duplicate, truncate to size.
func (b *Builder) compact() {
	if len(b.pending) == 0 {
		return
	}
	slices.Sort(b.pending)
	merged := make([]uint64, 0, min(len(b.sorted)+len(b.pending), b.size))
	i, j := 0, 0
	for len(merged) < b.size && (i < len(b.sorted) || j < len(b.pending)) {
		var h uint64
		switch {
		case j >= len(b.pending) || (i < len(b.sorted) && b.sorted[i] <= b.pending[j]):
			h = b.sorted[i]
			i++
		default:
			h = b.pending[j]
			j++
		}
		if n := len(merged); n > 0 && merged[n-1] == h {
			continue // duplicate value (hash64 is injective)
		}
		merged = append(merged, h)
	}
	b.sorted = merged
	b.pending = b.pending[:0]
}

// Sketch finalises the accumulated state into a Sketch. The Builder stays
// usable; later Adds keep refining the same sketch.
func (b *Builder) Sketch() Sketch {
	b.compact()
	return Sketch{Size: b.size, Hashes: slices.Clone(b.sorted)}
}

// EstimateMatrix estimates the full pairwise Jaccard similarity matrix from
// per-sample sketches; it is the sketch-based counterpart of
// core.ExactJaccard used by the accuracy benchmarks.
func EstimateMatrix(sketches []Sketch) ([][]float64, error) {
	n := len(sketches)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		// The diagonal goes through the estimator too, so an empty sample's
		// self-similarity is 0, matching the exact kernel's convention.
		est, err := EstimateJaccard(sketches[i], sketches[i])
		if err != nil {
			return nil, err
		}
		out[i][i] = est
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			est, err := EstimateJaccard(sketches[i], sketches[j])
			if err != nil {
				return nil, err
			}
			out[i][j] = est
			out[j][i] = est
		}
	}
	return out, nil
}
