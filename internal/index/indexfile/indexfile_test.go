package indexfile

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/minhash"
)

// fixtureFile builds a two-segment index with a hybrid packed layout,
// sketches (when sketchK > 0), and names including an empty one.
func fixtureFile(t *testing.T, sketchK int) *File {
	t.Helper()
	samples := [][]uint64{
		{2, 5, 9, 100, 101, 102, 103},
		{5, 9, 1000},
		{2, 100, 101, 102, 103, 104, 105, 106},
		{7},
	}
	names := []string{"alpha", "", "gamma", "delta"}
	seg1 := buildSegment(t, samples, names, sketchK, 2)
	seg2 := buildSegment(t, [][]uint64{{1, 2, 3, 4, 5}}, []string{"appended"}, sketchK, bitmat.DenseNever)
	return &File{B: 64, SketchK: sketchK, Segments: []*Segment{seg1, seg2}}
}

func buildSegment(t *testing.T, samples [][]uint64, names []string, sketchK, spec int) *Segment {
	t.Helper()
	union := map[uint64]int{}
	for _, s := range samples {
		for _, v := range s {
			union[v] = 0
		}
	}
	rowMap := make([]uint64, 0, len(union))
	for v := range union {
		rowMap = append(rowMap, v)
	}
	for i := 0; i < len(rowMap); i++ {
		for j := i + 1; j < len(rowMap); j++ {
			if rowMap[j] < rowMap[i] {
				rowMap[i], rowMap[j] = rowMap[j], rowMap[i]
			}
		}
	}
	for i, v := range rowMap {
		union[v] = i
	}
	rowsPerCol := make([][]int, len(samples))
	cards := make([]int64, len(samples))
	var sketches []minhash.Sketch
	for i, s := range samples {
		for _, v := range s {
			rowsPerCol[i] = append(rowsPerCol[i], union[v])
		}
		cards[i] = int64(len(s))
		if sketchK > 0 {
			sketches = append(sketches, minhash.MustNew(s, sketchK))
		}
	}
	return &Segment{
		RowMap:   rowMap,
		Cards:    cards,
		Names:    names,
		Pack:     bitmat.PackColumnsThreshold(rowsPerCol, len(rowMap), 64, spec),
		Sketches: sketches,
	}
}

func encode(t *testing.T, f *File) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func checkEqual(t *testing.T, got, want *File) {
	t.Helper()
	if got.B != want.B || got.SketchK != want.SketchK || len(got.Segments) != len(want.Segments) {
		t.Fatalf("header mismatch: got (%d,%d,%d segs), want (%d,%d,%d segs)",
			got.B, got.SketchK, len(got.Segments), want.B, want.SketchK, len(want.Segments))
	}
	for s, ws := range want.Segments {
		gs := got.Segments[s]
		if !reflect.DeepEqual(gs.RowMap, ws.RowMap) {
			t.Fatalf("segment %d: row map mismatch", s)
		}
		if !reflect.DeepEqual(gs.Cards, ws.Cards) {
			t.Fatalf("segment %d: cards mismatch", s)
		}
		if !reflect.DeepEqual(gs.Names, ws.Names) {
			t.Fatalf("segment %d: names %v, want %v", s, gs.Names, ws.Names)
		}
		if len(gs.Sketches) != len(ws.Sketches) {
			t.Fatalf("segment %d: %d sketches, want %d", s, len(gs.Sketches), len(ws.Sketches))
		}
		for j := range ws.Sketches {
			if gs.Sketches[j].Size != ws.Sketches[j].Size ||
				!reflect.DeepEqual(gs.Sketches[j].Hashes, ws.Sketches[j].Hashes) {
				t.Fatalf("segment %d sketch %d mismatch", s, j)
			}
		}
		wantGram := bitmat.GramBlock(ws.Pack, ws.Pack)
		gotGram := bitmat.GramBlock(gs.Pack, gs.Pack)
		if !reflect.DeepEqual(wantGram.Data, gotGram.Data) {
			t.Fatalf("segment %d: packed columns changed", s)
		}
		if gs.Pack.DenseThresholdSpec() != ws.Pack.DenseThresholdSpec() {
			t.Fatalf("segment %d: threshold spec changed", s)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, sketchK := range []int{0, 4} {
		f := fixtureFile(t, sketchK)
		data := encode(t, f)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("sketchK=%d: Decode: %v", sketchK, err)
		}
		checkEqual(t, got, f)
		// Canonical: re-encoding a decoded file is byte-identical.
		if !bytes.Equal(encode(t, got), data) {
			t.Fatalf("sketchK=%d: re-encode differs", sketchK)
		}
	}
}

func TestRoundTripEmptyFile(t *testing.T) {
	f := &File{B: 32}
	got, err := Decode(encode(t, f))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.B != 32 || len(got.Segments) != 0 {
		t.Fatalf("got B=%d, %d segments", got.B, len(got.Segments))
	}
}

func TestOpenMappedMatchesLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx")
	f := fixtureFile(t, 4)
	if err := WriteFile(path, f); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer m.Close()
	checkEqual(t, m.File, f)
	checkEqual(t, loaded, f)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestAppendSegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx")
	f := fixtureFile(t, 4)
	if err := WriteFile(path, f); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	extra := buildSegment(t, [][]uint64{{9, 10, 11}}, []string{"late"}, 4, bitmat.DenseAuto)
	if err := AppendSegment(path, extra, 64, 4); err != nil {
		t.Fatalf("AppendSegment: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile after append: %v", err)
	}
	want := &File{B: 64, SketchK: 4, Segments: append(append([]*Segment{}, f.Segments...), extra)}
	checkEqual(t, got, want)

	if err := AppendSegment(path, extra, 32, 4); err == nil {
		t.Fatal("AppendSegment accepted mismatched b")
	}
	if err := AppendSegment(path, extra, 64, 8); err == nil {
		t.Fatal("AppendSegment accepted mismatched sketch size")
	}
}

// TestTrailingUnpublishedSegment simulates a crash between writing a
// segment's bytes and publishing the count: the file must still decode to
// the previous state.
func TestTrailingUnpublishedSegment(t *testing.T) {
	f := fixtureFile(t, 0)
	data := encode(t, f)
	half := encode(t, &File{B: 64, Segments: f.Segments[:1]})
	// Splice: header claims 1 segment, but both segments' bytes follow.
	crash := append(append([]byte{}, half[:fileHeaderSize]...), data[fileHeaderSize:]...)
	got, err := Decode(crash)
	if err != nil {
		t.Fatalf("Decode with trailing bytes: %v", err)
	}
	if len(got.Segments) != 1 {
		t.Fatalf("got %d segments, want the 1 published", len(got.Segments))
	}
}

// TestAppendSegmentReconcilesOrphanTail simulates append-after-crash: a
// prior append wrote some or all of a segment's bytes but died before
// publishing the count. The next append must truncate that orphan tail —
// otherwise its segment lands past the garbage and reopening fails (or
// resurrects the unpublished segment) at the expected segment offset.
func TestAppendSegmentReconcilesOrphanTail(t *testing.T) {
	for _, sketchK := range []int{0, 4} {
		orphan := buildSegment(t, [][]uint64{{42, 43}}, []string{"crashed"}, sketchK, bitmat.DenseAuto)
		var orphanBytes bytes.Buffer
		ow := &writer{w: &orphanBytes}
		writeSegment(ow, orphan, sketchK)
		if ow.err != nil {
			t.Fatalf("writeSegment: %v", ow.err)
		}
		// A torn half-written tail and a complete-but-unpublished one.
		for _, tail := range [][]byte{
			orphanBytes.Bytes()[:orphanBytes.Len()/2],
			orphanBytes.Bytes(),
		} {
			path := filepath.Join(t.TempDir(), "idx")
			f := fixtureFile(t, sketchK)
			if err := WriteFile(path, f); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			fd, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fd.Write(tail); err != nil {
				t.Fatal(err)
			}
			if err := fd.Close(); err != nil {
				t.Fatal(err)
			}

			extra := buildSegment(t, [][]uint64{{9, 10, 11}}, []string{"late"}, sketchK, bitmat.DenseAuto)
			if err := AppendSegment(path, extra, 64, sketchK); err != nil {
				t.Fatalf("sketchK=%d tail=%dB: AppendSegment: %v", sketchK, len(tail), err)
			}
			got, err := LoadFile(path)
			if err != nil {
				t.Fatalf("sketchK=%d tail=%dB: LoadFile after append: %v", sketchK, len(tail), err)
			}
			want := &File{B: 64, SketchK: sketchK, Segments: append(append([]*Segment{}, f.Segments...), extra)}
			checkEqual(t, got, want)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := encode(t, fixtureFile(t, 4))
	mutate := func(off int, b byte) []byte {
		m := append([]byte{}, valid...)
		m[off] = b
		return m
	}
	cases := map[string][]byte{
		"empty":             {},
		"short header":      valid[:fileHeaderSize-1],
		"bad magic":         mutate(0, 'X'),
		"unknown flag":      mutate(9, 0xff),
		"zero b":            mutate(16, 0),
		"oversized b":       mutate(16, 200),
		"segment bomb":      mutate(segCountOff+6, 0xff), // ~2^55 segments
		"bad segment magic": mutate(fileHeaderSize, 'X'),
		"sample bomb":       mutate(fileHeaderSize+8+6, 0xff),
		"row bomb":          mutate(fileHeaderSize+16+6, 0xff),
		"sketch without flag": func() []byte {
			m := append([]byte{}, valid...)
			m[8] = 0 // clear sketch flag, leave sketchK
			return m
		}(),
	}
	for i := 1; i < len(valid); i += 97 {
		cases["truncated"] = valid[:i]
		if _, err := Decode(valid[:i]); err == nil {
			// Truncation that still parses must only be possible past the
			// last published byte — never the case for a full file prefix.
			t.Fatalf("Decode accepted %d-byte truncation of %d-byte file", i, len(valid))
		}
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

func TestWriteFileErrors(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, "missing", "idx"), &File{B: 64}); err == nil {
		t.Fatal("WriteFile into missing directory succeeded")
	}
	if err := AppendSegment(filepath.Join(dir, "nope"), &Segment{}, 64, 0); err == nil {
		t.Fatal("AppendSegment on missing file succeeded")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(bad); err == nil {
		t.Fatal("OpenMapped accepted a non-index file")
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("LoadFile accepted a non-index file")
	}
}
