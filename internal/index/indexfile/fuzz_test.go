package indexfile

import (
	"bytes"
	"encoding/binary"
	"testing"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/minhash"
)

// FuzzReadIndex fuzzes the index reader with arbitrary bytes, following
// the FuzzReadBinary/FuzzReadFrame convention: Decode must never panic or
// allocate past the input size, and any input it accepts must re-encode
// canonically — Decode(enc(Decode(data))) is byte-identical. Seeds cover
// the interesting failure classes: valid files (with and without
// sketches), header bombs, truncations, a stale unpublished segment tail
// and a duplicated segment body.
func FuzzReadIndex(f *testing.F) {
	fz := &File{B: 64}
	seg := &Segment{
		RowMap: []uint64{3, 7, 9, 200},
		Cards:  []int64{2, 3},
		Names:  []string{"a", "bb"},
		Pack: bitmat.PackColumnsThreshold([][]int{{0, 2}, {1, 2, 3}}, 4, 64,
			bitmat.DenseAuto),
	}
	fz.Segments = []*Segment{seg}
	var plain bytes.Buffer
	if _, err := fz.WriteTo(&plain); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())

	sk := &File{B: 64, SketchK: 3, Segments: []*Segment{buildFuzzSketchSegment()}}
	var sketched bytes.Buffer
	if _, err := sk.WriteTo(&sketched); err != nil {
		f.Fatal(err)
	}
	f.Add(sketched.Bytes())

	// Header bomb: segment count of 2^60.
	bomb := append([]byte{}, plain.Bytes()...)
	binary.LittleEndian.PutUint64(bomb[segCountOff:], 1<<60)
	f.Add(bomb)
	// Sample-count bomb inside the segment header.
	bomb2 := append([]byte{}, plain.Bytes()...)
	binary.LittleEndian.PutUint64(bomb2[fileHeaderSize+8:], 1<<59)
	f.Add(bomb2)
	// Truncations.
	f.Add(plain.Bytes()[:fileHeaderSize-3])
	f.Add(plain.Bytes()[:len(plain.Bytes())-5])
	// Unpublished tail (crash-consistent append) and a duplicate segment
	// body with a stale count.
	f.Add(append(append([]byte{}, plain.Bytes()...), plain.Bytes()[fileHeaderSize:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			return
		}
		var first bytes.Buffer
		if _, err := got.WriteTo(&first); err != nil {
			t.Fatalf("re-encoding accepted input: %v", err)
		}
		again, err := Decode(first.Bytes())
		if err != nil {
			t.Fatalf("decoding canonical encoding: %v", err)
		}
		var second bytes.Buffer
		if _, err := again.WriteTo(&second); err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}

func buildFuzzSketchSegment() *Segment {
	s := &Segment{
		RowMap: []uint64{1, 2, 5},
		Cards:  []int64{3},
		Names:  []string{"s"},
		Pack:   bitmat.PackColumnsThreshold([][]int{{0, 1, 2}}, 3, 64, bitmat.DenseNever),
	}
	s.Sketches = []minhash.Sketch{minhash.MustNew([]uint64{1, 2, 5}, 3)}
	return s
}
