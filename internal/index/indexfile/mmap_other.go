//go:build !unix

package indexfile

import "os"

// mmapFile falls back to reading the whole file on hosts without mmap
// support — OpenMapped still works, it just loses the lazy paging.
func mmapFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func munmap([]byte) error { return nil }
