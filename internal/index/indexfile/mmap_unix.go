//go:build unix

package indexfile

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only. An empty file maps to an empty slice
// (mmap of length 0 is an error on most kernels, and Decode rejects it
// anyway for lacking a header).
func mmapFile(path string) ([]byte, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return []byte{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("indexfile: %s too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("indexfile: mmap %s: %w", path, err)
	}
	return data, nil
}

func munmap(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
