// Package indexfile implements the on-disk format of the persistent
// similarity index: a magic/version header followed by self-describing
// segments, each persisting one bitmat.Packed column block together with
// its row map, per-sample exact cardinalities, optional MinHash sketches
// and sample names.
//
// The format is designed to be mmap-able: every section is a fixed-width
// little-endian array aligned to 8 bytes, so on little-endian hosts the
// heavy payloads (bitmask words, dense slab, sketches) are adopted
// zero-copy from the mapped region and page in lazily on first query.
// Metadata (row maps, column pointers, sparse word rows) is validated on
// open — the same discipline as samplefile's binary reader: counts are
// checked against the remaining file size before any allocation, a corrupt
// or truncated file yields an error, never a panic or an oversized
// allocation, and the reader is fuzzed (FuzzReadIndex).
//
// Layout:
//
//	file header (64 B): magic "GASIDX01", flags, b, sketchK, segCount
//	segment × segCount:
//	  segment header (96 B): magic "GASSEG01", samples, activeRows,
//	    wordRows, thresholdSpec, sparseNNZ, slabWords, slabNNZ, nameBytes
//	  rowMap   [activeRows]u64   sorted distinct attribute values
//	  cards    [samples]i64      exact per-sample cardinalities
//	  colPtr   [samples+1]i64    bitmat sparse column pointers
//	  wordRow  [sparseNNZ]i64    bitmat sparse word-row stream
//	  words    [sparseNNZ]u64    bitmat sparse word stream
//	  denseOff [samples]i64      bitmat dense slab offsets (-1 = sparse)
//	  slab     [slabWords]u64    bitmat dense slab
//	  sketchLen [samples]i64     only when sketchK > 0
//	  sketches [samples·sketchK]u64  only when sketchK > 0 (stride K)
//	  nameOff  [samples+1]u64    offsets into the name blob
//	  names    [nameBytes]byte, zero-padded to a multiple of 8
//
// The segment count lives at a fixed header offset so an appender can
// write a new segment past the end, fsync, then publish it by bumping the
// count — a crash between the two steps leaves the previous, fully
// consistent index visible. An appender truncates any such unpublished
// tail before writing, so segment offsets always follow from the
// published headers alone.
package indexfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/minhash"
)

const (
	magic    = "GASIDX01"
	segMagic = "GASSEG01"

	fileHeaderSize = 64
	segHeaderSize  = 96

	// segCountOff is the byte offset of the segment count within the file
	// header — the single word an append rewrites to publish a segment.
	segCountOff = 32

	flagSketches = 1 << 0

	// maxSketchK caps the per-sample sketch size a header may declare;
	// far above any useful bottom-k sketch, low enough that
	// samples×sketchK stays within the size checked against the file.
	maxSketchK = 1 << 20
)

// File is a decoded index: the packing width, the sketch size (0 when the
// index carries no sketches) and the segments in append order.
type File struct {
	B        int
	SketchK  int
	Segments []*Segment
}

// Segment is one persisted column block. Samples are global: segment s
// holds samples [sum of earlier segment sizes, +Samples()).
type Segment struct {
	// RowMap maps the segment's local row space to attribute values:
	// local row r represents attribute RowMap[r]. Sorted strictly
	// ascending, so queries translate values by binary search.
	RowMap []uint64
	// Cards[j] is the exact cardinality (number of attribute values) of
	// the segment's j-th sample.
	Cards []int64
	// Names holds the samples' human-readable identifiers.
	Names []string
	// Pack is the segment's packed indicator columns over the local row
	// space (ActiveRows == len(RowMap)).
	Pack *bitmat.Packed
	// Sketches holds each sample's MinHash sketch; nil when the file was
	// written without sketches.
	Sketches []minhash.Sketch
}

// Samples returns the number of samples in the segment.
func (s *Segment) Samples() int { return len(s.Cards) }

// reader walks a decoded byte slice with bounds checking: every take
// validates the requested size against the remaining bytes first, so a
// header bomb (a count far larger than the file) fails fast without
// allocating.
type reader struct {
	data []byte
	off  int
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) take(n int, what string) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("indexfile: %s needs %d bytes, %d remain", what, n, r.remaining())
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

// count reads a u64 count field and bounds it by the number of elemSize
// elements that could possibly remain in the file — the header-bomb cap.
func (r *reader) count(b []byte, off int, elemSize int, what string) (int, error) {
	v := binary.LittleEndian.Uint64(b[off:])
	if v > uint64(r.remaining())/uint64(elemSize) {
		return 0, fmt.Errorf("indexfile: %s count %d exceeds file size", what, v)
	}
	return int(v), nil
}

func pad8(n int) int { return (n + 7) &^ 7 }

// Decode parses an index from data, which must hold the complete file.
// The returned File aliases data wherever the host allows zero-copy
// adoption (little-endian, aligned sections): the caller must keep data
// alive and unmodified — for mmap-opened indexes, until Close.
func Decode(data []byte) (*File, error) {
	r := &reader{data: data}
	h, err := r.take(fileHeaderSize, "file header")
	if err != nil {
		return nil, err
	}
	if string(h[:8]) != magic {
		return nil, fmt.Errorf("indexfile: bad magic %q", h[:8])
	}
	flags := binary.LittleEndian.Uint64(h[8:])
	if flags&^uint64(flagSketches) != 0 {
		return nil, fmt.Errorf("indexfile: unsupported flags %#x", flags)
	}
	b := binary.LittleEndian.Uint64(h[16:])
	if b < 1 || b > 64 {
		return nil, fmt.Errorf("indexfile: bitmask width %d outside [1,64]", b)
	}
	sketchK := binary.LittleEndian.Uint64(h[24:])
	if flags&flagSketches == 0 {
		if sketchK != 0 {
			return nil, fmt.Errorf("indexfile: sketch size %d without sketch flag", sketchK)
		}
	} else if sketchK < 1 || sketchK > maxSketchK {
		return nil, fmt.Errorf("indexfile: sketch size %d outside [1,%d]", sketchK, maxSketchK)
	}
	segCount, err := r.count(h, segCountOff, segHeaderSize, "segment")
	if err != nil {
		return nil, err
	}
	f := &File{B: int(b), SketchK: int(sketchK), Segments: make([]*Segment, 0, segCount)}
	for i := 0; i < segCount; i++ {
		seg, err := decodeSegment(r, f.B, f.SketchK)
		if err != nil {
			return nil, fmt.Errorf("segment %d: %w", i, err)
		}
		f.Segments = append(f.Segments, seg)
	}
	// Trailing bytes past the published segment count are legal: they are
	// a crashed append that never bumped the count.
	return f, nil
}

func decodeSegment(r *reader, b, sketchK int) (*Segment, error) {
	h, err := r.take(segHeaderSize, "segment header")
	if err != nil {
		return nil, err
	}
	if string(h[:8]) != segMagic {
		return nil, fmt.Errorf("indexfile: bad segment magic %q", h[:8])
	}
	samples, err := r.count(h, 8, 8, "sample")
	if err != nil {
		return nil, err
	}
	activeRows, err := r.count(h, 16, 8, "row map")
	if err != nil {
		return nil, err
	}
	wordRows, err := r.count(h, 24, 8, "word row")
	if err != nil {
		return nil, err
	}
	threshold := int64(binary.LittleEndian.Uint64(h[32:]))
	if threshold < -1 || threshold > int64(len(r.data)) {
		return nil, fmt.Errorf("indexfile: dense threshold spec %d out of range", threshold)
	}
	sparseNNZ, err := r.count(h, 40, 8, "sparse word")
	if err != nil {
		return nil, err
	}
	slabWords, err := r.count(h, 48, 8, "slab word")
	if err != nil {
		return nil, err
	}
	slabNNZ, err := r.count(h, 56, 8, "slab nonzero")
	if err != nil {
		return nil, err
	}
	nameBytes, err := r.count(h, 64, 1, "name blob")
	if err != nil {
		return nil, err
	}

	rowMapB, err := r.take(activeRows*8, "row map")
	if err != nil {
		return nil, err
	}
	cardsB, err := r.take(samples*8, "cardinalities")
	if err != nil {
		return nil, err
	}
	colPtrB, err := r.take((samples+1)*8, "column pointers")
	if err != nil {
		return nil, err
	}
	wordRowB, err := r.take(sparseNNZ*8, "word rows")
	if err != nil {
		return nil, err
	}
	wordsB, err := r.take(sparseNNZ*8, "words")
	if err != nil {
		return nil, err
	}
	denseOffB, err := r.take(samples*8, "dense offsets")
	if err != nil {
		return nil, err
	}
	slabB, err := r.take(slabWords*8, "slab")
	if err != nil {
		return nil, err
	}
	var sketchLenB, sketchesB []byte
	if sketchK > 0 {
		if sketchLenB, err = r.take(samples*8, "sketch lengths"); err != nil {
			return nil, err
		}
		if samples > 0 && sketchK > r.remaining()/8/samples {
			return nil, fmt.Errorf("indexfile: %d sketches of size %d exceed file size", samples, sketchK)
		}
		if sketchesB, err = r.take(samples*sketchK*8, "sketches"); err != nil {
			return nil, err
		}
	}
	nameOffB, err := r.take((samples+1)*8, "name offsets")
	if err != nil {
		return nil, err
	}
	nameBlob, err := r.take(pad8(nameBytes), "name blob")
	if err != nil {
		return nil, err
	}
	nameBlob = nameBlob[:nameBytes]

	rowMap := castU64(rowMapB, activeRows)
	for i := 1; i < len(rowMap); i++ {
		if rowMap[i] <= rowMap[i-1] {
			return nil, fmt.Errorf("indexfile: row map not strictly ascending at %d", i)
		}
	}
	cards := castI64(cardsB, samples)
	for i, c := range cards {
		// A sample's cardinality counts its distinct attribute values, all
		// of which appear in the segment's row map.
		if c < 0 || c > int64(activeRows) {
			return nil, fmt.Errorf("indexfile: cardinality %d of sample %d outside [0,%d]", c, i, activeRows)
		}
	}
	colPtr, err := castInts(colPtrB, samples+1, 0, int64(sparseNNZ), "column pointer")
	if err != nil {
		return nil, err
	}
	wordRow, err := castInts(wordRowB, sparseNNZ, 0, int64(wordRows)-1, "word row")
	if err != nil {
		return nil, err
	}
	denseOff, err := castInts(denseOffB, samples, -1, int64(slabWords), "dense offset")
	if err != nil {
		return nil, err
	}
	pack, err := bitmat.FromRaw(bitmat.RawParts{
		WordRows:      wordRows,
		Cols:          samples,
		B:             b,
		ActiveRows:    activeRows,
		ThresholdSpec: int(threshold),
		ColPtr:        colPtr,
		WordRow:       wordRow,
		Words:         castU64(wordsB, sparseNNZ),
		DenseOff:      denseOff,
		Slab:          castU64(slabB, slabWords),
		SlabNNZ:       slabNNZ,
	})
	if err != nil {
		return nil, err
	}

	seg := &Segment{RowMap: rowMap, Cards: cards, Pack: pack}
	if sketchK > 0 {
		lens, err := castInts(sketchLenB, samples, 0, int64(sketchK), "sketch length")
		if err != nil {
			return nil, err
		}
		hashes := castU64(sketchesB, samples*sketchK)
		seg.Sketches = make([]minhash.Sketch, samples)
		for j := 0; j < samples; j++ {
			hs := hashes[j*sketchK : j*sketchK+lens[j]]
			for i := 1; i < len(hs); i++ {
				if hs[i] <= hs[i-1] {
					return nil, fmt.Errorf("indexfile: sketch %d hashes not strictly ascending", j)
				}
			}
			seg.Sketches[j] = minhash.Sketch{Size: sketchK, Hashes: hs}
		}
	}

	nameOff := castU64(nameOffB, samples+1)
	seg.Names = make([]string, samples)
	for j := 0; j < samples; j++ {
		lo, hi := nameOff[j], nameOff[j+1]
		if lo > hi || hi > uint64(nameBytes) {
			return nil, fmt.Errorf("indexfile: name offsets [%d,%d] of sample %d outside blob of %d bytes",
				lo, hi, j, nameBytes)
		}
		seg.Names[j] = string(nameBlob[lo:hi])
	}
	if samples > 0 && (nameOff[0] != 0 || nameOff[samples] != uint64(nameBytes)) {
		return nil, fmt.Errorf("indexfile: name offsets do not span the blob")
	}
	if samples == 0 && nameBytes != 0 {
		return nil, fmt.Errorf("indexfile: %d name bytes with no samples", nameBytes)
	}
	return seg, nil
}

// writer counts bytes and keeps the first error, so encoding reads as a
// straight-line section list.
type writer struct {
	w   io.Writer
	n   int64
	err error
	buf [8]byte
}

func (w *writer) bytes(b []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(b)
	w.n += int64(n)
	w.err = err
}

func (w *writer) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.bytes(w.buf[:])
}

func (w *writer) u64s(vs []uint64) {
	for _, v := range vs {
		w.u64(v)
	}
}

func (w *writer) i64s(vs []int64) {
	for _, v := range vs {
		w.u64(uint64(v))
	}
}

func (w *writer) ints(vs []int) {
	for _, v := range vs {
		w.u64(uint64(int64(v)))
	}
}

// WriteTo encodes the complete index. It implements io.WriterTo.
func (f *File) WriteTo(dst io.Writer) (int64, error) {
	w := &writer{w: dst}
	var flags uint64
	if f.SketchK > 0 {
		flags |= flagSketches
	}
	w.bytes([]byte(magic))
	w.u64(flags)
	w.u64(uint64(f.B))
	w.u64(uint64(f.SketchK))
	w.u64(uint64(len(f.Segments)))
	w.bytes(make([]byte, fileHeaderSize-40))
	for _, seg := range f.Segments {
		writeSegment(w, seg, f.SketchK)
	}
	return w.n, w.err
}

func writeSegment(w *writer, seg *Segment, sketchK int) {
	raw := seg.Pack.Raw()
	samples := seg.Samples()
	var nameBytes int
	for _, n := range seg.Names {
		nameBytes += len(n)
	}
	w.bytes([]byte(segMagic))
	w.u64(uint64(samples))
	w.u64(uint64(len(seg.RowMap)))
	w.u64(uint64(raw.WordRows))
	w.u64(uint64(int64(raw.ThresholdSpec)))
	w.u64(uint64(len(raw.Words)))
	w.u64(uint64(len(raw.Slab)))
	w.u64(uint64(raw.SlabNNZ))
	w.u64(uint64(nameBytes))
	w.bytes(make([]byte, segHeaderSize-72))

	w.u64s(seg.RowMap)
	w.i64s(seg.Cards)
	w.ints(raw.ColPtr)
	w.ints(raw.WordRow)
	w.u64s(raw.Words)
	if raw.DenseOff != nil {
		w.ints(raw.DenseOff)
	} else {
		allSparse := int64(-1)
		for j := 0; j < samples; j++ {
			w.u64(uint64(allSparse))
		}
	}
	w.u64s(raw.Slab)
	if sketchK > 0 {
		for _, s := range seg.Sketches {
			w.u64(uint64(len(s.Hashes)))
		}
		for _, s := range seg.Sketches {
			w.u64s(s.Hashes)
			for i := len(s.Hashes); i < sketchK; i++ {
				w.u64(0)
			}
		}
	}
	off := uint64(0)
	w.u64(0)
	for _, n := range seg.Names {
		off += uint64(len(n))
		w.u64(off)
	}
	for _, n := range seg.Names {
		w.bytes([]byte(n))
	}
	w.bytes(make([]byte, pad8(nameBytes)-nameBytes))
}

// WriteFile writes the index to path and syncs it to stable storage.
func WriteFile(path string, f *File) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteTo(out); err != nil {
		return errors.Join(err, out.Close())
	}
	if err := out.Sync(); err != nil {
		return errors.Join(err, out.Close())
	}
	return out.Close()
}

// AppendSegment durably appends one segment to an existing index file. Any
// orphaned tail from a previously crashed or failed append is truncated
// first; the segment bytes are then written past the consistent end and
// synced before the header's segment count is bumped and synced again, so
// a crash at any point leaves a readable index: either without the new
// segment, or with it fully published. sketchK must match the file's (the
// caller owns the corpus-wide sketch configuration); the file header is
// read back to enforce agreement.
func AppendSegment(path string, seg *Segment, b, sketchK int) (err error) {
	fd, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := fd.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	h := make([]byte, fileHeaderSize)
	if _, err := io.ReadFull(fd, h); err != nil {
		return fmt.Errorf("indexfile: reading header: %w", err)
	}
	if string(h[:8]) != magic {
		return fmt.Errorf("indexfile: bad magic %q", h[:8])
	}
	if got := int(binary.LittleEndian.Uint64(h[16:])); got != b {
		return fmt.Errorf("indexfile: file packs b=%d, appending b=%d", got, b)
	}
	if got := int(binary.LittleEndian.Uint64(h[24:])); got != sketchK {
		return fmt.Errorf("indexfile: file sketch size %d, appending %d", got, sketchK)
	}
	segCount := binary.LittleEndian.Uint64(h[segCountOff:])

	// A prior crashed or failed append may have left a partial segment past
	// the published data. Decode tolerates that tail on open, but appending
	// after it would put the new segment past garbage sitting at the offset
	// where segment parsing expects it — publishing the bumped count would
	// then corrupt the index permanently. Reconcile by computing the
	// consistent end from the published segment headers and truncating the
	// orphan before writing.
	end, err := dataEnd(fd, segCount, sketchK)
	if err != nil {
		return err
	}
	if err := fd.Truncate(end); err != nil {
		return err
	}
	if _, err := fd.Seek(end, io.SeekStart); err != nil {
		return err
	}
	w := &writer{w: fd}
	writeSegment(w, seg, sketchK)
	if w.err == nil {
		w.err = fd.Sync()
	}
	if w.err != nil {
		// Drop the partial tail (best effort — dataEnd reconciles again on
		// retry even if this truncate fails too, e.g. on a full disk).
		fd.Truncate(end)
		return w.err
	}
	binary.LittleEndian.PutUint64(h[:8], segCount+1)
	if _, err := fd.WriteAt(h[:8], segCountOff); err != nil {
		return err
	}
	return fd.Sync()
}

// dataEnd returns the byte offset one past the last published segment —
// the consistent end of the file. Bytes beyond it are an orphaned tail
// left by an append that crashed or failed before publishing. The walk
// touches only the segCount segment headers, never the payloads.
func dataEnd(fd *os.File, segCount uint64, sketchK int) (int64, error) {
	st, err := fd.Stat()
	if err != nil {
		return 0, err
	}
	size := st.Size()
	off := int64(fileHeaderSize)
	h := make([]byte, segHeaderSize)
	for i := uint64(0); i < segCount; i++ {
		if size-off < segHeaderSize {
			return 0, fmt.Errorf("indexfile: segment %d header past end of file", i)
		}
		if _, err := fd.ReadAt(h, off); err != nil {
			return 0, fmt.Errorf("indexfile: reading segment %d header: %w", i, err)
		}
		if string(h[:8]) != segMagic {
			return 0, fmt.Errorf("indexfile: segment %d: bad magic %q", i, h[:8])
		}
		ext, err := segmentExtent(h, sketchK, size-off-segHeaderSize)
		if err != nil {
			return 0, fmt.Errorf("indexfile: segment %d: %w", i, err)
		}
		off += segHeaderSize + ext
		if off > size {
			return 0, fmt.Errorf("indexfile: segment %d extends past end of file", i)
		}
	}
	return off, nil
}

// segmentExtent computes a segment's payload size (everything after its
// header) from the header fields, bounding each count by remain — the
// bytes left in the file — so a corrupt header fails instead of
// overflowing. The section list mirrors decodeSegment.
func segmentExtent(h []byte, sketchK int, remain int64) (int64, error) {
	count := func(off int, elemSize int64, what string) (int64, error) {
		v := binary.LittleEndian.Uint64(h[off:])
		if remain < 0 || v > uint64(remain)/uint64(elemSize) {
			return 0, fmt.Errorf("%s count %d exceeds file size", what, v)
		}
		return int64(v), nil
	}
	samples, err := count(8, 8, "sample")
	if err != nil {
		return 0, err
	}
	activeRows, err := count(16, 8, "row map")
	if err != nil {
		return 0, err
	}
	sparseNNZ, err := count(40, 8, "sparse word")
	if err != nil {
		return 0, err
	}
	slabWords, err := count(48, 8, "slab word")
	if err != nil {
		return 0, err
	}
	nameBytes, err := count(64, 1, "name blob")
	if err != nil {
		return 0, err
	}
	namePadded := (nameBytes + 7) &^ 7
	ext := 8*(activeRows+ // rowMap
		samples+ // cards
		(samples+1)+ // colPtr
		2*sparseNNZ+ // wordRow + words
		samples+ // denseOff
		slabWords+ // slab
		(samples+1)) + // nameOff
		namePadded // names, zero-padded to 8
	if sketchK > 0 {
		if samples > 0 && int64(sketchK) > remain/8/samples {
			return 0, fmt.Errorf("%d sketches of size %d exceed file size", samples, sketchK)
		}
		ext += 8 * (samples + samples*int64(sketchK)) // sketchLen + sketches
	}
	return ext, nil
}

// Mapped is an index opened without loading: File's heavy sections alias
// the mapped region, which stays valid until Close.
type Mapped struct {
	File *File
	data []byte
}

// OpenMapped memory-maps path read-only and decodes it in place. Metadata
// is validated eagerly (row maps, column pointers, sparse word rows —
// O(metadata) page faults); the dense slab and sparse word payloads are
// not touched until a query reads them.
func OpenMapped(path string) (*Mapped, error) {
	data, err := mmapFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(data)
	if err != nil {
		munmap(data)
		return nil, err
	}
	return &Mapped{File: f, data: data}, nil
}

// Close unmaps the region. The File and every slice decoded from it are
// invalid afterwards.
func (m *Mapped) Close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	m.File = nil
	return munmap(data)
}

// LoadFile reads the whole index into memory and decodes it — the
// eager-loading alternative to OpenMapped, useful when the index must
// outlive its file or the host cannot mmap.
func LoadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
