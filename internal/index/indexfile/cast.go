package indexfile

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// hostLittleEndian reports whether the host stores multi-byte integers in
// the file's byte order, which is what makes zero-copy adoption of the
// fixed-width sections legal.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// castU64 reinterprets b as n little-endian uint64s. On a little-endian
// host with an 8-byte-aligned slice this is a zero-copy cast — the mmap'd
// payload is served straight from the page cache; otherwise the values are
// decoded into a fresh slice.
func castU64(b []byte, n int) []uint64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// castI64 is castU64 for signed values.
func castI64(b []byte, n int) []int64 {
	u := castU64(b, n)
	//gas:unsafe same-width uint64→int64 reinterpret of a slice castU64 already adopted (or copied) under its guard; no byte-order or alignment assumption of its own
	return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(u))), len(u))
}

// castInts decodes n i64 values into an []int, range-checking each against
// [min, max]. Unlike the payload casts this always copies: int width is
// platform-dependent, and the slices feed bitmat.FromRaw which adopts
// them, so a private copy also keeps the mmap region strictly read-only.
func castInts(b []byte, n int, min, max int64, what string) ([]int, error) {
	if n == 0 {
		return nil, nil
	}
	out := make([]int, n)
	for i := range out {
		v := int64(binary.LittleEndian.Uint64(b[i*8:]))
		if v < min || v > max {
			return nil, fmt.Errorf("indexfile: %s %d outside [%d,%d]", what, v, min, max)
		}
		out[i] = int(v)
	}
	return out, nil
}
