package index

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/core"
	"genomeatscale/internal/dist"
	"genomeatscale/internal/tile"
)

// memSource is a minimal Source for tests.
type memSource struct {
	names   []string
	samples [][]uint64
}

func (s *memSource) NumSamples() int         { return len(s.samples) }
func (s *memSource) Sample(i int) []uint64   { return s.samples[i] }
func (s *memSource) SampleName(i int) string { return s.names[i] }
func (s *memSource) NumAttributes() uint64   { return 1 << 20 }
func (s *memSource) add(name string, v []uint64) {
	s.names = append(s.names, name)
	s.samples = append(s.samples, v)
}

// randomSource draws n samples of sorted distinct values from [0, space).
func randomSource(rng *rand.Rand, n, space int, density float64) *memSource {
	s := &memSource{}
	for i := 0; i < n; i++ {
		var vals []uint64
		for v := 0; v < space; v++ {
			if rng.Float64() < density {
				vals = append(vals, uint64(v))
			}
		}
		s.add(fmt.Sprintf("s%03d", i), vals)
	}
	return s
}

// bruteNeighbors is the semantic oracle: exact set intersection + Eq. 2.
func bruteNeighbors(src *memSource, query []uint64, tau float64) []Neighbor {
	q := map[uint64]bool{}
	for _, v := range query {
		q[v] = true
	}
	var out []Neighbor
	for i, s := range src.samples {
		var b int64
		for _, v := range s {
			if q[v] {
				b++
			}
		}
		sim := dist.Jaccard(b, int64(len(q)), int64(len(s)))
		if sim < tau {
			continue
		}
		out = append(out, Neighbor{Sample: i, Name: src.names[i], Intersection: b, Similarity: sim})
	}
	sortNeighbors(out)
	return out
}

func sortNeighbors(ns []Neighbor) {
	for i := range ns {
		for j := i + 1; j < len(ns); j++ {
			if ns[j].Similarity > ns[i].Similarity ||
				(ns[j].Similarity == ns[i].Similarity && ns[j].Sample < ns[i].Sample) {
				ns[i], ns[j] = ns[j], ns[i]
			}
		}
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	src := randomSource(rng, 30, 400, 0.08)
	for _, spec := range []int{bitmat.DenseAuto, bitmat.DenseNever, 2} {
		c, err := Build(src, Options{DenseThreshold: spec})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		for trial := 0; trial < 10; trial++ {
			// Queries mix resident values with values outside every row map.
			var q []uint64
			for v := 0; v < 400; v++ {
				if rng.Float64() < 0.1 {
					q = append(q, uint64(v))
				}
			}
			q = append(q, 1<<19, 1<<19+1)
			got, err := c.Query(context.Background(), q, QueryOptions{Workers: 1 + trial%3})
			if err != nil {
				t.Fatalf("Query: %v", err)
			}
			want := bruteNeighbors(src, q, 0)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("spec %d trial %d: query mismatch\ngot  %v\nwant %v", spec, trial, got, want)
			}
			tau := 0.05
			gotT, err := c.Query(context.Background(), q, QueryOptions{Threshold: tau})
			if err != nil {
				t.Fatalf("Query threshold: %v", err)
			}
			if want := bruteNeighbors(src, q, tau); !reflect.DeepEqual(gotT, want) {
				t.Fatalf("spec %d trial %d: threshold query mismatch", spec, trial)
			}
			k := 5
			gotK, err := c.Query(context.Background(), q, QueryOptions{TopK: k})
			if err != nil {
				t.Fatalf("Query topk: %v", err)
			}
			if want := bruteNeighbors(src, q, 0); !reflect.DeepEqual(gotK, want[:min(k, len(want))]) {
				t.Fatalf("spec %d trial %d: top-k mismatch", spec, trial)
			}
		}
	}
}

// TestRoundTripByteIdentical is the lossless-persistence acceptance
// criterion: write → mmap-open (and load) → query gives results
// byte-identical to querying the corpus that was built in memory.
func TestRoundTripByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	src := randomSource(rng, 25, 300, 0.1)
	for _, sketchK := range []int{0, 8} {
		mem, err := Build(src, Options{SketchK: sketchK})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		path := filepath.Join(t.TempDir(), "corpus.idx")
		if err := mem.WriteFile(path); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		mapped, err := Open(path)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		loaded, err := Load(path)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		for trial := 0; trial < 8; trial++ {
			q := src.samples[rng.Intn(len(src.samples))]
			opts := QueryOptions{TopK: 7, Threshold: 0.2}
			want, err := mem.Query(context.Background(), q, opts)
			if err != nil {
				t.Fatalf("in-memory query: %v", err)
			}
			gotM, err := mapped.Query(context.Background(), q, opts)
			if err != nil {
				t.Fatalf("mapped query: %v", err)
			}
			gotL, err := loaded.Query(context.Background(), q, opts)
			if err != nil {
				t.Fatalf("loaded query: %v", err)
			}
			if !reflect.DeepEqual(gotM, want) {
				t.Fatalf("sketchK=%d: mmap-opened query differs from in-memory", sketchK)
			}
			if !reflect.DeepEqual(gotL, want) {
				t.Fatalf("sketchK=%d: loaded query differs from in-memory", sketchK)
			}
		}
		if err := mapped.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

// TestAppendEqualsRebuild is the incremental-append acceptance criterion:
// append-then-query is identical to full-rebuild-then-query, with the
// sketch gate on and off.
func TestAppendEqualsRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	full := randomSource(rng, 20, 300, 0.1)
	for _, sketchK := range []int{0, 8} {
		part := &memSource{names: full.names[:17], samples: full.samples[:17]}
		appended, err := Build(part, Options{SketchK: sketchK})
		if err != nil {
			t.Fatalf("Build partial: %v", err)
		}
		for i := 17; i < 20; i++ {
			id, err := appended.Append(full.names[i], full.samples[i])
			if err != nil {
				t.Fatalf("Append: %v", err)
			}
			if id != i {
				t.Fatalf("Append gave id %d, want %d", id, i)
			}
		}
		rebuilt, err := Build(full, Options{SketchK: sketchK})
		if err != nil {
			t.Fatalf("Build full: %v", err)
		}
		if appended.Samples() != rebuilt.Samples() {
			t.Fatalf("%d samples after append, rebuild has %d", appended.Samples(), rebuilt.Samples())
		}
		for trial := 0; trial < 10; trial++ {
			q := full.samples[rng.Intn(len(full.samples))]
			for _, opts := range []QueryOptions{
				{},
				{TopK: 6},
				{Threshold: 0.15},                 // sketch gate armed when sketchK > 0
				{Threshold: 0.15, NoSketch: true}, // exact thresholded
			} {
				got, err := appended.Query(context.Background(), q, opts)
				if err != nil {
					t.Fatalf("appended query: %v", err)
				}
				want, err := rebuilt.Query(context.Background(), q, opts)
				if err != nil {
					t.Fatalf("rebuilt query: %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("sketchK=%d opts=%+v: append-then-query differs from rebuild-then-query\ngot  %v\nwant %v",
						sketchK, opts, got, want)
				}
			}
		}
	}
}

// TestAppendPersists proves the durable append path: appends against a
// file-backed corpus survive reopening, both mapped and loaded.
func TestAppendPersists(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	src := randomSource(rng, 10, 200, 0.1)
	c, err := Build(src, Options{SketchK: 4})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	path := filepath.Join(t.TempDir(), "corpus.idx")
	if err := c.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	extra := []uint64{3, 50, 77, 120}
	if _, err := c.Append("late", extra); err != nil {
		t.Fatalf("Append: %v", err)
	}
	want, err := c.Query(context.Background(), extra, QueryOptions{})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	reopened, err := Open(path)
	if err != nil {
		t.Fatalf("Open after append: %v", err)
	}
	defer reopened.Close()
	if reopened.Samples() != 11 || reopened.Segments() != 2 {
		t.Fatalf("reopened corpus has %d samples in %d segments, want 11 in 2",
			reopened.Samples(), reopened.Segments())
	}
	got, err := reopened.Query(context.Background(), extra, QueryOptions{})
	if err != nil {
		t.Fatalf("reopened query: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("reopened query differs from pre-reopen query")
	}
	if names := reopened.Names(); names[10] != "late" {
		t.Fatalf("appended sample name %q, want %q", names[10], "late")
	}
}

// TestBatchTopKEquivalence is the serving-vs-batch contract: the pairs
// reconstructed from per-sample corpus queries are byte-identical to a
// batch engine run streamed into a TopK sink over the same samples.
func TestBatchTopKEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	src := randomSource(rng, 18, 250, 0.12)
	ds, err := core.NewInMemoryDataset(src.names, src.samples, src.NumAttributes())
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	eng, err := core.NewEngine(core.Options{BatchCount: 3, MaskBits: 64, Procs: 1, Replication: 1})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	const k = 15
	sink := tile.NewTopK(k)
	if _, err := eng.Stream(context.Background(), ds, sink); err != nil {
		t.Fatalf("stream: %v", err)
	}
	want := sink.Pairs()

	c, err := Build(src, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var pairs []tile.Pair
	for q := 0; q < src.NumSamples(); q++ {
		ns, err := c.Query(context.Background(), src.samples[q], QueryOptions{})
		if err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
		for _, p := range TopPairs(q, ns) {
			if p.I == q { // keep each unordered pair once
				pairs = append(pairs, p)
			}
		}
	}
	tile.SortPairs(pairs)
	if len(pairs) > k {
		pairs = pairs[:k]
	}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("served pairs differ from batch TopK\ngot  %v\nwant %v", pairs, want)
	}
}

// TestSketchGateSubset: the gated result set never contains a neighbor the
// exact thresholded query would not, and misses only sketch-rejected ones.
func TestSketchGateSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	src := randomSource(rng, 40, 300, 0.15)
	c, err := Build(src, Options{SketchK: 16})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for trial := 0; trial < 10; trial++ {
		q := src.samples[rng.Intn(len(src.samples))]
		gated, err := c.Query(context.Background(), q, QueryOptions{Threshold: 0.3})
		if err != nil {
			t.Fatalf("gated: %v", err)
		}
		exact, err := c.Query(context.Background(), q, QueryOptions{Threshold: 0.3, NoSketch: true})
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		inExact := map[int]Neighbor{}
		for _, n := range exact {
			inExact[n.Sample] = n
		}
		for _, n := range gated {
			if want, ok := inExact[n.Sample]; !ok || want != n {
				t.Fatalf("gated neighbor %+v not in exact result", n)
			}
		}
	}
	if c.Counters().SketchSkips == 0 {
		t.Fatal("sketch gate never skipped a sample")
	}
}

func TestDefaultSlackMatchesCore(t *testing.T) {
	if DefaultSketchSlack != core.DefaultSketchSlack {
		t.Fatalf("index slack %v != core slack %v", DefaultSketchSlack, core.DefaultSketchSlack)
	}
}

func TestQueryValidationAndCancel(t *testing.T) {
	src := randomSource(rand.New(rand.NewSource(27)), 5, 50, 0.2)
	c, err := Build(src, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := c.Query(context.Background(), nil, QueryOptions{TopK: -1}); err == nil {
		t.Fatal("negative top-k accepted")
	}
	if _, err := c.Query(context.Background(), nil, QueryOptions{Threshold: 1.5}); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Query(ctx, src.samples[0], QueryOptions{}); err == nil {
		t.Fatal("cancelled query returned no error")
	}
	if _, err := Build(src, Options{B: 65}); err == nil {
		t.Fatal("B=65 accepted")
	}
	if _, err := Build(src, Options{SketchK: -1}); err == nil {
		t.Fatal("negative sketch size accepted")
	}
}

func TestCountersAndInfoAccessors(t *testing.T) {
	src := randomSource(rand.New(rand.NewSource(28)), 6, 80, 0.2)
	c, err := Build(src, Options{SketchK: 4})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := c.Query(context.Background(), src.samples[0], QueryOptions{}); err != nil {
		t.Fatalf("query: %v", err)
	}
	cts := c.Counters()
	if cts.Queries != 1 || cts.Popcounts != 6 || cts.QuerySamples != 6 {
		t.Fatalf("counters %+v", cts)
	}
	if c.B() != 64 || c.SketchK() != 4 || c.Samples() != 6 || c.Segments() != 1 {
		t.Fatal("accessor mismatch")
	}
	if c.MemoryWords() <= 0 {
		t.Fatal("zero memory footprint")
	}
	if c.Path() != "" {
		t.Fatal("unbacked corpus has a path")
	}
}
