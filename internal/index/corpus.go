// Package index implements the persistent similarity corpus: a set of
// packed column segments (internal/index/indexfile) that answers
// query-vs-corpus top-k and threshold searches with the exact popcount
// kernels, supports incremental append without recomputation, and can be
// opened without loading via mmap.
//
// The corpus is segmented LSM-style. The base segment holds the batch-built
// samples over a row map covering their attribute union; every Append adds
// a one-sample segment with its own row map. A query translates its values
// through each segment's row map (binary search — a value absent from the
// map cannot intersect any of that segment's samples), packs them into a
// one-column bitmat matrix over the segment's row space and popcounts it
// against every resident column. Appending therefore extends the Gram
// product by exactly one row band: the new column is packed once, and its
// intersections against the resident packed columns are computed by the
// same kernel a query uses — no rebuild, and append-then-query is
// bit-identical to rebuild-then-query because both paths feed identical
// integer cardinalities to the single Eq. 2 implementation (dist.Jaccard).
package index

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/dist"
	"genomeatscale/internal/index/indexfile"
	"genomeatscale/internal/minhash"
	"genomeatscale/internal/par"
	"genomeatscale/internal/tile"
)

// Source is the sample input a corpus is built from. core.Dataset
// satisfies it, as does any in-memory sample list.
type Source interface {
	// NumSamples returns the number of samples.
	NumSamples() int
	// Sample returns the sorted, duplicate-free attribute values of
	// sample i. The returned slice is not modified.
	Sample(i int) []uint64
	// SampleName returns a human-readable identifier for sample i.
	SampleName(i int) string
}

// DefaultSketchSlack is the recall margin subtracted from the query
// threshold before the sketch gate is applied — the same margin the batch
// prescreen tier uses (core.DefaultSketchSlack; kept numerically in sync
// by a test).
const DefaultSketchSlack = 0.1

// Options configures Build.
type Options struct {
	// B is the packing width (bits per word row), 1..64. 0 means 64.
	B int
	// DenseThreshold is the bitmat dense-threshold spec (bitmat.DenseAuto,
	// bitmat.DenseNever or an explicit stored-word count).
	DenseThreshold int
	// SketchK, when positive, builds a bottom-k MinHash sketch of each
	// sample so thresholded queries can gate popcounts.
	SketchK int
}

// QueryOptions configures one Query.
type QueryOptions struct {
	// TopK limits the result to the k best neighbors (0 = unlimited).
	TopK int
	// Threshold keeps only neighbors with similarity ≥ Threshold. With
	// sketches present it also arms the sketch gate.
	Threshold float64
	// Workers bounds query parallelism (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// NoSketch disables the sketch gate even when sketches are present,
	// making a thresholded query exact.
	NoSketch bool
	// SketchSlack overrides the gate's recall margin (0 = DefaultSketchSlack).
	SketchSlack float64
}

// Neighbor is one query result: a corpus sample, its exact intersection
// cardinality with the query, and the Eq. 2 similarity derived from it.
type Neighbor struct {
	Sample       int     `json:"sample"`
	Name         string  `json:"name"`
	Intersection int64   `json:"intersection"`
	Similarity   float64 `json:"similarity"`
}

// Counters are the corpus's monotonic operation counters, exported to the
// query service's /metrics endpoint.
type Counters struct {
	Queries      int64 `json:"queries"`
	Appends      int64 `json:"appends"`
	Popcounts    int64 `json:"popcounts"`
	SketchSkips  int64 `json:"sketch_skips"`
	QuerySamples int64 `json:"query_samples"`
}

// Corpus is a searchable, appendable collection of packed sample columns.
// All methods are safe for concurrent use; queries proceed concurrently
// with each other and with at most one append.
type Corpus struct {
	b              int
	sketchK        int
	denseThreshold int

	mu     sync.Mutex // serialises appends and guards segs replacement
	segs   atomic.Pointer[[]*indexfile.Segment]
	total  atomic.Int64 // total samples across segments
	path   string       // backing file ("" = unbacked)
	mapped *indexfile.Mapped

	queries      atomic.Int64
	appends      atomic.Int64
	popcounts    atomic.Int64
	sketchSkips  atomic.Int64
	querySamples atomic.Int64
}

// Build packs every sample of src into a single base segment. The row map
// is the sorted union of all attribute values, so the packed columns are
// exactly the filtered indicator matrix of the batch engine.
func Build(src Source, opts Options) (*Corpus, error) {
	c, err := newCorpus(opts)
	if err != nil {
		return nil, err
	}
	n := src.NumSamples()
	union := make(map[uint64]struct{})
	for i := 0; i < n; i++ {
		for _, v := range src.Sample(i) {
			union[v] = struct{}{}
		}
	}
	rowMap := make([]uint64, 0, len(union))
	for v := range union {
		rowMap = append(rowMap, v)
	}
	sort.Slice(rowMap, func(i, j int) bool { return rowMap[i] < rowMap[j] })

	rowsPerCol := make([][]int, n)
	cards := make([]int64, n)
	names := make([]string, n)
	var sketches []minhash.Sketch
	if c.sketchK > 0 {
		sketches = make([]minhash.Sketch, n)
	}
	for i := 0; i < n; i++ {
		vals := src.Sample(i)
		rows := make([]int, len(vals))
		for k, v := range vals {
			r := findRow(rowMap, v)
			if r < 0 {
				return nil, fmt.Errorf("index: sample %d value %d missing from row map (unsorted input?)", i, v)
			}
			rows[k] = r
		}
		if !sort.IntsAreSorted(rows) {
			return nil, fmt.Errorf("index: sample %d values not sorted", i)
		}
		for k := 1; k < len(rows); k++ {
			if rows[k] == rows[k-1] {
				return nil, fmt.Errorf("index: sample %d has duplicate value %d", i, vals[k])
			}
		}
		rowsPerCol[i] = rows
		cards[i] = int64(len(vals))
		names[i] = src.SampleName(i)
		if c.sketchK > 0 {
			sketches[i] = minhash.MustNew(vals, c.sketchK)
		}
	}
	seg := &indexfile.Segment{
		RowMap:   rowMap,
		Cards:    cards,
		Names:    names,
		Pack:     bitmat.PackColumnsThreshold(rowsPerCol, len(rowMap), c.b, c.denseThreshold),
		Sketches: sketches,
	}
	segs := []*indexfile.Segment{seg}
	c.segs.Store(&segs)
	c.total.Store(int64(n))
	return c, nil
}

func newCorpus(opts Options) (*Corpus, error) {
	b := opts.B
	if b == 0 {
		b = 64
	}
	if b < 1 || b > 64 {
		return nil, fmt.Errorf("index: packing width %d outside [1,64]", b)
	}
	if opts.SketchK < 0 {
		return nil, fmt.Errorf("index: negative sketch size %d", opts.SketchK)
	}
	c := &Corpus{b: b, sketchK: opts.SketchK, denseThreshold: opts.DenseThreshold}
	empty := []*indexfile.Segment{}
	c.segs.Store(&empty)
	return c, nil
}

// findRow locates v in the sorted row map, or -1.
func findRow(rowMap []uint64, v uint64) int {
	r := sort.Search(len(rowMap), func(i int) bool { return rowMap[i] >= v })
	if r < len(rowMap) && rowMap[r] == v {
		return r
	}
	return -1
}

// WriteFile persists the corpus to path and binds it as the backing file:
// subsequent Appends are durably appended there.
func (c *Corpus) WriteFile(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := &indexfile.File{B: c.b, SketchK: c.sketchK, Segments: *c.segs.Load()}
	if err := indexfile.WriteFile(path, f); err != nil {
		return err
	}
	c.path = path
	return nil
}

// Open maps an index file without loading it: metadata is validated, the
// packed payloads stay on disk and page in on first use. The corpus stays
// bound to the file, so Appends persist. Close must be called to unmap.
func Open(path string) (*Corpus, error) {
	m, err := indexfile.OpenMapped(path)
	if err != nil {
		return nil, err
	}
	c, err := fromFile(m.File, path)
	if err != nil {
		m.Close()
		return nil, err
	}
	c.mapped = m
	return c, nil
}

// Load reads an index file fully into memory. The corpus stays bound to
// the file for Append persistence, but needs no Close.
func Load(path string) (*Corpus, error) {
	f, err := indexfile.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return fromFile(f, path)
}

func fromFile(f *indexfile.File, path string) (*Corpus, error) {
	spec := bitmat.DenseAuto
	if len(f.Segments) > 0 {
		spec = f.Segments[0].Pack.DenseThresholdSpec()
	}
	c, err := newCorpus(Options{B: f.B, DenseThreshold: spec, SketchK: f.SketchK})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, seg := range f.Segments {
		total += seg.Samples()
	}
	c.segs.Store(&f.Segments)
	c.total.Store(int64(total))
	c.path = path
	return c, nil
}

// Close unmaps a mapped corpus; it is a no-op otherwise. The corpus must
// not be used afterwards.
func (c *Corpus) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mapped == nil {
		return nil
	}
	m := c.mapped
	c.mapped = nil
	empty := []*indexfile.Segment{}
	c.segs.Store(&empty)
	c.total.Store(0)
	return m.Close()
}

// Samples returns the number of samples in the corpus.
func (c *Corpus) Samples() int { return int(c.total.Load()) }

// Segments returns the number of segments (1 + number of appends since
// the last full build).
func (c *Corpus) Segments() int { return len(*c.segs.Load()) }

// B returns the packing width.
func (c *Corpus) B() int { return c.b }

// SketchK returns the per-sample sketch size (0 = no sketches).
func (c *Corpus) SketchK() int { return c.sketchK }

// Path returns the backing file path ("" when unbacked).
func (c *Corpus) Path() string { return c.path }

// Names returns all sample names in global order.
func (c *Corpus) Names() []string {
	segs := *c.segs.Load()
	var names []string
	for _, seg := range segs {
		names = append(names, seg.Names...)
	}
	return names
}

// Counters returns a snapshot of the operation counters.
func (c *Corpus) Counters() Counters {
	return Counters{
		Queries:      c.queries.Load(),
		Appends:      c.appends.Load(),
		Popcounts:    c.popcounts.Load(),
		SketchSkips:  c.sketchSkips.Load(),
		QuerySamples: c.querySamples.Load(),
	}
}

// MemoryWords returns the packed storage footprint in 8-byte words across
// all segments (resident or mapped).
func (c *Corpus) MemoryWords() int64 {
	var words int64
	for _, seg := range *c.segs.Load() {
		words += int64(seg.Pack.MemoryWords())
	}
	return words
}

// normalize sorts and deduplicates query values without modifying the
// caller's slice.
func normalize(values []uint64) []uint64 {
	vals := append([]uint64(nil), values...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// queryChunk is the number of corpus columns one parallel task scans —
// coarse enough that task handout does not dominate the popcounts.
const queryChunk = 256

// Query returns the samples most similar to the given value set, exactly:
// every similarity is derived from an exact packed intersection via Eq. 2.
// Results are ordered by descending similarity, ties by ascending sample
// index — the order of the batch engine's TopK/Threshold sinks, so a
// served query is bit-identical to a batch run over the same corpus.
//
// With a positive Threshold and sketches present (and NoSketch unset), a
// MinHash gate at Threshold−SketchSlack skips samples whose estimated
// similarity is hopeless — same recall contract as the batch prescreen
// tier.
func (c *Corpus) Query(ctx context.Context, values []uint64, opts QueryOptions) ([]Neighbor, error) {
	if opts.TopK < 0 {
		return nil, fmt.Errorf("index: negative top-k %d", opts.TopK)
	}
	if opts.Threshold < 0 || opts.Threshold > 1 {
		return nil, fmt.Errorf("index: threshold %v outside [0,1]", opts.Threshold)
	}
	c.queries.Add(1)
	vals := normalize(values)
	qCard := int64(len(vals))

	var qSketch minhash.Sketch
	gate := opts.Threshold > 0 && c.sketchK > 0 && !opts.NoSketch
	slack := opts.SketchSlack
	if slack == 0 {
		slack = DefaultSketchSlack
	}
	gateTau := opts.Threshold - slack
	if gate {
		qSketch = minhash.MustNew(vals, c.sketchK)
	}

	segs := *c.segs.Load()
	var (
		resMu sync.Mutex
		res   []Neighbor
	)
	base := 0
	for _, seg := range segs {
		n := seg.Samples()
		if n == 0 {
			continue
		}
		qPack := c.packQuery(seg, vals)
		segBase := base
		chunks := (n + queryChunk - 1) / queryChunk
		err := par.ForEachCtx(ctx, opts.Workers, chunks, func(chunk int) {
			lo := chunk * queryChunk
			hi := min(lo+queryChunk, n)
			local := make([]Neighbor, 0, hi-lo)
			var pops, skips int64
			for j := lo; j < hi; j++ {
				if gate && gateTau > 0 {
					ok, err := minhash.EstimateAtLeast(qSketch, seg.Sketches[j], gateTau)
					if err == nil && !ok {
						skips++
						continue
					}
				}
				pops++
				b := int64(bitmat.PairPopcountBetween(qPack, 0, seg.Pack, j))
				sim := dist.Jaccard(b, qCard, seg.Cards[j])
				if sim < opts.Threshold {
					continue
				}
				local = append(local, Neighbor{
					Sample:       segBase + j,
					Name:         seg.Names[j],
					Intersection: b,
					Similarity:   sim,
				})
			}
			c.popcounts.Add(pops)
			c.sketchSkips.Add(skips)
			if len(local) > 0 {
				resMu.Lock()
				res = append(res, local...)
				resMu.Unlock()
			}
		})
		if err != nil {
			return nil, err
		}
		base += n
	}
	c.querySamples.Add(int64(base))

	sort.Slice(res, func(i, j int) bool {
		if res[i].Similarity != res[j].Similarity {
			return res[i].Similarity > res[j].Similarity
		}
		return res[i].Sample < res[j].Sample
	})
	if opts.TopK > 0 && len(res) > opts.TopK {
		res = res[:opts.TopK]
	}
	return res, nil
}

// packQuery packs the query values into a one-column matrix over the
// segment's row space. Values outside the segment's row map are dropped:
// they cannot intersect any resident column.
func (c *Corpus) packQuery(seg *indexfile.Segment, vals []uint64) *bitmat.Packed {
	rows := make([]int, 0, len(vals))
	for _, v := range vals {
		if r := findRow(seg.RowMap, v); r >= 0 {
			rows = append(rows, r)
		}
	}
	return bitmat.PackColumnsThreshold([][]int{rows}, len(seg.RowMap), c.b, c.denseThreshold)
}

// TopPairs adapts a query result to the batch tile.Pair convention for a
// query that is itself corpus sample q: each neighbor j becomes the
// upper-triangle pair (min(q,j), max(q,j)). Self pairs are dropped. The
// order is preserved, which matches tile.SortPairs for a fixed q.
func TopPairs(q int, neighbors []Neighbor) []tile.Pair {
	out := make([]tile.Pair, 0, len(neighbors))
	for _, nb := range neighbors {
		if nb.Sample == q {
			continue
		}
		i, j := q, nb.Sample
		if j < i {
			i, j = j, i
		}
		out = append(out, tile.Pair{I: i, J: j, Similarity: nb.Similarity})
	}
	return out
}

// Append adds one sample to the corpus as a new segment and returns its
// global index. The segment's row map is the sample's own value set, so
// the cost is O(|values| log |values|) — no recomputation against the
// resident columns; their intersections with the new sample are computed
// on demand by Query through the same popcount kernel. When the corpus is
// file-backed the segment is durably appended (fsync'd data, then a
// published segment count) before it becomes visible to queries.
func (c *Corpus) Append(name string, values []uint64) (int, error) {
	vals := normalize(values)
	rows := make([]int, len(vals))
	for i := range rows {
		rows[i] = i
	}
	var sketches []minhash.Sketch
	if c.sketchK > 0 {
		sketches = []minhash.Sketch{minhash.MustNew(vals, c.sketchK)}
	}
	seg := &indexfile.Segment{
		RowMap:   vals,
		Cards:    []int64{int64(len(vals))},
		Names:    []string{name},
		Pack:     bitmat.PackColumnsThreshold([][]int{rows}, len(vals), c.b, c.denseThreshold),
		Sketches: sketches,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.path != "" {
		if err := indexfile.AppendSegment(c.path, seg, c.b, c.sketchK); err != nil {
			return 0, err
		}
	}
	old := *c.segs.Load()
	segs := make([]*indexfile.Segment, len(old)+1)
	copy(segs, old)
	segs[len(old)] = seg
	c.segs.Store(&segs)
	id := int(c.total.Add(1)) - 1
	c.appends.Add(1)
	return id, nil
}
