package graphsim

import (
	"math"
	"testing"

	"genomeatscale/internal/core"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // duplicate
	g.AddEdge(3, 3) // self loop
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	n1 := g.Neighbors(1)
	if len(n1) != 2 || n1[0] != 0 || n1[1] != 2 {
		t.Errorf("Neighbors(1) = %v", n1)
	}
	if len(g.Neighbors(3)) != 1 {
		t.Errorf("self loop neighbour list = %v", g.Neighbors(3))
	}
}

func TestGraphPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGraph(2).AddEdge(0, 2)
}

func TestNewGraphNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGraph(-1)
}

func TestVertexSimilarityKnownGraph(t *testing.T) {
	// Path graph 0-1-2-3: N(0)={1}, N(1)={0,2}, N(2)={1,3}, N(3)={2}.
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	res, err := VertexSimilarity(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// J(N(0), N(2)) = |{1}| / |{1,3}| = 0.5
	if !approx(res.Similarity(0, 2), 0.5) {
		t.Errorf("S(0,2) = %v, want 0.5", res.Similarity(0, 2))
	}
	// J(N(0), N(1)) = 0 (disjoint neighbourhoods)
	if !approx(res.Similarity(0, 1), 0) {
		t.Errorf("S(0,1) = %v, want 0", res.Similarity(0, 1))
	}
	// J(N(1), N(3)) = |{2}| / |{0,2}| = 0.5
	if !approx(res.Similarity(1, 3), 0.5) {
		t.Errorf("S(1,3) = %v, want 0.5", res.Similarity(1, 3))
	}
}

func TestVertexSimilarityMatchesDirectDefinition(t *testing.T) {
	g := RandomGraph(25, 0.2, 9)
	res, err := VertexSimilarity(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u++ {
		nu := toUint64(g.Neighbors(u))
		for v := 0; v < g.N; v++ {
			nv := toUint64(g.Neighbors(v))
			want := core.JaccardPair(nu, nv)
			if !approx(res.Similarity(u, v), want) {
				t.Fatalf("S(%d,%d) = %v, want %v", u, v, res.Similarity(u, v), want)
			}
		}
	}
}

func TestVertexSimilarityDistributedPath(t *testing.T) {
	g := RandomGraph(15, 0.25, 4)
	opts := core.DefaultOptions()
	opts.Procs = 4
	distRes, err := VertexSimilarity(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := VertexSimilarity(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if !approx(distRes.Similarity(u, v), seqRes.Similarity(u, v)) {
				t.Fatalf("distributed vs sequential mismatch at (%d,%d)", u, v)
			}
		}
	}
}

func toUint64(xs []int) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = uint64(x)
	}
	return out
}

func TestJarvisPatrickClustering(t *testing.T) {
	// Two triangles joined by nothing: vertices 0-2 and 3-5.
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	res, err := VertexSimilarity(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	labels := JarvisPatrick(res.S, 0.3)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("first triangle should be one cluster")
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Error("second triangle should be one cluster")
	}
	if labels[0] == labels[3] {
		t.Error("triangles should be separate clusters")
	}
	// Threshold 0 merges everything (similarity ≥ 0 always holds).
	all := JarvisPatrick(res.S, 0)
	for _, l := range all {
		if l != all[0] {
			t.Error("threshold 0 should merge all vertices")
		}
	}
}

func TestPredictLinks(t *testing.T) {
	// Square 0-1-2-3-0: the two diagonals (0,2) and (1,3) are the natural
	// predictions — each pair shares both neighbours.
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	res, err := VertexSimilarity(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	links := PredictLinks(g, res.S, 2)
	if len(links) != 2 {
		t.Fatalf("links = %v", links)
	}
	found := map[[2]int]bool{}
	for _, l := range links {
		found[l] = true
	}
	if !found[[2]int{0, 2}] || !found[[2]int{1, 3}] {
		t.Errorf("expected the two diagonals, got %v", links)
	}
	// Requesting more links than exist must not panic.
	many := PredictLinks(g, res.S, 100)
	if len(many) != 2 {
		t.Errorf("PredictLinks with large k = %v", many)
	}
}

func TestRandomGraphProperties(t *testing.T) {
	g := RandomGraph(40, 0.1, 3)
	if g.N != 40 {
		t.Fatal("wrong vertex count")
	}
	h := RandomGraph(40, 0.1, 3)
	if g.NumEdges() != h.NumEdges() {
		t.Error("same seed must give the same graph")
	}
	empty := RandomGraph(10, 0, 1)
	if empty.NumEdges() != 0 {
		t.Error("probability 0 must give no edges")
	}
	full := RandomGraph(10, 1, 1)
	if full.NumEdges() != 45 {
		t.Errorf("probability 1 must give complete graph, got %d edges", full.NumEdges())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RandomGraph(5, 2, 1)
}

func TestEmptyGraphDataset(t *testing.T) {
	g := NewGraph(3) // no edges
	res, err := VertexSimilarity(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// All neighbourhoods empty → all pairs have similarity 0 under the
	// J(∅, ∅) = 0 convention: an isolated vertex matches nothing, itself
	// included.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !approx(res.Similarity(i, j), 0) {
				t.Errorf("S(%d,%d) = %v", i, j, res.Similarity(i, j))
			}
		}
	}
}
