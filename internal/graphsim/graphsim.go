// Package graphsim applies SimilarityAtScale to graph analytics
// (Section II-F of the paper): the Jaccard similarity of two vertices v and
// u is |N(v) ∩ N(u)| / |N(v) ∪ N(u)| over their neighbourhoods, a building
// block for Jarvis–Patrick clustering, missing-link discovery, and link
// prediction. A graph's adjacency structure maps directly onto the
// indicator matrix: one row per vertex (as a potential neighbour), one
// column per vertex (as a data sample), as laid out in Table III.
package graphsim

import (
	"fmt"
	"slices"

	"genomeatscale/internal/core"
	"genomeatscale/internal/sparse"
	"genomeatscale/internal/synth"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	// N is the number of vertices.
	N   int
	adj [][]int
}

// NewGraph creates an empty graph with n vertices.
func NewGraph(n int) *Graph {
	if n < 0 {
		//gas:invariant vertex counts come from generator configs and dataset sizes validated at the app layer
		panic(fmt.Sprintf("graphsim: negative vertex count %d", n))
	}
	return &Graph{N: n, adj: make([][]int, n)}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are tolerated (duplicates are removed by Neighbors).
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		//gas:invariant edges are generated against this same graph's vertex range; out-of-range is a generator bug
		panic(fmt.Sprintf("graphsim: edge (%d,%d) out of range [0,%d)", u, v, g.N))
	}
	g.adj[u] = append(g.adj[u], v)
	if u != v {
		g.adj[v] = append(g.adj[v], u)
	}
}

// Neighbors returns the sorted, duplicate-free neighbour list of v.
func (g *Graph) Neighbors(v int) []int {
	out := append([]int(nil), g.adj[v]...)
	slices.Sort(out)
	return slices.Compact(out)
}

// NumEdges returns the number of undirected edges (self-loops count once).
func (g *Graph) NumEdges() int {
	total := 0
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if u >= v {
				total++
			}
		}
	}
	return total
}

// Dataset encodes the graph's neighbourhoods as a SimilarityAtScale
// dataset: sample j is the neighbour set N(j), attributes are vertex ids.
func (g *Graph) Dataset() (*core.InMemoryDataset, error) {
	names := make([]string, g.N)
	samples := make([][]uint64, g.N)
	for v := 0; v < g.N; v++ {
		names[v] = fmt.Sprintf("vertex-%d", v)
		for _, u := range g.Neighbors(v) {
			samples[v] = append(samples[v], uint64(u))
		}
	}
	m := uint64(g.N)
	if m == 0 {
		m = 1
	}
	return core.NewInMemoryDataset(names, samples, m)
}

// VertexSimilarity computes the all-pairs neighbourhood Jaccard similarity
// matrix of the graph using the SimilarityAtScale pipeline.
func VertexSimilarity(g *Graph, opts core.Options) (*core.Result, error) {
	ds, err := g.Dataset()
	if err != nil {
		return nil, err
	}
	if opts.Procs > 1 {
		return core.Compute(ds, opts)
	}
	return core.ComputeSequential(ds, opts)
}

// JarvisPatrick clusters vertices with the Jarvis–Patrick rule the paper
// cites: two vertices belong to the same cluster when their neighbourhood
// similarity reaches the threshold. Clusters are the connected components
// of the thresholded similarity graph.
func JarvisPatrick(similarity *sparse.Dense[float64], threshold float64) []int {
	n := similarity.Rows
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if similarity.At(i, j) >= threshold {
				union(i, j)
			}
		}
	}
	// Relabel components densely.
	label := make(map[int]int)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := label[r]; !ok {
			label[r] = len(label)
		}
		out[i] = label[r]
	}
	return out
}

// PredictLinks returns the top-k non-adjacent vertex pairs ranked by
// neighbourhood similarity — the similarity-based link-prediction use case
// of Section II-F.
func PredictLinks(g *Graph, similarity *sparse.Dense[float64], k int) [][2]int {
	type cand struct {
		u, v int
		s    float64
	}
	var cands []cand
	adjacent := make(map[[2]int]bool)
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			adjacent[[2]int{v, u}] = true
		}
	}
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if adjacent[[2]int{u, v}] {
				continue
			}
			if s := similarity.At(u, v); s > 0 {
				cands = append(cands, cand{u: u, v: v, s: s})
			}
		}
	}
	slices.SortFunc(cands, func(a, b cand) int {
		switch {
		case a.s > b.s:
			return -1
		case a.s < b.s:
			return 1
		case a.u != b.u:
			return a.u - b.u
		default:
			return a.v - b.v
		}
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([][2]int, 0, k)
	for _, c := range cands[:k] {
		out = append(out, [2]int{c.u, c.v})
	}
	return out
}

// RandomGraph generates an Erdős–Rényi style graph with the given edge
// probability, used by examples and benchmarks.
func RandomGraph(n int, edgeProb float64, seed uint64) *Graph {
	if edgeProb < 0 || edgeProb > 1 {
		//gas:invariant edge probabilities are generator configuration validated at the app layer; this guards direct misuse
		panic(fmt.Sprintf("graphsim: edge probability %v out of [0,1]", edgeProb))
	}
	g := NewGraph(n)
	rng := synth.NewRNG(seed ^ 0x6A4B)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < edgeProb {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}
