// Package synth generates the synthetic datasets used by the paper's
// evaluation (Section V-A3): indicator matrices where "each element ... is
// present with a specified probability p, independently for all elements",
// plus variants with variable per-column density that mimic the
// high-variability BIGSI data. Generation is deterministic for a given
// seed so experiments are reproducible.
package synth

import (
	"fmt"
	"math"

	"genomeatscale/internal/core"
)

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64)
// used throughout the synthetic generators. It is intentionally independent
// of math/rand so that dataset contents stay stable across Go releases.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with the given value.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		//gas:invariant documented RNG contract: n must be positive; all callers pass literals or validated config values
		panic(fmt.Sprintf("synth: Intn(%d)", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		//gas:invariant documented RNG contract: n must be positive; all callers pass literals or validated config values
		panic("synth: Uint64n(0)")
	}
	return r.Uint64() % n
}

// Poisson draws from a Poisson distribution with the given mean using
// inversion for small means and a normal approximation for large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction.
	n := int(math.Round(mean + math.Sqrt(mean)*r.Normal()))
	if n < 0 {
		return 0
	}
	return n
}

// Normal returns a standard normal draw (Box–Muller).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Config describes a synthetic indicator matrix.
type Config struct {
	// Samples is n, the number of data samples (columns).
	Samples int
	// Attributes is m, the size of the attribute universe (rows).
	Attributes uint64
	// Density is the probability p that a given (attribute, sample) pair is
	// present, as in the paper's synthetic experiments.
	Density float64
	// ColumnVariability skews per-column densities: 0 gives uniform columns
	// (Kingsford-like), larger values draw per-column densities from a
	// log-normal multiplier with that σ (BIGSI-like high variability).
	ColumnVariability float64
	// Seed makes generation deterministic.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Samples <= 0 {
		return fmt.Errorf("synth: Samples must be positive, got %d", c.Samples)
	}
	if c.Attributes == 0 {
		return fmt.Errorf("synth: Attributes must be positive")
	}
	if c.Density < 0 || c.Density > 1 {
		return fmt.Errorf("synth: Density must be in [0,1], got %v", c.Density)
	}
	if c.ColumnVariability < 0 {
		return fmt.Errorf("synth: ColumnVariability must be non-negative, got %v", c.ColumnVariability)
	}
	return nil
}

// Generate builds a synthetic dataset. Each sample's cardinality is drawn
// as Poisson(m · p_col); attribute values are sampled uniformly without
// replacement, which for the hypersparse regimes of interest is equivalent
// to independent Bernoulli entries.
func Generate(cfg Config) (*core.InMemoryDataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := NewRNG(cfg.Seed ^ 0xA5A5A5A5DEADBEEF)
	samples := make([][]uint64, cfg.Samples)
	names := make([]string, cfg.Samples)
	for j := 0; j < cfg.Samples; j++ {
		names[j] = fmt.Sprintf("synthetic-%d", j)
		density := cfg.Density
		if cfg.ColumnVariability > 0 {
			density *= math.Exp(cfg.ColumnVariability * rng.Normal())
			if density > 1 {
				density = 1
			}
		}
		mean := float64(cfg.Attributes) * density
		count := rng.Poisson(mean)
		if uint64(count) > cfg.Attributes {
			count = int(cfg.Attributes)
		}
		seen := make(map[uint64]struct{}, count)
		vals := make([]uint64, 0, count)
		for len(vals) < count {
			v := rng.Uint64n(cfg.Attributes)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			vals = append(vals, v)
		}
		samples[j] = vals
	}
	return core.NewInMemoryDataset(names, samples, cfg.Attributes)
}

// MustGenerate is Generate that panics on error, for benchmarks and
// examples with static configurations.
func MustGenerate(cfg Config) *core.InMemoryDataset {
	ds, err := Generate(cfg)
	if err != nil {
		//gas:invariant documented Must helper for benchmarks and examples; Generate is the checked path
		panic(err)
	}
	return ds
}

// PairWithJaccard builds two samples over [0, attributes) whose exact
// Jaccard similarity is close to the requested target, by sharing a
// fraction of a common pool. It is used by the accuracy experiments that
// compare exact Jaccard with MinHash estimates across a similarity range.
func PairWithJaccard(rng *RNG, attributes uint64, size int, target float64) ([]uint64, []uint64) {
	if target < 0 {
		target = 0
	}
	if target > 1 {
		target = 1
	}
	// |X∩Y| = s, |X|=|Y|=size ⇒ J = s / (2·size − s) ⇒ s = 2·size·J/(1+J).
	shared := int(math.Round(2 * float64(size) * target / (1 + target)))
	if shared > size {
		shared = size
	}
	pool := make(map[uint64]struct{})
	draw := func() uint64 {
		for {
			v := rng.Uint64n(attributes)
			if _, dup := pool[v]; !dup {
				pool[v] = struct{}{}
				return v
			}
		}
	}
	x := make([]uint64, 0, size)
	y := make([]uint64, 0, size)
	for i := 0; i < shared; i++ {
		v := draw()
		x = append(x, v)
		y = append(y, v)
	}
	for len(x) < size {
		x = append(x, draw())
	}
	for len(y) < size {
		y = append(y, draw())
	}
	return x, y
}

// WordOccupancyRows generates per-column sorted row-index lists whose
// packed form (64-bit masks) stores roughly `occupancy` of the word rows
// per column: each occupied 64-row segment receives three ascending bits.
// It is the shared fixture of the hybrid popcount-kernel benchmarks
// (bench_test.go and cmd/benchkernels), which sweep exactly this word-level
// occupancy — the quantity the dense-storage threshold acts on.
func WordOccupancyRows(r *RNG, rows, cols int, occupancy float64) [][]int {
	rowsPerCol := make([][]int, cols)
	wordRows := rows / 64
	for j := range rowsPerCol {
		for w := 0; w < wordRows; w++ {
			if r.Float64() >= occupancy {
				continue
			}
			base := w * 64
			for _, bit := range []int{r.Intn(21), 21 + r.Intn(21), 42 + r.Intn(21)} {
				rowsPerCol[j] = append(rowsPerCol[j], base+bit)
			}
		}
	}
	return rowsPerCol
}
