package synth

import (
	"math"
	"testing"

	"genomeatscale/internal/core"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := NewRNG(8)
	same := true
	a = NewRNG(7)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnAndUint64n(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Uint64n(13); v >= 13 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) should panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(11)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		var sum float64
		const trials = 4000
		for i := 0; i < trials; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / trials
		if math.Abs(got-mean) > mean*0.15+0.3 {
			t.Errorf("Poisson(%v) sample mean %v too far off", mean, got)
		}
	}
	if NewRNG(1).Poisson(0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
	if NewRNG(1).Poisson(-1) != 0 {
		t.Error("Poisson(-1) should be 0")
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(13)
	var sum, sumSq float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("Normal variance = %v", variance)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Samples: 10, Attributes: 100, Density: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Samples: 0, Attributes: 10, Density: 0.1},
		{Samples: 1, Attributes: 0, Density: 0.1},
		{Samples: 1, Attributes: 10, Density: -0.1},
		{Samples: 1, Attributes: 10, Density: 1.5},
		{Samples: 1, Attributes: 10, Density: 0.5, ColumnVariability: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestGenerateDensityAndDeterminism(t *testing.T) {
	cfg := Config{Samples: 50, Attributes: 2000, Density: 0.05, Seed: 99}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 50 || ds.NumAttributes() != 2000 {
		t.Fatalf("shape %d x %d", ds.NumSamples(), ds.NumAttributes())
	}
	got := core.Density(ds)
	if math.Abs(got-0.05) > 0.01 {
		t.Errorf("empirical density %v, want ≈0.05", got)
	}
	// Samples are sorted and within range.
	for j := 0; j < ds.NumSamples(); j++ {
		s := ds.Sample(j)
		for k := 1; k < len(s); k++ {
			if s[k-1] >= s[k] {
				t.Fatalf("sample %d not sorted/unique", j)
			}
		}
		if len(s) > 0 && s[len(s)-1] >= 2000 {
			t.Fatalf("sample %d has out-of-range attribute", j)
		}
	}
	// Determinism.
	ds2 := MustGenerate(cfg)
	for j := 0; j < ds.NumSamples(); j++ {
		a, b := ds.Sample(j), ds2.Sample(j)
		if len(a) != len(b) {
			t.Fatalf("sample %d length differs between identical configs", j)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("sample %d differs between identical configs", j)
			}
		}
	}
}

func TestGenerateColumnVariability(t *testing.T) {
	uniform := MustGenerate(Config{Samples: 80, Attributes: 5000, Density: 0.02, Seed: 1})
	skewed := MustGenerate(Config{Samples: 80, Attributes: 5000, Density: 0.02, ColumnVariability: 1.5, Seed: 1})
	varOf := func(ds *core.InMemoryDataset) float64 {
		var sum, sumSq float64
		n := ds.NumSamples()
		for j := 0; j < n; j++ {
			c := float64(len(ds.Sample(j)))
			sum += c
			sumSq += c * c
		}
		mean := sum / float64(n)
		return sumSq/float64(n) - mean*mean
	}
	if varOf(skewed) <= varOf(uniform) {
		t.Error("ColumnVariability should increase per-column cardinality variance")
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate should panic on invalid config")
		}
	}()
	MustGenerate(Config{})
}

func TestGenerateFullDensity(t *testing.T) {
	ds := MustGenerate(Config{Samples: 3, Attributes: 40, Density: 1, Seed: 2})
	for j := 0; j < 3; j++ {
		if len(ds.Sample(j)) > 40 {
			t.Fatalf("sample %d larger than universe", j)
		}
	}
}

func TestPairWithJaccardHitsTarget(t *testing.T) {
	rng := NewRNG(21)
	for _, target := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		x, y := PairWithJaccard(rng, 1<<40, 2000, target)
		got := core.JaccardPair(sorted(x), sorted(y))
		if math.Abs(got-target) > 0.02 {
			t.Errorf("target %v: got %v", target, got)
		}
	}
	// Out-of-range targets are clamped.
	x, y := PairWithJaccard(rng, 1<<40, 100, 1.5)
	if core.JaccardPair(sorted(x), sorted(y)) != 1 {
		t.Error("target > 1 should clamp to identical sets")
	}
	x, y = PairWithJaccard(rng, 1<<40, 100, -0.5)
	if core.JaccardPair(sorted(x), sorted(y)) != 0 {
		t.Error("target < 0 should clamp to disjoint sets")
	}
}

func sorted(xs []uint64) []uint64 {
	out := append([]uint64(nil), xs...)
	for i := 1; i < len(out); i++ {
		v := out[i]
		j := i - 1
		for j >= 0 && out[j] > v {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = v
	}
	return out
}
