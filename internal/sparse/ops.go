package sparse

import (
	"fmt"

	"genomeatscale/internal/semiring"
)

// GramT computes B = AᵀA over a semiring for a CSC matrix A, i.e.
// B[i][j] = ⊕_k Mul(A[k][i], A[k][j]). This is the reference (sequential,
// uncompressed) formulation of the intersection-cardinality matrix of
// Section III-A: with {0,1} values and the (+,×) semiring, B[i][j] equals
// |X_i ∩ X_j|.
//
// The product exploits column sparsity: for each pair of columns it merges
// the two sorted row-index lists.
func GramT[A, C any](a *CSC[A], sr semiring.Semiring[A, A, C]) *Dense[C] {
	n := a.NumCols
	out := MustDense[C](n, n)
	for i := range out.Data {
		out.Data[i] = sr.Add.Identity
	}
	for i := 0; i < n; i++ {
		ri, vi := a.Col(i)
		for j := i; j < n; j++ {
			rj, vj := a.Col(j)
			acc := sr.Add.Identity
			p, q := 0, 0
			for p < len(ri) && q < len(rj) {
				switch {
				case ri[p] < rj[q]:
					p++
				case ri[p] > rj[q]:
					q++
				default:
					acc = sr.Add.Op(acc, sr.Mul(vi[p], vj[q]))
					p++
					q++
				}
			}
			out.Set(i, j, acc)
			out.Set(j, i, acc)
		}
	}
	return out
}

// GramTAccumulate is like GramT but accumulates into an existing dense
// matrix, which is how the batched algorithm folds per-batch contributions
// A^(l)ᵀ A^(l) into B (Eq. 4).
func GramTAccumulate[A, C any](a *CSC[A], sr semiring.Semiring[A, A, C], into *Dense[C]) {
	if into.Rows != a.NumCols || into.Cols != a.NumCols {
		//gas:invariant the accumulator is allocated from the same batch shape the batches are sliced from; a mismatch is a batching bug, not input
		panic(fmt.Sprintf("sparse: GramTAccumulate shape mismatch: %dx%d vs n=%d", into.Rows, into.Cols, a.NumCols))
	}
	part := GramT(a, sr)
	into.AddInto(part, sr.Add)
}

// ColReduce reduces each column of a CSC matrix with a mapping into the
// monoid's carrier, returning a dense vector of length NumCols. With an
// indicator matrix and a "count one per nonzero" mapping it produces the
// per-sample cardinalities â of Eq. 4.
func ColReduce[A, C any](a *CSC[A], add semiring.Monoid[C], mapVal func(A) C) []C {
	out := make([]C, a.NumCols)
	for j := range out {
		out[j] = add.Identity
	}
	for j := 0; j < a.NumCols; j++ {
		_, vals := a.Col(j)
		for _, v := range vals {
			out[j] = add.Op(out[j], mapVal(v))
		}
	}
	return out
}

// RowReduce reduces each row of a CSR matrix, analogously to ColReduce.
func RowReduce[A, C any](a *CSR[A], add semiring.Monoid[C], mapVal func(A) C) []C {
	out := make([]C, a.NumRows)
	for i := range out {
		out[i] = add.Identity
	}
	for i := 0; i < a.NumRows; i++ {
		_, vals := a.Row(i)
		for _, v := range vals {
			out[i] = add.Op(out[i], mapVal(v))
		}
	}
	return out
}

// SpMV computes y = Aᵀx over a semiring for a CSC matrix A and a dense
// vector x of length NumRows, returning a dense vector of length NumCols.
func SpMV[A, B, C any](a *CSC[A], x []B, sr semiring.Semiring[A, B, C]) []C {
	if len(x) != a.NumRows {
		//gas:invariant the vector is sized from the same matrix's NumRows by every caller; a mismatch is a caller bug
		panic(fmt.Sprintf("sparse: SpMV length mismatch %d vs %d", len(x), a.NumRows))
	}
	out := make([]C, a.NumCols)
	for j := range out {
		out[j] = sr.Add.Identity
	}
	for j := 0; j < a.NumCols; j++ {
		rows, vals := a.Col(j)
		for k, i := range rows {
			out[j] = sr.Add.Op(out[j], sr.Mul(vals[k], x[i]))
		}
	}
	return out
}

// SpGEMM computes C = A·B over a semiring where A is CSR (m×k) and B is CSR
// (k×n), returning a CSR result. It uses a Gustavson-style row-by-row
// expansion. This general product supports the graph-similarity and
// document-similarity applications as well as ablation baselines.
func SpGEMM[X, Y, Z any](a *CSR[X], b *CSR[Y], sr semiring.Semiring[X, Y, Z]) *CSR[Z] {
	if a.NumCols != b.NumRows {
		//gas:invariant operands reaching SpGEMM come from conversions that preserve declared shapes; input layers validate dimensions when parsing
		panic(fmt.Sprintf("sparse: SpGEMM inner dimension mismatch %d vs %d", a.NumCols, b.NumRows))
	}
	out := &CSR[Z]{
		NumRows: a.NumRows,
		NumCols: b.NumCols,
		RowPtr:  make([]int, a.NumRows+1),
	}
	// Dense accumulator per row (SPA).
	acc := make([]Z, b.NumCols)
	occupied := make([]bool, b.NumCols)
	touched := make([]int, 0, b.NumCols)
	for i := 0; i < a.NumRows; i++ {
		aCols, aVals := a.Row(i)
		for k, col := range aCols {
			bCols, bVals := b.Row(col)
			av := aVals[k]
			for t, j := range bCols {
				if !occupied[j] {
					occupied[j] = true
					acc[j] = sr.Add.Identity
					touched = append(touched, j)
				}
				acc[j] = sr.Add.Op(acc[j], sr.Mul(av, bVals[t]))
			}
		}
		// Emit the row in sorted column order.
		sortInts(touched)
		for _, j := range touched {
			out.ColIdx = append(out.ColIdx, j)
			out.Val = append(out.Val, acc[j])
			occupied[j] = false
		}
		touched = touched[:0]
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// sortInts is a small insertion/std sort wrapper kept separate so SpGEMM
// reads clearly.
func sortInts(xs []int) {
	if len(xs) < 2 {
		return
	}
	// Insertion sort is typically fastest for the short per-row lists we see.
	if len(xs) <= 32 {
		for i := 1; i < len(xs); i++ {
			v := xs[i]
			j := i - 1
			for j >= 0 && xs[j] > v {
				xs[j+1] = xs[j]
				j--
			}
			xs[j+1] = v
		}
		return
	}
	quickSortInts(xs)
}

func quickSortInts(xs []int) {
	if len(xs) < 2 {
		return
	}
	pivot := xs[len(xs)/2]
	left, right := 0, len(xs)-1
	for left <= right {
		for xs[left] < pivot {
			left++
		}
		for xs[right] > pivot {
			right--
		}
		if left <= right {
			xs[left], xs[right] = xs[right], xs[left]
			left++
			right--
		}
	}
	quickSortInts(xs[:right+1])
	quickSortInts(xs[left:])
}

// FilterRows removes the rows of a COO matrix that are not listed in keep
// (a sorted list of row indices) and renumbers the remaining rows densely
// in order. It implements Eq. 6: ā[p_k, i] = a[k, i] for the prefix-sum
// mapping p of the filter vector. The returned matrix has len(keep) rows.
func FilterRows[T any](m *COO[T], keep []int) *COO[T] {
	pos := make(map[int]int, len(keep))
	for rank, r := range keep {
		pos[r] = rank
	}
	out := MustCOO[T](len(keep), m.NumCols)
	out.Entries = make([]Entry[T], 0, len(m.Entries))
	for _, e := range m.Entries {
		p, ok := pos[e.Row]
		if !ok {
			continue
		}
		out.Entries = append(out.Entries, Entry[T]{Row: p, Col: e.Col, Val: e.Val})
	}
	return out
}

// RowSlice returns the sub-matrix of rows [lo, hi) of a COO matrix, with row
// indices shifted so the slice starts at row 0. It implements the batching
// of Eq. 3: A = [A(1); ...; A(r)].
func RowSlice[T any](m *COO[T], lo, hi int) *COO[T] {
	if lo < 0 || hi > m.NumRows || lo > hi {
		//gas:invariant batch ranges come from grid.BlockRange over this matrix's own row count and are in range by construction
		panic(fmt.Sprintf("sparse: RowSlice [%d,%d) out of range for %d rows", lo, hi, m.NumRows))
	}
	out := MustCOO[T](hi-lo, m.NumCols)
	for _, e := range m.Entries {
		if e.Row >= lo && e.Row < hi {
			out.Entries = append(out.Entries, Entry[T]{Row: e.Row - lo, Col: e.Col, Val: e.Val})
		}
	}
	return out
}

// Equal reports whether two dense matrices are elementwise equal under eq.
func Equal[T any](a, b *Dense[T], eq func(T, T) bool) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if !eq(a.Data[i], b.Data[i]) {
			return false
		}
	}
	return true
}
