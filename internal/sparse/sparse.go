// Package sparse implements the sparse-matrix substrate of
// SimilarityAtScale: coordinate (COO), compressed-sparse-row (CSR) and
// compressed-sparse-column (CSC) formats with generic value types, a dense
// matrix type used for the (generally dense) similarity output, sparse
// vectors, and generalized matrix products over user semirings.
//
// The indicator matrix A of the paper (Section III-A) is hypersparse: most
// of its rows are entirely empty. The conversions here preserve explicit
// knowledge of which rows are non-empty so the filtering step (Eq. 5, 6)
// can drop them before compression.
package sparse

import (
	"fmt"
	"sort"

	"genomeatscale/internal/semiring"
)

// Entry is a single nonzero of a matrix in coordinate form.
type Entry[T any] struct {
	Row, Col int
	Val      T
}

// --- COO ---------------------------------------------------------------------

// COO is a coordinate-format sparse matrix. Entries may be unsorted and may
// contain duplicates until Compact is called.
type COO[T any] struct {
	NumRows, NumCols int
	Entries          []Entry[T]
}

// NewCOO returns an empty COO matrix with the given dimensions. Dimensions
// may be user-derived (parsed file headers, CLI flags), so a negative shape
// is reported as an error; use MustCOO when the shape is structurally
// non-negative.
func NewCOO[T any](rows, cols int) (*COO[T], error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative dimensions %dx%d", rows, cols)
	}
	return &COO[T]{NumRows: rows, NumCols: cols}, nil
}

// MustCOO is NewCOO for shapes derived from existing matrices or slice
// lengths, which cannot be negative. It panics on the error NewCOO would
// return.
func MustCOO[T any](rows, cols int) *COO[T] {
	m, err := NewCOO[T](rows, cols)
	if err != nil {
		//gas:invariant callers pass shapes derived from existing matrices or len(); see NewCOO for the error-returning form
		panic(err)
	}
	return m
}

// Append adds a nonzero entry. Bounds are checked.
func (m *COO[T]) Append(row, col int, val T) {
	if row < 0 || row >= m.NumRows || col < 0 || col >= m.NumCols {
		//gas:invariant entry coordinates are produced by the builders (hashing, slicing, conversion loops) against this matrix's own shape; out-of-bounds is a builder bug, and input layers validate coordinates before appending
		panic(fmt.Sprintf("sparse: entry (%d,%d) out of bounds %dx%d", row, col, m.NumRows, m.NumCols))
	}
	m.Entries = append(m.Entries, Entry[T]{Row: row, Col: col, Val: val})
}

// NNZ returns the number of stored entries (including duplicates).
func (m *COO[T]) NNZ() int { return len(m.Entries) }

// Sort orders entries by (row, col).
func (m *COO[T]) Sort() {
	sort.Slice(m.Entries, func(i, j int) bool {
		a, b := m.Entries[i], m.Entries[j]
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
}

// SortColMajor orders entries by (col, row); this is the order used when
// building per-column packed representations (the paper's implementation
// iterates in column-major order).
func (m *COO[T]) SortColMajor() {
	sort.Slice(m.Entries, func(i, j int) bool {
		a, b := m.Entries[i], m.Entries[j]
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Row < b.Row
	})
}

// Compact sorts entries and merges duplicates at the same (row, col) using
// the provided monoid.
func (m *COO[T]) Compact(combine semiring.Monoid[T]) {
	if len(m.Entries) == 0 {
		return
	}
	m.Sort()
	out := m.Entries[:1]
	for _, e := range m.Entries[1:] {
		last := &out[len(out)-1]
		if e.Row == last.Row && e.Col == last.Col {
			last.Val = combine.Op(last.Val, e.Val)
		} else {
			out = append(out, e)
		}
	}
	m.Entries = out
}

// Transpose returns a new COO matrix with rows and columns swapped.
func (m *COO[T]) Transpose() *COO[T] {
	t := MustCOO[T](m.NumCols, m.NumRows)
	t.Entries = make([]Entry[T], len(m.Entries))
	for i, e := range m.Entries {
		t.Entries[i] = Entry[T]{Row: e.Col, Col: e.Row, Val: e.Val}
	}
	return t
}

// Clone returns a deep copy.
func (m *COO[T]) Clone() *COO[T] {
	c := MustCOO[T](m.NumRows, m.NumCols)
	c.Entries = append([]Entry[T](nil), m.Entries...)
	return c
}

// Density returns nnz / (rows*cols), or 0 for an empty shape.
func (m *COO[T]) Density() float64 {
	if m.NumRows == 0 || m.NumCols == 0 {
		return 0
	}
	return float64(len(m.Entries)) / (float64(m.NumRows) * float64(m.NumCols))
}

// NonEmptyRows returns the sorted list of row indices that hold at least one
// entry. For hypersparse indicator matrices this is far smaller than
// NumRows, which is what the filter vector of Eq. 5 exploits.
func (m *COO[T]) NonEmptyRows() []int {
	seen := make(map[int]struct{})
	for _, e := range m.Entries {
		seen[e.Row] = struct{}{}
	}
	rows := make([]int, 0, len(seen))
	for r := range seen {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	return rows
}

// --- CSR ---------------------------------------------------------------------

// CSR is a compressed-sparse-row matrix.
type CSR[T any] struct {
	NumRows, NumCols int
	RowPtr           []int // length NumRows+1
	ColIdx           []int // length NNZ
	Val              []T   // length NNZ
}

// NNZ returns the number of stored entries.
func (m *CSR[T]) NNZ() int { return len(m.ColIdx) }

// Row returns the column indices and values of row i (views, do not modify).
func (m *CSR[T]) Row(i int) ([]int, []T) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// At returns the value at (i, j) and whether it is stored.
func (m *CSR[T]) At(i, j int) (T, bool) {
	cols, vals := m.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k], true
	}
	var zero T
	return zero, false
}

// ToCOO converts back to coordinate form.
func (m *CSR[T]) ToCOO() *COO[T] {
	out := MustCOO[T](m.NumRows, m.NumCols)
	out.Entries = make([]Entry[T], 0, m.NNZ())
	for i := 0; i < m.NumRows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			out.Entries = append(out.Entries, Entry[T]{Row: i, Col: j, Val: vals[k]})
		}
	}
	return out
}

// --- CSC ---------------------------------------------------------------------

// CSC is a compressed-sparse-column matrix. Column-oriented access is the
// natural layout for SimilarityAtScale because one column of the indicator
// matrix is one data sample.
type CSC[T any] struct {
	NumRows, NumCols int
	ColPtr           []int // length NumCols+1
	RowIdx           []int // length NNZ
	Val              []T   // length NNZ
}

// NNZ returns the number of stored entries.
func (m *CSC[T]) NNZ() int { return len(m.RowIdx) }

// Col returns the row indices and values of column j (views, do not modify).
func (m *CSC[T]) Col(j int) ([]int, []T) {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	return m.RowIdx[lo:hi], m.Val[lo:hi]
}

// At returns the value at (i, j) and whether it is stored.
func (m *CSC[T]) At(i, j int) (T, bool) {
	rows, vals := m.Col(j)
	k := sort.SearchInts(rows, i)
	if k < len(rows) && rows[k] == i {
		return vals[k], true
	}
	var zero T
	return zero, false
}

// ToCOO converts back to coordinate form.
func (m *CSC[T]) ToCOO() *COO[T] {
	out := MustCOO[T](m.NumRows, m.NumCols)
	out.Entries = make([]Entry[T], 0, m.NNZ())
	for j := 0; j < m.NumCols; j++ {
		rows, vals := m.Col(j)
		for k, i := range rows {
			out.Entries = append(out.Entries, Entry[T]{Row: i, Col: j, Val: vals[k]})
		}
	}
	return out
}

// ColNNZ returns the number of nonzeros in each column (the per-sample
// cardinalities |X_j| when the values are indicator bits).
func (m *CSC[T]) ColNNZ() []int {
	out := make([]int, m.NumCols)
	for j := 0; j < m.NumCols; j++ {
		out[j] = m.ColPtr[j+1] - m.ColPtr[j]
	}
	return out
}

// --- Conversions ---------------------------------------------------------------

// CSRFromCOO builds a CSR matrix. Duplicate entries are combined with the
// monoid.
func CSRFromCOO[T any](m *COO[T], combine semiring.Monoid[T]) *CSR[T] {
	c := m.Clone()
	c.Compact(combine)
	out := &CSR[T]{
		NumRows: c.NumRows,
		NumCols: c.NumCols,
		RowPtr:  make([]int, c.NumRows+1),
		ColIdx:  make([]int, 0, len(c.Entries)),
		Val:     make([]T, 0, len(c.Entries)),
	}
	for _, e := range c.Entries {
		out.RowPtr[e.Row+1]++
	}
	for i := 0; i < c.NumRows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	for _, e := range c.Entries {
		out.ColIdx = append(out.ColIdx, e.Col)
		out.Val = append(out.Val, e.Val)
	}
	return out
}

// CSCFromCOO builds a CSC matrix. Duplicate entries are combined with the
// monoid.
func CSCFromCOO[T any](m *COO[T], combine semiring.Monoid[T]) *CSC[T] {
	c := m.Clone()
	c.Compact(combine)
	// Re-sort column-major after dedup.
	sort.Slice(c.Entries, func(i, j int) bool {
		a, b := c.Entries[i], c.Entries[j]
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Row < b.Row
	})
	out := &CSC[T]{
		NumRows: c.NumRows,
		NumCols: c.NumCols,
		ColPtr:  make([]int, c.NumCols+1),
		RowIdx:  make([]int, 0, len(c.Entries)),
		Val:     make([]T, 0, len(c.Entries)),
	}
	for _, e := range c.Entries {
		out.ColPtr[e.Col+1]++
	}
	for j := 0; j < c.NumCols; j++ {
		out.ColPtr[j+1] += out.ColPtr[j]
	}
	for _, e := range c.Entries {
		out.RowIdx = append(out.RowIdx, e.Row)
		out.Val = append(out.Val, e.Val)
	}
	return out
}

// CSCFromCSR converts row- to column-compressed form.
func CSCFromCSR[T any](m *CSR[T]) *CSC[T] {
	colCount := make([]int, m.NumCols+1)
	for _, j := range m.ColIdx {
		colCount[j+1]++
	}
	for j := 0; j < m.NumCols; j++ {
		colCount[j+1] += colCount[j]
	}
	out := &CSC[T]{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		ColPtr:  colCount,
		RowIdx:  make([]int, m.NNZ()),
		Val:     make([]T, m.NNZ()),
	}
	next := append([]int(nil), out.ColPtr[:m.NumCols]...)
	for i := 0; i < m.NumRows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			pos := next[j]
			out.RowIdx[pos] = i
			out.Val[pos] = vals[k]
			next[j]++
		}
	}
	return out
}

// CSRFromCSC converts column- to row-compressed form.
func CSRFromCSC[T any](m *CSC[T]) *CSR[T] {
	rowCount := make([]int, m.NumRows+1)
	for _, i := range m.RowIdx {
		rowCount[i+1]++
	}
	for i := 0; i < m.NumRows; i++ {
		rowCount[i+1] += rowCount[i]
	}
	out := &CSR[T]{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		RowPtr:  rowCount,
		ColIdx:  make([]int, m.NNZ()),
		Val:     make([]T, m.NNZ()),
	}
	next := append([]int(nil), out.RowPtr[:m.NumRows]...)
	for j := 0; j < m.NumCols; j++ {
		rows, vals := m.Col(j)
		for k, i := range rows {
			pos := next[i]
			out.ColIdx[pos] = j
			out.Val[pos] = vals[k]
			next[i]++
		}
	}
	return out
}

// --- Dense ---------------------------------------------------------------------

// Dense is a row-major dense matrix. The similarity matrix S and the
// intermediate intersection matrix B are dense in the paper's setting
// (Section VI notes that the Jaccard output is generally dense).
type Dense[T any] struct {
	Rows, Cols int
	Data       []T
}

// NewDense allocates a zeroed dense matrix. A negative user-derived shape
// is reported as an error; use MustDense when the shape is structurally
// non-negative.
func NewDense[T any](rows, cols int) (*Dense[T], error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative dense dimensions %dx%d", rows, cols)
	}
	return &Dense[T]{Rows: rows, Cols: cols, Data: make([]T, rows*cols)}, nil
}

// MustDense is NewDense for shapes derived from existing matrices or block
// ranges, which cannot be negative. It panics on the error NewDense would
// return.
func MustDense[T any](rows, cols int) *Dense[T] {
	d, err := NewDense[T](rows, cols)
	if err != nil {
		//gas:invariant callers pass shapes derived from existing matrices or block ranges; see NewDense for the error-returning form
		panic(err)
	}
	return d
}

// At returns the element at (i, j).
func (d *Dense[T]) At(i, j int) T { return d.Data[i*d.Cols+j] }

// Set stores v at (i, j).
func (d *Dense[T]) Set(i, j int, v T) { d.Data[i*d.Cols+j] = v }

// Update applies f to the element at (i, j).
func (d *Dense[T]) Update(i, j int, f func(T) T) {
	d.Data[i*d.Cols+j] = f(d.Data[i*d.Cols+j])
}

// Row returns a view of row i.
func (d *Dense[T]) Row(i int) []T { return d.Data[i*d.Cols : (i+1)*d.Cols] }

// Clone returns a deep copy.
func (d *Dense[T]) Clone() *Dense[T] {
	out := MustDense[T](d.Rows, d.Cols)
	copy(out.Data, d.Data)
	return out
}

// AddInto accumulates other into d elementwise using the monoid.
func (d *Dense[T]) AddInto(other *Dense[T], add semiring.Monoid[T]) {
	if d.Rows != other.Rows || d.Cols != other.Cols {
		//gas:invariant both operands are built by the same pipeline stage from one shape; a mismatch is an accumulation bug, not reachable from input
		panic(fmt.Sprintf("sparse: dense shape mismatch %dx%d vs %dx%d", d.Rows, d.Cols, other.Rows, other.Cols))
	}
	for i := range d.Data {
		d.Data[i] = add.Op(d.Data[i], other.Data[i])
	}
}

// Map returns a new dense matrix with f applied elementwise.
func Map[T, U any](d *Dense[T], f func(T) U) *Dense[U] {
	out := MustDense[U](d.Rows, d.Cols)
	for i, v := range d.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Zip returns a new dense matrix combining a and b elementwise.
func Zip[A, B, C any](a *Dense[A], b *Dense[B], f func(A, B) C) *Dense[C] {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		//gas:invariant Zip combines matrices produced pairwise by the same derivation (e.g. S and D over one B); a mismatch is a pipeline bug
		panic("sparse: Zip shape mismatch")
	}
	out := MustDense[C](a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i], b.Data[i])
	}
	return out
}

// --- Sparse vector ---------------------------------------------------------------

// Vector is a sparse vector holding (index, value) pairs in increasing
// index order after Compact.
type Vector[T any] struct {
	Len int
	Idx []int
	Val []T
}

// NewVector returns an empty sparse vector of logical length n. A negative
// user-derived length is reported as an error; use MustVector when the
// length is structurally non-negative.
func NewVector[T any](n int) (*Vector[T], error) {
	if n < 0 {
		return nil, fmt.Errorf("sparse: negative vector length %d", n)
	}
	return &Vector[T]{Len: n}, nil
}

// MustVector is NewVector for lengths derived from existing shapes, which
// cannot be negative. It panics on the error NewVector would return.
func MustVector[T any](n int) *Vector[T] {
	v, err := NewVector[T](n)
	if err != nil {
		//gas:invariant callers pass lengths derived from existing matrix shapes; see NewVector for the error-returning form
		panic(err)
	}
	return v
}

// Append adds an (index, value) pair; duplicates are merged by Compact.
func (v *Vector[T]) Append(i int, val T) {
	if i < 0 || i >= v.Len {
		//gas:invariant vector indices come from iteration over a matrix of the same logical length; out-of-range is a builder bug
		panic(fmt.Sprintf("sparse: vector index %d out of range [0,%d)", i, v.Len))
	}
	v.Idx = append(v.Idx, i)
	v.Val = append(v.Val, val)
}

// NNZ returns the number of stored entries.
func (v *Vector[T]) NNZ() int { return len(v.Idx) }

// Compact sorts by index and merges duplicates using the monoid.
func (v *Vector[T]) Compact(combine semiring.Monoid[T]) {
	if len(v.Idx) == 0 {
		return
	}
	perm := make([]int, len(v.Idx))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return v.Idx[perm[a]] < v.Idx[perm[b]] })
	newIdx := make([]int, 0, len(v.Idx))
	newVal := make([]T, 0, len(v.Val))
	for _, p := range perm {
		if n := len(newIdx); n > 0 && newIdx[n-1] == v.Idx[p] {
			newVal[n-1] = combine.Op(newVal[n-1], v.Val[p])
		} else {
			newIdx = append(newIdx, v.Idx[p])
			newVal = append(newVal, v.Val[p])
		}
	}
	v.Idx, v.Val = newIdx, newVal
}

// Get returns the value at index i and whether it is stored. The vector
// must be compacted first.
func (v *Vector[T]) Get(i int) (T, bool) {
	k := sort.SearchInts(v.Idx, i)
	if k < len(v.Idx) && v.Idx[k] == i {
		return v.Val[k], true
	}
	var zero T
	return zero, false
}

// PrefixCounts returns, for a compacted vector, a map from stored index to
// the number of stored indices strictly before it. This is the prefix sum
// p(l) of the filter vector f(l) in Eq. 6: it assigns each nonzero row its
// compacted row position.
func (v *Vector[T]) PrefixCounts() map[int]int {
	out := make(map[int]int, len(v.Idx))
	for rank, i := range v.Idx {
		out[i] = rank
	}
	return out
}
