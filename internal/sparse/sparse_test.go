package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"genomeatscale/internal/semiring"
)

func boolOr() semiring.Monoid[bool]   { return semiring.OrBool() }
func plusI64() semiring.Monoid[int64] { return semiring.PlusInt64() }

// randomCOO builds a random boolean COO matrix with the given density.
func randomCOO(rng *rand.Rand, rows, cols int, density float64) *COO[bool] {
	m := MustCOO[bool](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				m.Append(i, j, true)
			}
		}
	}
	return m
}

func TestCOOAppendBounds(t *testing.T) {
	m := MustCOO[int64](3, 4)
	m.Append(2, 3, 5)
	if m.NNZ() != 1 {
		t.Fatal("expected one entry")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-bounds append")
		}
	}()
	m.Append(3, 0, 1)
}

func TestMustCOONegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative shape")
		}
	}()
	MustCOO[int64](-1, 2)
}

func TestConstructorsRejectNegativeShapes(t *testing.T) {
	if _, err := NewCOO[int64](-1, 2); err == nil || err.Error() != "sparse: negative dimensions -1x2" {
		t.Errorf("NewCOO(-1,2) error = %v", err)
	}
	if _, err := NewCOO[int64](1, -2); err == nil || err.Error() != "sparse: negative dimensions 1x-2" {
		t.Errorf("NewCOO(1,-2) error = %v", err)
	}
	if _, err := NewDense[float64](2, -1); err == nil || err.Error() != "sparse: negative dense dimensions 2x-1" {
		t.Errorf("NewDense(2,-1) error = %v", err)
	}
	if _, err := NewVector[int64](-5); err == nil || err.Error() != "sparse: negative vector length -5" {
		t.Errorf("NewVector(-5) error = %v", err)
	}
	if m, err := NewCOO[int64](0, 0); err != nil || m == nil {
		t.Errorf("NewCOO(0,0) = %v, %v; want empty matrix", m, err)
	}
	if d, err := NewDense[float64](2, 3); err != nil || d == nil || len(d.Data) != 6 {
		t.Errorf("NewDense(2,3) = %v, %v", d, err)
	}
	if v, err := NewVector[int64](4); err != nil || v == nil || v.Len != 4 {
		t.Errorf("NewVector(4) = %v, %v", v, err)
	}
}

func TestCOOCompactMergesDuplicates(t *testing.T) {
	m := MustCOO[int64](2, 2)
	m.Append(0, 0, 1)
	m.Append(0, 0, 2)
	m.Append(1, 1, 3)
	m.Append(0, 0, 4)
	m.Compact(plusI64())
	if m.NNZ() != 2 {
		t.Fatalf("NNZ after compact = %d, want 2", m.NNZ())
	}
	csr := CSRFromCOO(m, plusI64())
	if v, ok := csr.At(0, 0); !ok || v != 7 {
		t.Errorf("merged value = %v,%v want 7,true", v, ok)
	}
}

func TestCOOTranspose(t *testing.T) {
	m := MustCOO[int64](2, 3)
	m.Append(0, 2, 5)
	m.Append(1, 0, 7)
	tr := m.Transpose()
	if tr.NumRows != 3 || tr.NumCols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.NumRows, tr.NumCols)
	}
	csr := CSRFromCOO(tr, plusI64())
	if v, ok := csr.At(2, 0); !ok || v != 5 {
		t.Error("transposed entry (2,0) missing")
	}
	if v, ok := csr.At(0, 1); !ok || v != 7 {
		t.Error("transposed entry (0,1) missing")
	}
}

func TestCOODensityAndNonEmptyRows(t *testing.T) {
	m := MustCOO[bool](10, 10)
	m.Append(3, 1, true)
	m.Append(3, 2, true)
	m.Append(7, 0, true)
	if m.Density() != 0.03 {
		t.Errorf("density = %v, want 0.03", m.Density())
	}
	rows := m.NonEmptyRows()
	if len(rows) != 2 || rows[0] != 3 || rows[1] != 7 {
		t.Errorf("NonEmptyRows = %v, want [3 7]", rows)
	}
	empty := MustCOO[bool](0, 0)
	if empty.Density() != 0 {
		t.Error("empty density should be 0")
	}
}

func TestCSRCSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		m := randomCOO(rng, 20, 15, 0.2)
		m.Compact(boolOr())
		csr := CSRFromCOO(m, boolOr())
		csc := CSCFromCOO(m, boolOr())
		csc2 := CSCFromCSR(csr)
		csr2 := CSRFromCSC(csc)
		if csr.NNZ() != m.NNZ() || csc.NNZ() != m.NNZ() {
			t.Fatalf("nnz mismatch after conversion")
		}
		for _, e := range m.Entries {
			if _, ok := csr.At(e.Row, e.Col); !ok {
				t.Fatalf("CSR missing (%d,%d)", e.Row, e.Col)
			}
			if _, ok := csc.At(e.Row, e.Col); !ok {
				t.Fatalf("CSC missing (%d,%d)", e.Row, e.Col)
			}
			if _, ok := csc2.At(e.Row, e.Col); !ok {
				t.Fatalf("CSCFromCSR missing (%d,%d)", e.Row, e.Col)
			}
			if _, ok := csr2.At(e.Row, e.Col); !ok {
				t.Fatalf("CSRFromCSC missing (%d,%d)", e.Row, e.Col)
			}
		}
		// Absent entries must read as absent.
		for i := 0; i < 20; i++ {
			for j := 0; j < 15; j++ {
				_, inCSR := csr.At(i, j)
				_, inCSC := csc.At(i, j)
				if inCSR != inCSC {
					t.Fatalf("presence mismatch at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestCSCColNNZ(t *testing.T) {
	m := MustCOO[bool](5, 3)
	m.Append(0, 0, true)
	m.Append(1, 0, true)
	m.Append(4, 2, true)
	csc := CSCFromCOO(m, boolOr())
	nnz := csc.ColNNZ()
	want := []int{2, 0, 1}
	for j, w := range want {
		if nnz[j] != w {
			t.Errorf("ColNNZ[%d] = %d, want %d", j, nnz[j], w)
		}
	}
}

func TestDenseBasics(t *testing.T) {
	d := MustDense[int64](2, 3)
	d.Set(1, 2, 9)
	if d.At(1, 2) != 9 {
		t.Error("Set/At mismatch")
	}
	d.Update(1, 2, func(v int64) int64 { return v + 1 })
	if d.At(1, 2) != 10 {
		t.Error("Update mismatch")
	}
	row := d.Row(1)
	if len(row) != 3 || row[2] != 10 {
		t.Error("Row view wrong")
	}
	c := d.Clone()
	c.Set(0, 0, 5)
	if d.At(0, 0) == 5 {
		t.Error("Clone must be deep")
	}
	other := MustDense[int64](2, 3)
	other.Set(0, 0, 2)
	d.AddInto(other, plusI64())
	if d.At(0, 0) != 2 {
		t.Error("AddInto failed")
	}
}

func TestDenseMapZip(t *testing.T) {
	a := MustDense[int64](2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, 4)
	b := Map(a, func(v int64) float64 { return float64(v) * 2 })
	if b.At(0, 0) != 6 || b.At(1, 1) != 8 {
		t.Error("Map wrong")
	}
	z := Zip(a, b, func(x int64, y float64) float64 { return float64(x) + y })
	if z.At(1, 1) != 12 {
		t.Error("Zip wrong")
	}
}

func TestDenseShapePanics(t *testing.T) {
	a := MustDense[int64](2, 2)
	b := MustDense[int64](2, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for shape mismatch")
		}
	}()
	a.AddInto(b, plusI64())
}

func TestVectorCompactGet(t *testing.T) {
	v := MustVector[int64](100)
	v.Append(5, 1)
	v.Append(3, 2)
	v.Append(5, 3)
	v.Append(99, 7)
	v.Compact(plusI64())
	if v.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", v.NNZ())
	}
	if x, ok := v.Get(5); !ok || x != 4 {
		t.Errorf("Get(5) = %v,%v want 4,true", x, ok)
	}
	if _, ok := v.Get(4); ok {
		t.Error("Get(4) should be absent")
	}
	pc := v.PrefixCounts()
	if pc[3] != 0 || pc[5] != 1 || pc[99] != 2 {
		t.Errorf("PrefixCounts = %v", pc)
	}
}

func TestVectorAppendOutOfRange(t *testing.T) {
	v := MustVector[int64](10)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	v.Append(10, 1)
}

func TestGramTSmallKnown(t *testing.T) {
	// Samples: X1 = {0,1,2}, X2 = {1,2,3}, X3 = {5}
	m := MustCOO[int64](6, 3)
	for _, r := range []int{0, 1, 2} {
		m.Append(r, 0, 1)
	}
	for _, r := range []int{1, 2, 3} {
		m.Append(r, 1, 1)
	}
	m.Append(5, 2, 1)
	csc := CSCFromCOO(m, plusI64())
	b := GramT(csc, semiring.PlusTimesInt64())
	want := [][]int64{
		{3, 2, 0},
		{2, 3, 0},
		{0, 0, 1},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if b.At(i, j) != want[i][j] {
				t.Errorf("B[%d][%d] = %d, want %d", i, j, b.At(i, j), want[i][j])
			}
		}
	}
}

// GramT must agree with a brute-force triple loop on random matrices.
func TestGramTMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		rows := 1 + rng.Intn(30)
		cols := 1 + rng.Intn(10)
		coo := MustCOO[int64](rows, cols)
		dense := make([][]int64, rows)
		for i := range dense {
			dense[i] = make([]int64, cols)
			for j := range dense[i] {
				if rng.Float64() < 0.3 {
					dense[i][j] = 1
					coo.Append(i, j, 1)
				}
			}
		}
		csc := CSCFromCOO(coo, plusI64())
		got := GramT(csc, semiring.PlusTimesInt64())
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				var want int64
				for k := 0; k < rows; k++ {
					want += dense[k][i] * dense[k][j]
				}
				if got.At(i, j) != want {
					t.Fatalf("trial %d: B[%d][%d] = %d, want %d", trial, i, j, got.At(i, j), want)
				}
			}
		}
	}
}

func TestGramTAccumulateEqualsSumOfBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rows, cols := 40, 8
	coo := randomCOO(rng, rows, cols, 0.2)
	cooInt := MustCOO[int64](rows, cols)
	for _, e := range coo.Entries {
		cooInt.Append(e.Row, e.Col, 1)
	}
	full := GramT(CSCFromCOO(cooInt, plusI64()), semiring.PlusTimesInt64())

	acc := MustDense[int64](cols, cols)
	for lo := 0; lo < rows; lo += 10 {
		hi := lo + 10
		if hi > rows {
			hi = rows
		}
		batch := RowSlice(cooInt, lo, hi)
		GramTAccumulate(CSCFromCOO(batch, plusI64()), semiring.PlusTimesInt64(), acc)
	}
	if !Equal(full, acc, func(a, b int64) bool { return a == b }) {
		t.Error("sum of per-batch Gram products must equal the full Gram product")
	}
}

func TestColReduceRowReduce(t *testing.T) {
	m := MustCOO[int64](4, 3)
	m.Append(0, 0, 1)
	m.Append(1, 0, 1)
	m.Append(2, 2, 1)
	csc := CSCFromCOO(m, plusI64())
	csr := CSRFromCOO(m, plusI64())
	colSums := ColReduce(csc, plusI64(), func(v int64) int64 { return v })
	if colSums[0] != 2 || colSums[1] != 0 || colSums[2] != 1 {
		t.Errorf("ColReduce = %v", colSums)
	}
	rowSums := RowReduce(csr, plusI64(), func(v int64) int64 { return v })
	if rowSums[0] != 1 || rowSums[3] != 0 {
		t.Errorf("RowReduce = %v", rowSums)
	}
}

func TestSpMV(t *testing.T) {
	// A is 3x2: column 0 has rows {0,2}, column 1 has row {1}.
	m := MustCOO[int64](3, 2)
	m.Append(0, 0, 1)
	m.Append(2, 0, 1)
	m.Append(1, 1, 1)
	csc := CSCFromCOO(m, plusI64())
	x := []int64{10, 20, 30}
	y := SpMV(csc, x, semiring.PlusTimesInt64())
	if y[0] != 40 || y[1] != 20 {
		t.Errorf("SpMV = %v, want [40 20]", y)
	}
}

func TestSpMVLengthPanics(t *testing.T) {
	m := MustCOO[int64](3, 2)
	csc := CSCFromCOO(m, plusI64())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SpMV(csc, []int64{1, 2}, semiring.PlusTimesInt64())
}

func TestSpGEMMMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		da := make([][]int64, m)
		db := make([][]int64, k)
		cooA := MustCOO[int64](m, k)
		cooB := MustCOO[int64](k, n)
		for i := range da {
			da[i] = make([]int64, k)
			for j := range da[i] {
				if rng.Float64() < 0.3 {
					v := int64(1 + rng.Intn(5))
					da[i][j] = v
					cooA.Append(i, j, v)
				}
			}
		}
		for i := range db {
			db[i] = make([]int64, n)
			for j := range db[i] {
				if rng.Float64() < 0.3 {
					v := int64(1 + rng.Intn(5))
					db[i][j] = v
					cooB.Append(i, j, v)
				}
			}
		}
		a := CSRFromCOO(cooA, plusI64())
		b := CSRFromCOO(cooB, plusI64())
		c := SpGEMM(a, b, semiring.PlusTimesInt64())
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var want int64
				for t2 := 0; t2 < k; t2++ {
					want += da[i][t2] * db[t2][j]
				}
				got, ok := c.At(i, j)
				if !ok {
					got = 0
				}
				if got != want {
					t.Fatalf("trial %d: C[%d][%d] = %d, want %d", trial, i, j, got, want)
				}
			}
		}
	}
}

func TestSpGEMMDimensionPanics(t *testing.T) {
	a := CSRFromCOO(MustCOO[int64](2, 3), plusI64())
	b := CSRFromCOO(MustCOO[int64](4, 2), plusI64())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SpGEMM(a, b, semiring.PlusTimesInt64())
}

func TestFilterRows(t *testing.T) {
	m := MustCOO[int64](10, 2)
	m.Append(2, 0, 1)
	m.Append(5, 1, 1)
	m.Append(9, 0, 1)
	keep := []int{2, 5, 9}
	f := FilterRows(m, keep)
	if f.NumRows != 3 {
		t.Fatalf("filtered rows = %d, want 3", f.NumRows)
	}
	csr := CSRFromCOO(f, plusI64())
	if _, ok := csr.At(0, 0); !ok {
		t.Error("row 2 should map to filtered row 0")
	}
	if _, ok := csr.At(1, 1); !ok {
		t.Error("row 5 should map to filtered row 1")
	}
	if _, ok := csr.At(2, 0); !ok {
		t.Error("row 9 should map to filtered row 2")
	}
}

// Filtering zero rows must not change the Gram product (the identity
// A^(l)ᵀA^(l) = Ā^(l)ᵀĀ^(l) from Section III-B).
func TestFilterRowsPreservesGram(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 30 + rng.Intn(50)
		cols := 2 + rng.Intn(8)
		coo := MustCOO[int64](rows, cols)
		for i := 0; i < rows; i++ {
			if rng.Float64() < 0.5 {
				continue // leave many rows empty (hypersparse)
			}
			for j := 0; j < cols; j++ {
				if rng.Float64() < 0.3 {
					coo.Append(i, j, 1)
				}
			}
		}
		full := GramT(CSCFromCOO(coo, plusI64()), semiring.PlusTimesInt64())
		filtered := FilterRows(coo, coo.NonEmptyRows())
		fg := GramT(CSCFromCOO(filtered, plusI64()), semiring.PlusTimesInt64())
		return Equal(full, fg, func(a, b int64) bool { return a == b })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRowSlicePanics(t *testing.T) {
	m := MustCOO[int64](5, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RowSlice(m, 3, 7)
}

func TestRowSliceCoversAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := MustCOO[int64](27, 4)
	for i := 0; i < 27; i++ {
		for j := 0; j < 4; j++ {
			if rng.Float64() < 0.4 {
				m.Append(i, j, 1)
			}
		}
	}
	total := 0
	for lo := 0; lo < 27; lo += 6 {
		hi := lo + 6
		if hi > 27 {
			hi = 27
		}
		total += RowSlice(m, lo, hi).NNZ()
	}
	if total != m.NNZ() {
		t.Errorf("batched nnz = %d, want %d", total, m.NNZ())
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	a := MustDense[int64](2, 2)
	b := MustDense[int64](2, 3)
	if Equal(a, b, func(x, y int64) bool { return x == y }) {
		t.Error("different shapes must not be equal")
	}
}

func TestSortIntsHelpers(t *testing.T) {
	xs := []int{5, 3, 1, 4, 2}
	sortInts(xs)
	for i := 0; i < len(xs); i++ {
		if xs[i] != i+1 {
			t.Fatalf("sortInts wrong: %v", xs)
		}
	}
	long := make([]int, 100)
	for i := range long {
		long[i] = 99 - i
	}
	sortInts(long)
	for i := range long {
		if long[i] != i {
			t.Fatalf("sortInts long wrong at %d", i)
		}
	}
}
