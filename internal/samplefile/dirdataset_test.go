package samplefile

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"genomeatscale/internal/core"
	"genomeatscale/internal/tile"
)

// writeSampleDir writes n deterministic samples into dir, alternating text
// and binary encodings, and returns the raw value sets.
func writeSampleDir(t *testing.T, dir string, n int, m uint64) [][]uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)*31 + int64(m)))
	samples := make([][]uint64, n)
	for i := 0; i < n; i++ {
		var vals []uint64
		for v := uint64(0); v < m; v++ {
			if rng.Float64() < 0.07 {
				vals = append(vals, v)
			}
		}
		samples[i] = vals
		path := filepath.Join(dir, fmt.Sprintf("s-%03d.txt", i))
		write := WriteText
		if i%2 == 1 {
			path = filepath.Join(dir, fmt.Sprintf("s-%03d.smp", i))
			write = WriteBinary
		}
		if err := write(path, vals); err != nil {
			t.Fatal(err)
		}
	}
	return samples
}

func TestSampleErrCorruptAndUnreadable(t *testing.T) {
	dir := t.TempDir()
	WriteText(filepath.Join(dir, "a.txt"), []uint64{1, 2})
	// Truncated binary: valid magic, header promising values that are not
	// there.
	os.WriteFile(filepath.Join(dir, "b.smp"),
		append(append([]byte{}, binaryMagic[:]...), 0x05), 0o644)
	// Garbage text.
	os.WriteFile(filepath.Join(dir, "c.txt"), []byte("12\nnot-a-number\n"), 0o644)
	// d.txt exists at open time but vanishes before it is read.
	gone := filepath.Join(dir, "d.txt")
	WriteText(gone, []uint64{3})

	ds, err := OpenDir(dir, "*", 100)
	if err != nil {
		t.Fatal(err)
	}
	os.Remove(gone)

	if vals, err := ds.SampleErr(0); err != nil || len(vals) != 2 {
		t.Errorf("healthy sample: %v, %v", vals, err)
	}
	if _, err := ds.SampleErr(1); err == nil || !strings.Contains(err.Error(), "b.smp") {
		t.Errorf("truncated binary: err = %v, want error naming the file", err)
	}
	if _, err := ds.SampleErr(2); err == nil {
		t.Error("garbage text should error")
	}
	if _, err := ds.SampleErr(3); err == nil {
		t.Error("vanished file should error")
	}
	if _, err := ds.SampleErr(99); err == nil {
		t.Error("out-of-range index should error")
	}
}

func TestSampleErrCachesErrorUntilEvicted(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "a.smp")
	os.WriteFile(bad, append(append([]byte{}, binaryMagic[:]...), 0x05), 0o644)
	ds, err := OpenDir(dir, "*", 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.SampleErr(0); err == nil {
		t.Fatal("corrupt file should error")
	}
	// Repair the file: the cached error still answers until evicted...
	if err := WriteBinary(bad, []uint64{7}); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.SampleErr(0); err == nil {
		t.Error("error should be cached until eviction")
	}
	if got := ds.IngestStats().Loads; got != 1 {
		t.Errorf("Loads = %d, want 1 (error cached, not retried)", got)
	}
	// ...and eviction retries the load.
	ds.Evict(0)
	if vals, err := ds.SampleErr(0); err != nil || len(vals) != 1 || vals[0] != 7 {
		t.Errorf("after Evict: %v, %v", vals, err)
	}
}

// TestConcurrentSampleErrSingleFlight hammers every sample from many
// goroutines (run with -race): each file must be loaded exactly once and
// every reader must see the same correct values.
func TestConcurrentSampleErrSingleFlight(t *testing.T) {
	dir := t.TempDir()
	const n = 24
	want := writeSampleDir(t, dir, n, 500)
	ds, err := OpenDir(dir, "*", 500)
	if err != nil {
		t.Fatal(err)
	}
	const readers = 8
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i := 0; i < n; i++ {
					vals, err := ds.SampleErr(i)
					if err != nil {
						errs[r] = err
						return
					}
					if len(vals) != len(want[i]) {
						errs[r] = fmt.Errorf("sample %d: %d values, want %d", i, len(vals), len(want[i]))
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := ds.IngestStats().Loads; got != n {
		t.Errorf("Loads = %d, want %d (single-flight must dedup concurrent loads)", got, n)
	}
}

// TestConcurrentPrefetchRace exercises the prefetching, evicting loader
// from concurrent readers (run with -race).
func TestConcurrentPrefetchRace(t *testing.T) {
	dir := t.TempDir()
	const n = 40
	want := writeSampleDir(t, dir, n, 300)
	ds, err := OpenDirOptions(dir, 300, DirOptions{Prefetch: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r % 3; i < n; i++ {
				vals, err := ds.SampleErr(i)
				if err != nil {
					t.Errorf("sample %d: %v", i, err)
					return
				}
				if len(vals) != len(want[i]) {
					t.Errorf("sample %d: %d values, want %d", i, len(vals), len(want[i]))
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestPrefetchEvictionBound is the memory-bound acceptance check: a full
// multi-batch pipeline run over a prefetching DirDataset must never hold
// more than two prefetch windows of samples resident, and must still agree
// exactly with the fully in-memory run.
func TestPrefetchEvictionBound(t *testing.T) {
	dir := t.TempDir()
	const n, m = 30, 400
	const window = 3
	raw := writeSampleDir(t, dir, n, m)
	ds, err := OpenDirOptions(dir, m, DirOptions{Prefetch: window})
	if err != nil {
		t.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.BatchCount = 3
	res, err := core.ComputeSequential(ds, opts)
	if err != nil {
		t.Fatal(err)
	}

	if res.Stats.Ingest == nil {
		t.Fatal("run over a DirDataset must carry ingestion stats")
	}
	ing := *res.Stats.Ingest
	if ing.PeakResident > 2*window {
		t.Errorf("peak resident = %d samples, want <= 2x window = %d", ing.PeakResident, 2*window)
	}
	if ing.Loads < int64(n) {
		t.Errorf("Loads = %d, want >= %d", ing.Loads, n)
	}
	if ing.Evictions == 0 {
		t.Error("a bounded multi-batch scan of 30 samples must evict")
	}

	mem, err := core.NewInMemoryDataset(nil, raw, m)
	if err != nil {
		t.Fatal(err)
	}
	memRes, err := core.ComputeSequential(mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if res.Similarity(i, j) != memRes.Similarity(i, j) {
				t.Fatalf("S(%d,%d): out-of-core %v != in-memory %v", i, j,
					res.Similarity(i, j), memRes.Similarity(i, j))
			}
		}
	}

	// The distributed path adds concurrent demand loads — at most one per
	// rank — on top of the budget; background arms stay within it.
	const procs = 4
	dds, err := OpenDirOptions(dir, m, DirOptions{Prefetch: window})
	if err != nil {
		t.Fatal(err)
	}
	dopts := opts
	dopts.Procs = procs
	dres, err := core.Compute(dds, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if peak := dres.Stats.Ingest.PeakResident; peak > 2*window+procs {
		t.Errorf("distributed peak resident = %d, want <= 2x window + procs = %d", peak, 2*window+procs)
	}
}

// TestDirDatasetMatchesInMemory cross-checks the out-of-core loader
// against the in-memory dataset across prefetch windows and both execution
// paths.
func TestDirDatasetMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	const n, m = 18, 250
	raw := writeSampleDir(t, dir, n, m)
	mem, err := core.NewInMemoryDataset(nil, raw, m)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.ComputeSequential(mem, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, prefetch := range []int{0, 2, 16} {
		for _, procs := range []int{1, 3} {
			ds, err := OpenDirOptions(dir, m, DirOptions{Prefetch: prefetch})
			if err != nil {
				t.Fatal(err)
			}
			opts := core.DefaultOptions()
			opts.Procs = procs
			opts.BatchCount = 2
			var res *core.Result
			if procs > 1 {
				res, err = core.Compute(ds, opts)
			} else {
				res, err = core.ComputeSequential(ds, opts)
			}
			if err != nil {
				t.Fatalf("prefetch=%d procs=%d: %v", prefetch, procs, err)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if res.Similarity(i, j) != ref.Similarity(i, j) {
						t.Fatalf("prefetch=%d procs=%d: S(%d,%d) mismatch", prefetch, procs, i, j)
					}
				}
			}
		}
	}
}

// TestEngineErrorsOnCorruptFile is the fault-tolerance acceptance check:
// a corrupt file inside a large directory surfaces from Engine.Similarity
// and Engine.Stream as a run error naming the file, on the sequential and
// the distributed path alike — never as a panic.
func TestEngineErrorsOnCorruptFile(t *testing.T) {
	dir := t.TempDir()
	const n, m = 12, 200
	writeSampleDir(t, dir, n, m)
	// Corrupt one mid-collection binary file in place.
	bad := filepath.Join(dir, "s-007.smp")
	if err := os.WriteFile(bad, append(append([]byte{}, binaryMagic[:]...), 0xff, 0xff), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 4} {
		for _, mode := range []string{"similarity", "stream"} {
			ds, err := OpenDirOptions(dir, m, DirOptions{Prefetch: 2})
			if err != nil {
				t.Fatal(err)
			}
			opts := core.DefaultOptions()
			opts.Procs = procs
			opts.BatchCount = 2
			e, err := core.NewEngine(opts)
			if err != nil {
				t.Fatal(err)
			}
			var res *core.Result
			if mode == "stream" {
				res, err = e.Stream(nil, ds, tile.Discard)
			} else {
				res, err = e.Similarity(nil, ds)
			}
			if err == nil {
				t.Fatalf("procs=%d %s: corrupt file must fail the run", procs, mode)
			}
			if res != nil {
				t.Errorf("procs=%d %s: failed run must not return a result", procs, mode)
			}
			if !strings.Contains(err.Error(), "s-007.smp") {
				t.Errorf("procs=%d %s: error should name the corrupt file, got: %v", procs, mode, err)
			}
		}
	}
}

func TestLoadRange(t *testing.T) {
	dir := t.TempDir()
	const n, m = 20, 100
	writeSampleDir(t, dir, n, m)

	// Unbounded: the whole range loads eagerly, once.
	ds, err := OpenDir(dir, "*", m)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.LoadRange(0, n); err != nil {
		t.Fatal(err)
	}
	if got := ds.IngestStats().Resident; got != n {
		t.Errorf("resident after LoadRange = %d, want %d", got, n)
	}
	if err := ds.LoadRange(0, n); err != nil {
		t.Fatal(err)
	}
	if got := ds.IngestStats().Loads; got != n {
		t.Errorf("Loads = %d, want %d (second LoadRange must be a no-op)", got, n)
	}

	// Bounded: the hint clamps to the resident budget instead of evicting
	// what it just loaded.
	bounded, err := OpenDirOptions(dir, m, DirOptions{Prefetch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := bounded.LoadRange(0, n); err != nil {
		t.Fatal(err)
	}
	if got := bounded.IngestStats().Resident; got > 6 {
		t.Errorf("bounded LoadRange left %d resident, want <= 6", got)
	}

	// Errors inside the range propagate.
	os.WriteFile(filepath.Join(dir, "s-002.txt"), []byte("bogus\n"), 0o644)
	ds2, err := OpenDir(dir, "*", m)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds2.LoadRange(0, n); err == nil {
		t.Error("LoadRange over a corrupt file should report the error")
	}
}
