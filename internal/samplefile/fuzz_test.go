package samplefile

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadBinary feeds arbitrary bytes to the binary sample reader. The
// reader must never panic or allocate proportionally to an untrusted
// header (the corrupt-header survival the ingestion layer depends on), and
// anything it does accept must be a strictly increasing value list that
// round-trips through WriteBinary.
func FuzzReadBinary(f *testing.F) {
	// Seed 1: a well-formed file.
	dir := f.TempDir()
	valid := filepath.Join(dir, "valid.smp")
	if err := WriteBinary(valid, []uint64{0, 3, 7, 1 << 40}); err != nil {
		f.Fatal(err)
	}
	validBytes, err := os.ReadFile(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(validBytes)
	// Seed 2: valid magic, header claiming ~10^18 values with none behind
	// it — the header that used to drive a huge preallocation.
	huge := append([]byte{}, binaryMagic[:]...)
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], 1<<60)
	f.Add(append(huge, buf[:n]...))
	// Seed 3: truncated value stream.
	f.Add(append(append([]byte{}, binaryMagic[:]...), 0x05, 0x01))
	// Seed 4: non-monotone deltas are impossible in the encoding, but an
	// overflowing delta wraps — the reader must reject the wrap.
	wrap := append(append([]byte{}, binaryMagic[:]...), 0x02, 0x01)
	n = binary.PutUvarint(buf[:], 1<<64-1)
	f.Add(append(wrap, buf[:n]...))
	// Seed 5: not a sample file at all.
	f.Add([]byte("12\n34\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.smp")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		vals, err := ReadBinary(path)
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] <= vals[i-1] {
				t.Fatalf("accepted non-increasing values: vals[%d]=%d, vals[%d]=%d",
					i-1, vals[i-1], i, vals[i])
			}
		}
		// Round-trip: what the reader accepted must re-encode and re-read
		// to the same values.
		again := filepath.Join(t.TempDir(), "again.smp")
		if err := WriteBinary(again, vals); err != nil {
			t.Fatalf("re-encoding accepted values failed: %v", err)
		}
		got, err := ReadBinary(again)
		if err != nil {
			t.Fatalf("re-reading round-tripped file failed: %v", err)
		}
		if len(got) != len(vals) {
			t.Fatalf("round trip changed length: %d -> %d", len(vals), len(got))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("round trip changed value %d: %d -> %d", i, vals[i], got[i])
			}
		}
	})
}

// TestReadSniffShortAndUnreadable locks in the Read magic-sniffing fix: a
// file shorter than the magic is text, a file starting with exactly the
// magic prefix but holding text is rejected by the binary parser (not
// silently misread), and the sniff error path reports failures.
func TestReadSniffShortAndUnreadable(t *testing.T) {
	dir := t.TempDir()
	short := filepath.Join(dir, "short.txt")
	os.WriteFile(short, []byte("5\n"), 0o644)
	vals, err := Read(short)
	if err != nil || len(vals) != 1 || vals[0] != 5 {
		t.Errorf("short text file: %v, %v", vals, err)
	}
	empty := filepath.Join(dir, "empty.txt")
	os.WriteFile(empty, nil, 0o644)
	if vals, err := Read(empty); err != nil || len(vals) != 0 {
		t.Errorf("empty file: %v, %v", vals, err)
	}
	magicOnly := filepath.Join(dir, "magic.smp")
	os.WriteFile(magicOnly, binaryMagic[:], 0o644)
	if _, err := Read(magicOnly); err == nil {
		t.Error("magic with no header must error, not misdetect")
	}
}

// TestReadBinaryHeaderBombRejected locks in the preallocation cap: a tiny
// file claiming 2^60 values must be rejected up front.
func TestReadBinaryHeaderBombRejected(t *testing.T) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], 1<<60)
	data := append(append([]byte{}, binaryMagic[:]...), buf[:n]...)
	path := filepath.Join(t.TempDir(), "bomb.smp")
	os.WriteFile(path, data, 0o644)
	_, err := ReadBinary(path)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("corrupt")) {
		t.Errorf("header bomb: err = %v, want corrupt-file rejection", err)
	}
}
