// Package samplefile implements the on-disk sample representation of
// GenomeAtScale: "GenomeAtScale includes infrastructure to produce files
// with a sorted numerical representation for each data sample. Each
// processor is responsible for reading in a subset of these files, scanning
// through one batch at a time." (Section IV).
//
// A sample file holds one data sample as a sorted list of attribute values
// (for genomes, 2-bit packed k-mer codes). Two encodings are supported:
//
//   - text: one decimal value per line (the format of the paper's Listing 2
//     pseudocode, also accepted by cmd/similarityatscale), and
//   - binary: a small header followed by delta-encoded varint values, which
//     is far more compact for the hypersparse k-mer sets of real samples.
//
// DirDataset exposes a directory of such files as a core.DatasetV2: samples
// load lazily — in parallel, with per-sample single-flight deduplication —
// and load failures (unreadable files, corrupt encodings, values outside
// the declared universe) propagate as errors through the pipelines instead
// of panicking. With a prefetch window configured, the loader reads the
// next block of samples while the current block computes and evicts
// least-recently-used samples so the resident set stays bounded by about
// two blocks, no matter how many files the collection holds.
package samplefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"genomeatscale/internal/core"
)

// binaryMagic identifies binary sample files.
var binaryMagic = [8]byte{'G', 'A', 'S', 'S', 'M', 'P', 'L', '1'}

// WriteText writes a sample as one decimal value per line, sorted and
// de-duplicated. Close failures are reported: on a full disk the write-back
// of buffered data can fail only at close time, and swallowing that error
// would silently lose data.
func WriteText(path string, values []uint64) (err error) {
	cleaned := normalize(values)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("samplefile: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("samplefile: closing %s: %w", path, cerr)
		}
	}()
	w := bufio.NewWriter(f)
	for _, v := range cleaned {
		if _, err := fmt.Fprintln(w, v); err != nil {
			return fmt.Errorf("samplefile: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("samplefile: %w", err)
	}
	return nil
}

// ReadText reads a text sample file. Blank lines and '#' comments are
// ignored; values are sorted and de-duplicated on return.
func ReadText(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("samplefile: %w", err)
	}
	defer f.Close()
	var out []uint64
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 1024*1024), 256*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("samplefile: %s:%d: %w", path, lineNo, err)
		}
		out = append(out, v)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("samplefile: %w", err)
	}
	return normalize(out), nil
}

// WriteBinary writes a sample in the compact binary encoding: the magic,
// the value count, and the sorted values as varint deltas. Like WriteText
// it reports close failures, which is where a full disk surfaces.
func WriteBinary(path string, values []uint64) (err error) {
	cleaned := normalize(values)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("samplefile: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("samplefile: closing %s: %w", path, cerr)
		}
	}()
	w := bufio.NewWriter(f)
	if _, err := w.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("samplefile: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(cleaned)))
	if _, err := w.Write(buf[:n]); err != nil {
		return fmt.Errorf("samplefile: %w", err)
	}
	prev := uint64(0)
	for i, v := range cleaned {
		delta := v
		if i > 0 {
			delta = v - prev
		}
		prev = v
		n := binary.PutUvarint(buf[:], delta)
		if _, err := w.Write(buf[:n]); err != nil {
			return fmt.Errorf("samplefile: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("samplefile: %w", err)
	}
	return nil
}

// maxPrealloc caps how many values ReadBinary preallocates from the
// untrusted header count (1<<20 entries = 8 MiB); larger samples grow by
// appending, so a corrupt header cannot OOM the process.
const maxPrealloc = 1 << 20

// ReadBinary reads a binary sample file written by WriteBinary.
func ReadBinary(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("samplefile: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("samplefile: %w", err)
	}
	r := bufio.NewReader(f)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("samplefile: %s: reading magic: %w", path, err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("samplefile: %s is not a binary sample file", path)
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("samplefile: %s: reading count: %w", path, err)
	}
	// Every encoded value takes at least one byte, so a count exceeding the
	// bytes left in the file is a corrupt header — reject it before
	// allocating anything proportional to it.
	if remaining := info.Size() - int64(len(magic)); int64(count) < 0 || int64(count) > remaining {
		return nil, fmt.Errorf("samplefile: %s: header claims %d values but only %d bytes follow (corrupt file)",
			path, count, remaining)
	}
	prealloc := count
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	out := make([]uint64, 0, prealloc)
	var prev uint64
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("samplefile: %s: value %d: %w", path, i, err)
		}
		v := delta
		if i > 0 {
			v = prev + delta
		}
		// The encoding holds sorted de-duplicated values, so every delta
		// after the first value is at least 1: a wrapped (v < prev) or
		// zero delta (v == prev) is a corrupt file.
		if i > 0 && v <= prev {
			return nil, fmt.Errorf("samplefile: %s: non-monotone values (corrupt file)", path)
		}
		out = append(out, v)
		prev = v
	}
	return out, nil
}

// Read loads a sample file, auto-detecting the encoding from the magic. A
// file too short to hold the magic is treated as text; any other read
// failure during sniffing propagates instead of silently misdetecting the
// encoding.
func Read(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("samplefile: %w", err)
	}
	var magic [8]byte
	_, err = io.ReadFull(f, magic[:])
	f.Close()
	switch {
	case err == nil:
		if magic == binaryMagic {
			return ReadBinary(path)
		}
		return ReadText(path)
	case err == io.EOF || err == io.ErrUnexpectedEOF:
		// Shorter than the magic: cannot be binary.
		return ReadText(path)
	default:
		return nil, fmt.Errorf("samplefile: %s: sniffing encoding: %w", path, err)
	}
}

// normalize sorts and de-duplicates values.
func normalize(values []uint64) []uint64 {
	out := append([]uint64(nil), values...)
	slices.Sort(out)
	return slices.Compact(out)
}

// DirOptions configures how OpenDirOptions exposes a directory of sample
// files as a dataset.
type DirOptions struct {
	// Pattern is the glob the sample files must match, relative to the
	// directory ("*" when empty).
	Pattern string

	// Prefetch is the read-ahead window in samples: when sample i is
	// accessed, samples (i, i+Prefetch] start loading in the background, so
	// the next block of files is read while the current block computes.
	// 0 disables prefetch and eviction: samples load on first access and
	// stay cached (the historical behavior, minus the global lock held
	// across disk reads).
	Prefetch int

	// Parallelism bounds the number of concurrent background loads
	// (prefetch and LoadRange alike). A SampleErr cache miss loads
	// directly, outside this bound; a demand for a sample the read-ahead
	// already scheduled joins that in-flight load (single-flight) and so
	// waits its turn in the background queue. 0 resolves to min(Prefetch,
	// GOMAXPROCS) when prefetching, GOMAXPROCS otherwise.
	Parallelism int

	// MaxResident bounds how many samples are held in memory at once; when
	// the bound is exceeded the least-recently-used samples are evicted
	// (and transparently reloaded if accessed again). 0 resolves to
	// 2×Prefetch — the current block plus the block being prefetched —
	// when prefetching, and to no bound otherwise. Values ≤ Prefetch are
	// raised to Prefetch+1 so the read-ahead cannot evict itself.
	MaxResident int
}

// DirDataset is a core.DatasetV2 backed by a directory of sample files,
// one file per sample, loaded lazily. Loads are deduplicated per sample
// (single-flight) and run outside the metadata lock, so concurrent readers
// — the virtual ranks of the distributed path — load different files in
// parallel instead of serializing on one mutex. Load failures are cached
// and returned from SampleErr; they propagate through the engine as run
// errors. See DirOptions for the prefetch/eviction behavior that keeps
// the resident set memory-bounded on collections far larger than RAM.
type DirDataset struct {
	names      []string
	paths      []string
	attributes uint64

	prefetch    int
	maxResident int
	sem         chan struct{} // bounds concurrent loader goroutines

	// mu guards the per-sample states, the LRU list and the counters; it is
	// never held across file I/O.
	mu      sync.Mutex
	states  []sampleState
	lruHead int // most recently used loaded sample, -1 when none
	lruTail int // least recently used loaded sample, -1 when none
	// scheduledHi is the exclusive end of the furthest prefetch window a
	// monotone scan has scheduled; accesses inside the already-scheduled
	// window skip the O(window) arm scan, keeping the cache-hit path O(1).
	scheduledHi int
	stats       core.IngestStats
}

// sampleState tracks one sample's cache entry.
type sampleState struct {
	vals   []uint64
	err    error
	loaded bool          // vals/err are valid
	flight chan struct{} // non-nil while a load is in flight; closed on install

	// Intrusive LRU links over loaded samples (-1 = none).
	prev, next int
}

var (
	_ core.DatasetV2       = (*DirDataset)(nil)
	_ core.IngestStatser   = (*DirDataset)(nil)
	_ core.RangePrefetcher = (*DirDataset)(nil)
	_ core.EvictingDataset = (*DirDataset)(nil)
)

// OpenDir lists the sample files matching the glob pattern (e.g. "*.txt" or
// "*") under dir, in lexicographic order, and returns a lazily-loading
// dataset over the attribute universe [0, numAttributes) with prefetch and
// eviction disabled — every loaded sample stays cached. Use OpenDirOptions
// to bound memory on large collections.
func OpenDir(dir, pattern string, numAttributes uint64) (*DirDataset, error) {
	return OpenDirOptions(dir, numAttributes, DirOptions{Pattern: pattern})
}

// OpenDirOptions is OpenDir with explicit ingestion options.
func OpenDirOptions(dir string, numAttributes uint64, opts DirOptions) (*DirDataset, error) {
	if numAttributes == 0 {
		return nil, fmt.Errorf("samplefile: attribute universe must be positive")
	}
	if opts.Prefetch < 0 {
		return nil, fmt.Errorf("samplefile: Prefetch must be non-negative, got %d", opts.Prefetch)
	}
	if opts.Parallelism < 0 {
		return nil, fmt.Errorf("samplefile: Parallelism must be non-negative, got %d", opts.Parallelism)
	}
	if opts.MaxResident < 0 {
		return nil, fmt.Errorf("samplefile: MaxResident must be non-negative, got %d", opts.MaxResident)
	}
	pattern := opts.Pattern
	if pattern == "" {
		pattern = "*"
	}
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		return nil, fmt.Errorf("samplefile: %w", err)
	}
	var files []string
	for _, m := range matches {
		info, err := os.Stat(m)
		if err != nil {
			return nil, fmt.Errorf("samplefile: %w", err)
		}
		if !info.IsDir() {
			files = append(files, m)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("samplefile: no sample files match %q in %s", pattern, dir)
	}
	sort.Strings(files)

	par := opts.Parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
		if opts.Prefetch > 0 && opts.Prefetch < par {
			par = opts.Prefetch
		}
	}
	budget := opts.MaxResident
	if budget == 0 && opts.Prefetch > 0 {
		budget = 2 * opts.Prefetch
	}
	if budget > 0 && budget <= opts.Prefetch {
		budget = opts.Prefetch + 1
	}

	ds := &DirDataset{
		attributes:  numAttributes,
		prefetch:    opts.Prefetch,
		maxResident: budget,
		sem:         make(chan struct{}, par),
		states:      make([]sampleState, len(files)),
		lruHead:     -1,
		lruTail:     -1,
	}
	for i := range ds.states {
		ds.states[i].prev = -1
		ds.states[i].next = -1
	}
	for _, f := range files {
		ds.paths = append(ds.paths, f)
		name := strings.TrimSuffix(filepath.Base(f), filepath.Ext(f))
		ds.names = append(ds.names, name)
	}
	return ds, nil
}

// NumSamples implements core.Dataset.
func (d *DirDataset) NumSamples() int { return len(d.paths) }

// NumAttributes implements core.Dataset.
func (d *DirDataset) NumAttributes() uint64 { return d.attributes }

// SampleName implements core.Dataset.
func (d *DirDataset) SampleName(i int) string { return d.names[i] }

// Path returns the backing file of sample i.
func (d *DirDataset) Path(i int) string { return d.paths[i] }

// SampleErr implements core.DatasetV2: it returns sample i, loading (or
// reloading, after an eviction) the backing file if needed. Concurrent
// calls for the same sample share one load; calls for different samples
// load in parallel. A failed load — unreadable file, corrupt encoding, or
// a value outside the declared universe — is cached and returned as an
// error until the entry is evicted (see Evict), never panicking.
func (d *DirDataset) SampleErr(i int) ([]uint64, error) {
	if i < 0 || i >= len(d.paths) {
		return nil, fmt.Errorf("samplefile: sample index %d out of range [0, %d)", i, len(d.paths))
	}
	for {
		d.mu.Lock()
		st := &d.states[i]
		if st.loaded {
			d.lruTouch(i)
			vals, err := st.vals, st.err
			d.mu.Unlock()
			d.prefetchAfter(i)
			return vals, err
		}
		if st.flight != nil {
			ch := st.flight
			d.mu.Unlock()
			<-ch
			continue
		}
		d.armLocked(i)
		d.mu.Unlock()

		// Read ahead of this position while we load sample i ourselves.
		d.prefetchAfter(i)
		start := time.Now()
		vals, err := d.load(i)
		d.install(i, vals, err, time.Since(start).Seconds())
		return vals, err
	}
}

// Sample implements the legacy core.Dataset contract, which has no error
// channel: a load failure panics. The execution pipelines never call it —
// they go through SampleErr — so the panic can only reach callers using
// the legacy interface directly.
func (d *DirDataset) Sample(i int) []uint64 {
	vals, err := d.SampleErr(i)
	if err != nil {
		//gas:invariant documented legacy interface contract: execution pipelines use SampleErr; the panic can only reach direct legacy callers
		panic(fmt.Sprintf("samplefile: %v (use SampleErr for error propagation)", err))
	}
	return vals
}

// LoadRange implements core.DatasetV2: it eagerly loads samples [lo, hi)
// across the parallel loaders and waits for them, returning the first load
// error. On a memory-bounded dataset the range is clamped to the resident
// budget — LoadRange is a prefetch hint, not a pin, so asking for more
// than fits would only evict what it just loaded.
func (d *DirDataset) LoadRange(lo, hi int) error {
	lo, hi = d.clampRange(lo, hi)
	if lo >= hi {
		return nil
	}
	d.mu.Lock()
	pending := make([]int, 0, hi-lo)
	for j := lo; j < hi; j++ {
		st := &d.states[j]
		if st.loaded {
			continue
		}
		if st.flight == nil {
			d.armLocked(j)
			go d.loadAsync(j)
		}
		pending = append(pending, j)
	}
	d.mu.Unlock()

	var firstErr error
	for _, j := range pending {
		for {
			d.mu.Lock()
			st := &d.states[j]
			if st.loaded {
				if st.err != nil && firstErr == nil {
					firstErr = st.err
				}
				d.mu.Unlock()
				break
			}
			ch := st.flight
			d.mu.Unlock()
			if ch == nil {
				// Loaded and already evicted between our checks; it was
				// available, which is all a prefetch hint promises.
				break
			}
			<-ch
		}
	}
	return firstErr
}

// Evict drops the cached contents of sample i — values or a cached load
// error alike — so that memory can be reclaimed (or a failed load retried)
// explicitly. Samples evicted automatically by the resident bound behave
// identically: the next access reloads the file.
func (d *DirDataset) Evict(i int) {
	d.mu.Lock()
	if d.states[i].loaded {
		d.evictLocked(i)
	}
	d.mu.Unlock()
}

// IngestStats implements core.IngestStatser; the engine snapshots these
// counters into RunStats.Ingest at the end of a run.
func (d *DirDataset) IngestStats() core.IngestStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// MaxValue returns the largest attribute value across all samples (loading
// them if needed); useful for choosing the universe size when it is not
// known a priori. The scan honors the prefetch window and resident bound
// like any other sequential pass.
func (d *DirDataset) MaxValue() (uint64, error) {
	var m uint64
	for i := range d.paths {
		s, err := d.SampleErr(i)
		if err != nil {
			return 0, err
		}
		if len(s) > 0 && s[len(s)-1] > m {
			m = s[len(s)-1]
		}
	}
	return m, nil
}

// load reads and validates the backing file of sample i. It runs without
// holding d.mu, so loads for different samples proceed in parallel.
func (d *DirDataset) load(i int) ([]uint64, error) {
	values, err := Read(d.paths[i])
	if err != nil {
		return nil, err
	}
	for _, v := range values {
		if v >= d.attributes {
			return nil, fmt.Errorf("samplefile: %s contains value %d outside the declared universe %d",
				d.paths[i], v, d.attributes)
		}
	}
	if values == nil {
		values = []uint64{}
	}
	return values, nil
}

// loadAsync is the background-loader body: it performs the load for a
// sample whose flight channel the scheduler already armed, bounded by the
// parallelism semaphore.
func (d *DirDataset) loadAsync(j int) {
	d.sem <- struct{}{}
	start := time.Now()
	vals, err := d.load(j)
	elapsed := time.Since(start).Seconds()
	<-d.sem
	d.install(j, vals, err, elapsed)
}

// armLocked reserves the cache slot for a load of sample i that is about
// to start: it creates the flight channel waiters block on and counts the
// sample against the resident budget immediately — an in-flight load holds
// a decoded sample before it installs, so reserving at arm time keeps
// PeakResident an honest bound on simultaneously held samples (cached and
// in flight alike) and evicts ahead of the load instead of after it.
// d.mu must be held; armed entries are not in the LRU list and therefore
// cannot be evicted before they install. Background arms respect the
// budget (see armRangeLocked), so the bound can be exceeded only by
// concurrent demand loads — at most one per concurrent reader.
func (d *DirDataset) armLocked(i int) {
	d.states[i].flight = make(chan struct{})
	d.stats.Resident++
	if d.maxResident > 0 {
		for d.stats.Resident > d.maxResident && d.lruTail != -1 {
			d.evictLocked(d.lruTail)
		}
	}
	if d.stats.Resident > d.stats.PeakResident {
		d.stats.PeakResident = d.stats.Resident
	}
}

// install publishes a finished load: it stores the result, wakes the
// waiters and moves the sample from its armed reservation (see armLocked)
// into the LRU list.
func (d *DirDataset) install(i int, vals []uint64, err error, seconds float64) {
	d.mu.Lock()
	st := &d.states[i]
	st.vals, st.err, st.loaded = vals, err, true
	close(st.flight)
	st.flight = nil
	d.lruPushFront(i)
	d.stats.Loads++
	d.stats.LoadSeconds += seconds
	d.mu.Unlock()
}

// armRangeLocked schedules background loads for every sample in [lo, hi)
// that is neither cached nor already in flight; d.mu must be held. Unlike
// a demand load — which must always proceed — background scheduling stops
// when the budget is exhausted by in-flight loads with nothing left to
// evict, so concurrent arm sources (per-rank prefetch windows, the
// engine's batch-restart hint) cannot stack reservations past the bound.
func (d *DirDataset) armRangeLocked(lo, hi int) {
	for j := lo; j < hi; j++ {
		st := &d.states[j]
		if st.loaded || st.flight != nil {
			continue
		}
		if d.maxResident > 0 && d.stats.Resident >= d.maxResident && d.lruTail == -1 {
			return
		}
		d.armLocked(j)
		go d.loadAsync(j)
	}
}

// prefetchAfter schedules background loads for the window following sample
// i, so the next block of files is read while the caller computes on the
// current one. A monotone scan advances the scheduled frontier by one
// sample per access, and accesses inside the already-scheduled window
// return after an O(1) check — the cache-hit path does not rescan the
// window under the lock. A jump far behind the frontier (the next batch
// restarting the scan, a different rank's position) resets it.
func (d *DirDataset) prefetchAfter(i int) {
	if d.prefetch <= 0 {
		return
	}
	hi := i + d.prefetch // inclusive end of the window
	if hi >= len(d.paths) {
		hi = len(d.paths) - 1
	}
	if hi < i+1 {
		return
	}
	d.mu.Lock()
	switch {
	case hi >= d.scheduledHi:
		// At or ahead of the frontier: extend it, arming only the samples
		// no earlier access already scheduled.
		lo := i + 1
		if lo < d.scheduledHi {
			lo = d.scheduledHi
		}
		d.armRangeLocked(lo, hi+1)
		d.scheduledHi = hi + 1
	case i < d.scheduledHi-2*d.prefetch:
		// Far behind the frontier: the scan restarted, and what this
		// window needs has likely been evicted. Re-arm it and move the
		// frontier back.
		d.armRangeLocked(i+1, hi+1)
		d.scheduledHi = hi + 1
		// Otherwise the access is inside the scheduled window: nothing to
		// arm, and the lock was held O(1).
	}
	d.mu.Unlock()
}

// PrefetchRange implements core.RangePrefetcher: it schedules background
// loads of [lo, hi) — clamped to the resident budget like LoadRange — and
// returns immediately. Errors surface later, from SampleErr or LoadRange.
func (d *DirDataset) PrefetchRange(lo, hi int) {
	lo, hi = d.clampRange(lo, hi)
	if lo >= hi {
		return
	}
	d.mu.Lock()
	d.armRangeLocked(lo, hi)
	d.mu.Unlock()
}

// clampRange bounds a requested sample range to the collection and — on a
// memory-bounded dataset — to the resident budget, the shared policy of
// the LoadRange and PrefetchRange hints.
func (d *DirDataset) clampRange(lo, hi int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(d.paths) {
		hi = len(d.paths)
	}
	if d.maxResident > 0 && hi-lo > d.maxResident {
		hi = lo + d.maxResident
	}
	return lo, hi
}

// EvictsSamples implements core.EvictingDataset: when the resident bound
// is active, sample slices can be evicted mid-run, so the batch stage must
// copy the ranges it keeps instead of pinning whole backing arrays.
func (d *DirDataset) EvictsSamples() bool { return d.maxResident > 0 }

// evictLocked removes sample i from the cache; d.mu must be held.
func (d *DirDataset) evictLocked(i int) {
	st := &d.states[i]
	st.vals, st.err, st.loaded = nil, nil, false
	d.lruRemove(i)
	d.stats.Resident--
	d.stats.Evictions++
}

// lruPushFront inserts loaded sample i at the most-recently-used end;
// d.mu must be held.
func (d *DirDataset) lruPushFront(i int) {
	st := &d.states[i]
	st.prev = -1
	st.next = d.lruHead
	if d.lruHead != -1 {
		d.states[d.lruHead].prev = i
	}
	d.lruHead = i
	if d.lruTail == -1 {
		d.lruTail = i
	}
}

// lruRemove unlinks sample i from the LRU list; d.mu must be held.
func (d *DirDataset) lruRemove(i int) {
	st := &d.states[i]
	if st.prev != -1 {
		d.states[st.prev].next = st.next
	} else if d.lruHead == i {
		d.lruHead = st.next
	}
	if st.next != -1 {
		d.states[st.next].prev = st.prev
	} else if d.lruTail == i {
		d.lruTail = st.prev
	}
	st.prev, st.next = -1, -1
}

// lruTouch moves loaded sample i to the most-recently-used end; d.mu must
// be held.
func (d *DirDataset) lruTouch(i int) {
	if d.lruHead == i {
		return
	}
	d.lruRemove(i)
	d.lruPushFront(i)
}
