// Package samplefile implements the on-disk sample representation of
// GenomeAtScale: "GenomeAtScale includes infrastructure to produce files
// with a sorted numerical representation for each data sample. Each
// processor is responsible for reading in a subset of these files, scanning
// through one batch at a time." (Section IV).
//
// A sample file holds one data sample as a sorted list of attribute values
// (for genomes, 2-bit packed k-mer codes). Two encodings are supported:
//
//   - text: one decimal value per line (the format of the paper's Listing 2
//     pseudocode, also accepted by cmd/similarityatscale), and
//   - binary: a small header followed by delta-encoded varint values, which
//     is far more compact for the hypersparse k-mer sets of real samples.
//
// DirDataset exposes a directory of such files as a core.Dataset whose
// samples are loaded lazily and cached, so the batched pipeline can scan
// attribute ranges without holding every sample permanently in memory.
package samplefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// binaryMagic identifies binary sample files.
var binaryMagic = [8]byte{'G', 'A', 'S', 'S', 'M', 'P', 'L', '1'}

// WriteText writes a sample as one decimal value per line, sorted and
// de-duplicated.
func WriteText(path string, values []uint64) error {
	cleaned := normalize(values)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("samplefile: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, v := range cleaned {
		if _, err := fmt.Fprintln(w, v); err != nil {
			return fmt.Errorf("samplefile: %w", err)
		}
	}
	return w.Flush()
}

// ReadText reads a text sample file. Blank lines and '#' comments are
// ignored; values are sorted and de-duplicated on return.
func ReadText(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("samplefile: %w", err)
	}
	defer f.Close()
	var out []uint64
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 1024*1024), 256*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("samplefile: %s:%d: %w", path, lineNo, err)
		}
		out = append(out, v)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("samplefile: %w", err)
	}
	return normalize(out), nil
}

// WriteBinary writes a sample in the compact binary encoding: the magic,
// the value count, and the sorted values as varint deltas.
func WriteBinary(path string, values []uint64) error {
	cleaned := normalize(values)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("samplefile: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := w.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("samplefile: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(cleaned)))
	if _, err := w.Write(buf[:n]); err != nil {
		return fmt.Errorf("samplefile: %w", err)
	}
	prev := uint64(0)
	for i, v := range cleaned {
		delta := v
		if i > 0 {
			delta = v - prev
		}
		prev = v
		n := binary.PutUvarint(buf[:], delta)
		if _, err := w.Write(buf[:n]); err != nil {
			return fmt.Errorf("samplefile: %w", err)
		}
	}
	return w.Flush()
}

// ReadBinary reads a binary sample file written by WriteBinary.
func ReadBinary(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("samplefile: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic [8]byte
	if _, err := readFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("samplefile: %s: reading magic: %w", path, err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("samplefile: %s is not a binary sample file", path)
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("samplefile: %s: reading count: %w", path, err)
	}
	out := make([]uint64, 0, count)
	var prev uint64
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("samplefile: %s: value %d: %w", path, i, err)
		}
		v := delta
		if i > 0 {
			v = prev + delta
		}
		if i > 0 && v < prev {
			return nil, fmt.Errorf("samplefile: %s: non-monotone values (corrupt file)", path)
		}
		out = append(out, v)
		prev = v
	}
	return out, nil
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Read loads a sample file, auto-detecting the encoding from the magic.
func Read(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("samplefile: %w", err)
	}
	var magic [8]byte
	n, _ := f.Read(magic[:])
	f.Close()
	if n == len(magic) && magic == binaryMagic {
		return ReadBinary(path)
	}
	return ReadText(path)
}

// normalize sorts and de-duplicates values.
func normalize(values []uint64) []uint64 {
	out := append([]uint64(nil), values...)
	slices.Sort(out)
	return slices.Compact(out)
}

// DirDataset is a core.Dataset backed by a directory of sample files, one
// file per sample, loaded lazily and cached.
type DirDataset struct {
	names      []string
	paths      []string
	attributes uint64

	mu    sync.Mutex
	cache [][]uint64
}

// OpenDir lists the sample files matching the glob pattern (e.g. "*.txt" or
// "*" ) under dir, in lexicographic order, and returns a lazily-loading
// dataset over the attribute universe [0, numAttributes).
func OpenDir(dir, pattern string, numAttributes uint64) (*DirDataset, error) {
	if numAttributes == 0 {
		return nil, fmt.Errorf("samplefile: attribute universe must be positive")
	}
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		return nil, fmt.Errorf("samplefile: %w", err)
	}
	var files []string
	for _, m := range matches {
		info, err := os.Stat(m)
		if err != nil {
			return nil, fmt.Errorf("samplefile: %w", err)
		}
		if !info.IsDir() {
			files = append(files, m)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("samplefile: no sample files match %q in %s", pattern, dir)
	}
	sort.Strings(files)
	ds := &DirDataset{attributes: numAttributes, cache: make([][]uint64, len(files))}
	for _, f := range files {
		ds.paths = append(ds.paths, f)
		name := strings.TrimSuffix(filepath.Base(f), filepath.Ext(f))
		ds.names = append(ds.names, name)
	}
	return ds, nil
}

// NumSamples implements core.Dataset.
func (d *DirDataset) NumSamples() int { return len(d.paths) }

// NumAttributes implements core.Dataset.
func (d *DirDataset) NumAttributes() uint64 { return d.attributes }

// SampleName implements core.Dataset.
func (d *DirDataset) SampleName(i int) string { return d.names[i] }

// Sample implements core.Dataset. Files are loaded on first access and
// cached; values ≥ NumAttributes cause a panic because they indicate a
// mismatch between the file contents and the declared universe.
func (d *DirDataset) Sample(i int) []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cache[i] == nil {
		values, err := Read(d.paths[i])
		if err != nil {
			panic(fmt.Sprintf("samplefile: loading %s: %v", d.paths[i], err))
		}
		for _, v := range values {
			if v >= d.attributes {
				panic(fmt.Sprintf("samplefile: %s contains value %d outside the declared universe %d",
					d.paths[i], v, d.attributes))
			}
		}
		if values == nil {
			values = []uint64{}
		}
		d.cache[i] = values
	}
	return d.cache[i]
}

// Evict drops the cached contents of sample i so that memory can be
// reclaimed between batches when scanning very large collections.
func (d *DirDataset) Evict(i int) {
	d.mu.Lock()
	d.cache[i] = nil
	d.mu.Unlock()
}

// MaxValue returns the largest attribute value across all samples (loading
// them if needed); useful for choosing the universe size when it is not
// known a priori.
func (d *DirDataset) MaxValue() uint64 {
	var m uint64
	for i := range d.paths {
		s := d.Sample(i)
		if len(s) > 0 && s[len(s)-1] > m {
			m = s[len(s)-1]
		}
	}
	return m
}
