package samplefile

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"genomeatscale/internal/core"
	"genomeatscale/internal/synth"
)

func TestTextRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.txt")
	values := []uint64{5, 1, 9, 5, 0, math.MaxUint64}
	if err := WriteText(path, values); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 5, 9, math.MaxUint64}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("value %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestReadTextSkipsCommentsAndRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	os.WriteFile(good, []byte("# header\n3\n\n1\n"), 0o644)
	got, err := ReadText(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("got %v", got)
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("12\nnot-a-number\n"), 0o644)
	if _, err := ReadText(bad); err == nil {
		t.Error("garbage line should error")
	}
	if _, err := ReadText(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.bin")
	values := []uint64{100, 3, 100, 7, 0, 1 << 50}
	if err := WriteBinary(path, values); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 3, 7, 100, 1 << 50}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("value %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	counter := 0
	f := func(raw []uint64) bool {
		counter++
		path := filepath.Join(dir, "prop", "s.bin")
		os.MkdirAll(filepath.Dir(path), 0o755)
		if err := WriteBinary(path, raw); err != nil {
			return false
		}
		got, err := ReadBinary(path)
		if err != nil {
			return false
		}
		want := normalize(raw)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBinaryRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	notBinary := filepath.Join(dir, "text.bin")
	os.WriteFile(notBinary, []byte("12\n34\n"), 0o644)
	if _, err := ReadBinary(notBinary); err == nil {
		t.Error("text file should not parse as binary")
	}
	truncated := filepath.Join(dir, "trunc.bin")
	os.WriteFile(truncated, append(append([]byte{}, binaryMagic[:]...), 0x05), 0o644)
	if _, err := ReadBinary(truncated); err == nil {
		t.Error("truncated file should error")
	}
	if _, err := ReadBinary(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("missing file should error")
	}
}

func TestReadAutoDetects(t *testing.T) {
	dir := t.TempDir()
	textPath := filepath.Join(dir, "a.txt")
	binPath := filepath.Join(dir, "b.smp")
	WriteText(textPath, []uint64{1, 2, 3})
	WriteBinary(binPath, []uint64{4, 5, 6})
	txt, err := Read(textPath)
	if err != nil || len(txt) != 3 || txt[0] != 1 {
		t.Errorf("text autodetect failed: %v %v", txt, err)
	}
	bin, err := Read(binPath)
	if err != nil || len(bin) != 3 || bin[2] != 6 {
		t.Errorf("binary autodetect failed: %v %v", bin, err)
	}
	if _, err := Read(filepath.Join(dir, "nope")); err == nil {
		t.Error("missing file should error")
	}
}

func TestBinarySmallerThanTextForDenseSamples(t *testing.T) {
	dir := t.TempDir()
	rng := synth.NewRNG(9)
	values := make([]uint64, 20000)
	for i := range values {
		values[i] = rng.Uint64n(1 << 40)
	}
	textPath := filepath.Join(dir, "s.txt")
	binPath := filepath.Join(dir, "s.bin")
	if err := WriteText(textPath, values); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(binPath, values); err != nil {
		t.Fatal(err)
	}
	ti, _ := os.Stat(textPath)
	bi, _ := os.Stat(binPath)
	if bi.Size() >= ti.Size() {
		t.Errorf("binary (%d B) should be smaller than text (%d B)", bi.Size(), ti.Size())
	}
}

func TestOpenDirAsDataset(t *testing.T) {
	dir := t.TempDir()
	WriteText(filepath.Join(dir, "b.txt"), []uint64{4, 5, 6, 7})
	WriteText(filepath.Join(dir, "a.txt"), []uint64{1, 2, 3, 4, 5})
	WriteBinary(filepath.Join(dir, "c.txt"), []uint64{50, 51})
	ds, err := OpenDir(dir, "*.txt", 100)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 3 || ds.NumAttributes() != 100 {
		t.Fatalf("shape %d x %d", ds.NumSamples(), ds.NumAttributes())
	}
	// Lexicographic order: a, b, c.
	if ds.SampleName(0) != "a" || ds.SampleName(1) != "b" || ds.SampleName(2) != "c" {
		t.Errorf("names = %v %v %v", ds.SampleName(0), ds.SampleName(1), ds.SampleName(2))
	}
	if mv, err := ds.MaxValue(); err != nil || mv != 51 {
		t.Errorf("MaxValue = %d, %v", mv, err)
	}

	// The directory-backed dataset must plug straight into the pipeline and
	// agree with the exact reference.
	res, err := core.ComputeSequential(ds, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Similarity(0, 1)-2.0/7.0) > 1e-12 {
		t.Errorf("S(a,b) = %v, want 2/7", res.Similarity(0, 1))
	}
	if res.Similarity(0, 2) != 0 {
		t.Errorf("S(a,c) = %v, want 0", res.Similarity(0, 2))
	}

	// Distributed path over the same lazily-loaded dataset.
	opts := core.DefaultOptions()
	opts.Procs = 3
	opts.BatchCount = 2
	dres, err := core.Compute(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dres.Similarity(0, 1)-res.Similarity(0, 1)) > 1e-12 {
		t.Error("distributed and sequential paths disagree on DirDataset")
	}

	// Eviction forces a reload on next access without changing results.
	ds.Evict(0)
	if len(ds.Sample(0)) != 5 {
		t.Error("evicted sample should reload")
	}
}

func TestOpenDirErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenDir(dir, "*.txt", 100); err == nil {
		t.Error("empty directory should error")
	}
	WriteText(filepath.Join(dir, "a.txt"), []uint64{1})
	if _, err := OpenDir(dir, "*.txt", 0); err == nil {
		t.Error("zero universe should error")
	}
	if _, err := OpenDir(dir, "[", 100); err == nil {
		t.Error("bad glob should error")
	}
}

func TestSampleOutOfUniverseErrors(t *testing.T) {
	dir := t.TempDir()
	WriteText(filepath.Join(dir, "a.txt"), []uint64{1000})
	ds, err := OpenDir(dir, "*.txt", 100)
	if err != nil {
		t.Fatal(err)
	}
	// The error-propagating path reports the mismatch instead of panicking.
	if _, err := ds.SampleErr(0); err == nil || !strings.Contains(err.Error(), "universe") {
		t.Errorf("SampleErr = %v, want universe-mismatch error", err)
	}
	// The legacy panic-on-error contract of core.Dataset is preserved for
	// direct callers of Sample.
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-universe value via legacy Sample")
		}
	}()
	ds.Sample(0)
}
