package costmodel

import (
	"math"
)

// This file turns the BSP cost analysis from a reporting tool into a
// decision procedure: given coarse dataset statistics and a host profile
// (Detect), Tune picks the engine configuration — rank count, replication
// factor, batch count, streaming tile height and dense-storage threshold —
// by minimising the in-process form of the paper's batch cost T(z,n,M,c,p),
// and records the predictions the choice was based on so a run can report
// chosen-versus-measured figures.

// DatasetStats is the coarse description of a dataset the tuner works
// from: dimensions plus an estimated nonzero density. The engine samples
// the density from a bounded prefix of the data (cheap for out-of-core
// datasets); exact figures are unnecessary — every decision below is a
// threshold or an argmin over a handful of candidates.
type DatasetStats struct {
	// Samples is n, the number of data samples (columns).
	Samples int
	// Attributes is m, the number of attribute rows.
	Attributes int
	// Density is the estimated fraction of nonzero cells of the n×m
	// indicator matrix, in [0, 1].
	Density float64
}

// Nonzeros returns the estimated total indicator nonzeros n·m·d.
func (st DatasetStats) Nonzeros() float64 {
	return float64(st.Samples) * float64(st.Attributes) * st.Density
}

// Fixed pins configuration dimensions the caller chose explicitly (flags,
// options); the tuner only fills the remaining ones. Zero values mean "let
// the tuner choose" for the positive-valued dimensions; DenseThreshold
// needs the Has flag because 0 (auto) and negative (never) are meaningful
// settings.
type Fixed struct {
	Procs       int
	Replication int
	Batches     int
	TileRows    int
	// MaskBits is the packing width used for the occupancy prediction; it
	// is never tuned (0 defaults to 64).
	MaskBits int

	HasDenseThreshold bool
	DenseThreshold    int

	// Sketch asks the tuner to size the MinHash prescreening sketch for
	// the given similarity threshold and slack margin. SketchSize > 0 pins
	// the size (the caller set it explicitly); 0 lets the tuner derive it
	// from the threshold/slack pair via SketchSizeFor.
	Sketch          bool
	SketchSize      int
	SketchThreshold float64
	SketchSlack     float64
}

// Plan is a tuned configuration together with the model predictions it was
// derived from. The prediction fields feed the engine's TuningReport so
// mispredictions are visible next to the measured run.
type Plan struct {
	Procs          int
	Replication    int
	Batches        int
	TileRows       int
	DenseThreshold int
	// SketchSize is the chosen MinHash prescreening sketch size; 0 when
	// prescreening is off for the run.
	SketchSize int

	// PredictedSeconds is the modelled per-batch time of the chosen
	// (Procs, Replication) point.
	PredictedSeconds float64
	// PredictedRowSurvival is the predicted fraction of batch rows that
	// survive the empty-row filter (Eq. 5).
	PredictedRowSurvival float64
	// PredictedOccupancy is the predicted fraction of nonzero words of the
	// packed word grid — the figure the dense-threshold choice rests on,
	// comparable to the measured bitmat.Packed.WordOccupancy.
	PredictedOccupancy float64
}

// EstimateOccupancy predicts, from the cell density d of an n-sample
// indicator matrix packed b rows per word, (1) the fraction of rows that
// survive the empty-row filter — a row dies only if all n samples miss it,
// so survival = 1−(1−d)ⁿ — and (2) the fraction of nonzero words of the
// packed word grid: surviving rows carry the conditional cell density
// q = d/survival, and a word is nonzero unless all its b row positions
// are, giving occupancy = 1−(1−q)ᵇ.
func EstimateOccupancy(st DatasetStats, maskBits int) (rowSurvival, occupancy float64) {
	d := math.Min(math.Max(st.Density, 0), 1)
	if d == 0 || st.Samples <= 0 || maskBits <= 0 {
		return 0, 0
	}
	rowSurvival = -math.Expm1(float64(st.Samples) * math.Log1p(-d))
	if rowSurvival <= 0 {
		return 0, 0
	}
	q := math.Min(d/rowSurvival, 1)
	occupancy = -math.Expm1(float64(maskBits) * math.Log1p(-q))
	return rowSurvival, occupancy
}

// InProcBatchTime is the in-process form of BatchTime: all p virtual ranks
// share one host with `cpus` physical cores, so the useful compute
// parallelism is capped by the cores (not by p), and every rank beyond the
// first adds barrier wake-up cost to each superstep. Communication words
// still pay β — the in-process exchange is a memcpy between rank buffers —
// which is exactly why the model sends a single-host run to p = 1 unless
// the caller pins Procs: splitting one host into ranks buys no compute but
// charges the full exchange volume of the distributed algorithm.
func InProcBatchTime(m Machine, pr Problem, p, c, cpus int) float64 {
	if p <= 0 {
		p = 1
	}
	if c < 1 {
		c = 1
	}
	if c > p {
		c = p
	}
	if cpus < 1 {
		cpus = 1
	}
	pr = pr.withDefaults()
	n := math.Max(float64(pr.Samples), 1)
	z := pr.BatchNonzeros
	pf, cf := float64(p), float64(c)

	// Compute parallelism: capped by cores, by ranks×(their worker shares)
	// — which is again the cores — and by the sample saturation of the
	// distributed decomposition when p > 1.
	peff := math.Min(float64(cpus), n)
	if p > 1 {
		peff = math.Min(peff, math.Min(pf, n))
	}

	sqrtCP := math.Sqrt(cf * math.Min(pf, n))
	supersteps := 1 + z/(m.MemWords/pf*sqrtCP)
	commWords := 0.0
	if p > 1 {
		commWords = z/sqrtCP + cf*n*n/math.Min(pf, n) + pf
	}
	flops := pr.Flops / peff
	return supersteps*m.Alpha*(1+pf/8) + commWords*m.Beta + flops*m.Gamma
}

// tileRowsFor picks the streaming tile height: target a ~4 MiB resident
// tile (B + S + D rows are 24 bytes per cell), clamped to [64, 4096] rows
// so tiny n does not produce absurdly tall tiles and huge n keeps at least
// a cache-line-friendly band.
func tileRowsFor(n int) int {
	if n <= 0 {
		return 256
	}
	const targetBytes = 4 << 20
	tr := targetBytes / (24 * n)
	return min(max(tr, 64), 4096)
}

// denseThresholdFor maps the predicted word occupancy to a dense-threshold
// spec: at ≥50% occupancy the dense slab is smaller than the sparse stream
// for a typical column (see bitmat.Packed.MemoryWords: break-even at 50%),
// so every non-empty column goes dense; below 2% the slabs would be
// overwhelmingly zero words, so dense storage is disabled; in between the
// per-column auto rule decides from actual stored-word counts.
func denseThresholdFor(occupancy float64) int {
	switch {
	case occupancy >= 0.5:
		return 1 // bitmat: every non-empty column dense
	case occupancy < 0.02:
		return -1 // bitmat.DenseNever
	default:
		return 0 // bitmat.DenseAuto
	}
}

// SketchSizeFor sizes a bottom-k MinHash sketch for prescreening at
// similarity threshold τ with slack margin s. The merged bottom-k
// estimator's standard deviation at the decision boundary is
// ≈ √(τ(1−τ)/k); requiring the slack to cover three standard deviations
// (k ≥ 9·τ(1−τ)/s²) keeps the probability of pruning a true ≥ τ pair
// below ~1.5 per mille per pair. The result is rounded up to a power of
// two and clamped to [64, 4096].
func SketchSizeFor(threshold, slack float64) int {
	const minSize, maxSize = 64, 4096
	if slack <= 0 || threshold <= 0 || threshold > 1 {
		return maxSize
	}
	need := 9 * threshold * (1 - threshold) / (slack * slack)
	k := minSize
	for float64(k) < need && k < maxSize {
		k *= 2
	}
	return k
}

// Tune derives an engine configuration from dataset statistics and a host
// profile, honouring the caller's pinned dimensions:
//
//   - Batches: smallest count whose per-batch nonzeros fit in a quarter of
//     the host memory budget (the paper's z = Θ(M·p) batch sizing with the
//     whole host as the memory), clamped to [1, Attributes].
//   - Procs and Replication: argmin of InProcBatchTime over candidate rank
//     counts (1, 4, 9, 16, …, cpus) and replication factors up to the
//     paper's c = min(p, M·p/n²) cap. On one host the model picks p = 1 —
//     the distributed decomposition only pays for itself across real
//     machines — unless Procs is pinned, in which case the replication and
//     batch sizing adapt around the pinned grid.
//   - TileRows: a ~4 MiB streaming band (tileRowsFor).
//   - DenseThreshold: from the predicted packed word occupancy
//     (EstimateOccupancy, denseThresholdFor).
//
// The returned plan records the predictions behind those choices.
func Tune(m Machine, st DatasetStats, cpus int, fixed Fixed) Plan {
	if cpus < 1 {
		cpus = 1
	}
	n := max(st.Samples, 1)
	total := st.Nonzeros()

	var plan Plan

	// Batch sizing against the host memory budget.
	plan.Batches = fixed.Batches
	if plan.Batches <= 0 {
		perBatch := m.MemWords / 4
		plan.Batches = 1
		if perBatch > 0 && total > perBatch {
			plan.Batches = int(math.Ceil(total / perBatch))
		}
		if st.Attributes > 0 && plan.Batches > st.Attributes {
			plan.Batches = st.Attributes
		}
	}

	// The per-batch problem the candidates are scored on.
	pr := Problem{
		Samples:       st.Samples,
		BatchNonzeros: total / float64(plan.Batches),
		BatchRows:     float64(st.Attributes) / float64(plan.Batches),
	}

	// Rank count and replication by model argmin.
	candidates := []int{1, 4, 9, 16, 25, 36, 64}
	if fixed.Procs > 0 {
		candidates = []int{fixed.Procs}
	}
	best := math.Inf(1)
	for _, p := range candidates {
		if p > max(cpus, 1) && p != candidates[0] {
			continue
		}
		cmax := Replication(Machine{MemWords: m.MemWords / float64(p)}, n, p)
		ccands := []int{1}
		if fixed.Replication > 0 {
			ccands = []int{fixed.Replication}
		} else {
			for c := 2; c <= cmax; c++ {
				ccands = append(ccands, c)
			}
		}
		for _, c := range ccands {
			t := InProcBatchTime(m, pr, p, c, cpus)
			if t < best {
				best, plan.Procs, plan.Replication = t, p, c
			}
		}
	}
	plan.PredictedSeconds = best

	plan.TileRows = fixed.TileRows
	if plan.TileRows <= 0 {
		plan.TileRows = tileRowsFor(st.Samples)
	}

	maskBits := fixed.MaskBits
	if maskBits <= 0 {
		maskBits = 64
	}
	plan.PredictedRowSurvival, plan.PredictedOccupancy = EstimateOccupancy(st, maskBits)
	if fixed.HasDenseThreshold {
		plan.DenseThreshold = fixed.DenseThreshold
	} else {
		plan.DenseThreshold = denseThresholdFor(plan.PredictedOccupancy)
	}

	if fixed.Sketch {
		plan.SketchSize = fixed.SketchSize
		if plan.SketchSize <= 0 {
			plan.SketchSize = SketchSizeFor(fixed.SketchThreshold, fixed.SketchSlack)
		}
	}
	return plan
}
