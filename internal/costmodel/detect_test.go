package costmodel

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// TestDetectHonoursGOMAXPROCS pins the host-detection fix: the probed
// profile must size RanksPerNode (and the CPU count in the profile name)
// from runtime.GOMAXPROCS, not runtime.NumCPU, so cgroup CPU limits and
// explicit operator overrides are respected instead of over-provisioning
// ranks from the physical host's core count. The test must not run in
// parallel — GOMAXPROCS is process-global.
func TestDetectHonoursGOMAXPROCS(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("single-CPU host: a lowered GOMAXPROCS is indistinguishable from NumCPU")
	}
	lowered := runtime.NumCPU() - 1
	prev := runtime.GOMAXPROCS(lowered)
	defer runtime.GOMAXPROCS(prev)

	m := Detect()
	if m.RanksPerNode != lowered {
		t.Fatalf("Detect() with GOMAXPROCS=%d reports RanksPerNode=%d (NumCPU=%d)",
			lowered, m.RanksPerNode, runtime.NumCPU())
	}
	if want := fmt.Sprintf("%d CPUs", lowered); !strings.Contains(m.Name, want) {
		t.Fatalf("Detect() name %q does not advertise %q", m.Name, want)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("lowered-GOMAXPROCS profile invalid: %v", err)
	}
}

// TestSketchSizeFor pins the 3σ sizing rule: k ≥ 9·τ(1−τ)/s², rounded up
// to a power of two and clamped to [64, 4096].
func TestSketchSizeFor(t *testing.T) {
	cases := []struct {
		threshold, slack float64
		want             int
	}{
		{0.8, 0.1, 256},   // 9·0.16/0.01 = 144 → next power of two
		{0.5, 0.1, 256},   // worst-case variance: 9·0.25/0.01 = 225
		{0.9, 0.3, 64},    // tiny requirement → floor
		{0.5, 0.02, 4096}, // 5625 needed → cap
		{0.5, 0, 4096},    // degenerate slack → conservative cap
		{0, 0.1, 4096},    // degenerate threshold → conservative cap
	}
	for _, tc := range cases {
		if got := SketchSizeFor(tc.threshold, tc.slack); got != tc.want {
			t.Errorf("SketchSizeFor(%g, %g) = %d, want %d", tc.threshold, tc.slack, got, tc.want)
		}
	}
}

// TestTuneSketchSize: the tuner derives a sketch size when prescreening is
// requested without one, echoes a pinned size verbatim, and leaves the
// plan's SketchSize zero when prescreening is off.
func TestTuneSketchSize(t *testing.T) {
	m := Stampede2KNL()
	st := DatasetStats{Samples: 200, Attributes: 50000, Density: 0.01}

	plain := Tune(m, st, 4, Fixed{})
	if plain.SketchSize != 0 {
		t.Fatalf("no-sketch plan carries SketchSize=%d", plain.SketchSize)
	}
	derived := Tune(m, st, 4, Fixed{Sketch: true, SketchThreshold: 0.8, SketchSlack: 0.1})
	if want := SketchSizeFor(0.8, 0.1); derived.SketchSize != want {
		t.Fatalf("derived SketchSize=%d, want %d", derived.SketchSize, want)
	}
	pinned := Tune(m, st, 4, Fixed{Sketch: true, SketchSize: 512, SketchThreshold: 0.8, SketchSlack: 0.1})
	if pinned.SketchSize != 512 {
		t.Fatalf("pinned SketchSize not honoured: %d", pinned.SketchSize)
	}
}
