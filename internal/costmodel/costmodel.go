// Package costmodel implements the BSP cost analysis of Section III-C and
// uses it to project distributed running times on a Stampede2-like machine.
//
// The paper derives, for one batch with z nonzeros, n samples, per-process
// memory M, replication factor c and p processors, the cost
//
//	T(z, n, M, c, p) = O( (1 + z/(M·√(cp))) · α
//	                    + (z/√(cp) + c·n²/p + p) · β
//	                    + (F/p) · γ ),
//
// and shows that with maximal batches (z = Θ(M·p)) and replication
// c = Θ(min(p, M·p/n²)) the algorithm strong-scales with O(1) efficiency in
// the memory-bound regime. Because this reproduction executes on a single
// host, wall-clock times at 1024-node scale cannot be measured directly;
// instead the model below converts either analytic problem descriptions or
// measured BSP statistics (bytes, supersteps, flops from internal/bsp) into
// projected times, which is how the repository regenerates Figures 2a–2f
// and 3.
package costmodel

import (
	"fmt"
	"math"

	"genomeatscale/internal/bsp"
)

// Machine holds the BSP parameters of a target system. All times are in
// seconds; β and γ are per 64-bit word and per simple word operation,
// respectively, because the kernels of SimilarityAtScale are word-oriented
// (packed popcount words).
type Machine struct {
	// Name identifies the profile in reports.
	Name string
	// Alpha is the per-superstep synchronisation/latency cost.
	Alpha float64
	// Beta is the per-word communication cost.
	Beta float64
	// Gamma is the per-word-operation compute cost (memory-bandwidth bound
	// for the popcount kernel).
	Gamma float64
	// MemWords is M: usable per-process memory in 64-bit words.
	MemWords float64
	// RanksPerNode is how many MPI ranks the paper runs per node (32).
	RanksPerNode int
}

// Validate checks that the machine profile is usable.
func (m Machine) Validate() error {
	if m.Alpha <= 0 || m.Beta <= 0 || m.Gamma <= 0 {
		return fmt.Errorf("costmodel: α, β, γ must be positive (%v, %v, %v)", m.Alpha, m.Beta, m.Gamma)
	}
	if m.MemWords <= 0 {
		return fmt.Errorf("costmodel: MemWords must be positive")
	}
	if m.RanksPerNode <= 0 {
		return fmt.Errorf("costmodel: RanksPerNode must be positive")
	}
	if m.Alpha < m.Beta || m.Beta < m.Gamma {
		return fmt.Errorf("costmodel: expected α ≥ β ≥ γ (paper's assumption), got %v, %v, %v", m.Alpha, m.Beta, m.Gamma)
	}
	return nil
}

// Stampede2KNL models one Intel Xeon Phi 7250 node of Stampede2 running 32
// MPI ranks, with MCDRAM configured as a last-level cache (the paper's
// default setup): 100 Gb/s Omni-Path shared by the node's ranks, and
// memory-bandwidth-bound on-node kernels served mostly from MCDRAM.
func Stampede2KNL() Machine {
	return Machine{
		Name:  "Stampede2-KNL (MCDRAM as L3)",
		Alpha: 1.0e-5,
		// ~12.5 GB/s node injection bandwidth shared by 32 ranks
		// → ≈0.39 GB/s per rank → ≈2.05e-8 s per 8-byte word.
		Beta: 2.05e-8,
		// Popcount/accumulate kernels stream from MCDRAM-backed cache:
		// ≈400 GB/s per node / 32 ranks → ≈12.5 GB/s → ≈6.4e-10 s/word;
		// charged per word operation.
		Gamma: 6.4e-10,
		// 96 GB DDR4 per node / 32 ranks ≈ 3 GB per rank; roughly half is
		// usable for batch data once B, C and buffers are accounted for.
		MemWords:     1.8e8,
		RanksPerNode: 32,
	}
}

// Stampede2KNLNoMCDRAM models the ablation of Section V-D: MCDRAM used as
// addressable memory instead of cache, so the streaming kernels see DDR4
// bandwidth slightly more often. The paper reports a negligible slowdown
// (e.g. 9.26 s → 9.33 s per batch), so only γ changes, by a few percent.
func Stampede2KNLNoMCDRAM() Machine {
	m := Stampede2KNL()
	m.Name = "Stampede2-KNL (MCDRAM as flat memory)"
	m.Gamma *= 1.04
	return m
}

// Problem describes one batch of a SimilarityAtScale computation.
type Problem struct {
	// Samples is n.
	Samples int
	// BatchNonzeros is z, the number of indicator nonzeros in the batch.
	BatchNonzeros float64
	// BatchRows is m̃, the number of attribute rows spanned by the batch
	// before filtering. Used to derive the packed word-row count when
	// WordRows is not given.
	BatchRows float64
	// WordRows is h, the number of packed word rows of the batch (after
	// filtering and compression). If zero it is estimated as
	// min(BatchRows, z)/b: at most one surviving row per nonzero, packed b
	// rows per word.
	WordRows float64
	// Flops is F, the number of word operations of the batch's Gram
	// product. If zero it is estimated as min(z²/h, z·n): the expected
	// number of matching word-row pairs for randomly placed nonzeros,
	// capped by each nonzero word being merged against at most n columns.
	Flops float64
}

// withDefaults fills the derived fields.
func (pr Problem) withDefaults() Problem {
	if pr.WordRows <= 0 {
		rows := pr.BatchRows
		if rows <= 0 || rows > pr.BatchNonzeros {
			rows = pr.BatchNonzeros
		}
		pr.WordRows = math.Max(rows/64, 1)
	}
	if pr.Flops <= 0 {
		est := pr.BatchNonzeros * pr.BatchNonzeros / pr.WordRows
		cap := pr.BatchNonzeros * math.Max(float64(pr.Samples), 1)
		pr.Flops = math.Min(est, cap)
		if pr.Flops < pr.BatchNonzeros {
			pr.Flops = pr.BatchNonzeros
		}
	}
	return pr
}

// BatchTime evaluates the per-batch BSP cost T(z, n, M, c, p) on machine m
// with p ranks and replication factor c. Two effects the paper observes on
// the Kingsford dataset once the rank count approaches or exceeds the
// number of samples are modelled explicitly: the useful parallelism of the
// sample-distributed work saturates at n, and stragglers/idle ranks add an
// overhead that grows (slowly) with p/n.
func BatchTime(m Machine, pr Problem, p, c int) float64 {
	if p <= 0 {
		//gas:invariant candidate rank counts are enumerated from a validated positive Procs by the tuner
		panic(fmt.Sprintf("costmodel: non-positive rank count %d", p))
	}
	if c < 1 {
		c = 1
	}
	if c > p {
		c = p
	}
	pr = pr.withDefaults()
	n := math.Max(float64(pr.Samples), 1)
	z := pr.BatchNonzeros
	pf := float64(p)
	cf := float64(c)

	// Useful parallelism saturates once ranks outnumber samples.
	peff := math.Min(pf, n)
	sqrtCP := math.Sqrt(cf * peff)

	// Straggler/idle-rank overhead when p exceeds n (Section V-B: "the
	// number of MPI processes starts to exceed the number of columns in the
	// matrix, leading to load imbalance and deteriorating performance").
	imbalance := 1.0
	if pf > n {
		imbalance = 1 + 0.5*math.Log2(pf/n)
	}

	supersteps := 1 + z/(m.MemWords*sqrtCP)
	commWords := z/sqrtCP + cf*n*n/peff + pf
	flopsPerRank := pr.Flops / peff

	return supersteps*m.Alpha + imbalance*(commWords*m.Beta+flopsPerRank*m.Gamma)
}

// TimeFromStats converts measured BSP statistics (from an in-process run)
// into a projected time on machine m: each superstep pays α, each
// h-relation byte pays β (converted to words), and the critical-path flops
// pay γ. This is the measurement-driven counterpart of BatchTime.
func TimeFromStats(m Machine, s *bsp.Stats) float64 {
	if s == nil {
		return 0
	}
	words := float64(s.SumHRelations()) / 8
	return float64(s.Supersteps)*m.Alpha + words*m.Beta + float64(s.MaxFlops())*m.Gamma
}

// Replication returns the replication factor the paper prescribes,
// c = Θ(min(p, M·p/n²)), additionally capped at p^(1/3) — the classic bound
// beyond which 2.5D/3D matrix-multiplication schemes gain nothing — and
// clamped to at least 1.
func Replication(m Machine, n, p int) int {
	if n <= 0 || p <= 0 {
		return 1
	}
	c := m.MemWords * float64(p) / (float64(n) * float64(n))
	if limit := math.Cbrt(float64(p)); c > limit {
		c = limit
	}
	if c < 1 {
		return 1
	}
	return int(c)
}

// Batches returns the number of batches needed so that each batch's
// nonzeros fit in aggregate memory (z = Θ(M·p)), given the total number of
// indicator nonzeros Z. At least one batch is always required.
func Batches(m Machine, totalNonzeros float64, p int) int {
	if p <= 0 {
		return 1
	}
	perBatch := m.MemWords * float64(p) / 4 // leave room for operands + output
	if perBatch <= 0 {
		return 1
	}
	b := int(math.Ceil(totalNonzeros / perBatch))
	if b < 1 {
		return 1
	}
	return b
}
