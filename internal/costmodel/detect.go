package costmodel

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"genomeatscale/internal/bitutil"
)

// detectProbeWords is the size of the bandwidth-probe buffer: 1 Mi 64-bit
// words (8 MiB), large enough to overflow per-core L2 so the probe measures
// streaming bandwidth rather than cache hits, small enough to allocate
// without disturbing the host.
const detectProbeWords = 1 << 20

// Detect builds a Machine profile of the host this process runs on, for
// feeding the autotuner (Tune) with in-process parameters instead of the
// Stampede2 projection profiles:
//
//   - γ is measured: a ~1 ms STREAM-style probe runs the dispatched popcount
//     kernel (the exact kernel the Gram product is bound by, so the probe
//     reflects whatever assembly/portable implementation dispatch selected)
//     over an 8 MiB buffer and charges the observed seconds per word.
//   - β models the in-process BSP exchange — a memcpy between rank buffers,
//     one read and one write per word — as 4γ.
//   - α is the goroutine barrier cost of one in-process superstep, floored
//     at 2 µs and clamped to keep the paper's α ≥ β ≥ γ assumption.
//   - MemWords is half of /proc/meminfo MemAvailable (in words), leaving
//     room for operands, accumulators and buffers; a 16 GiB fallback is
//     used where meminfo is unavailable (non-Linux hosts).
//   - RanksPerNode is GOMAXPROCS, not runtime.NumCPU: in cgroup-limited
//     containers (CI runners, k8s pods) NumCPU reports the physical host
//     and over-provisions ranks, while GOMAXPROCS reflects both the
//     scheduler's actual parallelism and any explicit operator override.
//
// The probe costs about a millisecond; callers that tune repeatedly should
// reuse the returned profile.
func Detect() Machine {
	gamma := probeGamma()
	beta := 4 * gamma
	alpha := 2e-6
	if alpha < beta {
		alpha = beta
	}
	cpus := max(runtime.GOMAXPROCS(0), 1)
	return Machine{
		Name:         fmt.Sprintf("detected(%s/%s, %d CPUs, %s kernel)", runtime.GOOS, runtime.GOARCH, cpus, bitutil.Kernel()),
		Alpha:        alpha,
		Beta:         beta,
		Gamma:        gamma,
		MemWords:     detectMemWords(),
		RanksPerNode: cpus,
	}
}

// probeGamma measures seconds per word of the dispatched popcount kernel
// with a ~1 ms streaming sweep.
func probeGamma() float64 {
	buf := make([]uint64, detectProbeWords)
	for i := range buf {
		buf[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	var words int64
	sink := 0
	start := time.Now()
	for time.Since(start) < time.Millisecond {
		sink += bitutil.PopcountSlice(buf)
		words += detectProbeWords
	}
	elapsed := time.Since(start).Seconds()
	runtime.KeepAlive(sink)
	gamma := elapsed / float64(words)
	// Clamp against clock glitches: plausible per-word times span ~0.2 GB/s
	// to ~400 GB/s of 8-byte words.
	if gamma < 2e-11 {
		gamma = 2e-11
	}
	if gamma > 4e-8 {
		gamma = 4e-8
	}
	return gamma
}

// detectMemWords reads MemAvailable from /proc/meminfo and returns half of
// it in 64-bit words, falling back to 16 GiB worth of words.
func detectMemWords() float64 {
	const fallback = float64(16 << 30 / 8)
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return fallback
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "MemAvailable:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || kb <= 0 {
			break
		}
		return kb * 1024 / 8 / 2
	}
	return fallback
}
