package costmodel

import (
	"math"
	"testing"
)

// TestDetectProfileValid: the probed host profile must satisfy the model's
// own invariants (α ≥ β ≥ γ > 0, positive memory and rank counts) so it is
// usable wherever the hand-written profiles are.
func TestDetectProfileValid(t *testing.T) {
	m := Detect()
	if err := m.Validate(); err != nil {
		t.Fatalf("Detect() profile invalid: %v (%+v)", err, m)
	}
	if m.Gamma <= 0 || m.Gamma > 4e-8 {
		t.Fatalf("probed γ out of plausible range: %g", m.Gamma)
	}
}

// TestEstimateOccupancy pins the closed-form predictions on hand-checked
// points and their limiting behaviour.
func TestEstimateOccupancy(t *testing.T) {
	// Zero density: nothing survives.
	if s, o := EstimateOccupancy(DatasetStats{Samples: 10, Density: 0}, 64); s != 0 || o != 0 {
		t.Fatalf("zero density: survival=%g occupancy=%g", s, o)
	}
	// Full density: every row survives, every word is set.
	s, o := EstimateOccupancy(DatasetStats{Samples: 10, Density: 1}, 64)
	if math.Abs(s-1) > 1e-12 || math.Abs(o-1) > 1e-12 {
		t.Fatalf("full density: survival=%g occupancy=%g, want 1, 1", s, o)
	}
	// d = 0.5, n = 1: survival = 0.5, conditional density 1 → occupancy 1.
	s, o = EstimateOccupancy(DatasetStats{Samples: 1, Density: 0.5}, 8)
	if math.Abs(s-0.5) > 1e-12 || math.Abs(o-1) > 1e-12 {
		t.Fatalf("n=1 d=0.5: survival=%g occupancy=%g, want 0.5, 1", s, o)
	}
	// Occupancy grows with the mask width at fixed density.
	_, o8 := EstimateOccupancy(DatasetStats{Samples: 100, Density: 0.05}, 8)
	_, o64 := EstimateOccupancy(DatasetStats{Samples: 100, Density: 0.05}, 64)
	if !(o64 > o8 && o8 > 0 && o64 <= 1) {
		t.Fatalf("occupancy not monotone in mask width: b=8 → %g, b=64 → %g", o8, o64)
	}
}

// TestTuneSingleHostPicksOneRank: with nothing pinned, the in-process model
// must settle on Procs = 1 — all virtual ranks share the host's cores, so
// any p > 1 pays the full BSP exchange for zero extra compute.
func TestTuneSingleHostPicksOneRank(t *testing.T) {
	m := Stampede2KNL()
	st := DatasetStats{Samples: 500, Attributes: 200000, Density: 0.02}
	plan := Tune(m, st, 8, Fixed{})
	if plan.Procs != 1 {
		t.Fatalf("single-host tune chose Procs=%d, want 1", plan.Procs)
	}
	if plan.Replication != 1 {
		t.Fatalf("Procs=1 must force Replication=1, got %d", plan.Replication)
	}
	if plan.Batches < 1 || plan.TileRows < 64 {
		t.Fatalf("degenerate plan: %+v", plan)
	}
	if plan.PredictedSeconds <= 0 || math.IsInf(plan.PredictedSeconds, 0) {
		t.Fatalf("no prediction recorded: %+v", plan)
	}
}

// TestTunePinnedDimensionsHonoured: every pinned dimension must come back
// verbatim, with the tuner filling only the rest.
func TestTunePinnedDimensionsHonoured(t *testing.T) {
	m := Stampede2KNL()
	st := DatasetStats{Samples: 300, Attributes: 50000, Density: 0.01}
	fixed := Fixed{Procs: 4, Replication: 2, Batches: 7, TileRows: 128,
		HasDenseThreshold: true, DenseThreshold: -1}
	plan := Tune(m, st, 8, fixed)
	if plan.Procs != 4 || plan.Replication != 2 || plan.Batches != 7 ||
		plan.TileRows != 128 || plan.DenseThreshold != -1 {
		t.Fatalf("pinned dimensions not honoured: %+v", plan)
	}
}

// TestTuneDenseThresholdFollowsOccupancy: the storage choice must track the
// predicted word occupancy across its regimes.
func TestTuneDenseThresholdFollowsOccupancy(t *testing.T) {
	m := Stampede2KNL()
	// Note the filter concentrates density: surviving rows have conditional
	// cell density at least ~1/n, so word occupancy is bounded below by
	// ~b/n — the sparse-only regime needs n well above the mask width.
	cases := []struct {
		samples int
		density float64
		want    int
	}{
		{1000, 0.9, 1},     // near-full words → everything dense
		{100000, 1e-9, -1}, // n ≫ b, near-empty words → sparse only
		{1000, 0.0008, 0},  // middling occupancy → per-column auto
	}
	for _, tc := range cases {
		st := DatasetStats{Samples: tc.samples, Attributes: 100000, Density: tc.density}
		_, occ := EstimateOccupancy(st, 64)
		plan := Tune(m, st, 8, Fixed{})
		if plan.DenseThreshold != tc.want {
			t.Fatalf("density %g (occupancy %.4f): DenseThreshold=%d, want %d",
				tc.density, occ, plan.DenseThreshold, tc.want)
		}
		if plan.PredictedOccupancy != occ {
			t.Fatalf("plan did not record its occupancy prediction: %g vs %g", plan.PredictedOccupancy, occ)
		}
	}
}

// TestTuneBatchesScaleWithData: more nonzeros than a quarter of the memory
// budget must split into proportionally more batches, capped by the number
// of attribute rows.
func TestTuneBatchesScaleWithData(t *testing.T) {
	m := Stampede2KNL()
	m.MemWords = 1e6 // shrink the budget so batching engages
	small := Tune(m, DatasetStats{Samples: 100, Attributes: 1000, Density: 0.001}, 4, Fixed{})
	big := Tune(m, DatasetStats{Samples: 100, Attributes: 1000000, Density: 0.01}, 4, Fixed{})
	if small.Batches != 1 {
		t.Fatalf("tiny dataset batched %d-fold", small.Batches)
	}
	if big.Batches <= small.Batches {
		t.Fatalf("large dataset not split: %d batches", big.Batches)
	}
	if big.Batches > 1000000 {
		t.Fatalf("batches exceed attribute rows: %d", big.Batches)
	}
}

// TestInProcBatchTimePrefersOneRank: the in-process cost at p = 1 must not
// exceed any multi-rank cost for a representative problem — the property
// the default Procs choice rests on.
func TestInProcBatchTimePrefersOneRank(t *testing.T) {
	m := Stampede2KNL()
	pr := Problem{Samples: 500, BatchNonzeros: 5e7, BatchRows: 1e5}
	t1 := InProcBatchTime(m, pr, 1, 1, 8)
	for _, p := range []int{4, 9, 16, 64} {
		if tp := InProcBatchTime(m, pr, p, 1, 8); tp < t1 {
			t.Fatalf("p=%d in-process time %g beats p=1 time %g", p, tp, t1)
		}
	}
}

// TestTileRowsFor pins the clamping of the streaming band height.
func TestTileRowsFor(t *testing.T) {
	if got := tileRowsFor(0); got != 256 {
		t.Fatalf("tileRowsFor(0)=%d, want default 256", got)
	}
	if got := tileRowsFor(10); got != 4096 {
		t.Fatalf("tileRowsFor(10)=%d, want cap 4096", got)
	}
	if got := tileRowsFor(1 << 20); got != 64 {
		t.Fatalf("tileRowsFor(1M)=%d, want floor 64", got)
	}
	if got := tileRowsFor(1000); got != (4<<20)/24000 {
		t.Fatalf("tileRowsFor(1000)=%d", got)
	}
}
