package costmodel

import (
	"math"
	"testing"

	"genomeatscale/internal/bsp"
)

func TestMachineProfilesValidate(t *testing.T) {
	for _, m := range []Machine{Stampede2KNL(), Stampede2KNLNoMCDRAM()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := Machine{Alpha: 1e-9, Beta: 1e-8, Gamma: 1e-7, MemWords: 1, RanksPerNode: 1}
	if err := bad.Validate(); err == nil {
		t.Error("α < β < γ should fail the paper's α ≥ β ≥ γ assumption")
	}
	if err := (Machine{}).Validate(); err == nil {
		t.Error("zero machine should fail")
	}
	m := Stampede2KNL()
	m.MemWords = 0
	if err := m.Validate(); err == nil {
		t.Error("zero memory should fail")
	}
	m = Stampede2KNL()
	m.RanksPerNode = 0
	if err := m.Validate(); err == nil {
		t.Error("zero ranks per node should fail")
	}
}

func TestProblemDefaults(t *testing.T) {
	pr := Problem{Samples: 10, BatchNonzeros: 1000}.withDefaults()
	if pr.WordRows != 1000.0/64 {
		t.Errorf("WordRows default = %v, want %v", pr.WordRows, 1000.0/64)
	}
	// Flops estimate z²/h is capped by z·n = 10000.
	if pr.Flops != 10000 {
		t.Errorf("Flops default = %v, want 10000 (z·n cap)", pr.Flops)
	}
	// When BatchRows is smaller than z it bounds the word-row count.
	pr2 := Problem{Samples: 1000, BatchNonzeros: 1e6, BatchRows: 6400}.withDefaults()
	if pr2.WordRows != 100 {
		t.Errorf("WordRows = %v, want 100", pr2.WordRows)
	}
	// Explicit WordRows wins, and z²/h applies when below the z·n cap.
	pr3 := Problem{Samples: 100000, BatchNonzeros: 1e6, WordRows: 100}.withDefaults()
	if pr3.Flops != 1e12/100 {
		t.Errorf("Flops = %v, want z²/h", pr3.Flops)
	}
	// Floor: at least one operation per nonzero.
	pr4 := Problem{Samples: 1, BatchNonzeros: 50, WordRows: 1e9}.withDefaults()
	if pr4.Flops != 50 {
		t.Errorf("Flops floor = %v, want 50", pr4.Flops)
	}
}

func TestBatchTimePositiveAndMonotoneInWork(t *testing.T) {
	m := Stampede2KNL()
	small := BatchTime(m, Problem{Samples: 1000, BatchNonzeros: 1e6}, 64, 1)
	large := BatchTime(m, Problem{Samples: 1000, BatchNonzeros: 1e8}, 64, 1)
	if small <= 0 || large <= 0 {
		t.Fatal("times must be positive")
	}
	if large <= small {
		t.Error("more nonzeros must cost more")
	}
}

func TestBatchTimeStrongScalingImproves(t *testing.T) {
	// With fixed work and n ≫ p, more processors must not increase the time.
	m := Stampede2KNL()
	pr := Problem{Samples: 500000, BatchNonzeros: 1e10}
	prev := math.Inf(1)
	for _, p := range []int{32, 64, 128, 256, 1024, 4096} {
		bt := BatchTime(m, pr, p, Replication(m, pr.Samples, p))
		if bt > prev*1.001 {
			t.Errorf("p=%d: batch time %v worse than previous %v", p, bt, prev)
		}
		prev = bt
	}
}

func TestBatchTimeLoadImbalanceBeyondSamples(t *testing.T) {
	// Kingsford effect: once ranks exceed the sample count, compute stops
	// improving, so total time at 8192 ranks should not be much better than
	// at 2048 ranks for n = 2580.
	m := Stampede2KNL()
	pr := Problem{Samples: 2580, BatchNonzeros: 1e9}
	at2048 := BatchTime(m, pr, 2048, 1)
	at8192 := BatchTime(m, pr, 8192, 1)
	if at8192 < at2048*0.55 {
		t.Errorf("beyond n ranks scaling should saturate: %v vs %v", at8192, at2048)
	}
}

func TestBatchTimePanicsAndClamps(t *testing.T) {
	m := Stampede2KNL()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p <= 0")
		}
	}()
	_ = BatchTime(m, Problem{Samples: 1, BatchNonzeros: 1}, 0, 1)
}

func TestBatchTimeReplicationClamp(t *testing.T) {
	m := Stampede2KNL()
	pr := Problem{Samples: 100, BatchNonzeros: 1e6}
	a := BatchTime(m, pr, 16, 0)   // c < 1 clamps to 1
	b := BatchTime(m, pr, 16, 100) // c > p clamps to p
	if a <= 0 || b <= 0 {
		t.Error("clamped calls must still produce positive times")
	}
}

func TestTimeFromStats(t *testing.T) {
	m := Stampede2KNL()
	if TimeFromStats(m, nil) != 0 {
		t.Error("nil stats should be 0")
	}
	stats, err := bsp.Run(4, func(p *bsp.Proc) error {
		p.AddFlops(1000)
		bsp.AllReduce(p, int64(p.Rank()), func(a, b int64) int64 { return a + b })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := TimeFromStats(m, stats)
	if got <= 0 {
		t.Error("measured stats should give positive time")
	}
	want := float64(stats.Supersteps)*m.Alpha + float64(stats.SumHRelations())/8*m.Beta + float64(stats.MaxFlops())*m.Gamma
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("TimeFromStats = %v, want %v", got, want)
	}
}

func TestReplicationBounds(t *testing.T) {
	m := Stampede2KNL()
	if Replication(m, 0, 64) != 1 || Replication(m, 100, 0) != 1 {
		t.Error("degenerate inputs should give 1")
	}
	// Huge n → c = 1 (no memory for replication).
	if Replication(m, 10_000_000, 64) != 1 {
		t.Error("huge n should give c = 1")
	}
	// Tiny n → c capped at p^(1/3) (the useful replication limit of 2.5D/3D
	// schemes), not at p.
	if got := Replication(m, 10, 64); got != 4 {
		t.Errorf("tiny n should give c = p^(1/3) = 4, got %d", got)
	}
	// c grows with p for fixed n.
	cSmall := Replication(m, 50000, 128)
	cLarge := Replication(m, 50000, 4096)
	if cLarge < cSmall {
		t.Error("replication should not shrink with more processors")
	}
}

func TestBatches(t *testing.T) {
	m := Stampede2KNL()
	if Batches(m, 100, 64) != 1 {
		t.Error("tiny dataset should use 1 batch")
	}
	small := Batches(m, 1e12, 32)
	large := Batches(m, 1e12, 1024)
	if small <= large {
		t.Errorf("more ranks → larger batches → fewer batches (%d vs %d)", small, large)
	}
	if Batches(m, 1e12, 0) != 1 {
		t.Error("degenerate p should give 1")
	}
}

func TestDatasetShapes(t *testing.T) {
	k := KingsfordShape()
	b := BIGSIShape()
	if k.Samples != 2580 || b.Samples != 446506 {
		t.Error("sample counts must match the paper")
	}
	if k.TotalNonzeros <= 0 || b.TotalNonzeros <= 0 {
		t.Error("nonzero counts must be positive")
	}
	// BIGSI has far more samples; per-sample k-mer counts differ, but both
	// are in a plausible 10⁶–10⁹ per-sample range.
	perSampleK := k.TotalNonzeros / float64(k.Samples)
	perSampleB := b.TotalNonzeros / float64(b.Samples)
	if perSampleK < 1e6 || perSampleK > 1e9 {
		t.Errorf("Kingsford per-sample nonzeros implausible: %v", perSampleK)
	}
	if perSampleB < 1e6 || perSampleB > 1e9 {
		t.Errorf("BIGSI per-sample nonzeros implausible: %v", perSampleB)
	}
}

func TestStrongScalingBIGSIShape(t *testing.T) {
	m := Stampede2KNL()
	points, err := StrongScaling(m, BIGSIShape(), []int{128, 256, 512, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatal("wrong number of points")
	}
	// Projected total time must decrease with node count (Fig. 2b shape) and
	// batch count must shrink as batch size doubles.
	for i := 1; i < len(points); i++ {
		if points[i].TotalSeconds >= points[i-1].TotalSeconds {
			t.Errorf("total time not decreasing at %d nodes", points[i].Nodes)
		}
		if points[i].Batches > points[i-1].Batches {
			t.Errorf("batch count should shrink with more nodes")
		}
		if points[i].Efficiency <= 0.3 {
			t.Errorf("efficiency collapsed at %d nodes: %v", points[i].Nodes, points[i].Efficiency)
		}
	}
	if points[0].Efficiency != 1 {
		t.Error("first point efficiency must be 1")
	}
}

func TestStrongScalingKingsfordSweetSpot(t *testing.T) {
	// Fig. 2a: performance improves up to a sweet spot and then degrades
	// once the rank count far exceeds the 2,580 samples.
	m := Stampede2KNL()
	points, err := StrongScaling(m, KingsfordShape(), []int{1, 2, 4, 8, 16, 32, 64, 128, 256})
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i, p := range points {
		if p.TotalSeconds < points[best].TotalSeconds {
			best = i
		}
	}
	if points[best].Nodes < 4 || points[best].Nodes > 128 {
		t.Errorf("sweet spot at %d nodes, expected an interior optimum", points[best].Nodes)
	}
	// Beyond the sweet spot, efficiency must decline.
	last := points[len(points)-1]
	if last.Efficiency >= points[best].Efficiency {
		t.Error("efficiency should decline past the sweet spot")
	}
	// The best speed-up over a single node should be an order of magnitude
	// or more (the paper reports 42.2×).
	speedup := points[0].TotalSeconds / points[best].TotalSeconds
	if speedup < 5 {
		t.Errorf("best speed-up only %.1f×", speedup)
	}
}

func TestStrongScalingErrors(t *testing.T) {
	m := Stampede2KNL()
	if _, err := StrongScaling(m, DatasetShape{}, []int{1}); err == nil {
		t.Error("invalid shape should error")
	}
	if _, err := StrongScaling(m, KingsfordShape(), []int{0}); err == nil {
		t.Error("invalid node count should error")
	}
	bad := m
	bad.Alpha = 0
	if _, err := StrongScaling(bad, KingsfordShape(), []int{1}); err == nil {
		t.Error("invalid machine should error")
	}
}

func TestBatchSensitivityShape(t *testing.T) {
	// Figures 2c/2d: the projected total time decreases as the batch size
	// increases (i.e. as the batch count decreases).
	m := Stampede2KNL()
	points, err := BatchSensitivity(m, KingsfordShape(), 8, []int{16384, 8192, 4096, 2048, 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].TotalSeconds >= points[i-1].TotalSeconds {
			t.Errorf("total time should decrease with larger batches (index %d)", i)
		}
		if points[i].BatchSeconds <= points[i-1].BatchSeconds {
			t.Errorf("per-batch time should grow with batch size (index %d)", i)
		}
	}
	if _, err := BatchSensitivity(m, KingsfordShape(), 0, []int{1}); err == nil {
		t.Error("invalid nodes should error")
	}
	if _, err := BatchSensitivity(m, KingsfordShape(), 8, []int{0}); err == nil {
		t.Error("invalid batch count should error")
	}
	bad := m
	bad.Beta = 0
	if _, err := BatchSensitivity(bad, KingsfordShape(), 8, []int{1}); err == nil {
		t.Error("invalid machine should error")
	}
}

func TestWeakScalingShape(t *testing.T) {
	m := Stampede2KNL()
	points, err := WeakScaling(m, 50000, 500, 0.01, []int{1, 4, 16, 64, 256, 1024, 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Work per rank grows with the schedule (the paper reports 64× more
	// work per processor from 1 to 4096 cores); time grows slower than the
	// work per rank (their 1.81× efficiency improvement).
	first, last := points[0], points[len(points)-1]
	workRatio := last.WorkPerRank / first.WorkPerRank
	timeRatio := last.TotalSeconds / first.TotalSeconds
	if workRatio <= 1 {
		t.Fatalf("work per rank should grow, ratio %v", workRatio)
	}
	if timeRatio >= workRatio {
		t.Errorf("time ratio %v should be below work ratio %v", timeRatio, workRatio)
	}
	if _, err := WeakScaling(m, 0, 1, 0.1, []int{1}); err == nil {
		t.Error("invalid base should error")
	}
	if _, err := WeakScaling(m, 100, 10, 0.1, []int{0}); err == nil {
		t.Error("invalid ranks should error")
	}
	bad := m
	bad.Gamma = 0
	if _, err := WeakScaling(bad, 100, 10, 0.1, []int{1}); err == nil {
		t.Error("invalid machine should error")
	}
}

func TestSparsitySweepShape(t *testing.T) {
	m := Stampede2KNL()
	densities := []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2}
	points, err := SparsitySweep(m, 32e6, 10000, 16, 4, densities)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].TotalSeconds <= points[i-1].TotalSeconds {
			t.Errorf("denser data must take longer (index %d)", i)
		}
	}
	// Nearly-ideal scaling with density (Fig. 3): 100× density within ~300×
	// time (super-linear because flops grow quadratically in z, but the
	// low-density end is latency dominated).
	ratio := points[len(points)-1].TotalSeconds / points[0].TotalSeconds
	if ratio < 10 {
		t.Errorf("time should grow substantially across the sweep, ratio %v", ratio)
	}
	if _, err := SparsitySweep(m, 32e6, 10000, 0, 4, densities); err == nil {
		t.Error("invalid nodes should error")
	}
	if _, err := SparsitySweep(m, 32e6, 10000, 16, 4, []float64{0}); err == nil {
		t.Error("invalid density should error")
	}
	bad := m
	bad.MemWords = 0
	if _, err := SparsitySweep(bad, 32e6, 10000, 16, 4, densities); err == nil {
		t.Error("invalid machine should error")
	}
}

func TestMCDRAMComparisonNegligible(t *testing.T) {
	with, without := MCDRAMComparison(KingsfordShape(), 4, 256)
	if with <= 0 || without <= 0 {
		t.Fatal("times must be positive")
	}
	if without <= with {
		t.Error("disabling the MCDRAM cache should not speed things up")
	}
	// The paper's observation: the difference is negligible (a few percent).
	if (without-with)/with > 0.1 {
		t.Errorf("MCDRAM ablation should be small, got %.1f%%", 100*(without-with)/with)
	}
}
