package costmodel

import (
	"fmt"
	"math"
)

// ScalingPoint is one row of a scaling experiment: a node count with its
// per-batch time, batch count, and projected total runtime, mirroring the
// annotations of Figures 2a and 2b ("1st number: time / batch, 2nd number:
// #batches", y-axis: projected total time).
type ScalingPoint struct {
	// Nodes is the node count; Ranks = Nodes × RanksPerNode.
	Nodes int
	// Ranks is the MPI rank count.
	Ranks int
	// Replication is the chosen replication factor c.
	Replication int
	// Batches is the number of batches of the full dataset.
	Batches int
	// BatchSeconds is the projected per-batch time.
	BatchSeconds float64
	// TotalSeconds is the projected total time (BatchSeconds × Batches).
	TotalSeconds float64
	// Efficiency is the strong-scaling parallel efficiency relative to the
	// first point of the series (1 for the first point).
	Efficiency float64
}

// DatasetShape describes a full dataset for scaling projections.
type DatasetShape struct {
	// Name labels the dataset in reports.
	Name string
	// Samples is n.
	Samples int
	// Attributes is m, the number of rows of the indicator matrix.
	Attributes float64
	// TotalNonzeros is Z, the total number of indicator nonzeros.
	TotalNonzeros float64
}

// KingsfordShape returns the shape of the paper's low-variability dataset:
// 2,580 RNASeq samples at indicator density ≈1.5·10⁻⁴ over the 19-mer
// space. The nonzero count is reported here directly (density × m × n) so
// that projections do not require materialising the matrix.
func KingsfordShape() DatasetShape {
	m := math.Pow(4, 19)
	return DatasetShape{
		Name:          "Kingsford (2,580 RNASeq samples, k=19)",
		Samples:       2580,
		Attributes:    m,
		TotalNonzeros: 1.5e-4 * m * 2580,
	}
}

// BIGSIShape returns the shape of the paper's high-variability dataset:
// 446,506 bacterial/viral WGS samples at density ≈4·10⁻¹² over the 31-mer
// space.
func BIGSIShape() DatasetShape {
	m := math.Pow(4, 31)
	return DatasetShape{
		Name:          "BIGSI (446,506 WGS samples, k=31)",
		Samples:       446506,
		Attributes:    m,
		TotalNonzeros: 4e-12 * m * 446506,
	}
}

// StrongScaling projects a strong-scaling series: the dataset is fixed and
// the node count grows; batch size grows with the aggregate memory (so the
// batch count shrinks), exactly as the paper's strong-scaling runs double
// the batch size along with the node count.
func StrongScaling(m Machine, ds DatasetShape, nodes []int) ([]ScalingPoint, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if ds.Samples <= 0 || ds.TotalNonzeros <= 0 {
		return nil, fmt.Errorf("costmodel: invalid dataset shape %+v", ds)
	}
	var out []ScalingPoint
	var baseTotal float64
	var basePar float64
	for i, nd := range nodes {
		if nd <= 0 {
			return nil, fmt.Errorf("costmodel: non-positive node count %d", nd)
		}
		p := nd * m.RanksPerNode
		c := Replication(m, ds.Samples, p)
		batches := Batches(m, ds.TotalNonzeros, p)
		z := ds.TotalNonzeros / float64(batches)
		pr := Problem{Samples: ds.Samples, BatchNonzeros: z, BatchRows: ds.Attributes / float64(batches)}
		bt := BatchTime(m, pr, p, c)
		total := bt * float64(batches)
		point := ScalingPoint{
			Nodes: nd, Ranks: p, Replication: c, Batches: batches,
			BatchSeconds: bt, TotalSeconds: total,
		}
		if i == 0 {
			baseTotal = total
			basePar = float64(p)
			point.Efficiency = 1
		} else {
			point.Efficiency = (baseTotal / total) / (float64(p) / basePar)
		}
		out = append(out, point)
	}
	return out, nil
}

// BatchSensitivity projects the effect of the batch count at a fixed node
// count (Figures 2c and 2d): more batches mean smaller batches, a lower
// rate of useful work per synchronisation, and a larger projected total.
func BatchSensitivity(m Machine, ds DatasetShape, nodesFixed int, batchCounts []int) ([]ScalingPoint, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if nodesFixed <= 0 {
		return nil, fmt.Errorf("costmodel: non-positive node count %d", nodesFixed)
	}
	p := nodesFixed * m.RanksPerNode
	c := Replication(m, ds.Samples, p)
	var out []ScalingPoint
	for _, batches := range batchCounts {
		if batches <= 0 {
			return nil, fmt.Errorf("costmodel: non-positive batch count %d", batches)
		}
		z := ds.TotalNonzeros / float64(batches)
		bt := BatchTime(m, Problem{Samples: ds.Samples, BatchNonzeros: z, BatchRows: ds.Attributes / float64(batches)}, p, c)
		out = append(out, ScalingPoint{
			Nodes: nodesFixed, Ranks: p, Replication: c, Batches: batches,
			BatchSeconds: bt, TotalSeconds: bt * float64(batches), Efficiency: 1,
		})
	}
	return out, nil
}

// WeakScalingPoint is one row of a weak-scaling experiment (Fig. 2f).
type WeakScalingPoint struct {
	// Ranks is the processor count of the step.
	Ranks int
	// Samples and Attributes describe the grown problem.
	Samples    int
	Attributes float64
	// TotalSeconds is the projected time of the single grown batch.
	TotalSeconds float64
	// WorkPerRank is F/p, to verify the work-per-processor growth schedule.
	WorkPerRank float64
}

// WeakScaling projects the paper's weak-scaling schedule: the indicator
// matrix dimensions (and with them the work) grow with the processor
// count while the density stays fixed (Fig. 2f: 50k×500 on 1 core up to
// 3.2M×32k on 4096 cores).
func WeakScaling(m Machine, baseAttributes float64, baseSamples int, density float64, ranks []int) ([]WeakScalingPoint, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if baseAttributes <= 0 || baseSamples <= 0 || density <= 0 || density > 1 {
		return nil, fmt.Errorf("costmodel: invalid weak-scaling base (%v, %d, %v)", baseAttributes, baseSamples, density)
	}
	var out []WeakScalingPoint
	for _, p := range ranks {
		if p <= 0 {
			return nil, fmt.Errorf("costmodel: non-positive rank count %d", p)
		}
		scale := math.Sqrt(float64(p))
		attrs := baseAttributes * scale
		samples := int(float64(baseSamples) * scale)
		z := attrs * float64(samples) * density
		pr := Problem{Samples: samples, BatchNonzeros: z, BatchRows: attrs}.withDefaults()
		c := Replication(m, samples, p)
		bt := BatchTime(m, pr, p, c)
		out = append(out, WeakScalingPoint{
			Ranks: p, Samples: samples, Attributes: attrs,
			TotalSeconds: bt, WorkPerRank: pr.Flops / float64(p),
		})
	}
	return out, nil
}

// SparsityPoint is one row of the sparsity sweep of Fig. 3.
type SparsityPoint struct {
	Density      float64
	BatchSeconds float64
	TotalSeconds float64
}

// SparsitySweep projects total time against indicator density for a fixed
// shape, node count and batch count (Fig. 3: n=10k, m=32M, 16 nodes, 4
// batches, p from 10⁻⁴ to 10⁻²).
func SparsitySweep(m Machine, attributes float64, samples, nodes, batches int, densities []float64) ([]SparsityPoint, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 || batches <= 0 || samples <= 0 || attributes <= 0 {
		return nil, fmt.Errorf("costmodel: invalid sparsity sweep parameters")
	}
	p := nodes * m.RanksPerNode
	c := Replication(m, samples, p)
	var out []SparsityPoint
	for _, d := range densities {
		if d <= 0 || d > 1 {
			return nil, fmt.Errorf("costmodel: invalid density %v", d)
		}
		z := attributes * float64(samples) * d / float64(batches)
		bt := BatchTime(m, Problem{Samples: samples, BatchNonzeros: z, BatchRows: attributes / float64(batches)}, p, c)
		out = append(out, SparsityPoint{Density: d, BatchSeconds: bt, TotalSeconds: bt * float64(batches)})
	}
	return out, nil
}

// MCDRAMComparison projects the per-batch time of the same problem on the
// MCDRAM-as-cache and MCDRAM-as-memory profiles (Section V-D).
func MCDRAMComparison(ds DatasetShape, nodes, batches int) (withCache, withoutCache float64) {
	withMachine := Stampede2KNL()
	withoutMachine := Stampede2KNLNoMCDRAM()
	p := nodes * withMachine.RanksPerNode
	c := Replication(withMachine, ds.Samples, p)
	z := ds.TotalNonzeros / float64(batches)
	pr := Problem{Samples: ds.Samples, BatchNonzeros: z, BatchRows: ds.Attributes / float64(batches)}
	return BatchTime(withMachine, pr, p, c), BatchTime(withoutMachine, pr, p, c)
}
