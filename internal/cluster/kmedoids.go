package cluster

import (
	"fmt"
	"math"

	"genomeatscale/internal/sparse"
	"genomeatscale/internal/synth"
)

// KMedoidsResult describes a k-medoids clustering of samples under a
// precomputed distance matrix.
type KMedoidsResult struct {
	// Medoids are the sample indices chosen as cluster centres.
	Medoids []int
	// Assignment[i] is the index into Medoids of sample i's cluster.
	Assignment []int
	// Cost is the total distance of samples to their medoids.
	Cost float64
	// Iterations is the number of improvement sweeps performed.
	Iterations int
}

// KMedoids clusters the samples into k groups using the PAM-style
// alternate/swap heuristic over a precomputed distance matrix. Because only
// pairwise distances are needed, it works directly with the Jaccard
// distance matrix produced by SimilarityAtScale — the property the paper
// highlights when discussing clustering of categorical data (Section II-C).
func KMedoids(d *sparse.Dense[float64], k int, seed uint64, maxIter int) (*KMedoidsResult, error) {
	if d == nil || d.Rows != d.Cols || d.Rows == 0 {
		return nil, fmt.Errorf("cluster: invalid distance matrix")
	}
	n := d.Rows
	if k <= 0 || k > n {
		return nil, fmt.Errorf("cluster: k must be in [1,%d], got %d", n, k)
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	rng := synth.NewRNG(seed ^ 0xC10C)
	// Initial medoids: farthest-point seeding — the first medoid is random,
	// each subsequent one is the sample farthest from its nearest existing
	// medoid. This spreads the initial centres across well-separated groups.
	medoids := make([]int, 0, k)
	medoids = append(medoids, rng.Intn(n))
	for len(medoids) < k {
		best, bestDist := -1, -1.0
		for i := 0; i < n; i++ {
			nearest := math.Inf(1)
			for _, m := range medoids {
				if dm := d.At(i, m); dm < nearest {
					nearest = dm
				}
			}
			if nearest > bestDist {
				bestDist = nearest
				best = i
			}
		}
		medoids = append(medoids, best)
	}
	assign := make([]int, n)
	assignAll := func() float64 {
		var cost float64
		for i := 0; i < n; i++ {
			best, bestDist := 0, math.Inf(1)
			for mi, m := range medoids {
				if dm := d.At(i, m); dm < bestDist {
					best, bestDist = mi, dm
				}
			}
			assign[i] = best
			cost += bestDist
		}
		return cost
	}
	cost := assignAll()
	iterations := 0
	for iter := 0; iter < maxIter; iter++ {
		iterations = iter + 1
		improved := false
		// For each cluster, move the medoid to the member minimising the
		// within-cluster distance sum.
		for mi := range medoids {
			bestMedoid := medoids[mi]
			bestCost := math.Inf(1)
			for i := 0; i < n; i++ {
				if assign[i] != mi {
					continue
				}
				var c float64
				for j := 0; j < n; j++ {
					if assign[j] == mi {
						c += d.At(i, j)
					}
				}
				if c < bestCost {
					bestCost = c
					bestMedoid = i
				}
			}
			if bestMedoid != medoids[mi] {
				medoids[mi] = bestMedoid
				improved = true
			}
		}
		newCost := assignAll()
		if !improved || newCost >= cost-1e-12 {
			cost = newCost
			break
		}
		cost = newCost
	}
	return &KMedoidsResult{
		Medoids:    medoids,
		Assignment: assign,
		Cost:       cost,
		Iterations: iterations,
	}, nil
}

// ClusterSizes returns the number of samples in each cluster.
func (r *KMedoidsResult) ClusterSizes() []int {
	sizes := make([]int, len(r.Medoids))
	for _, a := range r.Assignment {
		sizes[a]++
	}
	return sizes
}
