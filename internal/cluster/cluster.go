// Package cluster implements the downstream analyses the paper motivates as
// consumers of the Jaccard distance matrix (Figure 1, parts 7–9 and
// Section II): hierarchical clustering for sample grouping and guide trees
// (UPGMA and neighbour-joining with Newick output, the standard inputs for
// phylogenetic analysis and large-scale multiple sequence alignment), and
// k-medoids clustering, which works with an arbitrary metric such as the
// Jaccard distance.
package cluster

import (
	"fmt"
	"math"
	"strings"

	"genomeatscale/internal/sparse"
)

// Tree is a rooted binary tree over the input samples produced by
// hierarchical clustering.
type Tree struct {
	// Name is set for leaves and empty for internal nodes.
	Name string
	// Left and Right are nil for leaves.
	Left, Right *Tree
	// Length is the branch length from this node to its parent.
	Length float64
	// Size is the number of leaves under this node.
	Size int
}

// IsLeaf reports whether the node is a leaf.
func (t *Tree) IsLeaf() bool { return t.Left == nil && t.Right == nil }

// Leaves returns the leaf names in left-to-right order.
func (t *Tree) Leaves() []string {
	if t.IsLeaf() {
		return []string{t.Name}
	}
	return append(t.Left.Leaves(), t.Right.Leaves()...)
}

// Newick serialises the tree in Newick format (with branch lengths), the
// interchange format consumed by phylogenetics and MSA tools such as the
// guide-tree pipelines the paper cites.
func (t *Tree) Newick() string {
	var b strings.Builder
	t.writeNewick(&b, true)
	b.WriteString(";")
	return b.String()
}

func (t *Tree) writeNewick(b *strings.Builder, root bool) {
	if t.IsLeaf() {
		b.WriteString(escapeNewick(t.Name))
	} else {
		b.WriteString("(")
		t.Left.writeNewick(b, false)
		b.WriteString(",")
		t.Right.writeNewick(b, false)
		b.WriteString(")")
	}
	if !root {
		fmt.Fprintf(b, ":%.6g", t.Length)
	}
}

func escapeNewick(name string) string {
	if strings.ContainsAny(name, "(),:;' \t") {
		return "'" + strings.ReplaceAll(name, "'", "''") + "'"
	}
	return name
}

// validateDistances checks the distance matrix shape and values.
func validateDistances(d *sparse.Dense[float64], names []string) error {
	if d == nil {
		return fmt.Errorf("cluster: nil distance matrix")
	}
	if d.Rows != d.Cols {
		return fmt.Errorf("cluster: distance matrix must be square, got %dx%d", d.Rows, d.Cols)
	}
	if len(names) != d.Rows {
		return fmt.Errorf("cluster: %d names for %d samples", len(names), d.Rows)
	}
	if d.Rows == 0 {
		return fmt.Errorf("cluster: empty distance matrix")
	}
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			v := d.At(i, j)
			if math.IsNaN(v) || v < 0 {
				return fmt.Errorf("cluster: invalid distance %v at (%d,%d)", v, i, j)
			}
		}
	}
	return nil
}

// UPGMA builds a rooted tree by average-linkage agglomerative clustering of
// the distance matrix (Unweighted Pair Group Method with Arithmetic mean).
// Branch lengths place each merge at half the inter-cluster distance, so an
// ultrametric input yields an exact dendrogram.
func UPGMA(d *sparse.Dense[float64], names []string) (*Tree, error) {
	if err := validateDistances(d, names); err != nil {
		return nil, err
	}
	n := d.Rows
	nodes := make([]*Tree, n)
	heights := make([]float64, n)
	for i := range nodes {
		nodes[i] = &Tree{Name: names[i], Size: 1}
	}
	// Working copy of distances between active clusters.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = append([]float64(nil), d.Row(i)...)
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	remaining := n
	for remaining > 1 {
		// Find the closest pair of active clusters.
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if dist[i][j] < best {
					best = dist[i][j]
					bi, bj = i, j
				}
			}
		}
		// Merge bj into bi.
		height := best / 2
		left, right := nodes[bi], nodes[bj]
		left.Length = height - heights[bi]
		right.Length = height - heights[bj]
		merged := &Tree{Left: left, Right: right, Size: left.Size + right.Size}
		// Average-linkage update of distances to the merged cluster.
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			newDist := (dist[bi][k]*float64(left.Size) + dist[bj][k]*float64(right.Size)) / float64(left.Size+right.Size)
			dist[bi][k] = newDist
			dist[k][bi] = newDist
		}
		nodes[bi] = merged
		heights[bi] = height
		active[bj] = false
		remaining--
	}
	for i := 0; i < n; i++ {
		if active[i] {
			return nodes[i], nil
		}
	}
	return nil, fmt.Errorf("cluster: internal error, no root found")
}

// NeighborJoining builds a tree with the Saitou–Nei neighbour-joining
// algorithm, the method the paper cites for phylogenetic tree construction
// from distance matrices. The returned tree is arbitrarily rooted at the
// final join.
func NeighborJoining(d *sparse.Dense[float64], names []string) (*Tree, error) {
	if err := validateDistances(d, names); err != nil {
		return nil, err
	}
	n := d.Rows
	if n == 1 {
		return &Tree{Name: names[0], Size: 1}, nil
	}
	type activeNode struct {
		tree *Tree
	}
	nodes := make([]*activeNode, n)
	for i := range nodes {
		nodes[i] = &activeNode{tree: &Tree{Name: names[i], Size: 1}}
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = append([]float64(nil), d.Row(i)...)
	}
	activeIdx := make([]int, n)
	for i := range activeIdx {
		activeIdx[i] = i
	}
	for len(activeIdx) > 2 {
		r := len(activeIdx)
		// Total distances.
		total := make(map[int]float64, r)
		for _, i := range activeIdx {
			var s float64
			for _, j := range activeIdx {
				s += dist[i][j]
			}
			total[i] = s
		}
		// Minimise the Q criterion.
		bi, bj := -1, -1
		best := math.Inf(1)
		for a := 0; a < r; a++ {
			for b := a + 1; b < r; b++ {
				i, j := activeIdx[a], activeIdx[b]
				q := float64(r-2)*dist[i][j] - total[i] - total[j]
				if q < best {
					best = q
					bi, bj = i, j
				}
			}
		}
		// Branch lengths to the new node.
		dij := dist[bi][bj]
		li := dij/2 + (total[bi]-total[bj])/(2*float64(len(activeIdx)-2))
		lj := dij - li
		if li < 0 {
			li = 0
		}
		if lj < 0 {
			lj = 0
		}
		left, right := nodes[bi].tree, nodes[bj].tree
		left.Length = li
		right.Length = lj
		merged := &Tree{Left: left, Right: right, Size: left.Size + right.Size}
		// Distances from the new node (stored in slot bi).
		for _, k := range activeIdx {
			if k == bi || k == bj {
				continue
			}
			nd := (dist[bi][k] + dist[bj][k] - dij) / 2
			if nd < 0 {
				nd = 0
			}
			dist[bi][k] = nd
			dist[k][bi] = nd
		}
		nodes[bi] = &activeNode{tree: merged}
		// Remove bj from the active set.
		next := activeIdx[:0]
		for _, k := range activeIdx {
			if k != bj {
				next = append(next, k)
			}
		}
		activeIdx = next
	}
	// Join the last two nodes.
	i, j := activeIdx[0], activeIdx[1]
	left, right := nodes[i].tree, nodes[j].tree
	left.Length = dist[i][j] / 2
	right.Length = dist[i][j] / 2
	return &Tree{Left: left, Right: right, Size: left.Size + right.Size}, nil
}

// CopheneticDistance returns the tree distance between two leaves (the sum
// of branch lengths on the path connecting them); tests use it to verify
// that tree construction preserves the structure of the input distances.
func CophenticDistancePairs(t *Tree) map[[2]string]float64 {
	out := make(map[[2]string]float64)
	var walk func(node *Tree) map[string]float64
	walk = func(node *Tree) map[string]float64 {
		if node.IsLeaf() {
			return map[string]float64{node.Name: 0}
		}
		left := walk(node.Left)
		right := walk(node.Right)
		for a, da := range left {
			for b, db := range right {
				key := [2]string{a, b}
				if b < a {
					key = [2]string{b, a}
				}
				out[key] = da + node.Left.Length + db + node.Right.Length
			}
		}
		merged := make(map[string]float64, len(left)+len(right))
		for a, da := range left {
			merged[a] = da + node.Left.Length
		}
		for b, db := range right {
			merged[b] = db + node.Right.Length
		}
		return merged
	}
	walk(t)
	return out
}
