package cluster

import (
	"math"
	"strings"
	"testing"

	"genomeatscale/internal/core"
	"genomeatscale/internal/sparse"
	"genomeatscale/internal/synth"
)

// denseFrom builds a dense matrix from a 2D slice.
func denseFrom(rows [][]float64) *sparse.Dense[float64] {
	d := sparse.MustDense[float64](len(rows), len(rows[0]))
	for i, r := range rows {
		for j, v := range r {
			d.Set(i, j, v)
		}
	}
	return d
}

// ultrametric example: a and b are close, c is far from both.
func abcDistances() (*sparse.Dense[float64], []string) {
	return denseFrom([][]float64{
		{0, 0.2, 0.8},
		{0.2, 0, 0.8},
		{0.8, 0.8, 0},
	}), []string{"a", "b", "c"}
}

func TestValidateDistances(t *testing.T) {
	d, names := abcDistances()
	if err := validateDistances(d, names); err != nil {
		t.Fatal(err)
	}
	if err := validateDistances(nil, nil); err == nil {
		t.Error("nil matrix should fail")
	}
	if err := validateDistances(sparse.MustDense[float64](2, 3), []string{"a", "b"}); err == nil {
		t.Error("non-square should fail")
	}
	if err := validateDistances(d, []string{"a"}); err == nil {
		t.Error("name mismatch should fail")
	}
	if err := validateDistances(sparse.MustDense[float64](0, 0), nil); err == nil {
		t.Error("empty should fail")
	}
	bad := denseFrom([][]float64{{0, -1}, {-1, 0}})
	if err := validateDistances(bad, []string{"a", "b"}); err == nil {
		t.Error("negative distances should fail")
	}
	nan := denseFrom([][]float64{{0, math.NaN()}, {math.NaN(), 0}})
	if err := validateDistances(nan, []string{"a", "b"}); err == nil {
		t.Error("NaN distances should fail")
	}
}

func TestUPGMAStructure(t *testing.T) {
	d, names := abcDistances()
	tree, err := UPGMA(d, names)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size != 3 {
		t.Errorf("tree size = %d", tree.Size)
	}
	leaves := tree.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %v", leaves)
	}
	// a and b must be joined first: find the subtree of size 2 and verify it
	// contains a and b.
	var pair *Tree
	if tree.Left.Size == 2 {
		pair = tree.Left
	} else {
		pair = tree.Right
	}
	pl := pair.Leaves()
	if !(contains(pl, "a") && contains(pl, "b")) {
		t.Errorf("UPGMA should join a,b first, got %v", pl)
	}
	// Ultrametric input: cophenetic distances recover the input exactly.
	coph := CophenticDistancePairs(tree)
	if math.Abs(coph[[2]string{"a", "b"}]-0.2) > 1e-9 {
		t.Errorf("cophenetic a-b = %v", coph[[2]string{"a", "b"}])
	}
	if math.Abs(coph[[2]string{"a", "c"}]-0.8) > 1e-9 {
		t.Errorf("cophenetic a-c = %v", coph[[2]string{"a", "c"}])
	}
	newick := tree.Newick()
	if !strings.HasSuffix(newick, ";") || !strings.Contains(newick, "a") {
		t.Errorf("Newick = %q", newick)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestUPGMAErrors(t *testing.T) {
	if _, err := UPGMA(nil, nil); err == nil {
		t.Error("expected error")
	}
}

func TestNeighborJoiningAdditiveTree(t *testing.T) {
	// Additive (tree-realisable) distance matrix on 4 taxa; NJ must recover
	// the pairwise distances exactly via cophenetic distances.
	d := denseFrom([][]float64{
		{0, 3, 7, 8},
		{3, 0, 6, 7},
		{7, 6, 0, 5},
		{8, 7, 5, 0},
	})
	names := []string{"w", "x", "y", "z"}
	tree, err := NeighborJoining(d, names)
	if err != nil {
		t.Fatal(err)
	}
	coph := CophenticDistancePairs(tree)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			key := [2]string{names[i], names[j]}
			if names[j] < names[i] {
				key = [2]string{names[j], names[i]}
			}
			if math.Abs(coph[key]-d.At(i, j)) > 1e-9 {
				t.Errorf("cophenetic %v = %v, want %v", key, coph[key], d.At(i, j))
			}
		}
	}
}

func TestNeighborJoiningSmallCases(t *testing.T) {
	one := denseFrom([][]float64{{0}})
	tree, err := NeighborJoining(one, []string{"only"})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.IsLeaf() || tree.Name != "only" {
		t.Error("single taxon should be a leaf")
	}
	two := denseFrom([][]float64{{0, 1}, {1, 0}})
	tree, err = NeighborJoining(two, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size != 2 || len(tree.Leaves()) != 2 {
		t.Error("two-taxon tree wrong")
	}
	if _, err := NeighborJoining(nil, nil); err == nil {
		t.Error("expected error")
	}
}

func TestNewickEscaping(t *testing.T) {
	d := denseFrom([][]float64{{0, 1}, {1, 0}})
	tree, err := UPGMA(d, []string{"sample one", "s'2"})
	if err != nil {
		t.Fatal(err)
	}
	nw := tree.Newick()
	if !strings.Contains(nw, "'sample one'") {
		t.Errorf("names with spaces must be quoted: %q", nw)
	}
	if !strings.Contains(nw, "'s''2'") {
		t.Errorf("quotes must be doubled: %q", nw)
	}
}

// Tree construction from SimilarityAtScale distances must recover the
// divergence structure of a synthetic genome family: the most diverged
// descendant must not be the ancestor's nearest neighbour.
func TestGuideTreeFromJaccardDistances(t *testing.T) {
	// Build samples with a clear structure: two tight groups.
	groupA := [][]uint64{{1, 2, 3, 4, 5}, {1, 2, 3, 4, 6}, {1, 2, 3, 5, 6}}
	groupB := [][]uint64{{100, 101, 102, 103}, {100, 101, 102, 104}}
	var samples [][]uint64
	samples = append(samples, groupA...)
	samples = append(samples, groupB...)
	names := []string{"a0", "a1", "a2", "b0", "b1"}
	ds := core.MustInMemoryDataset(names, samples, 200)
	res, err := core.ComputeSequential(ds, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := UPGMA(res.D, names)
	if err != nil {
		t.Fatal(err)
	}
	// The top split must separate group a from group b.
	left := tree.Left.Leaves()
	right := tree.Right.Leaves()
	aSide, bSide := left, right
	if contains(right, "a0") {
		aSide, bSide = right, left
	}
	for _, name := range []string{"a0", "a1", "a2"} {
		if !contains(aSide, name) {
			t.Errorf("%s should be in the A-side of the top split", name)
		}
	}
	for _, name := range []string{"b0", "b1"} {
		if !contains(bSide, name) {
			t.Errorf("%s should be in the B-side of the top split", name)
		}
	}
}

func TestKMedoidsSeparatesGroups(t *testing.T) {
	// Distances: two clear groups {0,1,2} and {3,4}.
	d := denseFrom([][]float64{
		{0, 0.1, 0.1, 0.9, 0.9},
		{0.1, 0, 0.1, 0.9, 0.9},
		{0.1, 0.1, 0, 0.9, 0.9},
		{0.9, 0.9, 0.9, 0, 0.1},
		{0.9, 0.9, 0.9, 0.1, 0},
	})
	res, err := KMedoids(d, 2, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Medoids) != 2 {
		t.Fatalf("medoids = %v", res.Medoids)
	}
	if res.Assignment[0] != res.Assignment[1] || res.Assignment[1] != res.Assignment[2] {
		t.Error("samples 0-2 should share a cluster")
	}
	if res.Assignment[3] != res.Assignment[4] {
		t.Error("samples 3-4 should share a cluster")
	}
	if res.Assignment[0] == res.Assignment[3] {
		t.Error("the two groups must be separated")
	}
	sizes := res.ClusterSizes()
	if sizes[res.Assignment[0]] != 3 || sizes[res.Assignment[3]] != 2 {
		t.Errorf("cluster sizes = %v", sizes)
	}
	if res.Cost <= 0 || res.Iterations <= 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestKMedoidsErrors(t *testing.T) {
	d := denseFrom([][]float64{{0, 1}, {1, 0}})
	if _, err := KMedoids(nil, 1, 0, 10); err == nil {
		t.Error("nil matrix should fail")
	}
	if _, err := KMedoids(d, 0, 0, 10); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KMedoids(d, 3, 0, 10); err == nil {
		t.Error("k>n should fail")
	}
	if _, err := KMedoids(sparse.MustDense[float64](2, 3), 1, 0, 10); err == nil {
		t.Error("non-square should fail")
	}
}

func TestKMedoidsKEqualsN(t *testing.T) {
	d := denseFrom([][]float64{{0, 1}, {1, 0}})
	res, err := KMedoids(d, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Errorf("k=n should give zero cost, got %v", res.Cost)
	}
}

func TestKMedoidsRandomStability(t *testing.T) {
	// On random Jaccard-like distances the algorithm must terminate within
	// maxIter and produce a valid assignment for every seed.
	rng := synth.NewRNG(44)
	n := 30
	d := sparse.MustDense[float64](n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			d.Set(i, j, v)
			d.Set(j, i, v)
		}
	}
	for seed := uint64(0); seed < 5; seed++ {
		res, err := KMedoids(d, 4, seed, 25)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Assignment) != n {
			t.Fatal("assignment length wrong")
		}
		for _, a := range res.Assignment {
			if a < 0 || a >= 4 {
				t.Fatalf("invalid assignment %d", a)
			}
		}
	}
}
