// Package genome provides the GenomeAtScale preprocessing layer of the
// paper (Part I of Figure 1): FASTA input/output, 2-bit k-mer encoding with
// canonicalisation, rare-k-mer (noise) filtering, conversion of sequencing
// samples into attribute sets for SimilarityAtScale, and a synthetic genome
// generator with a simple mutation model used when real sequencing archives
// are not available.
package genome

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

// Record is one FASTA record.
type Record struct {
	// ID is the first whitespace-delimited token of the header line.
	ID string
	// Description is the remainder of the header line (may be empty).
	Description string
	// Seq is the raw sequence with line breaks removed.
	Seq []byte
}

// ReadFASTA parses all records from r. Sequence characters are
// upper-cased; empty records are rejected.
func ReadFASTA(r io.Reader) ([]Record, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var records []Record
	var cur *Record
	flush := func() error {
		if cur == nil {
			return nil
		}
		if len(cur.Seq) == 0 {
			return fmt.Errorf("genome: record %q has an empty sequence", cur.ID)
		}
		records = append(records, *cur)
		cur = nil
		return nil
	}
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimRight(scanner.Text(), "\r\n \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			if err := flush(); err != nil {
				return nil, err
			}
			header := strings.TrimSpace(line[1:])
			if header == "" {
				return nil, fmt.Errorf("genome: empty FASTA header at line %d", lineNo)
			}
			parts := strings.SplitN(header, " ", 2)
			cur = &Record{ID: parts[0]}
			if len(parts) == 2 {
				cur.Description = parts[1]
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("genome: sequence data before any FASTA header at line %d", lineNo)
		}
		cur.Seq = append(cur.Seq, bytes.ToUpper([]byte(line))...)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("genome: reading FASTA: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return records, nil
}

// ReadFASTAFile reads all records from a file on disk.
func ReadFASTAFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("genome: %w", err)
	}
	defer f.Close()
	return ReadFASTA(f)
}

// WriteFASTA writes records to w, wrapping sequence lines at the given
// width (60 if width <= 0).
func WriteFASTA(w io.Writer, records []Record, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	for _, rec := range records {
		if rec.ID == "" {
			return fmt.Errorf("genome: record with empty ID")
		}
		header := ">" + rec.ID
		if rec.Description != "" {
			header += " " + rec.Description
		}
		if _, err := fmt.Fprintln(bw, header); err != nil {
			return err
		}
		for start := 0; start < len(rec.Seq); start += width {
			end := start + width
			if end > len(rec.Seq) {
				end = len(rec.Seq)
			}
			if _, err := fmt.Fprintln(bw, string(rec.Seq[start:end])); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFASTAFile writes records to a file on disk.
func WriteFASTAFile(path string, records []Record, width int) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("genome: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("genome: %w", cerr)
		}
	}()
	return WriteFASTA(f, records, width)
}
