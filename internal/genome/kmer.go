package genome

import "fmt"

// MaxK is the largest k supported by the 2-bit packed encoding (31 bases
// fit in 62 bits). The paper uses k = 19 for the Kingsford dataset and
// k = 31 for BIGSI; both fit.
const MaxK = 31

// baseCode maps a nucleotide to its 2-bit code, or -1 for characters that
// cannot be encoded (such as the unknown base N), which break a k-mer
// window exactly as in standard k-mer counters.
func baseCode(b byte) int {
	switch b {
	case 'A', 'a':
		return 0
	case 'C', 'c':
		return 1
	case 'G', 'g':
		return 2
	case 'T', 't':
		return 3
	default:
		return -1
	}
}

// complementCode returns the 2-bit code of the complementary base.
func complementCode(code uint64) uint64 { return 3 - code }

// EncodeKmer packs a k-length sequence into a 2-bit-per-base code. It
// returns an error for invalid bases or unsupported k.
func EncodeKmer(seq []byte) (uint64, error) {
	k := len(seq)
	if k == 0 || k > MaxK {
		return 0, fmt.Errorf("genome: k must be in [1,%d], got %d", MaxK, k)
	}
	var code uint64
	for _, b := range seq {
		c := baseCode(b)
		if c < 0 {
			return 0, fmt.Errorf("genome: invalid base %q", string(b))
		}
		code = code<<2 | uint64(c)
	}
	return code, nil
}

// DecodeKmer expands a 2-bit packed code back into a k-length sequence.
func DecodeKmer(code uint64, k int) []byte {
	out := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		switch code & 3 {
		case 0:
			out[i] = 'A'
		case 1:
			out[i] = 'C'
		case 2:
			out[i] = 'G'
		case 3:
			out[i] = 'T'
		}
		code >>= 2
	}
	return out
}

// ReverseComplementCode returns the packed code of the reverse complement
// of a packed k-mer.
func ReverseComplementCode(code uint64, k int) uint64 {
	var out uint64
	for i := 0; i < k; i++ {
		out = out<<2 | complementCode(code&3)
		code >>= 2
	}
	return out
}

// CanonicalCode returns the lexicographically smaller of a k-mer code and
// its reverse complement. Using canonical k-mers makes the representation
// strand-independent; the paper chooses k = 19 (odd) for Kingsford
// precisely "to avoid the possibility of k-mers being equal to their
// reverse complements".
func CanonicalCode(code uint64, k int) uint64 {
	rc := ReverseComplementCode(code, k)
	if rc < code {
		return rc
	}
	return code
}

// ReverseComplement returns the reverse-complement of a raw sequence;
// unknown bases map to 'N'.
func ReverseComplement(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		var c byte
		switch b {
		case 'A', 'a':
			c = 'T'
		case 'C', 'c':
			c = 'G'
		case 'G', 'g':
			c = 'C'
		case 'T', 't':
			c = 'A'
		default:
			c = 'N'
		}
		out[len(seq)-1-i] = c
	}
	return out
}

// ExtractorOptions configures k-mer extraction.
type ExtractorOptions struct {
	// K is the k-mer length in [1, MaxK].
	K int
	// Canonical selects canonical (strand-independent) k-mers.
	Canonical bool
}

// Validate checks extraction options.
func (o ExtractorOptions) Validate() error {
	if o.K <= 0 || o.K > MaxK {
		return fmt.Errorf("genome: k must be in [1,%d], got %d", MaxK, o.K)
	}
	return nil
}

// ExtractKmers returns the packed codes of all k-mers in seq using a
// rolling 2-bit encoder. Windows containing an invalid base (e.g. N) are
// skipped, and the window restarts after the invalid position.
func ExtractKmers(seq []byte, opts ExtractorOptions) ([]uint64, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	k := opts.K
	if len(seq) < k {
		return nil, nil
	}
	mask := uint64(1)<<(2*uint(k)) - 1
	if k == 32 {
		mask = ^uint64(0)
	}
	var out []uint64
	var code uint64
	valid := 0
	for _, b := range seq {
		c := baseCode(b)
		if c < 0 {
			valid = 0
			code = 0
			continue
		}
		code = (code<<2 | uint64(c)) & mask
		valid++
		if valid >= k {
			km := code
			if opts.Canonical {
				km = CanonicalCode(km, k)
			}
			out = append(out, km)
		}
	}
	return out, nil
}

// CountKmers tallies the multiplicity of each k-mer in the given sequences.
func CountKmers(seqs [][]byte, opts ExtractorOptions) (map[uint64]int, error) {
	counts := make(map[uint64]int)
	for _, seq := range seqs {
		kmers, err := ExtractKmers(seq, opts)
		if err != nil {
			return nil, err
		}
		for _, km := range kmers {
			counts[km]++
		}
	}
	return counts, nil
}

// FilterCounts keeps only k-mers whose count is at least minCount. This is
// the noise-removal step of the paper's preprocessing: "raw sequences were
// preprocessed to remove rare (considered noise) k-mers" with thresholds
// set per sample.
func FilterCounts(counts map[uint64]int, minCount int) []uint64 {
	out := make([]uint64, 0, len(counts))
	for km, c := range counts {
		if c >= minCount {
			out = append(out, km)
		}
	}
	return out
}

// KmerSpace returns m = 4^k, the number of possible k-mers and hence the
// number of rows of the indicator matrix.
func KmerSpace(k int) uint64 {
	if k <= 0 || k > MaxK {
		//gas:invariant k is validated against [1,MaxK] at the flag/profile layer before any k-mer math; this guards direct API misuse
		panic(fmt.Sprintf("genome: k must be in [1,%d], got %d", MaxK, k))
	}
	return uint64(1) << (2 * uint(k))
}
